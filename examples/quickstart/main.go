// Quickstart: build a hypergraph, compute an exact generalized hypertree
// decomposition with branch and bound, validate it and print the tree.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	"hypertree/internal/core"
	"hypertree/internal/hypergraph"
)

func main() {
	// The running example of the thesis (Example 5 / Figure 2.6): six
	// variables x1..x6 and three ternary constraints.
	h := hypergraph.NewHypergraph(6)
	for i := 0; i < 6; i++ {
		h.SetVertexName(i, fmt.Sprintf("x%d", i+1))
	}
	h.SetEdgeName(h.AddEdge(0, 1, 2), "c1") // {x1,x2,x3}
	h.SetEdgeName(h.AddEdge(0, 4, 5), "c2") // {x1,x5,x6}
	h.SetEdgeName(h.AddEdge(2, 3, 4), "c3") // {x3,x4,x5}

	fmt.Println("hypergraph:", h)
	fmt.Println("acyclic:", hypergraph.IsAcyclic(h))

	d, err := core.Decompose(h, core.Options{Algorithm: core.AlgBBGHW, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generalized hypertree width: %d (exact: %v)\n", d.Width, d.Exact)

	if err := d.GHD.Validate(h); err != nil {
		log.Fatal("invalid decomposition: ", err)
	}
	fmt.Println("decomposition (χ = variables, λ = covering constraints):")
	children := d.GHD.Children()
	var rec func(node, depth int)
	rec = func(node, depth int) {
		var vars, edges []string
		for _, v := range d.GHD.Bags[node] {
			vars = append(vars, h.VertexName(v))
		}
		for _, e := range d.GHD.Lambdas[node] {
			edges = append(edges, h.EdgeName(e))
		}
		fmt.Printf("%sχ={%s} λ={%s}\n", strings.Repeat("  ", depth),
			strings.Join(vars, ","), strings.Join(edges, ","))
		for _, c := range children[node] {
			rec(c, depth+1)
		}
	}
	rec(d.GHD.Root, 0)
}
