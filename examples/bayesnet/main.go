// Bayesnet: junction-tree construction for probabilistic inference — the
// application behind thesis §4.5 (Larrañaga et al.'s GA for triangulating
// the moral graph of a Bayesian network). Unlike pure treewidth, the
// objective is the total potential-table size w(TD) = log2 Σ_u Π_{v∈χ(u)} n_v,
// which accounts for the variables' state counts: with skewed cardinalities
// the cheapest triangulation is not always the narrowest.
//
//	go run ./examples/bayesnet
package main

import (
	"fmt"

	"hypertree/internal/elim"
	"hypertree/internal/ga"
	"hypertree/internal/hypergraph"
)

func main() {
	// A small diagnostic network (moralized): diseases D1, D2 with large
	// state spaces feed binary symptoms S1..S6; symptoms sharing a disease
	// parent are moral-graph neighbors.
	names := []string{"D1", "D2", "S1", "S2", "S3", "S4", "S5", "S6"}
	states := []int{12, 12, 2, 2, 2, 2, 2, 2}
	g := hypergraph.NewGraph(len(names))
	edges := [][2]int{
		{0, 1},                 // D1-D2 (moralized common children)
		{0, 2}, {0, 3}, {0, 4}, // D1 -> S1..S3
		{1, 4}, {1, 5}, {1, 6}, // D2 -> S3..S5
		{0, 7}, {1, 7}, // both -> S6
		{2, 3}, {5, 6}, // moral links among co-parents of latent causes
	}
	for _, e := range edges {
		g.AddEdge(e[0], e[1])
	}

	cfg := ga.Config{
		PopulationSize: 80, CrossoverRate: 1, MutationRate: 0.3,
		TournamentSize: 3, MaxIterations: 120,
		Crossover: ga.POS, Mutation: ga.ISM, Seed: 1,
	}

	// Plain GA-tw: minimizes the bag size, ignoring state counts.
	tw := ga.Treewidth(g, cfg)
	twEval := ga.NewWeightedEvaluator(g, states)
	fmt.Printf("treewidth-optimal ordering: width %d, table size 2^%.2f entries\n",
		tw.BestWidth, twEval.Weight(tw.BestOrdering))

	// Weighted GA (§4.5): minimizes the junction tree's table sizes.
	wr, bits := ga.WeightedTreewidth(g, states, cfg)
	fmt.Printf("weight-optimal ordering:    width %d, table size 2^%.2f entries\n",
		elim.WidthOfGraph(g, wr.BestOrdering), bits)

	if bits <= twEval.Weight(tw.BestOrdering) {
		fmt.Println("\nthe weighted objective found tables at least as small —")
		fmt.Println("with 12-state diseases, keeping D1 and D2 out of shared bags")
		fmt.Println("matters more than shaving one vertex off the widest bag.")
	}
}
