// Circuit: compare the decomposition algorithms on adder-circuit
// hypergraphs of growing size — the workload family that motivates
// generalized hypertree decompositions in the thesis's evaluation
// (adder_75, adder_99 in Table 7.1). The greedy baseline, the genetic
// algorithm and exact branch and bound are run side by side.
//
//	go run ./examples/circuit
package main

import (
	"fmt"
	"log"
	"time"

	"hypertree/internal/core"
	"hypertree/internal/ga"
	"hypertree/internal/hypergraph"
)

func main() {
	fmt.Println("ghw of n-bit adder constraint hypergraphs (5n+1 vars, 7n+1 constraints)")
	fmt.Printf("%6s  %6s  %6s  %8s  %8s  %8s\n", "bits", "vars", "cons", "greedy", "ga-ghw", "bb-ghw")
	for _, bits := range []int{5, 10, 20, 40} {
		h := hypergraph.Adder(bits)
		greedy := run(h, core.Options{Algorithm: core.AlgGreedy, Seed: 1})
		gaw := run(h, core.Options{
			Algorithm: core.AlgGAGHW,
			Seed:      1,
			GA: ga.Config{
				PopulationSize: 60, CrossoverRate: 1, MutationRate: 0.3,
				TournamentSize: 3, MaxIterations: 80,
				Crossover: ga.POS, Mutation: ga.ISM, Seed: 1,
			},
		})
		bb := run(h, core.Options{Algorithm: core.AlgBBGHW, Seed: 1,
			MaxNodes: 200000, Timeout: 30 * time.Second})
		exact := ""
		if bb.Exact {
			exact = " (exact)"
		}
		fmt.Printf("%6d  %6d  %6d  %8d  %8d  %7d%s\n",
			bits, h.N(), h.M(), greedy.Width, gaw.Width, bb.Width, exact)
	}
	fmt.Println("\nthe ripple-carry structure keeps ghw small and constant in the bit",
		"\nwidth, which is why decomposition-based solving scales on this family.")
}

func run(h *hypergraph.Hypergraph, opts core.Options) *core.Decomposition {
	d, err := core.Decompose(h, opts)
	if err != nil {
		log.Fatal(err)
	}
	if err := d.GHD.Validate(h); err != nil {
		log.Fatal("invalid decomposition: ", err)
	}
	return d
}
