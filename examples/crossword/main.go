// Crossword: fill a small crossword grid from a dictionary — a CSP with
// non-binary constraints (one per word slot), the classic case where
// generalized hypertree decompositions beat tree decompositions: each
// constraint covers a whole slot, so bags covered by two slot constraints
// solve in time polynomial in the dictionary, independent of slot length.
//
//	go run ./examples/crossword
package main

import (
	"fmt"
	"log"

	"hypertree/internal/core"
	"hypertree/internal/csp"
	"hypertree/internal/decomp"
)

// Grid (letters are variables, numbered cells):
//
//	0 1 2
//	3 . 4
//	5 6 7
//
// Slots: across 0-1-2, across 5-6-7, down 0-3-5, down 2-4-7.
func main() {
	words := []string{"ear", "end", "era", "ere", "net", "ran", "tan", "tar", "ten", "ton"}

	// Letters map to values 0..25.
	domain := make([]csp.Value, 26)
	for i := range domain {
		domain[i] = i
	}
	problem := csp.New(8, domain)
	slots := [][]int{
		{0, 1, 2},
		{5, 6, 7},
		{0, 3, 5},
		{2, 4, 7},
	}
	for _, slot := range slots {
		var tuples [][]csp.Value
		for _, w := range words {
			if len(w) != len(slot) {
				continue
			}
			row := make([]csp.Value, len(w))
			for i, ch := range w {
				row[i] = int(ch - 'a')
			}
			tuples = append(tuples, row)
		}
		problem.AddConstraint(slot, tuples)
	}

	h := problem.Hypergraph()
	d, err := core.Decompose(h, core.Options{Algorithm: core.AlgBBGHW, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("crossword constraint hypergraph: %v\n", h)
	fmt.Printf("ghw = %d (exact: %v) vs treewidth bags of up to %d letters\n",
		d.Width, d.Exact, d.TD.Width()+1)

	// Solve from the complete GHD: per-node joins over word lists, then
	// Acyclic Solving — never enumerating 26^k letter combinations.
	g := &decomp.GHD{}
	*g = *d.GHD
	g.Complete(h)
	sol := csp.SolveFromGHD(problem, g)
	if sol == nil {
		log.Fatal("no fill exists for this dictionary")
	}
	letter := func(v int) byte { return byte('a' + sol[v]) }
	fmt.Println("fill:")
	fmt.Printf("  %c %c %c\n", letter(0), letter(1), letter(2))
	fmt.Printf("  %c . %c\n", letter(3), letter(4))
	fmt.Printf("  %c %c %c\n", letter(5), letter(6), letter(7))
}
