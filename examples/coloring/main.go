// Coloring: model the map 3-coloring of Australia (thesis Example 1) as a
// CSP, decompose its constraint graph, and solve it backtrack-free from the
// tree decomposition via join-tree clustering + Acyclic Solving.
//
//	go run ./examples/coloring
package main

import (
	"fmt"
	"log"

	"hypertree/internal/core"
	"hypertree/internal/csp"
	"hypertree/internal/elim"
)

func main() {
	regions := []string{"WA", "NT", "Q", "SA", "NSW", "V", "TAS"}
	colors := []string{"red", "green", "blue"}

	problem := csp.New(len(regions), []csp.Value{0, 1, 2})
	problem.VarNames = regions
	borders := [][2]int{
		{0, 1}, // WA–NT
		{0, 3}, // WA–SA
		{1, 2}, // NT–Q
		{1, 3}, // NT–SA
		{2, 3}, // Q–SA
		{2, 4}, // Q–NSW
		{3, 4}, // SA–NSW
		{3, 5}, // SA–V
		{4, 5}, // NSW–V
	}
	for _, b := range borders {
		problem.AddNotEqual(b[0], b[1])
	}

	h := problem.Hypergraph()
	fmt.Printf("constraint hypergraph: %d variables, %d constraints\n", h.N(), h.M())

	// Exact treewidth of the constraint graph via A*.
	d, err := core.Decompose(h, core.Options{Algorithm: core.AlgAStarTW, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("treewidth: %d (exact: %v) — solving costs O(n·d^%d)\n", d.Width, d.Exact, d.Width+1)

	// Solve from the decomposition the search produced.
	td := elim.TDFromOrdering(h, d.Ordering)
	solution := csp.SolveFromTD(problem, td)
	if solution == nil {
		log.Fatal("unexpected: Australia is 3-colorable")
	}
	if !problem.Consistent(solution) {
		log.Fatal("solver returned an inconsistent assignment")
	}
	fmt.Println("coloring:")
	for i, r := range regions {
		fmt.Printf("  %-4s %s\n", r, colors[solution[i]])
	}
}
