// SAT: thesis Example 2 — boolean satisfiability as a CSP. The formula
// φ = (¬x1 ∨ x2 ∨ x3) ∧ (x1 ∨ ¬x4) ∧ (¬x3 ∨ ¬x5) has an acyclic constraint
// hypergraph, so Acyclic Solving decides it in polynomial time directly from
// a join tree; larger random 3-CNF formulas are then solved through tree
// decompositions, with the solution count computed by the counting DP.
//
//	go run ./examples/sat
package main

import (
	"fmt"
	"log"
	"math/rand"

	"hypertree/internal/csp"
	"hypertree/internal/elim"
	"hypertree/internal/hypergraph"
)

func main() {
	// --- Thesis Example 2 -------------------------------------------------
	clauses := [][]int{
		{-1, 2, 3}, // ¬x1 ∨ x2 ∨ x3
		{1, -4},    // x1 ∨ ¬x4
		{-3, -5},   // ¬x3 ∨ ¬x5
	}
	problem := cnfToCSP(5, clauses)
	h := problem.Hypergraph()
	fmt.Printf("φ: %d variables, %d clauses, acyclic: %v\n", h.N(), h.M(), hypergraph.IsAcyclic(h))

	jt, ok := hypergraph.BuildJoinTree(h)
	if !ok {
		log.Fatal("example 2 hypergraph should be acyclic")
	}
	sol := csp.SolveAcyclic(problem, jt)
	if sol == nil {
		log.Fatal("φ should be satisfiable")
	}
	fmt.Print("satisfying assignment:")
	for i, v := range sol {
		fmt.Printf(" x%d=%v", i+1, v == 1)
	}
	fmt.Println()
	// The thesis quotes the solution x1=t x2=t x3=f x4=t x5=f among others;
	// verify ours satisfies every clause.
	if !problem.Consistent(sol) {
		log.Fatal("inconsistent assignment")
	}

	// --- A cyclic random 3-CNF, solved through a tree decomposition --------
	rng := rand.New(rand.NewSource(7))
	n, m := 18, 30
	var rc [][]int
	for i := 0; i < m; i++ {
		vars := rng.Perm(n)[:3]
		var cl []int
		for _, v := range vars {
			lit := v + 1
			if rng.Intn(2) == 0 {
				lit = -lit
			}
			cl = append(cl, lit)
		}
		rc = append(rc, cl)
	}
	p2 := cnfToCSP(n, rc)
	h2 := p2.Hypergraph()
	order := elim.MinFillOrdering(h2.PrimalGraph(), rng)
	td := elim.TDFromOrdering(h2, order)
	fmt.Printf("\nrandom 3-CNF: %d vars, %d clauses, decomposition width %d\n",
		n, m, td.Width())
	if s := csp.SolveFromTD(p2, td); s != nil {
		fmt.Println("satisfiable; model count =", csp.CountFromTD(p2, td))
	} else {
		fmt.Println("unsatisfiable (proved via the decomposition)")
	}
}

// cnfToCSP turns clauses (1-based literals, negative = negated) into a CSP
// with one constraint per clause listing its satisfying assignments.
func cnfToCSP(numVars int, clauses [][]int) *csp.CSP {
	c := csp.New(numVars, []csp.Value{0, 1})
	for _, cl := range clauses {
		scope := make([]int, len(cl))
		for i, lit := range cl {
			v := lit
			if v < 0 {
				v = -v
			}
			scope[i] = v - 1
		}
		var tuples [][]csp.Value
		total := 1 << len(cl)
		for t := 0; t < total; t++ {
			vals := make([]csp.Value, len(cl))
			satisfied := false
			for i, lit := range cl {
				vals[i] = (t >> i) & 1
				if (lit > 0 && vals[i] == 1) || (lit < 0 && vals[i] == 0) {
					satisfied = true
				}
			}
			if satisfied {
				tuples = append(tuples, vals)
			}
		}
		c.AddConstraint(scope, tuples)
	}
	return c
}
