package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Progress is the periodic reporter sink for long runs: it rides the event
// stream (no goroutine, no timer) and prints one status line to w whenever
// at least Every of run time has passed since the last line. Improvements
// and run boundaries always print immediately — on an hour-long search those
// are exactly the lines worth seeing.
type Progress struct {
	mu    sync.Mutex
	w     io.Writer
	every time.Duration

	algo      string
	started   bool
	done      bool
	last      time.Duration
	width     int
	widthSet  bool
	lb        int
	nodes     int64
	evals     int64
	gen       int
	cacheHits int64
	cacheMiss int64
}

// NewProgress reports to w at most every interval (plus one line per
// improvement and per run start/stop). A non-positive interval defaults to
// 10 seconds.
func NewProgress(w io.Writer, every time.Duration) *Progress {
	if every <= 0 {
		every = 10 * time.Second
	}
	return &Progress{w: w, every: every}
}

// Record implements Recorder.
func (p *Progress) Record(e Event) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if e.Nodes > p.nodes {
		p.nodes = e.Nodes
	}
	if e.Evaluations > p.evals {
		p.evals = e.Evaluations
	}
	if e.Generation > p.gen {
		p.gen = e.Generation
	}
	switch e.Kind {
	case KindStart:
		p.algo = e.Algo
		p.started, p.done = true, false
		p.last = e.T
		p.widthSet = false
		p.lb, p.nodes, p.evals, p.gen = 0, 0, 0, 0
		fmt.Fprintf(p.w, "[%s] start: %d vertices, %d edges\n", p.algo, e.N, e.M)
	case KindImprove:
		p.width, p.widthSet = e.Width, true
		p.last = e.T
		fmt.Fprintf(p.w, "[%s] t=%v new best width %d%s\n",
			p.algo, e.T.Round(time.Millisecond), e.Width, p.effort())
	case KindLowerBound:
		if e.LowerBound > p.lb {
			p.lb = e.LowerBound
		}
	case KindCoverCache:
		p.cacheHits, p.cacheMiss = e.CacheHits, e.CacheMisses
	case KindCheckpoint, KindGeneration:
		if e.T-p.last >= p.every {
			p.last = e.T
			fmt.Fprintf(p.w, "[%s] t=%v %s%s\n",
				p.algo, e.T.Round(time.Millisecond), p.best(), p.effort())
		}
	case KindAttempt:
		fmt.Fprintf(p.w, "[%s] t=%v det-k attempt k=%d found=%v\n",
			p.algo, e.T.Round(time.Millisecond), e.K, e.Found)
	case KindStop:
		p.done = true
		status := "upper bound"
		if e.Exact {
			status = "exact"
		}
		stop := ""
		if e.Stop != "" {
			stop = fmt.Sprintf(" (stopped: %s)", e.Stop)
		}
		fmt.Fprintf(p.w, "[%s] done in %v: width %d (%s), lower bound %d%s\n",
			p.algo, e.T.Round(time.Millisecond), e.Width, status, e.LowerBound, stop)
	}
}

// Finish emits a terminal report when the current run never reached its
// algo_stop event — an interrupted or panicked run otherwise ends with the
// reporter silent about everything since its last line. Call it from the
// stop path after the run has ended (cmd/decompose does, including before
// surfacing a contained panic); after a normal algo_stop it prints nothing.
func (p *Progress) Finish() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.started || p.done {
		return
	}
	p.done = true
	fmt.Fprintf(p.w, "[%s] run ended without a stop event (interrupted or crashed): last known %s%s\n",
		p.algo, p.best(), p.effort())
}

// best renders the running best width / lower bound.
func (p *Progress) best() string {
	if !p.widthSet {
		return fmt.Sprintf("lb=%d", p.lb)
	}
	return fmt.Sprintf("best=%d lb=%d", p.width, p.lb)
}

// effort renders the effort counters that are non-zero.
func (p *Progress) effort() string {
	s := ""
	if p.nodes > 0 {
		s += fmt.Sprintf(" nodes=%d", p.nodes)
	}
	if p.evals > 0 {
		s += fmt.Sprintf(" evals=%d", p.evals)
	}
	if p.gen > 0 {
		s += fmt.Sprintf(" gen=%d", p.gen)
	}
	if p.cacheHits+p.cacheMiss > 0 {
		s += fmt.Sprintf(" cache=%d/%d", p.cacheHits, p.cacheMiss)
	}
	return s
}
