package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
)

// JSONLWriter is the trace sink: one JSON object per line per event,
// append-only, safe for concurrent use. The format is documented in
// OBSERVABILITY.md and validated by ValidateTrace; `cmd/decompose -trace`
// writes it and `make trace-smoke` checks it.
type JSONLWriter struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	out io.Writer
	err error
}

// NewJSONLWriter wraps w. Call Flush (or Close, when w is also a Closer)
// before reading the trace back; write errors latch and are reported there.
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	return &JSONLWriter{bw: bufio.NewWriter(w), out: w}
}

// Record implements Recorder. Marshalling cannot fail for Event values; I/O
// errors latch into the writer and surface from Flush/Close.
func (j *JSONLWriter) Record(e Event) {
	data, err := json.Marshal(e)
	j.mu.Lock()
	defer j.mu.Unlock()
	if err != nil {
		// Event is a flat struct of marshallable fields; this is unreachable,
		// but latch rather than panic inside an instrumentation path.
		if j.err == nil {
			j.err = err
		}
		return
	}
	if j.err != nil {
		return
	}
	if _, err := j.bw.Write(data); err != nil {
		j.err = err
		return
	}
	if err := j.bw.WriteByte('\n'); err != nil {
		j.err = err
	}
}

// Flush drains the buffer and returns the first error seen by any write.
func (j *JSONLWriter) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.bw.Flush(); err != nil && j.err == nil {
		j.err = err
	}
	return j.err
}

// Close flushes and closes the underlying writer when it is an io.Closer.
// The first error wins: a trace cut short by a full disk is reported, not
// silently truncated.
func (j *JSONLWriter) Close() error {
	err := j.Flush()
	if c, ok := j.out.(io.Closer); ok {
		if cerr := c.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}

// TraceSummary is what ValidateTrace learned about a trace, for reporting.
type TraceSummary struct {
	Events       int
	Starts       int
	Stops        int
	Improvements int
	Checkpoints  int
	// Unknown counts events whose kind is outside the taxonomy. The default
	// validation tolerates them (the schema is forward-compatible: a newer
	// writer may emit kinds this build does not know); strict mode rejects
	// them.
	Unknown int
	// Algos lists the distinct run labels seen, in first-seen order.
	Algos []string
}

// ValidateTrace checks a JSONL trace against the schema: every line is a
// JSON object with non-negative t_ns; the file contains at least one
// algo_start and one algo_stop; and within each run scope — the (req, algo
// label) pair, so a request-stamped daemon trace holding many runs of one
// algorithm validates per request — the improve events are non-increasing
// in width and non-decreasing in time. Unknown fields are allowed, and
// unknown event kinds are counted in the summary rather than rejected (the
// schema is forward-compatible). It returns a summary of what it saw.
func ValidateTrace(r io.Reader) (*TraceSummary, error) {
	return validateTrace(r, false)
}

// ValidateTraceStrict is ValidateTrace with two extra rejections for
// CI-pinned traces: event kinds outside the taxonomy are errors, and t_ns
// must be non-decreasing across each run (from one algo_start to the next).
//
// Strict ordering assumes a single-threaded writer. Concurrent emitters
// (SAIGA islands, parallel GA workers) timestamp events before taking the
// sink's lock, so adjacent lines can interleave a few microseconds out of
// order; validate those traces with the default mode instead.
func ValidateTraceStrict(r io.Reader) (*TraceSummary, error) {
	return validateTrace(r, true)
}

func validateTrace(r io.Reader, strict bool) (*TraceSummary, error) {
	sum := &TraceSummary{}
	seenAlgo := map[string]bool{}
	type runState struct {
		width int
		t     int64
		any   bool
	}
	improve := map[string]*runState{} // by req + algo label ("" + "" for unlabeled CLI runs)
	currentAlgo := ""
	var lastT int64 // strict mode: high-water t_ns within the current run

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var e struct {
			Kind  Kind   `json:"kind"`
			T     int64  `json:"t_ns"`
			Algo  string `json:"algo"`
			Req   string `json:"req"`
			Width int    `json:"width"`
		}
		if err := json.Unmarshal(raw, &e); err != nil {
			return nil, fmt.Errorf("obs: trace line %d is not a JSON event: %w", line, err)
		}
		if !ValidKind(e.Kind) {
			if strict {
				return nil, fmt.Errorf("obs: trace line %d has unknown kind %q", line, e.Kind)
			}
			sum.Unknown++
		}
		if e.T < 0 {
			return nil, fmt.Errorf("obs: trace line %d has negative t_ns %d", line, e.T)
		}
		if strict {
			if e.Kind == KindStart {
				lastT = 0 // a new run's clock restarts
			}
			if e.T < lastT {
				return nil, fmt.Errorf("obs: trace line %d: t_ns decreased %d -> %d within a run", line, lastT, e.T)
			}
			lastT = e.T
		}
		sum.Events++
		switch e.Kind {
		case KindStart:
			sum.Starts++
			currentAlgo = e.Algo
			if e.Algo != "" && !seenAlgo[e.Algo] {
				seenAlgo[e.Algo] = true
				sum.Algos = append(sum.Algos, e.Algo)
			}
		case KindStop:
			sum.Stops++
		case KindCheckpoint:
			sum.Checkpoints++
		case KindImprove:
			sum.Improvements++
			label := e.Algo
			if label == "" {
				label = currentAlgo
			}
			// Request-stamped traces (a daemon serving many runs of the same
			// algorithm into one stream) scope the anytime contract per
			// request; unstamped traces keep the per-label scope.
			key := e.Req + "\x00" + label
			st := improve[key]
			if st == nil {
				st = &runState{}
				improve[key] = st
			}
			if st.any {
				if e.Width > st.width {
					return nil, fmt.Errorf("obs: trace line %d: improve width increased %d -> %d (run %q)",
						line, st.width, e.Width, label)
				}
				if e.T < st.t {
					return nil, fmt.Errorf("obs: trace line %d: improve time decreased %d -> %d (run %q)",
						line, st.t, e.T, label)
				}
			}
			st.width, st.t, st.any = e.Width, e.T, true
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: reading trace: %w", err)
	}
	if sum.Events == 0 {
		return nil, fmt.Errorf("obs: trace is empty")
	}
	if sum.Starts == 0 {
		return nil, fmt.Errorf("obs: trace has no algo_start event")
	}
	if sum.Stops == 0 {
		return nil, fmt.Errorf("obs: trace has no algo_stop event")
	}
	return sum, nil
}

// ValidateTraceFile is ValidateTrace over a file path.
func ValidateTraceFile(path string) (*TraceSummary, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ValidateTrace(f)
}

// ValidateTraceFileStrict is ValidateTraceStrict over a file path.
func ValidateTraceFileStrict(path string) (*TraceSummary, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ValidateTraceStrict(f)
}
