package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestEventCountersConcurrent(t *testing.T) {
	c := NewEventCounters()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Record(Event{Kind: KindCheckpoint})
				c.Record(Event{Kind: KindImprove, Width: 4})
			}
		}()
	}
	wg.Wait()
	if got := c.Count(KindCheckpoint); got != 8000 {
		t.Fatalf("checkpoint count = %d, want 8000", got)
	}
	if got := c.Count(KindImprove); got != 8000 {
		t.Fatalf("improve count = %d, want 8000", got)
	}
	if got := c.Total(); got != 16000 {
		t.Fatalf("total = %d, want 16000", got)
	}
}

func TestEventCountersUnknownAndCache(t *testing.T) {
	c := NewEventCounters()
	if c.CacheHitRatio() != -1 {
		t.Fatal("ratio before any snapshot should be -1")
	}
	c.Record(Event{Kind: "mystery"})
	c.Record(Event{Kind: KindCoverCache, CacheHits: 90, CacheMisses: 10})
	c.Record(Event{Kind: KindCoverCache, CacheHits: 150, CacheMisses: 50}) // latest wins
	if got := c.CacheHitRatio(); got != 0.75 {
		t.Fatalf("hit ratio = %v, want 0.75", got)
	}
	if c.Counts()["unknown"] != 1 {
		t.Fatalf("unknown not counted: %v", c.Counts())
	}
}

func TestWriteOpenMetrics(t *testing.T) {
	c := NewEventCounters()
	c.Record(Event{Kind: KindStart, Algo: "bb-ghw"})
	c.Record(Event{Kind: KindImprove, Width: 3})
	c.Record(Event{Kind: KindCoverCache, CacheHits: 3, CacheMisses: 1})
	var buf bytes.Buffer
	if err := c.WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`hypertree_obs_events_total{kind="improve"} 1`,
		`hypertree_obs_events_total{kind="algo_start"} 1`,
		`hypertree_obs_events_total{kind="checkpoint"} 0`,
		"hypertree_cover_cache_hits 3",
		"hypertree_cover_cache_hit_ratio 0.75",
		"# TYPE hypertree_obs_events_total counter",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics missing %q:\n%s", want, out)
		}
	}
	// Every taxonomy kind appears even at zero, so dashboards see a stable
	// series set.
	for _, k := range Kinds {
		if !strings.Contains(out, `kind="`+string(k)+`"`) {
			t.Fatalf("kind %s missing:\n%s", k, out)
		}
	}
}
