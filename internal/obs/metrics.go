package obs

import (
	"fmt"
	"io"
	"sort"
	"sync/atomic"
)

// EventCounters is a Recorder that keeps only per-kind event totals and the
// latest cover-cache snapshot — the cheap, always-on aggregate a metrics
// endpoint wants, as opposed to RunStats's per-run detail. All methods are
// lock-free; one instance can sit behind an entire experiments process.
type EventCounters struct {
	counts  []atomic.Int64 // one slot per Kinds entry
	unknown atomic.Int64
	// Latest cover-cache snapshot (events carry cumulative totals, so the
	// last one seen wins).
	cacheHits, cacheMisses atomic.Int64
}

// kindIndex gives each taxonomy kind a fixed counter slot.
var kindIndex = func() map[Kind]int {
	m := make(map[Kind]int, len(Kinds))
	for i, k := range Kinds {
		m[k] = i
	}
	return m
}()

// NewEventCounters returns a zeroed counter set.
func NewEventCounters() *EventCounters {
	return &EventCounters{counts: make([]atomic.Int64, len(Kinds))}
}

// Record implements Recorder.
func (c *EventCounters) Record(e Event) {
	i, ok := kindIndex[e.Kind]
	if !ok {
		c.unknown.Add(1)
		return
	}
	c.counts[i].Add(1)
	if e.Kind == KindCoverCache {
		c.cacheHits.Store(e.CacheHits)
		c.cacheMisses.Store(e.CacheMisses)
	}
}

// Count returns the total for one kind (0 for kinds outside the taxonomy).
func (c *EventCounters) Count(k Kind) int64 {
	if i, ok := kindIndex[k]; ok {
		return c.counts[i].Load()
	}
	return 0
}

// Total returns the number of events recorded across all kinds.
func (c *EventCounters) Total() int64 {
	var t int64
	for i := range c.counts {
		t += c.counts[i].Load()
	}
	return t + c.unknown.Load()
}

// CacheHitRatio returns hits/(hits+misses) from the latest cover-cache
// snapshot, or -1 when no snapshot has been seen.
func (c *EventCounters) CacheHitRatio() float64 {
	h, m := c.cacheHits.Load(), c.cacheMisses.Load()
	if h+m == 0 {
		return -1
	}
	return float64(h) / float64(h+m)
}

// Counts returns a point-in-time copy of the per-kind totals, for expvar.
func (c *EventCounters) Counts() map[string]int64 {
	out := make(map[string]int64, len(kindIndex)+1)
	for k, i := range kindIndex {
		out[string(k)] = c.counts[i].Load()
	}
	if u := c.unknown.Load(); u > 0 {
		out["unknown"] = u
	}
	return out
}

// WriteOpenMetrics renders the counters in the Prometheus/OpenMetrics text
// exposition format, for a /metrics handler. Kinds are emitted in sorted
// order so the output is diffable.
func (c *EventCounters) WriteOpenMetrics(w io.Writer) error {
	kinds := make([]string, 0, len(kindIndex))
	for k := range kindIndex {
		kinds = append(kinds, string(k))
	}
	sort.Strings(kinds)
	if _, err := fmt.Fprintf(w, "# HELP hypertree_obs_events_total Instrumentation events recorded, by kind.\n# TYPE hypertree_obs_events_total counter\n"); err != nil {
		return err
	}
	for _, k := range kinds {
		if _, err := fmt.Fprintf(w, "hypertree_obs_events_total{kind=%q} %d\n", k, c.counts[kindIndex[Kind(k)]].Load()); err != nil {
			return err
		}
	}
	h, m := c.cacheHits.Load(), c.cacheMisses.Load()
	if _, err := fmt.Fprintf(w, "# HELP hypertree_cover_cache_hits Cover-engine memo cache hits (latest snapshot).\n# TYPE hypertree_cover_cache_hits gauge\nhypertree_cover_cache_hits %d\n", h); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "# HELP hypertree_cover_cache_misses Cover-engine memo cache misses (latest snapshot).\n# TYPE hypertree_cover_cache_misses gauge\nhypertree_cover_cache_misses %d\n", m); err != nil {
		return err
	}
	if ratio := c.CacheHitRatio(); ratio >= 0 {
		if _, err := fmt.Fprintf(w, "# HELP hypertree_cover_cache_hit_ratio Cover-cache hit ratio (latest snapshot).\n# TYPE hypertree_cover_cache_hit_ratio gauge\nhypertree_cover_cache_hit_ratio %g\n", ratio); err != nil {
			return err
		}
	}
	return nil
}
