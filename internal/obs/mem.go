package obs

import (
	"runtime"
	"sync/atomic"
	"time"
)

// DefaultMemSampleEvery is how many budget checkpoints pass between
// mem_sample events. Checkpoints fire every CheckEvery work units (default
// 256), so the default cadence is one runtime.ReadMemStats per ~4096 work
// units — far below the stop-the-world cost mattering, dense enough to catch
// a heap blow-up while it happens rather than at the OOM kill.
const DefaultMemSampleEvery = 16

// MemSampler emits sampled mem_sample events: every everyth Sample call
// reads runtime.MemStats and records one snapshot. It rides the budget
// checkpoint path, so observing memory adds no new hot-path branches; a nil
// *MemSampler is valid and disabled. Safe for concurrent use (checkpoints
// fire from SAIGA island and parallel-GA worker goroutines).
type MemSampler struct {
	every int64
	n     atomic.Int64
}

// NewMemSampler returns a sampler firing every everyth call; non-positive
// selects DefaultMemSampleEvery.
func NewMemSampler(every int64) *MemSampler {
	if every <= 0 {
		every = DefaultMemSampleEvery
	}
	return &MemSampler{every: every}
}

// Sample counts one checkpoint and, on the sampling boundary, records a
// mem_sample snapshot at run time t.
func (m *MemSampler) Sample(rec Recorder, t time.Duration) {
	if m == nil || rec == nil {
		return
	}
	if m.n.Add(1)%m.every != 0 {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	rec.Record(Event{
		Kind: KindMemSample, T: t,
		HeapAlloc:   ms.HeapAlloc,
		HeapSys:     ms.HeapSys,
		HeapObjects: ms.HeapObjects,
		NumGC:       ms.NumGC,
		GCPause:     time.Duration(ms.PauseTotalNs),
		Goroutines:  runtime.NumGoroutine(),
	})
}

// Checkpointer returns the stock budget-checkpoint observer: one checkpoint
// event per cooperative poll plus sampled mem_sample snapshots. Its
// signature matches budget.CheckpointFunc structurally (this package does
// not import the budget package), so callers pass it straight to
// budget.B.OnCheckpoint.
func Checkpointer(rec Recorder) func(nodes int64, elapsed time.Duration) {
	ms := NewMemSampler(0)
	return func(nodes int64, elapsed time.Duration) {
		rec.Record(Event{Kind: KindCheckpoint, T: elapsed, Nodes: nodes})
		ms.Sample(rec, elapsed)
	}
}
