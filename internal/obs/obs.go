// Package obs is the unified instrumentation layer: every algorithm in this
// repository emits the same typed events — run start/stop, budget checkpoint
// ticks, anytime best-width improvements, per-generation GA summaries,
// cover-cache traffic snapshots — through a Recorder, and every consumer
// (the in-memory RunStats aggregator, the JSONL trace writer, the periodic
// progress reporter) is just a Recorder implementation.
//
// The thesis's empirical chapters judge heuristics by trajectories (best
// width over time, nodes expanded, generations to convergence), not only by
// terminal results; this package is what makes those trajectories observable
// without printf debugging.
//
// Design rules:
//
//   - A nil Recorder means "instrumentation disabled" and is the default
//     everywhere. Hot paths guard emissions with a single nil check; the
//     disabled cost is one branch (see BenchmarkNoopRecorder).
//   - Events ride on existing control-flow edges — budget cooperative
//     checkpoints, generation boundaries, best-so-far improvements — never
//     on per-work-unit inner loops.
//   - Recorder implementations must be safe for concurrent use: SAIGA
//     islands, parallel GA workers and a shared cover engine all record
//     into one Recorder.
//   - The package depends only on the standard library and imports nothing
//     from this repository, so every internal package can use it.
package obs

import "time"

// Kind names an event type. The full taxonomy is documented in
// OBSERVABILITY.md; ValidTrace enforces it.
type Kind string

// The event taxonomy.
const (
	// KindStart opens a run: algorithm label plus instance size (N vertices,
	// M hyperedges).
	KindStart Kind = "algo_start"
	// KindStop closes a run: final width, lower bound, exactness, effort
	// counters and the budget stop reason (empty = ran to completion).
	KindStop Kind = "algo_stop"
	// KindCheckpoint is a budget cooperative checkpoint tick (every
	// CheckEvery work units): nodes so far and elapsed time. These are the
	// heartbeat of a trace — a long gap between checkpoints is a stall.
	KindCheckpoint Kind = "checkpoint"
	// KindImprove records an anytime best-width improvement: the new width
	// with the node/evaluation/generation counters at the moment it was
	// found. Within one run, improvements are non-increasing in width and
	// non-decreasing in time.
	KindImprove Kind = "improve"
	// KindLowerBound records an improved proven lower bound (A*'s max
	// popped f, det-k-decomp's refuted widths).
	KindLowerBound Kind = "lower_bound"
	// KindGeneration is a GA/SAIGA per-generation (per-epoch, for islands)
	// fitness summary.
	KindGeneration Kind = "generation"
	// KindCoverCache is a cumulative snapshot of a cover engine's memo
	// cache counters (hits, misses, evictions, size), sampled every
	// SampleEvery-th cover query.
	KindCoverCache Kind = "cover_cache"
	// KindAttempt is one det-k-decomp width attempt: K is the width tried,
	// Found whether a decomposition of that width exists.
	KindAttempt Kind = "detk_attempt"
	// KindMemSample is a sampled runtime.MemStats snapshot riding the budget
	// checkpoint cadence (every MemSampler.every checkpoints): heap in use,
	// heap reserved, live objects, GC cycles and total pause. These are what
	// diagnose the memory blow-ups that kill det-k-style searches in practice.
	KindMemSample Kind = "mem_sample"
	// KindSpan is one finished phase of a request's serving lifecycle
	// (queue_wait, parse, cache, solve, encode, and the pseudo-phase total):
	// Phase names it, Dur is how long it took, T is when it *ended* relative
	// to the request's arrival. Spans are emitted by the decomposition daemon,
	// one per phase per request, each stamped with the request id — they are
	// what turns "this request took 2 seconds" into "1.9 of them were queue
	// wait". Note the clock: span T is request-relative while solver events
	// inside the same request are budget-relative (the solve span marks the
	// offset between the two bases).
	KindSpan Kind = "span"
	// KindAttr is one member's terminal attribution record: after a run ends,
	// one attr event per portfolio member (and exactly one for a serial run)
	// summarizes that member's share of the bill — attributed nodes, CPU-time
	// estimate (Dur), cover-cache traffic, checkpoints, improvements
	// contributed, best lower bound, node share (Share) and final Role
	// (winner / aborted-loser / deadline / ...). The per-member Nodes fields
	// of a portfolio's attr events sum exactly to the run's global node
	// count — the conservation invariant tracestat's attribution report
	// re-checks.
	KindAttr Kind = "attr"
)

// Event is one instrumentation record. Fields are kind-specific; unset
// fields marshal away under omitempty. T is the only universally present
// field besides Kind: nanoseconds since the run's budget started (or since
// the recorder was created, for budget-less runs).
type Event struct {
	Kind Kind `json:"kind"`
	// T is the elapsed time into the run at which the event was emitted.
	T time.Duration `json:"t_ns"`
	// Algo labels the run ("astar-tw", "ga-ghw", ...). Present on
	// algo_start/algo_stop; other events inherit the label of the run that
	// contains them.
	Algo string `json:"algo,omitempty"`
	// N and M are the instance size (vertices, hyperedges) on algo_start.
	N int `json:"n,omitempty"`
	M int `json:"m,omitempty"`
	// Width is the best width achieved (improve, algo_stop) or the
	// generation's best fitness (generation).
	Width int `json:"width,omitempty"`
	// LowerBound is the best proven lower bound so far.
	LowerBound int `json:"lower_bound,omitempty"`
	// Exact reports a width proved optimal (algo_stop).
	Exact bool `json:"exact,omitempty"`
	// Nodes and Evaluations are the effort counters at emission time:
	// search-tree expansions and fitness evaluations.
	Nodes       int64 `json:"nodes,omitempty"`
	Evaluations int64 `json:"evaluations,omitempty"`
	// Generation is the 1-based GA generation (SAIGA: epoch) the event
	// belongs to.
	Generation int `json:"generation,omitempty"`
	// Island is the 1-based SAIGA island an event belongs to (0 = not an
	// island event).
	Island int `json:"island,omitempty"`
	// MeanWidth is the generation's mean fitness over the evaluated
	// individuals (generation events; 0 when unknown).
	MeanWidth float64 `json:"mean_width,omitempty"`
	// K and Found describe a det-k-decomp attempt.
	K     int  `json:"k,omitempty"`
	Found bool `json:"found,omitempty"`
	// Open and MaxOpen are the A* open-list size at emission and its
	// high-water mark; Closed is the duplicate-detection set size (dedup
	// mode only). Emitted on checkpoint and algo_stop events.
	Open    int `json:"open,omitempty"`
	MaxOpen int `json:"max_open,omitempty"`
	Closed  int `json:"closed,omitempty"`
	// Depth and Backtracks are the BB search-shape gauges on checkpoint
	// events: the current elimination-prefix depth and the cumulative count
	// of exhausted subtrees.
	Depth      int   `json:"depth,omitempty"`
	Backtracks int64 `json:"backtracks,omitempty"`
	// WidthStd and DistinctWidths are the population-diversity fields of
	// generation events: the standard deviation of the scored widths and the
	// number of distinct width values in the generation (a collapsed GA has
	// WidthStd near 0 and DistinctWidths 1).
	WidthStd       float64 `json:"width_std,omitempty"`
	DistinctWidths int     `json:"distinct_widths,omitempty"`
	// The mem_sample payload: heap bytes in use / reserved from the OS, live
	// objects, completed GC cycles and cumulative GC pause, plus the process
	// goroutine count.
	HeapAlloc   uint64        `json:"heap_alloc,omitempty"`
	HeapSys     uint64        `json:"heap_sys,omitempty"`
	HeapObjects uint64        `json:"heap_objects,omitempty"`
	NumGC       uint32        `json:"num_gc,omitempty"`
	GCPause     time.Duration `json:"gc_pause_ns,omitempty"`
	Goroutines  int           `json:"goroutines,omitempty"`
	// Cache counters are cumulative cover-engine totals at emission time.
	CacheHits      int64 `json:"cache_hits,omitempty"`
	CacheMisses    int64 `json:"cache_misses,omitempty"`
	CacheEvictions int64 `json:"cache_evictions,omitempty"`
	CacheSize      int   `json:"cache_size,omitempty"`
	// WorkerID is the 1-based parallel worker that emitted the event; 0 (and
	// absent from JSON) means the run's single main goroutine. Parallel BB
	// workers stamp it on their improve events so a trace shows which worker
	// tightened the shared incumbent.
	WorkerID int `json:"worker_id,omitempty"`
	// Steals and Requeues are the work-stealing counters of a parallel
	// search's algo_stop event: tasks taken from another worker's deque, and
	// tasks pushed back when a worker split its subtree to feed idle peers.
	Steals   int64 `json:"steals,omitempty"`
	Requeues int64 `json:"requeues,omitempty"`
	// Stop is the budget stop reason on algo_stop (empty = completed).
	Stop string `json:"stop,omitempty"`
	// Req is the serving request the event belongs to, stamped by the
	// decomposition daemon (see WithReq). Empty outside a daemon: CLI runs
	// are one run per process and need no correlation key. In a daemon trace
	// it is what separates the interleaved event streams of concurrent
	// requests.
	Req string `json:"req,omitempty"`
	// Phase and Dur are the span payload: the lifecycle phase that finished
	// and how long it took. Outcome is set on the "total" span only — the
	// request's typed disposition (exact, degraded, rejected, ...), so a
	// trace can slice latency distributions by outcome without joining
	// against an access log.
	Phase   string        `json:"phase,omitempty"`
	Dur     time.Duration `json:"dur_ns,omitempty"`
	Outcome string        `json:"outcome,omitempty"`
	// Role, Improvements and Share are the attr payload: the member's final
	// role in the run (winner, aborted-loser, deadline, ...), how many
	// incumbent improvements it claimed, and its fraction of the run's global
	// node count. The attr event reuses Nodes/Dur/Cache*/Width/LowerBound for
	// the rest of the ledger; see internal/obs/attr.
	Role         string  `json:"role,omitempty"`
	Improvements int     `json:"improvements,omitempty"`
	Share        float64 `json:"share,omitempty"`
}

// Kinds lists the full event taxonomy, for validation.
var Kinds = []Kind{
	KindStart, KindStop, KindCheckpoint, KindImprove, KindLowerBound,
	KindGeneration, KindCoverCache, KindAttempt, KindMemSample, KindSpan,
	KindAttr,
}

// ValidKind reports whether k is part of the taxonomy.
func ValidKind(k Kind) bool {
	for _, known := range Kinds {
		if k == known {
			return true
		}
	}
	return false
}

// Recorder consumes events. Implementations must be safe for concurrent
// use; Record must not retain e (it is reused by some emitters).
//
// A nil Recorder disables instrumentation; emitters guard with a nil check,
// so the disabled cost is one branch per emission site.
type Recorder interface {
	Record(e Event)
}

// noop discards every event. It exists for callers that need a non-nil
// Recorder (e.g. to measure the enabled-but-idle dispatch cost); library
// code treats nil as the disabled default instead.
type noop struct{}

func (noop) Record(Event) {}

// Noop is a Recorder that discards everything.
var Noop Recorder = noop{}

// reqStamper wraps a Recorder, stamping every event with a request id.
type reqStamper struct {
	rec Recorder
	req string
}

func (s reqStamper) Record(e Event) {
	if e.Req == "" {
		e.Req = s.req
	}
	s.rec.Record(e)
}

// WithReq wraps rec so every event it records carries the request id req
// (events that already have one keep it). The daemon gives each request its
// own wrapper around the shared trace sink, so one JSONL file interleaves
// many concurrent runs and stays attributable. A nil rec returns nil,
// preserving the disabled fast path.
func WithReq(rec Recorder, req string) Recorder {
	if rec == nil {
		return nil
	}
	return reqStamper{rec: rec, req: req}
}

// algoStamper wraps a Recorder, stamping every event with a run label.
type algoStamper struct {
	rec  Recorder
	algo string
}

func (s algoStamper) Record(e Event) {
	if e.Algo == "" {
		e.Algo = s.algo
	}
	s.rec.Record(e)
}

// WithAlgo wraps rec so every event it records carries the run label algo
// (events that already have one keep it). A portfolio run interleaves
// several concurrent solvers into one trace; ValidateTrace scopes its
// anytime-width check per (req, algo) pair, but only when concurrent
// emitters stamp the label explicitly — the algo_start fallback assumes a
// single run at a time. A nil rec returns nil, preserving the disabled fast
// path.
func WithAlgo(rec Recorder, algo string) Recorder {
	if rec == nil {
		return nil
	}
	return algoStamper{rec: rec, algo: algo}
}

// multi fans events out to several recorders in order.
type multi []Recorder

func (m multi) Record(e Event) {
	for _, r := range m {
		r.Record(e)
	}
}

// Tee combines recorders, skipping nils. It returns nil when every argument
// is nil, so emitters keep their single nil-check fast path, and returns the
// sole survivor unwrapped when only one is non-nil.
func Tee(rs ...Recorder) Recorder {
	var live multi
	for _, r := range rs {
		if r != nil {
			live = append(live, r)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return live
}
