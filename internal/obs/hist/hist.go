// Package hist provides mergeable, concurrency-safe, log-bucketed latency
// histograms — the aggregation primitive behind the daemon's request-latency
// metrics, and a reusable one: anything that observes durations at high rate
// from many goroutines (serving paths, parallel workers, benchmark loops)
// can fold them into a Histogram and read quantiles or OpenMetrics output
// later.
//
// The design follows the repository's two standing disciplines:
//
//   - Hot-path writes are lock-free and lock-striped, the same contention
//     discipline as the setcover engine's sharded cover cache: each
//     observation picks a shard by hashing the observed value and bumps
//     per-shard atomic counters, so concurrent observers do not serialize on
//     one cache line.
//   - Reads are snapshot-based: Snapshot folds the shards into one immutable
//     bucket vector that supports quantile estimation, merging across
//     histograms (same bounds required), and OpenMetrics rendering. A
//     snapshot taken while observers are live is a consistent-enough cut for
//     metrics (each counter is individually atomic; the cut is not
//     linearizable across buckets).
//
// Buckets are logarithmic: geometrically spaced upper bounds plus one
// overflow bucket, so a fixed, small bucket count covers microseconds to
// minutes with bounded relative error. Quantiles interpolate linearly inside
// the winning bucket, which keeps the estimate within one bucket ratio of
// the true value — the right trade for serving-latency percentiles (P50,
// P95, P99), where shape matters and the fourth significant digit does not.
//
// A nil *Histogram is valid and inert (Observe is a no-op, Snapshot returns
// an empty snapshot), mirroring the nil-Recorder contract of internal/obs.
package hist

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// DefaultBounds returns the default bucket upper bounds: a 1 / 2.5 / 5
// decade ladder from 10µs to 100s (22 bounds; everything above the last
// falls into the overflow bucket). The ladder renders cleanly as OpenMetrics
// `le` values and keeps worst-case quantile interpolation error at one
// bucket ratio (≤ 2.5x), far inside the noise of serving-latency tails.
func DefaultBounds() []time.Duration {
	var out []time.Duration
	for decade := time.Duration(10 * time.Microsecond); decade <= 10*time.Second; decade *= 10 {
		out = append(out, decade, decade*5/2, decade*5)
	}
	return append(out, 100*time.Second)
}

// numShards is the lock-striping width. Sixteen shards matches the setcover
// cover cache and the daemon result cache: enough that concurrent observers
// spread across cache lines, few enough that snapshots stay cheap.
const numShards = 16

// shard is one stripe of counters. Each shard is allocated its own counts
// slice, so two shards' hot counters live in different allocations (no
// deliberate false sharing).
type shard struct {
	counts []atomic.Int64 // one per bound, plus the overflow bucket
	count  atomic.Int64
	sumNS  atomic.Int64
}

// Histogram is a concurrency-safe duration histogram. Create with New or
// NewWithBounds; the zero value and nil are valid, inert histograms.
type Histogram struct {
	bounds []time.Duration // ascending upper bounds; implicit +Inf after
	shards []shard
}

// New returns a histogram over DefaultBounds.
func New() *Histogram { return NewWithBounds(DefaultBounds()) }

// NewWithBounds returns a histogram with the given ascending upper bounds
// (an overflow bucket is implicit). It panics on empty or unsorted bounds —
// bucket layouts are compile-time decisions, not runtime inputs.
func NewWithBounds(bounds []time.Duration) *Histogram {
	if len(bounds) == 0 {
		panic("hist: no bounds")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("hist: bounds not strictly ascending")
		}
	}
	h := &Histogram{
		bounds: append([]time.Duration(nil), bounds...),
		shards: make([]shard, numShards),
	}
	for i := range h.shards {
		h.shards[i].counts = make([]atomic.Int64, len(bounds)+1)
	}
	return h
}

// mix is SplitMix64's finalizer: it spreads the observed value over the
// shard space so concurrent observers land on different stripes without any
// shared state (durations differ at nanosecond granularity, so consecutive
// observations hash apart even when they are "the same" latency).
func mix(v uint64) uint64 {
	v ^= v >> 30
	v *= 0xbf58476d1ce4e5b9
	v ^= v >> 27
	v *= 0x94d049bb133111eb
	v ^= v >> 31
	return v
}

// Observe records one duration. Negative durations clamp to zero (clock
// steps happen; a histogram is the wrong place to crash). Safe for
// concurrent use; a nil histogram discards the observation.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	// Binary search over ~23 bounds is a handful of branches — observations
	// happen per request, not per work unit, so clarity beats a log-linear
	// index trick here.
	idx := sort.Search(len(h.bounds), func(i int) bool { return d <= h.bounds[i] })
	sh := &h.shards[mix(uint64(d))%numShards]
	sh.counts[idx].Add(1)
	sh.count.Add(1)
	sh.sumNS.Add(int64(d))
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	var n int64
	for i := range h.shards {
		n += h.shards[i].count.Load()
	}
	return n
}

// Snapshot folds the shards into one immutable bucket vector. Safe to call
// while observers are live; a nil histogram snapshots empty.
func (h *Histogram) Snapshot() *Snapshot {
	if h == nil {
		return &Snapshot{}
	}
	s := &Snapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.bounds)+1),
	}
	for i := range h.shards {
		sh := &h.shards[i]
		for j := range sh.counts {
			s.Counts[j] += sh.counts[j].Load()
		}
		s.Count += sh.count.Load()
		s.Sum += time.Duration(sh.sumNS.Load())
	}
	return s
}

// Snapshot is a point-in-time bucket vector: Counts[i] observations fell at
// or under Bounds[i], Counts[len(Bounds)] is the overflow bucket. The zero
// value is an empty snapshot.
type Snapshot struct {
	Bounds []time.Duration
	Counts []int64
	Count  int64
	Sum    time.Duration
}

// Quantile estimates the q-quantile (0 < q <= 1) by linear interpolation
// inside the winning bucket; observations in the overflow bucket report the
// last bound (an underestimate, flagged by Quantile returning exactly that
// bound). An empty snapshot returns 0.
func (s *Snapshot) Quantile(q float64) time.Duration {
	if s == nil || s.Count == 0 {
		return 0
	}
	if q <= 0 {
		q = math.SmallestNonzeroFloat64
	}
	if q > 1 {
		q = 1
	}
	// Nearest-rank target: the smallest bucket whose cumulative count
	// reaches ceil(q * Count).
	target := int64(math.Ceil(q * float64(s.Count)))
	var cum int64
	for i, c := range s.Counts {
		if c == 0 {
			cum += c
			continue
		}
		if cum+c >= target {
			if i >= len(s.Bounds) {
				return s.Bounds[len(s.Bounds)-1] // overflow: best we can say
			}
			lo := time.Duration(0)
			if i > 0 {
				lo = s.Bounds[i-1]
			}
			hi := s.Bounds[i]
			frac := float64(target-cum) / float64(c)
			return lo + time.Duration(frac*float64(hi-lo))
		}
		cum += c
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Mean returns the arithmetic mean, or 0 for an empty snapshot. Unlike
// quantiles it is exact: Sum tracks true durations, not bucket midpoints.
func (s *Snapshot) Mean() time.Duration {
	if s == nil || s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// Merge adds o's buckets into s. Both snapshots must share the same bucket
// bounds — mergeability is the point of fixing bounds at construction (merge
// per-worker histograms, merge per-outcome histograms into an overall one).
// Merging an empty snapshot (no bounds) is a no-op; merging into an empty
// snapshot adopts o's bounds.
func (s *Snapshot) Merge(o *Snapshot) error {
	if o == nil || o.Count == 0 && len(o.Bounds) == 0 {
		return nil
	}
	if len(s.Bounds) == 0 {
		s.Bounds = o.Bounds
		s.Counts = make([]int64, len(o.Counts))
	}
	if len(s.Bounds) != len(o.Bounds) {
		return fmt.Errorf("hist: merging incompatible bucket layouts (%d vs %d bounds)", len(s.Bounds), len(o.Bounds))
	}
	for i, b := range s.Bounds {
		if o.Bounds[i] != b {
			return fmt.Errorf("hist: merging incompatible bucket layouts (bound %d: %v vs %v)", i, b, o.Bounds[i])
		}
	}
	for i, c := range o.Counts {
		s.Counts[i] += c
	}
	s.Count += o.Count
	s.Sum += o.Sum
	return nil
}

// Label is one OpenMetrics label pair, pre-validated by the caller (names
// are identifiers, values are escaped by the renderer).
type Label struct {
	Name, Value string
}

// Series pairs a snapshot with the labels identifying it inside a family
// (e.g. outcome="exact"). Labels may be empty for single-series families.
type Series struct {
	Labels []Label
	Snap   *Snapshot
}

// labelPrefix renders `name="value",` pairs ready to prepend to a final
// label (le, quantile), or the empty string.
func labelPrefix(labels []Label) string {
	var b strings.Builder
	for _, l := range labels {
		fmt.Fprintf(&b, "%s=%q,", l.Name, l.Value)
	}
	return b.String()
}

// labelSet renders a complete `{...}` label block, or the empty string for
// an unlabeled series.
func labelSet(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	p := labelPrefix(labels)
	return "{" + p[:len(p)-1] + "}"
}

// WriteHistogramFamily renders one OpenMetrics histogram family: HELP/TYPE
// once, then per series the cumulative `le` buckets (ending in +Inf), the
// `_sum` (seconds) and the `_count`. Bucket cumulativity and the
// +Inf == _count identity hold by construction.
func WriteHistogramFamily(w io.Writer, name, help string, series ...Series) error {
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name); err != nil {
		return err
	}
	for _, sr := range series {
		s := sr.Snap
		if s == nil {
			s = &Snapshot{}
		}
		prefix := labelPrefix(sr.Labels)
		var cum int64
		for i, b := range s.Bounds {
			if i < len(s.Counts) {
				cum += s.Counts[i]
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{%sle=\"%g\"} %d\n", name, prefix, b.Seconds(), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", name, prefix, s.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %g\n", name, labelSet(sr.Labels), s.Sum.Seconds()); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_count%s %d\n", name, labelSet(sr.Labels), s.Count); err != nil {
			return err
		}
	}
	return nil
}

// WriteSummaryFamily renders one OpenMetrics summary family: HELP/TYPE once,
// then per series one `quantile` sample per requested quantile (estimated
// from the snapshot's buckets) plus `_sum` and `_count`. This is how the
// daemon exposes P50/P95/P99 directly, next to the raw histograms a remote
// aggregator would prefer.
func WriteSummaryFamily(w io.Writer, name, help string, quantiles []float64, series ...Series) error {
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s summary\n", name, help, name); err != nil {
		return err
	}
	for _, sr := range series {
		s := sr.Snap
		if s == nil {
			s = &Snapshot{}
		}
		prefix := labelPrefix(sr.Labels)
		for _, q := range quantiles {
			if _, err := fmt.Fprintf(w, "%s{%squantile=\"%g\"} %g\n", name, prefix, q, s.Quantile(q).Seconds()); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %g\n", name, labelSet(sr.Labels), s.Sum.Seconds()); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_count%s %d\n", name, labelSet(sr.Labels), s.Count); err != nil {
			return err
		}
	}
	return nil
}
