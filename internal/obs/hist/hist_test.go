package hist

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestDefaultBoundsAscending(t *testing.T) {
	b := DefaultBounds()
	if len(b) == 0 {
		t.Fatal("no default bounds")
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("bounds not ascending at %d: %v <= %v", i, b[i], b[i-1])
		}
	}
	if b[0] != 10*time.Microsecond || b[len(b)-1] != 100*time.Second {
		t.Fatalf("bounds range %v .. %v, want 10µs .. 100s", b[0], b[len(b)-1])
	}
}

func TestObserveAndCount(t *testing.T) {
	h := New()
	for i := 0; i < 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if got := h.Count(); got != 100 {
		t.Fatalf("count = %d, want 100", got)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("snapshot count = %d, want 100", s.Count)
	}
	var sum int64
	for _, c := range s.Counts {
		sum += c
	}
	if sum != 100 {
		t.Fatalf("bucket counts sum to %d, want 100", sum)
	}
	// Sum is exact, not bucketed: 0+1+...+99 ms.
	if want := time.Duration(99*100/2) * time.Millisecond; s.Sum != want {
		t.Fatalf("sum = %v, want %v", s.Sum, want)
	}
}

func TestNegativeAndOverflow(t *testing.T) {
	h := New()
	h.Observe(-5 * time.Second) // clamps to 0, lands in the first bucket
	h.Observe(20 * time.Minute) // beyond the last bound: overflow bucket
	s := h.Snapshot()
	if s.Counts[0] != 1 {
		t.Fatalf("negative observation not clamped into first bucket: %v", s.Counts)
	}
	if s.Counts[len(s.Counts)-1] != 1 {
		t.Fatalf("huge observation not in overflow bucket: %v", s.Counts)
	}
	// The overflow quantile reports the last bound, not garbage.
	if q := s.Quantile(1); q != s.Bounds[len(s.Bounds)-1] {
		t.Fatalf("overflow quantile = %v, want last bound %v", q, s.Bounds[len(s.Bounds)-1])
	}
}

func TestNilHistogramInert(t *testing.T) {
	var h *Histogram
	h.Observe(time.Second) // must not panic
	if h.Count() != 0 {
		t.Fatal("nil count != 0")
	}
	s := h.Snapshot()
	if s == nil || s.Count != 0 || s.Quantile(0.5) != 0 || s.Mean() != 0 {
		t.Fatalf("nil snapshot not empty: %+v", s)
	}
}

// TestQuantileAccuracy checks the log-bucket error bound: estimates stay
// within one bucket ratio of the exact sample quantile.
func TestQuantileAccuracy(t *testing.T) {
	h := New()
	rng := rand.New(rand.NewSource(42))
	samples := make([]time.Duration, 0, 20000)
	for i := 0; i < 20000; i++ {
		// Log-uniform latencies from ~50µs to ~5s — the serving regime.
		d := time.Duration(float64(50*time.Microsecond) * math.Exp(rng.Float64()*11.5))
		samples = append(samples, d)
		h.Observe(d)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	s := h.Snapshot()
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
		exact := samples[int(q*float64(len(samples)))-1]
		got := s.Quantile(q)
		ratio := float64(got) / float64(exact)
		if ratio < 1/2.6 || ratio > 2.6 {
			t.Errorf("q=%v: estimate %v vs exact %v (ratio %.2f) outside one bucket step", q, got, exact, ratio)
		}
	}
}

func TestQuantileInterpolation(t *testing.T) {
	h := NewWithBounds([]time.Duration{10 * time.Millisecond, 20 * time.Millisecond})
	// 100 observations all inside (10ms, 20ms].
	for i := 0; i < 100; i++ {
		h.Observe(15 * time.Millisecond)
	}
	s := h.Snapshot()
	// Median interpolates to the middle of the winning bucket.
	if q := s.Quantile(0.5); q != 15*time.Millisecond {
		t.Fatalf("interpolated median = %v, want 15ms", q)
	}
	if q := s.Quantile(1); q != 20*time.Millisecond {
		t.Fatalf("q=1 = %v, want bucket upper bound 20ms", q)
	}
}

func TestMerge(t *testing.T) {
	a, b := New(), New()
	for i := 0; i < 50; i++ {
		a.Observe(time.Millisecond)
		b.Observe(time.Second)
	}
	sa, sb := a.Snapshot(), b.Snapshot()
	if err := sa.Merge(sb); err != nil {
		t.Fatal(err)
	}
	if sa.Count != 100 {
		t.Fatalf("merged count = %d, want 100", sa.Count)
	}
	if want := 50*time.Millisecond + 50*time.Second; sa.Sum != want {
		t.Fatalf("merged sum = %v, want %v", sa.Sum, want)
	}
	// Median straddles the two populations.
	if q := sa.Quantile(0.5); q > 10*time.Millisecond {
		t.Fatalf("merged median %v should sit in the fast half", q)
	}
	if q := sa.Quantile(0.99); q < 500*time.Millisecond {
		t.Fatalf("merged p99 %v should sit in the slow half", q)
	}

	// Merging into an empty snapshot adopts the layout.
	empty := &Snapshot{}
	if err := empty.Merge(sb); err != nil {
		t.Fatal(err)
	}
	if empty.Count != 50 {
		t.Fatalf("empty-merge count = %d, want 50", empty.Count)
	}

	// Incompatible layouts refuse to merge.
	other := NewWithBounds([]time.Duration{time.Second}).Snapshot()
	other.Counts[0] = 1
	other.Count = 1
	if err := sa.Merge(other); err == nil {
		t.Fatal("incompatible merge must error")
	}
}

func TestConcurrentObserve(t *testing.T) {
	h := New()
	var wg sync.WaitGroup
	const goroutines, per = 8, 10000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(g*per+i) * time.Microsecond)
			}
		}(g)
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*per {
		t.Fatalf("count = %d, want %d (lost updates)", got, goroutines*per)
	}
	var sum int64
	for _, c := range h.Snapshot().Counts {
		sum += c
	}
	if sum != goroutines*per {
		t.Fatalf("bucket sum = %d, want %d", sum, goroutines*per)
	}
}

func TestWriteHistogramFamilyCumulative(t *testing.T) {
	h := New()
	h.Observe(5 * time.Microsecond)
	h.Observe(30 * time.Millisecond)
	h.Observe(2 * time.Second)
	h.Observe(20 * time.Minute) // overflow
	var buf bytes.Buffer
	err := WriteHistogramFamily(&buf, "test_seconds", "A test histogram.",
		Series{Labels: []Label{{"outcome", "exact"}}, Snap: h.Snapshot()})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "# HELP test_seconds A test histogram.") ||
		!strings.Contains(out, "# TYPE test_seconds histogram") {
		t.Fatalf("missing HELP/TYPE:\n%s", out)
	}
	if !strings.Contains(out, `test_seconds_bucket{outcome="exact",le="+Inf"} 4`) {
		t.Fatalf("missing +Inf bucket with total count:\n%s", out)
	}
	if !strings.Contains(out, `test_seconds_count{outcome="exact"} 4`) {
		t.Fatalf("missing _count:\n%s", out)
	}
	// Bucket values are cumulative and non-decreasing.
	last := int64(-1)
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "test_seconds_bucket") {
			continue
		}
		v, err := strconv.ParseInt(line[strings.LastIndex(line, " ")+1:], 10, 64)
		if err != nil {
			t.Fatalf("bad bucket line %q: %v", line, err)
		}
		if v < last {
			t.Fatalf("bucket counts decreased at %q", line)
		}
		last = v
	}
	if last != 4 {
		t.Fatalf("final cumulative bucket = %d, want 4", last)
	}
}

func TestWriteSummaryFamily(t *testing.T) {
	h := New()
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	var buf bytes.Buffer
	err := WriteSummaryFamily(&buf, "test_latency_seconds", "Quantiles.", []float64{0.5, 0.95, 0.99},
		Series{Labels: []Label{{"phase", "solve"}}, Snap: h.Snapshot()})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE test_latency_seconds summary",
		`test_latency_seconds{phase="solve",quantile="0.5"}`,
		`test_latency_seconds{phase="solve",quantile="0.95"}`,
		`test_latency_seconds{phase="solve",quantile="0.99"}`,
		`test_latency_seconds_count{phase="solve"} 100`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
	// The rendered p50 must be close to the true 50ms median.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, `quantile="0.5"`) {
			var v float64
			if _, err := fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%g", &v); err != nil {
				t.Fatalf("bad quantile line %q", line)
			}
			if v < 0.025 || v > 0.1 {
				t.Fatalf("rendered p50 %vs too far from 0.05s", v)
			}
		}
	}
}

func TestNewWithBoundsPanics(t *testing.T) {
	for _, bounds := range [][]time.Duration{
		{},
		{time.Second, time.Millisecond},
		{time.Second, time.Second},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewWithBounds(%v) did not panic", bounds)
				}
			}()
			NewWithBounds(bounds)
		}()
	}
}

// TestQuantileEdges pins the boundary contracts of Quantile: q at or below 0
// clamps to the smallest positive quantile (never "before the data"), q
// above 1 clamps to 1, and q=1 lands exactly on the winning bucket's upper
// bound for a single-valued population.
func TestQuantileEdges(t *testing.T) {
	h := New()
	for i := 0; i < 10; i++ {
		h.Observe(time.Millisecond)
	}
	s := h.Snapshot()
	// All mass sits in the (500µs, 1ms] bucket, so every quantile must too.
	lo, hi := 500*time.Microsecond, time.Millisecond
	if q := s.Quantile(0); q <= lo || q > hi {
		t.Fatalf("Quantile(0) = %v, want in (%v, %v]", q, lo, hi)
	}
	if s.Quantile(-3) != s.Quantile(0) {
		t.Fatalf("negative q %v != q=0 %v", s.Quantile(-3), s.Quantile(0))
	}
	if q := s.Quantile(1); q != hi {
		t.Fatalf("Quantile(1) = %v, want bucket bound %v", q, hi)
	}
	if s.Quantile(5) != s.Quantile(1) {
		t.Fatalf("q>1 %v != q=1 %v", s.Quantile(5), s.Quantile(1))
	}
}

// TestMergeEmptyIntoPopulated is the no-op direction of Merge: folding an
// empty (or nil) snapshot into a populated one must change nothing — the
// daemon's overall-latency merge hits this on outcomes that never occurred.
func TestMergeEmptyIntoPopulated(t *testing.T) {
	h := New()
	for i := 0; i < 5; i++ {
		h.Observe(time.Millisecond)
	}
	s := h.Snapshot()
	count, sum := s.Count, s.Sum
	if err := s.Merge(&Snapshot{}); err != nil {
		t.Fatalf("merging empty snapshot: %v", err)
	}
	if err := s.Merge(nil); err != nil {
		t.Fatalf("merging nil snapshot: %v", err)
	}
	if s.Count != count || s.Sum != sum {
		t.Fatalf("no-op merge mutated snapshot: count %d->%d sum %v->%v", count, s.Count, sum, s.Sum)
	}
	if q := s.Quantile(0.5); q <= 0 {
		t.Fatalf("median lost after no-op merges: %v", q)
	}
}

// TestOverflowOnlyDistribution covers a population living entirely in the
// overflow bucket: quantiles saturate at the last bound (the histogram's
// honest best), the mean stays exact (Sum tracks true durations), and the
// OpenMetrics rendering keeps the +Inf == _count identity.
func TestOverflowOnlyDistribution(t *testing.T) {
	h := NewWithBounds([]time.Duration{time.Millisecond, time.Second})
	for i := 0; i < 3; i++ {
		h.Observe(time.Minute)
	}
	s := h.Snapshot()
	if s.Counts[2] != 3 || s.Counts[0] != 0 || s.Counts[1] != 0 {
		t.Fatalf("overflow-only counts wrong: %v", s.Counts)
	}
	for _, q := range []float64{0, 0.5, 1} {
		if got := s.Quantile(q); got != time.Second {
			t.Fatalf("Quantile(%g) = %v, want last bound 1s", q, got)
		}
	}
	if s.Mean() != time.Minute {
		t.Fatalf("Mean = %v, want exact 1m", s.Mean())
	}
	var b strings.Builder
	if err := WriteHistogramFamily(&b, "overflow_test_seconds", "Overflow-only.", Series{Snap: s}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{`le="0.001"} 0`, `le="1"} 0`, `le="+Inf"} 3`, "overflow_test_seconds_count 3"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendering missing %q:\n%s", want, out)
		}
	}
}
