package attr

import (
	"sync"
	"testing"
	"time"

	"hypertree/internal/obs"
)

func TestRole(t *testing.T) {
	cases := []struct {
		winner bool
		stop   string
		want   string
	}{
		{true, "", RoleWinner},
		{true, "portfolio-win", RoleWinner},
		{false, "portfolio-win", RoleAbortedLoser},
		{false, "deadline", "deadline"},
		{false, "node-budget", "node-budget"},
		{false, "canceled", "canceled"},
		{false, "", RoleCompleted},
	}
	for _, c := range cases {
		if got := Role(c.winner, c.stop); got != c.want {
			t.Errorf("Role(%v, %q) = %q, want %q", c.winner, c.stop, got, c.want)
		}
	}
}

func TestLedgerConserved(t *testing.T) {
	l := &Ledger{
		Portfolio:  true,
		Winner:     "bb-ghw",
		TotalNodes: 100,
		Members: []Member{
			{Algo: "bb-ghw", Role: RoleWinner, Nodes: 60,
				Claims: []Claim{{Width: 5, T: time.Millisecond}, {Width: 3, T: 2 * time.Millisecond}}},
			{Algo: "ga-ghw", Role: RoleAbortedLoser, Nodes: 40},
		},
	}
	if err := l.Conserved(); err != nil {
		t.Fatalf("balanced ledger reported unbalanced: %v", err)
	}
	if s := l.Share(l.Find("bb-ghw")); s != 0.6 {
		t.Fatalf("Share = %v, want 0.6", s)
	}

	l.Members[1].Nodes = 41
	if err := l.Conserved(); err == nil {
		t.Fatal("unbalanced node sum must fail Conserved")
	}
	l.Members[1].Nodes = 40

	l.Winner = "nobody"
	if err := l.Conserved(); err == nil {
		t.Fatal("winner without a member row must fail Conserved")
	}
	l.Winner = "ga-ghw"
	if err := l.Conserved(); err == nil {
		t.Fatal("winner with a non-winner role must fail Conserved")
	}
	l.Winner = "bb-ghw"

	l.Members[0].Claims = []Claim{{Width: 3}, {Width: 5}}
	if err := l.Conserved(); err == nil {
		t.Fatal("width-increasing claims must fail Conserved")
	}
}

func TestLedgerEventsRoundTrip(t *testing.T) {
	l := &Ledger{
		Portfolio:  true,
		Winner:     "greedy-ghw",
		TotalNodes: 10,
		Members: []Member{
			{Algo: "greedy-ghw", Role: RoleWinner, Nodes: 10, CPU: time.Second,
				CacheHits: 7, CacheMisses: 3, BestWidth: 4, LowerBound: 2,
				Claims: []Claim{{Width: 4, T: time.Millisecond}}, Stop: "deadline"},
		},
	}
	evs := l.Events(3 * time.Second)
	if len(evs) != 1 {
		t.Fatalf("got %d events, want 1", len(evs))
	}
	e := evs[0]
	if e.Kind != obs.KindAttr || e.T != 3*time.Second {
		t.Fatalf("bad event header: %+v", e)
	}
	if e.Improvements != 1 || e.Share != 1.0 || e.Role != RoleWinner {
		t.Fatalf("bad attr payload: %+v", e)
	}
	m := FromEvent(e)
	want := l.Members[0]
	if m.Algo != want.Algo || m.Role != want.Role || m.Nodes != want.Nodes ||
		m.CPU != want.CPU || m.CacheHits != want.CacheHits ||
		m.CacheMisses != want.CacheMisses || m.BestWidth != want.BestWidth ||
		m.LowerBound != want.LowerBound || m.Stop != want.Stop {
		t.Fatalf("FromEvent mismatch: got %+v, want %+v", m, want)
	}
}

func TestCollectorConcurrent(t *testing.T) {
	c := NewCollector()
	algos := []string{"a", "b", "c"}
	var wg sync.WaitGroup
	for i, algo := range algos {
		wg.Add(1)
		go func(i int, algo string) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				c.Observe(algo, obs.Event{Kind: obs.KindCheckpoint})
			}
			c.Observe(algo, obs.Event{Kind: obs.KindLowerBound, LowerBound: i + 1})
			c.Claim(algo, 10-i, time.Duration(i)*time.Millisecond)
			c.Observe(algo, obs.Event{Kind: obs.KindStop, Stop: "deadline", Width: 10 - i})
		}(i, algo)
	}
	wg.Wait()
	for i, algo := range algos {
		m := c.Member(algo)
		if m.Checkpoints != 50 {
			t.Fatalf("%s: checkpoints = %d, want 50", algo, m.Checkpoints)
		}
		if m.LowerBound != i+1 {
			t.Fatalf("%s: lower bound = %d, want %d", algo, m.LowerBound, i+1)
		}
		if len(m.Claims) != 1 || m.Claims[0].Width != 10-i {
			t.Fatalf("%s: claims = %+v", algo, m.Claims)
		}
		if m.BestWidth != 10-i || m.Stop != "deadline" {
			t.Fatalf("%s: best width %d stop %q", algo, m.BestWidth, m.Stop)
		}
	}
	// Nil collector is a no-op, not a crash.
	var nc *Collector
	nc.Observe("x", obs.Event{Kind: obs.KindCheckpoint})
	nc.Claim("x", 1, 0)
	if m := nc.Member("x"); m.Algo != "x" || m.Checkpoints != 0 {
		t.Fatalf("nil collector Member = %+v", m)
	}
}
