// Package attr is the solver attribution and cost-accounting layer: it
// decomposes a run — a portfolio race or a single-solver run alike — into a
// per-member resource ledger saying what each algorithm cost and what it
// contributed. The shared budget of a portfolio run answers "how much work
// happened" but not "who did it"; this package answers the second question,
// which is what instance-class dispatch decisions ("skip the GA on this
// family") have to be grounded in.
//
// The ledger's cost fields are authoritative, not sampled: attributed node
// counts come from budget member views (budget.B.Member), whose Ticks
// provably sum to the global budget.Nodes() — the conservation invariant
// Ledger.Conserved re-checks — and cache traffic comes from per-member
// cover-engine views (setcover.Engine.Member). Contribution fields
// (incumbent improvements with the width each claimed, lower bounds,
// checkpoints, stop reasons) are folded out of the existing recorder chain
// by a Collector riding each member's event stream.
//
// Serial runs get the same ledger with exactly one member whose role is
// "winner", so every consumer — daemon envelope, /metrics, tracestat —
// handles one shape, not two code paths.
package attr

import (
	"fmt"
	"sync"
	"time"

	"hypertree/internal/budget"
	"hypertree/internal/obs"
)

// The terminal roles a member can end a run with. Budget stop reasons
// (deadline, node-budget, canceled, panic) pass through as-is; these name
// the outcomes that are not budget stops.
const (
	// RoleWinner marks the member whose decomposition the run returned.
	RoleWinner = "winner"
	// RoleAbortedLoser marks a member stopped by the portfolio-win latch:
	// it was still working when a sibling's result was proven optimal.
	RoleAbortedLoser = "aborted-loser"
	// RoleCompleted marks a member that ran to completion but did not win
	// (its width was matched or beaten by an earlier-listed member).
	RoleCompleted = "completed"
)

// Role derives a member's terminal role from whether it won and its budget
// stop reason.
func Role(winner bool, stop string) string {
	switch {
	case winner:
		return RoleWinner
	case stop == string(budget.StopPortfolioWin):
		return RoleAbortedLoser
	case stop != "":
		return stop
	default:
		return RoleCompleted
	}
}

// Claim is one incumbent improvement a member contributed: the width it
// lowered the shared incumbent to, and when.
type Claim struct {
	Width int           `json:"width"`
	T     time.Duration `json:"t_ns"`
}

// Member is one solver's row of the ledger.
type Member struct {
	// Algo is the member's algorithm label.
	Algo string `json:"algo"`
	// Role is the member's terminal role: winner, aborted-loser, completed,
	// or a budget stop reason (deadline, node-budget, canceled, panic).
	Role string `json:"role"`
	// Nodes is the member's attributed share of the run's global node count
	// (work units it personally ticked through its budget member view).
	Nodes int64 `json:"nodes"`
	// CPU is the member's CPU-time estimate. Portfolio members run their
	// solve on one goroutine each (inner Workers are forced to 0), so the
	// member's wall-clock is the estimate; it can exceed the winner's
	// latency because losers keep running until aborted.
	CPU time.Duration `json:"cpu_ns"`
	// CacheHits and CacheMisses are the member's attributed cover-cache
	// traffic (queries it issued through its engine member view; a hit on an
	// entry another member populated still counts as this member's hit).
	CacheHits   int64 `json:"cache_hits,omitempty"`
	CacheMisses int64 `json:"cache_misses,omitempty"`
	// Checkpoints counts the budget cooperative checkpoints the member's
	// event stream carried.
	Checkpoints int64 `json:"checkpoints,omitempty"`
	// Claims are the incumbent improvements this member contributed, in
	// claim order. Every improvement of the run's merged timeline appears in
	// exactly one member's Claims.
	Claims []Claim `json:"improvements,omitempty"`
	// BestWidth is the narrowest width the member realized (0 = none).
	BestWidth int `json:"best_width,omitempty"`
	// LowerBound is the best ghw lower bound the member proved (0 = none).
	LowerBound int `json:"lower_bound,omitempty"`
	// Stop is the member's budget stop reason (empty = ran to completion).
	Stop string `json:"stop,omitempty"`
}

// Ledger is a run's complete attribution record: one Member per solver that
// ran, plus the global totals they must reconcile against.
type Ledger struct {
	// Portfolio reports whether this was a portfolio race; false means the
	// degenerate one-member ledger of a serial run.
	Portfolio bool `json:"portfolio"`
	// Winner is the algo label of the member whose result was returned.
	Winner string `json:"winner,omitempty"`
	// TotalNodes is the run's global budget.Nodes(); member Nodes sum to it.
	TotalNodes int64 `json:"total_nodes"`
	// Members are the per-solver rows, in portfolio configuration order.
	Members []Member `json:"members"`
}

// Share returns m's fraction of the ledger's global node count, or 0 when
// no work was ticked at all.
func (l *Ledger) Share(m *Member) float64 {
	if l == nil || m == nil || l.TotalNodes <= 0 {
		return 0
	}
	return float64(m.Nodes) / float64(l.TotalNodes)
}

// Find returns the member row for algo, or nil.
func (l *Ledger) Find(algo string) *Member {
	if l == nil {
		return nil
	}
	for i := range l.Members {
		if l.Members[i].Algo == algo {
			return &l.Members[i]
		}
	}
	return nil
}

// Conserved verifies the accounting invariants: the member node counts sum
// exactly to TotalNodes, the named winner (if any) has a member row with
// role winner, and every member's claims are width-decreasing in claim
// order. It returns nil when the ledger balances.
func (l *Ledger) Conserved() error {
	if l == nil {
		return fmt.Errorf("attr: nil ledger")
	}
	var sum int64
	for i := range l.Members {
		sum += l.Members[i].Nodes
	}
	if sum != l.TotalNodes {
		return fmt.Errorf("attr: member nodes sum to %d, global is %d", sum, l.TotalNodes)
	}
	if l.Winner != "" {
		w := l.Find(l.Winner)
		if w == nil {
			return fmt.Errorf("attr: winner %q has no member row", l.Winner)
		}
		if w.Role != RoleWinner {
			return fmt.Errorf("attr: winner %q has role %q", l.Winner, w.Role)
		}
	}
	for i := range l.Members {
		m := &l.Members[i]
		for j := 1; j < len(m.Claims); j++ {
			if m.Claims[j].Width >= m.Claims[j-1].Width {
				return fmt.Errorf("attr: member %s claims not width-decreasing: %d then %d",
					m.Algo, m.Claims[j-1].Width, m.Claims[j].Width)
			}
		}
	}
	return nil
}

// Events renders the ledger as its terminal trace events: one attr event
// per member, all stamped at elapsed (the run's end). The attr event reuses
// the generic Event fields — Nodes/Dur/Cache* for costs, Width/LowerBound/
// Improvements for contributions, Role/Share for the verdict.
func (l *Ledger) Events(elapsed time.Duration) []obs.Event {
	if l == nil {
		return nil
	}
	evs := make([]obs.Event, 0, len(l.Members))
	for i := range l.Members {
		m := &l.Members[i]
		evs = append(evs, obs.Event{
			Kind:         obs.KindAttr,
			T:            elapsed,
			Algo:         m.Algo,
			Role:         m.Role,
			Nodes:        m.Nodes,
			Dur:          m.CPU,
			CacheHits:    m.CacheHits,
			CacheMisses:  m.CacheMisses,
			Width:        m.BestWidth,
			LowerBound:   m.LowerBound,
			Improvements: len(m.Claims),
			Share:        l.Share(m),
			Stop:         m.Stop,
		})
	}
	return evs
}

// FromEvent rebuilds a member row from its attr trace event — the inverse
// of Events, used by trace analysis.
func FromEvent(e obs.Event) Member {
	return Member{
		Algo:        e.Algo,
		Role:        e.Role,
		Nodes:       e.Nodes,
		CPU:         e.Dur,
		CacheHits:   e.CacheHits,
		CacheMisses: e.CacheMisses,
		BestWidth:   e.Width,
		LowerBound:  e.LowerBound,
		Stop:        e.Stop,
	}
}

// Collector accumulates the contribution side of the ledger off the
// recorder chain while members run: checkpoints, lower bounds, stop
// reasons, realized widths (from each member's event stream) and incumbent
// claims (reported by the portfolio when a member actually lowers the
// shared incumbent). It is safe for concurrent use — portfolio members
// record from their own goroutines.
type Collector struct {
	mu sync.Mutex
	m  map[string]*Member
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{m: make(map[string]*Member)} }

func (c *Collector) row(algo string) *Member {
	m := c.m[algo]
	if m == nil {
		m = &Member{Algo: algo}
		c.m[algo] = m
	}
	return m
}

// Observe folds one member event into the accumulator. The caller passes
// the member's algo label explicitly (the event may predate stamping).
func (c *Collector) Observe(algo string, e obs.Event) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	m := c.row(algo)
	switch e.Kind {
	case obs.KindCheckpoint:
		m.Checkpoints++
	case obs.KindImprove:
		if m.BestWidth == 0 || e.Width < m.BestWidth {
			m.BestWidth = e.Width
		}
	case obs.KindLowerBound:
		if e.LowerBound > m.LowerBound {
			m.LowerBound = e.LowerBound
		}
	case obs.KindStop:
		m.Stop = e.Stop
		if e.Width > 0 && (m.BestWidth == 0 || e.Width < m.BestWidth) {
			m.BestWidth = e.Width
		}
		if e.LowerBound > m.LowerBound {
			m.LowerBound = e.LowerBound
		}
	}
}

// Claim records that algo lowered the shared incumbent to width at time t.
// The portfolio calls it under its own claim lock, so claims arrive in the
// true claim order and every improvement names exactly one member.
func (c *Collector) Claim(algo string, width int, t time.Duration) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	m := c.row(algo)
	m.Claims = append(m.Claims, Claim{Width: width, T: t})
	if m.BestWidth == 0 || width < m.BestWidth {
		m.BestWidth = width
	}
}

// Member returns a copy of the accumulated contribution fields for algo.
// The caller owns the authoritative cost fields (Nodes, CPU, Cache*) and
// the Role verdict; they are zero in the copy.
func (c *Collector) Member(algo string) Member {
	if c == nil {
		return Member{Algo: algo}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	m := c.row(algo)
	cp := *m
	cp.Claims = append([]Claim(nil), m.Claims...)
	return cp
}
