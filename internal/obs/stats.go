package obs

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// WidthPoint is one point of an anytime-width timeline: the best width known
// at time T, together with the effort counters at that moment.
type WidthPoint struct {
	T           time.Duration `json:"t_ns"`
	Width       int           `json:"width"`
	Nodes       int64         `json:"nodes,omitempty"`
	Evaluations int64         `json:"evaluations,omitempty"`
	Generation  int           `json:"generation,omitempty"`
}

// RunStats is the in-memory aggregator Recorder: it folds a run's event
// stream into the per-run statistics the thesis's tables are built from —
// the anytime-width timeline, expansion/evaluation/generation counts, open
// list high-water mark and cover-cache traffic. It is attached to
// search.Result, ga.Result, ga.SAIGAResult and core.Decomposition.
//
// All methods are safe for concurrent use. Reads taken while the run is
// still live see a consistent snapshot.
type RunStats struct {
	mu sync.Mutex

	// Algo is the run label from the algo_start event.
	Algo string
	// N and M are the instance size from algo_start.
	N, M int
	// Timeline is the anytime best-width trajectory: one point per improve
	// event, non-increasing in width and non-decreasing in time.
	Timeline []WidthPoint
	// LowerBounds is the proven-lower-bound trajectory (non-decreasing).
	LowerBounds []WidthPoint
	// Expansions is the final search-node count, Evaluations the final
	// fitness-evaluation count (from checkpoint and stop events).
	Expansions  int64
	Evaluations int64
	// Generations is the number of GA generations (SAIGA: epochs) summarized.
	Generations int
	// Checkpoints counts budget cooperative checkpoints observed.
	Checkpoints int64
	// MaxOpen is the A* open-list high-water mark (0 for other algorithms);
	// MaxClosed the duplicate-detection set high-water mark (dedup mode).
	MaxOpen   int
	MaxClosed int
	// MaxDepth and Backtracks are the BB search-shape gauges: deepest
	// elimination prefix seen at a checkpoint and exhausted-subtree count.
	MaxDepth   int
	Backtracks int64
	// WidthStd and DistinctWidths are the last generation's population
	// diversity (GA/SAIGA runs).
	WidthStd       float64
	DistinctWidths int
	// Memory telemetry from sampled mem_sample events: snapshot count, heap
	// high-water marks and the last GC cycle count seen.
	MemSamples   int64
	MaxHeapAlloc uint64
	MaxHeapSys   uint64
	NumGC        uint32
	// Cache counters are the last cover-engine snapshot observed.
	CacheHits, CacheMisses, CacheEvictions int64
	CacheSize                              int
	// Attempts counts det-k-decomp width attempts.
	Attempts int
	// FinalWidth, FinalLowerBound, Exact, Stop and Elapsed mirror the
	// algo_stop event.
	FinalWidth      int
	FinalLowerBound int
	Exact           bool
	Stop            string
	Elapsed         time.Duration
}

// NewRunStats returns an empty aggregator.
func NewRunStats() *RunStats { return &RunStats{} }

// Record implements Recorder.
func (s *RunStats) Record(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch e.Kind {
	case KindStart:
		s.Algo, s.N, s.M = e.Algo, e.N, e.M
	case KindImprove:
		s.Timeline = append(s.Timeline, WidthPoint{
			T: e.T, Width: e.Width, Nodes: e.Nodes,
			Evaluations: e.Evaluations, Generation: e.Generation,
		})
	case KindLowerBound:
		s.LowerBounds = append(s.LowerBounds, WidthPoint{
			T: e.T, Width: e.LowerBound, Nodes: e.Nodes,
		})
	case KindCheckpoint:
		s.Checkpoints++
		if e.Nodes > s.Expansions {
			s.Expansions = e.Nodes
		}
		if e.Open > s.MaxOpen {
			s.MaxOpen = e.Open
		}
		if e.MaxOpen > s.MaxOpen {
			s.MaxOpen = e.MaxOpen
		}
		if e.Closed > s.MaxClosed {
			s.MaxClosed = e.Closed
		}
		if e.Depth > s.MaxDepth {
			s.MaxDepth = e.Depth
		}
		if e.Backtracks > s.Backtracks {
			s.Backtracks = e.Backtracks
		}
	case KindMemSample:
		s.MemSamples++
		if e.HeapAlloc > s.MaxHeapAlloc {
			s.MaxHeapAlloc = e.HeapAlloc
		}
		if e.HeapSys > s.MaxHeapSys {
			s.MaxHeapSys = e.HeapSys
		}
		if e.NumGC > s.NumGC {
			s.NumGC = e.NumGC
		}
	case KindGeneration:
		if e.Generation > s.Generations {
			s.Generations = e.Generation
		}
		if e.Evaluations > s.Evaluations {
			s.Evaluations = e.Evaluations
		}
		if e.Island == 0 || e.Generation >= s.Generations {
			s.WidthStd, s.DistinctWidths = e.WidthStd, e.DistinctWidths
		}
	case KindCoverCache:
		s.CacheHits, s.CacheMisses = e.CacheHits, e.CacheMisses
		s.CacheEvictions, s.CacheSize = e.CacheEvictions, e.CacheSize
	case KindAttempt:
		s.Attempts++
	case KindStop:
		s.FinalWidth, s.FinalLowerBound = e.Width, e.LowerBound
		s.Exact, s.Stop, s.Elapsed = e.Exact, e.Stop, e.T
		if e.Nodes > s.Expansions {
			s.Expansions = e.Nodes
		}
		if e.Evaluations > s.Evaluations {
			s.Evaluations = e.Evaluations
		}
		if e.MaxOpen > s.MaxOpen {
			s.MaxOpen = e.MaxOpen
		}
	}
}

// Snapshot returns a copy of the statistics safe to read while the run is
// still recording.
func (s *RunStats) Snapshot() *RunStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	cp := &RunStats{
		Algo: s.Algo, N: s.N, M: s.M,
		Expansions: s.Expansions, Evaluations: s.Evaluations,
		Generations: s.Generations, Checkpoints: s.Checkpoints,
		MaxOpen: s.MaxOpen, MaxClosed: s.MaxClosed,
		MaxDepth: s.MaxDepth, Backtracks: s.Backtracks,
		WidthStd: s.WidthStd, DistinctWidths: s.DistinctWidths,
		MemSamples: s.MemSamples, MaxHeapAlloc: s.MaxHeapAlloc,
		MaxHeapSys: s.MaxHeapSys, NumGC: s.NumGC,
		CacheHits: s.CacheHits, CacheMisses: s.CacheMisses,
		CacheEvictions: s.CacheEvictions, CacheSize: s.CacheSize,
		Attempts:   s.Attempts,
		FinalWidth: s.FinalWidth, FinalLowerBound: s.FinalLowerBound,
		Exact: s.Exact, Stop: s.Stop, Elapsed: s.Elapsed,
	}
	cp.Timeline = append([]WidthPoint(nil), s.Timeline...)
	cp.LowerBounds = append([]WidthPoint(nil), s.LowerBounds...)
	return cp
}

// CheckTimeline verifies the anytime-width contract: the timeline is
// non-empty, non-increasing in width and non-decreasing in time. It returns
// nil when the contract holds.
func (s *RunStats) CheckTimeline() error {
	snap := s.Snapshot()
	if len(snap.Timeline) == 0 {
		return fmt.Errorf("obs: empty width timeline")
	}
	for i := 1; i < len(snap.Timeline); i++ {
		prev, cur := snap.Timeline[i-1], snap.Timeline[i]
		if cur.Width > prev.Width {
			return fmt.Errorf("obs: timeline width increased at point %d: %d -> %d", i, prev.Width, cur.Width)
		}
		if cur.T < prev.T {
			return fmt.Errorf("obs: timeline time decreased at point %d: %v -> %v", i, prev.T, cur.T)
		}
	}
	return nil
}

// Summary renders a human-readable multi-line report (the -stats output of
// cmd/decompose).
func (s *RunStats) Summary() string {
	snap := s.Snapshot()
	var b strings.Builder
	fmt.Fprintf(&b, "run stats: %s on %d vertices / %d edges\n", snap.Algo, snap.N, snap.M)
	fmt.Fprintf(&b, "  effort: %d expansions, %d evaluations, %d generations, %d checkpoints, %v\n",
		snap.Expansions, snap.Evaluations, snap.Generations, snap.Checkpoints,
		snap.Elapsed.Round(time.Millisecond))
	if snap.MaxOpen > 0 {
		fmt.Fprintf(&b, "  open list: max %d states", snap.MaxOpen)
		if snap.MaxClosed > 0 {
			fmt.Fprintf(&b, ", dedup set max %d", snap.MaxClosed)
		}
		fmt.Fprintf(&b, "\n")
	}
	if snap.MaxDepth > 0 || snap.Backtracks > 0 {
		fmt.Fprintf(&b, "  search shape: max depth %d, %d backtracks\n", snap.MaxDepth, snap.Backtracks)
	}
	if snap.DistinctWidths > 0 {
		fmt.Fprintf(&b, "  diversity: width stddev %.2f, %d distinct widths in last generation\n",
			snap.WidthStd, snap.DistinctWidths)
	}
	if snap.MemSamples > 0 {
		fmt.Fprintf(&b, "  memory: peak heap %.1f MiB in use / %.1f MiB from OS, %d GC cycles (%d samples)\n",
			float64(snap.MaxHeapAlloc)/(1<<20), float64(snap.MaxHeapSys)/(1<<20),
			snap.NumGC, snap.MemSamples)
	}
	if snap.Attempts > 0 {
		fmt.Fprintf(&b, "  det-k attempts: %d\n", snap.Attempts)
	}
	if snap.CacheHits+snap.CacheMisses > 0 {
		total := snap.CacheHits + snap.CacheMisses
		fmt.Fprintf(&b, "  cover cache: %d hits / %d misses (%.1f%% hit rate), %d evictions, %d resident bags\n",
			snap.CacheHits, snap.CacheMisses, 100*float64(snap.CacheHits)/float64(total),
			snap.CacheEvictions, snap.CacheSize)
	}
	fmt.Fprintf(&b, "  width timeline (%d improvements):\n", len(snap.Timeline))
	for _, p := range snap.Timeline {
		fmt.Fprintf(&b, "    t=%-12v width=%-4d nodes=%-10d evals=%-10d gen=%d\n",
			p.T.Round(time.Microsecond), p.Width, p.Nodes, p.Evaluations, p.Generation)
	}
	if len(snap.LowerBounds) > 0 {
		fmt.Fprintf(&b, "  lower-bound timeline (%d improvements):\n", len(snap.LowerBounds))
		for _, p := range snap.LowerBounds {
			fmt.Fprintf(&b, "    t=%-12v lb=%-4d nodes=%d\n", p.T.Round(time.Microsecond), p.Width, p.Nodes)
		}
	}
	return b.String()
}
