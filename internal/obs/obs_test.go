package obs

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestTeeNilHandling(t *testing.T) {
	if Tee() != nil {
		t.Fatal("Tee() should be nil")
	}
	if Tee(nil, nil) != nil {
		t.Fatal("Tee(nil, nil) should be nil")
	}
	s := NewRunStats()
	if got := Tee(nil, s, nil); got != Recorder(s) {
		t.Fatalf("Tee with one live recorder should return it unwrapped, got %T", got)
	}
	a, b := NewRunStats(), NewRunStats()
	Tee(a, nil, b).Record(Event{Kind: KindStart, Algo: "x", N: 3, M: 4})
	if a.Snapshot().Algo != "x" || b.Snapshot().Algo != "x" {
		t.Fatal("Tee did not fan out to all live recorders")
	}
}

func TestValidKind(t *testing.T) {
	for _, k := range Kinds {
		if !ValidKind(k) {
			t.Fatalf("%q should be valid", k)
		}
	}
	if ValidKind("bogus") {
		t.Fatal("bogus kind accepted")
	}
}

func TestRunStatsAggregation(t *testing.T) {
	s := NewRunStats()
	if err := s.CheckTimeline(); err == nil {
		t.Fatal("empty timeline should fail the check")
	}
	s.Record(Event{Kind: KindStart, Algo: "bb-ghw", N: 10, M: 12})
	s.Record(Event{Kind: KindImprove, T: time.Millisecond, Width: 7, Nodes: 5})
	s.Record(Event{Kind: KindCheckpoint, T: 2 * time.Millisecond, Nodes: 256})
	s.Record(Event{Kind: KindImprove, T: 3 * time.Millisecond, Width: 5, Nodes: 400})
	s.Record(Event{Kind: KindLowerBound, T: 3 * time.Millisecond, LowerBound: 3})
	s.Record(Event{Kind: KindCoverCache, CacheHits: 90, CacheMisses: 10, CacheEvictions: 2, CacheSize: 8})
	s.Record(Event{Kind: KindAttempt, K: 2})
	s.Record(Event{Kind: KindStop, T: 4 * time.Millisecond, Algo: "bb-ghw",
		Width: 5, LowerBound: 3, Nodes: 500, Stop: "deadline"})

	snap := s.Snapshot()
	if snap.Algo != "bb-ghw" || snap.N != 10 || snap.M != 12 {
		t.Fatalf("start fields lost: %+v", snap)
	}
	if len(snap.Timeline) != 2 || snap.Timeline[1].Width != 5 {
		t.Fatalf("timeline wrong: %+v", snap.Timeline)
	}
	if len(snap.LowerBounds) != 1 || snap.LowerBounds[0].Width != 3 {
		t.Fatalf("lower bounds wrong: %+v", snap.LowerBounds)
	}
	if snap.Checkpoints != 1 || snap.Expansions != 500 || snap.Attempts != 1 {
		t.Fatalf("effort counters wrong: %+v", snap)
	}
	if snap.CacheHits != 90 || snap.CacheEvictions != 2 || snap.CacheSize != 8 {
		t.Fatalf("cache counters wrong: %+v", snap)
	}
	if snap.FinalWidth != 5 || snap.Stop != "deadline" || snap.Elapsed != 4*time.Millisecond {
		t.Fatalf("stop fields wrong: %+v", snap)
	}
	if err := s.CheckTimeline(); err != nil {
		t.Fatalf("monotone timeline rejected: %v", err)
	}
	out := s.Summary()
	for _, want := range []string{"bb-ghw", "width=5", "cover cache", "det-k attempts"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestCheckTimelineViolations(t *testing.T) {
	up := NewRunStats()
	up.Record(Event{Kind: KindImprove, T: 1, Width: 5})
	up.Record(Event{Kind: KindImprove, T: 2, Width: 6})
	if err := up.CheckTimeline(); err == nil {
		t.Fatal("width increase not caught")
	}
	back := NewRunStats()
	back.Record(Event{Kind: KindImprove, T: 2, Width: 5})
	back.Record(Event{Kind: KindImprove, T: 1, Width: 4})
	if err := back.CheckTimeline(); err == nil {
		t.Fatal("time decrease not caught")
	}
}

func TestJSONLRoundtrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewJSONLWriter(&buf)
	w.Record(Event{Kind: KindStart, T: 0, Algo: "astar-ghw", N: 5, M: 6})
	w.Record(Event{Kind: KindImprove, T: time.Millisecond, Width: 4})
	w.Record(Event{Kind: KindCheckpoint, T: 2 * time.Millisecond, Nodes: 256})
	w.Record(Event{Kind: KindImprove, T: 3 * time.Millisecond, Width: 3})
	w.Record(Event{Kind: KindStop, T: 4 * time.Millisecond, Algo: "astar-ghw", Width: 3, Exact: true})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	sum, err := ValidateTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Events != 5 || sum.Starts != 1 || sum.Stops != 1 || sum.Improvements != 2 || sum.Checkpoints != 1 {
		t.Fatalf("summary wrong: %+v", sum)
	}
	if len(sum.Algos) != 1 || sum.Algos[0] != "astar-ghw" {
		t.Fatalf("algos wrong: %v", sum.Algos)
	}
}

func TestValidateTraceRejects(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"garbage":        "not json\n",
		"negative time":  `{"kind":"algo_start","t_ns":-1,"algo":"x"}` + "\n",
		"no start":       `{"kind":"algo_stop","t_ns":1,"algo":"x"}` + "\n",
		"no stop":        `{"kind":"algo_start","t_ns":1,"algo":"x"}` + "\n",
		"width increase": lines(`{"kind":"algo_start","t_ns":0,"algo":"x"}`, `{"kind":"improve","t_ns":1,"width":3}`, `{"kind":"improve","t_ns":2,"width":4}`, `{"kind":"algo_stop","t_ns":3,"algo":"x"}`),
		"time decrease":  lines(`{"kind":"algo_start","t_ns":0,"algo":"x"}`, `{"kind":"improve","t_ns":5,"width":3}`, `{"kind":"improve","t_ns":4,"width":3}`, `{"kind":"algo_stop","t_ns":6,"algo":"x"}`),
	}
	for name, trace := range cases {
		if _, err := ValidateTrace(strings.NewReader(trace)); err == nil {
			t.Fatalf("%s: accepted", name)
		}
	}
	// Two runs of the same kind reset nothing — monotonicity is per label,
	// so a second algorithm may start above the first one's final width.
	ok := lines(
		`{"kind":"algo_start","t_ns":0,"algo":"a"}`,
		`{"kind":"improve","t_ns":1,"width":3}`,
		`{"kind":"algo_stop","t_ns":2,"algo":"a"}`,
		`{"kind":"algo_start","t_ns":3,"algo":"b"}`,
		`{"kind":"improve","t_ns":4,"width":9}`,
		`{"kind":"algo_stop","t_ns":5,"algo":"b"}`,
	)
	if _, err := ValidateTrace(strings.NewReader(ok)); err != nil {
		t.Fatalf("per-label monotonicity too strict: %v", err)
	}
}

func TestValidateTraceRequestScoped(t *testing.T) {
	// A daemon trace holds many runs of the same algorithm, one per request,
	// each stamped with its req id. Monotonicity is per (req, label): a later
	// request on a harder instance may start far above an earlier request's
	// final width.
	daemon := lines(
		`{"kind":"algo_start","t_ns":0,"algo":"bb-ghw","req":"r1"}`,
		`{"kind":"improve","t_ns":1,"width":1,"req":"r1"}`,
		`{"kind":"algo_stop","t_ns":2,"algo":"bb-ghw","req":"r1"}`,
		`{"kind":"algo_start","t_ns":0,"algo":"bb-ghw","req":"r2"}`,
		`{"kind":"improve","t_ns":1,"width":9,"req":"r2"}`,
		`{"kind":"improve","t_ns":2,"width":8,"req":"r2"}`,
		`{"kind":"algo_stop","t_ns":3,"algo":"bb-ghw","req":"r2"}`,
	)
	if _, err := ValidateTrace(strings.NewReader(daemon)); err != nil {
		t.Fatalf("request-stamped runs of one algorithm rejected: %v", err)
	}
	// The contract still bites within one request.
	bad := lines(
		`{"kind":"algo_start","t_ns":0,"algo":"bb-ghw","req":"r1"}`,
		`{"kind":"improve","t_ns":1,"width":3,"req":"r1"}`,
		`{"kind":"improve","t_ns":2,"width":4,"req":"r1"}`,
		`{"kind":"algo_stop","t_ns":3,"algo":"bb-ghw","req":"r1"}`,
	)
	if _, err := ValidateTrace(strings.NewReader(bad)); err == nil {
		t.Fatal("width increase within one request accepted")
	}
}

func TestValidateTraceUnknownKinds(t *testing.T) {
	// Forward compatibility: the default mode counts unknown kinds, strict
	// mode rejects them.
	trace := lines(
		`{"kind":"algo_start","t_ns":0,"algo":"x"}`,
		`{"kind":"mystery","t_ns":1}`,
		`{"kind":"algo_stop","t_ns":2,"algo":"x"}`,
	)
	sum, err := ValidateTrace(strings.NewReader(trace))
	if err != nil {
		t.Fatalf("default mode rejected unknown kind: %v", err)
	}
	if sum.Unknown != 1 || sum.Events != 3 {
		t.Fatalf("unknown kind miscounted: %+v", sum)
	}
	if _, err := ValidateTraceStrict(strings.NewReader(trace)); err == nil {
		t.Fatal("strict mode accepted unknown kind")
	}
}

func TestValidateTraceStrictTimeOrder(t *testing.T) {
	backwards := lines(
		`{"kind":"algo_start","t_ns":0,"algo":"x"}`,
		`{"kind":"checkpoint","t_ns":5}`,
		`{"kind":"checkpoint","t_ns":4}`,
		`{"kind":"algo_stop","t_ns":6,"algo":"x"}`,
	)
	if _, err := ValidateTrace(strings.NewReader(backwards)); err != nil {
		t.Fatalf("default mode should tolerate out-of-order t: %v", err)
	}
	if _, err := ValidateTraceStrict(strings.NewReader(backwards)); err == nil {
		t.Fatal("strict mode accepted t_ns going backwards within a run")
	}
	// A second run restarts its clock: t dropping at an algo_start boundary
	// is fine even in strict mode.
	tworuns := lines(
		`{"kind":"algo_start","t_ns":0,"algo":"a"}`,
		`{"kind":"improve","t_ns":8,"width":3}`,
		`{"kind":"algo_stop","t_ns":9,"algo":"a"}`,
		`{"kind":"algo_start","t_ns":0,"algo":"b"}`,
		`{"kind":"improve","t_ns":2,"width":5}`,
		`{"kind":"algo_stop","t_ns":3,"algo":"b"}`,
	)
	if _, err := ValidateTraceStrict(strings.NewReader(tworuns)); err != nil {
		t.Fatalf("strict mode rejected clock restart at run boundary: %v", err)
	}
}

func lines(ls ...string) string { return strings.Join(ls, "\n") + "\n" }

func TestProgressOutput(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf, time.Hour) // throttle everything but the always-print events
	p.Record(Event{Kind: KindStart, Algo: "ga-ghw", N: 20, M: 25})
	p.Record(Event{Kind: KindImprove, T: time.Second, Width: 6, Evaluations: 100})
	p.Record(Event{Kind: KindCheckpoint, T: 2 * time.Second, Nodes: 512}) // throttled away
	p.Record(Event{Kind: KindStop, T: 3 * time.Second, Width: 6, LowerBound: 2, Stop: "deadline"})
	out := buf.String()
	for _, want := range []string{"[ga-ghw] start", "new best width 6", "done in 3s", "stopped: deadline"} {
		if !strings.Contains(out, want) {
			t.Fatalf("progress output missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "\n") != 3 {
		t.Fatalf("throttled checkpoint still printed:\n%s", out)
	}
}

func TestProgressFinish(t *testing.T) {
	// An interrupted or panicked run never reaches algo_stop; Finish flushes
	// the last known state so the terminal line still lands.
	var buf bytes.Buffer
	p := NewProgress(&buf, time.Hour)
	p.Finish() // before any run: silent
	if buf.Len() != 0 {
		t.Fatalf("Finish before start printed:\n%s", buf.String())
	}
	p.Record(Event{Kind: KindStart, Algo: "bb-ghw", N: 10, M: 12})
	p.Record(Event{Kind: KindImprove, T: time.Second, Width: 5, Nodes: 300})
	p.Record(Event{Kind: KindLowerBound, T: time.Second, LowerBound: 2})
	p.Finish()
	out := buf.String()
	for _, want := range []string{"without a stop event", "best=5", "lb=2", "nodes=300"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Finish output missing %q:\n%s", want, out)
		}
	}
	p.Finish() // idempotent
	if got := buf.String(); got != out {
		t.Fatalf("second Finish printed again:\n%s", got)
	}

	// After a normal algo_stop, Finish has nothing to add.
	buf.Reset()
	q := NewProgress(&buf, time.Hour)
	q.Record(Event{Kind: KindStart, Algo: "ga-ghw", N: 4, M: 4})
	q.Record(Event{Kind: KindStop, T: time.Second, Width: 3, LowerBound: 1})
	before := buf.String()
	q.Finish()
	if got := buf.String(); got != before {
		t.Fatalf("Finish after clean stop printed:\n%s", got)
	}
}

// failingWriter errors every Write with a distinct error and counts calls.
type failingWriter struct {
	calls atomic.Int64
}

func (f *failingWriter) Write(p []byte) (int, error) {
	n := f.calls.Add(1)
	return 0, fmt.Errorf("disk full (write #%d)", n)
}

func TestJSONLWriterLatchesFirstErrorConcurrently(t *testing.T) {
	// Once a write fails, the writer goes quiet: later Records are no-ops
	// (the underlying writer is never touched again) and Close reports the
	// first error, not the last. Hammer it from several goroutines — enough
	// bytes to overflow bufio's 4K buffer many times over if the latch leaked.
	fw := &failingWriter{}
	w := NewJSONLWriter(fw)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				w.Record(Event{Kind: KindCheckpoint, T: time.Duration(i), Nodes: int64(i)})
			}
		}()
	}
	wg.Wait()
	err := w.Close()
	if err == nil {
		t.Fatal("Close returned nil after underlying writes failed")
	}
	if got := err.Error(); got != "disk full (write #1)" {
		t.Fatalf("Close returned %q, want the first latched error", got)
	}
	if calls := fw.calls.Load(); calls != 1 {
		t.Fatalf("underlying Write called %d times after latch, want exactly 1", calls)
	}
	// The latch persists: further Records and Closes stay no-ops.
	w.Record(Event{Kind: KindImprove, Width: 3})
	if err2 := w.Close(); err2 == nil || err2.Error() != err.Error() {
		t.Fatalf("second Close returned %v, want the same latched error", err2)
	}
	if calls := fw.calls.Load(); calls != 1 {
		t.Fatalf("underlying Write reached again after latch: %d calls", calls)
	}
}
