package analyze

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"hypertree/internal/obs"
)

func lines(ls ...string) string { return strings.Join(ls, "\n") + "\n" }

func mustLoad(t *testing.T, trace string) *Trace {
	t.Helper()
	tr, err := Load(strings.NewReader(trace))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	return tr
}

func TestLoadSplitsRuns(t *testing.T) {
	tr := mustLoad(t, lines(
		`{"kind":"algo_start","t_ns":0,"algo":"bb-ghw","n":9,"m":12}`,
		`{"kind":"improve","t_ns":1000,"width":4}`,
		`{"kind":"algo_stop","t_ns":2000,"algo":"bb-ghw","width":4}`,
		`{"kind":"cover_cache","t_ns":2100,"cache_hits":10,"cache_misses":5}`, // post-stop: stays with run 1
		`{"kind":"algo_start","t_ns":0,"algo":"ga-ghw","n":9,"m":12}`,
		`{"kind":"algo_stop","t_ns":500,"algo":"ga-ghw","width":5}`,
	))
	if len(tr.Runs) != 2 {
		t.Fatalf("want 2 runs, got %d", len(tr.Runs))
	}
	if tr.Runs[0].Algo != "bb-ghw" || tr.Runs[0].N != 9 || len(tr.Runs[0].Events) != 4 {
		t.Fatalf("run 0 wrong: %q n=%d events=%d", tr.Runs[0].Algo, tr.Runs[0].N, len(tr.Runs[0].Events))
	}
	if tr.Runs[1].Algo != "ga-ghw" || len(tr.Runs[1].Events) != 2 {
		t.Fatalf("run 1 wrong: %+v", tr.Runs[1])
	}
	p := ProfileRun(tr.Runs[0], StallOptions{})
	if p.CacheHits != 10 || p.CacheMisses != 5 {
		t.Fatalf("post-stop cache snapshot lost: %+v", p)
	}
	if got := p.CacheHitRate(); got < 0.66 || got > 0.67 {
		t.Fatalf("hit rate wrong: %v", got)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not json\n")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Load(strings.NewReader("")); err == nil {
		t.Fatal("empty trace accepted")
	}
}

func TestLoadCountsUnknownKinds(t *testing.T) {
	tr := mustLoad(t, lines(
		`{"kind":"algo_start","t_ns":0,"algo":"x"}`,
		`{"kind":"from_the_future","t_ns":10}`,
		`{"kind":"algo_stop","t_ns":20,"algo":"x","width":3}`,
	))
	if tr.Unknown != 1 {
		t.Fatalf("unknown count wrong: %d", tr.Unknown)
	}
	// Unknown kinds are carried but not aggregated.
	p := ProfileRun(tr.Runs[0], StallOptions{})
	if p.Events != 3 || p.FinalWidth != 3 {
		t.Fatalf("profile over unknown kinds wrong: %+v", p)
	}
}

func TestProfileRunDerivations(t *testing.T) {
	ms := time.Millisecond
	tr := mustLoad(t, lines(
		`{"kind":"algo_start","t_ns":0,"algo":"astar-ghw","n":16,"m":24}`,
		`{"kind":"improve","t_ns":1000000,"width":6,"nodes":10}`,
		`{"kind":"checkpoint","t_ns":2000000,"nodes":256,"open":40,"depth":3}`,
		`{"kind":"improve","t_ns":3000000,"width":4,"nodes":300}`,
		`{"kind":"improve","t_ns":5000000,"width":4,"nodes":500}`, // same width: best was first reached at 3ms
		`{"kind":"checkpoint","t_ns":6000000,"nodes":512,"open":80,"max_open":90,"closed":70,"depth":5,"backtracks":12}`,
		`{"kind":"mem_sample","t_ns":6000000,"heap_alloc":1048576,"heap_sys":4194304,"num_gc":2}`,
		`{"kind":"lower_bound","t_ns":7000000,"lower_bound":3}`,
		`{"kind":"algo_stop","t_ns":10000000,"algo":"astar-ghw","width":4,"lower_bound":3,"nodes":900,"stop":"deadline"}`,
	))
	p := ProfileRun(tr.Runs[0], StallOptions{MinGap: time.Hour}) // stall detector off
	if p.FinalWidth != 4 || p.FinalLowerBound != 3 || p.Stop != "deadline" || !p.Stopped {
		t.Fatalf("terminal state wrong: %+v", p)
	}
	if p.Elapsed != 10*ms {
		t.Fatalf("elapsed wrong: %v", p.Elapsed)
	}
	if p.TimeToFirst != 1*ms || p.TimeToBest != 3*ms {
		t.Fatalf("time-to-solution wrong: first=%v best=%v", p.TimeToFirst, p.TimeToBest)
	}
	if len(p.Timeline) != 3 || len(p.LowerBounds) != 1 {
		t.Fatalf("timelines wrong: %d improves, %d lbs", len(p.Timeline), len(p.LowerBounds))
	}
	if p.Checkpoints != 2 || p.MeanCheckpointGap != 4*ms || p.MaxCheckpointGap != 4*ms {
		t.Fatalf("cadence wrong: n=%d mean=%v max=%v", p.Checkpoints, p.MeanCheckpointGap, p.MaxCheckpointGap)
	}
	if p.Nodes != 900 {
		t.Fatalf("nodes wrong: %d", p.Nodes)
	}
	if p.MaxOpen != 90 || p.MaxClosed != 70 || p.MaxDepth != 5 || p.Backtracks != 12 {
		t.Fatalf("shape gauges wrong: %+v", p)
	}
	if p.MemSamples != 1 || p.MaxHeapAlloc != 1<<20 || p.NumGC != 2 {
		t.Fatalf("memory telemetry wrong: %+v", p)
	}
	if p.ByKind[obs.KindImprove] != 3 || p.ByKind[obs.KindCheckpoint] != 2 {
		t.Fatalf("census wrong: %v", p.ByKind)
	}
	// Longest progress gap: last lower_bound at 7ms to stop at 10ms is 3ms,
	// but improve 3ms -> 5ms is only 2ms; the head gap 0 -> 1ms is 1ms.
	if p.LongestProgressGap != 3*ms || p.GapStart != 7*ms {
		t.Fatalf("progress gap wrong: %v at %v", p.LongestProgressGap, p.GapStart)
	}
}

func TestStallDetection(t *testing.T) {
	// A run that finds everything in the first millisecond and then grinds
	// silently for 500ms is stalled...
	stalled := mustLoad(t, lines(
		`{"kind":"algo_start","t_ns":0,"algo":"bb-ghw"}`,
		`{"kind":"improve","t_ns":1000000,"width":5}`,
		`{"kind":"algo_stop","t_ns":500000000,"algo":"bb-ghw","width":5,"stop":"deadline"}`,
	))
	p := ProfileRun(stalled.Runs[0], StallOptions{})
	if !p.StallDetected {
		t.Fatalf("stall not detected: gap=%v elapsed=%v", p.LongestProgressGap, p.Elapsed)
	}
	// ...while one improving steadily to the end is not, even though it runs
	// just as long.
	healthy := mustLoad(t, lines(
		`{"kind":"algo_start","t_ns":0,"algo":"bb-ghw"}`,
		`{"kind":"improve","t_ns":100000000,"width":7}`,
		`{"kind":"improve","t_ns":250000000,"width":6}`,
		`{"kind":"improve","t_ns":400000000,"width":5}`,
		`{"kind":"algo_stop","t_ns":500000000,"algo":"bb-ghw","width":5,"stop":"deadline"}`,
	))
	if p := ProfileRun(healthy.Runs[0], StallOptions{}); p.StallDetected {
		t.Fatalf("healthy run flagged as stalled: gap=%v elapsed=%v", p.LongestProgressGap, p.Elapsed)
	}
	// A short run's total silence is not a stall: the MinGap floor filters
	// sub-threshold runs out.
	short := mustLoad(t, lines(
		`{"kind":"algo_start","t_ns":0,"algo":"bb-ghw"}`,
		`{"kind":"improve","t_ns":1000,"width":5}`,
		`{"kind":"algo_stop","t_ns":2000000,"algo":"bb-ghw","width":5}`,
	))
	if p := ProfileRun(short.Runs[0], StallOptions{}); p.StallDetected {
		t.Fatal("2ms run flagged as stalled")
	}
}

func traceFor(algo string, width int, elapsed time.Duration) string {
	return lines(
		`{"kind":"algo_start","t_ns":0,"algo":"`+algo+`"}`,
		`{"kind":"improve","t_ns":1000000,"width":`+itoa(width)+`}`,
		`{"kind":"algo_stop","t_ns":`+itoa64(int64(elapsed))+`,"algo":"`+algo+`","width":`+itoa(width)+`}`,
	)
}

func itoa(v int) string     { return strconv.Itoa(v) }
func itoa64(v int64) string { return strconv.FormatInt(v, 10) }

func TestCompareWidthRegression(t *testing.T) {
	oldT := mustLoad(t, traceFor("bb-ghw", 4, 200*time.Millisecond))
	newT := mustLoad(t, traceFor("bb-ghw", 5, 200*time.Millisecond))
	c := Compare(oldT, newT, CompareOptions{})
	if !c.Regressed() || len(c.Deltas) != 1 {
		t.Fatalf("width regression missed: %+v", c)
	}
	if d := c.Deltas[0]; d.OldWidth != 4 || d.NewWidth != 5 || len(d.Reasons) == 0 {
		t.Fatalf("delta wrong: %+v", d)
	}
}

func TestCompareTimeRegression(t *testing.T) {
	oldT := mustLoad(t, traceFor("bb-ghw", 4, 200*time.Millisecond))
	slow := mustLoad(t, traceFor("bb-ghw", 4, 800*time.Millisecond))
	if c := Compare(oldT, slow, CompareOptions{}); !c.Regressed() {
		t.Fatalf("4x slowdown not flagged: %+v", c.Deltas[0])
	}
	// Within the threshold: not a regression.
	okT := mustLoad(t, traceFor("bb-ghw", 4, 250*time.Millisecond))
	if c := Compare(oldT, okT, CompareOptions{}); c.Regressed() {
		t.Fatalf("25%% slowdown flagged at default 50%% threshold: %+v", c.Deltas[0])
	}
	// Below the noise floor: a large ratio on microsecond runs is jitter.
	tiny := mustLoad(t, traceFor("bb-ghw", 4, 2*time.Millisecond))
	tinySlow := mustLoad(t, traceFor("bb-ghw", 4, 9*time.Millisecond))
	if c := Compare(tiny, tinySlow, CompareOptions{}); c.Regressed() {
		t.Fatalf("sub-noise-floor slowdown flagged: %+v", c.Deltas[0])
	}
}

func TestCompareImprovementAndUnmatched(t *testing.T) {
	oldT := mustLoad(t, traceFor("bb-ghw", 5, 200*time.Millisecond))
	better := mustLoad(t, traceFor("bb-ghw", 4, 100*time.Millisecond)+traceFor("ga-ghw", 6, 50*time.Millisecond))
	c := Compare(oldT, better, CompareOptions{})
	if c.Regressed() {
		t.Fatalf("improvement flagged as regression: %+v", c.Deltas[0])
	}
	if len(c.Deltas[0].Notes) == 0 {
		t.Fatalf("width improvement not noted: %+v", c.Deltas[0])
	}
	if len(c.NewOnly) != 1 || c.NewOnly[0] != "ga-ghw" {
		t.Fatalf("unmatched run not listed: %+v", c)
	}
}

func TestCompareExactnessLoss(t *testing.T) {
	exact := mustLoad(t, lines(
		`{"kind":"algo_start","t_ns":0,"algo":"bb-ghw"}`,
		`{"kind":"algo_stop","t_ns":200000000,"algo":"bb-ghw","width":4,"exact":true}`,
	))
	inexact := mustLoad(t, lines(
		`{"kind":"algo_start","t_ns":0,"algo":"bb-ghw"}`,
		`{"kind":"algo_stop","t_ns":200000000,"algo":"bb-ghw","width":4,"stop":"deadline"}`,
	))
	if c := Compare(exact, inexact, CompareOptions{}); !c.Regressed() {
		t.Fatal("exactness loss not flagged")
	}
	if c := Compare(inexact, exact, CompareOptions{}); c.Regressed() {
		t.Fatal("gaining exactness flagged as regression")
	}
}
