// Package analyze is the consumption layer over the obs trace format: it
// loads JSONL traces back into typed run models and computes the derived
// diagnostics the emit side cannot — anytime-width profiles, time to first
// and best solution, checkpoint cadence, stall detection, and cross-run
// regression deltas. cmd/tracestat is its CLI.
//
// The split mirrors the thesis's empirical methodology: algorithms are
// compared by trajectories (best width over time), not only endpoints, and a
// run that stops improving long before its budget expires is a different
// finding from one still making progress when cut off.
package analyze

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"hypertree/internal/obs"
)

// Run is one algorithm run reconstructed from a trace: the events from an
// algo_start up to (but excluding) the next algo_start. Post-processing
// events emitted after the run's algo_stop (tree verification improvements,
// final cover-cache snapshots) belong to the run that produced them.
type Run struct {
	// Algo is the run label from algo_start ("" for events preceding the
	// first start marker).
	Algo string
	// N and M are the instance size from algo_start.
	N, M int
	// Events is the run's event stream in file order.
	Events []obs.Event
}

// Trace is a loaded JSONL trace.
type Trace struct {
	Runs []*Run
	// Spans are the daemon's request-lifecycle span events, kept out of the
	// solver run grouping: their clock is request-relative, not
	// budget-relative, and one request's spans bracket (not belong to) its
	// solver run. Requests() derives per-request profiles from them.
	Spans []obs.Event
	// Attr are the terminal attribution events — one per portfolio member
	// (or the serial run's one member) carrying its resource-ledger row.
	// They are diverted from the run grouping for the same reason spans are:
	// a member's attr event is emitted under the member's algo label after
	// the portfolio's algo_stop and would otherwise open a phantom run.
	// Attribution() aggregates them into the per-algorithm cost report.
	Attr []obs.Event
	// Unknown counts events whose kind is outside this build's taxonomy;
	// they are kept in their run's Events (the format is forward-compatible)
	// but excluded from profile aggregation.
	Unknown int
}

// Load parses a JSONL event stream into runs. Unlike obs.ValidateTrace it
// does not enforce schema invariants — feed it through the validator first
// when provenance is doubtful — but it still rejects non-JSON lines.
func Load(r io.Reader) (*Trace, error) {
	tr := &Trace{}
	var cur *Run
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var e obs.Event
		if err := json.Unmarshal(raw, &e); err != nil {
			return nil, fmt.Errorf("analyze: trace line %d is not a JSON event: %w", line, err)
		}
		if !obs.ValidKind(e.Kind) {
			tr.Unknown++
		}
		if e.Kind == obs.KindSpan {
			tr.Spans = append(tr.Spans, e)
			continue
		}
		if e.Kind == obs.KindAttr {
			tr.Attr = append(tr.Attr, e)
			continue
		}
		if e.Kind == obs.KindStart || cur == nil {
			cur = &Run{Algo: e.Algo, N: e.N, M: e.M}
			tr.Runs = append(tr.Runs, cur)
		}
		cur.Events = append(cur.Events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("analyze: reading trace: %w", err)
	}
	if len(tr.Runs) == 0 && len(tr.Spans) == 0 && len(tr.Attr) == 0 {
		return nil, fmt.Errorf("analyze: trace is empty")
	}
	return tr, nil
}

// LoadFile is Load over a file path.
func LoadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	t, err := Load(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return t, nil
}

// StallOptions tunes the stall detector.
type StallOptions struct {
	// MinGap is the smallest progress gap worth calling a stall; gaps below
	// it are normal event cadence, not pathology. Default 50ms.
	MinGap time.Duration
	// Fraction is the share of the run's elapsed time the longest gap must
	// cover to count as a stall: a 60ms silence in a 50ms run is the whole
	// run, in a 10s run it is noise. Default 0.5.
	Fraction float64
}

// DefaultStallOptions returns the thresholds used when a zero StallOptions
// is passed.
func DefaultStallOptions() StallOptions {
	return StallOptions{MinGap: 50 * time.Millisecond, Fraction: 0.5}
}

func (o StallOptions) withDefaults() StallOptions {
	d := DefaultStallOptions()
	if o.MinGap <= 0 {
		o.MinGap = d.MinGap
	}
	if o.Fraction <= 0 {
		o.Fraction = d.Fraction
	}
	return o
}

// Profile is the derived per-run report.
type Profile struct {
	Algo   string `json:"algo"`
	N      int    `json:"n,omitempty"`
	M      int    `json:"m,omitempty"`
	Events int    `json:"events"`
	// ByKind is the per-kind event census.
	ByKind map[obs.Kind]int `json:"by_kind"`

	// Terminal state, from the run's algo_stop (zero values when the trace
	// was cut before the stop event landed).
	FinalWidth      int           `json:"final_width"`
	FinalLowerBound int           `json:"final_lower_bound,omitempty"`
	Exact           bool          `json:"exact"`
	Stop            string        `json:"stop,omitempty"`
	Stopped         bool          `json:"stopped"` // an algo_stop event was seen
	Elapsed         time.Duration `json:"elapsed_ns"`

	// Anytime profile.
	Timeline    []obs.WidthPoint `json:"timeline,omitempty"`
	LowerBounds []obs.WidthPoint `json:"lower_bounds,omitempty"`
	// TimeToFirst and TimeToBest are the timestamps of the first improve
	// event and of the improve that reached the final best width.
	TimeToFirst time.Duration `json:"time_to_first_ns,omitempty"`
	TimeToBest  time.Duration `json:"time_to_best_ns,omitempty"`

	// Effort counters (maxima over checkpoint/stop events).
	Nodes       int64 `json:"nodes,omitempty"`
	Evaluations int64 `json:"evaluations,omitempty"`
	Generations int   `json:"generations,omitempty"`

	// Checkpoint cadence: number of checkpoints and the mean/max gap between
	// consecutive ones. A healthy run checkpoints steadily; a widening max
	// gap means work units got expensive (or the run hung).
	Checkpoints       int           `json:"checkpoints"`
	MeanCheckpointGap time.Duration `json:"mean_checkpoint_gap_ns,omitempty"`
	MaxCheckpointGap  time.Duration `json:"max_checkpoint_gap_ns,omitempty"`

	// Stall detection: the longest interval without an improve or
	// lower_bound event (measured from run start, between progress events,
	// and from the last progress to the run's end), where that silence began,
	// and the verdict under the profile's StallOptions.
	LongestProgressGap time.Duration `json:"longest_progress_gap_ns"`
	GapStart           time.Duration `json:"gap_start_ns"`
	StallDetected      bool          `json:"stall_detected"`

	// Resource telemetry (from mem_sample events; zero when sampling never
	// triggered).
	MemSamples   int    `json:"mem_samples,omitempty"`
	MaxHeapAlloc uint64 `json:"max_heap_alloc,omitempty"`
	MaxHeapSys   uint64 `json:"max_heap_sys,omitempty"`
	NumGC        uint32 `json:"num_gc,omitempty"`

	// Search-shape and diversity gauges, as aggregated by obs.RunStats.
	MaxOpen        int     `json:"max_open,omitempty"`
	MaxClosed      int     `json:"max_closed,omitempty"`
	MaxDepth       int     `json:"max_depth,omitempty"`
	Backtracks     int64   `json:"backtracks,omitempty"`
	WidthStd       float64 `json:"width_std,omitempty"`
	DistinctWidths int     `json:"distinct_widths,omitempty"`

	// Cover-cache totals from the last cover_cache snapshot.
	CacheHits   int64 `json:"cache_hits,omitempty"`
	CacheMisses int64 `json:"cache_misses,omitempty"`
}

// CacheHitRate is hits/(hits+misses), or -1 when the run had no cover
// queries (so "no cache" and "0% hit rate" stay distinguishable).
func (p *Profile) CacheHitRate() float64 {
	total := p.CacheHits + p.CacheMisses
	if total == 0 {
		return -1
	}
	return float64(p.CacheHits) / float64(total)
}

// ProfileRun derives a Profile from one run. opt fields at their zero values
// take the defaults from DefaultStallOptions.
func ProfileRun(r *Run, opt StallOptions) *Profile {
	opt = opt.withDefaults()
	p := &Profile{
		Algo: r.Algo, N: r.N, M: r.M,
		Events: len(r.Events),
		ByKind: map[obs.Kind]int{},
	}
	// end is the run's horizon: the stop event's timestamp, or the latest
	// timestamp seen when the trace was cut short.
	var end time.Duration
	var lastProgress time.Duration
	var lastCheckpoint time.Duration
	var checkpointGapSum time.Duration
	observeGap := func(from, to time.Duration) {
		if gap := to - from; gap > p.LongestProgressGap {
			p.LongestProgressGap = gap
			p.GapStart = from
		}
	}
	for _, e := range r.Events {
		p.ByKind[e.Kind]++
		if e.T > end {
			end = e.T
		}
		switch e.Kind {
		case obs.KindImprove:
			p.Timeline = append(p.Timeline, obs.WidthPoint{
				T: e.T, Width: e.Width, Nodes: e.Nodes,
				Evaluations: e.Evaluations, Generation: e.Generation,
			})
			observeGap(lastProgress, e.T)
			lastProgress = e.T
		case obs.KindLowerBound:
			p.LowerBounds = append(p.LowerBounds, obs.WidthPoint{T: e.T, Width: e.LowerBound, Nodes: e.Nodes})
			observeGap(lastProgress, e.T)
			lastProgress = e.T
		case obs.KindCheckpoint:
			if p.Checkpoints > 0 {
				gap := e.T - lastCheckpoint
				checkpointGapSum += gap
				if gap > p.MaxCheckpointGap {
					p.MaxCheckpointGap = gap
				}
			}
			lastCheckpoint = e.T
			p.Checkpoints++
			maxi64(&p.Nodes, e.Nodes)
			maxi(&p.MaxOpen, e.Open)
			maxi(&p.MaxOpen, e.MaxOpen)
			maxi(&p.MaxClosed, e.Closed)
			maxi(&p.MaxDepth, e.Depth)
			maxi64(&p.Backtracks, e.Backtracks)
		case obs.KindMemSample:
			p.MemSamples++
			if e.HeapAlloc > p.MaxHeapAlloc {
				p.MaxHeapAlloc = e.HeapAlloc
			}
			if e.HeapSys > p.MaxHeapSys {
				p.MaxHeapSys = e.HeapSys
			}
			if e.NumGC > p.NumGC {
				p.NumGC = e.NumGC
			}
		case obs.KindGeneration:
			maxi(&p.Generations, e.Generation)
			maxi64(&p.Evaluations, e.Evaluations)
			if e.Island == 0 || e.Generation >= p.Generations {
				p.WidthStd, p.DistinctWidths = e.WidthStd, e.DistinctWidths
			}
		case obs.KindCoverCache:
			p.CacheHits, p.CacheMisses = e.CacheHits, e.CacheMisses
		case obs.KindStop:
			p.Stopped = true
			p.FinalWidth, p.FinalLowerBound = e.Width, e.LowerBound
			p.Exact, p.Stop, p.Elapsed = e.Exact, e.Stop, e.T
			maxi64(&p.Nodes, e.Nodes)
			maxi64(&p.Evaluations, e.Evaluations)
			maxi(&p.MaxOpen, e.MaxOpen)
			maxi64(&p.Backtracks, e.Backtracks)
		}
	}
	if p.Elapsed == 0 {
		p.Elapsed = end
	}
	if p.Checkpoints > 1 {
		p.MeanCheckpointGap = checkpointGapSum / time.Duration(p.Checkpoints-1)
	}
	if n := len(p.Timeline); n > 0 {
		p.TimeToFirst = p.Timeline[0].T
		best := p.Timeline[n-1]
		// Time to best is the FIRST moment the final width was reached.
		p.TimeToBest = best.T
		for i := n - 1; i >= 0 && p.Timeline[i].Width == best.Width; i-- {
			p.TimeToBest = p.Timeline[i].T
		}
		if !p.Stopped {
			p.FinalWidth = best.Width
		}
	}
	observeGap(lastProgress, p.Elapsed) // tail silence: last progress to end
	p.StallDetected = p.LongestProgressGap >= opt.MinGap &&
		float64(p.LongestProgressGap) >= opt.Fraction*float64(p.Elapsed)
	return p
}

// Profiles derives one Profile per run of a trace.
func Profiles(t *Trace, opt StallOptions) []*Profile {
	out := make([]*Profile, len(t.Runs))
	for i, r := range t.Runs {
		out[i] = ProfileRun(r, opt)
	}
	return out
}

func maxi(dst *int, v int) {
	if v > *dst {
		*dst = v
	}
}

func maxi64(dst *int64, v int64) {
	if v > *dst {
		*dst = v
	}
}
