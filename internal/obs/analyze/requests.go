package analyze

import (
	"fmt"
	"sort"
	"time"
)

// RequestProfile is one served request reconstructed from its span events:
// the phase breakdown the daemon stamped onto the trace.
type RequestProfile struct {
	Req     string `json:"req"`
	Algo    string `json:"algo,omitempty"`
	Outcome string `json:"outcome,omitempty"`
	// Phases maps phase name ("queue_wait", "parse", "cache", "solve",
	// "encode") to its duration; phases the request never reached are absent.
	Phases map[string]time.Duration `json:"phases_ns,omitempty"`
	// Total is the request's end-to-end wall-clock (the "total" span);
	// QueueWait is broken out because it is the first diagnostic question.
	Total     time.Duration `json:"total_ns"`
	QueueWait time.Duration `json:"queue_wait_ns,omitempty"`
}

// Requests derives per-request profiles from a trace's span events, in
// order of first appearance. Requests whose total span is missing (trace
// cut mid-request) still appear, with Total falling back to the sum of the
// phases seen.
func Requests(t *Trace) []*RequestProfile {
	byReq := map[string]*RequestProfile{}
	var order []string
	for _, e := range t.Spans {
		rp := byReq[e.Req]
		if rp == nil {
			rp = &RequestProfile{Req: e.Req, Phases: map[string]time.Duration{}}
			byReq[e.Req] = rp
			order = append(order, e.Req)
		}
		if rp.Algo == "" {
			rp.Algo = e.Algo
		}
		if e.Phase == "total" {
			rp.Total = e.Dur
			rp.Outcome = e.Outcome
			continue
		}
		rp.Phases[e.Phase] = e.Dur
		if e.Phase == "queue_wait" {
			rp.QueueWait = e.Dur
		}
	}
	out := make([]*RequestProfile, len(order))
	for i, req := range order {
		rp := byReq[req]
		if rp.Total == 0 {
			for _, d := range rp.Phases {
				rp.Total += d
			}
		}
		out[i] = rp
	}
	return out
}

// LatencyStats summarizes a latency sample with exact (nearest-rank)
// percentiles — the analysis side holds every sample, so unlike the
// daemon's bucketed histograms it does not need to approximate.
type LatencyStats struct {
	Count int           `json:"count"`
	Mean  time.Duration `json:"mean_ns"`
	P50   time.Duration `json:"p50_ns"`
	P95   time.Duration `json:"p95_ns"`
	P99   time.Duration `json:"p99_ns"`
	Max   time.Duration `json:"max_ns"`
}

func latencyStats(samples []time.Duration) LatencyStats {
	st := LatencyStats{Count: len(samples)}
	if st.Count == 0 {
		return st
	}
	sorted := make([]time.Duration, len(samples))
	copy(sorted, samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum time.Duration
	for _, d := range sorted {
		sum += d
	}
	st.Mean = sum / time.Duration(st.Count)
	rank := func(q float64) time.Duration {
		// Nearest-rank: the smallest sample with cumulative share >= q.
		i := int(q*float64(st.Count)+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= st.Count {
			i = st.Count - 1
		}
		return sorted[i]
	}
	st.P50, st.P95, st.P99 = rank(0.50), rank(0.95), rank(0.99)
	st.Max = sorted[st.Count-1]
	return st
}

// RequestSummary is the cross-request report: latency and queue-wait
// percentiles over all requests, per-phase mean shares, and the per-outcome
// census.
type RequestSummary struct {
	Requests  int            `json:"requests"`
	ByOutcome map[string]int `json:"by_outcome,omitempty"`
	Latency   LatencyStats   `json:"latency"`
	QueueWait LatencyStats   `json:"queue_wait"`
	// PhaseMeans maps each phase to its mean duration over the requests
	// that reached it.
	PhaseMeans map[string]time.Duration `json:"phase_means_ns,omitempty"`
}

// SummarizeRequests aggregates per-request profiles into the cross-request
// report. Returns nil when the trace carries no spans (a CLI trace).
func SummarizeRequests(reqs []*RequestProfile) *RequestSummary {
	if len(reqs) == 0 {
		return nil
	}
	sum := &RequestSummary{
		Requests:   len(reqs),
		ByOutcome:  map[string]int{},
		PhaseMeans: map[string]time.Duration{},
	}
	var totals, waits []time.Duration
	phaseSums := map[string]time.Duration{}
	phaseCounts := map[string]int{}
	for _, rp := range reqs {
		totals = append(totals, rp.Total)
		if _, ok := rp.Phases["queue_wait"]; ok {
			waits = append(waits, rp.QueueWait)
		}
		if rp.Outcome != "" {
			sum.ByOutcome[rp.Outcome]++
		}
		for phase, d := range rp.Phases {
			phaseSums[phase] += d
			phaseCounts[phase]++
		}
	}
	sum.Latency = latencyStats(totals)
	sum.QueueWait = latencyStats(waits)
	for phase, total := range phaseSums {
		sum.PhaseMeans[phase] = total / time.Duration(phaseCounts[phase])
	}
	return sum
}

// LatencyDelta is the cross-trace serving-latency verdict: old vs new
// request percentiles under the comparison's noise rules.
type LatencyDelta struct {
	OldRequests int          `json:"old_requests"`
	NewRequests int          `json:"new_requests"`
	Old         LatencyStats `json:"old"`
	New         LatencyStats `json:"new"`
	// P95Ratio is new/old P95 (0 when old P95 is 0).
	P95Ratio float64 `json:"p95_ratio"`
	// Regressed fires when new P95 exceeds old P95 by more than the
	// comparison's TimeThreshold AND either side's P95 clears the MinElapsed
	// noise floor — single-digit-millisecond shifts are scheduler jitter,
	// not regressions.
	Regressed bool     `json:"regressed"`
	Reasons   []string `json:"reasons,omitempty"`
}

// CompareRequests diffs the serving latency of two traces. Returns nil
// unless both traces carry spans (nothing to verdict otherwise).
func CompareRequests(oldT, newT *Trace, opt CompareOptions) *LatencyDelta {
	opt = opt.withDefaults()
	oldReqs, newReqs := Requests(oldT), Requests(newT)
	if len(oldReqs) == 0 || len(newReqs) == 0 {
		return nil
	}
	oldSum, newSum := SummarizeRequests(oldReqs), SummarizeRequests(newReqs)
	d := &LatencyDelta{
		OldRequests: oldSum.Requests,
		NewRequests: newSum.Requests,
		Old:         oldSum.Latency,
		New:         newSum.Latency,
	}
	if d.Old.P95 > 0 {
		d.P95Ratio = float64(d.New.P95) / float64(d.Old.P95)
	}
	slow := d.New.P95 > time.Duration(float64(d.Old.P95)*(1+opt.TimeThreshold))
	aboveFloor := d.New.P95 > opt.MinElapsed || d.Old.P95 > opt.MinElapsed
	if slow && aboveFloor {
		d.Regressed = true
		d.Reasons = append(d.Reasons, fmt.Sprintf("request P95 %v -> %v (%.2fx > %.2fx tolerance)",
			d.Old.P95.Round(time.Millisecond), d.New.P95.Round(time.Millisecond),
			d.P95Ratio, 1+opt.TimeThreshold))
	}
	return d
}
