package analyze

import (
	"fmt"
	"time"
)

// CompareOptions tunes the cross-run diff's noise tolerance.
type CompareOptions struct {
	// TimeThreshold is the relative slowdown tolerated before a run counts
	// as a time regression: new > old*(1+TimeThreshold). Default 0.5 — trace
	// timings carry scheduler noise, so the gate is deliberately loose.
	TimeThreshold float64
	// MinElapsed is the noise floor: runs where both sides finish under it
	// are never time regressions (a 2ms-vs-5ms flip is measurement jitter).
	// Default 50ms.
	MinElapsed time.Duration
	// CacheDropThreshold is the absolute cover-cache hit-rate drop (0..1)
	// tolerated before it is noted. Default 0.1. Cache drift is reported as
	// a note, never as a regression by itself.
	CacheDropThreshold float64
	// Stall tunes the per-run stall detector feeding the delta's notes.
	Stall StallOptions
}

// DefaultCompareOptions returns the thresholds used for zero fields.
func DefaultCompareOptions() CompareOptions {
	return CompareOptions{
		TimeThreshold:      0.5,
		MinElapsed:         50 * time.Millisecond,
		CacheDropThreshold: 0.1,
	}
}

func (o CompareOptions) withDefaults() CompareOptions {
	d := DefaultCompareOptions()
	if o.TimeThreshold <= 0 {
		o.TimeThreshold = d.TimeThreshold
	}
	if o.MinElapsed <= 0 {
		o.MinElapsed = d.MinElapsed
	}
	if o.CacheDropThreshold <= 0 {
		o.CacheDropThreshold = d.CacheDropThreshold
	}
	return o
}

// Delta is the diff between the same run in two traces of one instance.
type Delta struct {
	Algo string `json:"algo"`

	OldWidth int `json:"old_width"`
	NewWidth int `json:"new_width"`

	OldExact bool `json:"old_exact"`
	NewExact bool `json:"new_exact"`

	OldElapsed time.Duration `json:"old_elapsed_ns"`
	NewElapsed time.Duration `json:"new_elapsed_ns"`
	// TimeRatio is new/old elapsed (0 when old is 0).
	TimeRatio float64 `json:"time_ratio"`

	OldTimeToBest time.Duration `json:"old_time_to_best_ns,omitempty"`
	NewTimeToBest time.Duration `json:"new_time_to_best_ns,omitempty"`

	// Cache hit rates, -1 when the side ran no cover queries.
	OldHitRate float64 `json:"old_hit_rate"`
	NewHitRate float64 `json:"new_hit_rate"`

	// Regressed marks a quality or performance loss beyond the options'
	// tolerance; Reasons says which gates tripped. Notes carry observations
	// (cache drift, stall flags, exactness changes) that inform but do not
	// gate.
	Regressed bool     `json:"regressed"`
	Reasons   []string `json:"reasons,omitempty"`
	Notes     []string `json:"notes,omitempty"`
}

// Comparison is the full cross-trace diff.
type Comparison struct {
	Deltas []*Delta `json:"deltas"`
	// OldOnly and NewOnly list run labels present in only one trace.
	OldOnly []string `json:"old_only,omitempty"`
	NewOnly []string `json:"new_only,omitempty"`
	// Latency is the serving-latency verdict, present only when both traces
	// carry request spans (daemon traces).
	Latency *LatencyDelta `json:"latency,omitempty"`
}

// Regressed reports whether any matched run — or the serving latency —
// regressed.
func (c *Comparison) Regressed() bool {
	for _, d := range c.Deltas {
		if d.Regressed {
			return true
		}
	}
	return c.Latency != nil && c.Latency.Regressed
}

// Compare diffs two traces of the same instance run by run. Runs are matched
// by algorithm label in order of occurrence (the i-th "bb-ghw" run of one
// trace against the i-th of the other); unmatched runs are listed, not
// diffed. A width increase always regresses; a slowdown regresses only past
// the options' relative threshold and above the noise floor.
func Compare(oldT, newT *Trace, opt CompareOptions) *Comparison {
	opt = opt.withDefaults()
	oldByAlgo := groupRuns(oldT)
	newByAlgo := groupRuns(newT)
	c := &Comparison{}
	// Iterate old trace in file order for stable output.
	seen := map[string]bool{}
	for _, r := range oldT.Runs {
		if seen[r.Algo] {
			continue
		}
		seen[r.Algo] = true
		olds, news := oldByAlgo[r.Algo], newByAlgo[r.Algo]
		n := len(olds)
		if len(news) < n {
			n = len(news)
		}
		for i := 0; i < n; i++ {
			c.Deltas = append(c.Deltas, diffRuns(olds[i], news[i], opt))
		}
		for i := n; i < len(olds); i++ {
			c.OldOnly = append(c.OldOnly, olds[i].Algo)
		}
		for i := n; i < len(news); i++ {
			c.NewOnly = append(c.NewOnly, news[i].Algo)
		}
	}
	for _, r := range newT.Runs {
		if !seen[r.Algo] {
			seen[r.Algo] = true
			for range newByAlgo[r.Algo] {
				c.NewOnly = append(c.NewOnly, r.Algo)
			}
		}
	}
	c.Latency = CompareRequests(oldT, newT, opt)
	return c
}

func groupRuns(t *Trace) map[string][]*Run {
	m := map[string][]*Run{}
	for _, r := range t.Runs {
		m[r.Algo] = append(m[r.Algo], r)
	}
	return m
}

func diffRuns(oldR, newR *Run, opt CompareOptions) *Delta {
	op := ProfileRun(oldR, opt.Stall)
	np := ProfileRun(newR, opt.Stall)
	d := &Delta{
		Algo:          op.Algo,
		OldWidth:      op.FinalWidth,
		NewWidth:      np.FinalWidth,
		OldExact:      op.Exact,
		NewExact:      np.Exact,
		OldElapsed:    op.Elapsed,
		NewElapsed:    np.Elapsed,
		OldTimeToBest: op.TimeToBest,
		NewTimeToBest: np.TimeToBest,
		OldHitRate:    op.CacheHitRate(),
		NewHitRate:    np.CacheHitRate(),
	}
	if op.Elapsed > 0 {
		d.TimeRatio = float64(np.Elapsed) / float64(op.Elapsed)
	}
	if np.FinalWidth > op.FinalWidth {
		d.Regressed = true
		d.Reasons = append(d.Reasons, fmt.Sprintf("width %d -> %d", op.FinalWidth, np.FinalWidth))
	}
	slow := np.Elapsed > time.Duration(float64(op.Elapsed)*(1+opt.TimeThreshold))
	aboveFloor := np.Elapsed > opt.MinElapsed || op.Elapsed > opt.MinElapsed
	if slow && aboveFloor {
		d.Regressed = true
		d.Reasons = append(d.Reasons, fmt.Sprintf("elapsed %v -> %v (%.2fx > %.2fx tolerance)",
			op.Elapsed.Round(time.Millisecond), np.Elapsed.Round(time.Millisecond),
			d.TimeRatio, 1+opt.TimeThreshold))
	}
	if op.Exact && !np.Exact {
		d.Regressed = true
		d.Reasons = append(d.Reasons, "exactness lost (old proved optimal, new did not)")
	}
	if d.OldHitRate >= 0 && d.NewHitRate >= 0 && d.OldHitRate-d.NewHitRate > opt.CacheDropThreshold {
		d.Notes = append(d.Notes, fmt.Sprintf("cover-cache hit rate dropped %.1f%% -> %.1f%%",
			100*d.OldHitRate, 100*d.NewHitRate))
	}
	if np.FinalWidth < op.FinalWidth {
		d.Notes = append(d.Notes, fmt.Sprintf("width improved %d -> %d", op.FinalWidth, np.FinalWidth))
	}
	if !op.StallDetected && np.StallDetected {
		d.Notes = append(d.Notes, fmt.Sprintf("new run stalls: %v without progress",
			np.LongestProgressGap.Round(time.Millisecond)))
	}
	return d
}
