package analyze

import (
	"strings"
	"testing"
	"time"

	"hypertree/internal/obs"
	"hypertree/internal/obs/attr"
)

// ledgerEvents renders a two-member portfolio ledger into its attr events,
// the same path the solvers use.
func ledgerEvents(winnerNodes, loserNodes int64) []obs.Event {
	l := &attr.Ledger{
		Portfolio:  true,
		Winner:     "bb-ghw",
		TotalNodes: winnerNodes + loserNodes,
		Members: []attr.Member{
			{Algo: "bb-ghw", Role: attr.RoleWinner, Nodes: winnerNodes, CPU: time.Second,
				CacheHits: 5, CacheMisses: 2, BestWidth: 3,
				Claims: []attr.Claim{{Width: 4, T: time.Millisecond}, {Width: 3, T: 2 * time.Millisecond}}},
			{Algo: "ga-ghw", Role: attr.RoleAbortedLoser, Nodes: loserNodes,
				CPU: 2 * time.Second, BestWidth: 4, Stop: "portfolio-win"},
		},
	}
	return l.Events(3 * time.Second)
}

func TestLoadDivertsAttrEvents(t *testing.T) {
	trace := `{"kind":"algo_start","t_ns":0,"algo":"bb-ghw","n":4,"m":3}
{"kind":"algo_stop","t_ns":100,"algo":"bb-ghw","width":2}
{"kind":"attr","t_ns":100,"algo":"bb-ghw","role":"winner","nodes":10,"share":1}
`
	tr, err := Load(strings.NewReader(trace))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Attr) != 1 {
		t.Fatalf("Attr events = %d, want 1", len(tr.Attr))
	}
	// The attr event must not have opened a phantom run or joined the real
	// one's event stream.
	if len(tr.Runs) != 1 || len(tr.Runs[0].Events) != 2 {
		t.Fatalf("runs = %d (events %d), want 1 run with 2 events", len(tr.Runs), len(tr.Runs[0].Events))
	}
}

func TestAttributionAggregates(t *testing.T) {
	tr := &Trace{Attr: append(ledgerEvents(60, 40), ledgerEvents(30, 70)...)}
	rep := Attribution(tr)
	if rep == nil {
		t.Fatal("no report from a trace with attr events")
	}
	if rep.Runs != 2 || rep.TotalNodes != 200 {
		t.Fatalf("runs %d total %d, want 2 / 200", rep.Runs, rep.TotalNodes)
	}
	bb := rep.Find("bb-ghw")
	if bb == nil || bb.Runs != 2 || bb.Wins != 2 || bb.Nodes != 90 {
		t.Fatalf("bb-ghw row: %+v", bb)
	}
	if bb.Improvements != 4 || bb.WinRate() != 1.0 {
		t.Fatalf("bb-ghw improvements %d win rate %v", bb.Improvements, bb.WinRate())
	}
	if bb.Share != 0.45 {
		t.Fatalf("bb-ghw share = %v, want 0.45", bb.Share)
	}
	ga := rep.Find("ga-ghw")
	if ga == nil || ga.Wins != 0 || ga.Nodes != 110 || ga.Share != 0.55 {
		t.Fatalf("ga-ghw row: %+v", ga)
	}
	if ga.CPU != 4*time.Second {
		t.Fatalf("ga-ghw cpu = %v, want 4s", ga.CPU)
	}
	if Attribution(&Trace{}) != nil {
		t.Fatal("empty trace must yield a nil report")
	}
}

func TestCompareAttributionFlagsCostShareRegression(t *testing.T) {
	oldR := Attribution(&Trace{Attr: ledgerEvents(60, 40)})
	// ga-ghw's share grows 40% -> 70% with its win rate flat at 0: a cost
	// regression. bb-ghw's share shrank, which never regresses.
	newR := Attribution(&Trace{Attr: ledgerEvents(30, 70)})
	cmp := CompareAttribution(oldR, newR, AttrCompareOptions{})
	if !cmp.Regressed() {
		t.Fatalf("share growth past threshold not flagged: %+v", cmp.Deltas)
	}
	for _, d := range cmp.Deltas {
		switch d.Algo {
		case "ga-ghw":
			if !d.Regressed || len(d.Reasons) == 0 {
				t.Fatalf("ga-ghw delta: %+v", d)
			}
		case "bb-ghw":
			if d.Regressed {
				t.Fatalf("bb-ghw flagged despite shrinking share: %+v", d)
			}
		}
	}
	// A wide threshold tolerates the same growth.
	if CompareAttribution(oldR, newR, AttrCompareOptions{ShareThreshold: 0.5}).Regressed() {
		t.Fatal("growth under threshold still flagged")
	}
	// A member that wins more is allowed to cost more: same share growth,
	// but the new trace's ga-ghw rows become winners.
	winEvs := ledgerEvents(30, 70)
	for i := range winEvs {
		if winEvs[i].Algo == "ga-ghw" {
			winEvs[i].Role = attr.RoleWinner
		}
	}
	if CompareAttribution(oldR, Attribution(&Trace{Attr: winEvs}), AttrCompareOptions{}).Regressed() {
		t.Fatal("share growth with improved win rate must not regress")
	}
}
