package analyze

import (
	"fmt"
	"sort"
	"time"

	"hypertree/internal/obs/attr"
)

// MemberReport is one algorithm's aggregated attribution across every run
// of a trace: what the solver cost the process and what it contributed, the
// numbers a dispatch decision ("stop racing the GA on this family") is
// grounded in.
type MemberReport struct {
	Algo string `json:"algo"`
	// Runs counts the runs this member took part in; Wins how many of those
	// returned its decomposition.
	Runs int `json:"runs"`
	Wins int `json:"wins"`
	// Improvements counts the incumbent claims the member contributed.
	Improvements int `json:"improvements"`
	// Nodes is the member's attributed search-node total; Share its fraction
	// of all attributed nodes in the trace (cost), to hold against WinRate
	// (value).
	Nodes int64   `json:"nodes"`
	Share float64 `json:"share"`
	// CPU sums the member's per-run CPU-time estimates.
	CPU time.Duration `json:"cpu_ns"`
	// CacheHits and CacheMisses are the member's attributed cover-cache
	// traffic.
	CacheHits   int64 `json:"cache_hits,omitempty"`
	CacheMisses int64 `json:"cache_misses,omitempty"`
	// BestWidth is the narrowest width the member realized anywhere in the
	// trace (0 = none); BestLowerBound the strongest bound it proved.
	BestWidth      int `json:"best_width,omitempty"`
	BestLowerBound int `json:"best_lower_bound,omitempty"`
}

// WinRate is Wins/Runs, or 0 for a member that never ran.
func (m *MemberReport) WinRate() float64 {
	if m.Runs == 0 {
		return 0
	}
	return float64(m.Wins) / float64(m.Runs)
}

// AttributionReport aggregates a trace's attr events per algorithm.
type AttributionReport struct {
	// Members are the per-algorithm rows, sorted by algo label.
	Members []MemberReport `json:"members"`
	// Runs counts distinct attributed runs (sets of attr events); TotalNodes
	// the attributed node total the shares are fractions of.
	Runs       int   `json:"runs"`
	TotalNodes int64 `json:"total_nodes"`
}

// Find returns the report row for algo, or nil.
func (r *AttributionReport) Find(algo string) *MemberReport {
	for i := range r.Members {
		if r.Members[i].Algo == algo {
			return &r.Members[i]
		}
	}
	return nil
}

// Attribution folds a trace's attr events into the per-algorithm cost
// report. Returns nil when the trace carries no attribution (written by a
// pre-ledger build).
func Attribution(t *Trace) *AttributionReport {
	if len(t.Attr) == 0 {
		return nil
	}
	rows := map[string]*MemberReport{}
	rep := &AttributionReport{}
	// Run counting: every member of one run shares the run's winner row, so
	// count runs as the number of winner-role events (every ledger names
	// exactly one winner).
	for _, e := range t.Attr {
		m := attr.FromEvent(e)
		row := rows[m.Algo]
		if row == nil {
			row = &MemberReport{Algo: m.Algo}
			rows[m.Algo] = row
		}
		row.Runs++
		if m.Role == attr.RoleWinner {
			row.Wins++
			rep.Runs++
		}
		row.Improvements += e.Improvements
		row.Nodes += m.Nodes
		row.CPU += m.CPU
		row.CacheHits += m.CacheHits
		row.CacheMisses += m.CacheMisses
		if m.BestWidth > 0 && (row.BestWidth == 0 || m.BestWidth < row.BestWidth) {
			row.BestWidth = m.BestWidth
		}
		if m.LowerBound > row.BestLowerBound {
			row.BestLowerBound = m.LowerBound
		}
		rep.TotalNodes += m.Nodes
	}
	for _, row := range rows {
		if rep.TotalNodes > 0 {
			row.Share = float64(row.Nodes) / float64(rep.TotalNodes)
		}
		rep.Members = append(rep.Members, *row)
	}
	sort.Slice(rep.Members, func(i, j int) bool { return rep.Members[i].Algo < rep.Members[j].Algo })
	return rep
}

// AttrCompareOptions tunes CompareAttribution.
type AttrCompareOptions struct {
	// ShareThreshold is the absolute node-share growth tolerated before a
	// member whose win rate did not improve counts as a cost regression.
	// Default 0.10 (ten percentage points).
	ShareThreshold float64
}

// DefaultAttrCompareOptions returns the thresholds used for a zero options
// value.
func DefaultAttrCompareOptions() AttrCompareOptions {
	return AttrCompareOptions{ShareThreshold: 0.10}
}

// AttrDelta is one algorithm's cost-accounting diff between two traces.
type AttrDelta struct {
	Algo       string  `json:"algo"`
	OldShare   float64 `json:"old_share"`
	NewShare   float64 `json:"new_share"`
	OldWinRate float64 `json:"old_win_rate"`
	NewWinRate float64 `json:"new_win_rate"`
	// Regressed marks a member that got more expensive without getting more
	// valuable: its node share grew past the threshold while its win rate
	// did not improve.
	Regressed bool     `json:"regressed"`
	Reasons   []string `json:"reasons,omitempty"`
}

// AttrComparison is the cross-trace cost-accounting diff.
type AttrComparison struct {
	Deltas []AttrDelta `json:"deltas"`
	// OldOnly and NewOnly list algos present in only one trace.
	OldOnly []string `json:"old_only,omitempty"`
	NewOnly []string `json:"new_only,omitempty"`
}

// Regressed reports whether any member's cost share regressed.
func (c *AttrComparison) Regressed() bool {
	for _, d := range c.Deltas {
		if d.Regressed {
			return true
		}
	}
	return false
}

// CompareAttribution diffs two attribution reports member by member,
// flagging cost-share regressions: a member whose fraction of the attributed
// work grew beyond opt.ShareThreshold without its win rate improving is paying
// more for the same value — the signal to re-tune the portfolio.
func CompareAttribution(oldR, newR *AttributionReport, opt AttrCompareOptions) *AttrComparison {
	if opt.ShareThreshold <= 0 {
		opt.ShareThreshold = DefaultAttrCompareOptions().ShareThreshold
	}
	cmp := &AttrComparison{}
	if oldR == nil || newR == nil {
		return cmp
	}
	for i := range oldR.Members {
		o := &oldR.Members[i]
		n := newR.Find(o.Algo)
		if n == nil {
			cmp.OldOnly = append(cmp.OldOnly, o.Algo)
			continue
		}
		d := AttrDelta{
			Algo:       o.Algo,
			OldShare:   o.Share,
			NewShare:   n.Share,
			OldWinRate: o.WinRate(),
			NewWinRate: n.WinRate(),
		}
		if grow := d.NewShare - d.OldShare; grow > opt.ShareThreshold && d.NewWinRate <= d.OldWinRate {
			d.Regressed = true
			d.Reasons = append(d.Reasons, fmt.Sprintf(
				"node share grew %.1f%% -> %.1f%% with win rate %.0f%% -> %.0f%%",
				100*d.OldShare, 100*d.NewShare, 100*d.OldWinRate, 100*d.NewWinRate))
		}
		cmp.Deltas = append(cmp.Deltas, d)
	}
	for i := range newR.Members {
		if oldR.Find(newR.Members[i].Algo) == nil {
			cmp.NewOnly = append(cmp.NewOnly, newR.Members[i].Algo)
		}
	}
	return cmp
}
