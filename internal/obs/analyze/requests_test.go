package analyze

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

// spanTrace renders a JSONL trace of request span events: each (req, total)
// pair becomes a full phase set where solve is 80% and queue wait 10% of the
// total.
func spanTrace(reqs ...[2]any) string {
	var b strings.Builder
	for _, r := range reqs {
		req := r[0].(string)
		total := r[1].(time.Duration)
		solve := total * 8 / 10
		wait := total / 10
		for _, pair := range []struct {
			phase string
			dur   time.Duration
		}{
			{"cache", time.Microsecond},
			{"queue_wait", wait},
			{"parse", time.Microsecond},
			{"solve", solve},
			{"encode", time.Microsecond},
		} {
			b.WriteString(`{"kind":"span","t_ns":1,"req":"` + req + `","algo":"bb-ghw","phase":"` + pair.phase + `","dur_ns":` + durNS(pair.dur) + "}\n")
		}
		b.WriteString(`{"kind":"span","t_ns":2,"req":"` + req + `","algo":"bb-ghw","phase":"total","outcome":"exact","dur_ns":` + durNS(total) + "}\n")
	}
	return b.String()
}

func durNS(d time.Duration) string {
	return strconv.FormatInt(int64(d), 10)
}

func TestRequestsFromSpans(t *testing.T) {
	tr, err := Load(strings.NewReader(spanTrace(
		[2]any{"r1", 100 * time.Millisecond},
		[2]any{"r2", 10 * time.Millisecond},
	)))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Runs) != 0 {
		t.Fatalf("spans leaked into run grouping: %d runs", len(tr.Runs))
	}
	reqs := Requests(tr)
	if len(reqs) != 2 {
		t.Fatalf("got %d requests, want 2", len(reqs))
	}
	r1 := reqs[0]
	if r1.Req != "r1" || r1.Outcome != "exact" || r1.Algo != "bb-ghw" {
		t.Fatalf("first request wrong: %+v", r1)
	}
	if r1.Total != 100*time.Millisecond {
		t.Fatalf("r1 total = %v", r1.Total)
	}
	if r1.QueueWait != 10*time.Millisecond || r1.Phases["solve"] != 80*time.Millisecond {
		t.Fatalf("r1 phases wrong: %+v", r1.Phases)
	}

	sum := SummarizeRequests(reqs)
	if sum.Requests != 2 || sum.ByOutcome["exact"] != 2 {
		t.Fatalf("summary census wrong: %+v", sum)
	}
	if sum.Latency.Max != 100*time.Millisecond || sum.Latency.P50 != 10*time.Millisecond {
		t.Fatalf("latency stats wrong: %+v", sum.Latency)
	}
	if sum.PhaseMeans["solve"] != 44*time.Millisecond {
		t.Fatalf("solve phase mean = %v, want 44ms", sum.PhaseMeans["solve"])
	}
}

func TestSummarizeRequestsEmpty(t *testing.T) {
	if s := SummarizeRequests(nil); s != nil {
		t.Fatalf("summary of no requests should be nil, got %+v", s)
	}
}

func TestCompareRequestsLatencyVerdict(t *testing.T) {
	oldT, err := Load(strings.NewReader(spanTrace(
		[2]any{"r1", 100 * time.Millisecond},
		[2]any{"r2", 100 * time.Millisecond},
	)))
	if err != nil {
		t.Fatal(err)
	}
	slowT, err := Load(strings.NewReader(spanTrace(
		[2]any{"r1", 400 * time.Millisecond},
		[2]any{"r2", 400 * time.Millisecond},
	)))
	if err != nil {
		t.Fatal(err)
	}

	// 4x slower P95 far above the floor: regression.
	d := CompareRequests(oldT, slowT, CompareOptions{})
	if d == nil || !d.Regressed {
		t.Fatalf("4x P95 slowdown not flagged: %+v", d)
	}
	// Same traces: no regression.
	if d := CompareRequests(oldT, oldT, CompareOptions{}); d == nil || d.Regressed {
		t.Fatalf("identical traces flagged: %+v", d)
	}
	// Below the noise floor nothing regresses, however large the ratio.
	fastOld, _ := Load(strings.NewReader(spanTrace([2]any{"r1", time.Millisecond})))
	fastNew, _ := Load(strings.NewReader(spanTrace([2]any{"r1", 5 * time.Millisecond})))
	if d := CompareRequests(fastOld, fastNew, CompareOptions{}); d == nil || d.Regressed {
		t.Fatalf("sub-floor jitter flagged as regression: %+v", d)
	}

	// A CLI trace (no spans) yields no verdict.
	cli, err := Load(strings.NewReader(`{"kind":"algo_start","t_ns":0,"algo":"bb-ghw"}
{"kind":"algo_stop","t_ns":100,"algo":"bb-ghw","width":2}
`))
	if err != nil {
		t.Fatal(err)
	}
	if d := CompareRequests(cli, oldT, CompareOptions{}); d != nil {
		t.Fatalf("span-less trace produced a latency delta: %+v", d)
	}

	// And the full Compare carries the verdict into Regressed().
	cmp := Compare(oldT, slowT, CompareOptions{})
	if cmp.Latency == nil || !cmp.Regressed() {
		t.Fatalf("Compare did not propagate the latency regression: %+v", cmp)
	}
}
