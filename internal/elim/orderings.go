package elim

import (
	"math/rand"

	"hypertree/internal/budget"
	"hypertree/internal/elimgraph"
	"hypertree/internal/hypergraph"
)

// MinFillOrdering returns an elimination ordering built by repeatedly
// eliminating a vertex that adds the fewest fill edges (thesis §4.4.2,
// "min-fill heuristic"; ties broken by rng, or lowest index when rng is
// nil). This is the upper-bound heuristic used by QuickBB and A*-tw.
func MinFillOrdering(g *hypergraph.Graph, rng *rand.Rand) []int {
	return MinFillOrderingBudget(g, rng, nil)
}

// MinFillOrderingBudget is MinFillOrdering under a run budget: one work
// unit per eliminated vertex. On budget exhaustion the greedy choice
// degrades to index order for the remaining vertices, so the result is
// always a complete, valid ordering (just a weaker one).
func MinFillOrderingBudget(g *hypergraph.Graph, rng *rand.Rand, b *budget.B) []int {
	return greedyOrdering(elimgraph.New(g), rng, b, func(e *elimgraph.ElimGraph, v int) int {
		return e.FillCount(v)
	})
}

// MinDegreeOrdering returns an elimination ordering built by repeatedly
// eliminating a vertex of minimum live degree.
func MinDegreeOrdering(g *hypergraph.Graph, rng *rand.Rand) []int {
	return greedyOrdering(elimgraph.New(g), rng, nil, func(e *elimgraph.ElimGraph, v int) int {
		return e.Degree(v)
	})
}

// greedyOrdering eliminates all vertices, always choosing a minimizer of
// score among live vertices, with reservoir tie-breaking when rng != nil.
// A stopped budget short-circuits the remaining greedy choices to index
// order; the returned ordering is complete either way.
func greedyOrdering(e *elimgraph.ElimGraph, rng *rand.Rand, b *budget.B, score func(*elimgraph.ElimGraph, int) int) []int {
	n := e.N()
	order := make([]int, 0, n)
	var live []int
	for len(order) < n {
		if !b.Tick() {
			// Budget exhausted: complete the permutation without scoring.
			for v := 0; v < n; v++ {
				if !e.Eliminated(v) {
					order = append(order, v)
				}
			}
			break
		}
		live = e.LiveVertices(live)
		best, bestScore, ties := -1, 0, 0
		for _, v := range live {
			s := score(e, v)
			switch {
			case best < 0 || s < bestScore:
				best, bestScore, ties = v, s, 1
			case s == bestScore:
				ties++
				if rng != nil && rng.Intn(ties) == 0 {
					best = v
				}
			}
		}
		e.Eliminate(best)
		order = append(order, best)
	}
	e.Reset()
	return order
}

// RandomOrdering returns a uniformly random permutation of 0..n-1.
func RandomOrdering(n int, rng *rand.Rand) []int {
	return rng.Perm(n)
}

// ExhaustiveTreewidth computes the exact treewidth of g's hypergraph by
// evaluating every elimination ordering. Only feasible for tiny graphs
// (n ≤ ~9); used as ground truth in tests and property checks.
func ExhaustiveTreewidth(g *hypergraph.Graph) int {
	e := elimgraph.New(g)
	best := g.N() // upper bound: width ≤ n-1 always
	perm := make([]int, g.N())
	for i := range perm {
		perm[i] = i
	}
	var rec func(k, width int)
	rec = func(k, width int) {
		if width >= best {
			return // cannot improve
		}
		if k == len(perm) {
			best = width
			return
		}
		for i := k; i < len(perm); i++ {
			perm[k], perm[i] = perm[i], perm[k]
			d := e.Eliminate(perm[k])
			w := width
			if d > w {
				w = d
			}
			rec(k+1, w)
			e.Restore()
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0, 0)
	return best
}

// ExhaustiveGHW computes the exact generalized hypertree width of h by
// branch-and-bound over elimination orderings with exact set covers. By
// thesis Theorem 3 the optimum over orderings equals ghw(h). Only feasible
// for tiny hypergraphs; used as ground truth in tests.
func ExhaustiveGHW(h *hypergraph.Hypergraph) int {
	if !h.CoversAllVertices() {
		return -1
	}
	ev := NewGHWEvaluator(h, true, nil)
	n := h.N()
	if n == 0 {
		return 0
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	best := n + 1 // ghw ≤ n trivially (one edge per vertex in one bag)
	var bag []int
	var rec func(k, width int)
	rec = func(k, width int) {
		if width >= best {
			return
		}
		// Remaining bags have at most Live() vertices, hence covers of size
		// at most Live(): once width reaches that, deeper search can't grow.
		if k == n || width >= ev.E.Live() {
			if width < best {
				best = width
			}
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			v := perm[k]
			bag = append(ev.E.Neighbors(v, bag[:0]), v)
			cw := ev.coverSize(bag)
			w := width
			if cw > w {
				w = cw
			}
			if w < best {
				ev.E.Eliminate(v)
				rec(k+1, w)
				ev.E.Restore()
			}
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0, 0)
	ev.E.Reset()
	return best
}
