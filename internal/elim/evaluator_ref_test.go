package elim

import (
	"math/rand"
	"sort"
	"sync"
	"testing"

	"hypertree/internal/elimgraph"
	"hypertree/internal/hypergraph"
	"hypertree/internal/setcover"
)

// refGHWWidth is the pre-engine evaluator kept as ground truth: it walks
// the elimination cliques like GHWEvaluator.Width and covers every bag with
// the original map-based greedy (or, in exact mode, the public exact
// solver) over the bag's incident hyperedges, sorted ascending so that the
// nil-rng tie-breaking is the engine's canonical one.
func refGHWWidth(h *hypergraph.Hypergraph, order []int, exact bool) int {
	e := elimgraph.FromHypergraph(h)
	defer e.Reset()
	width := 0
	var bag []int
	for _, v := range order {
		if width >= e.Live() {
			break
		}
		bag = append(e.Neighbors(v, bag[:0]), v)
		k := refCoverSize(h, bag, exact)
		if k < 0 {
			return -1
		}
		if k > width {
			width = k
		}
		e.Eliminate(v)
	}
	return width
}

func refCoverSize(h *hypergraph.Hypergraph, bag []int, exact bool) int {
	seen := make(map[int]bool)
	var cand []int
	for _, v := range bag {
		for _, ei := range h.IncidentEdges(v) {
			if !seen[ei] {
				seen[ei] = true
				cand = append(cand, ei)
			}
		}
	}
	sort.Ints(cand)
	sets := make([][]int, len(cand))
	for i, ei := range cand {
		sets[i] = h.Edge(ei)
	}
	if exact {
		return setcover.ExactSize(bag, sets)
	}
	// Map-based greedy, duplicated from the original coverSize path.
	uncovered := make(map[int]struct{}, len(bag))
	for _, v := range bag {
		uncovered[v] = struct{}{}
	}
	used := make([]bool, len(sets))
	size := 0
	for len(uncovered) > 0 {
		best, bestGain := -1, 0
		for i, s := range sets {
			if used[i] {
				continue
			}
			gain := 0
			for _, v := range s {
				if _, ok := uncovered[v]; ok {
					gain++
				}
			}
			if gain > bestGain {
				best, bestGain = i, gain
			}
		}
		if best < 0 {
			return -1
		}
		used[best] = true
		size++
		for _, v := range sets[best] {
			delete(uncovered, v)
		}
	}
	return size
}

func randomTestHypergraph(rng *rand.Rand, n, m, maxEdge int) *hypergraph.Hypergraph {
	h := hypergraph.NewHypergraph(n)
	for i := 0; i < m; i++ {
		k := 1 + rng.Intn(maxEdge)
		if k > n {
			k = n
		}
		seen := map[int]bool{}
		var e []int
		for len(e) < k {
			v := rng.Intn(n)
			if !seen[v] {
				seen[v] = true
				e = append(e, v)
			}
		}
		h.AddEdge(e...)
	}
	return h
}

// The engine-backed evaluator must agree with the reference evaluator on
// random hypergraphs and orderings, in both cover modes — and stay in
// agreement on re-evaluation, when every bag comes out of the memo cache.
func TestGHWEvaluatorMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 25; trial++ {
		n := 4 + rng.Intn(10)
		h := randomTestHypergraph(rng, n, 2+rng.Intn(3*n), 1+rng.Intn(4))
		greedy := NewGHWEvaluator(h, false, nil)
		exact := NewGHWEvaluator(h, true, nil)
		for q := 0; q < 6; q++ {
			order := rng.Perm(n)
			wantG := refGHWWidth(h, order, false)
			wantE := refGHWWidth(h, order, true)
			for pass := 0; pass < 2; pass++ { // second pass hits the cache
				if got := greedy.Width(order); got != wantG {
					t.Fatalf("greedy width pass %d = %d, want %d (order %v)", pass, got, wantG, order)
				}
				if got := exact.Width(order); got != wantE {
					t.Fatalf("exact width pass %d = %d, want %d (order %v)", pass, got, wantE, order)
				}
			}
			if wantE > wantG || (wantE == -1) != (wantG == -1) {
				t.Fatalf("exact %d vs greedy %d inconsistent", wantE, wantG)
			}
		}
		if st := greedy.CoverCacheStats(); st.Hits == 0 {
			t.Fatal("re-evaluation produced no cache hits")
		}
	}
}

// Evaluators sharing one engine must agree with a serial evaluator when
// run concurrently — the SAIGA-islands sharing pattern. Run under -race.
func TestSharedEngineEvaluatorsConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	h := randomTestHypergraph(rng, 24, 40, 4)
	orders := make([][]int, 32)
	want := make([]int, len(orders))
	serial := NewGHWEvaluator(h, false, nil)
	for i := range orders {
		orders[i] = rng.Perm(24)
		want[i] = serial.Width(orders[i])
	}
	eng := setcover.NewEngine(h, setcover.DefaultCacheCapacity)
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ev := NewGHWEvaluatorWithEngine(eng, false, nil)
			for rep := 0; rep < 10; rep++ {
				for i, order := range orders {
					if got := ev.Width(order); got != want[i] {
						t.Errorf("concurrent width(order %d) = %d, want %d", i, got, want[i])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if st := eng.CacheStats(); st.Hits == 0 {
		t.Fatal("shared engine saw no cache hits")
	}
}

// The headline acceptance benchmark pair: GHWEvaluator.Width on a grid
// hypergraph through the engine versus through the pre-engine reference
// path. The issue requires the engine to be at least 2x faster.
func BenchmarkGHWWidthGridEngine(b *testing.B) {
	h := hypergraph.Grid2D(14)
	rng := rand.New(rand.NewSource(2))
	orders := benchOrders(h.N(), rng, 8)
	ev := NewGHWEvaluator(h, false, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.Width(orders[i%len(orders)])
	}
}

func BenchmarkGHWWidthGridEngineColdCache(b *testing.B) {
	h := hypergraph.Grid2D(14)
	rng := rand.New(rand.NewSource(2))
	orders := benchOrders(h.N(), rng, 8)
	eng := setcover.NewEngine(h, 0) // memoization off: pure bitset speed
	ev := NewGHWEvaluatorWithEngine(eng, false, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.Width(orders[i%len(orders)])
	}
}

func BenchmarkGHWWidthGridReference(b *testing.B) {
	h := hypergraph.Grid2D(14)
	rng := rand.New(rand.NewSource(2))
	orders := benchOrders(h.N(), rng, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		refGHWWidth(h, orders[i%len(orders)], false)
	}
}

func BenchmarkGHWWidthQueenEngine(b *testing.B) {
	h := hypergraph.FromGraph(hypergraph.Queen(8))
	rng := rand.New(rand.NewSource(3))
	orders := benchOrders(h.N(), rng, 8)
	ev := NewGHWEvaluator(h, false, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.Width(orders[i%len(orders)])
	}
}

func BenchmarkGHWWidthQueenReference(b *testing.B) {
	h := hypergraph.FromGraph(hypergraph.Queen(8))
	rng := rand.New(rand.NewSource(3))
	orders := benchOrders(h.N(), rng, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		refGHWWidth(h, orders[i%len(orders)], false)
	}
}

func benchOrders(n int, rng *rand.Rand, k int) [][]int {
	orders := make([][]int, k)
	for i := range orders {
		orders[i] = rng.Perm(n)
	}
	return orders
}
