package elim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hypertree/internal/decomp"
	"hypertree/internal/elimgraph"
	"hypertree/internal/hypergraph"
)

func example5() *hypergraph.Hypergraph {
	h := hypergraph.NewHypergraph(6)
	h.AddEdge(0, 1, 2)
	h.AddEdge(0, 4, 5)
	h.AddEdge(2, 3, 4)
	return h
}

func TestValidateOrdering(t *testing.T) {
	if err := Validate([]int{0, 1, 2}, 3); err != nil {
		t.Fatal(err)
	}
	for name, order := range map[string][]int{
		"short":    {0, 1},
		"repeat":   {0, 1, 1},
		"range":    {0, 1, 5},
		"negative": {0, -1, 2},
	} {
		if err := Validate(order, 3); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestWidthOnKnownGraphs(t *testing.T) {
	// Eliminating a path graph in end-to-end order gives width 1.
	path := hypergraph.NewGraph(5)
	for i := 0; i < 4; i++ {
		path.AddEdge(i, i+1)
	}
	if w := WidthOfGraph(path, []int{0, 1, 2, 3, 4}); w != 1 {
		t.Fatalf("path width = %d, want 1", w)
	}
	// A bad ordering on the path (middle first) gives width 2.
	if w := WidthOfGraph(path, []int{2, 0, 1, 3, 4}); w != 2 {
		t.Fatalf("path bad order width = %d, want 2", w)
	}
	// Any ordering of K4 gives width 3.
	if w := WidthOfGraph(hypergraph.CliqueGraph(4), []int{2, 0, 3, 1}); w != 3 {
		t.Fatalf("K4 width = %d, want 3", w)
	}
}

func TestTDFromOrderingExample5(t *testing.T) {
	h := example5()
	// Eliminate x6,x5,x4,x3,x2,x1 -> thesis σ = (x1,...,x6) reversed; the
	// thesis's Figure 2.11 discussion uses this ordering shape.
	order := []int{5, 4, 3, 2, 1, 0}
	td := TDFromOrdering(h, order)
	if err := td.Validate(h); err != nil {
		t.Fatal(err)
	}
	be := BucketElimination(h, order)
	if err := be.Validate(h); err != nil {
		t.Fatal(err)
	}
	if td.Width() != be.Width() {
		t.Fatalf("vertex elim width %d != bucket elim width %d", td.Width(), be.Width())
	}
}

func TestGHDFromOrderingExample5(t *testing.T) {
	h := example5()
	g, err := GHDFromOrdering(h, []int{5, 4, 3, 2, 1, 0}, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(h); err != nil {
		t.Fatal(err)
	}
	if g.Width() > 2 {
		t.Fatalf("ghd width = %d, want <= 2", g.Width())
	}
}

func TestGHWEvaluatorMatchesGHD(t *testing.T) {
	h := example5()
	ev := NewGHWEvaluator(h, true, nil)
	order := []int{5, 4, 3, 2, 1, 0}
	w := ev.Width(order)
	g, err := GHDFromOrdering(h, order, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	if w != g.Width() {
		t.Fatalf("evaluator width %d != GHD width %d", w, g.Width())
	}
}

func TestGHWEvaluatorUncoverable(t *testing.T) {
	h := hypergraph.NewHypergraph(3)
	h.AddEdge(0, 1) // vertex 2 uncovered
	ev := NewGHWEvaluator(h, false, nil)
	if w := ev.Width([]int{2, 1, 0}); w != -1 {
		t.Fatalf("width = %d, want -1", w)
	}
}

func TestMinFillOrderingOnChordal(t *testing.T) {
	// On a tree (chordal, tw=1), min-fill must find width 1.
	tree := hypergraph.NewGraph(7)
	for _, e := range [][2]int{{0, 1}, {0, 2}, {1, 3}, {1, 4}, {2, 5}, {2, 6}} {
		tree.AddEdge(e[0], e[1])
	}
	order := MinFillOrdering(tree, nil)
	if w := WidthOfGraph(tree, order); w != 1 {
		t.Fatalf("min-fill width on tree = %d, want 1", w)
	}
	// On K5, any ordering gives 4.
	k5 := hypergraph.CliqueGraph(5)
	if w := WidthOfGraph(k5, MinFillOrdering(k5, nil)); w != 4 {
		t.Fatalf("min-fill width on K5 = %d, want 4", w)
	}
}

func TestMinDegreeOrderingValid(t *testing.T) {
	g := hypergraph.Queen(4)
	order := MinDegreeOrdering(g, rand.New(rand.NewSource(1)))
	if err := Validate(order, g.N()); err != nil {
		t.Fatal(err)
	}
}

func TestExhaustiveTreewidthKnown(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *hypergraph.Graph
		want int
	}{
		{"K4", hypergraph.CliqueGraph(4), 3},
		{"C4=grid2", hypergraph.Grid(2), 2},
		{"grid3", hypergraph.Grid(3), 3},
		{"edge", hypergraph.RandomGraph(2, 1, 1), 1},
	} {
		if got := ExhaustiveTreewidth(tc.g); got != tc.want {
			t.Errorf("%s: treewidth = %d, want %d", tc.name, got, tc.want)
		}
	}
	// C5 has treewidth 2.
	c5 := hypergraph.NewGraph(5)
	for i := 0; i < 5; i++ {
		c5.AddEdge(i, (i+1)%5)
	}
	if got := ExhaustiveTreewidth(c5); got != 2 {
		t.Errorf("C5 treewidth = %d, want 2", got)
	}
}

func TestExhaustiveGHWKnown(t *testing.T) {
	// Acyclic hypergraph: ghw = 1.
	h := hypergraph.NewHypergraph(4)
	h.AddEdge(0, 1, 2)
	h.AddEdge(2, 3)
	if got := ExhaustiveGHW(h); got != 1 {
		t.Errorf("acyclic ghw = %d, want 1", got)
	}
	// Triangle (cyclic): ghw = 2.
	tri := hypergraph.NewHypergraph(3)
	tri.AddEdge(0, 1)
	tri.AddEdge(1, 2)
	tri.AddEdge(0, 2)
	if got := ExhaustiveGHW(tri); got != 2 {
		t.Errorf("triangle ghw = %d, want 2", got)
	}
	// Example 5: the thesis exhibits a width-2 GHD and the hypergraph is
	// cyclic, so ghw = 2.
	if got := ExhaustiveGHW(example5()); got != 2 {
		t.Errorf("example 5 ghw = %d, want 2", got)
	}
}

// Property (thesis §2.5.3): bucket elimination and vertex elimination
// produce identical bags for every (hypergraph, ordering) pair.
func TestBucketEqualsVertexEliminationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(7)
		m := 2 + rng.Intn(8)
		h := hypergraph.RandomHypergraph(n, m, 1, minInt(4, n), seed)
		order := rng.Perm(n)
		a := TDFromOrdering(h, order)
		b := BucketElimination(h, order)
		if len(a.Bags) != len(b.Bags) {
			return false
		}
		for i := range a.Bags {
			if len(a.Bags[i]) != len(b.Bags[i]) {
				return false
			}
			for j := range a.Bags[i] {
				if a.Bags[i][j] != b.Bags[i][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: the TD built from any ordering is valid, and its width equals
// the fast Width evaluator's result.
func TestTDFromOrderingValidAndWidthAgreesProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(7)
		m := 2 + rng.Intn(8)
		h := hypergraph.RandomHypergraph(n, m, 1, minInt(4, n), seed)
		order := rng.Perm(n)
		td := TDFromOrdering(h, order)
		if td.Validate(h) != nil {
			return false
		}
		return td.Width() == Width(elimgraph.FromHypergraph(h), order)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: GHDs built from orderings validate, and the exact-cover GHD is
// never wider than the greedy one.
func TestGHDFromOrderingValidProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(6)
		m := 3 + rng.Intn(8)
		h := coveringHypergraph(n, m, seed)
		order := rng.Perm(n)
		exact, err := GHDFromOrdering(h, order, true, nil)
		if err != nil || exact.Validate(h) != nil {
			return false
		}
		greedy, err := GHDFromOrdering(h, order, false, rng)
		if err != nil || greedy.Validate(h) != nil {
			return false
		}
		return exact.Width() <= greedy.Width()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property (thesis Theorem 2 pipeline): extract an ordering from any
// ordering-induced decomposition via leaf normal form + dca; the re-induced
// decomposition is never wider, both for treewidth and for ghw with exact
// covers.
func TestTheorem2Property(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(6)
		m := 3 + rng.Intn(8)
		h := coveringHypergraph(n, m, seed)
		order := rng.Perm(n)
		td := TDFromOrdering(h, order)
		order2 := decomp.OrderingFromDecomposition(h, td)
		if Validate(order2, n) != nil {
			return false
		}
		td2 := TDFromOrdering(h, order2)
		if td2.Width() > td.Width() {
			return false
		}
		ev := NewGHWEvaluator(h, true, nil)
		g1, err := GHDFromOrdering(h, order, true, nil)
		if err != nil {
			return false
		}
		return ev.Width(order2) <= g1.Width()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property (thesis Theorem 3, small scale): the minimum over all orderings
// with exact covers equals the exhaustive ghw by definition, and is bounded
// below by 1 and above by exhaustive treewidth + 1.
func TestGHWBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(4) // 3..6: exhaustive search stays fast
		h := coveringHypergraph(n, n+1, seed)
		ghw := ExhaustiveGHW(h)
		tw := ExhaustiveTreewidth(h.PrimalGraph())
		return ghw >= 1 && ghw <= tw+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// coveringHypergraph returns a random hypergraph in which every vertex is
// covered (adds singleton edges for any uncovered vertex).
func coveringHypergraph(n, m int, seed int64) *hypergraph.Hypergraph {
	h := hypergraph.RandomHypergraph(n, m, 1, minInt(4, n), seed)
	covered := make([]bool, n)
	for _, e := range h.Edges() {
		for _, v := range e {
			covered[v] = true
		}
	}
	for v, c := range covered {
		if !c {
			h.AddEdge(v)
		}
	}
	return h
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
