// Package elim implements elimination orderings and the two equivalent
// constructions that turn an ordering into a tree decomposition — bucket
// elimination (thesis Figure 2.10) and vertex elimination (Figure 2.12) —
// plus the fast width evaluators used by the genetic algorithms (Figures 6.2
// and 7.1) and the greedy ordering heuristics (min-fill, min-degree).
//
// Ordering convention: everywhere in this library an ordering lists vertices
// in the order they are eliminated (position 0 first). The thesis writes
// σ = (v1..vn) with v_n eliminated first; its σ is the reverse of ours.
package elim

import (
	"fmt"
	"math/rand"
	"sort"

	"hypertree/internal/budget/faultinject"
	"hypertree/internal/decomp"
	"hypertree/internal/elimgraph"
	"hypertree/internal/hypergraph"
	"hypertree/internal/setcover"
)

// Validate checks that order is a permutation of 0..n-1.
func Validate(order []int, n int) error {
	if len(order) != n {
		return fmt.Errorf("elim: ordering has %d entries for %d vertices", len(order), n)
	}
	seen := make([]bool, n)
	for _, v := range order {
		if v < 0 || v >= n {
			return fmt.Errorf("elim: vertex %d out of range", v)
		}
		if seen[v] {
			return fmt.Errorf("elim: vertex %d repeated", v)
		}
		seen[v] = true
	}
	return nil
}

// Width returns the width of the tree decomposition induced by eliminating
// the vertices of g's primal graph in the given order: the maximum live
// degree at elimination time (thesis Figure 6.2). It uses the early exit
// "stop once the width cannot grow further" from the thesis.
func Width(e *elimgraph.ElimGraph, order []int) int {
	defer e.Reset()
	width := 0
	for _, v := range order {
		if width >= e.Live()-1 {
			break // no remaining clique can exceed the current width
		}
		if d := e.Eliminate(v); d > width {
			width = d
		}
	}
	return width
}

// WidthOfGraph evaluates Width on a fresh elimination graph for g.
func WidthOfGraph(g *hypergraph.Graph, order []int) int {
	return Width(elimgraph.New(g), order)
}

// GHWEvaluator evaluates the generalized-hypertree width of orderings of a
// fixed hypergraph (thesis Figure 7.1). It owns a reusable elimination
// graph of the primal graph and a per-evaluator cover scratch; bag covers
// are solved by a shared setcover.Engine, whose memo cache makes repeated
// bags (sibling search states, GA generations) near-free. A single
// evaluator is not safe for concurrent use, but any number of evaluators
// may share one engine across goroutines.
type GHWEvaluator struct {
	H     *hypergraph.Hypergraph
	E     *elimgraph.ElimGraph
	Exact bool // exact set covers instead of greedy
	Rng   *rand.Rand
	// Cap, when positive, lets exact covers stop early: a bag needing Cap
	// or more edges reports exactly Cap. The exact searches set Cap to the
	// current upper bound, where any such bag is pruned anyway; this keeps
	// the per-bag set-cover search polynomial in practice.
	Cap int

	eng *setcover.Engine
	sc  *setcover.Scratch
	bag []int
}

// NewGHWEvaluator builds an evaluator with its own cover engine; rng (for
// greedy tie-breaking) may be nil for deterministic lowest-index ties.
func NewGHWEvaluator(h *hypergraph.Hypergraph, exact bool, rng *rand.Rand) *GHWEvaluator {
	return NewGHWEvaluatorWithEngine(setcover.NewEngine(h, setcover.DefaultCacheCapacity), exact, rng)
}

// NewGHWEvaluatorWithEngine builds an evaluator on an existing cover
// engine, sharing its memo cache with every other evaluator on the same
// engine (e.g. the per-island evaluators of SAIGA, or a search and its
// bound evaluators).
func NewGHWEvaluatorWithEngine(eng *setcover.Engine, exact bool, rng *rand.Rand) *GHWEvaluator {
	h := eng.Hypergraph()
	return &GHWEvaluator{
		H:     h,
		E:     elimgraph.FromHypergraph(h),
		Exact: exact,
		Rng:   rng,
		eng:   eng,
		sc:    eng.NewScratch(),
	}
}

// Engine returns the evaluator's cover engine (to share it with further
// evaluators, or to read its cache statistics).
func (ev *GHWEvaluator) Engine() *setcover.Engine { return ev.eng }

// CoverCacheStats reports the shared engine's bag-cover cache counters.
func (ev *GHWEvaluator) CoverCacheStats() setcover.CacheStats { return ev.eng.CacheStats() }

// Width returns the generalized hypertree width of the decomposition induced
// by the ordering: the maximum, over elimination cliques, of the number of
// hyperedges needed to cover the clique. Returns -1 if some bag is
// uncoverable (possible only when h leaves vertices uncovered).
func (ev *GHWEvaluator) Width(order []int) int {
	defer ev.E.Reset()
	width := 0
	for _, v := range order {
		if width >= ev.E.Live() {
			break // a bag of ≤ width vertices needs ≤ width covering edges
		}
		ev.bag = append(ev.E.Neighbors(v, ev.bag[:0]), v)
		k := ev.coverSize(ev.bag)
		if k < 0 {
			return -1
		}
		if k > width {
			width = k
		}
		ev.E.Eliminate(v)
	}
	return width
}

// BagCost returns the number of hyperedges needed to cover the bag that
// eliminating v from the *current* graph state would create ({v} ∪ live
// neighbors), without eliminating v. Used by the ghw search algorithms.
func (ev *GHWEvaluator) BagCost(v int) int {
	ev.bag = append(ev.E.Neighbors(v, ev.bag[:0]), v)
	return ev.coverSize(ev.bag)
}

// coverSize covers bag with hyperedges of ev.H through the shared engine
// (which restricts candidates to edges incident to the bag and memoizes by
// bag) and returns the cover size, or -1 if uncoverable.
func (ev *GHWEvaluator) coverSize(bag []int) int {
	faultinject.Hit(faultinject.SiteCover)
	if ev.Exact {
		if ev.Cap > 0 {
			return ev.eng.ExactSizeCapped(ev.sc, bag, ev.Cap)
		}
		// A coverable bag always has a cover of at most len(bag) edges, so
		// this cap never censors: the result is the exact minimum.
		return ev.eng.ExactSizeCapped(ev.sc, bag, len(bag)+1)
	}
	return ev.eng.GreedySize(ev.sc, bag, ev.Rng)
}

// TDFromOrdering builds the tree decomposition produced by vertex
// elimination (thesis Figure 2.12): one node per vertex, node(v)'s bag is
// {v} ∪ N_live(v) at v's elimination, and node(v)'s parent is the node of
// the first-eliminated live neighbor. Nodes with no live neighbors chain to
// the next node in elimination order so that the result is a single tree.
func TDFromOrdering(h *hypergraph.Hypergraph, order []int) *decomp.TreeDecomposition {
	if err := Validate(order, h.N()); err != nil {
		panic(err)
	}
	n := h.N()
	if n == 0 {
		panic("elim: empty hypergraph")
	}
	e := elimgraph.FromHypergraph(h)
	defer e.Reset()
	pos := make([]int, n) // pos[v] = elimination position
	for i, v := range order {
		pos[v] = i
	}
	bags := make([][]int, n)
	parent := make([]int, n)
	var buf []int
	for i, v := range order {
		ns := e.Neighbors(v, buf)
		buf = ns
		bag := make([]int, 0, len(ns)+1)
		bag = append(bag, ns...)
		bag = append(bag, v)
		sort.Ints(bag)
		bags[i] = bag
		// Parent: earliest-eliminated live neighbor.
		next := -1
		for _, u := range ns {
			if next < 0 || pos[u] < next {
				next = pos[u]
			}
		}
		if next < 0 {
			if i+1 < n {
				next = i + 1 // chain isolated roots
			} else {
				next = -1 // overall root
			}
		}
		parent[i] = next
		e.Eliminate(v)
	}
	return &decomp.TreeDecomposition{
		Tree: decomp.Tree{Parent: parent, Root: n - 1},
		Bags: bags,
	}
}

// BucketElimination builds the same tree decomposition as TDFromOrdering
// using the thesis's bucket formulation (Figure 2.10): each hyperedge is
// placed in the bucket of its first-eliminated vertex; processing buckets in
// elimination order, the bucket's content minus the processed vertex is
// forwarded to the bucket of its first-eliminated member. Exported for
// cross-checking; TDFromOrdering is the faster equivalent.
func BucketElimination(h *hypergraph.Hypergraph, order []int) *decomp.TreeDecomposition {
	if err := Validate(order, h.N()); err != nil {
		panic(err)
	}
	n := h.N()
	if n == 0 {
		panic("elim: empty hypergraph")
	}
	pos := make([]int, n)
	for i, v := range order {
		pos[v] = i
	}
	buckets := make([]map[int]struct{}, n) // indexed by position
	for i := range buckets {
		buckets[i] = map[int]struct{}{order[i]: {}}
	}
	for _, edge := range h.Edges() {
		// First-eliminated vertex of the edge owns it.
		min := pos[edge[0]]
		for _, v := range edge[1:] {
			if pos[v] < min {
				min = pos[v]
			}
		}
		for _, v := range edge {
			buckets[min][v] = struct{}{}
		}
	}
	parent := make([]int, n)
	for i := 0; i < n; i++ {
		v := order[i]
		// A = bucket minus v; forward to the first-eliminated member of A.
		next := -1
		for u := range buckets[i] {
			if u == v {
				continue
			}
			if next < 0 || pos[u] < next {
				next = pos[u]
			}
		}
		if next >= 0 {
			for u := range buckets[i] {
				if u != v {
					buckets[next][u] = struct{}{}
				}
			}
			parent[i] = next
		} else if i+1 < n {
			parent[i] = i + 1
		} else {
			parent[i] = -1
		}
	}
	bags := make([][]int, n)
	for i := range bags {
		bag := make([]int, 0, len(buckets[i]))
		for v := range buckets[i] {
			bag = append(bag, v)
		}
		sort.Ints(bag)
		bags[i] = bag
	}
	return &decomp.TreeDecomposition{
		Tree: decomp.Tree{Parent: parent, Root: n - 1},
		Bags: bags,
	}
}

// GHDFromOrdering builds a generalized hypertree decomposition from an
// ordering: the vertex-elimination tree decomposition with every bag covered
// by hyperedges (thesis §2.5.2). exact selects exact covers (the optimal
// decomposition for this ordering, per Theorem 3) versus greedy covers.
func GHDFromOrdering(h *hypergraph.Hypergraph, order []int, exact bool, rng *rand.Rand) (*decomp.GHD, error) {
	td := TDFromOrdering(h, order)
	mode := decomp.CoverGreedy
	if exact {
		mode = decomp.CoverExact
	}
	return decomp.FromTreeDecomposition(h, td, mode, rng)
}
