package budget

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilBudgetIsUnlimited(t *testing.T) {
	var b *B
	if !b.Tick() || !b.Check() {
		t.Fatal("nil budget must allow work")
	}
	if b.Stopped() {
		t.Fatal("nil budget must not report stopped")
	}
	if b.Reason() != StopNone {
		t.Fatalf("nil budget reason = %q", b.Reason())
	}
	if b.Nodes() != 0 || b.Elapsed() != 0 {
		t.Fatal("nil budget must report zero effort")
	}
	b.Stop(StopCanceled) // must not panic
	if b.Context() == nil {
		t.Fatal("nil budget must return a background context")
	}
}

func TestNodeBudget(t *testing.T) {
	b := New(nil, Limits{MaxNodes: 10})
	ticks := 0
	for b.Tick() {
		ticks++
		if ticks > 100 {
			t.Fatal("node budget never tripped")
		}
	}
	if ticks != 10 {
		t.Fatalf("got %d ticks within a 10-node budget", ticks)
	}
	if b.Reason() != StopNodes {
		t.Fatalf("reason = %q, want %q", b.Reason(), StopNodes)
	}
	if !b.Stopped() {
		t.Fatal("budget must report stopped")
	}
	if b.Tick() {
		t.Fatal("a stopped budget must refuse further work")
	}
}

func TestDeadline(t *testing.T) {
	b := New(nil, Limits{Timeout: time.Millisecond, CheckEvery: 1})
	time.Sleep(5 * time.Millisecond)
	if b.Tick() {
		t.Fatal("tick after the deadline must fail")
	}
	if b.Reason() != StopDeadline {
		t.Fatalf("reason = %q, want %q", b.Reason(), StopDeadline)
	}
}

func TestContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	b := New(ctx, Limits{CheckEvery: 1})
	if !b.Tick() {
		t.Fatal("tick before cancel must succeed")
	}
	cancel()
	if b.Tick() {
		t.Fatal("tick after cancel must fail")
	}
	if b.Reason() != StopCanceled {
		t.Fatalf("reason = %q, want %q", b.Reason(), StopCanceled)
	}
}

func TestContextDeadlineMergesWithTimeout(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	b := New(ctx, Limits{Timeout: time.Hour, CheckEvery: 1})
	time.Sleep(5 * time.Millisecond)
	if b.Tick() {
		t.Fatal("tick after the (earlier) context deadline must fail")
	}
	if r := b.Reason(); r != StopCanceled && r != StopDeadline {
		t.Fatalf("reason = %q, want canceled or deadline", r)
	}
}

func TestFirstReasonWins(t *testing.T) {
	b := New(nil, Limits{})
	b.Stop(StopNodes)
	b.Stop(StopDeadline)
	if b.Reason() != StopNodes {
		t.Fatalf("reason = %q, want the first stop to win", b.Reason())
	}
}

func TestCheckEveryDefaults(t *testing.T) {
	// With the default checkpoint stride, deadline trips are only observed
	// at multiples of 256 ticks — but a node budget trips exactly.
	b := New(nil, Limits{MaxNodes: 3})
	for i := 0; i < 3; i++ {
		if !b.Tick() {
			t.Fatalf("tick %d failed before the budget", i)
		}
	}
	if b.Tick() {
		t.Fatal("4th tick must fail")
	}
}

func TestGuardContainsPanic(t *testing.T) {
	b := New(nil, Limits{})
	err := Guard(b, func() error {
		panic("kaboom")
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Guard returned %T, want *PanicError", err)
	}
	if pe.Value != "kaboom" {
		t.Fatalf("panic value = %v", pe.Value)
	}
	if len(pe.Stack) == 0 || !strings.Contains(string(pe.Stack), "budget") {
		t.Fatal("panic stack missing or implausible")
	}
	if b.Reason() != StopPanic {
		t.Fatalf("reason = %q, want %q", b.Reason(), StopPanic)
	}
}

func TestGuardPassesThroughErrors(t *testing.T) {
	b := New(nil, Limits{})
	sentinel := errors.New("boom")
	if err := Guard(b, func() error { return sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("Guard returned %v, want sentinel", err)
	}
	if err := Guard(b, func() error { return nil }); err != nil {
		t.Fatalf("Guard returned %v, want nil", err)
	}
	if b.Stopped() {
		t.Fatal("non-panicking Guard must not stop the budget")
	}
}

func TestAsPanicErrorPassthrough(t *testing.T) {
	orig := AsPanicError("first")
	again := AsPanicError(orig)
	if again != orig {
		t.Fatal("an existing *PanicError must pass through unchanged (stack preservation)")
	}
}

func TestMemberConservation(t *testing.T) {
	b := New(nil, Limits{MaxNodes: 10_000, CheckEvery: 64})
	labels := []string{"bb-ghw", "ga-ghw", "saiga-ghw", "hw-detk"}
	members := make([]*B, len(labels))
	for i, l := range labels {
		members[i] = b.Member(l)
		if got := members[i].Label(); got != l {
			t.Fatalf("Label() = %q, want %q", got, l)
		}
	}
	var wg sync.WaitGroup
	for _, m := range members {
		wg.Add(1)
		go func(m *B) {
			defer wg.Done()
			for m.Tick() {
			}
		}(m)
	}
	wg.Wait()
	var sum int64
	for _, m := range members {
		sum += m.Nodes()
	}
	if sum != b.Nodes() {
		t.Fatalf("member node counts sum to %d, global Nodes() = %d", sum, b.Nodes())
	}
	if b.Reason() != StopNodes {
		t.Fatalf("reason = %q, want %q", b.Reason(), StopNodes)
	}
	for _, m := range members {
		if !m.Stopped() {
			t.Fatal("member view must see the shared stop latch")
		}
		if m.Reason() != StopNodes {
			t.Fatalf("member reason = %q, want %q", m.Reason(), StopNodes)
		}
	}
}

func TestMemberEnforcesSharedLimits(t *testing.T) {
	b := New(nil, Limits{MaxNodes: 10})
	m1, m2 := b.Member("a"), b.Member("b")
	ticks := 0
	for i := 0; i < 100; i++ {
		m := m1
		if i%2 == 1 {
			m = m2
		}
		if !m.Tick() {
			break
		}
		ticks++
	}
	if ticks != 10 {
		t.Fatalf("got %d ticks across members within a 10-node budget", ticks)
	}
	if m1.Nodes()+m2.Nodes() != b.Nodes() {
		t.Fatalf("conservation broke: %d + %d != %d", m1.Nodes(), m2.Nodes(), b.Nodes())
	}
	// A member's Stop trips the shared latch.
	b2 := New(nil, Limits{})
	v := b2.Member("x")
	v.Stop(StopCanceled)
	if !b2.Stopped() || b2.Reason() != StopCanceled {
		t.Fatal("member Stop must latch the root")
	}
	if v.Tick() {
		t.Fatal("member of a stopped root must refuse work")
	}
}

func TestMemberCheckpointReportsAttributedNodes(t *testing.T) {
	b := New(nil, Limits{CheckEvery: 8})
	m := b.Member("m")
	// Seed the root with unattributed ticks so global != member count.
	for i := 0; i < 5; i++ {
		b.Tick()
	}
	var seen []int64
	m.OnCheckpoint(func(nodes int64, _ time.Duration) {
		seen = append(seen, nodes)
	})
	m.OnCheckpoint(nil) // must be a no-op on a view, not clear the root
	for i := 0; i < 32; i++ {
		m.Tick()
	}
	if len(seen) == 0 {
		t.Fatal("member checkpoint observer never fired")
	}
	for _, n := range seen {
		if n > m.Nodes() || n <= 0 {
			t.Fatalf("observer saw %d nodes, member ticked %d", n, m.Nodes())
		}
	}
	if b.Nodes() != m.Nodes()+5 {
		t.Fatalf("global %d != member %d + 5 seed ticks", b.Nodes(), m.Nodes())
	}
	// Member of a member attaches to the root, not a chain.
	mm := m.Member("mm")
	mm.Tick()
	if b.Nodes() != m.Nodes()+mm.Nodes()+5 {
		t.Fatal("nested Member must attach to the root")
	}
	// Member of nil stays nil-safe.
	var nilB *B
	if nilB.Member("x") != nil {
		t.Fatal("Member of a nil budget must be nil")
	}
}
