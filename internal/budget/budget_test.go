package budget

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestNilBudgetIsUnlimited(t *testing.T) {
	var b *B
	if !b.Tick() || !b.Check() {
		t.Fatal("nil budget must allow work")
	}
	if b.Stopped() {
		t.Fatal("nil budget must not report stopped")
	}
	if b.Reason() != StopNone {
		t.Fatalf("nil budget reason = %q", b.Reason())
	}
	if b.Nodes() != 0 || b.Elapsed() != 0 {
		t.Fatal("nil budget must report zero effort")
	}
	b.Stop(StopCanceled) // must not panic
	if b.Context() == nil {
		t.Fatal("nil budget must return a background context")
	}
}

func TestNodeBudget(t *testing.T) {
	b := New(nil, Limits{MaxNodes: 10})
	ticks := 0
	for b.Tick() {
		ticks++
		if ticks > 100 {
			t.Fatal("node budget never tripped")
		}
	}
	if ticks != 10 {
		t.Fatalf("got %d ticks within a 10-node budget", ticks)
	}
	if b.Reason() != StopNodes {
		t.Fatalf("reason = %q, want %q", b.Reason(), StopNodes)
	}
	if !b.Stopped() {
		t.Fatal("budget must report stopped")
	}
	if b.Tick() {
		t.Fatal("a stopped budget must refuse further work")
	}
}

func TestDeadline(t *testing.T) {
	b := New(nil, Limits{Timeout: time.Millisecond, CheckEvery: 1})
	time.Sleep(5 * time.Millisecond)
	if b.Tick() {
		t.Fatal("tick after the deadline must fail")
	}
	if b.Reason() != StopDeadline {
		t.Fatalf("reason = %q, want %q", b.Reason(), StopDeadline)
	}
}

func TestContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	b := New(ctx, Limits{CheckEvery: 1})
	if !b.Tick() {
		t.Fatal("tick before cancel must succeed")
	}
	cancel()
	if b.Tick() {
		t.Fatal("tick after cancel must fail")
	}
	if b.Reason() != StopCanceled {
		t.Fatalf("reason = %q, want %q", b.Reason(), StopCanceled)
	}
}

func TestContextDeadlineMergesWithTimeout(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	b := New(ctx, Limits{Timeout: time.Hour, CheckEvery: 1})
	time.Sleep(5 * time.Millisecond)
	if b.Tick() {
		t.Fatal("tick after the (earlier) context deadline must fail")
	}
	if r := b.Reason(); r != StopCanceled && r != StopDeadline {
		t.Fatalf("reason = %q, want canceled or deadline", r)
	}
}

func TestFirstReasonWins(t *testing.T) {
	b := New(nil, Limits{})
	b.Stop(StopNodes)
	b.Stop(StopDeadline)
	if b.Reason() != StopNodes {
		t.Fatalf("reason = %q, want the first stop to win", b.Reason())
	}
}

func TestCheckEveryDefaults(t *testing.T) {
	// With the default checkpoint stride, deadline trips are only observed
	// at multiples of 256 ticks — but a node budget trips exactly.
	b := New(nil, Limits{MaxNodes: 3})
	for i := 0; i < 3; i++ {
		if !b.Tick() {
			t.Fatalf("tick %d failed before the budget", i)
		}
	}
	if b.Tick() {
		t.Fatal("4th tick must fail")
	}
}

func TestGuardContainsPanic(t *testing.T) {
	b := New(nil, Limits{})
	err := Guard(b, func() error {
		panic("kaboom")
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Guard returned %T, want *PanicError", err)
	}
	if pe.Value != "kaboom" {
		t.Fatalf("panic value = %v", pe.Value)
	}
	if len(pe.Stack) == 0 || !strings.Contains(string(pe.Stack), "budget") {
		t.Fatal("panic stack missing or implausible")
	}
	if b.Reason() != StopPanic {
		t.Fatalf("reason = %q, want %q", b.Reason(), StopPanic)
	}
}

func TestGuardPassesThroughErrors(t *testing.T) {
	b := New(nil, Limits{})
	sentinel := errors.New("boom")
	if err := Guard(b, func() error { return sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("Guard returned %v, want sentinel", err)
	}
	if err := Guard(b, func() error { return nil }); err != nil {
		t.Fatalf("Guard returned %v, want nil", err)
	}
	if b.Stopped() {
		t.Fatal("non-panicking Guard must not stop the budget")
	}
}

func TestAsPanicErrorPassthrough(t *testing.T) {
	orig := AsPanicError("first")
	again := AsPanicError(orig)
	if again != orig {
		t.Fatal("an existing *PanicError must pass through unchanged (stack preservation)")
	}
}
