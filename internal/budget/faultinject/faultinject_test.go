package faultinject

import "testing"

func TestDisarmedHitIsNoop(t *testing.T) {
	Reset()
	if Armed() {
		t.Fatal("fresh state must be disarmed")
	}
	Hit(SiteSearchExpand) // must not panic or block
}

func TestArmFiresOnNthHit(t *testing.T) {
	defer Reset()
	fired := 0
	Arm(SiteGAEval, 3, func() { fired++ })
	Hit(SiteGAEval)
	Hit(SiteGAEval)
	if fired != 0 {
		t.Fatalf("fired after %d hits, want after 3", fired)
	}
	Hit(SiteGAEval)
	if fired != 1 {
		t.Fatalf("fired = %d after 3rd hit, want 1", fired)
	}
	Hit(SiteGAEval)
	if fired != 1 {
		t.Fatal("action must run at most once")
	}
	if Armed() {
		t.Fatal("site must disarm after firing")
	}
}

func TestSitesAreIndependent(t *testing.T) {
	defer Reset()
	fired := false
	Arm(SiteCover, 1, func() { fired = true })
	Hit(SiteSearchExpand)
	Hit(SiteCheckpoint)
	if fired {
		t.Fatal("hits on other sites must not fire the plan")
	}
	Hit(SiteCover)
	if !fired {
		t.Fatal("armed site did not fire")
	}
}

func TestArmZeroMeansNext(t *testing.T) {
	defer Reset()
	fired := false
	Arm(SiteCheckpoint, 0, func() { fired = true })
	Hit(SiteCheckpoint)
	if !fired {
		t.Fatal("n<1 must clamp to the next hit")
	}
}

func TestInjectedPanicUnwindsCaller(t *testing.T) {
	defer Reset()
	Arm(SiteSearchExpand, 1, func() { panic("injected") })
	defer func() {
		if r := recover(); r != "injected" {
			t.Fatalf("recovered %v, want the injected panic", r)
		}
	}()
	Hit(SiteSearchExpand)
	t.Fatal("unreachable: Hit must have panicked")
}

func TestResetClearsPlans(t *testing.T) {
	Arm(SiteGAEval, 1, func() { t.Fatal("must never fire") })
	Reset()
	if Armed() {
		t.Fatal("Reset must disarm")
	}
	Hit(SiteGAEval)
}
