// Package faultinject provides the fault-injection points used by the
// robustness tests. Production code calls Hit at named sites (search
// expansion, GA evaluation, cover computation, budget checkpoints); tests
// arm a site to run an action — typically a context cancellation or a
// panic — on the nth future hit, proving the anytime contract holds when a
// run is interrupted or blows up at an arbitrary point.
//
// When nothing is armed, Hit is a single atomic load, cheap enough to leave
// compiled into the hot paths.
package faultinject

import (
	"sync"
	"sync/atomic"
)

// The injection sites compiled into production code.
const (
	// SiteSearchExpand fires once per expanded search node (A*/BB expansion
	// loops and det-k-decomp subproblems).
	SiteSearchExpand = "search.expand"
	// SiteGAEval fires once per GA fitness evaluation (GA and SAIGA).
	SiteGAEval = "ga.eval"
	// SiteCover fires once per bag set-cover computation.
	SiteCover = "elim.cover"
	// SiteCheckpoint fires once per budget checkpoint (budget.B.Check).
	SiteCheckpoint = "budget.checkpoint"
	// SiteParallelWorker fires once per task a parallel search worker picks
	// up, on the worker's goroutine — so tests can prove a panic inside a
	// worker is contained and surfaced as *budget.PanicError.
	SiteParallelWorker = "search.parallel.worker"
	// SiteServerParse fires once per daemon request body parse, before the
	// payload is decoded — chaos tests arm it with sleeps (slow-loris
	// parses) and panics to prove requests stay contained.
	SiteServerParse = "server.parse"
	// SiteServerHandle fires once per admitted daemon request, after the
	// worker slot is acquired and before the decomposition runs.
	SiteServerHandle = "server.handle"
)

var (
	armed atomic.Bool
	mu    sync.Mutex
	plans map[string]*plan
)

type plan struct {
	remaining int64
	action    func()
}

// Arm schedules action to run on the nth future Hit of site (n >= 1),
// replacing any previous plan for the site. The action runs at most once.
func Arm(site string, n int64, action func()) {
	if n < 1 {
		n = 1
	}
	mu.Lock()
	defer mu.Unlock()
	if plans == nil {
		plans = make(map[string]*plan)
	}
	plans[site] = &plan{remaining: n, action: action}
	armed.Store(true)
}

// Reset disarms every site. Tests must call it (usually via defer) so a
// leftover plan cannot fire in an unrelated test.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	plans = nil
	armed.Store(false)
}

// Armed reports whether any site currently has a pending plan.
func Armed() bool { return armed.Load() }

// Hit marks one pass through an injection site. It is a no-op unless the
// site was armed; on the armed hit the action runs on the caller's
// goroutine (so an injected panic unwinds the caller's stack).
func Hit(site string) {
	if !armed.Load() {
		return
	}
	var action func()
	mu.Lock()
	if p := plans[site]; p != nil {
		p.remaining--
		if p.remaining <= 0 {
			action = p.action
			delete(plans, site)
			if len(plans) == 0 {
				armed.Store(false)
			}
		}
	}
	mu.Unlock()
	if action != nil {
		action()
	}
}
