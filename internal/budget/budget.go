// Package budget is the unified run-budget abstraction shared by every
// algorithm in this repository. A budget carries an optional
// context.Context, a wall-clock deadline, and a search-node (work-unit)
// budget; algorithms call Tick once per unit of work and Check at coarser
// checkpoints, and stop cooperatively as soon as any limit trips. Because
// every algorithm here attacks an NP-hard problem, runs routinely end by
// budget rather than by completion — the budget records *why* a run stopped
// (StopReason) so callers can report best-so-far anytime results honestly.
//
// A nil *B is valid everywhere and means "unlimited": Tick/Check return
// true, Stopped reports false. This lets library entry points accept an
// optional budget without nil checks at every call site.
//
// All methods are safe for concurrent use (the SAIGA islands share one
// budget across goroutines).
package budget

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"hypertree/internal/budget/faultinject"
)

// StopReason says why a run ended early. The empty value means the run
// completed normally.
type StopReason string

// The stop reasons.
const (
	StopNone     StopReason = ""            // ran to completion
	StopDeadline StopReason = "deadline"    // wall-clock budget exhausted
	StopNodes    StopReason = "node-budget" // work-unit budget exhausted
	StopCanceled StopReason = "canceled"    // context canceled (e.g. SIGINT)
	StopPanic    StopReason = "panic"       // a contained panic ended the run
	// StopPortfolioWin aborts the losing members of a portfolio race once one
	// member's result is proven optimal. It is an internal coordination
	// signal, not a failure: core maps it back to a completed run
	// (Stop == StopNone, Exact == true) before returning to the caller.
	StopPortfolioWin StopReason = "portfolio-win"
)

// Limits configures a budget. Zero values mean unlimited.
type Limits struct {
	// Timeout bounds wall-clock time from New.
	Timeout time.Duration
	// MaxNodes bounds the number of Ticks (search expansions, GA
	// evaluations — whatever the algorithm counts as a unit of work).
	MaxNodes int64
	// CheckEvery is how many Ticks pass between deadline/context
	// checkpoints; defaults to 256. Tests lower it to make cancellation
	// land promptly even in short runs.
	CheckEvery int64
}

// B is a run budget. The zero value is not useful; use New. A nil *B is
// valid and unlimited.
//
// A budget is either a root (parent == nil) or an attributed member view of
// a root (see Member). A member view shares the root's limits, stop latch
// and clock — every limit check reads root state — but keeps its own node
// counter, so concurrent solvers racing on one budget can each account for
// the work they personally ticked. Conservation holds by construction:
// every member Tick increments exactly the member's counter and the root's
// counter, so as long as nothing ticks the root directly, the member counts
// sum to the root's Nodes().
type B struct {
	ctx        context.Context
	deadline   time.Time
	maxNodes   int64
	checkEvery int64
	start      time.Time
	// onCheck holds the checkpoint observers (see OnCheckpoint) as an
	// immutable slice behind an atomic pointer: the checkpoint path loads it
	// lock-free, and installs copy-on-write under mu. Instrumentation
	// piggybacks on the cancellation polls the algorithms already perform, so
	// observing a run adds no new hot-path branches.
	onCheck atomic.Pointer[[]CheckpointFunc]

	// parent and label make this budget an attributed member view; both are
	// immutable after Member. nodes is the root's global work counter on a
	// root, and the member's attributed share on a view.
	parent *B
	label  string

	nodes   atomic.Int64
	stopped atomic.Bool
	mu      sync.Mutex
	reason  StopReason
}

// CheckpointFunc observes a cooperative checkpoint: the work units ticked so
// far and the wall-clock time since New. It is called from whichever
// goroutine hit the checkpoint (SAIGA islands and parallel GA workers call
// concurrently), so implementations must be safe for concurrent use, and it
// runs on the hot path's polling cadence — keep it cheap.
type CheckpointFunc func(nodes int64, elapsed time.Duration)

// New builds a budget from ctx (may be nil) and limits, starting its clock
// now. A context deadline earlier than limits.Timeout wins.
func New(ctx context.Context, l Limits) *B {
	b := &B{ctx: ctx, maxNodes: l.MaxNodes, checkEvery: l.CheckEvery, start: time.Now()}
	if b.checkEvery <= 0 {
		b.checkEvery = 256
	}
	if l.Timeout > 0 {
		b.deadline = b.start.Add(l.Timeout)
	}
	if ctx != nil {
		if d, ok := ctx.Deadline(); ok && (b.deadline.IsZero() || d.Before(b.deadline)) {
			b.deadline = d
		}
	}
	return b
}

// Member returns an attributed view of b labeled label (typically the
// member's algorithm name). The view enforces the same limits and shares the
// same stop latch, clock and checkpoint observers as b, but Nodes() on the
// view returns only the work ticked *through the view*. Ticks through a view
// still count against the root's global budget, so the per-member counts of
// all views plus any direct root ticks sum exactly to the root's Nodes().
// Member of a member attaches to the same root (views do not nest); Member
// of a nil budget is nil (unlimited, unattributed).
func (b *B) Member(label string) *B {
	if b == nil {
		return nil
	}
	return &B{parent: b.root(), label: label}
}

// root resolves the budget whose limits and counters govern this one:
// itself for a root budget, the shared root for a member view.
func (b *B) root() *B {
	if b.parent != nil {
		return b.parent
	}
	return b
}

// Label returns the attribution label given to Member, or "" for a root or
// nil budget.
func (b *B) Label() string {
	if b == nil {
		return ""
	}
	return b.label
}

// Context returns the budget's context, or context.Background for a nil or
// context-less budget.
func (b *B) Context() context.Context {
	if b == nil || b.root().ctx == nil {
		return context.Background()
	}
	return b.root().ctx
}

// Tick counts one unit of work and reports whether the run may continue.
// Every checkEvery-th tick is also a Check checkpoint. On a member view the
// tick lands on both the view's attributed counter and the root's global
// counter — unconditionally paired once past the stopped gate, which is what
// makes the conservation invariant exact rather than approximate (a stop
// racing in between still sees both increments).
func (b *B) Tick() bool {
	if b == nil {
		return true
	}
	if p := b.parent; p != nil {
		if p.stopped.Load() {
			return false
		}
		b.nodes.Add(1)
		n := p.nodes.Add(1)
		if p.maxNodes > 0 && n > p.maxNodes {
			p.Stop(StopNodes)
			return false
		}
		if n%p.checkEvery == 0 {
			return p.Check()
		}
		return true
	}
	if b.stopped.Load() {
		return false
	}
	n := b.nodes.Add(1)
	if b.maxNodes > 0 && n > b.maxNodes {
		b.Stop(StopNodes)
		return false
	}
	if n%b.checkEvery == 0 {
		return b.Check()
	}
	return true
}

// Check is a cooperative checkpoint: it polls the context and the deadline
// without counting work, and reports whether the run may continue.
func (b *B) Check() bool {
	if b == nil {
		return true
	}
	if b.parent != nil {
		return b.parent.Check()
	}
	faultinject.Hit(faultinject.SiteCheckpoint)
	if b.stopped.Load() {
		return false
	}
	if b.ctx != nil {
		select {
		case <-b.ctx.Done():
			b.Stop(StopCanceled)
			return false
		default:
		}
	}
	if !b.deadline.IsZero() && time.Now().After(b.deadline) {
		b.Stop(StopDeadline)
		return false
	}
	if obs := b.onCheck.Load(); obs != nil {
		n, el := b.nodes.Load(), time.Since(b.start)
		for _, fn := range *obs {
			fn(n, el)
		}
	}
	return true
}

// OnCheckpoint adds fn to the budget's checkpoint observers (nil removes
// them all). Observers accumulate rather than replace: a portfolio run
// shares one budget across concurrent solvers, each installing its own
// instrumentation hook, and every observer fires at every passing
// checkpoint. Installation is safe while workers are already checkpointing.
func (b *B) OnCheckpoint(fn CheckpointFunc) {
	if b == nil {
		return
	}
	if p := b.parent; p != nil {
		// A member view installs onto the shared root, re-basing the reported
		// node count to the member's attributed share — the observer sees the
		// member's cost, not the portfolio's. Clearing (fn == nil) is a
		// root-level operation: a member must not be able to wipe its
		// siblings' observers, so nil is a no-op here.
		if fn == nil {
			return
		}
		view := b
		p.OnCheckpoint(func(_ int64, elapsed time.Duration) {
			fn(view.nodes.Load(), elapsed)
		})
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if fn == nil {
		b.onCheck.Store(nil)
		return
	}
	var cur []CheckpointFunc
	if p := b.onCheck.Load(); p != nil {
		cur = *p
	}
	next := make([]CheckpointFunc, len(cur)+1)
	copy(next, cur)
	next[len(cur)] = fn
	b.onCheck.Store(&next)
}

// Stop marks the budget stopped with the given reason. The first reason
// wins; later calls only keep the stopped flag set.
func (b *B) Stop(r StopReason) {
	if b == nil {
		return
	}
	if b.parent != nil {
		b.parent.Stop(r)
		return
	}
	b.mu.Lock()
	if b.reason == StopNone {
		b.reason = r
	}
	b.mu.Unlock()
	b.stopped.Store(true)
}

// Stopped reports whether any limit tripped (or Stop was called).
func (b *B) Stopped() bool { return b != nil && b.root().stopped.Load() }

// Reason returns why the budget stopped, or StopNone while it is live.
func (b *B) Reason() StopReason {
	if b == nil {
		return StopNone
	}
	r := b.root()
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.reason
}

// Nodes returns the number of work units ticked so far: the global total on
// a root budget, the view's attributed share on a member view.
func (b *B) Nodes() int64 {
	if b == nil {
		return 0
	}
	return b.nodes.Load()
}

// Elapsed returns the wall-clock time since New.
func (b *B) Elapsed() time.Duration {
	if b == nil {
		return 0
	}
	return time.Since(b.root().start)
}

// StartTime returns the instant the budget's clock started. Instrumentation
// emitters with their own clocks (the cover engine's sampled snapshots) pin
// themselves to it so every event in a trace shares one time base; a nil
// budget starts now.
func (b *B) StartTime() time.Time {
	if b == nil {
		return time.Now()
	}
	return b.root().start
}

// PanicError is the typed error a contained panic converts into: the
// recovered value plus the stack of the panicking goroutine, so one bad
// instance in a batch run surfaces as a diagnosable error instead of
// killing the process.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("panic: %v\n%s", e.Value, e.Stack)
}

// AsPanicError wraps a recovered value, capturing the current goroutine's
// stack. A value that already is a *PanicError passes through unchanged, so
// a panic forwarded across goroutines (SAIGA islands) keeps the stack of
// the goroutine that actually panicked.
func AsPanicError(v any) *PanicError {
	if pe, ok := v.(*PanicError); ok {
		return pe
	}
	buf := make([]byte, 64<<10)
	return &PanicError{Value: v, Stack: buf[:runtime.Stack(buf, false)]}
}

// Guard runs fn with a panic barrier: a panic inside fn is recovered,
// converted to a *PanicError, and returned as the error, with b marked
// stopped (StopPanic). Batch runners rely on this so a single exploding
// instance cannot take down the whole run.
func Guard(b *B, fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			b.Stop(StopPanic)
			err = AsPanicError(r)
		}
	}()
	return fn()
}
