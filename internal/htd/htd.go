// Package htd implements hypertree decompositions — the tractable variant
// of generalized hypertree decompositions highlighted by the PODS 2007 line
// this repository reproduces (thesis §2.3.2: for fixed k, deciding
// hw(H) ≤ k and computing a width-k hypertree decomposition is polynomial,
// whereas the same questions for ghw are NP-complete even for fixed k).
//
// The algorithm is a backtracking det-k-decomp in the style of Gottlob &
// Samer: recursively split edge components with separators of at most k
// hyperedges drawn from the current component and its parent separator,
// memoizing failed and successful (component, connector) subproblems.
// Since ghw(H) ≤ hw(H), every decomposition found here is also a valid
// generalized hypertree decomposition and an upper bound for ghw.
package htd

import (
	"sort"
	"strconv"
	"strings"
	"sync/atomic"

	"hypertree/internal/budget"
	"hypertree/internal/budget/faultinject"
	"hypertree/internal/decomp"
	"hypertree/internal/hypergraph"
	"hypertree/internal/obs"
)

// Decomposer holds the memoization state for one hypergraph and width.
type decomposer struct {
	h     *hypergraph.Hypergraph
	k     int
	memo  map[string]*node // nil value = known failure
	edges [][]int
	b     *budget.B
	// stop latches once the budget runs out mid-search. From then on
	// subproblems fail fast, and — crucially — nothing is memoized: a nil
	// caused by exhaustion is "unknown", not "proven impossible". It is an
	// atomic because the parallel driver shares one decomposer across its
	// workers; serial runs pay one uncontended atomic op per check.
	stop atomic.Bool
	// cmemo, when non-nil, replaces memo with the concurrency-safe table the
	// parallel driver shares across workers (serial runs leave it nil and
	// keep the plain map).
	cmemo *concMemo
	// abort, when non-nil, is the parallel driver's first-success latch:
	// once a worker finds a decomposition the siblings unwind. Unlike stop
	// it does not mark the run interrupted.
	abort *atomic.Bool
}

// halted reports whether the search should unwind without an answer:
// budget exhausted, or (parallel runs) a sibling already succeeded. Nothing
// is memoized past this point.
func (d *decomposer) halted() bool {
	return d.stop.Load() || d.aborted()
}

func (d *decomposer) aborted() bool { return d.abort != nil && d.abort.Load() }

// node is a constructed decomposition subtree.
type node struct {
	lambda   []int // hyperedge ids
	chi      []int // vertices
	children []*node
}

// DecideHW decides whether h has a hypertree decomposition of width at most
// k and returns one (as a validated GHD) when it does. For fixed k the
// running time is polynomial in h.
func DecideHW(h *hypergraph.Hypergraph, k int) (*decomp.GHD, bool) {
	g, ok, _ := DecideHWBudget(h, k, nil)
	return g, ok
}

// DecideHWBudget is DecideHW under a run budget. The third result reports
// whether the search was cut short: when interrupted is true, ok=false
// means "unknown", not "no width-k decomposition exists".
func DecideHWBudget(h *hypergraph.Hypergraph, k int, b *budget.B) (g *decomp.GHD, ok, interrupted bool) {
	if k < 1 {
		return nil, false, false
	}
	if h.M() == 0 || !h.CoversAllVertices() {
		return nil, false, false
	}
	d := &decomposer{h: h, k: k, memo: make(map[string]*node), edges: h.Edges(), b: b}
	all := make([]int, h.M())
	for i := range all {
		all[i] = i
	}
	root := d.decompose(all, nil, nil)
	if root == nil {
		return nil, false, d.stop.Load()
	}
	return d.toGHD(root), true, false
}

// HypertreeWidth computes hw(h) by trying k = 1, 2, … up to maxK, returning
// the width and a witnessing decomposition, or (-1, nil) if maxK is too
// small.
func HypertreeWidth(h *hypergraph.Hypergraph, maxK int) (int, *decomp.GHD) {
	w, g, _ := HypertreeWidthBudget(h, maxK, nil)
	return w, g
}

// HypertreeWidthBudget is HypertreeWidth under a run budget. provenLB is
// the smallest k not yet refuted: every width below provenLB has been
// proven impossible, so hw(h) ≥ provenLB. On a completed run with a
// decomposition found, provenLB equals the returned width; on an
// interrupted or exhausted run the width is -1 and provenLB is the
// best-so-far lower bound on hw.
func HypertreeWidthBudget(h *hypergraph.Hypergraph, maxK int, b *budget.B) (width int, g *decomp.GHD, provenLB int) {
	return HypertreeWidthObserved(h, maxK, b, nil)
}

// HypertreeWidthObserved is HypertreeWidthBudget with instrumentation: each
// width attempt emits a detk_attempt event, each refuted width a lower_bound
// event, and a found decomposition an improve event. rec may be nil.
func HypertreeWidthObserved(h *hypergraph.Hypergraph, maxK int, b *budget.B, rec obs.Recorder) (width int, g *decomp.GHD, provenLB int) {
	return hypertreeWidthLoop(h, maxK, 1, b, rec)
}

// hypertreeWidthLoop is the k = 1, 2, … driver shared by the serial and
// parallel entry points; workers > 1 selects DecideHWParallel per attempt.
func hypertreeWidthLoop(h *hypergraph.Hypergraph, maxK, workers int, b *budget.B, rec obs.Recorder) (width int, g *decomp.GHD, provenLB int) {
	provenLB = 1
	for k := 1; k <= maxK; k++ {
		g, ok, interrupted := DecideHWParallel(h, k, workers, b)
		if rec != nil {
			rec.Record(obs.Event{Kind: obs.KindAttempt, T: b.Elapsed(),
				K: k, Found: ok, Nodes: b.Nodes()})
		}
		if ok {
			if rec != nil {
				rec.Record(obs.Event{Kind: obs.KindImprove, T: b.Elapsed(),
					Width: k, Nodes: b.Nodes()})
			}
			return k, g, k
		}
		if interrupted {
			return -1, nil, provenLB
		}
		provenLB = k + 1
		if rec != nil {
			rec.Record(obs.Event{Kind: obs.KindLowerBound, T: b.Elapsed(),
				LowerBound: provenLB, Nodes: b.Nodes()})
		}
	}
	return -1, nil, provenLB
}

// decompose tries to decompose the edge component comp whose interface to
// the parent is the connector vertex set, with separators drawn from
// comp ∪ oldSep (the det-k-decomp candidate rule enforcing the hypertree
// descendant condition).
func (d *decomposer) decompose(comp, connector, oldSep []int) *node {
	if d.aborted() {
		return nil
	}
	if d.stop.Load() || !d.b.Tick() {
		d.stop.Store(true)
		return nil
	}
	faultinject.Hit(faultinject.SiteSearchExpand)
	key := memoKey(comp, connector)
	if d.cmemo != nil {
		return d.decomposeShared(key, comp, connector, oldSep)
	}
	if n, ok := d.memo[key]; ok {
		return n
	}
	n := d.solve(comp, connector, oldSep)
	// An exhausted or unwinding search proves nothing: memoizing nil here
	// would wrongly record this subproblem as unsolvable for later (or
	// resumed) queries.
	if !d.halted() {
		d.memo[key] = n
	}
	return n
}

// decomposeShared is decompose's memo path for parallel runs: exactly one
// worker computes each (component, connector) subproblem while the others
// wait for its answer. Waiting cannot deadlock — an owner only ever waits
// on strictly smaller components than the one it owns (the progress guard
// in try enforces strict shrinkage), so wait chains cannot cycle.
func (d *decomposer) decomposeShared(key string, comp, connector, oldSep []int) *node {
	for {
		ent, owner := d.cmemo.acquire(key)
		if !owner {
			if n, valid := ent.wait(); valid {
				return n
			}
			if d.halted() {
				return nil
			}
			// The previous owner unwound without an answer but this worker
			// is still live: re-claim the entry and compute it ourselves.
			continue
		}
		var n *node
		solved := false
		func() {
			// Whatever happens to the owner — including a panic on its way
			// to the worker's containment handler — the entry must complete,
			// or waiting workers would block forever.
			defer func() {
				if !solved {
					ent.complete(nil, false)
				}
			}()
			n = d.solve(comp, connector, oldSep)
			solved = true
		}()
		ent.complete(n, !d.halted())
		return n
	}
}

// solve computes one subproblem: the base case, or the separator
// enumeration. Callers handle memoization.
func (d *decomposer) solve(comp, connector, oldSep []int) *node {
	// Base case: the whole component fits into one λ-set.
	if len(comp) <= d.k {
		return &node{lambda: append([]int(nil), comp...), chi: d.vars(comp)}
	}
	// Candidate separator edges: component edges plus the parent separator
	// (det-k-decomp's completeness-preserving pool for hypertree width).
	pool := append(append([]int(nil), comp...), oldSep...)
	sort.Ints(pool)
	pool = dedupe(pool)

	compVars := d.vars(comp)
	inComp := make(map[int]bool, len(compVars))
	for _, v := range compVars {
		inComp[v] = true
	}

	sep := make([]int, 0, d.k)
	var result *node
	var choose func(start, uncoveredIdx int) bool
	// connector coverage tracked greedily: we require that after the
	// separator is complete, every connector vertex is covered.
	covers := func(sep []int, v int) bool {
		for _, e := range sep {
			if d.h.EdgeContains(e, v) {
				return true
			}
		}
		return false
	}
	choose = func(start, depth int) bool {
		if d.aborted() {
			// A sibling worker already found a decomposition; unwind fast
			// without marking the run interrupted.
			return true
		}
		if d.stop.Load() || !d.b.Tick() {
			// Returning true unwinds the separator enumeration fast; result
			// stays nil and the stop latch keeps it out of the memo.
			d.stop.Store(true)
			return true
		}
		if len(sep) > 0 {
			// Try this separator when it covers the connector.
			ok := true
			for _, v := range connector {
				if !covers(sep, v) {
					ok = false
					break
				}
			}
			if ok {
				if n := d.try(comp, sep, inComp); n != nil {
					result = n
					return true
				}
			}
		}
		if depth == d.k {
			return false
		}
		for i := start; i < len(pool); i++ {
			sep = append(sep, pool[i])
			if choose(i+1, depth+1) {
				return true
			}
			sep = sep[:len(sep)-1]
		}
		return false
	}
	choose(0, 0)
	return result
}

// try splits comp by the separator sep and recursively decomposes every
// resulting subcomponent. It returns the decomposition node or nil.
func (d *decomposer) try(comp, sep []int, inComp map[int]bool) *node {
	sepVars := make(map[int]bool)
	for _, e := range sep {
		for _, v := range d.edges[e] {
			sepVars[v] = true
		}
	}
	// Components of comp edges connected through vertices outside sepVars.
	// Union-find over comp edges.
	parent := make(map[int]int, len(comp))
	var find func(x int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	var active []int // edges with at least one uncovered vertex
	for _, e := range comp {
		covered := true
		for _, v := range d.edges[e] {
			if !sepVars[v] {
				covered = false
				break
			}
		}
		if !covered {
			parent[e] = e
			active = append(active, e)
		}
	}
	// Group active edges by shared uncovered vertices.
	owner := make(map[int]int) // uncovered vertex -> representative edge
	for _, e := range active {
		for _, v := range d.edges[e] {
			if sepVars[v] {
				continue
			}
			if o, ok := owner[v]; ok {
				union(o, e)
			} else {
				owner[v] = e
			}
		}
	}
	groups := make(map[int][]int)
	for _, e := range active {
		r := find(e)
		groups[r] = append(groups[r], e)
	}
	// Progress guard: a separator that leaves the whole component intact
	// would recurse forever.
	for _, g := range groups {
		if len(g) == len(comp) {
			return nil
		}
	}
	n := &node{lambda: append([]int(nil), sep...)}
	// χ(p) = var(λ) ∩ (var(comp) ∪ connector); connector ⊆ var(comp)'s
	// closure via the parent, so restricting to vertices seen in comp or
	// the separator's own coverage of the connector is handled by taking
	// var(λ) ∩ (comp vars ∪ covered connector) — equivalently all λ vars
	// that occur in the component or the connector. We include every λ
	// vertex inside the component plus the connector itself.
	chi := make(map[int]bool)
	for v := range sepVars {
		if inComp[v] {
			chi[v] = true
		}
	}
	reps := make([]int, 0, len(groups))
	for r := range groups {
		reps = append(reps, r)
	}
	sort.Ints(reps)
	for _, r := range reps {
		sub := groups[r]
		sort.Ints(sub)
		// Child connector: separator vertices occurring in the subcomponent.
		var childConn []int
		seen := make(map[int]bool)
		for _, e := range sub {
			for _, v := range d.edges[e] {
				if sepVars[v] && !seen[v] {
					seen[v] = true
					childConn = append(childConn, v)
				}
			}
		}
		sort.Ints(childConn)
		child := d.decompose(sub, childConn, sep)
		if child == nil {
			return nil
		}
		n.children = append(n.children, child)
		for _, v := range childConn {
			chi[v] = true
		}
	}
	n.chi = make([]int, 0, len(chi))
	for v := range chi {
		n.chi = append(n.chi, v)
	}
	sort.Ints(n.chi)
	return n
}

func (d *decomposer) vars(edges []int) []int {
	seen := make(map[int]bool)
	var out []int
	for _, e := range edges {
		for _, v := range d.edges[e] {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	sort.Ints(out)
	return out
}

// toGHD flattens the node tree into the repository's GHD representation.
func (d *decomposer) toGHD(root *node) *decomp.GHD {
	g := &decomp.GHD{}
	var walk func(n *node, parent int) int
	walk = func(n *node, parent int) int {
		id := len(g.Bags)
		g.Bags = append(g.Bags, append([]int(nil), n.chi...))
		g.Lambdas = append(g.Lambdas, append([]int(nil), n.lambda...))
		g.Parent = append(g.Parent, parent)
		for _, c := range n.children {
			walk(c, id)
		}
		return id
	}
	g.Root = walk(root, -1)
	return g
}

func memoKey(comp, connector []int) string {
	var sb strings.Builder
	for _, e := range comp {
		sb.WriteString(strconv.Itoa(e))
		sb.WriteByte(',')
	}
	sb.WriteByte('|')
	for _, v := range connector {
		sb.WriteString(strconv.Itoa(v))
		sb.WriteByte(',')
	}
	return sb.String()
}

func dedupe(sorted []int) []int {
	out := sorted[:0]
	for i, v := range sorted {
		if i == 0 || v != sorted[i-1] {
			out = append(out, v)
		}
	}
	return out
}
