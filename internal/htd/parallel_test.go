package htd

import (
	"errors"
	"testing"

	"hypertree/internal/budget"
	"hypertree/internal/budget/faultinject"
	"hypertree/internal/hypergraph"
)

// TestParallelDetKSmoke is the `make par-smoke` gate for det-k-decomp: the
// parallel decision and width must match the serial search under the race
// detector, and the parallel witness must validate.
func TestParallelDetKSmoke(t *testing.T) {
	h := hypergraph.Grid2D(4)
	for k := 1; k <= 4; k++ {
		gs, okS, intS := DecideHWBudget(h, k, nil)
		gp, okP, intP := DecideHWParallel(h, k, 4, nil)
		if intS || intP {
			t.Fatalf("k=%d: unbudgeted run reported interrupted (serial=%v parallel=%v)", k, intS, intP)
		}
		if okS != okP {
			t.Fatalf("k=%d: serial ok=%v, parallel ok=%v", k, okS, okP)
		}
		if okS {
			if err := gp.Validate(h); err != nil {
				t.Fatalf("k=%d: parallel witness invalid: %v", k, err)
			}
			if gp.Width() > k || gs.Width() > k {
				t.Fatalf("k=%d: witness width serial=%d parallel=%d", k, gs.Width(), gp.Width())
			}
		}
	}
}

// TestParallelDetKMatchesSerial proves decision equivalence across a small
// corpus and worker counts.
func TestParallelDetKMatchesSerial(t *testing.T) {
	for _, tc := range []struct {
		name string
		h    *hypergraph.Hypergraph
		maxK int
	}{
		{"grid2d_4", hypergraph.Grid2D(4), 4},
		{"clique_7", hypergraph.CliqueHypergraph(7), 5},
		{"rand_10_12", hypergraph.RandomHypergraph(10, 12, 1, 3, 7), 4},
		{"rand_9_10", hypergraph.RandomHypergraph(9, 10, 2, 4, 3), 4},
	} {
		for k := 1; k <= tc.maxK; k++ {
			_, okS, _ := DecideHWBudget(tc.h, k, nil)
			for _, w := range []int{2, 4} {
				gp, okP, _ := DecideHWParallel(tc.h, k, w, nil)
				if okP != okS {
					t.Errorf("%s k=%d workers=%d: parallel ok=%v, serial ok=%v", tc.name, k, w, okP, okS)
				}
				if okP {
					if err := gp.Validate(tc.h); err != nil {
						t.Errorf("%s k=%d workers=%d: invalid witness: %v", tc.name, k, w, err)
					}
				}
			}
		}
	}
}

// TestParallelHypertreeWidthMatchesSerial runs the full width driver both
// ways.
func TestParallelHypertreeWidthMatchesSerial(t *testing.T) {
	for _, tc := range []struct {
		name string
		h    *hypergraph.Hypergraph
	}{
		{"grid2d_4", hypergraph.Grid2D(4)},
		{"clique_6", hypergraph.CliqueHypergraph(6)},
		{"rand_10_12", hypergraph.RandomHypergraph(10, 12, 1, 3, 7)},
	} {
		ws, gs, _ := HypertreeWidthObserved(tc.h, 6, nil, nil)
		wp, gp, _ := HypertreeWidthParallel(tc.h, 6, 4, nil, nil)
		if wp != ws {
			t.Errorf("%s: parallel width %d != serial %d", tc.name, wp, ws)
		}
		if (gs == nil) != (gp == nil) {
			t.Errorf("%s: witness presence differs (serial=%v parallel=%v)", tc.name, gs != nil, gp != nil)
		}
		if gp != nil {
			if err := gp.Validate(tc.h); err != nil {
				t.Errorf("%s: parallel witness invalid: %v", tc.name, err)
			}
		}
	}
}

// TestParallelDetKInterrupted: an exhausted budget must report interrupted,
// not a wrong "no decomposition" answer.
func TestParallelDetKInterrupted(t *testing.T) {
	h := hypergraph.Grid2D(6)
	b := budget.New(nil, budget.Limits{MaxNodes: 5, CheckEvery: 1})
	g, ok, interrupted := DecideHWParallel(h, 3, 4, b)
	if ok || g != nil {
		t.Fatalf("5-node budget cannot decide grid2d_6 at k=3 (ok=%v)", ok)
	}
	if !interrupted {
		t.Fatal("budget-stopped parallel run did not report interrupted")
	}
}

// TestParallelDetKWorkerPanicContained: a panic on a worker goroutine must
// surface to the caller as *budget.PanicError via budget.Guard.
func TestParallelDetKWorkerPanicContained(t *testing.T) {
	defer faultinject.Reset()
	faultinject.Arm(faultinject.SiteParallelWorker, 1, func() { panic("injected det-k worker failure") })
	h := hypergraph.Grid2D(4)
	b := budget.New(nil, budget.Limits{})
	err := budget.Guard(b, func() error {
		DecideHWParallel(h, 2, 4, b)
		return nil
	})
	if err == nil {
		t.Fatal("injected worker panic did not surface")
	}
	var pe *budget.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("got %T (%v), want *budget.PanicError", err, err)
	}
}
