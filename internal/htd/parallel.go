// Parallel det-k-decomp: the root separator enumeration decomposes into
// independent subproblems — the separators whose smallest hyperedge is
// pool[i] form a disjoint subtree of the serial enumeration for each i — so
// workers claim first-edge indices from an atomic counter and race to find
// any width-k decomposition. Deeper subproblems are shared through a
// concurrency-safe memo table with in-flight deduplication: the first
// worker to reach a (component, connector) pair computes it, later workers
// wait for its answer instead of redoing the subtree.
//
// The serial semantics carry over: a decomposition is found iff the serial
// search finds one (the workers partition the same enumeration), budget
// exhaustion reports interrupted with nothing wrongly memoized, and a
// worker panic stops the siblings and surfaces as *budget.PanicError.
package htd

import (
	"sync"
	"sync/atomic"

	"hypertree/internal/budget"
	"hypertree/internal/budget/faultinject"
	"hypertree/internal/decomp"
	"hypertree/internal/hypergraph"
	"hypertree/internal/obs"
)

// concMemo is the workers' shared (component, connector) table. Each entry
// is computed by exactly one owner; the done channel publishes the answer.
// Entries completed without an answer (owner unwound on budget stop or
// abort) are re-claimable by a still-live worker, so an aborted owner never
// poisons a subproblem.
type concMemo struct {
	mu sync.Mutex
	m  map[string]*memoEntry
}

type memoEntry struct {
	done  chan struct{}
	n     *node
	valid bool
}

func newConcMemo() *concMemo {
	return &concMemo{m: make(map[string]*memoEntry)}
}

// acquire returns the entry for key and whether the caller became its
// owner. An owner must eventually call complete exactly once.
func (c *concMemo) acquire(key string) (*memoEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if ent, ok := c.m[key]; ok {
		select {
		case <-ent.done:
			if !ent.valid {
				// The previous owner gave up; hand ownership to the caller.
				fresh := &memoEntry{done: make(chan struct{})}
				c.m[key] = fresh
				return fresh, true
			}
		default:
		}
		return ent, false
	}
	ent := &memoEntry{done: make(chan struct{})}
	c.m[key] = ent
	return ent, true
}

// wait blocks until the owner completes and returns its answer. valid=false
// means "the owner unwound without proving anything".
func (e *memoEntry) wait() (*node, bool) {
	<-e.done
	return e.n, e.valid
}

// complete publishes the owner's answer and wakes the waiters.
func (e *memoEntry) complete(n *node, valid bool) {
	e.n = n
	e.valid = valid
	close(e.done)
}

// DecideHWParallel is DecideHWBudget with workers goroutines racing over
// the root separator choices; workers <= 1 falls through to the serial
// search. The decision (and interrupted flag) matches the serial search;
// the witnessing decomposition may differ when several widths-k
// decompositions exist.
func DecideHWParallel(h *hypergraph.Hypergraph, k, workers int, b *budget.B) (g *decomp.GHD, ok, interrupted bool) {
	if workers <= 1 {
		return DecideHWBudget(h, k, b)
	}
	if k < 1 {
		return nil, false, false
	}
	if h.M() == 0 || !h.CoversAllVertices() {
		return nil, false, false
	}
	d := &decomposer{h: h, k: k, edges: h.Edges(), b: b,
		cmemo: newConcMemo(), abort: new(atomic.Bool)}
	all := make([]int, h.M())
	for i := range all {
		all[i] = i
	}
	if len(all) <= k {
		return d.toGHD(&node{lambda: all, chi: d.vars(all)}), true, false
	}
	// Mirror the root of the serial enumeration: pool = all edges (sorted,
	// distinct), empty connector, whole edge set as the component.
	compVars := d.vars(all)
	inComp := make(map[int]bool, len(compVars))
	for _, v := range compVars {
		inComp[v] = true
	}
	var (
		next   atomic.Int64
		mu     sync.Mutex
		result *node
		pe     *budget.PanicError
		wg     sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					p := budget.AsPanicError(r)
					mu.Lock()
					if pe == nil {
						pe = p
					}
					mu.Unlock()
					d.stop.Store(true)
					d.b.Stop(budget.StopPanic)
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(all) || d.halted() {
					return
				}
				faultinject.Hit(faultinject.SiteParallelWorker)
				if n := d.rootEnum(all, i, all, inComp); n != nil {
					mu.Lock()
					if result == nil {
						result = n
					}
					mu.Unlock()
					// First success wins; siblings unwind at their next
					// abort check without marking the run interrupted.
					d.abort.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	if pe != nil {
		// Rethrow on the caller's goroutine for budget.Guard to contain.
		panic(pe)
	}
	if result != nil {
		return d.toGHD(result), true, false
	}
	return nil, false, d.stop.Load()
}

// rootEnum enumerates the root separators whose first (smallest) edge is
// pool[first] — one disjoint slice of the serial choose tree — and returns
// a decomposition if any of them works. The root connector is empty, so
// every non-empty separator passes the coverage test.
func (d *decomposer) rootEnum(pool []int, first int, comp []int, inComp map[int]bool) *node {
	sep := make([]int, 0, d.k)
	sep = append(sep, pool[first])
	var result *node
	var extend func(start, depth int) bool
	extend = func(start, depth int) bool {
		if d.aborted() {
			return true
		}
		if d.stop.Load() || !d.b.Tick() {
			d.stop.Store(true)
			return true
		}
		if n := d.try(comp, sep, inComp); n != nil {
			result = n
			return true
		}
		if depth == d.k {
			return false
		}
		for i := start; i < len(pool); i++ {
			sep = append(sep, pool[i])
			if extend(i+1, depth+1) {
				return true
			}
			sep = sep[:len(sep)-1]
		}
		return false
	}
	extend(first+1, 1)
	return result
}

// HypertreeWidthParallel computes hw(h) like HypertreeWidthObserved but
// decides each width attempt with workers goroutines. Instrumentation
// events are identical in shape to the serial driver's.
func HypertreeWidthParallel(h *hypergraph.Hypergraph, maxK, workers int, b *budget.B, rec obs.Recorder) (width int, g *decomp.GHD, provenLB int) {
	return hypertreeWidthLoop(h, maxK, workers, b, rec)
}
