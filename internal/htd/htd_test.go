package htd

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hypertree/internal/elim"
	"hypertree/internal/hypergraph"
)

func triangle() *hypergraph.Hypergraph {
	h := hypergraph.NewHypergraph(3)
	h.AddEdge(0, 1)
	h.AddEdge(1, 2)
	h.AddEdge(0, 2)
	return h
}

func TestHWOneIffAcyclic(t *testing.T) {
	// Acyclic hypergraph: hw = 1.
	h := hypergraph.NewHypergraph(5)
	h.AddEdge(0, 1, 2)
	h.AddEdge(2, 3)
	h.AddEdge(3, 4)
	g, ok := DecideHW(h, 1)
	if !ok {
		t.Fatal("acyclic hypergraph must have hw 1")
	}
	if err := g.Validate(h); err != nil {
		t.Fatal(err)
	}
	if g.Width() != 1 {
		t.Fatalf("width = %d, want 1", g.Width())
	}
	// Cyclic: hw > 1.
	if _, ok := DecideHW(triangle(), 1); ok {
		t.Fatal("triangle must not have hw 1")
	}
}

func TestHWTriangle(t *testing.T) {
	w, g := HypertreeWidth(triangle(), 4)
	if w != 2 {
		t.Fatalf("hw(triangle) = %d, want 2", w)
	}
	if err := g.Validate(triangle()); err != nil {
		t.Fatal(err)
	}
}

func TestHWExample5(t *testing.T) {
	h := hypergraph.NewHypergraph(6)
	h.AddEdge(0, 1, 2)
	h.AddEdge(0, 4, 5)
	h.AddEdge(2, 3, 4)
	w, g := HypertreeWidth(h, 4)
	if w != 2 { // ghw = 2 and a width-2 hypertree decomposition exists
		t.Fatalf("hw(example 5) = %d, want 2", w)
	}
	if err := g.Validate(h); err != nil {
		t.Fatal(err)
	}
}

func TestHWCliqueHypergraph(t *testing.T) {
	// K_n as binary hyperedges: hw = ceil(n/2) (one bag over all vertices).
	for _, n := range []int{4, 5, 6} {
		h := hypergraph.CliqueHypergraph(n)
		w, g := HypertreeWidth(h, n)
		want := (n + 1) / 2
		if w != want {
			t.Errorf("hw(clique_%d) = %d, want %d", n, w, want)
		}
		if g != nil {
			if err := g.Validate(h); err != nil {
				t.Errorf("clique_%d: %v", n, err)
			}
		}
	}
}

func TestHWGrid2D(t *testing.T) {
	h := hypergraph.Grid2D(4)
	w, g := HypertreeWidth(h, 4)
	if w < 2 || w > 4 {
		t.Fatalf("hw(grid2d_4) = %d, expected small", w)
	}
	if err := g.Validate(h); err != nil {
		t.Fatal(err)
	}
	// ghw ≤ hw.
	if ghw := elim.ExhaustiveGHW(h); w < ghw {
		t.Fatalf("hw %d < ghw %d (impossible)", w, ghw)
	}
}

func TestDecideHWEdgeCases(t *testing.T) {
	if _, ok := DecideHW(hypergraph.NewHypergraph(3), 2); ok {
		t.Fatal("edgeless hypergraph should be rejected")
	}
	if _, ok := DecideHW(triangle(), 0); ok {
		t.Fatal("k=0 should be rejected")
	}
	uncovered := hypergraph.NewHypergraph(3)
	uncovered.AddEdge(0, 1)
	if _, ok := DecideHW(uncovered, 2); ok {
		t.Fatal("uncovered vertices should be rejected")
	}
	if w, _ := HypertreeWidth(triangle(), 1); w != -1 {
		t.Fatalf("maxK too small should give -1, got %d", w)
	}
}

// Property: on random small hypergraphs, DecideHW's result brackets ghw:
// every returned decomposition is a valid GHD (so hw ≥ ghw holds by
// validity), and monotonicity in k holds.
func TestHWSoundAndMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(4)
		m := 3 + rng.Intn(5)
		h := hypergraph.RandomHypergraph(n, m, 1, 3, seed)
		covered := make([]bool, n)
		for _, e := range h.Edges() {
			for _, v := range e {
				covered[v] = true
			}
		}
		for v, c := range covered {
			if !c {
				h.AddEdge(v)
			}
		}
		ghw := elim.ExhaustiveGHW(h)
		prevOK := false
		successes := 0
		for k := 1; k <= h.M() && successes < 2; k++ {
			g, ok := DecideHW(h, k)
			if prevOK && !ok {
				return false // monotone: once decomposable, stays so
			}
			if ok {
				prevOK = true
				successes++
				if g.Validate(h) != nil || g.Width() > k {
					return false
				}
				if k < ghw {
					return false // hw >= ghw: width-k HD implies ghw <= k
				}
			}
		}
		return prevOK // some k always succeeds (k = m is trivially enough)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property (3-approximation, Adler–Gottlob–Grohe): hw ≤ 3·ghw + 1.
func TestHWApproximationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(3)
		m := 3 + rng.Intn(4)
		h := hypergraph.RandomHypergraph(n, m, 1, 3, seed)
		covered := make([]bool, n)
		for _, e := range h.Edges() {
			for _, v := range e {
				covered[v] = true
			}
		}
		for v, c := range covered {
			if !c {
				h.AddEdge(v)
			}
		}
		ghw := elim.ExhaustiveGHW(h)
		hw, _ := HypertreeWidth(h, 3*ghw+1)
		return hw >= ghw && hw <= 3*ghw+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
