package reduce

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hypertree/internal/elim"
	"hypertree/internal/elimgraph"
	"hypertree/internal/hypergraph"
)

func TestFindSimplicial(t *testing.T) {
	// A path: endpoints are simplicial.
	p := hypergraph.NewGraph(4)
	p.AddEdge(0, 1)
	p.AddEdge(1, 2)
	p.AddEdge(2, 3)
	e := elimgraph.New(p)
	v := FindSimplicial(e)
	if v != 0 && v != 3 {
		t.Fatalf("FindSimplicial = %d, want an endpoint", v)
	}
	// C5 has no simplicial vertex.
	c5 := hypergraph.NewGraph(5)
	for i := 0; i < 5; i++ {
		c5.AddEdge(i, (i+1)%5)
	}
	if got := FindSimplicial(elimgraph.New(c5)); got != -1 {
		t.Fatalf("C5 FindSimplicial = %d, want -1", got)
	}
}

func TestFindReductionAlmostSimplicial(t *testing.T) {
	// C5: every vertex is almost simplicial with degree 2; with lb >= 2 the
	// strongly-almost-simplicial rule fires, with lb < 2 it must not.
	c5 := hypergraph.NewGraph(5)
	for i := 0; i < 5; i++ {
		c5.AddEdge(i, (i+1)%5)
	}
	e := elimgraph.New(c5)
	if got := FindReduction(e, 1, true); got != -1 {
		t.Fatalf("lb=1: got %d, want -1 (degree 2 > lb)", got)
	}
	if got := FindReduction(e, 2, true); got < 0 {
		t.Fatal("lb=2: expected an almost simplicial reduction")
	}
	if got := FindReduction(e, 2, false); got != -1 {
		t.Fatalf("allowAlmost=false: got %d, want -1", got)
	}
}

func TestPreprocessChordalEliminatesEverything(t *testing.T) {
	// A tree is chordal: simplicial eliminations alone empty it, and the
	// width floor is the treewidth (1).
	tr := hypergraph.NewGraph(7)
	for _, ed := range [][2]int{{0, 1}, {0, 2}, {1, 3}, {1, 4}, {2, 5}, {2, 6}} {
		tr.AddEdge(ed[0], ed[1])
	}
	e := elimgraph.New(tr)
	prefix, floor := Preprocess(e, 0, false)
	if len(prefix) != 7 {
		t.Fatalf("preprocess eliminated %d of 7 vertices", len(prefix))
	}
	if floor != 1 {
		t.Fatalf("width floor = %d, want 1", floor)
	}
	e.Reset()
}

// Property: eliminating a simplicial vertex first never increases the
// treewidth (thesis §4.4.3) — verified against exhaustive search.
func TestSimplicialReductionSafeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(4)
		g := hypergraph.RandomGraph(n, rng.Intn(n*(n-1)/2+1), seed)
		e := elimgraph.New(g)
		v := FindSimplicial(e)
		if v < 0 {
			return true
		}
		tw := elim.ExhaustiveTreewidth(g)
		d := e.Eliminate(v)
		// Best completion after forcing v first.
		best := d
		rest := elim.ExhaustiveTreewidth(e.Snapshot())
		if rest > best {
			best = rest
		}
		e.Reset()
		return best == tw || best < tw // must never exceed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
