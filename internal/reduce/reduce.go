// Package reduce implements the search-space reduction techniques of thesis
// §4.4.3: simplicial and strongly-almost-simplicial vertices can be
// eliminated immediately without increasing the treewidth, shrinking both
// preprocessing instances and branch-and-bound / A* search trees.
package reduce

import (
	"hypertree/internal/elimgraph"
)

// FindSimplicial returns a live simplicial vertex of e, or -1.
func FindSimplicial(e *elimgraph.ElimGraph) int {
	for v := 0; v < e.N(); v++ {
		if !e.Eliminated(v) && e.IsSimplicial(v) {
			return v
		}
	}
	return -1
}

// FindReduction returns a vertex that may be eliminated next without loss of
// optimality in a treewidth search: a simplicial vertex, or a strongly
// almost simplicial vertex (almost simplicial with degree not exceeding the
// given treewidth lower bound, thesis Definition 24). Returns -1 if none
// exists. Set allowAlmost to false to restrict to simplicial vertices only
// (used by the ghw searches, where the almost-simplicial rule is not known
// to be safe).
func FindReduction(e *elimgraph.ElimGraph, lb int, allowAlmost bool) int {
	almost := -1
	for v := 0; v < e.N(); v++ {
		if e.Eliminated(v) {
			continue
		}
		if e.IsSimplicial(v) {
			return v
		}
		if allowAlmost && almost < 0 && e.Degree(v) <= lb && e.IsAlmostSimplicial(v) {
			almost = v
		}
	}
	return almost
}

// Preprocess eliminates simplicial vertices (and, when allowAlmost is true,
// strongly almost simplicial vertices w.r.t. lb) from e until none remain.
// It returns the eliminated vertices in order and the width floor they
// impose: any elimination ordering starting with this prefix has width at
// least the maximum elimination degree seen, and some optimal ordering does
// start with it (thesis §4.4.3). The eliminations are left applied; call
// e.Reset() to undo.
func Preprocess(e *elimgraph.ElimGraph, lb int, allowAlmost bool) (prefix []int, widthFloor int) {
	for {
		v := FindReduction(e, lb, allowAlmost)
		if v < 0 {
			return prefix, widthFloor
		}
		d := e.Eliminate(v)
		if d > widthFloor {
			widthFloor = d
		}
		prefix = append(prefix, v)
	}
}
