package hypergraph

import (
	"testing"
	"testing/quick"
)

func TestAcyclicSingleEdge(t *testing.T) {
	h := NewHypergraph(3)
	h.AddEdge(0, 1, 2)
	jt, ok := BuildJoinTree(h)
	if !ok {
		t.Fatal("single edge should be acyclic")
	}
	if !VerifyJoinTree(h, jt) {
		t.Fatal("join tree invalid")
	}
}

// The thesis Figure 2.3 hypergraph is acyclic; the triangle hypergraph
// {a,b},{b,c},{c,a} is the canonical cyclic example.
func TestAcyclicTriangleIsCyclic(t *testing.T) {
	h := NewHypergraph(3)
	h.AddEdge(0, 1)
	h.AddEdge(1, 2)
	h.AddEdge(2, 0)
	if IsAcyclic(h) {
		t.Fatal("triangle should be cyclic")
	}
}

func TestAcyclicPath(t *testing.T) {
	h := NewHypergraph(4)
	h.AddEdge(0, 1)
	h.AddEdge(1, 2)
	h.AddEdge(2, 3)
	jt, ok := BuildJoinTree(h)
	if !ok {
		t.Fatal("path should be acyclic")
	}
	if !VerifyJoinTree(h, jt) {
		t.Fatal("join tree invalid")
	}
}

// A 3-cycle covered by one big edge is acyclic (the big edge absorbs it).
func TestAcyclicCoveredTriangle(t *testing.T) {
	h := NewHypergraph(3)
	h.AddEdge(0, 1)
	h.AddEdge(1, 2)
	h.AddEdge(2, 0)
	h.AddEdge(0, 1, 2)
	jt, ok := BuildJoinTree(h)
	if !ok {
		t.Fatal("covered triangle should be acyclic")
	}
	if !VerifyJoinTree(h, jt) {
		t.Fatal("join tree invalid")
	}
}

// Example 5's hypergraph ({x1,x2,x3}, {x1,x5,x6}, {x3,x4,x5}) is cyclic:
// the three edges pairwise intersect in single distinct vertices forming a
// cycle; the thesis decomposes it with width 2 precisely because it is not
// acyclic.
func TestExample5IsCyclic(t *testing.T) {
	if IsAcyclic(exampleHypergraph()) {
		t.Fatal("Example 5 hypergraph should be cyclic")
	}
}

func TestStarIsAcyclic(t *testing.T) {
	// Edges {0,1,2},{0,3},{0,4},{1,5}: tree-shaped overlaps.
	h := NewHypergraph(6)
	h.AddEdge(0, 1, 2)
	h.AddEdge(0, 3)
	h.AddEdge(0, 4)
	h.AddEdge(1, 5)
	jt, ok := BuildJoinTree(h)
	if !ok {
		t.Fatal("star should be acyclic")
	}
	if !VerifyJoinTree(h, jt) {
		t.Fatal("join tree invalid")
	}
}

func TestEmptyHypergraphAcyclic(t *testing.T) {
	h := NewHypergraph(0)
	jt, ok := BuildJoinTree(h)
	if !ok || jt.Root != -1 {
		t.Fatal("empty hypergraph should be trivially acyclic")
	}
}

func TestJoinTreeChildren(t *testing.T) {
	jt := &JoinTree{Parent: []int{2, 2, -1}, Root: 2}
	ch := jt.Children()
	if len(ch[2]) != 2 || len(ch[0]) != 0 {
		t.Fatalf("children = %v", ch)
	}
}

// Property: whenever BuildJoinTree succeeds, the tree verifies.
func TestJoinTreeAlwaysVerifiesProperty(t *testing.T) {
	f := func(seed int64) bool {
		h := RandomHypergraph(8, 6, 1, 4, seed)
		jt, ok := BuildJoinTree(h)
		if !ok {
			return true // cyclic: nothing to verify
		}
		return VerifyJoinTree(h, jt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: a hypergraph whose dual overlap structure is a tree by
// construction (edges chained, consecutive sharing one fresh vertex) is
// always acyclic.
func TestChainHypergraphAcyclicProperty(t *testing.T) {
	f := func(kRaw uint8) bool {
		k := 2 + int(kRaw%10)
		// k edges: edge i = {2i, 2i+1, 2i+2}; consecutive edges share vertex 2i+2.
		h := NewHypergraph(2*k + 1)
		for i := 0; i < k; i++ {
			h.AddEdge(2*i, 2*i+1, 2*i+2)
		}
		jt, ok := BuildJoinTree(h)
		return ok && VerifyJoinTree(h, jt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
