package hypergraph

import (
	"bytes"
	"strings"
	"testing"
)

func TestParseGr(t *testing.T) {
	src := "c comment\np tw 4 3\n1 2\n2 3\n1 4\n"
	g, err := ParseGr(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 4 || g.M() != 3 || !g.HasEdge(0, 1) || !g.HasEdge(0, 3) {
		t.Fatalf("parsed wrong: %v", g)
	}
}

func TestParseGrErrors(t *testing.T) {
	for name, src := range map[string]string{
		"no problem":    "1 2\n",
		"empty":         "",
		"wrong tag":     "p edge 2 1\n1 2\n",
		"bad endpoints": "p tw 2 1\n1 5\n",
		"malformed":     "p tw 2 1\n1 2 3\n",
		"dup problem":   "p tw 2 0\np tw 2 0\n",
	} {
		if _, err := ParseGr(strings.NewReader(src)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestGrRoundTrip(t *testing.T) {
	g := Mycielski(4)
	var buf bytes.Buffer
	if err := WriteGr(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ParseGr(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N() || g2.M() != g.M() {
		t.Fatalf("round trip changed size: %v vs %v", g2, g)
	}
	for _, e := range g.Edges() {
		if !g2.HasEdge(e[0], e[1]) {
			t.Fatalf("lost edge %v", e)
		}
	}
}
