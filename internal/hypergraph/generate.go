package hypergraph

import (
	"fmt"
	"math/rand"
	"sort"
)

// This file contains deterministic generators for the benchmark families used
// in the thesis's evaluation chapters. Families with exact mathematical
// definitions (queen, mycielski, grid) reproduce the original instances
// vertex-for-vertex. Families distributed only as data files (random DSJC/le
// classes, register-allocation graphs, ISCAS circuit hypergraphs) are
// substituted by seeded generators matching the published vertex/edge counts
// and structural class; see DESIGN.md "Substitutions".

// Grid returns the n×n grid graph. Its treewidth is n (for n >= 2).
func Grid(n int) *Graph {
	g := NewGraph(n * n)
	id := func(r, c int) int { return r*n + c }
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			if c+1 < n {
				g.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < n {
				g.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return g
}

// Queen returns the n×n queen graph: one vertex per board square, edges
// between squares sharing a row, column or diagonal. queen5_5 .. queen16_16
// in the DIMACS coloring suite are exactly these graphs.
func Queen(n int) *Graph {
	g := NewGraph(n * n)
	id := func(r, c int) int { return r*n + c }
	for r1 := 0; r1 < n; r1++ {
		for c1 := 0; c1 < n; c1++ {
			for r2 := 0; r2 < n; r2++ {
				for c2 := 0; c2 < n; c2++ {
					if r1 == r2 && c1 == c2 {
						continue
					}
					if r1 == r2 || c1 == c2 || r1-c1 == r2-c2 || r1+c1 == r2+c2 {
						g.AddEdge(id(r1, c1), id(r2, c2))
					}
				}
			}
		}
	}
	return g
}

// Mycielski returns the iterated Mycielskian myciel_k used by DIMACS:
// myciel2 = K2 (an edge), myciel3 = C5's Mycielskian (the Grötzsch graph,
// 11 vertices / 20 edges), and myciel(k+1) = Mycielskian(myciel k).
// Sizes match DIMACS: myciel3 (11,20), myciel4 (23,71), myciel5 (47,236),
// myciel6 (95,755), myciel7 (191,2360).
func Mycielski(k int) *Graph {
	if k < 2 {
		panic("hypergraph: Mycielski requires k >= 2")
	}
	g := NewGraph(2)
	g.AddEdge(0, 1)
	for i := 1; i < k; i++ { // k-1 applications: K2 → C5 → Grötzsch → …
		g = mycielskian(g)
	}
	return g
}

// mycielskian applies the Mycielski construction: for G with vertices v_i it
// adds shadow vertices u_i (u_i adjacent to N(v_i)) and an apex w adjacent to
// every u_i.
func mycielskian(g *Graph) *Graph {
	n := g.N()
	out := NewGraph(2*n + 1)
	for _, e := range g.Edges() {
		out.AddEdge(e[0], e[1])
		out.AddEdge(e[0]+n, e[1])
		out.AddEdge(e[0], e[1]+n)
	}
	w := 2 * n
	for i := 0; i < n; i++ {
		out.AddEdge(i+n, w)
	}
	return out
}

// CliqueGraph returns the complete graph K_n.
func CliqueGraph(n int) *Graph {
	g := NewGraph(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j)
		}
	}
	return g
}

// RandomGraph returns a seeded Erdős–Rényi-style graph with exactly m
// distinct edges, sampled uniformly. It substitutes for the DIMACS random
// classes (DSJC*, le450_*, school*, games120 and the book graphs), matching
// their published vertex and edge counts.
func RandomGraph(n, m int, seed int64) *Graph {
	maxM := n * (n - 1) / 2
	if m > maxM {
		panic(fmt.Sprintf("hypergraph: RandomGraph(%d, %d): too many edges (max %d)", n, m, maxM))
	}
	rng := rand.New(rand.NewSource(seed))
	g := NewGraph(n)
	for g.M() < m {
		u := rng.Intn(n)
		v := rng.Intn(n)
		g.AddEdge(u, v)
	}
	return g
}

// RandomIntervalGraph returns a seeded interval graph with n intervals whose
// lengths are drawn so the expected edge count is near m. Interval graphs are
// chordal (treewidth = max clique - 1), which mirrors the near-chordal
// register-allocation DIMACS instances (fpsol2, inithx, mulsol, zeroin) that
// exact solvers close quickly via simplicial reductions.
func RandomIntervalGraph(n, m int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	los := make([]float64, n)
	lens := make([]float64, n)
	for i := 0; i < n; i++ {
		los[i] = rng.Float64()
		lens[i] = rng.Float64()
	}
	// Edge count is monotone in a global length scale; bisect it so the
	// graph lands as close to the requested edge count as possible.
	count := func(scale float64) int {
		c := 0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if los[i] <= los[j]+lens[j]*scale && los[j] <= los[i]+lens[i]*scale {
					c++
				}
			}
		}
		return c
	}
	lo, hi := 0.0, 1.0
	for iter := 0; iter < 50; iter++ {
		mid := (lo + hi) / 2
		if count(mid) < m {
			lo = mid
		} else {
			hi = mid
		}
	}
	scale := hi
	g := NewGraph(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if los[i] <= los[j]+lens[j]*scale && los[j] <= los[i]+lens[i]*scale {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

// RandomGeometricGraph returns a seeded unit-square geometric graph: n random
// points, with an edge whenever two points are within distance r. The DIMACS
// miles* graphs are geometric (cities within driving distance); this
// substitutes for them.
func RandomGeometricGraph(n int, r float64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = rng.Float64()
		ys[i] = rng.Float64()
	}
	g := NewGraph(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dx := xs[i] - xs[j]
			dy := ys[i] - ys[j]
			if dx*dx+dy*dy <= r*r {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

// RandomGeometricGraphM returns a seeded geometric graph with approximately
// m edges: the points are drawn once from the seed, then the radius is
// bisected until the edge count is as close to m as possible. Deterministic
// for a fixed (n, m, seed).
func RandomGeometricGraphM(n, m int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = rng.Float64()
		ys[i] = rng.Float64()
	}
	count := func(r float64) int {
		c := 0
		r2 := r * r
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				dx, dy := xs[i]-xs[j], ys[i]-ys[j]
				if dx*dx+dy*dy <= r2 {
					c++
				}
			}
		}
		return c
	}
	lo, hi := 0.0, 1.5 // sqrt(2) connects everything in the unit square
	for iter := 0; iter < 40; iter++ {
		mid := (lo + hi) / 2
		if count(mid) < m {
			lo = mid
		} else {
			hi = mid
		}
	}
	g := NewGraph(n)
	r2 := hi * hi
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dx, dy := xs[i]-xs[j], ys[i]-ys[j]
			if dx*dx+dy*dy <= r2 {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

// CliqueHypergraph returns the hypergraph whose hyperedges are all 2-element
// subsets of n vertices (the CSP library's clique_n instances; clique_20 has
// 20 vertices and 190 binary hyperedges).
func CliqueHypergraph(n int) *Hypergraph {
	return FromGraph(CliqueGraph(n))
}

// Grid2D returns the CSP-library Grid2D_n hypergraph: an n×n checkerboard in
// which cells with even coordinate sum are vertices and cells with odd
// coordinate sum are hyperedges containing their (up to four) orthogonal
// neighbor cells. For even n this yields n²/2 vertices and n²/2 hyperedges
// (grid2d_20: 200 vertices, 200 edges).
func Grid2D(n int) *Hypergraph {
	return gridKD([]int{n, n})
}

// Grid3D returns the CSP-library Grid3D_n hypergraph: the same checkerboard
// construction on an n×n×n lattice (grid3d_8: 256 vertices, 256 edges).
func Grid3D(n int) *Hypergraph {
	return gridKD([]int{n, n, n})
}

// Grid4D and Grid5D extend the same construction to 4 and 5 dimensions.
func Grid4D(n int) *Hypergraph { return gridKD([]int{n, n, n, n}) }

// Grid5D returns the 5-dimensional checkerboard grid hypergraph.
func Grid5D(n int) *Hypergraph { return gridKD([]int{n, n, n, n, n}) }

// gridKD builds the checkerboard grid hypergraph over an arbitrary box.
func gridKD(dims []int) *Hypergraph {
	total := 1
	for _, d := range dims {
		total *= d
	}
	coords := make([]int, len(dims))
	// Map even-parity cells to vertex ids.
	vertexID := make(map[int]int)
	cellIndex := func(c []int) int {
		idx := 0
		for i, x := range c {
			idx = idx*dims[i] + x
		}
		return idx
	}
	parity := func(c []int) int {
		s := 0
		for _, x := range c {
			s += x
		}
		return s & 1
	}
	nv := 0
	for i := 0; i < total; i++ {
		decode(i, dims, coords)
		if parity(coords) == 0 {
			vertexID[cellIndex(coords)] = nv
			nv++
		}
	}
	h := NewHypergraph(nv)
	neighbor := make([]int, len(dims))
	for i := 0; i < total; i++ {
		decode(i, dims, coords)
		if parity(coords) != 1 {
			continue
		}
		var edge []int
		for d := range dims {
			for _, delta := range []int{-1, 1} {
				copy(neighbor, coords)
				neighbor[d] += delta
				if neighbor[d] < 0 || neighbor[d] >= dims[d] {
					continue
				}
				edge = append(edge, vertexID[cellIndex(neighbor)])
			}
		}
		if len(edge) > 0 {
			h.AddEdge(edge...)
		}
	}
	return h
}

// binomial returns C(n, k), saturating at a large value to avoid overflow.
func binomial(n, k int) int {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	result := 1
	for i := 0; i < k; i++ {
		result = result * (n - i) / (i + 1)
		if result > 1<<40 {
			return 1 << 40
		}
	}
	return result
}

func decode(i int, dims, out []int) {
	for d := len(dims) - 1; d >= 0; d-- {
		out[d] = i % dims[d]
		i /= dims[d]
	}
}

// Adder returns an n-bit ripple-carry adder constraint hypergraph with
// 5n+1 vertices (per bit: a_i, b_i, s_i, carry-in c_i; plus the final carry
// c_n) and 7n+1 hyperedges (adder_75: 376 vertices, 526 edges; adder_99:
// 496/694, matching the CSP-library counts). Each bit contributes seven
// low-arity constraints relating its inputs, sum and carries, so consecutive
// bits share only the carry variable and the family has small ghw.
func Adder(n int) *Hypergraph {
	h := NewHypergraph(5*n + 1)
	// Vertex layout: a_i = 5i, b_i = 5i+1, s_i = 5i+2, c_i = 5i+3 is not
	// used; instead carries live at offset 4: c_i = 5i+4 for i<n and the
	// final carry is vertex 5n. To keep ids dense we use:
	//   a_i=5i, b_i=5i+1, s_i=5i+2, aux_i=5i+3, c_i=5i+4, c_n=5n.
	a := func(i int) int { return 5 * i }
	b := func(i int) int { return 5*i + 1 }
	s := func(i int) int { return 5*i + 2 }
	aux := func(i int) int { return 5*i + 3 }
	c := func(i int) int {
		if i == n {
			return 5 * n
		}
		return 5*i + 4
	}
	for i := 0; i < n; i++ {
		h.AddEdge(a(i), b(i), aux(i))       // partial sum a⊕b
		h.AddEdge(aux(i), c(i), s(i))       // sum out
		h.AddEdge(a(i), b(i), c(i), c(i+1)) // carry out (majority)
		h.AddEdge(a(i), s(i), c(i))         // consistency checks
		h.AddEdge(b(i), s(i), c(i))
		h.AddEdge(aux(i), s(i), c(i+1))
		h.AddEdge(a(i), b(i), s(i))
	}
	h.AddEdge(c(0)) // carry-in pinned by a unary constraint
	return h
}

// Bridge returns the CSP-library-style bridge_n hypergraph: a chain of n
// blocks, each introducing nine fresh vertices constrained by nine hyperedges
// and linked to the next block through two shared interface vertices, plus
// two global vertices; bridge_50 has 9·50+2 = 452 vertices and 452 edges.
func Bridge(n int) *Hypergraph {
	h := NewHypergraph(9*n + 2)
	g1 := 9 * n   // global vertex shared along the chain
	g2 := 9*n + 1 // second global vertex
	base := func(i int) int { return 9 * i }
	for i := 0; i < n; i++ {
		v := base(i)
		next := v // interface into next block (or wrap to first for the last)
		if i+1 < n {
			next = base(i + 1)
		}
		h.AddEdge(v, v+1, v+2)
		h.AddEdge(v+2, v+3, v+4)
		h.AddEdge(v+4, v+5, v+6)
		h.AddEdge(v+6, v+7, v+8)
		h.AddEdge(v+8, next)    // chain link
		h.AddEdge(v+1, v+5, g1) // bridge rails
		h.AddEdge(v+3, v+7, g2)
		h.AddEdge(v, v+4, v+8)
		h.AddEdge(v+2, v+6, next)
	}
	h.AddEdge(g1, base(0))
	h.AddEdge(g2, base(n-1))
	return h
}

// RandomCircuit returns a seeded gate-level circuit hypergraph with n signal
// vertices and m gate hyperedges: each gate's hyperedge contains one output
// signal and 1–4 input signals with strictly smaller index (a DAG), mirroring
// the structure of the ISCAS b*/c* netlist benchmarks (b06, b08…c880) whose
// original files are not redistributable. Inputs are biased toward recent
// signals so the hypergraph is locally clustered like a real netlist.
func RandomCircuit(n, m int, seed int64) *Hypergraph {
	if n < 6 {
		panic("hypergraph: RandomCircuit needs at least 6 signals")
	}
	if m < (n+4)/5 {
		panic("hypergraph: RandomCircuit needs enough gates to cover every signal")
	}
	rng := rand.New(rand.NewSource(seed))
	h := NewHypergraph(n)
	seen := make(map[string]struct{})
	covered := make([]bool, n)
	addGate := func(vs []int) bool {
		sort.Ints(vs)
		key := fmt.Sprint(vs)
		if _, dup := seen[key]; dup {
			return false
		}
		seen[key] = struct{}{}
		h.AddEdge(vs...)
		for _, v := range vs {
			covered[v] = true
		}
		return true
	}
	// Phase 1: cover every signal. Each gate's output is the highest
	// uncovered signal, its inputs prefer uncovered lower signals, so the
	// sweep needs roughly n/5 gates.
	for {
		u := -1
		for v := n - 1; v >= 0; v-- {
			if !covered[v] {
				u = v
				break
			}
		}
		if u < 0 {
			break
		}
		var out int
		var inputsFrom int
		if u >= 5 {
			out = u
			inputsFrom = u
		} else {
			// Remaining uncovered signals are primary inputs: feed them into
			// a gate with an arbitrary higher output.
			out = 5 + rng.Intn(n-5)
			inputsFrom = 5
		}
		edge := map[int]struct{}{out: {}}
		const sweepFanin = 4 // wide gates keep the covering sweep short
		for v := inputsFrom - 1; v >= 0 && len(edge) < sweepFanin+1; v-- {
			if !covered[v] {
				edge[v] = struct{}{}
			}
		}
		for len(edge) < sweepFanin+1 && len(edge) < inputsFrom+1 {
			edge[rng.Intn(inputsFrom)] = struct{}{}
		}
		vs := make([]int, 0, len(edge))
		for v := range edge {
			vs = append(vs, v)
		}
		if !addGate(vs) {
			continue // duplicate; re-roll
		}
		if h.M() > m {
			panic("hypergraph: RandomCircuit covering sweep exceeded the edge budget")
		}
	}
	// Phase 2: random locally-clustered gates up to the edge budget.
	for h.M() < m {
		out := 5 + rng.Intn(n-5) // first 5 signals are primary inputs
		fanin := 1 + rng.Intn(4)
		edge := map[int]struct{}{out: {}}
		for len(edge) < fanin+1 {
			// Locality bias: half the inputs come from the 16 preceding
			// signals, the rest from anywhere below out.
			var in int
			if rng.Intn(2) == 0 && out > 16 {
				in = out - 1 - rng.Intn(16)
			} else {
				in = rng.Intn(out)
			}
			edge[in] = struct{}{}
		}
		vs := make([]int, 0, len(edge))
		for v := range edge {
			vs = append(vs, v)
		}
		addGate(vs)
	}
	return h
}

// RandomHypergraph returns a seeded hypergraph with n vertices and m edges of
// arity between minArity and maxArity, each edge a uniform random subset.
func RandomHypergraph(n, m, minArity, maxArity int, seed int64) *Hypergraph {
	if minArity < 1 || maxArity < minArity || maxArity > n {
		panic("hypergraph: bad arity bounds")
	}
	// Guard against asking for more distinct edges than exist.
	capacity := 0
	for k := minArity; k <= maxArity; k++ {
		capacity += binomial(n, k)
		if capacity >= m {
			break
		}
	}
	if capacity < m {
		panic(fmt.Sprintf("hypergraph: RandomHypergraph(%d, %d, %d, %d): only %d distinct edges exist",
			n, m, minArity, maxArity, capacity))
	}
	rng := rand.New(rand.NewSource(seed))
	h := NewHypergraph(n)
	seen := make(map[string]struct{})
	for h.M() < m {
		k := minArity + rng.Intn(maxArity-minArity+1)
		edge := make(map[int]struct{}, k)
		for len(edge) < k {
			edge[rng.Intn(n)] = struct{}{}
		}
		vs := make([]int, 0, k)
		for v := range edge {
			vs = append(vs, v)
		}
		sort.Ints(vs)
		key := fmt.Sprint(vs)
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		h.AddEdge(vs...)
	}
	return h
}
