// Package hypergraph provides the graph and hypergraph data structures that
// underlie tree decompositions and generalized hypertree decompositions,
// together with parsers, writers and deterministic benchmark-instance
// generators.
//
// Vertices are identified by dense integer indices 0..n-1. Optional string
// names may be attached for I/O; all algorithms operate on indices only.
package hypergraph

import (
	"fmt"
	"sort"
)

// Graph is a simple undirected graph on vertices 0..n-1. Self-loops and
// parallel edges are not stored. The zero value is an empty graph with no
// vertices.
type Graph struct {
	n     int
	adj   []map[int]struct{}
	edges int
	names []string
}

// NewGraph returns an empty graph with n vertices and no edges.
func NewGraph(n int) *Graph {
	if n < 0 {
		panic("hypergraph: negative vertex count")
	}
	g := &Graph{n: n, adj: make([]map[int]struct{}, n)}
	for i := range g.adj {
		g.adj[i] = make(map[int]struct{})
	}
	return g
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return g.edges }

// AddEdge inserts the undirected edge {u, v}. Inserting an existing edge or a
// self-loop is a no-op. It reports whether a new edge was added.
func (g *Graph) AddEdge(u, v int) bool {
	g.check(u)
	g.check(v)
	if u == v {
		return false
	}
	if _, ok := g.adj[u][v]; ok {
		return false
	}
	g.adj[u][v] = struct{}{}
	g.adj[v][u] = struct{}{}
	g.edges++
	return true
}

// RemoveEdge deletes the undirected edge {u, v} if present and reports
// whether an edge was removed.
func (g *Graph) RemoveEdge(u, v int) bool {
	g.check(u)
	g.check(v)
	if _, ok := g.adj[u][v]; !ok {
		return false
	}
	delete(g.adj[u], v)
	delete(g.adj[v], u)
	g.edges--
	return true
}

// HasEdge reports whether {u, v} is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	g.check(u)
	g.check(v)
	_, ok := g.adj[u][v]
	return ok
}

// Degree returns the number of neighbors of v.
func (g *Graph) Degree(v int) int {
	g.check(v)
	return len(g.adj[v])
}

// Neighbors returns the neighbors of v in ascending order. The returned
// slice is freshly allocated.
func (g *Graph) Neighbors(v int) []int {
	g.check(v)
	out := make([]int, 0, len(g.adj[v]))
	for u := range g.adj[v] {
		out = append(out, u)
	}
	sort.Ints(out)
	return out
}

// EachNeighbor calls fn for every neighbor of v in unspecified order.
func (g *Graph) EachNeighbor(v int, fn func(u int)) {
	g.check(v)
	for u := range g.adj[v] {
		fn(u)
	}
}

// Edges returns all edges as ordered pairs (u < v), sorted lexicographically.
func (g *Graph) Edges() [][2]int {
	out := make([][2]int, 0, g.edges)
	for u := 0; u < g.n; u++ {
		for v := range g.adj[u] {
			if u < v {
				out = append(out, [2]int{u, v})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := NewGraph(g.n)
	for u := 0; u < g.n; u++ {
		for v := range g.adj[u] {
			c.adj[u][v] = struct{}{}
		}
	}
	c.edges = g.edges
	if g.names != nil {
		c.names = append([]string(nil), g.names...)
	}
	return c
}

// SetName attaches a display name to vertex v.
func (g *Graph) SetName(v int, name string) {
	g.check(v)
	if g.names == nil {
		g.names = make([]string, g.n)
	}
	g.names[v] = name
}

// Name returns the display name of v, or its decimal index if unnamed.
func (g *Graph) Name(v int) string {
	g.check(v)
	if g.names != nil && g.names[v] != "" {
		return g.names[v]
	}
	return fmt.Sprintf("%d", v)
}

// IsClique reports whether every pair of the given vertices is adjacent.
func (g *Graph) IsClique(vs []int) bool {
	for i := 0; i < len(vs); i++ {
		for j := i + 1; j < len(vs); j++ {
			if !g.HasEdge(vs[i], vs[j]) {
				return false
			}
		}
	}
	return true
}

// Complete turns the given vertex set into a clique, adding any missing
// edges, and returns the number of edges added.
func (g *Graph) Complete(vs []int) int {
	added := 0
	for i := 0; i < len(vs); i++ {
		for j := i + 1; j < len(vs); j++ {
			if g.AddEdge(vs[i], vs[j]) {
				added++
			}
		}
	}
	return added
}

// Connected reports whether the graph is connected. The empty graph and the
// one-vertex graph are connected.
func (g *Graph) Connected() bool {
	if g.n <= 1 {
		return true
	}
	seen := make([]bool, g.n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for u := range g.adj[v] {
			if !seen[u] {
				seen[u] = true
				count++
				stack = append(stack, u)
			}
		}
	}
	return count == g.n
}

// Components returns the connected components as sorted vertex slices,
// ordered by smallest contained vertex.
func (g *Graph) Components() [][]int {
	seen := make([]bool, g.n)
	var comps [][]int
	for s := 0; s < g.n; s++ {
		if seen[s] {
			continue
		}
		var comp []int
		stack := []int{s}
		seen[s] = true
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, v)
			for u := range g.adj[v] {
				if !seen[u] {
					seen[u] = true
					stack = append(stack, u)
				}
			}
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	return comps
}

func (g *Graph) check(v int) {
	if v < 0 || v >= g.n {
		panic(fmt.Sprintf("hypergraph: vertex %d out of range [0,%d)", v, g.n))
	}
}

// String returns a short human-readable summary.
func (g *Graph) String() string {
	return fmt.Sprintf("Graph(n=%d, m=%d)", g.n, g.edges)
}
