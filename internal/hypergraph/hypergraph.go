package hypergraph

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Hypergraph is a finite hypergraph on vertices 0..n-1. Hyperedges are stored
// as sorted vertex slices; duplicate edges are permitted by the type but the
// constructors used in this repository never emit them.
//
// Concurrency: mutation (AddEdge, Set*Name) is not safe for concurrent use,
// but all read methods are — including the first IncidentEdges call, which
// builds its index under a lock. The SAIGA islands share one hypergraph
// across goroutines and rely on this.
type Hypergraph struct {
	n      int
	edges  [][]int
	vnames []string
	enames []string

	incidentMu sync.Mutex
	incidentOK atomic.Bool
	incident   [][]int // incident[v] = indices of edges containing v
}

// NewHypergraph returns a hypergraph with n vertices and no edges.
func NewHypergraph(n int) *Hypergraph {
	if n < 0 {
		panic("hypergraph: negative vertex count")
	}
	return &Hypergraph{n: n}
}

// N returns the number of vertices.
func (h *Hypergraph) N() int { return h.n }

// M returns the number of hyperedges.
func (h *Hypergraph) M() int { return len(h.edges) }

// AddEdge appends a hyperedge over the given vertices and returns its index.
// The vertex set is copied, deduplicated and sorted. Empty edges are allowed
// by the representation but rejected here because no thesis algorithm is
// defined over them.
func (h *Hypergraph) AddEdge(vs ...int) int {
	if len(vs) == 0 {
		panic("hypergraph: empty hyperedge")
	}
	seen := make(map[int]struct{}, len(vs))
	edge := make([]int, 0, len(vs))
	for _, v := range vs {
		h.check(v)
		if _, dup := seen[v]; dup {
			continue
		}
		seen[v] = struct{}{}
		edge = append(edge, v)
	}
	sort.Ints(edge)
	h.edges = append(h.edges, edge)
	h.incidentOK.Store(false)
	return len(h.edges) - 1
}

// Edge returns the vertices of edge e in ascending order. The slice is owned
// by the hypergraph and must not be mutated.
func (h *Hypergraph) Edge(e int) []int {
	if e < 0 || e >= len(h.edges) {
		panic(fmt.Sprintf("hypergraph: edge %d out of range [0,%d)", e, len(h.edges)))
	}
	return h.edges[e]
}

// Edges returns all hyperedges. The outer slice is freshly allocated; the
// inner slices are owned by the hypergraph.
func (h *Hypergraph) Edges() [][]int {
	out := make([][]int, len(h.edges))
	copy(out, h.edges)
	return out
}

// EdgeContains reports whether edge e contains vertex v.
func (h *Hypergraph) EdgeContains(e, v int) bool {
	edge := h.Edge(e)
	i := sort.SearchInts(edge, v)
	return i < len(edge) && edge[i] == v
}

// IncidentEdges returns the indices of all edges containing v, ascending.
// The result is cached; the returned slice must not be mutated.
func (h *Hypergraph) IncidentEdges(v int) []int {
	h.check(v)
	// Double-checked lazy build: concurrent readers (SAIGA islands) may all
	// arrive before the index exists; exactly one builds it, and the atomic
	// flag is only set after the slice is fully populated.
	if !h.incidentOK.Load() {
		h.incidentMu.Lock()
		if !h.incidentOK.Load() {
			incident := make([][]int, h.n)
			for e, edge := range h.edges {
				for _, u := range edge {
					incident[u] = append(incident[u], e)
				}
			}
			h.incident = incident
			h.incidentOK.Store(true)
		}
		h.incidentMu.Unlock()
	}
	return h.incident[v]
}

// VertexDegree returns the number of hyperedges containing v.
func (h *Hypergraph) VertexDegree(v int) int { return len(h.IncidentEdges(v)) }

// MaxArity returns the size of the largest hyperedge (0 for no edges).
func (h *Hypergraph) MaxArity() int {
	max := 0
	for _, e := range h.edges {
		if len(e) > max {
			max = len(e)
		}
	}
	return max
}

// PrimalGraph returns the Gaifman (primal) graph: same vertices, with an
// edge between every pair of vertices that co-occur in some hyperedge.
func (h *Hypergraph) PrimalGraph() *Graph {
	g := NewGraph(h.n)
	for _, edge := range h.edges {
		g.Complete(edge)
	}
	if h.vnames != nil {
		for v, name := range h.vnames {
			if name != "" {
				g.SetName(v, name)
			}
		}
	}
	return g
}

// DualGraph returns the dual graph: one vertex per hyperedge, with an edge
// between two hyperedges iff they share at least one vertex.
func (h *Hypergraph) DualGraph() *Graph {
	g := NewGraph(len(h.edges))
	for v := 0; v < h.n; v++ {
		inc := h.IncidentEdges(v)
		for i := 0; i < len(inc); i++ {
			for j := i + 1; j < len(inc); j++ {
				g.AddEdge(inc[i], inc[j])
			}
		}
	}
	return g
}

// Clone returns a deep copy of the hypergraph.
func (h *Hypergraph) Clone() *Hypergraph {
	c := NewHypergraph(h.n)
	c.edges = make([][]int, len(h.edges))
	for i, e := range h.edges {
		c.edges[i] = append([]int(nil), e...)
	}
	if h.vnames != nil {
		c.vnames = append([]string(nil), h.vnames...)
	}
	if h.enames != nil {
		c.enames = append([]string(nil), h.enames...)
	}
	return c
}

// SetVertexName attaches a display name to vertex v.
func (h *Hypergraph) SetVertexName(v int, name string) {
	h.check(v)
	if h.vnames == nil {
		h.vnames = make([]string, h.n)
	}
	h.vnames[v] = name
}

// VertexName returns the display name of v, or its decimal index if unnamed.
func (h *Hypergraph) VertexName(v int) string {
	h.check(v)
	if h.vnames != nil && h.vnames[v] != "" {
		return h.vnames[v]
	}
	return fmt.Sprintf("%d", v)
}

// SetEdgeName attaches a display name to edge e.
func (h *Hypergraph) SetEdgeName(e int, name string) {
	h.Edge(e) // bounds check
	if h.enames == nil {
		h.enames = make([]string, 0)
	}
	for len(h.enames) <= e {
		h.enames = append(h.enames, "")
	}
	h.enames[e] = name
}

// EdgeName returns the display name of e, or "e<index>" if unnamed.
func (h *Hypergraph) EdgeName(e int) string {
	h.Edge(e) // bounds check
	if e < len(h.enames) && h.enames[e] != "" {
		return h.enames[e]
	}
	return fmt.Sprintf("e%d", e)
}

// FromGraph converts a simple graph into the hypergraph whose hyperedges are
// exactly the graph's 2-element edges.
func FromGraph(g *Graph) *Hypergraph {
	h := NewHypergraph(g.N())
	for _, e := range g.Edges() {
		h.AddEdge(e[0], e[1])
	}
	for v := 0; v < g.N(); v++ {
		if g.names != nil && g.names[v] != "" {
			h.SetVertexName(v, g.names[v])
		}
	}
	return h
}

// CoversAllVertices reports whether every vertex appears in some hyperedge.
// Isolated vertices are legal but trivial for decomposition purposes.
func (h *Hypergraph) CoversAllVertices() bool {
	covered := make([]bool, h.n)
	for _, e := range h.edges {
		for _, v := range e {
			covered[v] = true
		}
	}
	for _, c := range covered {
		if !c {
			return false
		}
	}
	return true
}

func (h *Hypergraph) check(v int) {
	if v < 0 || v >= h.n {
		panic(fmt.Sprintf("hypergraph: vertex %d out of range [0,%d)", v, h.n))
	}
}

// String returns a short human-readable summary.
func (h *Hypergraph) String() string {
	return fmt.Sprintf("Hypergraph(n=%d, m=%d, maxArity=%d)", h.n, len(h.edges), h.MaxArity())
}
