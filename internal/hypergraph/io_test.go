package hypergraph

import (
	"bytes"
	"strings"
	"testing"
)

func TestParseDIMACS(t *testing.T) {
	src := `c a comment
p edge 4 3
e 1 2
e 2 3
e 1 4
`
	g, err := ParseDIMACS(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 4 || g.M() != 3 {
		t.Fatalf("n=%d m=%d", g.N(), g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 2) || !g.HasEdge(0, 3) {
		t.Fatal("edges wrong")
	}
}

func TestParseDIMACSErrors(t *testing.T) {
	for name, src := range map[string]string{
		"no problem line":   "e 1 2\n",
		"empty":             "",
		"bad record":        "p edge 2 1\nx 1 2\n",
		"out of range":      "p edge 2 1\ne 1 3\n",
		"malformed edge":    "p edge 2 1\ne 1\n",
		"duplicate problem": "p edge 2 0\np edge 2 0\n",
	} {
		if _, err := ParseDIMACS(strings.NewReader(src)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestDIMACSRoundTrip(t *testing.T) {
	g := Queen(5)
	var buf bytes.Buffer
	if err := WriteDIMACS(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ParseDIMACS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N() || g2.M() != g.M() {
		t.Fatalf("round trip changed size: %v vs %v", g2, g)
	}
	for _, e := range g.Edges() {
		if !g2.HasEdge(e[0], e[1]) {
			t.Fatalf("round trip lost edge %v", e)
		}
	}
}

func TestParseHG(t *testing.T) {
	src := `% the thesis Example 5 hypergraph
c1(x1,x2,x3),
c2(x1,x5,x6),
c3(x3,x4,x5).
`
	h, err := ParseHG(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if h.N() != 6 || h.M() != 3 {
		t.Fatalf("n=%d m=%d", h.N(), h.M())
	}
	if h.VertexName(0) != "x1" || h.EdgeName(0) != "c1" {
		t.Fatalf("names: %q %q", h.VertexName(0), h.EdgeName(0))
	}
	// x3 appears in c1 (3rd position) and c3.
	x3 := -1
	for v := 0; v < h.N(); v++ {
		if h.VertexName(v) == "x3" {
			x3 = v
		}
	}
	if x3 < 0 || h.VertexDegree(x3) != 2 {
		t.Fatalf("x3 incident edges wrong")
	}
}

func TestParseHGErrors(t *testing.T) {
	for name, src := range map[string]string{
		"missing paren": "c1 x1,x2.",
		"unterminated":  "c1(x1,x2",
		"empty var":     "c1(x1,,x2).",
	} {
		if _, err := ParseHG(strings.NewReader(src)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestHGRoundTrip(t *testing.T) {
	h := Adder(3)
	var buf bytes.Buffer
	if err := WriteHG(&buf, h); err != nil {
		t.Fatal(err)
	}
	h2, err := ParseHG(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h2.N() != h.N() || h2.M() != h.M() {
		t.Fatalf("round trip changed size: %v vs %v", h2, h)
	}
	for e := 0; e < h.M(); e++ {
		if len(h2.Edge(e)) != len(h.Edge(e)) {
			t.Fatalf("edge %d arity changed", e)
		}
	}
}

func TestParseEdgeList(t *testing.T) {
	src := "# comment\n0 1 2\n\n2 3\n"
	h, err := ParseEdgeList(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if h.N() != 4 || h.M() != 2 {
		t.Fatalf("n=%d m=%d", h.N(), h.M())
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	h := Grid2D(6)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, h); err != nil {
		t.Fatal(err)
	}
	h2, err := ParseEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h2.N() != h.N() || h2.M() != h.M() {
		t.Fatalf("round trip changed size")
	}
}

func TestFormatEdge(t *testing.T) {
	h := NewHypergraph(3)
	h.SetVertexName(0, "a")
	h.SetVertexName(1, "b")
	e := h.AddEdge(1, 0)
	if got := FormatEdge(h, e); got != "{a, b}" {
		t.Fatalf("FormatEdge = %q", got)
	}
}
