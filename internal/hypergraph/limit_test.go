package hypergraph

import (
	"errors"
	"io"
	"strings"
	"testing"
)

func TestLimitReaderUnderLimit(t *testing.T) {
	data, err := io.ReadAll(LimitReader(strings.NewReader("hello"), 10))
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "hello" {
		t.Fatalf("got %q", data)
	}
}

func TestLimitReaderExactLimit(t *testing.T) {
	data, err := io.ReadAll(LimitReader(strings.NewReader("hello"), 5))
	if err != nil {
		t.Fatalf("payload of exactly the limit must pass: %v", err)
	}
	if string(data) != "hello" {
		t.Fatalf("got %q", data)
	}
}

func TestLimitReaderOverLimit(t *testing.T) {
	_, err := io.ReadAll(LimitReader(strings.NewReader("hello world"), 5))
	var tooBig *PayloadTooLargeError
	if !errors.As(err, &tooBig) {
		t.Fatalf("want *PayloadTooLargeError, got %v", err)
	}
	if tooBig.Limit != 5 {
		t.Fatalf("limit = %d, want 5", tooBig.Limit)
	}
}

func TestLimitReaderUnlimited(t *testing.T) {
	data, err := io.ReadAll(LimitReader(strings.NewReader("hello"), 0))
	if err != nil || string(data) != "hello" {
		t.Fatalf("non-positive limit must pass through: %q, %v", data, err)
	}
}

// oneByteReader drips one byte per Read so the capped reader's boundary
// logic is exercised across many short reads, not one big one.
type oneByteReader struct{ s string }

func (r *oneByteReader) Read(p []byte) (int, error) {
	if len(r.s) == 0 {
		return 0, io.EOF
	}
	p[0] = r.s[0]
	r.s = r.s[1:]
	return 1, nil
}

func TestLimitReaderShortReads(t *testing.T) {
	data, err := io.ReadAll(LimitReader(&oneByteReader{s: "abcde"}, 5))
	if err != nil || string(data) != "abcde" {
		t.Fatalf("exact-limit drip: %q, %v", data, err)
	}
	_, err = io.ReadAll(LimitReader(&oneByteReader{s: "abcdef"}, 5))
	var tooBig *PayloadTooLargeError
	if !errors.As(err, &tooBig) {
		t.Fatalf("over-limit drip: want *PayloadTooLargeError, got %v", err)
	}
}

// TestParsersRejectOversizePayload proves the shared cap is wired into every
// parser entry point: a reader that would stream forever fails with the
// typed error instead of exhausting memory. The parsers are fed through an
// extra LimitReader with a small bound the same way the daemon caps request
// bodies, so the test stays fast.
func TestParsersRejectOversizePayload(t *testing.T) {
	const cap = 1 << 10
	parsers := []struct {
		name  string
		parse func(io.Reader) error
		body  func() io.Reader
	}{
		{"hg", func(r io.Reader) error { _, err := ParseHG(r); return err },
			func() io.Reader { return strings.NewReader("e(" + strings.Repeat("x,", cap) + "y).") }},
		{"dimacs", func(r io.Reader) error { _, err := ParseDIMACS(r); return err },
			func() io.Reader { return strings.NewReader("p edge 2 1\n" + strings.Repeat("e 1 2\n", cap)) }},
		{"gr", func(r io.Reader) error { _, err := ParseGr(r); return err },
			func() io.Reader { return strings.NewReader("p tw 2 1\n" + strings.Repeat("1 2\n", cap)) }},
		{"edgelist", func(r io.Reader) error { _, err := ParseEdgeList(r); return err },
			func() io.Reader { return strings.NewReader(strings.Repeat("0 1\n", cap)) }},
	}
	for _, p := range parsers {
		t.Run(p.name, func(t *testing.T) {
			err := p.parse(LimitReader(p.body(), cap))
			var tooBig *PayloadTooLargeError
			if !errors.As(err, &tooBig) {
				t.Fatalf("want *PayloadTooLargeError through %s parser, got %v", p.name, err)
			}
		})
	}
}
