package hypergraph

import "sort"

// JoinTree is a join tree of a hypergraph: one node per hyperedge, with tree
// edges between nodes, satisfying the connectedness condition (for every
// vertex, the hyperedges containing it induce a subtree).
type JoinTree struct {
	// Parent[i] is the parent edge-index of hyperedge i, or -1 for the root.
	Parent []int
	// Root is the hyperedge index at the root.
	Root int
}

// Children returns, for each node, the list of its children.
func (t *JoinTree) Children() [][]int {
	ch := make([][]int, len(t.Parent))
	for i, p := range t.Parent {
		if p >= 0 {
			ch[p] = append(ch[p], i)
		}
	}
	return ch
}

// IsAcyclic reports whether the hypergraph is α-acyclic, using the
// GYO (Graham / Yu–Özsoyoğlu) reduction: repeatedly remove vertices that
// occur in at most one edge and edges contained in other edges. The
// hypergraph is acyclic iff the reduction erases every edge.
func IsAcyclic(h *Hypergraph) bool {
	_, ok := BuildJoinTree(h)
	return ok
}

// BuildJoinTree attempts to build a join tree via GYO reduction. It returns
// (tree, true) when the hypergraph is α-acyclic and (nil, false) otherwise.
//
// During the reduction, when edge e becomes a subset of a live edge f, e is
// removed and attached as a child of f; the last surviving edge becomes the
// root. The connectedness condition holds by construction: an ear's private
// vertices occur nowhere else, and its shared vertices are all in its parent.
func BuildJoinTree(h *Hypergraph) (*JoinTree, bool) {
	m := h.M()
	if m == 0 {
		return &JoinTree{Parent: nil, Root: -1}, true
	}
	// Live copies of edges as sets.
	edges := make([]map[int]struct{}, m)
	for i := 0; i < m; i++ {
		s := make(map[int]struct{}, len(h.Edge(i)))
		for _, v := range h.Edge(i) {
			s[v] = struct{}{}
		}
		edges[i] = s
	}
	// occ[v] = number of live edges containing v.
	occ := make(map[int]int)
	for _, s := range edges {
		for v := range s {
			occ[v]++
		}
	}
	alive := make([]bool, m)
	for i := range alive {
		alive[i] = true
	}
	parent := make([]int, m)
	for i := range parent {
		parent[i] = -1
	}
	liveCount := m

	for {
		changed := false
		// Remove vertices occurring in exactly one live edge.
		for i := 0; i < m; i++ {
			if !alive[i] {
				continue
			}
			for v := range edges[i] {
				if occ[v] == 1 {
					delete(edges[i], v)
					delete(occ, v)
					changed = true
				}
			}
		}
		// Remove edges contained in another live edge (ears).
		for i := 0; i < m && liveCount > 1; i++ {
			if !alive[i] {
				continue
			}
			for j := 0; j < m; j++ {
				if i == j || !alive[j] {
					continue
				}
				if subsetOf(edges[i], edges[j]) {
					// Prefer attaching to the original (un-reduced) containing
					// edge for a cleaner tree; j works because reduction only
					// shrinks sets.
					alive[i] = false
					parent[i] = j
					for v := range edges[i] {
						occ[v]--
					}
					liveCount--
					changed = true
					break
				}
			}
		}
		if liveCount == 1 {
			root := -1
			for i := 0; i < m; i++ {
				if alive[i] {
					root = i
				}
			}
			// Path-compress parents onto live ancestry: parents recorded
			// during reduction always point to edges alive at that moment,
			// which may die later; walk up to the final structure.
			return &JoinTree{Parent: parent, Root: root}, true
		}
		if !changed {
			return nil, false
		}
	}
}

func subsetOf(a, b map[int]struct{}) bool {
	if len(a) > len(b) {
		return false
	}
	for v := range a {
		if _, ok := b[v]; !ok {
			return false
		}
	}
	return true
}

// VerifyJoinTree checks that t is a valid join tree for h: it is a tree over
// all hyperedges and satisfies the connectedness condition.
func VerifyJoinTree(h *Hypergraph, t *JoinTree) bool {
	m := h.M()
	if m == 0 {
		return t.Root == -1 && len(t.Parent) == 0
	}
	if len(t.Parent) != m || t.Root < 0 || t.Root >= m || t.Parent[t.Root] != -1 {
		return false
	}
	// Every non-root node has a parent and the structure is acyclic and
	// connected (i.e., walking parents from any node reaches the root).
	for i := 0; i < m; i++ {
		seen := make(map[int]struct{})
		v := i
		for v != t.Root {
			if _, loop := seen[v]; loop {
				return false
			}
			seen[v] = struct{}{}
			p := t.Parent[v]
			if p < 0 || p >= m {
				return false
			}
			v = p
		}
	}
	// Connectedness: for each vertex, edges containing it induce a subtree.
	// Equivalent check: for each vertex v, the set S of nodes containing v is
	// connected in the tree. We test it by counting nodes of S whose parent is
	// also in S: a subtree has exactly |S|-1 such nodes.
	for v := 0; v < h.N(); v++ {
		inS := make(map[int]struct{})
		for _, e := range h.IncidentEdges(v) {
			inS[e] = struct{}{}
		}
		if len(inS) == 0 {
			continue
		}
		withParentIn := 0
		for e := range inS {
			if p := t.Parent[e]; p >= 0 {
				if _, ok := inS[p]; ok {
					withParentIn++
				}
			}
		}
		if withParentIn != len(inS)-1 {
			return false
		}
	}
	return true
}

// SortedVertices returns the union of all hyperedge vertex sets in ascending
// order.
func SortedVertices(sets ...[]int) []int {
	seen := make(map[int]struct{})
	for _, s := range sets {
		for _, v := range s {
			seen[v] = struct{}{}
		}
	}
	out := make([]int, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}
