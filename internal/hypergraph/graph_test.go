package hypergraph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewGraphEmpty(t *testing.T) {
	g := NewGraph(5)
	if g.N() != 5 || g.M() != 0 {
		t.Fatalf("got n=%d m=%d, want 5, 0", g.N(), g.M())
	}
	for v := 0; v < 5; v++ {
		if g.Degree(v) != 0 {
			t.Errorf("vertex %d degree = %d, want 0", v, g.Degree(v))
		}
	}
}

func TestAddEdgeIdempotentAndSymmetric(t *testing.T) {
	g := NewGraph(4)
	if !g.AddEdge(0, 1) {
		t.Fatal("first AddEdge returned false")
	}
	if g.AddEdge(1, 0) {
		t.Fatal("duplicate AddEdge returned true")
	}
	if g.AddEdge(2, 2) {
		t.Fatal("self-loop AddEdge returned true")
	}
	if g.M() != 1 {
		t.Fatalf("M = %d, want 1", g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("edge not symmetric")
	}
}

func TestRemoveEdge(t *testing.T) {
	g := NewGraph(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	if !g.RemoveEdge(1, 0) {
		t.Fatal("RemoveEdge existing returned false")
	}
	if g.RemoveEdge(0, 1) {
		t.Fatal("RemoveEdge missing returned true")
	}
	if g.M() != 1 || g.HasEdge(0, 1) {
		t.Fatal("edge not removed")
	}
}

func TestNeighborsSorted(t *testing.T) {
	g := NewGraph(5)
	g.AddEdge(2, 4)
	g.AddEdge(2, 0)
	g.AddEdge(2, 3)
	ns := g.Neighbors(2)
	want := []int{0, 3, 4}
	if len(ns) != len(want) {
		t.Fatalf("neighbors = %v, want %v", ns, want)
	}
	for i := range ns {
		if ns[i] != want[i] {
			t.Fatalf("neighbors = %v, want %v", ns, want)
		}
	}
}

func TestEdgesSortedPairs(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(3, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 0)
	es := g.Edges()
	want := [][2]int{{0, 1}, {0, 2}, {1, 3}}
	if len(es) != len(want) {
		t.Fatalf("edges = %v, want %v", es, want)
	}
	for i := range es {
		if es[i] != want[i] {
			t.Fatalf("edges = %v, want %v", es, want)
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	g := NewGraph(3)
	g.AddEdge(0, 1)
	c := g.Clone()
	c.AddEdge(1, 2)
	if g.HasEdge(1, 2) {
		t.Fatal("mutating clone affected original")
	}
	if !c.HasEdge(0, 1) {
		t.Fatal("clone lost edge")
	}
}

func TestCliqueAndComplete(t *testing.T) {
	g := NewGraph(4)
	vs := []int{0, 1, 3}
	if g.IsClique(vs) {
		t.Fatal("empty graph reported clique on 3 vertices")
	}
	added := g.Complete(vs)
	if added != 3 {
		t.Fatalf("Complete added %d edges, want 3", added)
	}
	if !g.IsClique(vs) {
		t.Fatal("Complete did not form clique")
	}
	if g.Complete(vs) != 0 {
		t.Fatal("second Complete added edges")
	}
	// Singleton and empty sets are trivially cliques.
	if !g.IsClique(nil) || !g.IsClique([]int{2}) {
		t.Fatal("trivial sets not cliques")
	}
}

func TestConnectedAndComponents(t *testing.T) {
	g := NewGraph(6)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(3, 4)
	if g.Connected() {
		t.Fatal("disconnected graph reported connected")
	}
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("components = %v, want 3 of them", comps)
	}
	if len(comps[0]) != 3 || len(comps[1]) != 2 || len(comps[2]) != 1 {
		t.Fatalf("components sizes wrong: %v", comps)
	}
	g.AddEdge(2, 3)
	g.AddEdge(4, 5)
	if !g.Connected() {
		t.Fatal("connected graph reported disconnected")
	}
}

func TestNames(t *testing.T) {
	g := NewGraph(2)
	if g.Name(1) != "1" {
		t.Fatalf("default name = %q", g.Name(1))
	}
	g.SetName(1, "WA")
	if g.Name(1) != "WA" {
		t.Fatalf("name = %q, want WA", g.Name(1))
	}
}

func TestGraphPanicsOutOfRange(t *testing.T) {
	g := NewGraph(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range vertex")
		}
	}()
	g.AddEdge(0, 2)
}

// Property: for random graphs, the degree sum equals twice the edge count.
func TestDegreeSumProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		m := rng.Intn(n * (n - 1) / 2)
		g := RandomGraph(n, m, seed)
		sum := 0
		for v := 0; v < n; v++ {
			sum += g.Degree(v)
		}
		return sum == 2*g.M() && g.M() == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Edges() returns each edge exactly once with u < v.
func TestEdgesCanonicalProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := RandomGraph(12, 30, seed)
		es := g.Edges()
		if len(es) != g.M() {
			return false
		}
		seen := make(map[[2]int]bool)
		for _, e := range es {
			if e[0] >= e[1] || seen[e] || !g.HasEdge(e[0], e[1]) {
				return false
			}
			seen[e] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
