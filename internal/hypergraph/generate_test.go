package hypergraph

import "testing"

func TestGridSizes(t *testing.T) {
	for _, tc := range []struct{ n, wantV, wantE int }{
		{2, 4, 4},
		{3, 9, 12},
		{4, 16, 24},
		{5, 25, 40},
		{8, 64, 112},
	} {
		g := Grid(tc.n)
		if g.N() != tc.wantV || g.M() != tc.wantE {
			t.Errorf("Grid(%d): n=%d m=%d, want %d, %d", tc.n, g.N(), g.M(), tc.wantV, tc.wantE)
		}
	}
}

// Queen graph sizes. The thesis tables report the DIMACS file line counts
// (each edge listed in both directions): queen5_5 "320", queen6_6 "580",
// queen7_7 "952", queen8_8 "1456". As undirected graphs these have exactly
// half that many edges.
func TestQueenSizesMatchDIMACS(t *testing.T) {
	for _, tc := range []struct{ n, wantV, wantE int }{
		{5, 25, 160},
		{6, 36, 290},
		{7, 49, 476},
		{8, 64, 728},
	} {
		g := Queen(tc.n)
		if g.N() != tc.wantV || g.M() != tc.wantE {
			t.Errorf("Queen(%d): n=%d m=%d, want %d, %d", tc.n, g.N(), g.M(), tc.wantV, tc.wantE)
		}
	}
}

// Mycielski sizes from thesis Table 5.1/6.6: myciel3 (11,20), myciel4
// (23,71), myciel5 (47,236), myciel6 (95,755), myciel7 (191,2360).
func TestMycielskiSizesMatchDIMACS(t *testing.T) {
	for _, tc := range []struct{ k, wantV, wantE int }{
		{3, 11, 20},
		{4, 23, 71},
		{5, 47, 236},
		{6, 95, 755},
		{7, 191, 2360},
	} {
		g := Mycielski(tc.k)
		if g.N() != tc.wantV || g.M() != tc.wantE {
			t.Errorf("Mycielski(%d): n=%d m=%d, want %d, %d", tc.k, g.N(), g.M(), tc.wantV, tc.wantE)
		}
	}
}

func TestCliqueGraph(t *testing.T) {
	g := CliqueGraph(6)
	if g.N() != 6 || g.M() != 15 {
		t.Fatalf("K6: n=%d m=%d", g.N(), g.M())
	}
	if !g.IsClique([]int{0, 1, 2, 3, 4, 5}) {
		t.Fatal("K6 not a clique")
	}
}

func TestRandomGraphDeterministic(t *testing.T) {
	a := RandomGraph(30, 100, 7)
	b := RandomGraph(30, 100, 7)
	c := RandomGraph(30, 100, 8)
	if a.M() != 100 || b.M() != 100 {
		t.Fatal("edge count wrong")
	}
	ea, eb := a.Edges(), b.Edges()
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatal("same seed produced different graphs")
		}
	}
	ec := c.Edges()
	same := true
	for i := range ea {
		if ea[i] != ec[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical graphs (suspicious)")
	}
}

func TestRandomIntervalGraphIsIntervalLike(t *testing.T) {
	g := RandomIntervalGraph(50, 200, 3)
	if g.N() != 50 {
		t.Fatal("vertex count wrong")
	}
	if g.M() == 0 {
		t.Fatal("interval graph came out empty")
	}
}

func TestRandomGeometricGraph(t *testing.T) {
	g := RandomGeometricGraph(64, 0.3, 5)
	if g.N() != 64 || g.M() == 0 {
		t.Fatalf("geometric graph n=%d m=%d", g.N(), g.M())
	}
	// r = sqrt(2) connects everything.
	full := RandomGeometricGraph(10, 1.5, 5)
	if full.M() != 45 {
		t.Fatalf("r=1.5 should give K10, got m=%d", full.M())
	}
}

// Grid2D/Grid3D counts from thesis Table 7.1: grid2d_20 (200,200),
// grid3d_8 (256,256).
func TestGridHypergraphSizesMatchLibrary(t *testing.T) {
	h2 := Grid2D(20)
	if h2.N() != 200 || h2.M() != 200 {
		t.Errorf("Grid2D(20): n=%d m=%d, want 200, 200", h2.N(), h2.M())
	}
	h3 := Grid3D(8)
	if h3.N() != 256 || h3.M() != 256 {
		t.Errorf("Grid3D(8): n=%d m=%d, want 256, 256", h3.N(), h3.M())
	}
	h4 := Grid4D(4)
	if h4.N() != 128 || h4.M() != 128 {
		t.Errorf("Grid4D(4): n=%d m=%d, want 128, 128", h4.N(), h4.M())
	}
}

func TestGrid2DArity(t *testing.T) {
	h := Grid2D(6)
	if h.MaxArity() > 4 {
		t.Fatalf("grid hyperedges should have arity <= 4, got %d", h.MaxArity())
	}
	if !h.CoversAllVertices() {
		t.Fatal("grid hypergraph leaves vertices uncovered")
	}
}

// Adder counts from thesis Table 7.1: adder_75 (376,526), adder_99 (496,694).
func TestAdderSizesMatchLibrary(t *testing.T) {
	for _, tc := range []struct{ n, wantV, wantE int }{
		{75, 376, 526},
		{99, 496, 694},
		{1, 6, 8},
	} {
		h := Adder(tc.n)
		if h.N() != tc.wantV || h.M() != tc.wantE {
			t.Errorf("Adder(%d): n=%d m=%d, want %d, %d", tc.n, h.N(), h.M(), tc.wantV, tc.wantE)
		}
		if !h.CoversAllVertices() {
			t.Errorf("Adder(%d) leaves vertices uncovered", tc.n)
		}
	}
}

// Bridge counts from thesis Table 7.1: bridge_50 (452,452).
func TestBridgeSizesMatchLibrary(t *testing.T) {
	h := Bridge(50)
	if h.N() != 452 || h.M() != 452 {
		t.Errorf("Bridge(50): n=%d m=%d, want 452, 452", h.N(), h.M())
	}
	if !h.CoversAllVertices() {
		t.Error("Bridge(50) leaves vertices uncovered")
	}
}

func TestCliqueHypergraph(t *testing.T) {
	h := CliqueHypergraph(20)
	if h.N() != 20 || h.M() != 190 {
		t.Fatalf("clique_20: n=%d m=%d, want 20, 190", h.N(), h.M())
	}
}

func TestRandomCircuitShape(t *testing.T) {
	h := RandomCircuit(170, 179, 11) // b08-sized
	if h.N() != 170 || h.M() != 179 {
		t.Fatalf("circuit n=%d m=%d", h.N(), h.M())
	}
	if h.MaxArity() > 5 {
		t.Fatalf("gate arity %d > 5", h.MaxArity())
	}
	// Determinism.
	h2 := RandomCircuit(170, 179, 11)
	for e := 0; e < h.M(); e++ {
		a, b := h.Edge(e), h2.Edge(e)
		if len(a) != len(b) {
			t.Fatal("circuit generation not deterministic")
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatal("circuit generation not deterministic")
			}
		}
	}
}

func TestRandomHypergraphBounds(t *testing.T) {
	h := RandomHypergraph(15, 10, 2, 5, 42)
	if h.N() != 15 || h.M() != 10 {
		t.Fatalf("n=%d m=%d", h.N(), h.M())
	}
	for e := 0; e < h.M(); e++ {
		k := len(h.Edge(e))
		if k < 2 || k > 5 {
			t.Fatalf("edge %d has arity %d outside [2,5]", e, k)
		}
	}
}
