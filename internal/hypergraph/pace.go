package hypergraph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseGr reads a graph in the PACE treewidth-track .gr format:
//
//	c comment
//	p tw <n> <m>
//	<u> <v>          (1-based endpoints, one edge per line)
//
// The input is capped at MaxParseBytes; larger payloads fail with a
// *PayloadTooLargeError.
func ParseGr(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(LimitReader(r, MaxParseBytes))
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var g *Graph
	line := 0
	for sc.Scan() {
		line++
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 || fields[0] == "c" {
			continue
		}
		if fields[0] == "p" {
			if g != nil {
				return nil, fmt.Errorf("gr line %d: duplicate problem line", line)
			}
			if len(fields) < 4 || fields[1] != "tw" {
				return nil, fmt.Errorf("gr line %d: malformed problem line", line)
			}
			n, err := strconv.Atoi(fields[2])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("gr line %d: bad vertex count", line)
			}
			if n > maxParseVertices {
				return nil, fmt.Errorf("gr line %d: vertex count %d exceeds limit %d", line, n, maxParseVertices)
			}
			g = NewGraph(n)
			continue
		}
		if g == nil {
			return nil, fmt.Errorf("gr line %d: edge before problem line", line)
		}
		if len(fields) != 2 {
			return nil, fmt.Errorf("gr line %d: malformed edge", line)
		}
		u, err1 := strconv.Atoi(fields[0])
		v, err2 := strconv.Atoi(fields[1])
		if err1 != nil || err2 != nil || u < 1 || u > g.N() || v < 1 || v > g.N() {
			return nil, fmt.Errorf("gr line %d: bad endpoints", line)
		}
		g.AddEdge(u-1, v-1)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if g == nil {
		return nil, fmt.Errorf("gr: missing problem line")
	}
	return g, nil
}

// WriteGr writes g in the PACE .gr format.
func WriteGr(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "p tw %d %d\n", g.N(), g.M())
	for _, e := range g.Edges() {
		fmt.Fprintf(bw, "%d %d\n", e[0]+1, e[1]+1)
	}
	return bw.Flush()
}
