package hypergraph

import (
	"fmt"
	"io"
)

// MaxParseBytes is the default payload cap applied by every parser entry
// point in this package (ParseHG, ParseDIMACS, ParseGr, ParseEdgeList).
// Inputs are untrusted — CLI users pass typo'd paths, the daemon
// accepts network bodies — and each parser buffers while it reads, so a
// malformed multi-gigabyte input must fail fast with a typed error instead
// of exhausting memory. Callers with stricter needs (the daemon's
// per-request body cap) wrap their reader with LimitReader themselves; the
// innermost limit trips first.
const MaxParseBytes = 256 << 20 // 256 MiB

// PayloadTooLargeError is the typed error a capped reader returns once a
// payload exceeds its limit. The daemon maps it to 413, the CLI prints it;
// detect it with errors.As.
type PayloadTooLargeError struct {
	// Limit is the cap in bytes that was exceeded.
	Limit int64
}

func (e *PayloadTooLargeError) Error() string {
	return fmt.Sprintf("hypergraph: payload exceeds %d-byte limit", e.Limit)
}

// LimitReader wraps r so that reading more than limit bytes fails with a
// *PayloadTooLargeError. Unlike io.LimitReader, which reports a clean EOF at
// the boundary (silently truncating the payload), this reader distinguishes
// "input ended" from "input was cut off": parsers fed a capped reader fail
// loudly instead of decoding a truncated prefix. A non-positive limit means
// unlimited.
func LimitReader(r io.Reader, limit int64) io.Reader {
	if limit <= 0 {
		return r
	}
	return &cappedReader{r: r, remaining: limit, limit: limit}
}

type cappedReader struct {
	r         io.Reader
	remaining int64
	limit     int64
}

func (c *cappedReader) Read(p []byte) (int, error) {
	if c.remaining <= 0 {
		return 0, &PayloadTooLargeError{Limit: c.limit}
	}
	// Read one byte past the budget so the limit distinguishes a payload of
	// exactly limit bytes (fine) from one that keeps going (error).
	max := c.remaining
	if int64(len(p)) < max {
		max = int64(len(p))
	}
	n, err := c.r.Read(p[:max])
	c.remaining -= int64(n)
	if c.remaining <= 0 && err == nil {
		// Budget exhausted: peek whether the stream actually continues.
		var probe [1]byte
		pn, perr := c.r.Read(probe[:])
		if pn > 0 {
			return n, &PayloadTooLargeError{Limit: c.limit}
		}
		if perr != nil && perr != io.EOF {
			return n, perr
		}
		// Clean EOF exactly at the limit: let the next Read report it.
		c.r = eofReader{}
		c.remaining = 1
	}
	return n, err
}

type eofReader struct{}

func (eofReader) Read([]byte) (int, error) { return 0, io.EOF }
