package hypergraph

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// maxParseVertices caps the vertex count a parser will allocate for. Header
// counts are attacker-controlled in fuzzing (and typo-prone in practice): a
// declared "p edge 1152921504606846976 0" must fail with an error, not take
// the process down trying to allocate adjacency structures for it.
const maxParseVertices = 1 << 22

// ParseDIMACS reads a graph in DIMACS graph-coloring format:
//
//	c comment
//	p edge <n> <m>
//	e <u> <v>        (1-based vertex indices)
//
// The declared edge count is advisory; the actual edges read are returned.
//
// The input is capped at MaxParseBytes; larger payloads fail with a
// *PayloadTooLargeError.
func ParseDIMACS(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(LimitReader(r, MaxParseBytes))
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var g *Graph
	line := 0
	for sc.Scan() {
		line++
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "c":
			// comment
		case "p":
			if g != nil {
				return nil, fmt.Errorf("dimacs line %d: duplicate problem line", line)
			}
			if len(fields) < 4 {
				return nil, fmt.Errorf("dimacs line %d: malformed problem line", line)
			}
			n, err := strconv.Atoi(fields[2])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("dimacs line %d: bad vertex count %q", line, fields[2])
			}
			if n > maxParseVertices {
				return nil, fmt.Errorf("dimacs line %d: vertex count %d exceeds limit %d", line, n, maxParseVertices)
			}
			g = NewGraph(n)
		case "e":
			if g == nil {
				return nil, fmt.Errorf("dimacs line %d: edge before problem line", line)
			}
			if len(fields) != 3 {
				return nil, fmt.Errorf("dimacs line %d: malformed edge", line)
			}
			u, err1 := strconv.Atoi(fields[1])
			v, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("dimacs line %d: bad edge endpoints", line)
			}
			if u < 1 || u > g.N() || v < 1 || v > g.N() {
				return nil, fmt.Errorf("dimacs line %d: endpoint out of range", line)
			}
			g.AddEdge(u-1, v-1)
		default:
			return nil, fmt.Errorf("dimacs line %d: unknown record %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if g == nil {
		return nil, fmt.Errorf("dimacs: missing problem line")
	}
	return g, nil
}

// WriteDIMACS writes g in DIMACS graph-coloring format.
func WriteDIMACS(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "p edge %d %d\n", g.N(), g.M())
	for _, e := range g.Edges() {
		fmt.Fprintf(bw, "e %d %d\n", e[0]+1, e[1]+1)
	}
	return bw.Flush()
}

// ParseHG reads a hypergraph in the detkdecomp/hypertree-library text format:
// a sequence of atoms "name(v1,v2,...)" separated by commas, with '%'
// line comments; vertex identifiers are arbitrary tokens. Example:
//
//	% two constraints
//	c1(x1,x2,x3),
//	c2(x3,x4).
//
// A trailing '.' or ',' after the final atom is accepted.
//
// The input is capped at MaxParseBytes; larger payloads fail with a
// *PayloadTooLargeError.
func ParseHG(r io.Reader) (*Hypergraph, error) {
	data, err := io.ReadAll(LimitReader(r, MaxParseBytes))
	if err != nil {
		return nil, err
	}
	// Strip % comments.
	var sb strings.Builder
	for _, line := range strings.Split(string(data), "\n") {
		if i := strings.IndexByte(line, '%'); i >= 0 {
			line = line[:i]
		}
		sb.WriteString(line)
		sb.WriteByte('\n')
	}
	text := sb.String()

	type atom struct {
		name string
		vars []string
	}
	var atoms []atom
	i := 0
	n := len(text)
	skipSpace := func() {
		for i < n && (text[i] == ' ' || text[i] == '\t' || text[i] == '\n' || text[i] == '\r') {
			i++
		}
	}
	readToken := func() string {
		start := i
		for i < n {
			c := text[i]
			if c == '(' || c == ')' || c == ',' || c == '.' || c == ' ' || c == '\t' || c == '\n' || c == '\r' {
				break
			}
			i++
		}
		return text[start:i]
	}
	for {
		skipSpace()
		if i >= n {
			break
		}
		if text[i] == '.' || text[i] == ',' {
			i++
			continue
		}
		name := readToken()
		if name == "" {
			return nil, fmt.Errorf("hg: unexpected character %q at offset %d", text[i], i)
		}
		skipSpace()
		if i >= n || text[i] != '(' {
			return nil, fmt.Errorf("hg: expected '(' after atom %q", name)
		}
		i++ // consume '('
		var vars []string
		for {
			skipSpace()
			tok := readToken()
			if tok == "" {
				return nil, fmt.Errorf("hg: empty variable in atom %q", name)
			}
			vars = append(vars, tok)
			skipSpace()
			if i >= n {
				return nil, fmt.Errorf("hg: unterminated atom %q", name)
			}
			if text[i] == ',' {
				i++
				continue
			}
			if text[i] == ')' {
				i++
				break
			}
			return nil, fmt.Errorf("hg: unexpected character %q in atom %q", text[i], name)
		}
		atoms = append(atoms, atom{name, vars})
	}

	// Assign dense vertex ids in first-appearance order.
	id := make(map[string]int)
	var names []string
	for _, a := range atoms {
		for _, v := range a.vars {
			if _, ok := id[v]; !ok {
				id[v] = len(names)
				names = append(names, v)
			}
		}
	}
	h := NewHypergraph(len(names))
	for v, name := range names {
		h.SetVertexName(v, name)
	}
	for _, a := range atoms {
		vs := make([]int, len(a.vars))
		for j, v := range a.vars {
			vs[j] = id[v]
		}
		e := h.AddEdge(vs...)
		h.SetEdgeName(e, a.name)
	}
	return h, nil
}

// WriteHG writes h in the detkdecomp text format.
func WriteHG(w io.Writer, h *Hypergraph) error {
	bw := bufio.NewWriter(w)
	for e := 0; e < h.M(); e++ {
		vars := make([]string, 0, len(h.Edge(e)))
		for _, v := range h.Edge(e) {
			vars = append(vars, h.VertexName(v))
		}
		sep := ","
		if e == h.M()-1 {
			sep = "."
		}
		fmt.Fprintf(bw, "%s(%s)%s\n", h.EdgeName(e), strings.Join(vars, ","), sep)
	}
	return bw.Flush()
}

// ParseEdgeList reads a hypergraph in a plain whitespace format: each
// non-empty, non-'#' line lists the 0-based vertex indices of one hyperedge.
// The vertex count is one more than the largest index seen.
//
// The input is capped at MaxParseBytes; larger payloads fail with a
// *PayloadTooLargeError.
func ParseEdgeList(r io.Reader) (*Hypergraph, error) {
	sc := bufio.NewScanner(LimitReader(r, MaxParseBytes))
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var edges [][]int
	maxV := -1
	line := 0
	for sc.Scan() {
		line++
		txt := strings.TrimSpace(sc.Text())
		if txt == "" || strings.HasPrefix(txt, "#") {
			continue
		}
		var edge []int
		for _, f := range strings.Fields(txt) {
			v, err := strconv.Atoi(f)
			if err != nil || v < 0 {
				return nil, fmt.Errorf("edgelist line %d: bad vertex %q", line, f)
			}
			if v > maxParseVertices {
				return nil, fmt.Errorf("edgelist line %d: vertex %d exceeds limit %d", line, v, maxParseVertices)
			}
			if v > maxV {
				maxV = v
			}
			edge = append(edge, v)
		}
		edges = append(edges, edge)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	h := NewHypergraph(maxV + 1)
	for _, e := range edges {
		h.AddEdge(e...)
	}
	return h, nil
}

// WriteEdgeList writes h in the plain whitespace hyperedge format.
func WriteEdgeList(w io.Writer, h *Hypergraph) error {
	bw := bufio.NewWriter(w)
	for e := 0; e < h.M(); e++ {
		parts := make([]string, 0, len(h.Edge(e)))
		for _, v := range h.Edge(e) {
			parts = append(parts, strconv.Itoa(v))
		}
		fmt.Fprintln(bw, strings.Join(parts, " "))
	}
	return bw.Flush()
}

// FormatEdge renders an edge's vertex set like "{x1, x2, x3}" using vertex
// names, primarily for diagnostics and example output.
func FormatEdge(h *Hypergraph, e int) string {
	vs := h.Edge(e)
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = h.VertexName(v)
	}
	sort.Strings(parts)
	return "{" + strings.Join(parts, ", ") + "}"
}
