package hypergraph

import (
	"strings"
	"testing"
)

// FuzzParseHG checks that arbitrary input never panics the detkdecomp-format
// parser: it must either return an error or a structurally sound hypergraph.
func FuzzParseHG(f *testing.F) {
	f.Add("c1(x1,x2,x3),\nc2(x3,x4).")
	f.Add("% comment only\n")
	f.Add("a(x)")
	f.Add("a(x,")
	f.Add("a()")
	f.Add("(x1,x2)")
	f.Add("a(x))b(y)")
	f.Add("a(x1,x2),b(x2,x3),c(x3,x1).")
	f.Add(".,.,.")
	f.Add("a(\x00)")
	f.Fuzz(func(t *testing.T, input string) {
		h, err := ParseHG(strings.NewReader(input))
		if err != nil {
			return
		}
		for e := 0; e < h.M(); e++ {
			for _, v := range h.Edge(e) {
				if v < 0 || v >= h.N() {
					t.Fatalf("edge %d has out-of-range vertex %d (n=%d)", e, v, h.N())
				}
			}
		}
		// A parsed hypergraph must survive its own writer round-trip.
		var sb strings.Builder
		if err := WriteHG(&sb, h); err != nil {
			t.Fatalf("WriteHG: %v", err)
		}
		if h.M() > 0 {
			h2, err := ParseHG(strings.NewReader(sb.String()))
			if err != nil {
				t.Fatalf("re-parse of written output failed: %v\noutput:\n%s", err, sb.String())
			}
			if h2.N() != h.N() || h2.M() != h.M() {
				t.Fatalf("round trip changed shape: (%d,%d) -> (%d,%d)", h.N(), h.M(), h2.N(), h2.M())
			}
		}
	})
}

// FuzzParseDIMACS checks that arbitrary input never panics or over-allocates
// in the DIMACS parser; declared vertex counts are capped.
func FuzzParseDIMACS(f *testing.F) {
	f.Add("p edge 3 2\ne 1 2\ne 2 3\n")
	f.Add("c comment\np edge 0 0\n")
	f.Add("p edge 1152921504606846976 0\n")
	f.Add("p edge -1 0\n")
	f.Add("e 1 2\n")
	f.Add("p edge 2 1\ne 0 1\n")
	f.Add("p edge 2 1\ne 1 3\n")
	f.Add("p edge 2 1\np edge 2 1\n")
	f.Add("x unknown\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ParseDIMACS(strings.NewReader(input))
		if err != nil {
			return
		}
		if g.N() > maxParseVertices {
			t.Fatalf("parser accepted %d vertices beyond the cap", g.N())
		}
		for _, e := range g.Edges() {
			if e[0] < 0 || e[0] >= g.N() || e[1] < 0 || e[1] >= g.N() {
				t.Fatalf("edge %v out of range (n=%d)", e, g.N())
			}
		}
	})
}

// FuzzParseGr covers the PACE .gr parser with the same contract.
func FuzzParseGr(f *testing.F) {
	f.Add("p tw 3 2\n1 2\n2 3\n")
	f.Add("c comment\np tw 0 0\n")
	f.Add("p tw 99999999999999999999 0\n")
	f.Add("1 2\n")
	f.Add("p tw 2 1\n1 2 3\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ParseGr(strings.NewReader(input))
		if err != nil {
			return
		}
		if g.N() > maxParseVertices {
			t.Fatalf("parser accepted %d vertices beyond the cap", g.N())
		}
		for _, e := range g.Edges() {
			if e[0] < 0 || e[0] >= g.N() || e[1] < 0 || e[1] >= g.N() {
				t.Fatalf("edge %v out of range (n=%d)", e, g.N())
			}
		}
	})
}
