package hypergraph

import (
	"testing"
	"testing/quick"
)

// exampleHypergraph builds the hypergraph of thesis Example 5 / Figure 2.6:
// vertices x1..x6 (ids 0..5), hyperedges {x1,x2,x3}, {x1,x5,x6}, {x3,x4,x5}.
func exampleHypergraph() *Hypergraph {
	h := NewHypergraph(6)
	h.AddEdge(0, 1, 2)
	h.AddEdge(0, 4, 5)
	h.AddEdge(2, 3, 4)
	return h
}

func TestHypergraphBasics(t *testing.T) {
	h := exampleHypergraph()
	if h.N() != 6 || h.M() != 3 {
		t.Fatalf("n=%d m=%d, want 6, 3", h.N(), h.M())
	}
	if h.MaxArity() != 3 {
		t.Fatalf("MaxArity = %d, want 3", h.MaxArity())
	}
	if !h.EdgeContains(0, 1) || h.EdgeContains(0, 3) {
		t.Fatal("EdgeContains wrong")
	}
	if got := h.VertexDegree(0); got != 2 {
		t.Fatalf("VertexDegree(0) = %d, want 2", got)
	}
	if got := h.VertexDegree(3); got != 1 {
		t.Fatalf("VertexDegree(3) = %d, want 1", got)
	}
	if !h.CoversAllVertices() {
		t.Fatal("all vertices are covered")
	}
}

func TestAddEdgeDeduplicatesAndSorts(t *testing.T) {
	h := NewHypergraph(5)
	e := h.AddEdge(3, 1, 3, 0)
	edge := h.Edge(e)
	want := []int{0, 1, 3}
	if len(edge) != len(want) {
		t.Fatalf("edge = %v, want %v", edge, want)
	}
	for i := range edge {
		if edge[i] != want[i] {
			t.Fatalf("edge = %v, want %v", edge, want)
		}
	}
}

func TestIncidentEdgesInvalidatedOnAdd(t *testing.T) {
	h := NewHypergraph(3)
	h.AddEdge(0, 1)
	if got := len(h.IncidentEdges(2)); got != 0 {
		t.Fatalf("IncidentEdges(2) = %d edges, want 0", got)
	}
	h.AddEdge(1, 2)
	if got := len(h.IncidentEdges(2)); got != 1 {
		t.Fatalf("after add, IncidentEdges(2) = %d edges, want 1", got)
	}
}

// Primal graph of Example 5 (thesis Fig. 2.6a): x1x2, x1x3, x2x3, x1x5,
// x1x6, x5x6, x3x4, x3x5, x4x5 — nine edges.
func TestPrimalGraphExample5(t *testing.T) {
	g := exampleHypergraph().PrimalGraph()
	if g.M() != 9 {
		t.Fatalf("primal edges = %d, want 9", g.M())
	}
	mustHave := [][2]int{{0, 1}, {0, 2}, {1, 2}, {0, 4}, {0, 5}, {4, 5}, {2, 3}, {2, 4}, {3, 4}}
	for _, e := range mustHave {
		if !g.HasEdge(e[0], e[1]) {
			t.Errorf("primal graph missing edge %v", e)
		}
	}
	if g.HasEdge(1, 3) {
		t.Error("primal graph has spurious edge {x2,x4}")
	}
}

func TestDualGraphExample5(t *testing.T) {
	d := exampleHypergraph().DualGraph()
	// e0={x1,x2,x3}, e1={x1,x5,x6}, e2={x3,x4,x5}: every pair shares a vertex.
	if d.N() != 3 || d.M() != 3 {
		t.Fatalf("dual n=%d m=%d, want 3, 3", d.N(), d.M())
	}
}

func TestFromGraphRoundTrip(t *testing.T) {
	g := Grid(3)
	h := FromGraph(g)
	if h.N() != g.N() || h.M() != g.M() {
		t.Fatalf("FromGraph sizes wrong: %v vs %v", h, g)
	}
	// The primal graph of a graph-as-hypergraph is the graph itself.
	p := h.PrimalGraph()
	if p.M() != g.M() {
		t.Fatalf("primal of FromGraph has %d edges, want %d", p.M(), g.M())
	}
	for _, e := range g.Edges() {
		if !p.HasEdge(e[0], e[1]) {
			t.Fatalf("primal missing %v", e)
		}
	}
}

func TestHypergraphNames(t *testing.T) {
	h := NewHypergraph(2)
	e := h.AddEdge(0, 1)
	if h.VertexName(0) != "0" || h.EdgeName(e) != "e0" {
		t.Fatal("default names wrong")
	}
	h.SetVertexName(0, "x1")
	h.SetEdgeName(e, "c1")
	if h.VertexName(0) != "x1" || h.EdgeName(e) != "c1" {
		t.Fatal("names not stored")
	}
}

func TestCloneHypergraphIndependent(t *testing.T) {
	h := exampleHypergraph()
	c := h.Clone()
	c.AddEdge(1, 3)
	if h.M() != 3 || c.M() != 4 {
		t.Fatal("clone not independent")
	}
}

// Property: primal graph edge count never exceeds sum over edges of C(|e|,2),
// and every co-occurring pair is adjacent.
func TestPrimalGraphProperty(t *testing.T) {
	f := func(seed int64) bool {
		h := RandomHypergraph(10, 8, 2, 4, seed)
		g := h.PrimalGraph()
		for _, edge := range h.Edges() {
			for i := 0; i < len(edge); i++ {
				for j := i + 1; j < len(edge); j++ {
					if !g.HasEdge(edge[i], edge[j]) {
						return false
					}
				}
			}
		}
		bound := 0
		for _, edge := range h.Edges() {
			k := len(edge)
			bound += k * (k - 1) / 2
		}
		return g.M() <= bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
