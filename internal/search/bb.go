package search

import (
	"sort"

	"hypertree/internal/budget"
	"hypertree/internal/budget/faultinject"
	"hypertree/internal/hypergraph"
	"hypertree/internal/obs"
	"hypertree/internal/reduce"
	"hypertree/internal/setcover"
)

// BBTreewidth runs the branch-and-bound treewidth search (the thesis's
// review of BB-tw / QuickBB, §4.4, with PR1, PR2, reductions and per-node
// minor-min-width bounds). The result is exact unless a budget was hit.
func BBTreewidth(g *hypergraph.Graph, opts Options) Result {
	if opts.Workers > 1 {
		return runBBParallel(opts, "bb-tw", func() model { return newTWModel(g, opts.Seed) })
	}
	return runBB(newTWModel(g, opts.Seed), opts, "bb-tw")
}

// BBGHW runs BB-ghw (thesis Chapter 8, Figure 8.3): branch and bound over
// elimination orderings for generalized hypertree width, with exact set
// covers for bag costs, the tw-ksc-width lower bound at interior nodes,
// simplicial reductions and the non-adjacent case of PR2.
func BBGHW(h *hypergraph.Hypergraph, opts Options) Result {
	if opts.Workers > 1 {
		eng := opts.Engine
		if eng == nil {
			eng = setcover.NewEngine(h, setcover.DefaultCacheCapacity)
		}
		return runBBParallel(opts, "bb-ghw", func() model { return newGHWModelShared(eng, opts.Seed, true) })
	}
	if opts.Engine != nil {
		return runBB(newGHWModelShared(opts.Engine, opts.Seed, true), opts, "bb-ghw")
	}
	return runBB(newGHWModel(h, opts.Seed, true), opts, "bb-ghw")
}

// BBGHWGreedy is BB-ghw with greedy instead of exact set covers: faster,
// still an upper-bound-producing anytime algorithm, but its "exact" result
// is only exact with respect to greedy covers.
func BBGHWGreedy(h *hypergraph.Hypergraph, opts Options) Result {
	if opts.Workers > 1 {
		eng := opts.Engine
		if eng == nil {
			eng = setcover.NewEngine(h, setcover.DefaultCacheCapacity)
		}
		return runBBParallel(opts, "bb-ghw-greedy", func() model { return newGHWModelShared(eng, opts.Seed, false) })
	}
	if opts.Engine != nil {
		return runBB(newGHWModelShared(opts.Engine, opts.Seed, false), opts, "bb-ghw-greedy")
	}
	return runBB(newGHWModel(h, opts.Seed, false), opts, "bb-ghw-greedy")
}

type bbSearch struct {
	m      model
	opts   Options
	budget *budget.B
	rec    obs.Recorder
	shape  *gauges
	ub     int
	lbRoot int
	best   []int
	// bestW is the width realized by best (unsetWidth while best is nil).
	// It can lag behind ub when a cross-solver incumbent lowered the bound
	// past anything this search materialized itself; the result then reports
	// a nil Ordering rather than a stale, wider one.
	bestW  int
	prefix []int
	// shared is the parallel run's coordination state; nil in serial runs,
	// where ub above is the sole incumbent.
	shared *bbShared
	// ext is the cross-solver incumbent of a portfolio race (Options.Shared);
	// nil outside one. Serial runs re-read it at every sync point — the bound
	// only ever decreases, so anything pruned against an intermediate value
	// would also be pruned against the final one, keeping exactness sound.
	// Parallel runs adopt it at start only: their exactness argument is tied
	// to the shared in-run incumbent, which external claims bypass.
	ext *Incumbent
	// worker is the 1-based parallel worker id stamped on improve events;
	// 0 for serial runs and the parallel coordinator.
	worker int
	// seedLimit, when positive, makes dfs stop recursing at that prefix depth
	// and append the surviving frontier nodes to seedOut as tasks instead.
	// The parallel engine uses it to carve the root into disjoint subtree
	// tasks with the same pruning the serial search applies.
	seedLimit int
	seedOut   []bbTask
}

// improve records a best-width improvement event.
func (s *bbSearch) improve(w int) {
	s.rec.Record(obs.Event{Kind: obs.KindImprove, T: s.budget.Elapsed(),
		Width: w, Nodes: s.budget.Nodes(), WorkerID: s.worker})
}

// claimImprove tries to install w as the new incumbent width and reports
// whether it won. Serial runs compare against the local bound; parallel runs
// CAS the shared atomic bound, refreshing the local copy when another worker
// got there first.
func (s *bbSearch) claimImprove(w int) bool {
	if s.shared == nil {
		if w >= s.ub {
			return false
		}
		s.ub = w
		s.bestW = w
		return true
	}
	for {
		cur := s.shared.ub.Load()
		if int64(w) >= cur {
			if int(cur) < s.ub {
				s.ub = int(cur)
			}
			return false
		}
		if s.shared.ub.CompareAndSwap(cur, int64(w)) {
			s.ub = w
			s.bestW = w
			return true
		}
	}
}

// publishBest stores s.best as the shared incumbent ordering if w still
// beats it (another worker may have improved past w since the claim).
func (s *bbSearch) publishBest(w int) {
	if s.shared == nil {
		return
	}
	sh := s.shared
	sh.mu.Lock()
	if w < sh.bestW {
		sh.bestW = w
		sh.best = s.best
	}
	sh.mu.Unlock()
}

// syncUB refreshes the local pruning bound from the shared incumbent. A
// stale local bound only weakens pruning, never correctness, so one relaxed
// atomic load per call is enough.
func (s *bbSearch) syncUB() {
	if s.shared != nil {
		if u := int(s.shared.ub.Load()); u < s.ub {
			s.ub = u
		}
		return
	}
	if u := s.ext.Best(); u < s.ub {
		s.ub = u
	}
}

func runBB(m model, opts Options, defaultLabel string) Result {
	b := opts.budgetFor()
	shape := &gauges{}
	stats, rec, label := instrument(m, opts, b, defaultLabel, shape)
	lb, ub, ordering := m.initial()
	if opts.InitialUB > 0 && opts.InitialUB < ub {
		ub = opts.InitialUB
		ordering = nil
	}
	if u := opts.Shared.Best(); u < ub {
		ub = u
		ordering = nil
	}
	s := &bbSearch{m: m, opts: opts, budget: b, rec: rec, shape: shape,
		ub: ub, lbRoot: lb, best: ordering, ext: opts.Shared}
	s.bestW = unsetWidth
	if ordering != nil {
		s.bestW = ub
	}
	s.improve(ub)
	rec.Record(obs.Event{Kind: obs.KindLowerBound, T: b.Elapsed(), LowerBound: lb, Nodes: b.Nodes()})
	if lb < ub && m.graph().N() > 0 {
		s.dfs(0, lb, false)
	}
	exact := !b.Stopped()
	lbOut := s.lbRoot
	if exact {
		lbOut = s.ub
		rec.Record(obs.Event{Kind: obs.KindLowerBound, T: b.Elapsed(), LowerBound: lbOut, Nodes: b.Nodes()})
	}
	best := s.best
	if s.bestW > s.ub {
		// The final bound came from the cross-solver incumbent (or the
		// priming InitialUB), not from an ordering realized here.
		best = nil
	}
	r := finish(m, Result{
		Width:      s.ub,
		LowerBound: lbOut,
		Exact:      exact,
		Ordering:   best,
		Nodes:      b.Nodes(),
		Elapsed:    b.Elapsed(),
		Stop:       b.Reason(),
	})
	if cs := m.cacheStats(); cs.Hits+cs.Misses > 0 {
		rec.Record(obs.Event{Kind: obs.KindCoverCache, T: b.Elapsed(),
			CacheHits: cs.Hits, CacheMisses: cs.Misses,
			CacheEvictions: cs.Evictions, CacheSize: cs.Size})
	}
	rec.Record(obs.Event{Kind: obs.KindStop, T: b.Elapsed(), Algo: label,
		Width: r.Width, LowerBound: r.LowerBound, Exact: r.Exact,
		Nodes: r.Nodes, Backtracks: shape.backtracks.Load(), Stop: string(r.Stop)})
	r.Stats = stats
	return r
}

// dfs explores the subtree below the current elimination prefix.
// g is the cost of the prefix, f the best lower bound along the path, and
// lastReduced tells whether the previous elimination was a forced reduction
// (suppressing PR2 for this node's children, per thesis Figure 5.1).
func (s *bbSearch) dfs(g, f int, lastReduced bool) {
	if !s.budget.Tick() {
		return
	}
	s.syncUB()
	s.shape.depth.Store(int64(len(s.prefix)))
	// Every dfs return is one exhausted subtree — the backtrack gauge the
	// checkpoint events carry.
	defer s.shape.backtracks.Add(1)
	faultinject.Hit(faultinject.SiteSearchExpand)
	e := s.m.graph()
	// PR1 (thesis §4.4.5): completing in any order costs at most
	// max(g, completionCap); harvest it as an upper bound, and stop if the
	// subtree cannot do better.
	cap := s.m.completionCap()
	if w := max2(g, cap); w < s.ub && s.claimImprove(w) {
		s.best = completion(e, s.prefix)
		s.publishBest(w)
		s.improve(w)
	}
	if cap <= g {
		return
	}
	// Children: a forced reduction vertex, or all live vertices.
	var children []int
	reduced := false
	if !s.opts.DisableReductions {
		if r := reduce.FindReduction(e, s.lbRoot, s.m.allowAlmostSimplicial()); r >= 0 {
			children = []int{r}
			reduced = true
		}
	}
	if children == nil {
		children = e.LiveVertices(nil)
	}
	// Order children by step cost so cheap eliminations are tried first.
	// Costs at or above the current upper bound are all equivalent (pruned),
	// which lets the ghw model cap its exact set-cover searches.
	s.m.setCostCap(s.ub)
	type childCost struct{ v, cost int }
	cc := make([]childCost, len(children))
	for i, v := range children {
		cc[i] = childCost{v, s.m.stepCost(v)}
	}
	sort.SliceStable(cc, func(i, j int) bool { return cc[i].cost < cc[j].cost })

	for _, c := range cc {
		// Each evaluated child counts against the node budget: child
		// evaluation (step cost + remainder lower bound) dominates the work.
		if !s.budget.Tick() {
			return
		}
		s.syncUB()
		v, cost := c.v, c.cost
		if !reduced && !lastReduced && !s.opts.DisablePR2 && pr2Skip(s.m, v) {
			continue
		}
		g2 := max2(g, cost)
		if g2 >= s.ub {
			continue
		}
		e.Eliminate(v)
		s.prefix = append(s.prefix, v)
		h := 0
		if !s.opts.DisableNodeLB {
			h = s.m.remainderLB()
		}
		f2 := max3(g2, h, f)
		if f2 < s.ub {
			if s.seedLimit > 0 && len(s.prefix) >= s.seedLimit {
				s.seedOut = append(s.seedOut, bbTask{
					prefix:  append([]int(nil), s.prefix...),
					g:       g2,
					f:       f2,
					reduced: reduced,
				})
			} else {
				s.dfs(g2, f2, reduced)
			}
		}
		s.prefix = s.prefix[:len(s.prefix)-1]
		e.Restore()
	}
}
