package search

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"hypertree/internal/elim"
	"hypertree/internal/hypergraph"
)

func TestBBTreewidthKnownGraphs(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *hypergraph.Graph
		want int
	}{
		{"K5", hypergraph.CliqueGraph(5), 4},
		{"grid2", hypergraph.Grid(2), 2},
		{"grid3", hypergraph.Grid(3), 3},
		{"grid4", hypergraph.Grid(4), 4},
		{"queen4", hypergraph.Queen(4), 11},
	} {
		r := BBTreewidth(tc.g, Options{Seed: 1})
		if !r.Exact || r.Width != tc.want {
			t.Errorf("%s: BB width=%d exact=%v, want %d exact", tc.name, r.Width, r.Exact, tc.want)
		}
		if r.LowerBound != r.Width {
			t.Errorf("%s: exact result has lb=%d != width=%d", tc.name, r.LowerBound, r.Width)
		}
		if r.Ordering != nil {
			if w := elim.WidthOfGraph(tc.g, r.Ordering); w != r.Width {
				t.Errorf("%s: ordering width %d != reported %d", tc.name, w, r.Width)
			}
		}
	}
}

func TestAStarTreewidthKnownGraphs(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *hypergraph.Graph
		want int
	}{
		{"K5", hypergraph.CliqueGraph(5), 4},
		{"grid3", hypergraph.Grid(3), 3},
		{"grid4", hypergraph.Grid(4), 4},
		{"grid5", hypergraph.Grid(5), 5},
		{"myciel3", hypergraph.Mycielski(3), 5},
	} {
		r := AStarTreewidth(tc.g, Options{Seed: 1})
		if !r.Exact || r.Width != tc.want {
			t.Errorf("%s: A* width=%d exact=%v, want %d exact", tc.name, r.Width, r.Exact, tc.want)
		}
		if r.Ordering != nil {
			if w := elim.WidthOfGraph(tc.g, r.Ordering); w != r.Width {
				t.Errorf("%s: ordering width %d != reported %d", tc.name, w, r.Width)
			}
		}
	}
}

func TestBBGHWKnownHypergraphs(t *testing.T) {
	tri := hypergraph.NewHypergraph(3)
	tri.AddEdge(0, 1)
	tri.AddEdge(1, 2)
	tri.AddEdge(0, 2)
	ex5 := hypergraph.NewHypergraph(6)
	ex5.AddEdge(0, 1, 2)
	ex5.AddEdge(0, 4, 5)
	ex5.AddEdge(2, 3, 4)
	acyc := hypergraph.NewHypergraph(4)
	acyc.AddEdge(0, 1, 2)
	acyc.AddEdge(2, 3)
	for _, tc := range []struct {
		name string
		h    *hypergraph.Hypergraph
		want int
	}{
		{"triangle", tri, 2},
		{"example5", ex5, 2},
		{"acyclic", acyc, 1},
		{"clique8", hypergraph.CliqueHypergraph(8), 4},
	} {
		r := BBGHW(tc.h, Options{Seed: 1})
		if !r.Exact || r.Width != tc.want {
			t.Errorf("%s: BB-ghw width=%d exact=%v, want %d exact", tc.name, r.Width, r.Exact, tc.want)
		}
		if r.Ordering != nil {
			ev := elim.NewGHWEvaluator(tc.h, true, nil)
			if w := ev.Width(r.Ordering); w != r.Width {
				t.Errorf("%s: ordering ghw %d != reported %d", tc.name, w, r.Width)
			}
		}
	}
}

func TestAStarGHWKnownHypergraphs(t *testing.T) {
	tri := hypergraph.NewHypergraph(3)
	tri.AddEdge(0, 1)
	tri.AddEdge(1, 2)
	tri.AddEdge(0, 2)
	for _, tc := range []struct {
		name string
		h    *hypergraph.Hypergraph
		want int
	}{
		{"triangle", tri, 2},
		{"grid2d6", hypergraph.Grid2D(6), 3},
		{"clique6", hypergraph.CliqueHypergraph(6), 3},
	} {
		r := AStarGHW(tc.h, Options{Seed: 1})
		if !r.Exact || r.Width != tc.want {
			t.Errorf("%s: A*-ghw width=%d exact=%v, want %d exact", tc.name, r.Width, r.Exact, tc.want)
		}
	}
}

func TestBudgetAbort(t *testing.T) {
	g := hypergraph.Queen(6) // too big to finish in 50 nodes
	r := BBTreewidth(g, Options{Seed: 1, MaxNodes: 50})
	if r.Exact {
		t.Fatal("50-node budget should not complete queen6")
	}
	if r.Width <= 0 || r.LowerBound <= 0 || r.LowerBound > r.Width {
		t.Fatalf("inconsistent anytime result: %+v", r)
	}
	a := AStarTreewidth(g, Options{Seed: 1, MaxNodes: 50})
	if a.Exact {
		t.Fatal("50-node budget should not complete queen6 (A*)")
	}
	if a.LowerBound > a.Width {
		t.Fatalf("A* lb %d > ub %d", a.LowerBound, a.Width)
	}
}

func TestTimeoutHonored(t *testing.T) {
	g := hypergraph.RandomGraph(60, 500, 3)
	start := time.Now()
	r := BBTreewidth(g, Options{Seed: 1, Timeout: 100 * time.Millisecond})
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("timeout ignored: ran %v", el)
	}
	_ = r
}

func TestInitialUBPriming(t *testing.T) {
	g := hypergraph.Grid(3)
	// Prime with the known optimum: search should confirm it.
	r := BBTreewidth(g, Options{Seed: 1, InitialUB: 3})
	if !r.Exact || r.Width != 3 {
		t.Fatalf("primed search got width=%d exact=%v", r.Width, r.Exact)
	}
}

// Property: BB and A* agree with exhaustive treewidth on random graphs, with
// and without the pruning machinery.
func TestTreewidthMatchesExhaustiveProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(5)
		m := rng.Intn(n*(n-1)/2 + 1)
		g := hypergraph.RandomGraph(n, m, seed)
		want := elim.ExhaustiveTreewidth(g)
		for _, opts := range []Options{
			{Seed: seed},
			{Seed: seed, DisablePR2: true},
			{Seed: seed, DisableReductions: true},
			{Seed: seed, DisableNodeLB: true},
			{Seed: seed, DedupeStates: true},
			{Seed: seed, DisablePR2: true, DisableReductions: true, DisableNodeLB: true},
		} {
			if r := BBTreewidth(g, opts); !r.Exact || r.Width != want {
				return false
			}
			if r := AStarTreewidth(g, opts); !r.Exact || r.Width != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: BB-ghw and A*-ghw agree with exhaustive ghw on random small
// hypergraphs, across pruning configurations.
func TestGHWMatchesExhaustiveProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(3)
		m := 3 + rng.Intn(5)
		h := hypergraph.RandomHypergraph(n, m, 1, 3, seed)
		covered := make([]bool, n)
		for _, e := range h.Edges() {
			for _, v := range e {
				covered[v] = true
			}
		}
		for v, c := range covered {
			if !c {
				h.AddEdge(v)
			}
		}
		want := elim.ExhaustiveGHW(h)
		for _, opts := range []Options{
			{Seed: seed},
			{Seed: seed, DisablePR2: true},
			{Seed: seed, DedupeStates: true},
			{Seed: seed, DisableReductions: true, DisableNodeLB: true},
		} {
			if r := BBGHW(h, opts); !r.Exact || r.Width != want {
				return false
			}
			if r := AStarGHW(h, opts); !r.Exact || r.Width != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: greedy-cover BB-ghw is an upper bound on exact ghw.
func TestBBGHWGreedyUpperBoundProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(3)
		m := 3 + rng.Intn(4)
		h := hypergraph.RandomHypergraph(n, m, 1, 3, seed)
		covered := make([]bool, n)
		for _, e := range h.Edges() {
			for _, v := range e {
				covered[v] = true
			}
		}
		for v, c := range covered {
			if !c {
				h.AddEdge(v)
			}
		}
		want := elim.ExhaustiveGHW(h)
		r := BBGHWGreedy(h, Options{Seed: seed})
		return r.Width >= want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
