// The parallel branch-and-bound engine: a fixed pool of workers explores
// disjoint elimination-prefix subtrees drawn from per-worker work-stealing
// deques, sharing one atomic incumbent width so any worker's improvement
// tightens pruning everywhere at once.
//
// Division of labor: a coordinator expands the shallow layers of the search
// tree exactly like the serial dfs (same reductions, PR1/PR2, bound checks)
// but collects the surviving frontier as tasks instead of recursing. The
// tasks are dealt round-robin into the deques; each worker replays a task's
// prefix on its own elimination graph and runs the ordinary dfs below it.
// When the deques run low, workers split a shallow task one more level and
// requeue the children, so late stragglers keep every core busy.
//
// Contracts preserved from the serial search: one shared budget (a stop —
// deadline, node cap, cancellation, panic — halts every worker at its next
// tick), anytime best-so-far results, and panic containment (the first
// worker panic stops the budget, the siblings drain, and the panic is
// rethrown to the caller as a *budget.PanicError for budget.Guard). The
// optimal width and exactness flag match the serial search; the ordering
// achieving the width and the node count may differ (pruning depends on
// discovery order).
package search

import (
	"runtime"
	"sync"
	"sync/atomic"

	"hypertree/internal/budget"
	"hypertree/internal/budget/faultinject"
	"hypertree/internal/obs"
)

// bbTask is one frontier node of the parallel search: the elimination
// prefix to replay plus the g/f bounds and PR2 suppression flag the serial
// dfs would have carried into the recursive call.
type bbTask struct {
	prefix  []int
	g, f    int
	reduced bool
}

// bbDeque is one worker's task queue. The owner pops from the front (tasks
// arrive cheapest-first, matching the serial child order), thieves steal
// from the back. A mutex per deque is plenty: tasks are coarse (whole
// subtrees), so queue operations are rare next to search work.
type bbDeque struct {
	mu    sync.Mutex
	head  int
	tasks []bbTask
}

func (d *bbDeque) push(ts []bbTask) {
	d.mu.Lock()
	d.tasks = append(d.tasks, ts...)
	d.mu.Unlock()
}

func (d *bbDeque) popFront() (bbTask, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.head >= len(d.tasks) {
		return bbTask{}, false
	}
	t := d.tasks[d.head]
	d.tasks[d.head] = bbTask{}
	d.head++
	if d.head == len(d.tasks) {
		d.tasks = d.tasks[:0]
		d.head = 0
	}
	return t, true
}

func (d *bbDeque) popBack() (bbTask, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.head >= len(d.tasks) {
		return bbTask{}, false
	}
	last := len(d.tasks) - 1
	t := d.tasks[last]
	d.tasks[last] = bbTask{}
	d.tasks = d.tasks[:last]
	if d.head == len(d.tasks) {
		d.tasks = d.tasks[:0]
		d.head = 0
	}
	return t, true
}

// bbShared is the coordination state of one parallel run.
type bbShared struct {
	// ub is the incumbent width every worker prunes against; claimImprove
	// CASes it down, syncUB refreshes the workers' local copies.
	ub atomic.Int64
	// mu guards the incumbent ordering; bestW keeps publishes monotone when
	// two workers race their claims.
	mu    sync.Mutex
	bestW int
	best  []int

	deques []bbDeque
	// pending counts tasks queued or running; the pool is exhausted — the
	// search is complete — when it reaches zero.
	pending atomic.Int64
	// queued counts tasks sitting in deques; the split heuristic feeds the
	// pool when it drops below the worker count.
	queued atomic.Int64
	// splitBelow bounds task splitting: a task whose prefix is at least this
	// deep runs to completion on one worker rather than being re-split.
	splitBelow int

	steals   atomic.Int64
	requeues atomic.Int64

	panicMu  sync.Mutex
	panicked *budget.PanicError
}

// noteWorkerPanic records the first worker panic and stops the budget so
// sibling workers drain at their next tick.
func (sh *bbShared) noteWorkerPanic(r interface{}, b *budget.B) {
	pe := budget.AsPanicError(r)
	sh.panicMu.Lock()
	if sh.panicked == nil {
		sh.panicked = pe
	}
	sh.panicMu.Unlock()
	b.Stop(budget.StopPanic)
}

// runTask replays t's prefix on s's elimination graph and runs the serial
// dfs below it.
func (s *bbSearch) runTask(t bbTask) {
	e := s.m.graph()
	for _, v := range t.prefix {
		e.Eliminate(v)
	}
	s.prefix = append(s.prefix[:0], t.prefix...)
	s.dfs(t.g, t.f, t.reduced)
	for range t.prefix {
		e.Restore()
	}
}

// splitTask expands t exactly one level — performing the node's own work
// (PR1 harvest, reductions, child evaluation) once — and returns the
// surviving children as fresh tasks.
func (s *bbSearch) splitTask(t bbTask) []bbTask {
	e := s.m.graph()
	for _, v := range t.prefix {
		e.Eliminate(v)
	}
	s.prefix = append(s.prefix[:0], t.prefix...)
	s.seedLimit = len(t.prefix) + 1
	s.seedOut = s.seedOut[:0]
	s.dfs(t.g, t.f, t.reduced)
	s.seedLimit = 0
	for range t.prefix {
		e.Restore()
	}
	return s.seedOut
}

// workerLoop is one worker's life: pop own tasks front-first, steal from
// siblings back-first, split shallow tasks when the pool runs low, exit when
// the pool is exhausted or the budget stops.
func (sh *bbShared) workerLoop(id int, s *bbSearch, b *budget.B) {
	defer func() {
		if r := recover(); r != nil {
			sh.noteWorkerPanic(r, b)
		}
	}()
	own := &sh.deques[id]
	n := len(sh.deques)
	for {
		if b.Stopped() {
			return
		}
		t, ok := own.popFront()
		if !ok {
			for k := 1; k < n && !ok; k++ {
				t, ok = sh.deques[(id+k)%n].popBack()
			}
			if ok {
				sh.steals.Add(1)
			}
		}
		if !ok {
			if sh.pending.Load() == 0 {
				return
			}
			// Another worker still holds tasks (or is about to requeue
			// splits); yield and retry the steal.
			runtime.Gosched()
			continue
		}
		sh.queued.Add(-1)
		faultinject.Hit(faultinject.SiteParallelWorker)
		s.syncUB()
		if t.f < s.ub {
			if sh.queued.Load() < int64(n) && len(t.prefix) < sh.splitBelow {
				kids := s.splitTask(t)
				if len(kids) > 0 {
					sh.pending.Add(int64(len(kids)))
					sh.requeues.Add(int64(len(kids)))
					own.push(kids)
					sh.queued.Add(int64(len(kids)))
				}
			} else {
				s.runTask(t)
			}
		}
		sh.pending.Add(-1)
	}
}

// runBBParallel is the parallel counterpart of runBB. newModel must return
// independent models that agree on the instance (for the ghw models, the
// entry points bind them to one shared cover engine so workers share the
// bag memo).
func runBBParallel(opts Options, defaultLabel string, newModel func() model) Result {
	b := opts.budgetFor()
	nw := opts.Workers
	shape := &gauges{}
	coord := newModel()
	stats, rec, label := instrument(coord, opts, b, defaultLabel, shape)
	lb, ub, ordering := coord.initial()
	if opts.InitialUB > 0 && opts.InitialUB < ub {
		ub = opts.InitialUB
		ordering = nil
	}
	if u := opts.Shared.Best(); u < ub {
		// Adopted at start only: the parallel exactness argument rests on the
		// in-run shared bound, which mid-run external claims would bypass.
		ub = u
		ordering = nil
	}
	sh := &bbShared{bestW: ub, best: ordering, deques: make([]bbDeque, nw)}
	sh.ub.Store(int64(ub))
	cs := &bbSearch{m: coord, opts: opts, budget: b, rec: rec, shape: shape,
		ub: ub, lbRoot: lb, best: ordering, shared: sh}
	cs.improve(ub)
	rec.Record(obs.Event{Kind: obs.KindLowerBound, T: b.Elapsed(), LowerBound: lb, Nodes: b.Nodes()})
	if lb < ub && coord.graph().N() > 0 {
		// Seed depth 1 usually yields enough root tasks (one per live
		// vertex); go one deeper on tiny frontiers so every worker gets work.
		depth := 1
		if coord.graph().Live() < 3*nw {
			depth = 2
		}
		sh.splitBelow = depth + 2
		cs.seedLimit = depth
		cs.dfs(0, lb, false)
		cs.seedLimit = 0
		tasks := cs.seedOut
		for i, t := range tasks {
			sh.deques[i%nw].push([]bbTask{t})
		}
		sh.pending.Store(int64(len(tasks)))
		sh.queued.Store(int64(len(tasks)))
		var wg sync.WaitGroup
		for i := 0; i < nw; i++ {
			m := coord
			if i > 0 {
				m = newModel()
			}
			ws := &bbSearch{m: m, opts: opts, budget: b, rec: rec, shape: shape,
				ub: int(sh.ub.Load()), lbRoot: lb, shared: sh, worker: i + 1}
			wg.Add(1)
			go func(id int, s *bbSearch) {
				defer wg.Done()
				sh.workerLoop(id, s, b)
			}(i, ws)
		}
		wg.Wait()
		if sh.panicked != nil {
			// Rethrow on the caller's goroutine; budget.Guard at the API
			// boundary converts it into an anytime error result.
			panic(sh.panicked)
		}
	}
	exact := !b.Stopped()
	sh.mu.Lock()
	width, best := sh.bestW, sh.best
	sh.mu.Unlock()
	lbOut := lb
	if exact {
		lbOut = width
		rec.Record(obs.Event{Kind: obs.KindLowerBound, T: b.Elapsed(), LowerBound: lbOut, Nodes: b.Nodes()})
	}
	r := finish(coord, Result{
		Width:      width,
		LowerBound: lbOut,
		Exact:      exact,
		Ordering:   best,
		Nodes:      b.Nodes(),
		Elapsed:    b.Elapsed(),
		Stop:       b.Reason(),
		Steals:     sh.steals.Load(),
		Requeues:   sh.requeues.Load(),
	})
	if st := coord.cacheStats(); st.Hits+st.Misses > 0 {
		rec.Record(obs.Event{Kind: obs.KindCoverCache, T: b.Elapsed(),
			CacheHits: st.Hits, CacheMisses: st.Misses,
			CacheEvictions: st.Evictions, CacheSize: st.Size})
	}
	rec.Record(obs.Event{Kind: obs.KindStop, T: b.Elapsed(), Algo: label,
		Width: r.Width, LowerBound: r.LowerBound, Exact: r.Exact,
		Nodes: r.Nodes, Backtracks: shape.backtracks.Load(),
		Steals: r.Steals, Requeues: r.Requeues, Stop: string(r.Stop)})
	r.Stats = stats
	return r
}
