package search

import (
	"sync"
	"testing"

	"hypertree/internal/hypergraph"
)

func TestIncumbentClaimLowersMonotonically(t *testing.T) {
	inc := NewIncumbent()
	if inc.Best() != unsetWidth {
		t.Fatalf("fresh incumbent Best() = %d, want the unset sentinel", inc.Best())
	}
	if !inc.Claim(7) {
		t.Fatal("first claim rejected")
	}
	if inc.Claim(9) {
		t.Fatal("a worse width must not claim")
	}
	if inc.Claim(7) {
		t.Fatal("an equal width must not claim")
	}
	if !inc.Claim(4) {
		t.Fatal("a better width was rejected")
	}
	if inc.Best() != 4 {
		t.Fatalf("Best() = %d, want 4", inc.Best())
	}
	// nil incumbent: reads are unset, claims are dropped.
	var nilInc *Incumbent
	if nilInc.Best() != unsetWidth || nilInc.Claim(3) {
		t.Fatal("nil incumbent must read unset and refuse claims")
	}
}

func TestIncumbentConcurrentClaims(t *testing.T) {
	inc := NewIncumbent()
	var wg sync.WaitGroup
	for w := 1; w <= 32; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			inc.Claim(w)
		}()
	}
	wg.Wait()
	if inc.Best() != 1 {
		t.Fatalf("Best() = %d after racing claims 1..32, want 1", inc.Best())
	}
}

// TestSharedIncumbentPrunes pins the portfolio's reason to exist: an
// externally claimed incumbent width tightens BB's pruning, so the search
// proves the same optimum in strictly fewer node expansions. The incumbent
// width was realized elsewhere, so the result's Ordering is nil by the
// documented staleness contract.
func TestSharedIncumbentPrunes(t *testing.T) {
	// Grid2D(7): min-fill's initial upper bound is 5 but ghw is 3, so an
	// external claim of the optimum has real pruning room below the
	// heuristic bound.
	h := hypergraph.Grid2D(7)
	solo := BBGHW(h, Options{Seed: 1})
	if !solo.Exact {
		t.Fatalf("solo BB did not close Grid2D(7): width %d, stop %q", solo.Width, solo.Stop)
	}
	inc := NewIncumbent()
	inc.Claim(solo.Width)
	shared := BBGHW(h, Options{Seed: 1, Shared: inc})
	if !shared.Exact || shared.Width != solo.Width {
		t.Fatalf("shared run: width=%d exact=%v, want %d exact", shared.Width, shared.Exact, solo.Width)
	}
	if shared.Ordering != nil {
		t.Fatal("incumbent-realized width must come back with a nil Ordering")
	}
	if shared.Nodes >= solo.Nodes {
		t.Fatalf("incumbent did not prune: %d nodes with the claim vs %d solo", shared.Nodes, solo.Nodes)
	}
}
