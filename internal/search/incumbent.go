package search

import (
	"math"
	"sync/atomic"
)

// Incumbent is a cross-solver anytime upper bound: an atomic width that any
// solver in a portfolio race can lower and every solver can prune against.
// It generalizes the parallel BB engine's in-run shared bound (bbShared.ub)
// to bounds shared *between* solver runs. The invariant callers must keep is
// that every claimed width is realized by a decomposition some solver has
// actually materialized — the serial BB search treats an adopted incumbent
// exactly like Options.InitialUB ("a solution of this width exists
// elsewhere"), so an unrealizable claim would corrupt exactness proofs.
//
// A nil *Incumbent is valid and inert: Best reports "no bound", Claim
// reports false.
type Incumbent struct {
	w atomic.Int64
}

// unsetWidth is the sentinel for "no claim yet": larger than any real width.
const unsetWidth = math.MaxInt32

// NewIncumbent returns an incumbent with no claim.
func NewIncumbent() *Incumbent {
	u := &Incumbent{}
	u.w.Store(unsetWidth)
	return u
}

// Best returns the lowest claimed width, or math.MaxInt32 when nothing has
// been claimed yet.
func (u *Incumbent) Best() int {
	if u == nil {
		return unsetWidth
	}
	return int(u.w.Load())
}

// Claim installs w as the incumbent if it is strictly lower than the current
// claim, reporting whether it won the race. Only widths realized by an
// actual decomposition may be claimed (see the type comment).
func (u *Incumbent) Claim(w int) bool {
	if u == nil {
		return false
	}
	for {
		cur := u.w.Load()
		if int64(w) >= cur {
			return false
		}
		if u.w.CompareAndSwap(cur, int64(w)) {
			return true
		}
	}
}
