package search

import (
	"container/heap"
	"sort"
	"strconv"
	"strings"

	"hypertree/internal/budget/faultinject"
	"hypertree/internal/hypergraph"
	"hypertree/internal/obs"
	"hypertree/internal/reduce"
)

// AStarTreewidth runs A*-tw (thesis Chapter 5, Figure 5.1): best-first
// search over elimination-ordering prefixes with f = max(g, h, f_parent),
// the treewidth elimination set / PR2 pruning and simplicial reductions.
// On budget exhaustion it returns the best proved lower bound (the maximum
// f-value expanded, thesis §5.3) with Exact=false.
func AStarTreewidth(g *hypergraph.Graph, opts Options) Result {
	return runAStar(newTWModel(g, opts.Seed), opts, "astar-tw")
}

// AStarGHW runs A*-ghw (thesis Chapter 9, Figure 9.1): the same best-first
// search under the generalized-hypertree-width cost model with exact set
// covers and the tw-ksc-width heuristic.
func AStarGHW(h *hypergraph.Hypergraph, opts Options) Result {
	return runAStar(newGHWModel(h, opts.Seed, true), opts, "astar-ghw")
}

// state is an A* search node. Prefixes are reconstructed by following
// parent pointers (thesis §5.2.2); children lists are not stored (§5.2.3 —
// they are regenerated at expansion, when the graph state is available).
type state struct {
	parent  *state
	vertex  int32 // vertex eliminated to reach this state; -1 at the root
	depth   int32
	g, f    int32
	reduced bool // this state's vertex was a forced reduction
}

func (s *state) prefix(buf []int) []int {
	buf = buf[:0]
	for t := s; t.parent != nil; t = t.parent {
		buf = append(buf, int(t.vertex))
	}
	for i, j := 0, len(buf)-1; i < j; i, j = i+1, j-1 {
		buf[i], buf[j] = buf[j], buf[i]
	}
	return buf
}

// pq orders states by ascending f, breaking ties by descending depth
// (thesis §5.3: deeper states first reach goals sooner).
type pq []*state

func (q pq) Len() int { return len(q) }
func (q pq) Less(i, j int) bool {
	if q[i].f != q[j].f {
		return q[i].f < q[j].f
	}
	return q[i].depth > q[j].depth
}
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(*state)) }
func (q *pq) Pop() interface{} {
	old := *q
	n := len(old)
	x := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return x
}

// finish stamps the model's cover-cache counters onto a result.
func finish(m model, r Result) Result {
	s := m.cacheStats()
	r.CoverCacheHits, r.CoverCacheMisses = s.Hits, s.Misses
	return r
}

func runAStar(m model, opts Options, defaultLabel string) Result {
	b := opts.budgetFor()
	shape := &gauges{}
	stats, rec, label := instrument(m, opts, b, defaultLabel, shape)
	queue := &pq{}
	maxOpen := 0
	// ret finalizes any exit path: cover-cache snapshot, algo_stop event,
	// stats attachment.
	ret := func(r Result) Result {
		r = finish(m, r)
		if s := m.cacheStats(); s.Hits+s.Misses > 0 {
			rec.Record(obs.Event{Kind: obs.KindCoverCache, T: b.Elapsed(),
				CacheHits: s.Hits, CacheMisses: s.Misses,
				CacheEvictions: s.Evictions, CacheSize: s.Size})
		}
		rec.Record(obs.Event{Kind: obs.KindStop, T: b.Elapsed(), Algo: label,
			Width: r.Width, LowerBound: r.LowerBound, Exact: r.Exact,
			Nodes: r.Nodes, Open: queue.Len(), MaxOpen: maxOpen,
			Closed: int(shape.closed.Load()), Stop: string(r.Stop)})
		r.Stats = stats
		return r
	}
	improve := func(w int) {
		rec.Record(obs.Event{Kind: obs.KindImprove, T: b.Elapsed(), Width: w, Nodes: b.Nodes()})
	}
	lowerBound := func(l int) {
		rec.Record(obs.Event{Kind: obs.KindLowerBound, T: b.Elapsed(), LowerBound: l, Nodes: b.Nodes()})
	}

	lb, ub, ordering := m.initial()
	if opts.InitialUB > 0 && opts.InitialUB < ub {
		ub = opts.InitialUB
		ordering = nil
	}
	improve(ub)
	lowerBound(lb)
	e := m.graph()
	if lb >= ub || e.N() == 0 {
		return ret(Result{Width: ub, LowerBound: ub, Exact: true, Ordering: ordering,
			Nodes: 0, Elapsed: b.Elapsed()})
	}

	heap.Push(queue, &state{parent: nil, vertex: -1, g: 0, f: int32(lb)})
	maxPoppedF := lb
	var prefixBuf []int
	// Dedup map: eliminated-set key -> best g pushed. PR2 is superseded by
	// (and incompatible with) dedup; see Options.DedupeStates.
	var seenSets map[string]int32
	usePR2 := !opts.DisablePR2
	if opts.DedupeStates {
		seenSets = make(map[string]int32)
		usePR2 = false
	}

	for queue.Len() > 0 {
		shape.open.Store(int64(queue.Len()))
		shape.closed.Store(int64(len(seenSets)))
		if !b.Tick() {
			break
		}
		faultinject.Hit(faultinject.SiteSearchExpand)
		s := heap.Pop(queue).(*state)
		shape.depth.Store(int64(s.depth))
		if int(s.f) >= ub {
			// Everything left is at least as wide as the known solution.
			maxPoppedF = ub
			lowerBound(ub)
			return ret(Result{Width: ub, LowerBound: ub, Exact: true,
				Ordering: ordering, Nodes: b.Nodes(), Elapsed: b.Elapsed()})
		}
		if int(s.f) > maxPoppedF {
			maxPoppedF = int(s.f) // new proved lower bound (thesis §5.3)
			lowerBound(maxPoppedF)
		}
		prefixBuf = s.prefix(prefixBuf)
		e.SetPrefix(prefixBuf)

		// Goal test: the remaining graph cannot charge more than g.
		if m.completionCap() <= int(s.g) {
			improve(int(s.g))
			return ret(Result{Width: int(s.g), LowerBound: int(s.g), Exact: true,
				Ordering: completion(e, prefixBuf), Nodes: b.Nodes(), Elapsed: b.Elapsed()})
		}

		// Children: forced reduction or all live vertices with PR2.
		var children []int
		childReduced := false
		if !opts.DisableReductions {
			if r := reduce.FindReduction(e, maxPoppedF, m.allowAlmostSimplicial()); r >= 0 {
				children = []int{r}
				childReduced = true
			}
		}
		if children == nil {
			children = e.LiveVertices(nil)
		}
		m.setCostCap(ub)
		for _, v := range children {
			// Child evaluations dominate the work; count them against the
			// budget too.
			if !b.Tick() {
				break
			}
			if !childReduced && !s.reduced && usePR2 && s.parent != nil && pr2Skip(m, v) {
				continue
			}
			cost := m.stepCost(v)
			g2 := max2(int(s.g), cost)
			if g2 >= ub {
				continue
			}
			if seenSets != nil {
				key := setKey(prefixBuf, v)
				if old, ok := seenSets[key]; ok && old <= int32(g2) {
					continue // dominated duplicate
				}
				seenSets[key] = int32(g2)
			}
			e.Eliminate(v)
			h := 0
			if !opts.DisableNodeLB {
				h = m.remainderLB()
			}
			e.Restore()
			f2 := max3(g2, h, int(s.f))
			if f2 >= ub {
				continue // memory-saving measure, thesis §5.2.3
			}
			heap.Push(queue, &state{
				parent:  s,
				vertex:  int32(v),
				depth:   s.depth + 1,
				g:       int32(g2),
				f:       int32(f2),
				reduced: childReduced,
			})
			if queue.Len() > maxOpen {
				maxOpen = queue.Len()
				shape.maxOpen.Store(int64(maxOpen))
			}
		}
	}

	if b.Stopped() {
		// Anytime result: ub from the heuristic, lb from the last expansion.
		return ret(Result{Width: ub, LowerBound: maxPoppedF, Exact: false,
			Ordering: ordering, Nodes: b.Nodes(), Elapsed: b.Elapsed(), Stop: b.Reason()})
	}
	// Queue exhausted without reaching a goal below ub: ub is optimal
	// (thesis §5.1, final return).
	lowerBound(ub)
	return ret(Result{Width: ub, LowerBound: ub, Exact: true, Ordering: ordering,
		Nodes: b.Nodes(), Elapsed: b.Elapsed()})
}

// setKey encodes prefix ∪ {v} as an order-independent string.
func setKey(prefix []int, v int) string {
	set := make([]int, 0, len(prefix)+1)
	set = append(set, prefix...)
	set = append(set, v)
	sort.Ints(set)
	var sb strings.Builder
	for _, x := range set {
		sb.WriteString(strconv.Itoa(x))
		sb.WriteByte(',')
	}
	return sb.String()
}
