// Package search implements the exact algorithms of the thesis: the
// branch-and-bound searches over elimination orderings (BB-tw in the style
// of QuickBB/BB-tw, thesis §4.4; BB-ghw, Chapter 8) and the A* searches
// (A*-tw, Chapter 5; A*-ghw, Chapter 9). All four explore the same search
// tree — prefixes of elimination orderings — and share the pruning
// machinery: PR1, PR2, simplicial / strongly-almost-simplicial reductions,
// and per-node lower bounds.
package search

import (
	"context"
	"math/rand"
	"sync/atomic"
	"time"

	"hypertree/internal/bounds"
	"hypertree/internal/budget"
	"hypertree/internal/elim"
	"hypertree/internal/elimgraph"
	"hypertree/internal/hypergraph"
	"hypertree/internal/obs"
	"hypertree/internal/setcover"
)

// Options controls a search run.
type Options struct {
	// Timeout bounds wall-clock time; zero means unlimited.
	Timeout time.Duration
	// MaxNodes bounds the number of search-tree nodes expanded; zero means
	// unlimited.
	MaxNodes int64
	// Ctx optionally cancels the search at the cooperative checkpoints
	// (every 256 expansions); on cancellation the search returns its
	// best-so-far anytime result.
	Ctx context.Context
	// Budget, when non-nil, supersedes Ctx/Timeout/MaxNodes: the search
	// draws work units from it. core.Decompose shares one budget across an
	// algorithm run and its post-processing.
	Budget *budget.B
	// Seed drives the tie-breaking randomness of the bound heuristics.
	Seed int64
	// InitialUB, when positive, primes the search with a known upper bound
	// (widths >= InitialUB are pruned; a solution of exactly InitialUB is
	// assumed to exist elsewhere).
	InitialUB int
	// Shared, when non-nil, is a live cross-solver incumbent (a portfolio
	// race). The search adopts it at start like InitialUB and the serial
	// engine re-reads it at its pruning sync points, so another solver's
	// improvement tightens this search's pruning mid-run. The search never
	// writes to it — publication is the portfolio driver's job (it intercepts
	// improve events), keeping the "claims are realized elsewhere" invariant
	// in one place. Result.Ordering is nil when the final width came from the
	// incumbent rather than from an ordering this search realized itself.
	Shared *Incumbent
	// Engine, when non-nil, is the cover engine the ghw searches build their
	// evaluators on instead of creating their own, sharing its memo cache
	// with every other solver on the same engine. The search does not attach
	// its recorder to an injected engine (the engine's recorder fields are
	// unsynchronized; the sharing caller attaches one before fan-out).
	// Ignored by the treewidth searches.
	Engine *setcover.Engine
	// DisableReductions turns off the simplicial/almost-simplicial rules
	// (thesis §4.4.3); used by the ablation benchmarks.
	DisableReductions bool
	// DisablePR2 turns off pruning rule 2 (thesis §4.4.5).
	DisablePR2 bool
	// NodeLB selects whether per-node lower bounds are computed (minor-min-
	// width at interior nodes). Disabling degrades to plain depth-first
	// branch and bound on g alone.
	DisableNodeLB bool
	// Recorder, when non-nil, receives the run's instrumentation events
	// (improvements, checkpoints, cover-cache snapshots; see internal/obs).
	// Every run additionally aggregates into the RunStats attached to its
	// Result, whether or not a Recorder is set.
	Recorder obs.Recorder
	// Label names the run in instrumentation events; the entry points
	// default it ("astar-tw", "bb-ghw", ...).
	Label string
	// Workers selects the number of branch-and-bound worker goroutines.
	// Values <= 1 run the unchanged serial search (bit-identical to previous
	// releases). Larger values run the work-stealing parallel engine: the
	// root frontier is split into disjoint prefix subtrees, workers draw them
	// from per-worker deques (stealing when their own runs dry), and a shared
	// atomic incumbent width makes any worker's improvement tighten pruning
	// everywhere at once. Parallel runs keep the budget/anytime/panic
	// contracts (one shared budget; a worker panic cancels the siblings and
	// surfaces as *budget.PanicError), find the same optimal width and
	// exactness flag as serial runs, but may return a different optimal
	// ordering and explore a different number of nodes. Only the BB entry
	// points parallelize; A* ignores the knob (its shared open list does not
	// decompose the same way).
	Workers int
	// DedupeStates enables A* duplicate detection: two prefixes eliminating
	// the same vertex set leave the same residual graph, so only the one
	// with the smaller g needs expanding. An extension beyond the thesis's
	// algorithms (it notes the exponential queue as the main limitation).
	// Dedup subsumes PR2's non-adjacent case (swapped pairs reach the same
	// set), and PR2 is disabled alongside it because the two prunings'
	// correctness arguments do not compose.
	DedupeStates bool
}

// Result reports the outcome of a search.
type Result struct {
	// Width is the smallest width found (an upper bound on the optimum;
	// equal to it when Exact).
	Width int
	// LowerBound is the best proved lower bound on the optimum.
	LowerBound int
	// Exact reports whether Width was proved optimal.
	Exact bool
	// Ordering is an elimination ordering achieving Width. It is nil when
	// the priming InitialUB was never improved upon.
	Ordering []int
	// Nodes is the number of evaluated search states (each child evaluation
	// — step cost plus remainder lower bound — counts once; these dominate
	// the work and are what the MaxNodes budget limits).
	Nodes int64
	// Elapsed is the wall-clock duration of the search.
	Elapsed time.Duration
	// Stop says why the search ended early (deadline, node budget,
	// canceled); StopNone when it ran to completion and Exact holds.
	Stop budget.StopReason
	// CoverCacheHits and CoverCacheMisses report the bag-cover memo cache
	// counters of the ghw cost model's engine (zero for the treewidth
	// searches, which never cover bags).
	CoverCacheHits   int64
	CoverCacheMisses int64
	// Steals and Requeues are the work-stealing counters of a parallel run
	// (Options.Workers > 1; zero for serial runs): tasks a worker took from
	// another worker's deque, and tasks pushed back into the deques when a
	// worker split a subtree to feed idle peers.
	Steals   int64
	Requeues int64
	// Stats aggregates the run's instrumentation events: the anytime-width
	// timeline, proven-lower-bound trajectory, open-list high-water mark and
	// cover-cache traffic. Always populated.
	Stats *obs.RunStats
}

// budgetFor returns the run budget: the caller-supplied one, or a fresh
// budget built from the legacy Timeout/MaxNodes fields.
func (o Options) budgetFor() *budget.B {
	if o.Budget != nil {
		return o.Budget
	}
	return budget.New(o.Ctx, budget.Limits{Timeout: o.Timeout, MaxNodes: o.MaxNodes})
}

// gauges is the search-shape telemetry shared between a search loop and its
// budget checkpoint callback: the loop stores its current open-list size,
// duplicate-set size, prefix depth and backtrack count into atomics, and the
// checkpoint observer stamps them onto every checkpoint event. Atomics keep
// the loop's cost to one store per expansion and the callback race-free.
type gauges struct {
	open, maxOpen, closed atomic.Int64 // A*: open list, high-water, dedup set
	depth, backtracks     atomic.Int64 // BB: prefix depth, exhausted subtrees
}

// instrument sets up a run's recorder stack: every search aggregates into a
// fresh RunStats (attached to its Result), teed with the caller's Recorder;
// checkpoint events piggyback on the budget's cancellation polls — carrying
// g's search-shape gauges and sampled mem_sample snapshots — and sampled
// cover_cache events ride the ghw engine's queries. It emits the algo_start
// event.
func instrument(m model, opts Options, b *budget.B, defaultLabel string, g *gauges) (*obs.RunStats, obs.Recorder, string) {
	stats := obs.NewRunStats()
	rec := obs.Tee(stats, opts.Recorder)
	label := opts.Label
	if label == "" {
		label = defaultLabel
	}
	if opts.Engine == nil {
		// An injected engine is shared across concurrent solvers; its recorder
		// fields are unsynchronized, so only the sharing caller attaches one
		// (before fan-out). Internally-created engines are private to this run.
		m.setRecorder(rec, b.StartTime())
	}
	ms := obs.NewMemSampler(0)
	b.OnCheckpoint(func(nodes int64, elapsed time.Duration) {
		rec.Record(obs.Event{Kind: obs.KindCheckpoint, T: elapsed, Nodes: nodes,
			Open: int(g.open.Load()), MaxOpen: int(g.maxOpen.Load()),
			Closed: int(g.closed.Load()), Depth: int(g.depth.Load()),
			Backtracks: g.backtracks.Load()})
		ms.Sample(rec, elapsed)
	})
	n, edges := m.size()
	rec.Record(obs.Event{Kind: obs.KindStart, T: b.Elapsed(), Algo: label, N: n, M: edges})
	return stats, rec, label
}

// model abstracts the cost structure shared by the treewidth and ghw
// searches. The elimination graph it owns is the single mutable search
// state.
type model interface {
	graph() *elimgraph.ElimGraph
	// stepCost is the cost of eliminating v from the current state: the
	// live degree (treewidth) or the bag cover size (ghw). It must be
	// called before the elimination.
	stepCost(v int) int
	// remainderLB lower-bounds the optimal width of any completion of the
	// current state.
	remainderLB() int
	// completionCap upper-bounds the cost charged by completing the current
	// state in an arbitrary order (PR1; live-1 for treewidth, live for ghw).
	completionCap() int
	// initial returns the root lower bound, a heuristic upper bound and an
	// ordering achieving it.
	initial() (lb, ub int, ordering []int)
	// allowAlmostSimplicial reports whether the strongly-almost-simplicial
	// reduction is sound under this cost model.
	allowAlmostSimplicial() bool
	// pr2Adjacent reports whether PR2's adjacent case is sound under this
	// cost model.
	pr2Adjacent() bool
	// setCostCap tells the model that step costs of cap or above are
	// equivalent (they will be pruned), letting the ghw model bound its
	// per-bag exact set-cover searches. No-op for the treewidth model.
	setCostCap(cap int)
	// cacheStats reports the cover engine's cache counters (zeros for the
	// treewidth model).
	cacheStats() setcover.CacheStats
	// setRecorder attaches the run's recorder to the model's cover engine
	// for sampled cover_cache events, with the budget's start as the engine
	// clock base so their t_ns shares the trace's time base. No-op for the
	// treewidth model.
	setRecorder(rec obs.Recorder, start time.Time)
	// size reports the instance dimensions (vertices, edges or hyperedges).
	size() (n, m int)
}

// twModel is the treewidth cost model (thesis Chapters 4–5).
type twModel struct {
	e   *elimgraph.ElimGraph
	g   *hypergraph.Graph
	rng *rand.Rand
}

func newTWModel(g *hypergraph.Graph, seed int64) *twModel {
	return &twModel{e: elimgraph.New(g), g: g, rng: rand.New(rand.NewSource(seed))}
}

func (m *twModel) graph() *elimgraph.ElimGraph { return m.e }
func (m *twModel) stepCost(v int) int          { return m.e.Degree(v) }
func (m *twModel) remainderLB() int            { return bounds.MinorMinWidthElim(m.e, m.rng) }
func (m *twModel) completionCap() int {
	if m.e.Live() == 0 {
		return 0
	}
	return m.e.Live() - 1
}
func (m *twModel) initial() (int, int, []int) {
	lb := bounds.TreewidthLowerBound(m.g, m.rng)
	order := elim.MinFillOrdering(m.g, m.rng)
	ub := elim.WidthOfGraph(m.g, order)
	return lb, ub, order
}
func (m *twModel) allowAlmostSimplicial() bool         { return true }
func (m *twModel) pr2Adjacent() bool                   { return true }
func (m *twModel) setCostCap(int)                      {}
func (m *twModel) cacheStats() setcover.CacheStats     { return setcover.CacheStats{} }
func (m *twModel) setRecorder(obs.Recorder, time.Time) {}
func (m *twModel) size() (int, int)                    { return m.g.N(), m.g.M() }

// ghwModel is the generalized-hypertree-width cost model (Chapters 8–9).
type ghwModel struct {
	h        *hypergraph.Hypergraph
	ev       *elim.GHWEvaluator
	rng      *rand.Rand
	maxArity int
}

func newGHWModel(h *hypergraph.Hypergraph, seed int64, exactCovers bool) *ghwModel {
	rng := rand.New(rand.NewSource(seed))
	return &ghwModel{
		h:        h,
		ev:       elim.NewGHWEvaluator(h, exactCovers, rng),
		rng:      rng,
		maxArity: h.MaxArity(),
	}
}

// newGHWModelShared builds a ghw model on an existing cover engine. The
// parallel search gives every worker its own model (the elimination graph
// and evaluator scratch are single-goroutine state) but one shared engine,
// so a bag solved by any worker is a memo hit for all of them.
func newGHWModelShared(eng *setcover.Engine, seed int64, exactCovers bool) *ghwModel {
	rng := rand.New(rand.NewSource(seed))
	h := eng.Hypergraph()
	return &ghwModel{
		h:        h,
		ev:       elim.NewGHWEvaluatorWithEngine(eng, exactCovers, rng),
		rng:      rng,
		maxArity: h.MaxArity(),
	}
}

func (m *ghwModel) graph() *elimgraph.ElimGraph { return m.ev.E }
func (m *ghwModel) stepCost(v int) int          { return m.ev.BagCost(v) }
func (m *ghwModel) remainderLB() int {
	return bounds.TwKscWidthFrom(bounds.MinorMinWidthElim(m.ev.E, m.rng), m.maxArity)
}
func (m *ghwModel) completionCap() int { return m.ev.E.Live() }
func (m *ghwModel) initial() (int, int, []int) {
	lb := bounds.TwKscWidthFrom(bounds.MinorMinWidthElim(m.ev.E, m.rng), m.maxArity)
	order := elim.MinFillOrdering(m.h.PrimalGraph(), m.rng)
	// Greedy covers for the priming bound: always cheap, still an upper
	// bound; the search's exact covers are capped by it from then on. The
	// priming evaluator shares the search's cover engine, so its bags seed
	// the memo cache the search then hits.
	ub := elim.NewGHWEvaluatorWithEngine(m.ev.Engine(), false, m.rng).Width(order)
	return lb, ub, order
}
func (m *ghwModel) allowAlmostSimplicial() bool     { return false }
func (m *ghwModel) pr2Adjacent() bool               { return false }
func (m *ghwModel) setCostCap(cap int)              { m.ev.Cap = cap }
func (m *ghwModel) cacheStats() setcover.CacheStats { return m.ev.CoverCacheStats() }
func (m *ghwModel) setRecorder(rec obs.Recorder, start time.Time) {
	m.ev.Engine().SetRecorderAt(rec, 0, start)
}
func (m *ghwModel) size() (int, int) { return m.h.N(), m.h.M() }

// pr2Skip reports whether child v of the current state can be pruned by
// pruning rule 2, given that `last` was eliminated immediately before and
// was not a forced reduction. The rule keeps one canonical order of every
// swappable consecutive pair (the order eliminating the larger-indexed
// vertex first).
func pr2Skip(m model, v int) bool {
	e := m.graph()
	if e.Depth() == 0 {
		return false
	}
	last, clique, fills := e.LastStep()
	if v >= last {
		return false
	}
	adjacent := false
	for _, u := range clique {
		if u == v {
			adjacent = true
			break
		}
	}
	if !adjacent {
		// Non-adjacent consecutive eliminations commute exactly.
		return true
	}
	if !m.pr2Adjacent() {
		return false
	}
	// Adjacent case (thesis PR2): both orders have equal width when each of
	// last and v has a still-live neighbor (before either elimination) that
	// is not a neighbor of the other. Reconstruct N_before(v): current
	// neighbors of v minus fill edges incident to v from last's elimination,
	// plus last itself.
	nvBefore := make(map[int]struct{})
	var buf []int
	for _, u := range e.Neighbors(v, buf) {
		nvBefore[u] = struct{}{}
	}
	for _, f := range fills {
		if f[0] == v {
			delete(nvBefore, f[1])
		} else if f[1] == v {
			delete(nvBefore, f[0])
		}
	}
	nvBefore[last] = struct{}{}
	nLast := make(map[int]struct{}, len(clique))
	for _, u := range clique {
		nLast[u] = struct{}{}
	}
	condA := false
	for u := range nLast {
		if u == v {
			continue
		}
		if _, ok := nvBefore[u]; !ok {
			condA = true
			break
		}
	}
	if !condA {
		return false
	}
	for u := range nvBefore {
		if u == last {
			continue
		}
		if _, ok := nLast[u]; !ok {
			return true
		}
	}
	return false
}

// completion returns prefix extended by all remaining live vertices (in
// index order) — a full ordering whose width is bounded by
// max(g, completionCap) per PR1.
func completion(e *elimgraph.ElimGraph, prefix []int) []int {
	out := append([]int(nil), prefix...)
	for v := 0; v < e.N(); v++ {
		if !e.Eliminated(v) {
			out = append(out, v)
		}
	}
	return out
}

func max2(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func max3(a, b, c int) int { return max2(max2(a, b), c) }
