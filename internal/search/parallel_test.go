package search

import (
	"errors"
	"testing"

	"hypertree/internal/budget"
	"hypertree/internal/budget/faultinject"
	"hypertree/internal/elim"
	"hypertree/internal/hypergraph"
)

// TestParallelBBSmoke is the `make par-smoke` gate: one mid-size instance,
// Workers=4 under the race detector, parallel width equal to serial.
func TestParallelBBSmoke(t *testing.T) {
	h := hypergraph.Grid2D(6)
	serial := BBGHW(h, Options{Seed: 1})
	par := BBGHW(h, Options{Seed: 1, Workers: 4})
	if !serial.Exact || !par.Exact {
		t.Fatalf("smoke instance did not close: serial exact=%v, parallel exact=%v", serial.Exact, par.Exact)
	}
	if par.Width != serial.Width {
		t.Fatalf("parallel width %d != serial width %d", par.Width, serial.Width)
	}
	if par.Ordering != nil {
		if w := elim.NewGHWEvaluator(h, true, nil).Width(par.Ordering); w != par.Width {
			t.Fatalf("parallel ordering has width %d, reported %d", w, par.Width)
		}
	}
}

// TestParallelBBGHWMatchesSerial proves the exactness contract: on instances
// the serial search closes, every worker count closes them at the same width.
func TestParallelBBGHWMatchesSerial(t *testing.T) {
	for _, tc := range []struct {
		name string
		h    *hypergraph.Hypergraph
	}{
		{"grid2d_5", hypergraph.Grid2D(5)},
		{"grid2d_6", hypergraph.Grid2D(6)},
		{"clique_7", hypergraph.CliqueHypergraph(7)},
		{"adder_5", hypergraph.Adder(5)},
		{"rand_10_12", hypergraph.RandomHypergraph(10, 12, 1, 3, 7)},
		{"rand_12_14", hypergraph.RandomHypergraph(12, 14, 2, 4, 11)},
	} {
		serial := BBGHW(tc.h, Options{Seed: 1})
		if !serial.Exact {
			t.Fatalf("%s: serial run unexpectedly not exact", tc.name)
		}
		for _, w := range []int{2, 4} {
			par := BBGHW(tc.h, Options{Seed: 1, Workers: w})
			if !par.Exact {
				t.Errorf("%s workers=%d: not exact", tc.name, w)
			}
			if par.Width != serial.Width {
				t.Errorf("%s workers=%d: width %d != serial %d", tc.name, w, par.Width, serial.Width)
			}
			if par.LowerBound != serial.LowerBound {
				t.Errorf("%s workers=%d: lb %d != serial %d", tc.name, w, par.LowerBound, serial.LowerBound)
			}
			if par.Ordering != nil {
				if got := elim.NewGHWEvaluator(tc.h, true, nil).Width(par.Ordering); got != par.Width {
					t.Errorf("%s workers=%d: ordering width %d != reported %d", tc.name, w, got, par.Width)
				}
			}
		}
	}
}

// TestParallelBBTreewidthMatchesSerial is the same contract for BB-tw.
func TestParallelBBTreewidthMatchesSerial(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *hypergraph.Graph
	}{
		{"K5", hypergraph.CliqueGraph(5)},
		{"grid4", hypergraph.Grid(4)},
		{"queen4", hypergraph.Queen(4)},
		{"queen5", hypergraph.Queen(5)},
	} {
		serial := BBTreewidth(tc.g, Options{Seed: 1})
		for _, w := range []int{2, 4} {
			par := BBTreewidth(tc.g, Options{Seed: 1, Workers: w})
			if par.Exact != serial.Exact || par.Width != serial.Width {
				t.Errorf("%s workers=%d: width=%d exact=%v, serial width=%d exact=%v",
					tc.name, w, par.Width, par.Exact, serial.Width, serial.Exact)
			}
			if par.Ordering != nil {
				if got := elim.WidthOfGraph(tc.g, par.Ordering); got != par.Width {
					t.Errorf("%s workers=%d: ordering width %d != reported %d", tc.name, w, got, par.Width)
				}
			}
		}
	}
}

// TestParallelBBAnytimeUnderBudget: a starved parallel run must still return
// a usable anytime result (finite width from the greedy root bound or
// better) and report the interruption.
func TestParallelBBAnytimeUnderBudget(t *testing.T) {
	h := hypergraph.Grid2D(8)
	r := BBGHW(h, Options{Seed: 1, Workers: 4, MaxNodes: 200})
	if r.Exact {
		t.Fatalf("200-node run on grid2d_8 cannot be exact")
	}
	if r.Stop != budget.StopNodes {
		t.Errorf("stop reason %q, want %q", r.Stop, budget.StopNodes)
	}
	if r.Width <= 0 || r.Width > h.M() {
		t.Errorf("anytime width %d out of range", r.Width)
	}
	if r.LowerBound > r.Width {
		t.Errorf("lb %d > width %d", r.LowerBound, r.Width)
	}
}

// TestParallelBBWorkerPanicContained arms the per-task worker fault site so
// one worker goroutine panics mid-search; the run must surface a single
// *budget.PanicError through budget.Guard, not crash the process.
func TestParallelBBWorkerPanicContained(t *testing.T) {
	defer faultinject.Reset()
	faultinject.Arm(faultinject.SiteParallelWorker, 2, func() { panic("injected worker failure") })
	h := hypergraph.Grid2D(6)
	b := budget.New(nil, budget.Limits{})
	err := budget.Guard(b, func() error {
		BBGHW(h, Options{Seed: 1, Workers: 4})
		return nil
	})
	if err == nil {
		t.Fatal("injected worker panic did not surface")
	}
	var pe *budget.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("got %T (%v), want *budget.PanicError", err, err)
	}
	if b.Reason() != budget.StopPanic {
		t.Errorf("guard budget reason %q, want %q", b.Reason(), budget.StopPanic)
	}
}

// TestParallelBBStealCounters: with enough workers on a real search some
// tasks are seeded and the counters stay consistent (non-negative; steals
// can be zero when one worker drains everything first).
func TestParallelBBStealCounters(t *testing.T) {
	h := hypergraph.Grid2D(6)
	r := BBGHW(h, Options{Seed: 1, Workers: 4})
	if r.Steals < 0 || r.Requeues < 0 {
		t.Fatalf("negative counters: steals=%d requeues=%d", r.Steals, r.Requeues)
	}
	if s := BBGHW(h, Options{Seed: 1}); s.Steals != 0 || s.Requeues != 0 {
		t.Fatalf("serial run reports steals=%d requeues=%d, want 0", s.Steals, s.Requeues)
	}
}
