package decomp

import (
	"math/rand"
	"testing"
	"time"

	"hypertree/internal/hypergraph"
)

// example5 returns the thesis Example 5 hypergraph: vertices x1..x6
// (ids 0..5), hyperedges e0={x1,x2,x3}, e1={x1,x5,x6}, e2={x3,x4,x5}.
func example5() *hypergraph.Hypergraph {
	h := hypergraph.NewHypergraph(6)
	h.AddEdge(0, 1, 2)
	h.AddEdge(0, 4, 5)
	h.AddEdge(2, 3, 4)
	return h
}

// example5TD returns the width-2 tree decomposition of Figure 2.6(b):
// root {x1,x3,x5} with children {x1,x2,x3}, {x3,x4,x5}, {x1,x5,x6}.
func example5TD() *TreeDecomposition {
	return &TreeDecomposition{
		Tree: Tree{Parent: []int{-1, 0, 0, 0}, Root: 0},
		Bags: [][]int{{0, 2, 4}, {0, 1, 2}, {2, 3, 4}, {0, 4, 5}},
	}
}

func TestExample5TDValid(t *testing.T) {
	h := example5()
	td := example5TD()
	if err := td.Validate(h); err != nil {
		t.Fatal(err)
	}
	if td.Width() != 2 {
		t.Fatalf("width = %d, want 2", td.Width())
	}
}

func TestValidateRejectsMissingEdgeCoverage(t *testing.T) {
	h := example5()
	td := example5TD()
	td.Bags[3] = []int{0, 4} // drop x6: edge e1 no longer covered
	if err := td.Validate(h); err == nil {
		t.Fatal("expected error for uncovered hyperedge")
	}
}

func TestValidateRejectsDisconnectedVertex(t *testing.T) {
	h := example5()
	// x1 (0) appears in bags 1 and 3 but not in the root connecting them.
	td := &TreeDecomposition{
		Tree: Tree{Parent: []int{-1, 0, 0, 0}, Root: 0},
		Bags: [][]int{{2, 4}, {0, 1, 2}, {2, 3, 4}, {0, 4, 5}},
	}
	if err := td.Validate(h); err == nil {
		t.Fatal("expected connectedness violation")
	}
}

func TestValidateRejectsBadTrees(t *testing.T) {
	h := example5()
	cases := map[string]*TreeDecomposition{
		"cycle": {
			Tree: Tree{Parent: []int{1, 0}, Root: 0},
			Bags: [][]int{{0, 1, 2, 3, 4, 5}, {0, 1}},
		},
		"bad root": {
			Tree: Tree{Parent: []int{-1}, Root: 5},
			Bags: [][]int{{0, 1, 2, 3, 4, 5}},
		},
		"root has parent": {
			Tree: Tree{Parent: []int{0}, Root: 0},
			Bags: [][]int{{0, 1, 2, 3, 4, 5}},
		},
		"unsorted bag": {
			Tree: Tree{Parent: []int{-1}, Root: 0},
			Bags: [][]int{{5, 4, 3, 2, 1, 0}},
		},
		"bag count mismatch": {
			Tree: Tree{Parent: []int{-1, 0}, Root: 0},
			Bags: [][]int{{0, 1, 2, 3, 4, 5}},
		},
		"invalid vertex": {
			Tree: Tree{Parent: []int{-1}, Root: 0},
			Bags: [][]int{{0, 1, 2, 3, 4, 99}},
		},
	}
	for name, td := range cases {
		if err := td.Validate(h); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestSingleBagTDValid(t *testing.T) {
	h := example5()
	td := &TreeDecomposition{
		Tree: Tree{Parent: []int{-1}, Root: 0},
		Bags: [][]int{{0, 1, 2, 3, 4, 5}},
	}
	if err := td.Validate(h); err != nil {
		t.Fatal(err)
	}
	if td.Width() != 5 {
		t.Fatalf("width = %d, want 5", td.Width())
	}
}

// Figure 2.7's width-2 GHD for Example 5.
func TestExample5GHDValid(t *testing.T) {
	h := example5()
	g := &GHD{
		TreeDecomposition: *example5TD(),
		Lambdas:           [][]int{{0, 2}, {0}, {2}, {1}},
	}
	if err := g.Validate(h); err != nil {
		t.Fatal(err)
	}
	if g.Width() != 2 {
		t.Fatalf("ghd width = %d, want 2", g.Width())
	}
}

func TestGHDValidateRejectsUncoveredChi(t *testing.T) {
	h := example5()
	g := &GHD{
		TreeDecomposition: *example5TD(),
		Lambdas:           [][]int{{0}, {0}, {2}, {1}}, // root bag {x1,x3,x5}: e0 misses x5
	}
	if err := g.Validate(h); err == nil {
		t.Fatal("expected λ-cover violation")
	}
}

func TestGHDValidateRejectsBadEdgeIndex(t *testing.T) {
	h := example5()
	g := &GHD{
		TreeDecomposition: *example5TD(),
		Lambdas:           [][]int{{0, 9}, {0}, {2}, {1}},
	}
	if err := g.Validate(h); err == nil {
		t.Fatal("expected invalid edge index error")
	}
}

func TestCompleteGHD(t *testing.T) {
	h := example5()
	// A single-node GHD covering everything; no edge is witnessed with
	// h ∈ λ(p) and h ⊆ χ(p) simultaneously... actually all three edges are
	// in λ of the node and inside its bag, so use a sparser λ-free variant:
	g := &GHD{
		TreeDecomposition: TreeDecomposition{
			Tree: Tree{Parent: []int{-1}, Root: 0},
			Bags: [][]int{{0, 1, 2, 3, 4, 5}},
		},
		Lambdas: [][]int{{0, 1, 2}},
	}
	if err := g.Validate(h); err != nil {
		t.Fatal(err)
	}
	if !g.IsComplete(h) {
		t.Fatal("single-bag GHD with all edges in λ should be complete")
	}

	g2 := &GHD{
		TreeDecomposition: *example5TD(),
		Lambdas:           [][]int{{0, 2}, {0}, {2}, {1}},
	}
	// g2 is complete already (each edge sits in a leaf with itself in λ).
	if !g2.IsComplete(h) {
		t.Fatal("example GHD should be complete")
	}

	// Break completeness: add a duplicate of e1 as e3. The decomposition is
	// still valid (e3 lives inside node 3's bag) but e3 appears in no λ, so
	// the GHD is not complete.
	h4 := example5()
	h4.AddEdge(0, 4, 5) // e3, duplicate of e1
	g3 := &GHD{
		TreeDecomposition: *example5TD(),
		Lambdas:           [][]int{{0, 2}, {0}, {2}, {1}},
	}
	if err := g3.Validate(h4); err != nil {
		t.Fatal(err)
	}
	if g3.IsComplete(h4) {
		t.Fatal("g3 should not be complete (e3 in no λ)")
	}
	w := g3.Width()
	nodesBefore := len(g3.Bags)
	g3.Complete(h4)
	if !g3.IsComplete(h4) {
		t.Fatal("Complete did not complete")
	}
	if err := g3.Validate(h4); err != nil {
		t.Fatalf("completed GHD invalid: %v", err)
	}
	if g3.Width() > w {
		t.Fatalf("Complete grew width from %d to %d", w, g3.Width())
	}
	if len(g3.Bags) != nodesBefore+1 {
		t.Fatalf("Complete added %d nodes, want 1", len(g3.Bags)-nodesBefore)
	}
}

func TestFromTreeDecomposition(t *testing.T) {
	h := example5()
	td := example5TD()
	for _, mode := range []CoverMode{CoverGreedy, CoverExact} {
		g, err := FromTreeDecomposition(h, td, mode, rand.New(rand.NewSource(1)))
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Validate(h); err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		if g.Width() != 2 {
			t.Fatalf("mode %v: width = %d, want 2", mode, g.Width())
		}
	}
}

func TestFromTreeDecompositionUncoverable(t *testing.T) {
	// Vertex 2 is in no hyperedge but sits in a bag.
	h := hypergraph.NewHypergraph(3)
	h.AddEdge(0, 1)
	td := &TreeDecomposition{
		Tree: Tree{Parent: []int{-1}, Root: 0},
		Bags: [][]int{{0, 1, 2}},
	}
	if _, err := FromTreeDecomposition(h, td, CoverExact, nil); err == nil {
		t.Fatal("expected uncoverable error")
	}
}

func TestTreeChildren(t *testing.T) {
	tr := Tree{Parent: []int{-1, 0, 0, 1}, Root: 0}
	ch := tr.Children()
	if len(ch[0]) != 2 || len(ch[1]) != 1 || len(ch[3]) != 0 {
		t.Fatalf("children = %v", ch)
	}
}

// Validate must handle degenerate deep trees in linear time: a 50k-node
// path used to take quadratic parent-chain walks. The budget here is
// generous (the old code needed ~1.25G steps; the new one 50k), so the test
// fails by timeout only if the quadratic behavior comes back.
func TestTreeValidateLinearOnDeepPath(t *testing.T) {
	const n = 50000
	parent := make([]int, n)
	parent[0] = -1
	for i := 1; i < n; i++ {
		parent[i] = i - 1 // node i hangs off node i-1: one long path
	}
	tr := Tree{Parent: parent, Root: 0}
	start := time.Now()
	if err := tr.Validate(); err != nil {
		t.Fatalf("path tree rejected: %v", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("Validate took %v on a 50k path; quadratic walk is back", d)
	}
	// A cycle far from the root must still be detected.
	parent[n-1] = n / 2
	parent[n/2] = n - 1
	if err := tr.Validate(); err == nil {
		t.Fatal("deep cycle not detected")
	}
}
