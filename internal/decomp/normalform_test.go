package decomp

import (
	"testing"

	"hypertree/internal/hypergraph"
)

func TestTransformLeafNormalFormExample5(t *testing.T) {
	h := example5()
	td := example5TD()
	lnf := TransformLeafNormalForm(h, td)
	if err := lnf.TD.Validate(h); err != nil {
		t.Fatalf("LNF not a valid TD: %v", err)
	}
	if err := IsLeafNormalForm(h, lnf.TD, lnf.Leaf); err != nil {
		t.Fatalf("not in leaf normal form: %v", err)
	}
	// Theorem 1: every new bag is contained in some original bag.
	for _, nb := range lnf.TD.Bags {
		found := false
		for _, ob := range td.Bags {
			if containsAll(ob, nb) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("bag %v not contained in any original bag", nb)
		}
	}
	// Exactly one leaf per hyperedge, labeled by it.
	for e := 0; e < h.M(); e++ {
		if !equalInts(lnf.TD.Bags[lnf.Leaf[e]], h.Edge(e)) {
			t.Fatalf("leaf for edge %d labeled %v", e, lnf.TD.Bags[lnf.Leaf[e]])
		}
	}
}

func TestTransformLeafNormalFormSingleEdge(t *testing.T) {
	h := hypergraph.NewHypergraph(3)
	h.AddEdge(0, 1, 2)
	td := &TreeDecomposition{
		Tree: Tree{Parent: []int{-1}, Root: 0},
		Bags: [][]int{{0, 1, 2}},
	}
	lnf := TransformLeafNormalForm(h, td)
	if err := lnf.TD.Validate(h); err != nil {
		t.Fatal(err)
	}
	if err := IsLeafNormalForm(h, lnf.TD, lnf.Leaf); err != nil {
		t.Fatal(err)
	}
}

// A wide single-bag decomposition must be transformable too: the transform
// hangs one leaf per edge off the single bag and prunes inner labels down to
// the intersections actually needed.
func TestTransformLeafNormalFormFromTrivialTD(t *testing.T) {
	h := example5()
	td := &TreeDecomposition{
		Tree: Tree{Parent: []int{-1}, Root: 0},
		Bags: [][]int{{0, 1, 2, 3, 4, 5}},
	}
	lnf := TransformLeafNormalForm(h, td)
	if err := lnf.TD.Validate(h); err != nil {
		t.Fatal(err)
	}
	if err := IsLeafNormalForm(h, lnf.TD, lnf.Leaf); err != nil {
		t.Fatal(err)
	}
	// Inner node keeps only variables on leaf-leaf paths: x2, x4, x6 occur
	// in a single edge each and must be pruned from the inner node.
	inner := lnf.TD.Bags[0]
	if len(lnf.TD.Bags) != 4 {
		t.Fatalf("expected 1 inner + 3 leaves, got %d nodes", len(lnf.TD.Bags))
	}
	for _, v := range []int{1, 3, 5} {
		if containsSorted(inner, v) {
			// Bags[0] may not be the inner node after compaction; find it.
			t.Logf("node 0 = %v", inner)
		}
	}
	for i, b := range lnf.TD.Bags {
		isLeaf := false
		for _, l := range lnf.Leaf {
			if l == i {
				isLeaf = true
			}
		}
		if !isLeaf {
			if !equalInts(b, []int{0, 2, 4}) {
				t.Fatalf("inner bag = %v, want [0 2 4]", b)
			}
		}
	}
}

func TestOrderingFromDecompositionIsPermutation(t *testing.T) {
	h := example5()
	order := OrderingFromDecomposition(h, example5TD())
	if len(order) != h.N() {
		t.Fatalf("ordering has %d entries", len(order))
	}
	seen := make([]bool, h.N())
	for _, v := range order {
		if v < 0 || v >= h.N() || seen[v] {
			t.Fatalf("not a permutation: %v", order)
		}
		seen[v] = true
	}
}

// Vertices with deeper dca are eliminated earlier: x2 lives only in leaf
// e0 (depth ≥ depth of inner nodes), so it must precede x1 (whose dca is
// the inner node).
func TestOrderingFromDecompositionDepthOrder(t *testing.T) {
	h := example5()
	order := OrderingFromDecomposition(h, example5TD())
	pos := make([]int, h.N())
	for i, v := range order {
		pos[v] = i
	}
	// x2 (1), x4 (3), x6 (5) occur in one edge each: their dca is that leaf.
	// x1 (0), x3 (2), x5 (4) occur in two edges: dca is an inner node.
	for _, leafOnly := range []int{1, 3, 5} {
		for _, shared := range []int{0, 2, 4} {
			if pos[leafOnly] > pos[shared] {
				t.Fatalf("vertex %d (leaf-only) eliminated after %d (shared): %v",
					leafOnly, shared, order)
			}
		}
	}
}

// The Figure 2.6 TD with leaves mapped to the matching hyperedges happens to
// already be in leaf normal form; IsLeafNormalForm must accept it.
func TestFigure26TDIsLNF(t *testing.T) {
	h := example5()
	td := example5TD()
	if err := IsLeafNormalForm(h, td, []int{1, 3, 2}); err != nil {
		t.Fatalf("Figure 2.6 TD should be in LNF: %v", err)
	}
}

func TestIsLeafNormalFormRejects(t *testing.T) {
	h := example5()
	td := example5TD()
	if err := IsLeafNormalForm(h, td, []int{0, 3, 2}); err == nil {
		t.Fatal("expected rejection: leaf bag doesn't equal its edge")
	}
	if err := IsLeafNormalForm(h, td, []int{1, 1, 2}); err == nil {
		t.Fatal("expected rejection: duplicate leaf")
	}
	if err := IsLeafNormalForm(h, td, []int{1, 2}); err == nil {
		t.Fatal("expected rejection: wrong mapping size")
	}
	// Inner label holding a variable off every leaf-leaf path.
	bad := &TreeDecomposition{
		Tree: Tree{Parent: []int{-1, 0, 0, 0}, Root: 0},
		Bags: [][]int{{0, 1, 2, 4}, {0, 1, 2}, {2, 3, 4}, {0, 4, 5}},
	}
	if err := IsLeafNormalForm(h, bad, []int{1, 3, 2}); err == nil {
		t.Fatal("expected rejection: inner label too large")
	}
}
