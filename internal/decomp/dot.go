package decomp

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"hypertree/internal/hypergraph"
)

// WriteDOT renders a tree decomposition in Graphviz DOT format, one box per
// node showing its bag (using the hypergraph's vertex names).
func (td *TreeDecomposition) WriteDOT(w io.Writer, h *hypergraph.Hypergraph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "graph td {")
	fmt.Fprintln(bw, "  node [shape=box];")
	for i, bag := range td.Bags {
		fmt.Fprintf(bw, "  n%d [label=\"{%s}\"];\n", i, vertexNames(h, bag))
	}
	for i, p := range td.Parent {
		if p >= 0 {
			fmt.Fprintf(bw, "  n%d -- n%d;\n", p, i)
		}
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}

// WriteDOT renders a generalized hypertree decomposition in Graphviz DOT
// format: each node shows its χ-set and λ-set.
func (g *GHD) WriteDOT(w io.Writer, h *hypergraph.Hypergraph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "graph ghd {")
	fmt.Fprintln(bw, "  node [shape=record];")
	for i, bag := range g.Bags {
		var edges []string
		for _, e := range g.Lambdas[i] {
			edges = append(edges, h.EdgeName(e))
		}
		fmt.Fprintf(bw, "  n%d [label=\"{χ: %s|λ: %s}\"];\n",
			i, vertexNames(h, bag), strings.Join(edges, ", "))
	}
	for i, p := range g.Parent {
		if p >= 0 {
			fmt.Fprintf(bw, "  n%d -- n%d;\n", p, i)
		}
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}

func vertexNames(h *hypergraph.Hypergraph, vs []int) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = h.VertexName(v)
	}
	return strings.Join(parts, ", ")
}
