package decomp

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteTdParseTdRoundTrip(t *testing.T) {
	h := example5()
	td := example5TD()
	var buf bytes.Buffer
	if err := td.WriteTd(&buf, h.N()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "s td 4 3 6\n") {
		t.Fatalf("solution line wrong:\n%s", out)
	}
	td2, err := ParseTd(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := td2.Validate(h); err != nil {
		t.Fatalf("round-tripped TD invalid: %v", err)
	}
	if td2.Width() != td.Width() || len(td2.Bags) != len(td.Bags) {
		t.Fatalf("round trip changed shape: width %d vs %d", td2.Width(), td.Width())
	}
}

func TestParseTdErrors(t *testing.T) {
	for name, src := range map[string]string{
		"no solution":  "b 1 1 2\n",
		"bad bag id":   "s td 1 2 3\nb 9 1\n",
		"bad vertex":   "s td 1 2 3\nb 1 x\n",
		"edge early":   "1 2\ns td 2 2 3\n",
		"bad edge":     "s td 2 2 3\nb 1 1\nb 2 2\n1 9\n",
		"edge count":   "s td 3 2 3\nb 1 1\nb 2 2\nb 3 3\n1 2\n",
		"disconnected": "s td 3 2 3\nb 1 1\nb 2 2\nb 3 3\n2 3\n2 3\n",
		"dup solution": "s td 1 2 3\ns td 1 2 3\nb 1 1\n",
	} {
		if _, err := ParseTd(strings.NewReader(src)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestParseTdSingleBag(t *testing.T) {
	td, err := ParseTd(strings.NewReader("s td 1 3 3\nb 1 1 2 3\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(td.Bags) != 1 || td.Width() != 2 {
		t.Fatalf("td = %+v", td)
	}
}
