package decomp

import (
	"bytes"
	"strings"
	"testing"
)

func TestTDWriteDOT(t *testing.T) {
	h := example5()
	for v := 0; v < 6; v++ {
		h.SetVertexName(v, "x"+string(rune('1'+v)))
	}
	td := example5TD()
	var buf bytes.Buffer
	if err := td.WriteDOT(&buf, h); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"graph td {", "n0 --", "x1", "}"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
	// One node line per bag, one edge line per non-root node.
	if got := strings.Count(out, "--"); got != len(td.Bags)-1 {
		t.Errorf("edge lines = %d, want %d", got, len(td.Bags)-1)
	}
}

func TestGHDWriteDOT(t *testing.T) {
	h := example5()
	g := &GHD{
		TreeDecomposition: *example5TD(),
		Lambdas:           [][]int{{0, 2}, {0}, {2}, {1}},
	}
	var buf bytes.Buffer
	if err := g.WriteDOT(&buf, h); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"graph ghd {", "χ:", "λ:", "e0"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
}
