package decomp

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WriteTd writes a tree decomposition in the PACE .td output format:
//
//	s td <#bags> <width+1> <#vertices>
//	b <bag-id> <v1> <v2> ...      (1-based vertices)
//	<bag-id> <bag-id>             (tree edges, 1-based)
func (td *TreeDecomposition) WriteTd(w io.Writer, numVertices int) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "s td %d %d %d\n", len(td.Bags), td.Width()+1, numVertices)
	for i, bag := range td.Bags {
		fmt.Fprintf(bw, "b %d", i+1)
		for _, v := range bag {
			fmt.Fprintf(bw, " %d", v+1)
		}
		fmt.Fprintln(bw)
	}
	for i, p := range td.Parent {
		if p >= 0 {
			fmt.Fprintf(bw, "%d %d\n", p+1, i+1)
		}
	}
	return bw.Flush()
}

// ParseTd reads a tree decomposition in the PACE .td format. The returned
// decomposition is rooted at the first bag.
func ParseTd(r io.Reader) (*TreeDecomposition, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var bags [][]int
	type edge struct{ a, b int }
	var edges []edge
	nBags := -1
	line := 0
	for sc.Scan() {
		line++
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 || fields[0] == "c" {
			continue
		}
		switch fields[0] {
		case "s":
			if nBags >= 0 {
				return nil, fmt.Errorf("td line %d: duplicate solution line", line)
			}
			if len(fields) < 5 || fields[1] != "td" {
				return nil, fmt.Errorf("td line %d: malformed solution line", line)
			}
			n, err := strconv.Atoi(fields[2])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("td line %d: bad bag count", line)
			}
			nBags = n
			bags = make([][]int, n)
			for i := range bags {
				bags[i] = []int{}
			}
		case "b":
			if nBags < 0 {
				return nil, fmt.Errorf("td line %d: bag before solution line", line)
			}
			if len(fields) < 2 {
				return nil, fmt.Errorf("td line %d: malformed bag", line)
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil || id < 1 || id > nBags {
				return nil, fmt.Errorf("td line %d: bad bag id", line)
			}
			for _, f := range fields[2:] {
				v, err := strconv.Atoi(f)
				if err != nil || v < 1 {
					return nil, fmt.Errorf("td line %d: bad vertex %q", line, f)
				}
				bags[id-1] = append(bags[id-1], v-1)
			}
		default:
			if nBags < 0 {
				return nil, fmt.Errorf("td line %d: edge before solution line", line)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("td line %d: malformed tree edge", line)
			}
			a, err1 := strconv.Atoi(fields[0])
			b, err2 := strconv.Atoi(fields[1])
			if err1 != nil || err2 != nil || a < 1 || a > nBags || b < 1 || b > nBags {
				return nil, fmt.Errorf("td line %d: bad tree edge", line)
			}
			edges = append(edges, edge{a - 1, b - 1})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if nBags < 0 {
		return nil, fmt.Errorf("td: missing solution line")
	}
	if len(edges) != nBags-1 && nBags > 0 {
		return nil, fmt.Errorf("td: %d tree edges for %d bags", len(edges), nBags)
	}
	for i := range bags {
		sort.Ints(bags[i])
	}
	// Root at bag 0 and orient edges by BFS.
	adj := make([][]int, nBags)
	for _, e := range edges {
		adj[e.a] = append(adj[e.a], e.b)
		adj[e.b] = append(adj[e.b], e.a)
	}
	parent := make([]int, nBags)
	for i := range parent {
		parent[i] = -2
	}
	if nBags > 0 {
		parent[0] = -1
		queue := []int{0}
		for qi := 0; qi < len(queue); qi++ {
			u := queue[qi]
			for _, v := range adj[u] {
				if parent[v] == -2 {
					parent[v] = u
					queue = append(queue, v)
				}
			}
		}
		for i, p := range parent {
			if p == -2 {
				return nil, fmt.Errorf("td: bag %d disconnected from bag 1", i+1)
			}
		}
	}
	return &TreeDecomposition{Tree: Tree{Parent: parent, Root: 0}, Bags: bags}, nil
}
