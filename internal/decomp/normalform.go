package decomp

import (
	"fmt"
	"sort"

	"hypertree/internal/hypergraph"
)

// LeafNormalForm is the result of the Transform Leaf Normal Form algorithm
// (thesis Figure 3.1): a tree decomposition in leaf normal form together
// with the one-to-one mapping from hyperedges to leaves.
type LeafNormalForm struct {
	TD *TreeDecomposition
	// Leaf[e] is the node index of the leaf created for hyperedge e;
	// its bag equals the hyperedge.
	Leaf []int
}

// TransformLeafNormalForm converts a valid tree decomposition of h into a
// tree decomposition in leaf normal form such that every new bag is a subset
// of some original bag (thesis Theorem 1). It panics if no bag contains some
// hyperedge (i.e. td is not a valid decomposition of h) and requires h to
// have at least one hyperedge.
func TransformLeafNormalForm(h *hypergraph.Hypergraph, td *TreeDecomposition) *LeafNormalForm {
	if h.M() == 0 {
		panic("decomp: leaf normal form requires at least one hyperedge")
	}
	// Mutable undirected tree: bags + adjacency sets.
	nOrig := len(td.Bags)
	bags := make([][]int, nOrig)
	for i, b := range td.Bags {
		bags[i] = append([]int(nil), b...)
	}
	adj := make([]map[int]struct{}, nOrig)
	for i := range adj {
		adj[i] = make(map[int]struct{})
	}
	for i, p := range td.Parent {
		if p >= 0 {
			adj[i][p] = struct{}{}
			adj[p][i] = struct{}{}
		}
	}

	// Step 2: attach one fresh leaf per hyperedge.
	isMappedLeaf := make([]bool, nOrig)
	leafOf := make([]int, h.M())
	for e := 0; e < h.M(); e++ {
		edge := h.Edge(e)
		attach := -1
		for i := 0; i < nOrig; i++ {
			if containsAll(bags[i], edge) {
				attach = i
				break
			}
		}
		if attach < 0 {
			panic(fmt.Sprintf("decomp: hyperedge %d not contained in any bag", e))
		}
		id := len(bags)
		bags = append(bags, append([]int(nil), edge...))
		adj = append(adj, map[int]struct{}{attach: {}})
		adj[attach][id] = struct{}{}
		isMappedLeaf = append(isMappedLeaf, true)
		leafOf[e] = id
	}

	// Step 3: repeatedly delete unmapped leaves.
	dead := make([]bool, len(bags))
	queue := make([]int, 0)
	for i := range bags {
		if !isMappedLeaf[i] && len(adj[i]) <= 1 {
			queue = append(queue, i)
		}
	}
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if dead[v] || isMappedLeaf[v] || len(adj[v]) > 1 {
			continue
		}
		dead[v] = true
		for u := range adj[v] {
			delete(adj[u], v)
			if !dead[u] && !isMappedLeaf[u] && len(adj[u]) <= 1 {
				queue = append(queue, u)
			}
		}
		adj[v] = nil
	}

	// Compact surviving nodes and root the tree at the first mapped leaf's
	// neighbor (or the leaf itself if it is the only node).
	newID := make([]int, len(bags))
	for i := range newID {
		newID[i] = -1
	}
	var survivors []int
	for i := range bags {
		if !dead[i] {
			newID[i] = len(survivors)
			survivors = append(survivors, i)
		}
	}
	root := leafOf[0]
	if len(adj[root]) > 0 {
		for u := range adj[root] {
			root = u
			break
		}
	}

	parent := make([]int, len(survivors))
	for i := range parent {
		parent[i] = -2 // unvisited
	}
	order := []int{root}
	parent[newID[root]] = -1
	for qi := 0; qi < len(order); qi++ {
		v := order[qi]
		for u := range adj[v] {
			if parent[newID[u]] == -2 {
				parent[newID[u]] = newID[v]
				order = append(order, u)
			}
		}
	}

	out := &TreeDecomposition{
		Tree: Tree{Parent: parent, Root: newID[root]},
		Bags: make([][]int, len(survivors)),
	}
	for i, old := range survivors {
		out.Bags[i] = bags[old]
	}
	mapped := make([]int, h.M())
	for e := range leafOf {
		mapped[e] = newID[leafOf[e]]
	}

	// Step 4: shrink inner labels to Steiner trees of the leaves.
	pruneInnerLabels(h, out, mapped)

	return &LeafNormalForm{TD: out, Leaf: mapped}
}

// pruneInnerLabels deletes variable Y from every internal node that does not
// lie on a path between two leaves whose labels contain Y (step 4 of the
// transform). Leaf labels are never altered.
func pruneInnerLabels(h *hypergraph.Hypergraph, td *TreeDecomposition, leafOf []int) {
	n := len(td.Bags)
	children := td.Children()
	isLeaf := make([]bool, n)
	for _, l := range leafOf {
		isLeaf[l] = true
	}
	// Post-order traversal sequence.
	post := make([]int, 0, n)
	var stack []int
	visited := make([]bool, n)
	stack = append(stack, td.Root)
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		if !visited[v] {
			visited[v] = true
			stack = append(stack, children[v]...)
			continue
		}
		stack = stack[:len(stack)-1]
		post = append(post, v)
	}

	keep := make([][]int, n)
	cnt := make([]int, n)
	for v := 0; v < h.N(); v++ {
		// Leaves whose hyperedge contains v.
		total := 0
		for i := range cnt {
			cnt[i] = 0
		}
		for _, e := range h.IncidentEdges(v) {
			cnt[leafOf[e]]++
			total++
		}
		if total == 0 {
			continue
		}
		// Subtree counts bottom-up.
		for _, p := range post {
			for _, c := range children[p] {
				cnt[p] += cnt[c]
			}
		}
		for _, p := range post {
			if isLeaf[p] {
				if containsSorted(td.Bags[p], v) {
					keep[p] = append(keep[p], v)
				}
				continue
			}
			if !containsSorted(td.Bags[p], v) {
				continue
			}
			// Count branches around p holding a leaf with v.
			branches := 0
			for _, c := range children[p] {
				if cnt[c] > 0 {
					branches++
				}
			}
			if total-cnt[p] > 0 {
				branches++
			}
			if branches >= 2 {
				keep[p] = append(keep[p], v)
			}
		}
	}
	for p := 0; p < n; p++ {
		sort.Ints(keep[p])
		td.Bags[p] = keep[p]
	}
}

// IsLeafNormalForm checks the two conditions of thesis Definition 18 for
// td with the given hyperedge-to-leaf mapping.
func IsLeafNormalForm(h *hypergraph.Hypergraph, td *TreeDecomposition, leafOf []int) error {
	n := len(td.Bags)
	children := td.Children()
	degree := make([]int, n)
	for i, p := range td.Parent {
		if p >= 0 {
			degree[i]++
			degree[p]++
		}
	}
	// Condition 1: one-to-one mapping onto the leaves, bags equal edges.
	if len(leafOf) != h.M() {
		return fmt.Errorf("decomp: mapping covers %d of %d edges", len(leafOf), h.M())
	}
	seen := make(map[int]struct{})
	for e, l := range leafOf {
		if l < 0 || l >= n {
			return fmt.Errorf("decomp: edge %d maps to invalid node %d", e, l)
		}
		if _, dup := seen[l]; dup {
			return fmt.Errorf("decomp: node %d is the image of two edges", l)
		}
		seen[l] = struct{}{}
		if n > 1 && degree[l] != 1 {
			return fmt.Errorf("decomp: node %d (edge %d) is not a leaf", l, e)
		}
		if !equalInts(td.Bags[l], h.Edge(e)) {
			return fmt.Errorf("decomp: leaf %d bag %v != edge %v", l, td.Bags[l], h.Edge(e))
		}
	}
	for i := 0; i < n; i++ {
		if n > 1 && degree[i] <= 1 {
			if _, ok := seen[i]; !ok {
				return fmt.Errorf("decomp: unmapped leaf %d", i)
			}
		}
	}
	// Condition 2: inner labels are exactly the Steiner paths.
	// Recompute the expected labels and compare.
	expect := make([]map[int]struct{}, n)
	for i := range expect {
		expect[i] = make(map[int]struct{})
	}
	post := make([]int, 0, n)
	var stack []int
	visited := make([]bool, n)
	stack = append(stack, td.Root)
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		if !visited[v] {
			visited[v] = true
			stack = append(stack, children[v]...)
			continue
		}
		stack = stack[:len(stack)-1]
		post = append(post, v)
	}
	cnt := make([]int, n)
	for v := 0; v < h.N(); v++ {
		total := 0
		for i := range cnt {
			cnt[i] = 0
		}
		for _, e := range h.IncidentEdges(v) {
			cnt[leafOf[e]]++
			total++
		}
		if total == 0 {
			continue
		}
		for _, p := range post {
			for _, c := range children[p] {
				cnt[p] += cnt[c]
			}
		}
		for _, p := range post {
			if _, isL := seen[p]; isL {
				continue // mapped leaves are never internal nodes
			}
			branches := 0
			for _, c := range children[p] {
				if cnt[c] > 0 {
					branches++
				}
			}
			if total-cnt[p] > 0 {
				branches++
			}
			if branches >= 2 {
				expect[p][v] = struct{}{}
			}
		}
	}
	for p := 0; p < n; p++ {
		if _, isL := seen[p]; isL {
			continue
		}
		want := make([]int, 0, len(expect[p]))
		for v := range expect[p] {
			want = append(want, v)
		}
		sort.Ints(want)
		if !equalInts(td.Bags[p], want) {
			return fmt.Errorf("decomp: inner node %d label %v, expected %v", p, td.Bags[p], want)
		}
	}
	return nil
}

// OrderingFromLNF derives an elimination ordering from a tree decomposition
// in leaf normal form following thesis Lemma 13: compute, for every vertex,
// the depth of the deepest common ancestor of the leaves containing it, and
// eliminate vertices in order of descending depth. (The thesis writes
// orderings σ = (v1..vn) with v_n eliminated first; throughout this library
// an ordering lists vertices in elimination order, i.e. the reverse of σ,
// so deeper dca means earlier here.) Vertices in no hyperedge are placed
// last.
func OrderingFromLNF(h *hypergraph.Hypergraph, lnf *LeafNormalForm) []int {
	n := len(lnf.TD.Bags)
	depth := make([]int, n)
	for _, p := range bfsOrder(&lnf.TD.Tree) {
		if par := lnf.TD.Parent[p]; par >= 0 {
			depth[p] = depth[par] + 1
		}
	}
	vdepth := make([]int, h.N())
	for v := 0; v < h.N(); v++ {
		inc := h.IncidentEdges(v)
		if len(inc) == 0 {
			vdepth[v] = -1
			continue
		}
		dca := lnf.Leaf[inc[0]]
		for _, e := range inc[1:] {
			dca = commonAncestor(&lnf.TD.Tree, depth, dca, lnf.Leaf[e])
		}
		vdepth[v] = depth[dca]
	}
	sigma := make([]int, h.N())
	for i := range sigma {
		sigma[i] = i
	}
	sort.SliceStable(sigma, func(i, j int) bool {
		if vdepth[sigma[i]] != vdepth[sigma[j]] {
			return vdepth[sigma[i]] > vdepth[sigma[j]]
		}
		return sigma[i] < sigma[j]
	})
	return sigma
}

// OrderingFromDecomposition converts any valid tree decomposition of h into
// an elimination ordering whose induced decomposition is no wider (thesis
// Theorem 2 pipeline: leaf normal form, then dca ordering).
func OrderingFromDecomposition(h *hypergraph.Hypergraph, td *TreeDecomposition) []int {
	return OrderingFromLNF(h, TransformLeafNormalForm(h, td))
}

func bfsOrder(t *Tree) []int {
	children := t.Children()
	order := []int{t.Root}
	for qi := 0; qi < len(order); qi++ {
		order = append(order, children[order[qi]]...)
	}
	return order
}

func commonAncestor(t *Tree, depth []int, a, b int) int {
	for depth[a] > depth[b] {
		a = t.Parent[a]
	}
	for depth[b] > depth[a] {
		b = t.Parent[b]
	}
	for a != b {
		a = t.Parent[a]
		b = t.Parent[b]
	}
	return a
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
