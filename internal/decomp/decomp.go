// Package decomp defines tree decompositions and generalized hypertree
// decompositions (GHDs), their validity checks, and the Chapter 3 machinery
// of the thesis: the leaf normal form for tree decompositions and the
// extraction of elimination orderings from decompositions via deepest common
// ancestors, which together prove that elimination orderings form a complete
// search space for generalized hypertree width.
package decomp

import (
	"fmt"
	"math/rand"
	"sort"

	"hypertree/internal/hypergraph"
	"hypertree/internal/setcover"
)

// Tree is a rooted tree given by a parent array: Parent[i] is the parent of
// node i, or -1 for the root.
type Tree struct {
	Parent []int
	Root   int
}

// NumNodes returns the number of tree nodes.
func (t *Tree) NumNodes() int { return len(t.Parent) }

// Children returns the children lists of every node.
func (t *Tree) Children() [][]int {
	ch := make([][]int, len(t.Parent))
	for i, p := range t.Parent {
		if p >= 0 {
			ch[p] = append(ch[p], i)
		}
	}
	return ch
}

// Validate checks that the parent array describes a single rooted tree.
func (t *Tree) Validate() error {
	n := len(t.Parent)
	if n == 0 {
		return fmt.Errorf("decomp: empty tree")
	}
	if t.Root < 0 || t.Root >= n {
		return fmt.Errorf("decomp: root %d out of range", t.Root)
	}
	if t.Parent[t.Root] != -1 {
		return fmt.Errorf("decomp: root %d has parent %d", t.Root, t.Parent[t.Root])
	}
	for i := 0; i < n; i++ {
		if i == t.Root {
			continue
		}
		if t.Parent[i] < 0 || t.Parent[i] >= n {
			return fmt.Errorf("decomp: node %d has invalid parent %d", i, t.Parent[i])
		}
	}
	// Single pass over parent chains with memoized reachability: state[v]
	// is unknown, on the current chain, or proven to reach the root. Each
	// node's chain link is traversed once overall, so validation is O(n)
	// even on a path tree (the old per-node walk was quadratic there).
	const (
		unknown = iota
		onChain
		reachesRoot
	)
	state := make([]uint8, n)
	state[t.Root] = reachesRoot
	chain := make([]int, 0, 16)
	for i := 0; i < n; i++ {
		v := i
		chain = chain[:0]
		for state[v] == unknown {
			state[v] = onChain
			chain = append(chain, v)
			v = t.Parent[v]
		}
		if state[v] == onChain {
			return fmt.Errorf("decomp: cycle through node %d", v)
		}
		for _, u := range chain {
			state[u] = reachesRoot
		}
	}
	return nil
}

// TreeDecomposition is a tree decomposition ⟨T, χ⟩ of a hypergraph: a rooted
// tree whose node i carries the bag Bags[i] (sorted vertex ids).
type TreeDecomposition struct {
	Tree
	Bags [][]int
}

// Width returns max |bag| - 1 (thesis Definition 11).
func (td *TreeDecomposition) Width() int {
	w := -1
	for _, b := range td.Bags {
		if len(b)-1 > w {
			w = len(b) - 1
		}
	}
	return w
}

// Validate checks the two tree-decomposition conditions against h:
// every hyperedge is contained in some bag, and for every vertex the bags
// containing it induce a connected subtree. It also checks tree shape and
// bag sanity.
func (td *TreeDecomposition) Validate(h *hypergraph.Hypergraph) error {
	if err := td.Tree.Validate(); err != nil {
		return err
	}
	if len(td.Bags) != len(td.Parent) {
		return fmt.Errorf("decomp: %d bags for %d nodes", len(td.Bags), len(td.Parent))
	}
	for i, b := range td.Bags {
		for j, v := range b {
			if v < 0 || v >= h.N() {
				return fmt.Errorf("decomp: bag %d contains invalid vertex %d", i, v)
			}
			if j > 0 && b[j-1] >= v {
				return fmt.Errorf("decomp: bag %d is not strictly sorted", i)
			}
		}
	}
	// Condition 1: each hyperedge inside some bag.
	for e := 0; e < h.M(); e++ {
		edge := h.Edge(e)
		found := false
		for _, b := range td.Bags {
			if containsAll(b, edge) {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("decomp: hyperedge %d (%v) not contained in any bag", e, edge)
		}
	}
	// Condition 2 (connectedness): for each vertex, nodes whose bag contains
	// it must induce a subtree. Count nodes in S whose parent is also in S;
	// a subtree has exactly |S|-1 of them.
	for v := 0; v < h.N(); v++ {
		var s []int
		for i, b := range td.Bags {
			if containsSorted(b, v) {
				s = append(s, i)
			}
		}
		if len(s) == 0 {
			continue
		}
		inS := make(map[int]struct{}, len(s))
		for _, i := range s {
			inS[i] = struct{}{}
		}
		withParent := 0
		for _, i := range s {
			if p := td.Parent[i]; p >= 0 {
				if _, ok := inS[p]; ok {
					withParent++
				}
			}
		}
		if withParent != len(s)-1 {
			return fmt.Errorf("decomp: vertex %d violates connectedness (nodes %v)", v, s)
		}
	}
	return nil
}

// GHD is a generalized hypertree decomposition ⟨T, χ, λ⟩: a tree
// decomposition plus, per node, a set of hyperedge indices Lambdas[i] whose
// union covers the node's bag.
type GHD struct {
	TreeDecomposition
	Lambdas [][]int
}

// Width returns max |λ(p)| (thesis Definition 13).
func (g *GHD) Width() int {
	w := 0
	for _, l := range g.Lambdas {
		if len(l) > w {
			w = len(l)
		}
	}
	return w
}

// Validate checks the three GHD conditions: the underlying structure is a
// valid tree decomposition, and for every node p, χ(p) ⊆ var(λ(p)).
func (g *GHD) Validate(h *hypergraph.Hypergraph) error {
	if err := g.TreeDecomposition.Validate(h); err != nil {
		return err
	}
	if len(g.Lambdas) != len(g.Bags) {
		return fmt.Errorf("decomp: %d lambda sets for %d nodes", len(g.Lambdas), len(g.Bags))
	}
	for i, l := range g.Lambdas {
		covered := make(map[int]struct{})
		for _, e := range l {
			if e < 0 || e >= h.M() {
				return fmt.Errorf("decomp: node %d references invalid hyperedge %d", i, e)
			}
			for _, v := range h.Edge(e) {
				covered[v] = struct{}{}
			}
		}
		for _, v := range g.Bags[i] {
			if _, ok := covered[v]; !ok {
				return fmt.Errorf("decomp: node %d: vertex %d in χ not covered by λ", i, v)
			}
		}
	}
	return nil
}

// IsComplete reports whether g is a complete GHD (thesis Definition 14):
// for each hyperedge h there is a node p with h ⊆ χ(p) and h ∈ λ(p).
func (g *GHD) IsComplete(h *hypergraph.Hypergraph) bool {
	for e := 0; e < h.M(); e++ {
		edge := h.Edge(e)
		found := false
		for i := range g.Bags {
			if !containsAll(g.Bags[i], edge) {
				continue
			}
			for _, le := range g.Lambdas[i] {
				if le == e {
					found = true
					break
				}
			}
			if found {
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// Complete transforms g into a complete GHD of the same width (for width
// >= 1) following thesis Lemma 2: for every hyperedge without a witnessing
// node, a fresh child node with χ = h and λ = {h} is attached to a node
// whose bag contains h. g is modified in place.
func (g *GHD) Complete(h *hypergraph.Hypergraph) {
	for e := 0; e < h.M(); e++ {
		edge := h.Edge(e)
		witnessed := false
		attach := -1
		for i := range g.Bags {
			if !containsAll(g.Bags[i], edge) {
				continue
			}
			if attach < 0 {
				attach = i
			}
			for _, le := range g.Lambdas[i] {
				if le == e {
					witnessed = true
					break
				}
			}
			if witnessed {
				break
			}
		}
		if witnessed {
			continue
		}
		if attach < 0 {
			// Cannot happen on a valid GHD; guard for misuse.
			panic(fmt.Sprintf("decomp: Complete on invalid GHD (edge %d uncontained)", e))
		}
		bag := append([]int(nil), edge...)
		sort.Ints(bag)
		g.Bags = append(g.Bags, bag)
		g.Lambdas = append(g.Lambdas, []int{e})
		g.Parent = append(g.Parent, attach)
	}
}

// CoverMode selects how bags are covered by hyperedges when building a GHD
// from a tree decomposition.
type CoverMode int

const (
	// CoverGreedy uses the greedy set-cover heuristic (thesis Figure 7.2).
	CoverGreedy CoverMode = iota
	// CoverExact computes minimum covers exactly (thesis: IP solver;
	// here: branch-and-bound).
	CoverExact
)

// FromTreeDecomposition builds a GHD on the same tree by covering every bag
// with hyperedges of h. With CoverExact the resulting width is the best
// achievable for this tree decomposition's bags. rng is used for greedy tie
// breaking and may be nil. It returns an error if some bag is uncoverable
// (possible only if h does not cover all its vertices).
func FromTreeDecomposition(h *hypergraph.Hypergraph, td *TreeDecomposition, mode CoverMode, rng *rand.Rand) (*GHD, error) {
	return FromTreeDecompositionWithEngine(setcover.NewEngine(h, 0), td, mode, rng)
}

// FromTreeDecompositionWithEngine is FromTreeDecomposition on a caller-
// provided cover engine for h, so the searches can reuse the engine (and
// its warmed-up memo cache) they already evaluated bags with. The engine
// restricts each bag's candidates to its incident hyperedges; the old code
// handed every hyperedge of h to the cover solver for every bag.
func FromTreeDecompositionWithEngine(eng *setcover.Engine, td *TreeDecomposition, mode CoverMode, rng *rand.Rand) (*GHD, error) {
	g := &GHD{
		TreeDecomposition: TreeDecomposition{
			Tree: Tree{Parent: append([]int(nil), td.Parent...), Root: td.Root},
			Bags: make([][]int, len(td.Bags)),
		},
		Lambdas: make([][]int, len(td.Bags)),
	}
	for i, b := range td.Bags {
		g.Bags[i] = append([]int(nil), b...)
		var cover []int
		if mode == CoverExact {
			cover = eng.ExactCover(b)
		} else {
			cover = eng.GreedyCover(b, rng)
		}
		if cover == nil {
			return nil, fmt.Errorf("decomp: bag %d (%v) not coverable by hyperedges", i, b)
		}
		g.Lambdas[i] = cover
	}
	return g, nil
}

func containsSorted(sorted []int, v int) bool {
	i := sort.SearchInts(sorted, v)
	return i < len(sorted) && sorted[i] == v
}

func containsAll(sorted, subset []int) bool {
	for _, v := range subset {
		if !containsSorted(sorted, v) {
			return false
		}
	}
	return true
}
