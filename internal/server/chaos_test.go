// The server-level chaos harness: an httptest-based hammer that drives the
// daemon through injected panics, slow parses, deadline storms, oversize
// payloads and cancel-during-drain, asserting the graceful-degradation
// contract — the daemon never crashes, every request gets a typed outcome,
// and a drain leaves zero admitted requests unanswered. Run under -race
// (make check does); the concurrency here is the point.

package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hypertree/internal/budget/faultinject"
)

// hammerResult is one request's fate as the hammer saw it: the typed
// envelope when a response arrived, or transportErr when the client itself
// gave up (canceled mid-flight) — the only case with nothing to decode.
type hammerResult struct {
	status       int
	resp         *Response
	transportErr error
}

// hammer fires n concurrent POST /decompose requests built by makeReq and
// collects every fate. Each request must produce either a decodable typed
// envelope or a transport error; anything else fails the test.
func hammer(t *testing.T, ts *httptest.Server, n int, makeReq func(i int) (query string, body []byte, ctx context.Context)) []hammerResult {
	t.Helper()
	results := make([]hammerResult, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			query, body, ctx := makeReq(i)
			if ctx == nil {
				ctx = context.Background()
			}
			url := ts.URL + "/decompose"
			if query != "" {
				url += "?" + query
			}
			req, err := http.NewRequestWithContext(ctx, "POST", url, bytes.NewReader(body))
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			hr, err := ts.Client().Do(req)
			if err != nil {
				results[i] = hammerResult{transportErr: err}
				return
			}
			defer hr.Body.Close()
			data, err := io.ReadAll(hr.Body)
			if err != nil {
				results[i] = hammerResult{status: hr.StatusCode, transportErr: err}
				return
			}
			var resp Response
			if jerr := json.Unmarshal(lastEnvelope(data), &resp); jerr != nil {
				t.Errorf("request %d: response is not a typed envelope (status %d): %q", i, hr.StatusCode, data)
				return
			}
			results[i] = hammerResult{status: hr.StatusCode, resp: &resp}
		}(i)
	}
	wg.Wait()
	return results
}

// lastEnvelope returns the JSON envelope of a response body: the body itself
// for plain responses, the final result frame's data for SSE streams.
func lastEnvelope(body []byte) []byte {
	const marker = "event: result\ndata: "
	if idx := bytes.LastIndex(body, []byte(marker)); idx >= 0 {
		payload := body[idx+len(marker):]
		if nl := bytes.IndexByte(payload, '\n'); nl >= 0 {
			payload = payload[:nl]
		}
		return payload
	}
	return body
}

// assertAllTyped fails unless every hammered request either got a typed
// outcome or was canceled by its own client context.
func assertAllTyped(t *testing.T, results []hammerResult) map[Outcome]int {
	t.Helper()
	byOutcome := map[Outcome]int{}
	for i, r := range results {
		switch {
		case r.resp != nil:
			byOutcome[r.resp.Outcome]++
		case r.transportErr != nil && strings.Contains(r.transportErr.Error(), "context canceled"):
			// The client hung up; the server side still answered (asserted
			// via outcome counters by the callers that cancel).
		default:
			t.Errorf("request %d got neither envelope nor cancellation: %+v", i, r)
		}
	}
	return byOutcome
}

// assertAlive proves the daemon survived a storm: liveness and a fresh
// exact request both still work.
func assertAlive(t *testing.T, ts *httptest.Server) {
	t.Helper()
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil || hr.StatusCode != 200 {
		t.Fatalf("daemon died: healthz %v %v", hr, err)
	}
	hr.Body.Close()
	_, resp := postDecompose(t, ts, "algo=bb-ghw", []byte(cycle6HG))
	if resp.Outcome != OutcomeExact {
		t.Fatalf("daemon not serving after storm: %+v", resp)
	}
}

// rearm keeps a fault site permanently armed: every period-th hit runs
// action, then the site is armed again. Reset() (deferred by every test)
// disarms for good.
func rearm(site string, period int64, action func()) {
	var arm func()
	arm = func() {
		faultinject.Arm(site, period, func() {
			arm()
			action()
		})
	}
	arm()
}

// TestChaosPanicStorm injects panics both below the budget layer (the cover
// hot path, contained by budget.Guard inside core.Decompose) and in the
// handler itself (the parse site, contained by the ServeHTTP barrier), under
// concurrent load. Every response must stay typed and the daemon must keep
// serving afterwards.
func TestChaosPanicStorm(t *testing.T) {
	defer faultinject.Reset()
	s := New(Config{Workers: 4, CheckEvery: 16, CacheCapacity: -1}) // cache off: every request must really run
	ts := httptest.NewServer(s)
	defer ts.Close()

	rearm(faultinject.SiteCover, 5, func() { panic("chaos: cover exploded") })
	results := hammer(t, ts, 24, func(i int) (string, []byte, context.Context) {
		return "algo=bb-ghw&timeout=2s", []byte(cycle6HG), nil
	})
	byOutcome := assertAllTyped(t, results)
	if byOutcome[OutcomeError] == 0 {
		t.Error("panic storm produced no contained-error outcomes — injection did not land")
	}
	if byOutcome[OutcomeExact] == 0 {
		t.Error("panic storm wiped out every healthy request")
	}
	faultinject.Reset()

	rearm(faultinject.SiteServerParse, 3, func() { panic("chaos: parser exploded") })
	results = hammer(t, ts, 12, func(i int) (string, []byte, context.Context) {
		return "algo=bb-ghw", []byte(acyclic4HG), nil
	})
	byOutcome = assertAllTyped(t, results)
	if byOutcome[OutcomeError] == 0 {
		t.Error("handler-level panics produced no contained-error outcomes")
	}
	faultinject.Reset()
	assertAlive(t, ts)
}

// TestChaosSlowParseDeadlineStorm combines slow-loris parses with a storm of
// tiny deadlines against a small pool: the pool saturates, admission sheds
// load with typed 429s, admitted requests degrade at their deadlines, and
// nothing is ever dropped untyped.
func TestChaosSlowParseDeadlineStorm(t *testing.T) {
	defer faultinject.Reset()
	s := New(Config{Workers: 2, QueueDepth: 2, CheckEvery: 16, CacheCapacity: -1})
	ts := httptest.NewServer(s)
	defer ts.Close()

	rearm(faultinject.SiteServerParse, 1, func() { time.Sleep(30 * time.Millisecond) })
	grid := grid12HG(t)
	results := hammer(t, ts, 24, func(i int) (string, []byte, context.Context) {
		return "algo=bb-ghw&timeout=20ms", grid, nil
	})
	byOutcome := assertAllTyped(t, results)
	if got := byOutcome[OutcomeRejected]; got == 0 {
		t.Error("storm against a 2+2 pool produced no backpressure rejections")
	}
	if byOutcome[OutcomeDegraded] == 0 {
		t.Error("deadline storm produced no degraded anytime results")
	}
	for i, r := range results {
		if r.resp == nil {
			continue
		}
		switch r.resp.Outcome {
		case OutcomeRejected:
			if r.status != http.StatusTooManyRequests {
				t.Errorf("request %d: rejected with status %d, want 429", i, r.status)
			}
			if r.resp.RetrySeconds <= 0 {
				t.Errorf("request %d: 429 without a retry hint", i)
			}
		case OutcomeDegraded:
			if r.resp.Width <= 0 {
				t.Errorf("request %d: degraded without an anytime width", i)
			}
		}
	}
	faultinject.Reset()
	assertAlive(t, ts)
}

// TestChaosOversizeStorm interleaves oversize bodies with healthy requests:
// the oversize ones all fail fast with typed 413s and never crowd out the
// real work.
func TestChaosOversizeStorm(t *testing.T) {
	s := New(Config{Workers: 4, MaxRequestBytes: 4 << 10, CacheCapacity: -1})
	ts := httptest.NewServer(s)
	defer ts.Close()

	big := bytes.Repeat([]byte("x"), 64<<10)
	results := hammer(t, ts, 20, func(i int) (string, []byte, context.Context) {
		if i%2 == 0 {
			return "algo=bb-ghw", big, nil
		}
		return "algo=bb-ghw", []byte(cycle6HG), nil
	})
	byOutcome := assertAllTyped(t, results)
	if byOutcome[OutcomeRejected] != 10 {
		t.Errorf("oversize rejections = %d, want 10", byOutcome[OutcomeRejected])
	}
	if byOutcome[OutcomeExact] != 10 {
		t.Errorf("healthy exact results = %d, want 10", byOutcome[OutcomeExact])
	}
	for i, r := range results {
		if i%2 == 0 && r.resp != nil && r.status != http.StatusRequestEntityTooLarge {
			t.Errorf("oversize request %d: status %d, want 413", i, r.status)
		}
	}
	assertAlive(t, ts)
}

// TestChaosCancelDuringDrain is the shutdown storm: long exact runs in
// flight, a client hanging up mid-run, a drain whose grace expires while
// work is still running, and new requests arriving during the drain. The
// contract: drain returns with zero in-flight requests, every admitted
// request was answered (server-side outcome counters account for all of
// them), in-flight runs come back degraded-not-dropped, and drain-time
// arrivals get typed 503s.
func TestChaosCancelDuringDrain(t *testing.T) {
	s := New(Config{Workers: 3, CheckEvery: 16, CacheCapacity: -1})
	ts := httptest.NewServer(s)
	defer ts.Close()

	grid := grid12HG(t)
	cancelCtx, cancelClient := context.WithCancel(context.Background())
	var resultsMu sync.Mutex
	var results []hammerResult
	done := make(chan struct{})
	go func() {
		defer close(done)
		r := hammer(t, ts, 3, func(i int) (string, []byte, context.Context) {
			if i == 0 {
				// This client hangs up mid-run; the server must still retire
				// the request cleanly.
				return "algo=bb-ghw&timeout=30s", grid, cancelCtx
			}
			return "algo=bb-ghw&timeout=30s", grid, nil
		})
		resultsMu.Lock()
		results = r
		resultsMu.Unlock()
	}()
	waitFor(t, 5*time.Second, func() bool { return s.InFlight() == 3 })

	cancelClient()
	rep := s.Drain(80 * time.Millisecond)
	if !rep.Forced {
		t.Error("drain of 30s-budget runs within 80ms grace must report Forced")
	}
	if n := s.InFlight(); n != 0 {
		t.Fatalf("drain returned with %d requests still in flight", n)
	}

	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("hammered clients never returned after drain")
	}
	resultsMu.Lock()
	defer resultsMu.Unlock()
	byOutcome := assertAllTyped(t, results)
	if byOutcome[OutcomeDegraded] < 2 {
		t.Errorf("drained long runs: got outcomes %v, want >= 2 degraded", byOutcome)
	}
	for i, r := range results {
		if r.resp != nil && r.resp.Outcome == OutcomeDegraded {
			if r.resp.Stop != "canceled" {
				t.Errorf("request %d: drained run stopped on %q, want canceled", i, r.resp.Stop)
			}
			if r.resp.Width <= 0 {
				t.Errorf("request %d: drained run lost its anytime width", i)
			}
		}
	}

	// Zero dropped: the server answered exactly as many requests as it saw.
	var answered int64
	for _, o := range outcomes {
		answered += s.OutcomeCount(o)
	}
	if answered != 3 {
		t.Errorf("server answered %d of 3 admitted requests", answered)
	}

	// Arrivals during/after drain get typed 503s.
	hr, resp := postDecompose(t, ts, "algo=bb-ghw", []byte(cycle6HG))
	if hr.StatusCode != http.StatusServiceUnavailable || resp.Outcome != OutcomeRejected {
		t.Fatalf("post-drain arrival: %d %q", hr.StatusCode, resp.Outcome)
	}
}

// TestChaosDrainWaitsForQueued proves queued-but-not-yet-running requests
// keep their place during a graceful drain instead of being shed.
func TestChaosDrainWaitsForQueued(t *testing.T) {
	defer faultinject.Reset()
	s := New(Config{Workers: 1, QueueDepth: 4, CheckEvery: 16, CacheCapacity: -1})
	ts := httptest.NewServer(s)
	defer ts.Close()

	release := make(chan struct{})
	faultinject.Arm(faultinject.SiteServerHandle, 1, func() { <-release })
	var queuedResp atomic.Pointer[Response]
	first := make(chan struct{})
	go func() {
		defer close(first)
		postDecompose(t, ts, "algo=bb-ghw", []byte(cycle6HG)) // parks in the worker slot
	}()
	waitFor(t, time.Second, func() bool { return s.InFlight() == 1 })
	second := make(chan struct{})
	go func() {
		defer close(second)
		_, resp := postDecompose(t, ts, "algo=bb-ghw", []byte(acyclic4HG)) // waits in queue
		queuedResp.Store(resp)
	}()
	waitFor(t, time.Second, func() bool { return s.pending.Load() == 2 })

	drained := make(chan DrainReport, 1)
	go func() { drained <- s.Drain(5 * time.Second) }()
	time.Sleep(10 * time.Millisecond) // let the drain flip admission off
	close(release)                    // un-park the slot; both requests must now retire

	select {
	case rep := <-drained:
		if rep.Forced {
			t.Error("drain had time to finish gracefully, reported Forced")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("drain never returned")
	}
	<-first
	<-second
	if resp := queuedResp.Load(); resp == nil || resp.Outcome != OutcomeExact {
		t.Fatalf("queued request was shed during graceful drain: %+v", resp)
	}
}

// TestChaosHammerMixed is the kitchen-sink soak: healthy, malformed,
// oversize, streaming, deadline-stormed and panic-striken requests all at
// once. The only assertion that matters: every single one comes back typed,
// and the daemon is still standing.
func TestChaosHammerMixed(t *testing.T) {
	defer faultinject.Reset()
	s := New(Config{Workers: 4, QueueDepth: 8, MaxRequestBytes: 1 << 20, CheckEvery: 16})
	ts := httptest.NewServer(s)
	defer ts.Close()

	rearm(faultinject.SiteCover, 50, func() { panic("chaos: sporadic cover panic") })
	grid := grid12HG(t)
	big := bytes.Repeat([]byte("y"), 2<<20)
	results := hammer(t, ts, 40, func(i int) (string, []byte, context.Context) {
		switch i % 5 {
		case 0:
			return "algo=bb-ghw", []byte(cycle6HG), nil
		case 1:
			return "algo=bb-ghw&timeout=15ms", grid, nil
		case 2:
			return "", big, nil
		case 3:
			return "algo=greedy", []byte(acyclic4HG), nil
		default:
			return fmt.Sprintf("algo=bb-ghw&stream=sse&timeout=25ms&seed=%d", i), grid, nil
		}
	})
	byOutcome := assertAllTyped(t, results)
	total := 0
	for _, n := range byOutcome {
		total += n
	}
	if total != 40 {
		t.Errorf("typed outcomes for %d of 40 requests: %v", total, byOutcome)
	}
	faultinject.Reset()
	assertAlive(t, ts)

	rep := s.Drain(2 * time.Second)
	if n := s.InFlight(); n != 0 {
		t.Fatalf("post-soak drain left %d in flight (report %+v)", n, rep)
	}
}

// TestChaosPortfolioRace storms the daemon with portfolio requests — plain,
// SSE-streamed, deadline-stormed and panic-stricken at once. A racing
// member's contained panic must fail only its own request (typed error
// outcome), never the daemon, and every concurrent race still answers typed.
func TestChaosPortfolioRace(t *testing.T) {
	defer faultinject.Reset()
	s := New(Config{Workers: 4, QueueDepth: 8, CheckEvery: 16})
	ts := httptest.NewServer(s)
	defer ts.Close()

	rearm(faultinject.SiteCover, 400, func() { panic("chaos: sporadic cover panic") })
	grid := grid12HG(t)
	results := hammer(t, ts, 24, func(i int) (string, []byte, context.Context) {
		switch i % 4 {
		case 0:
			return "algo=portfolio", []byte(cycle6HG), nil
		case 1:
			return "algo=portfolio&timeout=40ms", grid, nil
		case 2:
			return fmt.Sprintf("algo=portfolio&stream=sse&timeout=30ms&seed=%d", i), grid, nil
		default:
			return "algo=portfolio", []byte(acyclic4HG), nil
		}
	})
	byOutcome := assertAllTyped(t, results)
	total := 0
	for _, n := range byOutcome {
		total += n
	}
	if total != 24 {
		t.Errorf("typed outcomes for %d of 24 requests: %v", total, byOutcome)
	}
	faultinject.Reset()
	assertAlive(t, ts)
	if rep := s.Drain(2 * time.Second); s.InFlight() != 0 {
		t.Fatalf("post-storm drain left requests in flight (report %+v)", rep)
	}
}
