package server

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sync"
	"sync/atomic"

	"hypertree/internal/core"
)

// DefaultCacheCapacity bounds the daemon's result cache when the caller does
// not choose: entries are one small Response each, so 4k entries stay well
// under a megabyte while absorbing the retry traffic a flaky client or a
// load balancer produces.
const DefaultCacheCapacity = 1 << 12

// resultKey is the idempotency key of a decomposition request: a content
// hash over everything that determines an exact answer — the raw payload
// bytes, the input format, the algorithm and the seed. Budgets and worker
// counts are deliberately excluded: they change how long a run takes, never
// what an *exact* result is, and only exact results are cached.
func resultKey(body []byte, format string, algo core.Algorithm, seed int64) string {
	h := sha256.New()
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(seed))
	h.Write(hdr[:])
	h.Write([]byte(format))
	h.Write([]byte{0})
	h.Write([]byte(algo))
	h.Write([]byte{0})
	h.Write(body)
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// maxResultShards bounds the sharding of the result cache — the same
// lock-striping discipline as the setcover engine's cover cache: enough
// shards that concurrent handlers do not serialize on one lock, few enough
// that the per-shard maps stay warm.
const maxResultShards = 16

// resultCache is a bounded, sharded map from request content hashes to
// finished exact responses. Each shard is an independent map with its own
// FIFO ring; capacities sum to the requested capacity so the total bound is
// exact while eviction order is only per-shard FIFO. All methods are safe
// for concurrent use.
type resultCache struct {
	shards    []resultShard
	mask      uint64
	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

type resultShard struct {
	mu       sync.Mutex
	capacity int
	m        map[string]*Response
	ring     []string
	next     int
}

// newResultCache builds a cache bounded to capacity entries; nil (a valid,
// always-missing cache) when capacity is not positive.
func newResultCache(capacity int) *resultCache {
	if capacity <= 0 {
		return nil
	}
	ns := maxResultShards
	for ns > 1 && ns > capacity {
		ns >>= 1
	}
	c := &resultCache{shards: make([]resultShard, ns), mask: uint64(ns - 1)}
	per, extra := capacity/ns, capacity%ns
	for i := range c.shards {
		sh := &c.shards[i]
		sh.capacity = per
		if i < extra {
			sh.capacity++
		}
		sh.m = make(map[string]*Response, sh.capacity/4)
		sh.ring = make([]string, 0, sh.capacity)
	}
	return c
}

// shard picks the shard for key by FNV-1a over the hex hash.
func (c *resultCache) shard(key string) *resultShard {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return &c.shards[(h^h>>32)&c.mask]
}

// lookup returns the cached response for key. A nil cache always misses
// without counting. The returned Response is shared — callers must copy
// before mutating per-request fields.
func (c *resultCache) lookup(key string) (*Response, bool) {
	if c == nil {
		return nil, false
	}
	sh := c.shard(key)
	sh.mu.Lock()
	resp, ok := sh.m[key]
	sh.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return resp, ok
}

// store inserts resp under key, evicting the shard's oldest entry at
// capacity. Re-storing an existing key refreshes the value without growing
// the ring.
func (c *resultCache) store(key string, resp *Response) {
	if c == nil {
		return
	}
	sh := c.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.m[key]; ok {
		sh.m[key] = resp
		return
	}
	if len(sh.ring) < sh.capacity {
		sh.ring = append(sh.ring, key)
	} else {
		delete(sh.m, sh.ring[sh.next])
		sh.ring[sh.next] = key
		sh.next = (sh.next + 1) % sh.capacity
		c.evictions.Add(1)
	}
	sh.m[key] = resp
}

// cacheStats is a point-in-time snapshot for /metrics.
type cacheStats struct {
	Hits, Misses, Evictions int64
	Size                    int
}

func (c *resultCache) stats() cacheStats {
	if c == nil {
		return cacheStats{}
	}
	s := cacheStats{Hits: c.hits.Load(), Misses: c.misses.Load(), Evictions: c.evictions.Load()}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		s.Size += len(sh.m)
		sh.mu.Unlock()
	}
	return s
}
