package server

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sync"
	"sync/atomic"
	"time"

	"hypertree/internal/core"
)

// DefaultCacheCapacity bounds the daemon's result cache when the caller does
// not choose: entries are one small Response each, so 4k entries stay well
// under a megabyte while absorbing the retry traffic a flaky client or a
// load balancer produces.
const DefaultCacheCapacity = 1 << 12

// DefaultPlanCacheCapacity bounds the compiled-plan cache. Plans carry
// materialized bag tables and hash indexes — orders of magnitude heavier
// than a Response — so the default is correspondingly smaller: enough for a
// working set of hot instances, small enough that a scan of one-off CSPs
// cannot pin unbounded memory.
const DefaultPlanCacheCapacity = 128

// resultKey is the idempotency key of a decomposition request: a content
// hash over everything that determines an exact answer — the raw payload
// bytes, the input format, the algorithm and the seed. Budgets and worker
// counts are deliberately excluded: they change how long a run takes, never
// what an *exact* result is, and only exact results are cached. The /query
// plan cache does NOT share this key — it also stores upper-bound plans,
// whose shape can depend on the budgets, so it uses planKey.
func resultKey(body []byte, format string, algo core.Algorithm, seed int64) string {
	h := sha256.New()
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(seed))
	h.Write(hdr[:])
	h.Write([]byte(format))
	h.Write([]byte{0})
	h.Write([]byte(algo))
	h.Write([]byte{0})
	h.Write(body)
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// planKey is the compiled-plan cache key behind /query: the resultKey
// content hash (format pinned to "csp", the raw CSP JSON as the payload —
// the queries array is excluded, it parameterizes runs against the plan,
// never the plan itself) extended with the request's budget knobs. Unlike
// the exact-only result cache, the plan cache stores upper-bound plans, and
// a heuristic decomposition legitimately depends on how much timeout / node
// budget / parallelism the run was given — so identical CSPs under
// different budgets get distinct entries, keeping every cached plan's
// reported width, node count and outcome true to the request that compiled
// it. (Exact plans fragment across budget variants too; that costs a few
// duplicate cache slots, never a wrong answer.)
func planKey(cspBody []byte, algo core.Algorithm, seed int64, timeout time.Duration, nodes int64, workers int) string {
	h := sha256.New()
	var hdr [32]byte
	binary.LittleEndian.PutUint64(hdr[0:], uint64(seed))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(timeout))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(nodes))
	binary.LittleEndian.PutUint64(hdr[24:], uint64(workers))
	h.Write(hdr[:])
	h.Write([]byte("csp"))
	h.Write([]byte{0})
	h.Write([]byte(algo))
	h.Write([]byte{0})
	h.Write(cspBody)
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// maxCacheShards bounds the sharding of the daemon caches — the same
// lock-striping discipline as the setcover engine's cover cache: enough
// shards that concurrent handlers do not serialize on one lock, few enough
// that the per-shard maps stay warm.
const maxCacheShards = 16

// fifoCache is a bounded, sharded map from content-hash keys to values.
// Each shard is an independent map with its own FIFO ring; capacities sum to
// the requested capacity so the total bound is exact while eviction order is
// only per-shard FIFO. All methods are safe for concurrent use. The result
// cache (hash -> *Response) and the compiled-plan cache (hash ->
// *cachedPlan) are the two instantiations.
type fifoCache[V any] struct {
	shards    []fifoShard[V]
	mask      uint64
	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

type fifoShard[V any] struct {
	mu       sync.Mutex
	capacity int
	m        map[string]V
	ring     []string
	next     int
}

// newFIFOCache builds a cache bounded to capacity entries; nil (a valid,
// always-missing cache) when capacity is not positive.
func newFIFOCache[V any](capacity int) *fifoCache[V] {
	if capacity <= 0 {
		return nil
	}
	ns := maxCacheShards
	for ns > 1 && ns > capacity {
		ns >>= 1
	}
	c := &fifoCache[V]{shards: make([]fifoShard[V], ns), mask: uint64(ns - 1)}
	per, extra := capacity/ns, capacity%ns
	for i := range c.shards {
		sh := &c.shards[i]
		sh.capacity = per
		if i < extra {
			sh.capacity++
		}
		sh.m = make(map[string]V, sh.capacity/4)
		sh.ring = make([]string, 0, sh.capacity)
	}
	return c
}

// shard picks the shard for key by FNV-1a over the hex hash.
func (c *fifoCache[V]) shard(key string) *fifoShard[V] {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return &c.shards[(h^h>>32)&c.mask]
}

// lookup returns the cached value for key. A nil cache always misses
// without counting. The returned value is shared — callers must copy before
// mutating per-request state.
func (c *fifoCache[V]) lookup(key string) (V, bool) {
	if c == nil {
		var zero V
		return zero, false
	}
	sh := c.shard(key)
	sh.mu.Lock()
	v, ok := sh.m[key]
	sh.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return v, ok
}

// store inserts v under key, evicting the shard's oldest entry at capacity.
// Re-storing an existing key refreshes the value without growing the ring.
func (c *fifoCache[V]) store(key string, v V) {
	if c == nil {
		return
	}
	sh := c.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.m[key]; ok {
		sh.m[key] = v
		return
	}
	if len(sh.ring) < sh.capacity {
		sh.ring = append(sh.ring, key)
	} else {
		delete(sh.m, sh.ring[sh.next])
		sh.ring[sh.next] = key
		sh.next = (sh.next + 1) % sh.capacity
		c.evictions.Add(1)
	}
	sh.m[key] = v
}

// cacheStats is a point-in-time snapshot for /metrics.
type cacheStats struct {
	Hits, Misses, Evictions int64
	Size                    int
}

func (c *fifoCache[V]) stats() cacheStats {
	if c == nil {
		return cacheStats{}
	}
	s := cacheStats{Hits: c.hits.Load(), Misses: c.misses.Load(), Evictions: c.evictions.Load()}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		s.Size += len(sh.m)
		sh.mu.Unlock()
	}
	return s
}

// resultCache is the exact-result instantiation; newResultCache keeps the
// historical constructor name used throughout the serving path.
type resultCache = fifoCache[*Response]

func newResultCache(capacity int) *resultCache {
	return newFIFOCache[*Response](capacity)
}
