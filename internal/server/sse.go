package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"

	"hypertree/internal/obs"
)

// sseWriter streams a run's progress as Server-Sent Events: the obs improve/
// lower_bound/detk_attempt/start/stop events as they happen, then one final
// "result" event carrying the same typed Response envelope a plain request
// gets. It is the obs.Recorder handed to core.Decompose for stream=sse
// requests.
//
// Solver goroutines must never block on a slow consumer — a stalled client
// would hold a worker slot past its budget (the deadline only trips at
// cooperative checkpoints). Record therefore does a non-blocking send into a
// bounded channel and drops on overflow; a dedicated goroutine owns all
// writes to the connection. Improve events are sparse (widths only ever
// tighten), so drops are rare and harmless: the final result event always
// carries the authoritative answer.
type sseWriter struct {
	w  http.ResponseWriter
	fl http.Flusher
	ch chan obs.Event

	mu     sync.Mutex // guards closed against late Records
	closed bool

	done    chan struct{}
	dropped atomic.Int64
}

// newSSEWriter starts a stream on w, or returns nil when w cannot flush.
// The 200 header goes out immediately: an SSE response is committed before
// the run's outcome is known, which is why the final frame carries it.
func newSSEWriter(w http.ResponseWriter, _ string) *sseWriter {
	fl, ok := w.(http.Flusher)
	if !ok {
		return nil
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	s := &sseWriter{w: w, fl: fl, ch: make(chan obs.Event, 64), done: make(chan struct{})}
	go s.loop()
	return s
}

// Record implements obs.Recorder. Safe for concurrent use and never blocks.
func (s *sseWriter) Record(e obs.Event) {
	switch e.Kind {
	case obs.KindStart, obs.KindStop, obs.KindImprove, obs.KindLowerBound, obs.KindAttempt:
	default:
		// Checkpoints, cache snapshots and mem samples are trace material,
		// not client material — they would swamp the stream.
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		// A straggler after finish; late events carry nothing the final
		// result frame did not.
		s.dropped.Add(1)
		return
	}
	select {
	case s.ch <- e:
	default:
		s.dropped.Add(1)
	}
}

// loop owns every write to the connection. Write errors mean the client went
// away; the run keeps its own cancellation path (the request context).
func (s *sseWriter) loop() {
	defer close(s.done)
	for e := range s.ch {
		data, err := json.Marshal(e)
		if err != nil {
			continue
		}
		if _, err := fmt.Fprintf(s.w, "event: %s\ndata: %s\n\n", e.Kind, data); err != nil {
			continue
		}
		s.fl.Flush()
	}
}

// finish closes the event stream and sends the terminal result frame. Called
// exactly once, from the request handler, after core.Decompose returned (so
// no solver goroutine records concurrently anymore — the mutex covers
// stragglers defensively).
func (s *sseWriter) finish(resp *Response) {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	close(s.ch)
	<-s.done
	data, err := json.Marshal(resp)
	if err != nil {
		return
	}
	fmt.Fprintf(s.w, "event: result\ndata: %s\n\n", data)
	s.fl.Flush()
}
