package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"hypertree/internal/budget"
	"hypertree/internal/core"
	"hypertree/internal/csp"
	"hypertree/internal/csp/engine"
	"hypertree/internal/hypergraph"
	"hypertree/internal/obs"
	"hypertree/internal/obs/hist"
)

// The /query endpoint: decompose once, serve thousands of CSP queries. A
// request carries a CSP and a batch of queries; the server decomposes the
// CSP's constraint hypergraph, compiles the decomposition into an
// engine.Plan (cached by content hash — the expensive part is paid once per
// instance, not once per query), and answers the batch from the plan. The
// serving discipline matches /decompose: draining check, bounded admission,
// one worker slot per request, typed envelopes, full lifecycle timings.

// Caps on a query batch. The request body cap bounds the CSP; these bound
// the work a single request can demand from a compiled plan. Two further
// bounds live elsewhere: Config.MaxCompileSteps bounds plan-compile work
// (a tiny CSP can declare a bag whose enumeration is astronomical) and
// Config.MaxResultCells bounds the assignment cells a batch materializes
// into its response (a batch of max-limit enumerates could otherwise demand
// gigabytes however small the request body is).
const (
	// MaxQueriesPerRequest bounds the batch size of one /query request.
	MaxQueriesPerRequest = 10000
	// DefaultEnumerateLimit is the enumerate cap when the query asks for
	// none; MaxEnumerateLimit is the most a query can ask for.
	DefaultEnumerateLimit = 100
	MaxEnumerateLimit     = 10000
	// MaxCSPVars bounds num_vars: cursors, solve assignments and enumerate
	// rows are all O(num_vars) memory, so a one-line request declaring a
	// huge variable count must not translate into gigabyte allocations.
	MaxCSPVars = 1 << 20
)

// queryEnvelope is the /query request body. The CSP stays raw until after
// the plan-cache lookup: its bytes are the cache key, and a hit never parses
// them.
type queryEnvelope struct {
	CSP     json.RawMessage `json:"csp"`
	Queries []querySpec     `json:"queries"`
}

// cspSpec is the wire form of a CSP.
type cspSpec struct {
	NumVars int `json:"num_vars"`
	// Domain is the shared-domain shorthand; Domains the per-variable form
	// (taking precedence when present — entries may be empty).
	Domain      []int            `json:"domain,omitempty"`
	Domains     [][]int          `json:"domains,omitempty"`
	Constraints []constraintSpec `json:"constraints"`
	VarNames    []string         `json:"var_names,omitempty"`
}

type constraintSpec struct {
	Scope  []int   `json:"scope"`
	Tuples [][]int `json:"tuples"`
}

// querySpec is one query of the batch: an operation, optional per-query
// unary assignments (variable name or index -> value), and an enumerate
// limit.
type querySpec struct {
	Op     string         `json:"op"` // solve | count | enumerate
	Assign map[string]int `json:"assign,omitempty"`
	Limit  int            `json:"limit,omitempty"`
}

// queryOps indexes the per-op served-queries counters.
var queryOps = [...]string{"solve", "count", "enumerate"}

func queryOpIndex(op string) int {
	for i, o := range queryOps {
		if o == op {
			return i
		}
	}
	return -1
}

// QueryResponse is the typed envelope every /query request gets back.
type QueryResponse struct {
	Outcome Outcome `json:"outcome"`
	Req     string  `json:"req,omitempty"`
	// N and M are the CSP size (variables, constraints).
	N int `json:"n,omitempty"`
	M int `json:"m,omitempty"`
	// Plan describes the compiled plan the batch ran against.
	Plan *PlanJSON `json:"plan,omitempty"`
	// Results is parallel to the request's queries array.
	Results   []QueryResult `json:"results,omitempty"`
	ElapsedMS int64         `json:"elapsed_ms"`
	WaitedMS  int64         `json:"waited_ms"`
	Timings   *Timings      `json:"timings,omitempty"`
	// Error explains rejected/error outcomes; RetrySeconds mirrors the
	// Retry-After header on backpressure rejections.
	Error        string `json:"error,omitempty"`
	RetrySeconds int    `json:"retry_after_s,omitempty"`
}

// PlanJSON describes a compiled plan on the wire: the decomposition it was
// built from and the compile-time facts of the engine.
type PlanJSON struct {
	Algo  string `json:"algo"`
	Width int    `json:"width"`
	Exact bool   `json:"exact"`
	// Nodes/Rows/MaxBagRows are the engine's materialized footprint.
	Nodes       int  `json:"nodes"`
	Rows        int  `json:"rows"`
	MaxBagRows  int  `json:"max_bag_rows"`
	Satisfiable bool `json:"satisfiable"`
	Solutions   int  `json:"solutions"`
	// SolutionsOverflow reports the solution count saturated at the int
	// limit: Solutions is then a lower bound, not the true value.
	SolutionsOverflow bool `json:"solutions_overflow,omitempty"`
	// Cached reports the plan came from the plan cache; CompileMS is the
	// original compile cost (decompose excluded).
	Cached    bool  `json:"cached"`
	CompileMS int64 `json:"compile_ms"`
}

// QueryResult is one query's answer. Sat/Assignment answer solve, Count
// answers count, Solutions answers enumerate; Error flags a malformed query
// (unknown op, unknown variable) without failing the batch.
type QueryResult struct {
	Op         string  `json:"op"`
	Sat        *bool   `json:"sat,omitempty"`
	Assignment []int   `json:"assignment,omitempty"`
	Count      *int    `json:"count,omitempty"`
	Solutions  [][]int `json:"solutions,omitempty"`
	// CountOverflow reports the count saturated at the int limit: Count is
	// then a lower bound, not the true value.
	CountOverflow bool `json:"count_overflow,omitempty"`
	// Truncated reports the enumerate hit the request's result budget
	// before its limit: Solutions may be incomplete.
	Truncated bool   `json:"truncated,omitempty"`
	Error     string `json:"error,omitempty"`
}

// cachedPlan is a plan-cache entry: the immutable compiled plan plus the
// request-agnostic facts every later hit reports.
type cachedPlan struct {
	plan *engine.Plan
	info PlanJSON // Cached=false; hits flip it on their copy
	// names maps declared variable names to indexes, for resolving query
	// pins without reparsing the CSP on cache hits. Nil when the CSP
	// declared none.
	names   map[string]int
	n, m    int
	outcome Outcome
}

// handleQuery is the /query serving path.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	id := fmt.Sprintf("r%06d", s.reqSeq.Add(1))
	w.Header().Set("X-Request-ID", id)
	lc := s.newLifecycle(id, r.RemoteAddr)

	s.wg.Add(1)
	defer s.wg.Done()
	if s.draining.Load() {
		s.queryReject(w, lc, http.StatusServiceUnavailable, "draining: not admitting new requests", drainingRetrySeconds)
		return
	}

	p, err := s.parseParams(r)
	if err != nil {
		s.queryReject(w, lc, http.StatusBadRequest, err.Error(), 0)
		return
	}
	lc.algo = string(p.algo)

	body, err := io.ReadAll(hypergraph.LimitReader(r.Body, s.cfg.MaxRequestBytes))
	if err != nil {
		var tooBig *hypergraph.PayloadTooLargeError
		if errors.As(err, &tooBig) {
			s.queryReject(w, lc, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("payload exceeds %d-byte limit", tooBig.Limit), 0)
			return
		}
		s.queryReject(w, lc, http.StatusBadRequest, fmt.Sprintf("reading body: %v", err), 0)
		return
	}
	var env queryEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		s.queryReject(w, lc, http.StatusBadRequest, fmt.Sprintf("decoding request: %v", err), 0)
		return
	}
	if len(env.CSP) == 0 {
		s.queryReject(w, lc, http.StatusBadRequest, "missing csp", 0)
		return
	}
	if len(env.Queries) > MaxQueriesPerRequest {
		s.queryReject(w, lc, http.StatusBadRequest,
			fmt.Sprintf("%d queries exceed the %d-per-request cap", len(env.Queries), MaxQueriesPerRequest), 0)
		return
	}

	// Plan-cache lookup before admission-heavy work: the key covers the raw
	// CSP bytes, the algorithm, the seed and the budget knobs — everything
	// that determines the compiled plan (heuristic decompositions depend on
	// their budgets), and nothing (the queries) that doesn't.
	key := planKey(env.CSP, p.algo, p.seed, p.timeout, p.nodes, p.workers)
	cstart := time.Now()
	entry, hit := s.plans.lookup(key)
	lc.phase(phaseCache, time.Since(cstart))

	// Even a plan-cache hit runs its batch inside a worker slot: query CPU
	// stays pool-bounded exactly like solver CPU.
	if s.pending.Add(1) > int64(s.cfg.Workers+s.cfg.QueueDepth) {
		s.pending.Add(-1)
		s.queryReject(w, lc, http.StatusTooManyRequests, "saturated: worker pool and queue full", saturatedRetrySeconds)
		return
	}
	defer s.pending.Add(-1)

	ri := &runInfo{id: id, algo: string(p.algo), start: time.Now()}
	s.registry.add(ri)
	defer s.registry.remove(id)

	qstart := time.Now()
	select {
	case s.sem <- struct{}{}:
	case <-r.Context().Done():
		lc.phase(phaseQueueWait, time.Since(qstart))
		s.queryReject(w, lc, statusClientClosedRequest, "client canceled while queued", 0)
		return
	case <-s.baseCtx.Done():
		lc.phase(phaseQueueWait, time.Since(qstart))
		s.queryReject(w, lc, http.StatusServiceUnavailable, "draining: canceled while queued", drainingRetrySeconds)
		return
	}
	defer func() { <-s.sem }()
	wait := time.Since(qstart)
	lc.phase(phaseQueueWait, wait)
	ri.waitNS.Store(int64(wait))
	ri.running.Store(true)
	s.inflight.Add(1)
	defer s.inflight.Add(-1)

	if !hit {
		entry = s.compilePlan(w, lc, ri, r, p, env.CSP)
		if entry == nil {
			return // compilePlan already answered
		}
		if entry.outcome == OutcomeDegraded {
			// A degraded decomposition still yields a correct plan (any
			// valid decomposition does), but its shape is budget-dependent,
			// so it is served once and never cached — mirroring the
			// exact-only discipline of the result cache.
			s.plansSkipped.Add(1)
		} else {
			s.plans.store(key, entry)
		}
	}

	// The batch: one cursor serves every query of this request in sequence;
	// concurrency across requests comes from each request's own cursor.
	// cells is the request's remaining result budget — every materialized
	// assignment cell across the batch draws it down, so response memory is
	// bounded whatever the batch asks for.
	qrstart := time.Now()
	cu := entry.plan.NewCursor()
	cells := s.cfg.MaxResultCells
	results := make([]QueryResult, len(env.Queries))
	for i := range env.Queries {
		results[i] = s.runQuery(cu, entry, &env.Queries[i], &cells)
	}
	lc.phase(phaseQuery, time.Since(qrstart))

	estart := time.Now()
	info := entry.info
	info.Cached = hit
	resp := &QueryResponse{
		Outcome:   entry.outcome,
		Req:       id,
		N:         entry.n,
		M:         entry.m,
		Plan:      &info,
		Results:   results,
		ElapsedMS: time.Since(lc.start).Milliseconds(),
	}
	lc.phase(phaseEncode, time.Since(estart))
	resp.Timings = lc.finish(resp.Outcome)
	resp.WaitedMS = lc.waitedMS()
	s.queryCount(resp.Outcome)
	s.queryHist.Observe(resp.Timings.Total)
	s.logQueryAccess(lc, http.StatusOK, resp, len(results))
	s.writeJSON(w, http.StatusOK, resp)
}

// compilePlan parses, decomposes and compiles the CSP inside the worker
// slot. On failure it answers the request itself and returns nil.
func (s *Server) compilePlan(w http.ResponseWriter, lc *lifecycle, ri *runInfo, r *http.Request, p reqParams, rawCSP json.RawMessage) *cachedPlan {
	pstart := time.Now()
	c, err := parseCSP(rawCSP)
	lc.phase(phaseParse, time.Since(pstart))
	if err != nil {
		s.queryReject(w, lc, http.StatusBadRequest, fmt.Sprintf("parsing csp: %v", err), 0)
		return nil
	}
	h := c.Hypergraph()

	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	unhook := context.AfterFunc(s.baseCtx, cancel)
	defer unhook()

	sstart := time.Now()
	d, derr := core.Decompose(h, core.Options{
		Algorithm:  p.algo,
		Ctx:        ctx,
		Timeout:    p.timeout,
		MaxNodes:   p.nodes,
		CheckEvery: s.cfg.CheckEvery,
		Seed:       p.seed,
		Workers:    p.workers,
		Recorder:   obs.Tee(lc.spans, ri),
	})
	lc.phase(phaseSolve, time.Since(sstart))
	if derr != nil {
		var pe *budget.PanicError
		if errors.As(derr, &pe) {
			s.queryError(w, lc, fmt.Sprintf("algorithm panicked (contained): %v", pe.Value))
			return nil
		}
		s.queryReject(w, lc, http.StatusUnprocessableEntity, derr.Error(), 0)
		return nil
	}

	// The compile budget: the materialized-table work of turning the
	// decomposition into a plan is bounded exactly like solver work —
	// request timeout, a step cap, and the same cancel signals (client
	// disconnect, drain) core.Decompose honors. Without it, a sub-kilobyte
	// CSP declaring one wide bag over a large domain forces |domain|^|bag|
	// enumeration steps and wedges this worker slot forever.
	kstart := time.Now()
	cb := budget.New(ctx, budget.Limits{
		Timeout:    p.timeout,
		MaxNodes:   s.cfg.MaxCompileSteps,
		CheckEvery: s.cfg.CheckEvery,
	})
	plan, err := compileDecomposition(c, h, d, cb)
	compileDur := time.Since(kstart)
	lc.phase(phaseCompile, compileDur)
	s.compileHist.Observe(compileDur)
	if err != nil {
		var ie *csp.InterruptedError
		if errors.As(err, &ie) {
			switch {
			case s.baseCtx.Err() != nil:
				s.queryReject(w, lc, http.StatusServiceUnavailable,
					"draining: plan compile canceled", drainingRetrySeconds)
			case r.Context().Err() != nil:
				s.queryReject(w, lc, statusClientClosedRequest,
					"client canceled during plan compile", 0)
			default:
				s.queryReject(w, lc, http.StatusUnprocessableEntity,
					fmt.Sprintf("plan compile exceeded its budget (%s): the instance materializes more bag-table work than this server will serve", ie.Reason), 0)
			}
			return nil
		}
		s.queryError(w, lc, fmt.Sprintf("compiling plan: %v", err))
		return nil
	}

	st := plan.Stats()
	outcome := OutcomeUpperBound
	if d.Exact {
		outcome = OutcomeExact
	}
	if d.Interrupted {
		outcome = OutcomeDegraded
	}
	var names map[string]int
	if c.VarNames != nil {
		names = make(map[string]int, len(c.VarNames))
		for v, name := range c.VarNames {
			if name != "" {
				names[name] = v
			}
		}
	}
	entry := &cachedPlan{
		plan:  plan,
		names: names,
		info: PlanJSON{
			Algo:              string(p.algo),
			Width:             d.Width,
			Exact:             d.Exact,
			Nodes:             st.Nodes,
			Rows:              st.Rows,
			MaxBagRows:        st.MaxBagRows,
			Satisfiable:       st.Satisfiable,
			Solutions:         st.Solutions,
			SolutionsOverflow: st.SolutionsOverflow,
			CompileMS:         compileDur.Milliseconds(),
		},
		n:       c.NumVars,
		m:       len(c.Constraints),
		outcome: outcome,
	}
	return entry
}

// compileDecomposition picks the engine entry point for whatever the solver
// produced: the GHD when present (completed first — compile joins λ-set
// relations, output-sensitive), the tree decomposition otherwise. Both
// paths run under bu; a tripped budget surfaces as *csp.InterruptedError.
func compileDecomposition(c *csp.CSP, h *hypergraph.Hypergraph, d *core.Decomposition, bu *budget.B) (*engine.Plan, error) {
	if d.GHD != nil {
		g := d.GHD
		if !g.IsComplete(h) {
			g.Complete(h)
		}
		return engine.CompileGHDBudget(c, g, bu)
	}
	if d.TD != nil {
		return engine.CompileBudget(c, d.TD, bu)
	}
	return nil, fmt.Errorf("decomposition carries neither TD nor GHD")
}

// runQuery answers one query of the batch on the shared cursor. cells is
// the request's remaining result budget in assignment cells (ints): solve
// assignments and enumerate rows draw it down, and a query whose answer
// would not fit gets an error marker instead of rows — the batch keeps
// going (counts and sat bits are free), the response stays bounded.
func (s *Server) runQuery(cu *engine.Cursor, entry *cachedPlan, q *querySpec, cells *int) QueryResult {
	res := QueryResult{Op: q.Op}
	oi := queryOpIndex(q.Op)
	if oi < 0 {
		res.Error = fmt.Sprintf("unknown op %q (have solve, count, enumerate)", q.Op)
		return res
	}
	pins, err := resolvePins(entry, q.Assign)
	if err != nil {
		res.Error = err.Error()
		return res
	}
	s.queryOpCount[oi].Add(1)
	nv := entry.plan.NumVars()
	switch q.Op {
	case "solve":
		sol, ok := cu.Solve(pins)
		if ok && *cells < nv {
			return resultBudgetExhausted(res, s.cfg.MaxResultCells)
		}
		res.Sat = &ok
		if ok {
			*cells -= nv
			res.Assignment = append([]int(nil), sol...)
		}
	case "count":
		n, exact := cu.CountExact(pins)
		res.Count = &n
		res.CountOverflow = !exact
	case "enumerate":
		limit := q.Limit
		switch {
		case limit <= 0:
			limit = DefaultEnumerateLimit
		case limit > MaxEnumerateLimit:
			limit = MaxEnumerateLimit
		}
		rowAllow := *cells / nv
		if rowAllow == 0 {
			return resultBudgetExhausted(res, s.cfg.MaxResultCells)
		}
		clamped := false
		if limit > rowAllow {
			limit = rowAllow
			clamped = true
		}
		sols := cu.Enumerate(limit, pins)
		*cells -= len(sols) * nv
		// A clamped enumerate that filled its reduced limit may have left
		// rows unreported; say so instead of posing as complete.
		res.Truncated = clamped && len(sols) == limit
		res.Solutions = make([][]int, len(sols))
		for i, sol := range sols {
			res.Solutions[i] = sol
		}
	}
	return res
}

// resultBudgetExhausted marks a query whose answer was withheld because the
// request's result budget ran out; the batch keeps going, and clients that
// need everything split it across requests.
func resultBudgetExhausted(res QueryResult, capCells int) QueryResult {
	res.Error = fmt.Sprintf("result budget exhausted: this request already materialized close to %d assignment cells; split the batch across requests", capCells)
	return res
}

// resolvePins maps a query's assign block (variable name or decimal index ->
// value) to engine pins. Variables are resolved by declared name first, then
// as indexes.
func resolvePins(entry *cachedPlan, assign map[string]int) ([]engine.Pin, error) {
	if len(assign) == 0 {
		return nil, nil
	}
	pins := make([]engine.Pin, 0, len(assign))
	for name, val := range assign {
		v, ok := entry.names[name]
		if !ok {
			idx, err := strconv.Atoi(name)
			if err != nil || idx < 0 || idx >= entry.plan.NumVars() {
				return nil, fmt.Errorf("unknown variable %q", name)
			}
			v = idx
		}
		pins = append(pins, engine.Pin{Var: v, Val: val})
	}
	return pins, nil
}

// parseCSP validates and builds the CSP from its wire form. Everything
// csp.AddConstraint would panic on is rejected here with a message instead.
func parseCSP(raw json.RawMessage) (*csp.CSP, error) {
	var spec cspSpec
	if err := json.Unmarshal(raw, &spec); err != nil {
		return nil, err
	}
	if spec.NumVars <= 0 {
		return nil, fmt.Errorf("num_vars must be positive, got %d", spec.NumVars)
	}
	if spec.NumVars > MaxCSPVars {
		return nil, fmt.Errorf("num_vars %d exceeds the %d-variable cap", spec.NumVars, MaxCSPVars)
	}
	if len(spec.Constraints) == 0 {
		return nil, fmt.Errorf("at least one constraint is required")
	}
	c := &csp.CSP{NumVars: spec.NumVars, Domains: make([][]csp.Value, spec.NumVars)}
	if spec.Domains != nil {
		if len(spec.Domains) != spec.NumVars {
			return nil, fmt.Errorf("domains has %d entries for %d variables", len(spec.Domains), spec.NumVars)
		}
		for v := range c.Domains {
			c.Domains[v] = append([]csp.Value(nil), spec.Domains[v]...)
		}
	} else {
		for v := range c.Domains {
			c.Domains[v] = append([]csp.Value(nil), spec.Domain...)
		}
	}
	if spec.VarNames != nil {
		if len(spec.VarNames) != spec.NumVars {
			return nil, fmt.Errorf("var_names has %d entries for %d variables", len(spec.VarNames), spec.NumVars)
		}
		c.VarNames = spec.VarNames
	}
	for i, con := range spec.Constraints {
		if len(con.Scope) == 0 {
			return nil, fmt.Errorf("constraint %d has an empty scope", i)
		}
		seen := make(map[int]bool, len(con.Scope))
		for _, v := range con.Scope {
			if v < 0 || v >= spec.NumVars {
				return nil, fmt.Errorf("constraint %d: variable %d out of range", i, v)
			}
			if seen[v] {
				return nil, fmt.Errorf("constraint %d: variable %d repeats in scope", i, v)
			}
			seen[v] = true
		}
		for j, t := range con.Tuples {
			if len(t) != len(con.Scope) {
				return nil, fmt.Errorf("constraint %d: tuple %d has arity %d, scope has %d", i, j, len(t), len(con.Scope))
			}
		}
		c.AddConstraint(con.Scope, con.Tuples)
	}
	return c, nil
}

// queryReject answers a /query request that will not run.
func (s *Server) queryReject(w http.ResponseWriter, lc *lifecycle, status int, msg string, retrySeconds int) {
	s.queryCount(OutcomeRejected)
	resp := &QueryResponse{Outcome: OutcomeRejected, Req: lc.id, Error: msg, RetrySeconds: retrySeconds}
	resp.Timings = lc.finish(OutcomeRejected)
	resp.WaitedMS = lc.waitedMS()
	s.queryHist.Observe(resp.Timings.Total)
	if retrySeconds > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(retrySeconds))
	}
	s.logQueryAccess(lc, status, resp, 0)
	s.writeJSON(w, status, resp)
}

// queryError answers an admitted /query request that failed.
func (s *Server) queryError(w http.ResponseWriter, lc *lifecycle, msg string) {
	s.queryCount(OutcomeError)
	resp := &QueryResponse{Outcome: OutcomeError, Req: lc.id, Error: msg}
	resp.Timings = lc.finish(OutcomeError)
	resp.WaitedMS = lc.waitedMS()
	s.queryHist.Observe(resp.Timings.Total)
	s.logQueryAccess(lc, http.StatusInternalServerError, resp, 0)
	s.writeJSON(w, http.StatusInternalServerError, resp)
}

// logQueryAccess writes the access-log line for a finished /query request,
// reusing the decompose record shape (queries ride in N/M and the timings).
func (s *Server) logQueryAccess(lc *lifecycle, status int, resp *QueryResponse, served int) {
	if s.cfg.AccessLog == nil {
		return
	}
	rec := accessRecord{
		Time:      time.Now().UTC().Format(time.RFC3339Nano),
		Req:       resp.Req,
		Remote:    lc.remote,
		Outcome:   resp.Outcome,
		Status:    status,
		Algo:      lc.algo,
		N:         resp.N,
		M:         resp.M,
		WaitedMS:  resp.WaitedMS,
		ElapsedMS: resp.ElapsedMS,
		Timings:   resp.Timings,
		Error:     resp.Error,
	}
	if resp.Plan != nil {
		rec.Width = resp.Plan.Width
		rec.Exact = resp.Plan.Exact
		rec.Cached = resp.Plan.Cached
	}
	if resp.Timings != nil {
		rec.ElapsedMS = resp.Timings.Total.Milliseconds()
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return
	}
	line = append(line, '\n')
	s.accessMu.Lock()
	defer s.accessMu.Unlock()
	_, _ = s.cfg.AccessLog.Write(line)
}

func (s *Server) queryCount(o Outcome) {
	if i := outcomeIndex(o); i >= 0 {
		s.queryOutcome[i].Add(1)
	}
}

// writeQueryMetrics renders the hypertree_query_* families on /metrics:
// request outcomes, served queries by op, plan-cache traffic, and latency
// summaries for whole /query requests and for plan compiles.
func (s *Server) writeQueryMetrics(b *bytes.Buffer) {
	fmt.Fprintf(b, "# HELP hypertree_query_requests_total /query responses sent, by typed outcome.\n# TYPE hypertree_query_requests_total counter\n")
	for i, o := range outcomes {
		fmt.Fprintf(b, "hypertree_query_requests_total{outcome=%q} %d\n", o, s.queryOutcome[i].Load())
	}
	fmt.Fprintf(b, "# HELP hypertree_query_queries_total Individual queries served against compiled plans, by operation.\n# TYPE hypertree_query_queries_total counter\n")
	for i, op := range queryOps {
		fmt.Fprintf(b, "hypertree_query_queries_total{op=%q} %d\n", op, s.queryOpCount[i].Load())
	}
	ps := s.plans.stats()
	fmt.Fprintf(b, "# HELP hypertree_query_plan_cache_hits Compiled-plan cache hits.\n# TYPE hypertree_query_plan_cache_hits counter\nhypertree_query_plan_cache_hits %d\n", ps.Hits)
	fmt.Fprintf(b, "# HELP hypertree_query_plan_cache_misses Compiled-plan cache misses.\n# TYPE hypertree_query_plan_cache_misses counter\nhypertree_query_plan_cache_misses %d\n", ps.Misses)
	fmt.Fprintf(b, "# HELP hypertree_query_plan_cache_evictions Compiled-plan cache FIFO evictions.\n# TYPE hypertree_query_plan_cache_evictions counter\nhypertree_query_plan_cache_evictions %d\n", ps.Evictions)
	fmt.Fprintf(b, "# HELP hypertree_query_plan_cache_size Compiled-plan cache resident entries.\n# TYPE hypertree_query_plan_cache_size gauge\nhypertree_query_plan_cache_size %d\n", ps.Size)
	fmt.Fprintf(b, "# HELP hypertree_query_plans_uncached_total Degraded-decomposition plans served once and not cached.\n# TYPE hypertree_query_plans_uncached_total counter\nhypertree_query_plans_uncached_total %d\n", s.plansSkipped.Load())
	_ = hist.WriteSummaryFamily(b, "hypertree_query_request_latency_seconds",
		"End-to-end /query request latency quantiles.", latencyQuantiles,
		hist.Series{Snap: s.queryHist.Snapshot()})
	_ = hist.WriteSummaryFamily(b, "hypertree_query_compile_seconds",
		"Plan compile latency quantiles (bag materialization, Yannakakis reduction, index build).", latencyQuantiles,
		hist.Series{Snap: s.compileHist.Snapshot()})
}
