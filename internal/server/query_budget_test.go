package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// hugeBagCSPJSON is the adversarial /query payload the compile budget
// exists for: 12 variables over a 50-value domain tied together by one
// sparse 12-ary constraint. Any tree decomposition must put all 12
// variables in one bag, and materializing that bag enumerates 50^12 ≈
// 2·10^20 candidates — from a request under a kilobyte. Unbudgeted, the
// compile would wedge a worker slot for geological time.
func hugeBagCSPJSON() string {
	var scope, tuple []string
	for i := 0; i < 12; i++ {
		scope = append(scope, fmt.Sprint(i))
		tuple = append(tuple, "0")
	}
	var domain []string
	for v := 0; v < 50; v++ {
		domain = append(domain, fmt.Sprint(v))
	}
	return fmt.Sprintf(`{
		"num_vars": 12,
		"domain": [%s],
		"constraints": [{"scope": [%s], "tuples": [[%s]]}]
	}`, strings.Join(domain, ","), strings.Join(scope, ","), strings.Join(tuple, ","))
}

// A compile whose bag-table work exceeds MaxCompileSteps must come back as
// a fast, typed 422 — not a wedged worker slot. algo=astar-tw forces the
// TD compile path (the enumerating one): every ghw algorithm also hands
// back a GHD, whose output-sensitive compile never trips on this instance.
func TestQueryCompileBudgetRejects(t *testing.T) {
	s := New(Config{MaxCompileSteps: 5_000, CheckEvery: 16})
	ts := httptest.NewServer(s)
	defer ts.Close()

	body := fmt.Sprintf(`{"csp": %s, "queries": [{"op": "count"}]}`, hugeBagCSPJSON())
	start := time.Now()
	hr, resp := postQuery(t, ts, "algo=astar-tw", body)
	if el := time.Since(start); el > 10*time.Second {
		t.Fatalf("budget rejection took %v — the compile is not being interrupted", el)
	}
	if hr.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, want 422 (error: %s)", hr.StatusCode, resp.Error)
	}
	if resp.Outcome != OutcomeRejected {
		t.Fatalf("outcome = %q, want rejected", resp.Outcome)
	}
	if !strings.Contains(resp.Error, "compile") || !strings.Contains(resp.Error, "budget") {
		t.Fatalf("error %q does not name the compile budget", resp.Error)
	}

	// The slot must be free again: a well-behaved request on the same
	// single-worker-class server still gets served.
	hr2, resp2 := postQuery(t, ts, "", queryBody(`{"op": "count"}`))
	if hr2.StatusCode != http.StatusOK {
		t.Fatalf("follow-up status = %d, want 200 (error: %s)", hr2.StatusCode, resp2.Error)
	}
}

// MaxResultCells bounds what one request may materialize: enumerations are
// clamped and flagged Truncated, queries past the budget get error markers
// instead of rows, and cell-free answers (counts, sat bits) keep flowing.
func TestQueryResultCellsBudget(t *testing.T) {
	s := New(Config{MaxResultCells: 10})
	ts := httptest.NewServer(s)
	defer ts.Close()

	// pathCSPJSON has 3 variables: a solve costs 3 cells, an enumerate row
	// costs 3. Budget 10 → solve (7 left), enumerate gets ⌊7/3⌋ = 2 rows
	// (1 left), then nothing with cells fits.
	hr, resp := postQuery(t, ts, "", queryBody(`
		{"op": "solve"},
		{"op": "enumerate", "limit": 10},
		{"op": "solve"},
		{"op": "enumerate", "limit": 1},
		{"op": "count"}`))
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 (error: %s)", hr.StatusCode, resp.Error)
	}
	r := resp.Results
	if len(r) != 5 {
		t.Fatalf("got %d results, want 5", len(r))
	}
	if r[0].Sat == nil || !*r[0].Sat || len(r[0].Assignment) != 3 {
		t.Fatalf("solve inside budget = %+v, want a 3-cell assignment", r[0])
	}
	if len(r[1].Solutions) != 2 || !r[1].Truncated {
		t.Fatalf("enumerate = %d solutions, truncated=%v; want 2 rows flagged truncated",
			len(r[1].Solutions), r[1].Truncated)
	}
	if !strings.Contains(r[2].Error, "result budget exhausted") {
		t.Fatalf("over-budget solve error = %q, want a result-budget marker", r[2].Error)
	}
	if r[2].Sat != nil {
		t.Fatalf("over-budget solve still claimed sat=%v", *r[2].Sat)
	}
	if !strings.Contains(r[3].Error, "result budget exhausted") {
		t.Fatalf("over-budget enumerate error = %q, want a result-budget marker", r[3].Error)
	}
	if r[4].Count == nil || *r[4].Count != 2 {
		t.Fatalf("count after exhaustion = %v, want 2 (counts cost no cells)", r[4].Count)
	}
}

// An enumerate that fits its clamped limit exactly but was NOT clamped by
// the budget must not be flagged Truncated — the flag means "there may be
// more", never "you got everything".
func TestQueryEnumerateCompleteNotTruncated(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()

	hr, resp := postQuery(t, ts, "", queryBody(`{"op": "enumerate", "limit": 10}`))
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", hr.StatusCode)
	}
	if r := resp.Results[0]; len(r.Solutions) != 2 || r.Truncated {
		t.Fatalf("enumerate = %d solutions, truncated=%v; want 2 rows, not truncated",
			len(r.Solutions), r.Truncated)
	}
}

// The plan cache must key on the budget knobs: the same CSP under a
// different timeout or node budget can decompose differently, so it must
// not be served another budget's cached plan (whose reported width and
// outcome would then be wrong for this request).
func TestQueryPlanCacheKeyedByBudget(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()

	body := queryBody(`{"op": "count"}`)
	_, first := postQuery(t, ts, "", body)
	if first.Plan == nil || first.Plan.Cached {
		t.Fatalf("first request: plan = %+v, want a fresh compile", first.Plan)
	}
	_, second := postQuery(t, ts, "", body)
	if second.Plan == nil || !second.Plan.Cached {
		t.Fatalf("identical request: plan = %+v, want a cache hit", second.Plan)
	}
	_, third := postQuery(t, ts, "timeout=7s", body)
	if third.Plan == nil || third.Plan.Cached {
		t.Fatalf("different timeout: plan = %+v, want a fresh compile, got a hit", third.Plan)
	}
	_, fourth := postQuery(t, ts, "timeout=7s", body)
	if fourth.Plan == nil || !fourth.Plan.Cached {
		t.Fatalf("repeated timeout=7s: plan = %+v, want a cache hit", fourth.Plan)
	}
	_, fifth := postQuery(t, ts, "nodes=12345", body)
	if fifth.Plan == nil || fifth.Plan.Cached {
		t.Fatalf("different node budget: plan = %+v, want a fresh compile, got a hit", fifth.Plan)
	}
}

// num_vars is client-controlled and sizes every cursor and result
// allocation, so it is capped: a CSP declaring an absurd variable count is
// a 400, not an allocation storm.
func TestQueryRejectsAbsurdNumVars(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()

	body := fmt.Sprintf(`{"csp": {"num_vars": %d, "domain": [0], "constraints": []}, "queries": [{"op": "count"}]}`,
		MaxCSPVars+1)
	hr, resp := postQuery(t, ts, "", body)
	if hr.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400 (error: %s)", hr.StatusCode, resp.Error)
	}
	if !strings.Contains(resp.Error, "variable cap") {
		t.Fatalf("error %q does not name the variable cap", resp.Error)
	}
}
