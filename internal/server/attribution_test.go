package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"hypertree/internal/obs/attr"
)

// TestEnvelopeAttribution checks the per-member resource ledger on the
// response envelope: serial runs carry the degenerate one-member ledger,
// portfolio runs one row per racer, both balancing under Conserved, and
// cache hits carry none (a hit spends no solver work).
func TestEnvelopeAttribution(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()

	_, resp := postDecompose(t, ts, "algo=bb-ghw", []byte(cycle6HG))
	led := resp.Attribution
	if led == nil {
		t.Fatal("serial response has no attribution ledger")
	}
	if led.Portfolio || len(led.Members) != 1 {
		t.Fatalf("serial ledger shape: portfolio=%v members=%d", led.Portfolio, len(led.Members))
	}
	if led.Winner != "bb-ghw" || led.Members[0].Role != attr.RoleWinner {
		t.Fatalf("serial ledger winner %q role %q", led.Winner, led.Members[0].Role)
	}
	if err := led.Conserved(); err != nil {
		t.Fatalf("serial ledger unbalanced: %v", err)
	}
	if led.TotalNodes != resp.Nodes {
		t.Fatalf("ledger total %d != envelope nodes %d", led.TotalNodes, resp.Nodes)
	}

	_, hit := postDecompose(t, ts, "algo=bb-ghw", []byte(cycle6HG))
	if !hit.Cached {
		t.Fatal("second identical request was not a cache hit")
	}
	if hit.Attribution != nil {
		t.Fatal("cache hit carries an attribution ledger; it did no solver work")
	}

	_, pr := postDecompose(t, ts, "algo=portfolio", []byte(acyclic4HG))
	pled := pr.Attribution
	if pled == nil {
		t.Fatal("portfolio response has no attribution ledger")
	}
	if !pled.Portfolio || len(pled.Members) < 2 {
		t.Fatalf("portfolio ledger shape: portfolio=%v members=%d", pled.Portfolio, len(pled.Members))
	}
	if err := pled.Conserved(); err != nil {
		t.Fatalf("portfolio ledger unbalanced: %v", err)
	}
	if pled.Find(pled.Winner) == nil {
		t.Fatalf("portfolio winner %q has no member row", pled.Winner)
	}

	// The cumulative /metrics families reflect the two solved runs: bb-ghw
	// won its serial run, the portfolio winner won the race, and the share
	// gauge family is announced.
	hr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	body, err := io.ReadAll(hr.Body)
	if err != nil {
		t.Fatal(err)
	}
	metrics := string(body)
	for _, want := range []string{
		`hypertree_portfolio_member_wins_total{algo="bb-ghw"} 1`,
		`hypertree_portfolio_member_wins_total{algo="` + pled.Winner + `"}`,
		"# TYPE hypertree_portfolio_member_nodes_total counter",
		"# TYPE hypertree_portfolio_member_improvements_total counter",
		"# TYPE hypertree_portfolio_member_node_share gauge",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestDebugEndpointsDeterministic checks the introspection endpoints declare
// application/json and serve byte-identical bodies across repeated reads of
// unchanged state — the ordering contract (start time / elapsed, request id
// on ties) made observable.
func TestDebugEndpointsDeterministic(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()

	postDecompose(t, ts, "algo=bb-ghw", []byte(cycle6HG))
	postDecompose(t, ts, "algo=greedy", []byte(acyclic4HG))

	for _, path := range []string{"/debug/runs", "/debug/slow"} {
		read := func() []byte {
			hr, err := http.Get(ts.URL + path)
			if err != nil {
				t.Fatal(err)
			}
			defer hr.Body.Close()
			if ct := hr.Header.Get("Content-Type"); ct != "application/json" {
				t.Errorf("%s Content-Type = %q, want application/json", path, ct)
			}
			body, err := io.ReadAll(hr.Body)
			if err != nil {
				t.Fatal(err)
			}
			return body
		}
		if first, second := read(), read(); !bytes.Equal(first, second) {
			t.Errorf("%s not deterministic across reads:\n%s\nvs\n%s", path, first, second)
		}
	}
}

// TestAccessLogRemoteAndWinner checks the access-log additions: every line
// names the client's remote address, and solved lines name the winning
// member's algo label (for portfolio runs, which racer actually produced
// the answer).
func TestAccessLogRemoteAndWinner(t *testing.T) {
	var logBuf syncBuffer
	s := New(Config{AccessLog: &logBuf})
	ts := httptest.NewServer(s)
	defer ts.Close()

	postDecompose(t, ts, "algo=portfolio", []byte(acyclic4HG))

	lines := bytes.Split(bytes.TrimSpace(logBuf.Bytes()), []byte("\n"))
	if len(lines) != 1 {
		t.Fatalf("access log has %d lines, want 1:\n%s", len(lines), logBuf.Bytes())
	}
	var rec map[string]any
	if err := json.Unmarshal(lines[0], &rec); err != nil {
		t.Fatalf("access line not JSON: %v", err)
	}
	if remote, _ := rec["remote"].(string); remote == "" {
		t.Errorf("access line has no remote address: %v", rec)
	}
	winner, _ := rec["winner"].(string)
	if winner == "" || winner == "portfolio" {
		t.Errorf("access line winner = %q, want a member algo label", winner)
	}
	if rec["algo"] != "portfolio" {
		t.Errorf("access line algo = %v, want portfolio", rec["algo"])
	}
}
