package server

import (
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hypertree/internal/obs"
)

// DefaultSlowN is the slow-ring capacity when Config.SlowN is 0: how many
// slowest requests retain their full event trace for post-hoc diagnosis.
const DefaultSlowN = 8

// slowEventCap bounds the events buffered per request for the slow ring. A
// long solve at checkpoint cadence emits a few thousand events; beyond the
// cap we count drops instead of growing without bound.
const slowEventCap = 4096

// runInfo is one in-flight request in the live registry. The handler
// goroutine writes identity once at registration; the solver goroutine
// updates the gauges through Record (it is teed into the run's Recorder, so
// anytime improvements and budget checkpoints feed it for free); /debug/runs
// readers load them — hence everything mutable is atomic.
type runInfo struct {
	id      string
	algo    string
	start   time.Time
	running atomic.Bool // false while waiting for a worker slot
	waitNS  atomic.Int64
	width   atomic.Int64 // best anytime width so far; 0 = none yet
	lower   atomic.Int64 // best proven lower bound so far
	nodes   atomic.Int64 // latest checkpoint node count

	// members holds per-member gauges for portfolio runs, keyed by the algo
	// label member events are stamped with. The map only grows (one entry
	// per racer), so the mutex guards insertion; the gauges themselves stay
	// atomic for the same writer/reader split as the top-level ones.
	memberMu sync.Mutex
	members  map[string]*memberGauges
}

// memberGauges mirrors the top-level width/lower/nodes gauges for one
// portfolio member, fed by that member's algo-stamped events.
type memberGauges struct {
	width atomic.Int64
	lower atomic.Int64
	nodes atomic.Int64
}

// Record implements obs.Recorder: the registry rides the existing event
// stream rather than adding solver hooks. Width keeps the minimum ever seen
// (portfolio members improve independently, so "latest" could regress);
// nodes and lower bound keep the maximum. Events stamped with a member algo
// (different from the request's own label — only portfolio racers are) also
// feed that member's row, so /debug/runs can show who is doing what
// mid-race.
func (ri *runInfo) Record(e obs.Event) {
	switch e.Kind {
	case obs.KindImprove:
		storeMin(&ri.width, int64(e.Width))
	case obs.KindLowerBound:
		storeMax(&ri.lower, int64(e.LowerBound))
	case obs.KindCheckpoint:
		storeMax(&ri.nodes, e.Nodes)
	default:
		return
	}
	if e.Algo == "" || e.Algo == ri.algo {
		return
	}
	mg := ri.member(e.Algo)
	switch e.Kind {
	case obs.KindImprove:
		storeMin(&mg.width, int64(e.Width))
	case obs.KindLowerBound:
		storeMax(&mg.lower, int64(e.LowerBound))
	case obs.KindCheckpoint:
		// Member checkpoints carry the member's attributed node count (its
		// budget view re-bases the observer), so the row gauges are the
		// live form of the ledger's per-member costs.
		storeMax(&mg.nodes, e.Nodes)
	}
}

func (ri *runInfo) member(algo string) *memberGauges {
	ri.memberMu.Lock()
	defer ri.memberMu.Unlock()
	if ri.members == nil {
		ri.members = make(map[string]*memberGauges)
	}
	mg := ri.members[algo]
	if mg == nil {
		mg = &memberGauges{}
		ri.members[algo] = mg
	}
	return mg
}

// storeMin lowers a to v unless a already holds a smaller non-zero value
// (0 means "unset", so the first store always wins).
func storeMin(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if cur != 0 && cur <= v {
			return
		}
		if a.CompareAndSwap(cur, v) {
			return
		}
	}
}

func storeMax(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if cur >= v {
			return
		}
		if a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// inflightRegistry tracks requests between admission and response. The map
// only mutates at request boundaries (add/remove), never on the solver hot
// path, so a plain mutex is enough.
type inflightRegistry struct {
	mu sync.Mutex
	m  map[string]*runInfo
}

func (r *inflightRegistry) add(ri *runInfo) {
	r.mu.Lock()
	if r.m == nil {
		r.m = make(map[string]*runInfo)
	}
	r.m[ri.id] = ri
	r.mu.Unlock()
}

func (r *inflightRegistry) remove(id string) {
	r.mu.Lock()
	delete(r.m, id)
	r.mu.Unlock()
}

func (r *inflightRegistry) snapshot() []*runInfo {
	r.mu.Lock()
	runs := make([]*runInfo, 0, len(r.m))
	for _, ri := range r.m {
		runs = append(runs, ri)
	}
	r.mu.Unlock()
	// Start-time order with the request id as tie-break: the map iteration
	// above is randomized, and two requests admitted within one clock tick
	// must not make consecutive /debug/runs reads disagree on order.
	sort.Slice(runs, func(i, j int) bool {
		if runs[i].start.Equal(runs[j].start) {
			return runs[i].id < runs[j].id
		}
		return runs[i].start.Before(runs[j].start)
	})
	return runs
}

// RunStatus is one entry of GET /debug/runs: a point-in-time view of an
// in-flight request, gauges fed by the run's own event stream.
type RunStatus struct {
	Req   string `json:"req"`
	Algo  string `json:"algo"`
	State string `json:"state"` // "queued" (waiting for a slot) or "running"
	// ElapsedMS counts from admission; WaitedMS is the queue wait (still
	// growing while State is "queued": it reports elapsed so far).
	ElapsedMS int64 `json:"elapsed_ms"`
	WaitedMS  int64 `json:"waited_ms"`
	// Width is the current anytime best width (0 = no incumbent yet);
	// LowerBound the best proven bound; Nodes the latest checkpoint's
	// effort counter.
	Width      int   `json:"width,omitempty"`
	LowerBound int   `json:"lower_bound,omitempty"`
	Nodes      int64 `json:"nodes,omitempty"`
	// Members break a portfolio run's gauges down by racer, sorted by algo
	// label; absent for serial runs (the top-level gauges are the one
	// member).
	Members []MemberStatus `json:"members,omitempty"`
}

// MemberStatus is one portfolio member's live row inside a RunStatus: the
// same width/lower-bound/nodes gauges, scoped to that racer's algo-stamped
// events.
type MemberStatus struct {
	Algo       string `json:"algo"`
	Width      int    `json:"width,omitempty"`
	LowerBound int    `json:"lower_bound,omitempty"`
	Nodes      int64  `json:"nodes,omitempty"`
}

func (ri *runInfo) status(now time.Time) RunStatus {
	st := RunStatus{
		Req:        ri.id,
		Algo:       ri.algo,
		State:      "queued",
		ElapsedMS:  now.Sub(ri.start).Milliseconds(),
		WaitedMS:   now.Sub(ri.start).Milliseconds(),
		Width:      int(ri.width.Load()),
		LowerBound: int(ri.lower.Load()),
		Nodes:      ri.nodes.Load(),
	}
	if ri.running.Load() {
		st.State = "running"
		st.WaitedMS = time.Duration(ri.waitNS.Load()).Milliseconds()
	}
	ri.memberMu.Lock()
	for algo, mg := range ri.members {
		st.Members = append(st.Members, MemberStatus{
			Algo:       algo,
			Width:      int(mg.width.Load()),
			LowerBound: int(mg.lower.Load()),
			Nodes:      mg.nodes.Load(),
		})
	}
	ri.memberMu.Unlock()
	sort.Slice(st.Members, func(i, j int) bool { return st.Members[i].Algo < st.Members[j].Algo })
	return st
}

// handleDebugRuns serves the live in-flight registry: what the daemon is
// doing right now, including each run's current anytime width mid-solve.
func (s *Server) handleDebugRuns(w http.ResponseWriter, r *http.Request) {
	now := time.Now()
	runs := s.registry.snapshot()
	out := struct {
		Inflight int         `json:"inflight"`
		Runs     []RunStatus `json:"runs"`
	}{Runs: make([]RunStatus, 0, len(runs))}
	for _, ri := range runs {
		out.Runs = append(out.Runs, ri.status(now))
	}
	out.Inflight = len(out.Runs)
	s.writeJSON(w, http.StatusOK, out)
}

// SlowRun is one retained outlier: the request's envelope essentials plus
// its full event trace (spans and solver events), so a P99 spike is
// diagnosable after the fact without having had tracing enabled.
type SlowRun struct {
	Req     string    `json:"req"`
	Algo    string    `json:"algo,omitempty"`
	Outcome Outcome   `json:"outcome"`
	Width   int       `json:"width,omitempty"`
	Stop    string    `json:"stop,omitempty"`
	Start   time.Time `json:"start"`
	// Elapsed is the request's total wall-clock (== timings.total_ns).
	Elapsed   time.Duration `json:"elapsed_ns"`
	QueueWait time.Duration `json:"queue_wait_ns,omitempty"`
	Timings   *Timings      `json:"timings,omitempty"`
	Events    []obs.Event   `json:"events,omitempty"`
	// DroppedEvents counts events beyond the per-request buffer cap.
	DroppedEvents int `json:"dropped_events,omitempty"`
}

// slowRing retains the N slowest finished requests seen so far. Offers are
// rare (one per request) and the ring is tiny, so a mutex plus linear scan
// beats anything clever.
type slowRing struct {
	mu   sync.Mutex
	max  int
	runs []*SlowRun // unordered; snapshot sorts
}

func newSlowRing(n int) *slowRing {
	if n <= 0 {
		return nil
	}
	return &slowRing{max: n}
}

// offer admits run if the ring has room or run outlasts the current
// fastest member, which it evicts.
func (r *slowRing) offer(run *SlowRun) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.runs) < r.max {
		r.runs = append(r.runs, run)
		return
	}
	fastest := 0
	for i, m := range r.runs {
		if m.Elapsed < r.runs[fastest].Elapsed {
			fastest = i
		}
	}
	if run.Elapsed > r.runs[fastest].Elapsed {
		r.runs[fastest] = run
	}
}

// snapshot returns the retained runs, slowest first.
func (r *slowRing) snapshot() []*SlowRun {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]*SlowRun, len(r.runs))
	copy(out, r.runs)
	r.mu.Unlock()
	// Slowest first, request id as tie-break, so repeated /debug/slow reads
	// of an unchanged ring are byte-identical.
	sort.Slice(out, func(i, j int) bool {
		if out[i].Elapsed == out[j].Elapsed {
			return out[i].Req < out[j].Req
		}
		return out[i].Elapsed > out[j].Elapsed
	})
	return out
}

// SlowRuns returns the slowest retained requests, slowest first — the same
// data /debug/slow serves, exported so cmd/decomposed can dump it on drain.
func (s *Server) SlowRuns() []*SlowRun {
	return s.slow.snapshot()
}

// handleDebugSlow serves the slowest-N retained requests with their full
// event traces.
func (s *Server) handleDebugSlow(w http.ResponseWriter, r *http.Request) {
	runs := s.slow.snapshot()
	if runs == nil {
		runs = []*SlowRun{}
	}
	s.writeJSON(w, http.StatusOK, struct {
		Retained int        `json:"retained"`
		Runs     []*SlowRun `json:"runs"`
	}{Retained: len(runs), Runs: runs})
}

// eventCapture buffers one request's event stream for slow-ring retention.
// It must be cheap: a request is only known to be slow after it finishes,
// so every request pays for capture while the ring is enabled.
type eventCapture struct {
	mu      sync.Mutex
	events  []obs.Event
	dropped int
}

// recorder adapts a possibly-nil capture for obs.Tee: a typed-nil
// *eventCapture inside a Recorder interface would defeat Tee's nil
// skipping, so the conversion happens here, once.
func (c *eventCapture) recorder() obs.Recorder {
	if c == nil {
		return nil
	}
	return c
}

func (c *eventCapture) Record(e obs.Event) {
	c.mu.Lock()
	if len(c.events) < slowEventCap {
		c.events = append(c.events, e)
	} else {
		c.dropped++
	}
	c.mu.Unlock()
}

// take hands over the buffered events; the capture is dead afterwards.
func (c *eventCapture) take() ([]obs.Event, int) {
	if c == nil {
		return nil, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	ev, dropped := c.events, c.dropped
	c.events = nil
	return ev, dropped
}
