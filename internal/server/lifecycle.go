package server

import (
	"encoding/json"
	"time"

	"hypertree/internal/obs"
)

// The request lifecycle phases, in serving order. Every request is timed
// through the phases it reaches; each finished phase feeds the per-phase
// latency histogram, lands in the envelope's timings block, and is emitted
// as a span event into the trace — the three consumers of one measurement.
type reqPhase int

const (
	// phaseQueueWait: from entering the admission queue to holding a worker
	// slot. The first thing to check when latency spikes — a saturated pool
	// shows up here long before it shows up anywhere else.
	phaseQueueWait reqPhase = iota
	// phaseParse: decoding the payload into a hypergraph (inside the worker
	// slot, so parser CPU stays pool-bounded).
	phaseParse
	// phaseCache: the exact-result cache lookup (before admission — a hit
	// never spends a worker slot).
	phaseCache
	// phaseSolve: core.Decompose, the dominant phase of any honest request.
	phaseSolve
	// phaseCompile: compiling the decomposition into an engine.Plan
	// (/query only) — bag materialization, Yannakakis reduction, index
	// construction. Paid once per instance; plan-cache hits skip it.
	phaseCompile
	// phaseQuery: running the request's query batch against the compiled
	// plan (/query only). The steady-state cost of a hot instance.
	phaseQuery
	// phaseEncode: building the response envelope, including tree rendering
	// and result-cache population. The final socket write is excluded — once
	// bytes leave, there is nowhere left to record.
	phaseEncode

	numPhases
)

// phaseNames are the wire names of the phases: span events, timings JSON
// keys (suffixed _ns) and the phase label of the /metrics summaries all use
// them.
var phaseNames = [numPhases]string{"queue_wait", "parse", "cache", "solve", "compile", "query", "encode"}

// Timings is the per-request phase breakdown stamped onto every response
// envelope: where the request's wall-clock went, in nanoseconds. Phases a
// request never reached are omitted; Total is always present and measures
// handler entry to response construction (the socket write is excluded).
type Timings struct {
	QueueWait time.Duration `json:"queue_wait_ns,omitempty"`
	Parse     time.Duration `json:"parse_ns,omitempty"`
	Cache     time.Duration `json:"cache_ns,omitempty"`
	Solve     time.Duration `json:"solve_ns,omitempty"`
	Compile   time.Duration `json:"compile_ns,omitempty"`
	Query     time.Duration `json:"query_ns,omitempty"`
	Encode    time.Duration `json:"encode_ns,omitempty"`
	Total     time.Duration `json:"total_ns"`
}

// lifecycle times one request through its phases. It is confined to the
// request's handler goroutine; only the sinks it feeds (histograms, the
// span recorder, the event capture) are shared.
type lifecycle struct {
	s    *Server
	id   string
	algo string
	// remote is the client's network address (http.Request.RemoteAddr),
	// carried to the access log so lines are attributable to callers.
	remote string
	start  time.Time
	// touched marks phases that ran (a 0ns phase is still a phase; an
	// unreached one is absent from the timings block).
	phases  [numPhases]time.Duration
	touched [numPhases]bool
	// spans receives the span events: obs counters + the request-stamped
	// trace + the slow-ring capture. Never nil (the counters always exist).
	spans obs.Recorder
	// capture buffers the request's full event stream for the slow ring;
	// nil when slow-run retention is disabled.
	capture *eventCapture
}

func (s *Server) newLifecycle(id, remote string) *lifecycle {
	// algo stays empty until parseParams resolves one, so spans emitted for
	// pre-parse rejections match the envelope (no algorithm ever chosen).
	lc := &lifecycle{
		s:      s,
		id:     id,
		remote: remote,
		start:  time.Now(),
	}
	if s.slow != nil {
		lc.capture = &eventCapture{}
	}
	lc.spans = obs.Tee(s.counters, obs.WithReq(s.cfg.Trace, id), lc.capture.recorder())
	return lc
}

// phase records phase p as having taken d: envelope breakdown, per-phase
// histogram, span event. Each phase runs at most once per request.
func (lc *lifecycle) phase(p reqPhase, d time.Duration) {
	if d < 0 {
		d = 0
	}
	lc.phases[p] = d
	lc.touched[p] = true
	lc.s.phaseHist[p].Observe(d)
	lc.emitSpan(phaseNames[p], d, "")
}

// finish closes the lifecycle under its typed outcome: the total span, the
// per-outcome request histogram, and the timings block for the envelope.
// Called exactly once per request, before the response is written.
func (lc *lifecycle) finish(outcome Outcome) *Timings {
	total := time.Since(lc.start)
	if i := outcomeIndex(outcome); i >= 0 {
		lc.s.reqHist[i].Observe(total)
	}
	lc.emitSpan("total", total, outcome)
	tm := &Timings{Total: total}
	for p := reqPhase(0); p < numPhases; p++ {
		if !lc.touched[p] {
			continue
		}
		switch p {
		case phaseQueueWait:
			tm.QueueWait = lc.phases[p]
		case phaseParse:
			tm.Parse = lc.phases[p]
		case phaseCache:
			tm.Cache = lc.phases[p]
		case phaseSolve:
			tm.Solve = lc.phases[p]
		case phaseCompile:
			tm.Compile = lc.phases[p]
		case phaseQuery:
			tm.Query = lc.phases[p]
		case phaseEncode:
			tm.Encode = lc.phases[p]
		}
	}
	return tm
}

// emitSpan records one span event. T is request-relative (the moment the
// phase ended); solver events inside the same request are budget-relative —
// OBSERVABILITY.md documents the two clocks.
func (lc *lifecycle) emitSpan(phase string, d time.Duration, outcome Outcome) {
	lc.spans.Record(obs.Event{
		Kind:    obs.KindSpan,
		T:       time.Since(lc.start),
		Req:     lc.id,
		Algo:    lc.algo,
		Phase:   phase,
		Dur:     d,
		Outcome: string(outcome),
	})
}

// waitedMS is the envelope's queue-wait field: 0 until the queue phase ran.
func (lc *lifecycle) waitedMS() int64 {
	return lc.phases[phaseQueueWait].Milliseconds()
}

// accessRecord is one line of the structured access log: everything an
// operator greps for without opening a trace file. Field order is the JSON
// struct order, so lines are uniform and cut-able.
type accessRecord struct {
	Time    string  `json:"time"`
	Req     string  `json:"req"`
	Remote  string  `json:"remote,omitempty"`
	Outcome Outcome `json:"outcome"`
	Status  int     `json:"status"`
	Algo    string  `json:"algo,omitempty"`
	// Winner is the algo label of the attribution ledger's winning member:
	// for portfolio runs, which racer actually produced the answer (Algo
	// says only "portfolio"); for serial runs it repeats Algo.
	Winner string `json:"winner,omitempty"`
	N      int    `json:"n,omitempty"`
	M      int    `json:"m,omitempty"`
	Width  int    `json:"width,omitempty"`
	Exact  bool   `json:"exact,omitempty"`
	Stop   string `json:"stop,omitempty"`
	Cached bool   `json:"cached,omitempty"`
	Stream bool   `json:"stream,omitempty"`
	// WaitedMS and ElapsedMS mirror the envelope: queue wait and the
	// request's total wall-clock (not just the solve).
	WaitedMS  int64    `json:"waited_ms"`
	ElapsedMS int64    `json:"elapsed_ms"`
	Timings   *Timings `json:"timings,omitempty"`
	Error     string   `json:"error,omitempty"`
}

// logAccess writes one JSON line describing a finished request. Writes are
// serialized under accessMu, and each line is a single Write call, so
// concurrent requests never interleave bytes. Called before the response is
// sent: a log reader that sees a client's response also sees its line.
func (s *Server) logAccess(lc *lifecycle, status int, resp *Response, stream bool) {
	if s.cfg.AccessLog == nil {
		return
	}
	rec := accessRecord{
		Time:      time.Now().UTC().Format(time.RFC3339Nano),
		Req:       resp.Req,
		Remote:    lc.remote,
		Outcome:   resp.Outcome,
		Status:    status,
		Algo:      resp.Algo,
		N:         resp.N,
		M:         resp.M,
		Width:     resp.Width,
		Exact:     resp.Exact,
		Stop:      resp.Stop,
		Cached:    resp.Cached,
		Stream:    stream,
		WaitedMS:  resp.WaitedMS,
		ElapsedMS: resp.ElapsedMS,
		Timings:   resp.Timings,
		Error:     resp.Error,
	}
	if resp.Attribution != nil {
		rec.Winner = resp.Attribution.Winner
	}
	if resp.Timings != nil {
		rec.ElapsedMS = resp.Timings.Total.Milliseconds()
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return // accessRecord is a flat struct; unreachable
	}
	line = append(line, '\n')
	s.accessMu.Lock()
	defer s.accessMu.Unlock()
	// A broken log sink must not fail serving; the error is dropped by
	// design (the log is advisory, the envelope is the contract).
	_, _ = s.cfg.AccessLog.Write(line)
}
