package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// pathCSPJSON is a 3-variable boolean not-equal path (x0 != x1, x1 != x2):
// exactly two solutions, (0,1,0) and (1,0,1) — small enough to assert
// answers by hand, structured enough to exercise the whole compile path.
const pathCSPJSON = `{
	"num_vars": 3,
	"domain": [0, 1],
	"var_names": ["x0", "x1", "x2"],
	"constraints": [
		{"scope": [0, 1], "tuples": [[0, 1], [1, 0]]},
		{"scope": [1, 2], "tuples": [[0, 1], [1, 0]]}
	]
}`

func postQuery(t *testing.T, ts *httptest.Server, query, body string) (*http.Response, *QueryResponse) {
	t.Helper()
	url := ts.URL + "/query"
	if query != "" {
		url += "?" + query
	}
	hr, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var resp QueryResponse
	if err := json.NewDecoder(hr.Body).Decode(&resp); err != nil {
		t.Fatalf("response is not a typed query envelope: %v", err)
	}
	return hr, &resp
}

func queryBody(queries string) string {
	return fmt.Sprintf(`{"csp": %s, "queries": [%s]}`, pathCSPJSON, queries)
}

func TestQuerySolveCountEnumerate(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()

	hr, resp := postQuery(t, ts, "", queryBody(`
		{"op": "solve"},
		{"op": "count"},
		{"op": "enumerate", "limit": 10},
		{"op": "solve", "assign": {"x0": 0}},
		{"op": "count", "assign": {"2": 1}},
		{"op": "solve", "assign": {"x1": 0, "x2": 0}},
		{"op": "count", "assign": {"x0": 7}}`))
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 (error: %s)", hr.StatusCode, resp.Error)
	}
	if resp.Outcome != OutcomeExact {
		t.Fatalf("outcome = %q, want exact", resp.Outcome)
	}
	if resp.N != 3 || resp.M != 2 {
		t.Fatalf("N,M = %d,%d, want 3,2", resp.N, resp.M)
	}
	if resp.Plan == nil || !resp.Plan.Satisfiable || resp.Plan.Solutions != 2 {
		t.Fatalf("plan = %+v, want satisfiable with 2 solutions", resp.Plan)
	}
	if resp.Plan.Cached {
		t.Fatal("first request reported a cached plan")
	}
	if len(resp.Results) != 7 {
		t.Fatalf("got %d results, want 7", len(resp.Results))
	}
	r := resp.Results

	// Unpinned solve: some solution of the two.
	if r[0].Sat == nil || !*r[0].Sat {
		t.Fatalf("solve: sat = %v, want true", r[0].Sat)
	}
	checkPathSolution(t, r[0].Assignment)

	if r[1].Count == nil || *r[1].Count != 2 {
		t.Fatalf("count = %v, want 2", r[1].Count)
	}
	if len(r[2].Solutions) != 2 {
		t.Fatalf("enumerate returned %d solutions, want 2", len(r[2].Solutions))
	}
	for _, sol := range r[2].Solutions {
		checkPathSolution(t, sol)
	}

	// Pinned solve x0=0 forces (0,1,0).
	if r[3].Sat == nil || !*r[3].Sat {
		t.Fatalf("pinned solve: sat = %v, want true", r[3].Sat)
	}
	if want := []int{0, 1, 0}; !equalInts(r[3].Assignment, want) {
		t.Fatalf("pinned solve = %v, want %v", r[3].Assignment, want)
	}

	// Pin by index: x2=1 matches only (1,0,1).
	if r[4].Count == nil || *r[4].Count != 1 {
		t.Fatalf("count with x2=1 = %v, want 1", r[4].Count)
	}

	// Conflicting pins x1=0, x2=0 violate x1 != x2: unsat.
	if r[5].Sat == nil || *r[5].Sat {
		t.Fatalf("unsat pins: sat = %v, want false", r[5].Sat)
	}

	// An out-of-domain pin is a legal query with zero matches, not an error.
	if r[6].Error != "" {
		t.Fatalf("out-of-domain pin errored: %s", r[6].Error)
	}
	if r[6].Count == nil || *r[6].Count != 0 {
		t.Fatalf("count with x0=7 = %v, want 0", r[6].Count)
	}

	if resp.Timings == nil || !(resp.Timings.Compile > 0) {
		t.Fatalf("timings = %+v, want a positive compile phase", resp.Timings)
	}
}

func checkPathSolution(t *testing.T, sol []int) {
	t.Helper()
	if len(sol) != 3 {
		t.Fatalf("assignment %v has %d values, want 3", sol, len(sol))
	}
	if sol[0] == sol[1] || sol[1] == sol[2] {
		t.Fatalf("assignment %v violates the not-equal constraints", sol)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestQueryPlanCacheHit checks the decompose-once contract: the second
// request for the same CSP serves from the plan cache (Cached=true, no
// compile phase) and the hypertree_query_* metric families record it.
func TestQueryPlanCacheHit(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()

	_, first := postQuery(t, ts, "", queryBody(`{"op": "count"}`))
	if first.Plan == nil || first.Plan.Cached {
		t.Fatalf("first plan = %+v, want a fresh compile", first.Plan)
	}
	_, second := postQuery(t, ts, "", queryBody(`{"op": "solve"}`))
	if second.Plan == nil || !second.Plan.Cached {
		t.Fatalf("second plan = %+v, want a cache hit", second.Plan)
	}
	if second.Timings != nil && second.Timings.Compile != 0 {
		t.Fatalf("cache hit spent %v compiling", second.Timings.Compile)
	}
	// A different algo compiles a different plan: distinct cache key.
	_, other := postQuery(t, ts, "algo=greedy", queryBody(`{"op": "count"}`))
	if other.Plan == nil || other.Plan.Cached {
		t.Fatalf("different-algo plan = %+v, want a fresh compile", other.Plan)
	}

	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mr.Body.Close()
	body, _ := io.ReadAll(mr.Body)
	for _, want := range []string{
		"hypertree_query_plan_cache_hits 1",
		"hypertree_query_plan_cache_misses 2",
		`hypertree_query_queries_total{op="count"} 2`,
		`hypertree_query_queries_total{op="solve"} 1`,
	} {
		if !bytes.Contains(body, []byte(want)) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestQueryRejections(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()

	cases := []struct {
		name   string
		body   string
		status int
	}{
		{"not json", "not json", http.StatusBadRequest},
		{"missing csp", `{"queries": []}`, http.StatusBadRequest},
		{"zero vars", `{"csp": {"num_vars": 0, "constraints": [{"scope":[0],"tuples":[[0]]}]}}`, http.StatusBadRequest},
		{"no constraints", `{"csp": {"num_vars": 1, "domain": [0], "constraints": []}}`, http.StatusBadRequest},
		{"scope out of range", `{"csp": {"num_vars": 1, "domain": [0], "constraints": [{"scope":[3],"tuples":[[0]]}]}}`, http.StatusBadRequest},
		{"arity mismatch", `{"csp": {"num_vars": 2, "domain": [0], "constraints": [{"scope":[0,1],"tuples":[[0]]}]}}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			hr, resp := postQuery(t, ts, "", tc.body)
			if hr.StatusCode != tc.status {
				t.Fatalf("status = %d, want %d", hr.StatusCode, tc.status)
			}
			if resp.Outcome != OutcomeRejected || resp.Error == "" {
				t.Fatalf("outcome = %q error = %q, want a typed rejection", resp.Outcome, resp.Error)
			}
		})
	}
}

// TestQueryBadQueriesDoNotFailBatch checks per-query error isolation: an
// unknown op or variable marks its own result and leaves the rest served.
func TestQueryBadQueriesDoNotFailBatch(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()

	hr, resp := postQuery(t, ts, "", queryBody(`
		{"op": "minimize"},
		{"op": "solve", "assign": {"nope": 1}},
		{"op": "count"}`))
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", hr.StatusCode)
	}
	if resp.Results[0].Error == "" || !strings.Contains(resp.Results[0].Error, "unknown op") {
		t.Fatalf("unknown op error = %q", resp.Results[0].Error)
	}
	if resp.Results[1].Error == "" || !strings.Contains(resp.Results[1].Error, "unknown variable") {
		t.Fatalf("unknown variable error = %q", resp.Results[1].Error)
	}
	if resp.Results[2].Count == nil || *resp.Results[2].Count != 2 {
		t.Fatalf("count after bad queries = %v, want 2", resp.Results[2].Count)
	}
}

func TestQueryBatchCap(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()

	var qs strings.Builder
	for i := 0; i <= MaxQueriesPerRequest; i++ {
		if i > 0 {
			qs.WriteString(",")
		}
		qs.WriteString(`{"op":"count"}`)
	}
	hr, resp := postQuery(t, ts, "", queryBody(qs.String()))
	if hr.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", hr.StatusCode)
	}
	if !strings.Contains(resp.Error, "cap") {
		t.Fatalf("error = %q, want the batch-cap rejection", resp.Error)
	}
}

// TestQueryDrainingRejects checks /query honors the drain protocol like
// /decompose: a draining server refuses new query work with Retry-After.
func TestQueryDrainingRejects(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()
	s.Drain(0)

	hr, resp := postQuery(t, ts, "", queryBody(`{"op": "count"}`))
	if hr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", hr.StatusCode)
	}
	if resp.RetrySeconds <= 0 {
		t.Fatalf("retry_after_s = %d, want positive", resp.RetrySeconds)
	}
}
