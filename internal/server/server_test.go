package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hypertree/internal/budget/faultinject"
	"hypertree/internal/hypergraph"
)

// cycle6HG is a 6-cycle as binary constraints: ghw 2, exact, solved in
// microseconds — the canonical happy-path payload.
const cycle6HG = "e1(v1,v2), e2(v2,v3), e3(v3,v4), e4(v4,v5), e5(v5,v6), e6(v6,v1)."

// acyclic4HG is an α-acyclic hypergraph: ghw 1.
const acyclic4HG = "c1(a,b,c), c2(c,d)."

// grid12HG renders a 12x12 grid hypergraph — far beyond what exact bb-ghw
// finishes in test time, so it is the standing "long run" payload.
func grid12HG(t *testing.T) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := hypergraph.WriteHG(&b, hypergraph.Grid2D(12)); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

func postDecompose(t *testing.T, ts *httptest.Server, query string, body []byte) (*http.Response, *Response) {
	t.Helper()
	url := ts.URL + "/decompose"
	if query != "" {
		url += "?" + query
	}
	hr, err := http.Post(url, "text/plain", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var resp Response
	if err := json.NewDecoder(hr.Body).Decode(&resp); err != nil {
		t.Fatalf("response is not a typed envelope: %v", err)
	}
	return hr, &resp
}

func TestDecomposeExact(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()

	hr, resp := postDecompose(t, ts, "algo=bb-ghw", []byte(cycle6HG))
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", hr.StatusCode)
	}
	if hr.Header.Get("X-Request-ID") == "" {
		t.Error("missing X-Request-ID header")
	}
	if resp.Outcome != OutcomeExact || !resp.Exact {
		t.Fatalf("outcome = %q (exact=%v), want exact", resp.Outcome, resp.Exact)
	}
	if resp.Width != 2 {
		t.Fatalf("ghw(C6) = %d, want 2", resp.Width)
	}
	if resp.N != 6 || resp.M != 6 {
		t.Fatalf("instance size %dx%d, want 6x6", resp.N, resp.M)
	}
	if len(resp.Timeline) == 0 {
		t.Error("missing anytime timeline")
	}

	_, resp = postDecompose(t, ts, "algo=bb-ghw", []byte(acyclic4HG))
	if resp.Outcome != OutcomeExact || resp.Width != 1 {
		t.Fatalf("acyclic: outcome %q width %d, want exact width 1", resp.Outcome, resp.Width)
	}
}

func TestDecomposeCachedRetry(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()

	_, first := postDecompose(t, ts, "algo=bb-ghw&seed=7", []byte(cycle6HG))
	if first.Cached {
		t.Fatal("first request cannot be a cache hit")
	}
	_, retry := postDecompose(t, ts, "algo=bb-ghw&seed=7", []byte(cycle6HG))
	if !retry.Cached {
		t.Fatal("identical retry must be served from the result cache")
	}
	if retry.Width != first.Width || retry.Outcome != OutcomeExact {
		t.Fatalf("cached retry disagrees: %+v vs %+v", retry, first)
	}
	if retry.Req == first.Req {
		t.Error("cached response must carry the retry's own request id")
	}
	// A different seed is a different key.
	_, other := postDecompose(t, ts, "algo=bb-ghw&seed=8", []byte(cycle6HG))
	if other.Cached {
		t.Fatal("different seed must miss the cache")
	}
	// The cached entry retains the tree for include=tree retries.
	_, withTree := postDecompose(t, ts, "algo=bb-ghw&seed=7&include=tree", []byte(cycle6HG))
	if !withTree.Cached || withTree.Tree == nil {
		t.Fatalf("include=tree retry: cached=%v tree=%v", withTree.Cached, withTree.Tree != nil)
	}
	if s.cache.stats().Hits != 2 {
		t.Fatalf("cache hits = %d, want 2", s.cache.stats().Hits)
	}
}

func TestDecomposeIncludeTree(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()

	_, resp := postDecompose(t, ts, "algo=bb-ghw&include=tree", []byte(cycle6HG))
	if resp.Tree == nil {
		t.Fatal("include=tree returned no tree")
	}
	tr := resp.Tree
	if tr.Width != resp.Width {
		t.Fatalf("tree width %d != response width %d", tr.Width, resp.Width)
	}
	if len(tr.Bags) == 0 || len(tr.Bags) != len(tr.Parent) || len(tr.Lambdas) != len(tr.Bags) {
		t.Fatalf("malformed tree: %d bags, %d parents, %d lambdas", len(tr.Bags), len(tr.Parent), len(tr.Lambdas))
	}
	roots := 0
	for _, p := range tr.Parent {
		if p == -1 {
			roots++
		}
	}
	if roots != 1 {
		t.Fatalf("tree has %d roots", roots)
	}
}

func TestDecomposeDegradedAtDeadline(t *testing.T) {
	s := New(Config{CheckEvery: 16})
	ts := httptest.NewServer(s)
	defer ts.Close()

	hr, resp := postDecompose(t, ts, "algo=bb-ghw&timeout=50ms", grid12HG(t))
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("degraded runs are successes: status %d", hr.StatusCode)
	}
	if resp.Outcome != OutcomeDegraded {
		t.Fatalf("outcome = %q, want degraded", resp.Outcome)
	}
	if resp.Stop != "deadline" {
		t.Fatalf("stop = %q, want deadline", resp.Stop)
	}
	if resp.Width <= 0 {
		t.Fatalf("degraded run must still carry its best anytime width, got %d", resp.Width)
	}
	if resp.Exact {
		t.Error("interrupted run cannot be exact")
	}
}

func TestDecomposeTimeoutClampedToMax(t *testing.T) {
	s := New(Config{MaxTimeout: 50 * time.Millisecond, CheckEvery: 16})
	ts := httptest.NewServer(s)
	defer ts.Close()

	start := time.Now()
	_, resp := postDecompose(t, ts, "algo=bb-ghw&timeout=1h", grid12HG(t))
	if el := time.Since(start); el > 10*time.Second {
		t.Fatalf("1h request was not clamped (took %v)", el)
	}
	if resp.Outcome != OutcomeDegraded {
		t.Fatalf("outcome = %q, want degraded at the clamped deadline", resp.Outcome)
	}
}

func TestRejections(t *testing.T) {
	s := New(Config{MaxRequestBytes: 256})
	ts := httptest.NewServer(s)
	defer ts.Close()

	cases := []struct {
		name   string
		query  string
		body   []byte
		status int
		errSub string
	}{
		{"unknown algo", "algo=quantum", []byte(cycle6HG), http.StatusBadRequest, "unknown algorithm"},
		{"unknown format", "format=yaml", []byte(cycle6HG), http.StatusBadRequest, "unknown format"},
		{"bad timeout", "timeout=-3s", []byte(cycle6HG), http.StatusBadRequest, "bad timeout"},
		{"negative workers", "workers=-2", []byte(cycle6HG), http.StatusBadRequest, "bad workers"},
		{"bad stream", "stream=websocket", []byte(cycle6HG), http.StatusBadRequest, "unknown stream"},
		{"oversize", "", bytes.Repeat([]byte("x"), 1024), http.StatusRequestEntityTooLarge, "payload exceeds"},
		{"malformed", "", []byte("not a hypergraph ("), http.StatusBadRequest, "parsing hg"},
		{"empty instance", "", []byte("% only a comment\n"), http.StatusUnprocessableEntity, "empty hypergraph"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			hr, resp := postDecompose(t, ts, c.query, c.body)
			if hr.StatusCode != c.status {
				t.Fatalf("status = %d, want %d", hr.StatusCode, c.status)
			}
			if resp.Outcome != OutcomeRejected {
				t.Fatalf("outcome = %q, want rejected", resp.Outcome)
			}
			if !strings.Contains(resp.Error, c.errSub) {
				t.Fatalf("error %q does not mention %q", resp.Error, c.errSub)
			}
		})
	}
}

func TestAdmissionControl(t *testing.T) {
	defer faultinject.Reset()
	s := New(Config{Workers: 1, QueueDepth: -1}) // pool of 1, no queue
	ts := httptest.NewServer(s)
	defer ts.Close()

	// Park the only worker slot: the armed hook blocks the first admitted
	// request inside its slot until released.
	release := make(chan struct{})
	faultinject.Arm(faultinject.SiteServerHandle, 1, func() { <-release })
	firstDone := make(chan *Response, 1)
	go func() {
		_, resp := postDecompose(t, ts, "algo=bb-ghw", []byte(cycle6HG))
		firstDone <- resp
	}()
	waitFor(t, time.Second, func() bool { return s.InFlight() == 1 })

	hr, resp := postDecompose(t, ts, "algo=bb-ghw", []byte(acyclic4HG))
	if hr.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated status = %d, want 429", hr.StatusCode)
	}
	if hr.Header.Get("Retry-After") == "" {
		t.Error("429 must carry Retry-After")
	}
	if resp.Outcome != OutcomeRejected || resp.RetrySeconds <= 0 {
		t.Fatalf("saturated response not typed for backpressure: %+v", resp)
	}

	close(release)
	select {
	case first := <-firstDone:
		if first.Outcome != OutcomeExact {
			t.Fatalf("parked request finished %q, want exact", first.Outcome)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("parked request never finished")
	}
}

func TestHealthReadyMetrics(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()

	get := func(path string) (int, string) {
		hr, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer hr.Body.Close()
		var b bytes.Buffer
		b.ReadFrom(hr.Body)
		return hr.StatusCode, b.String()
	}
	if st, body := get("/healthz"); st != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("healthz: %d %q", st, body)
	}
	if st, body := get("/readyz"); st != 200 || !strings.Contains(body, "ready") {
		t.Fatalf("readyz: %d %q", st, body)
	}

	postDecompose(t, ts, "algo=bb-ghw", []byte(cycle6HG))
	st, body := get("/metrics")
	if st != 200 {
		t.Fatalf("metrics status %d", st)
	}
	for _, want := range []string{
		`hypertree_daemon_requests_total{outcome="exact"} 1`,
		"hypertree_daemon_inflight 0",
		"hypertree_daemon_workers",
		"hypertree_daemon_result_cache_misses 1",
		"hypertree_daemon_draining 0",
		"hypertree_obs_events_total", // the promoted obs counters ride along
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}

	rep := s.Drain(time.Second)
	if rep.Forced {
		t.Error("idle drain must not need force")
	}
	if st, body := get("/readyz"); st != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Fatalf("draining readyz: %d %q", st, body)
	}
	if st, _ := get("/healthz"); st != 200 {
		t.Fatal("healthz must stay live while draining")
	}
	hr, resp := postDecompose(t, ts, "", []byte(cycle6HG))
	if hr.StatusCode != http.StatusServiceUnavailable || resp.Outcome != OutcomeRejected {
		t.Fatalf("draining POST: %d %q", hr.StatusCode, resp.Outcome)
	}
	if _, body := get("/metrics"); !strings.Contains(body, "hypertree_daemon_draining 1") {
		t.Error("metrics must report draining")
	}
}

func TestSSEStream(t *testing.T) {
	s := New(Config{CheckEvery: 16})
	ts := httptest.NewServer(s)
	defer ts.Close()

	hr, err := http.Post(ts.URL+"/decompose?algo=bb-ghw&stream=sse&timeout=100ms", "text/plain",
		bytes.NewReader(grid12HG(t)))
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	if ct := hr.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	var b bytes.Buffer
	if _, err := b.ReadFrom(hr.Body); err != nil {
		t.Fatal(err)
	}
	body := b.String()
	if !strings.Contains(body, "event: algo_start") {
		t.Error("stream missing algo_start frame")
	}
	if !strings.Contains(body, "event: improve") {
		t.Error("stream missing improve frames")
	}
	resp := lastResultFrame(t, body)
	if resp.Outcome != OutcomeDegraded || resp.Width <= 0 {
		t.Fatalf("streamed terminal result: %+v", resp)
	}
}

// lastResultFrame extracts the Response from the stream's final
// "event: result" frame.
func lastResultFrame(t *testing.T, body string) *Response {
	t.Helper()
	idx := strings.LastIndex(body, "event: result\ndata: ")
	if idx < 0 {
		t.Fatalf("no result frame in stream:\n%s", body)
	}
	payload := body[idx+len("event: result\ndata: "):]
	if nl := strings.IndexByte(payload, '\n'); nl >= 0 {
		payload = payload[:nl]
	}
	var resp Response
	if err := json.Unmarshal([]byte(payload), &resp); err != nil {
		t.Fatalf("result frame is not a Response: %v", err)
	}
	return &resp
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition never became true")
}

func TestResultCacheFIFOEviction(t *testing.T) {
	c := newResultCache(8)
	for i := 0; i < 32; i++ {
		c.store(fmt.Sprintf("key-%d", i), &Response{Width: i})
	}
	st := c.stats()
	if st.Size != 8 {
		t.Fatalf("size = %d, want capacity 8", st.Size)
	}
	if st.Evictions != 24 {
		t.Fatalf("evictions = %d, want 24", st.Evictions)
	}
	if c := newResultCache(0); c != nil {
		t.Fatal("capacity 0 must disable the cache")
	}
	var nilCache *resultCache
	if _, ok := nilCache.lookup("x"); ok {
		t.Fatal("nil cache must miss")
	}
	nilCache.store("x", &Response{}) // must not panic
}

// TestPortfolioDefaultServes pins the daemon's new default: a request naming
// no algorithm runs the portfolio and still gets the typed envelope — exact
// on an instance the race closes instantly, with the merged anytime timeline
// attached.
func TestPortfolioDefaultServes(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()

	hr, resp := postDecompose(t, ts, "", []byte(cycle6HG))
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", hr.StatusCode)
	}
	if resp.Algo != "portfolio" {
		t.Fatalf("default algo = %q, want portfolio", resp.Algo)
	}
	if resp.Outcome != OutcomeExact || !resp.Exact {
		t.Fatalf("cycle6 through the portfolio: outcome %q exact=%v", resp.Outcome, resp.Exact)
	}
	if resp.Width != 2 || resp.LowerBound != 2 {
		t.Fatalf("width=%d lb=%d, want 2/2", resp.Width, resp.LowerBound)
	}
	if len(resp.Timeline) == 0 {
		t.Fatal("portfolio response missing the merged timeline")
	}
}

// TestPortfolioDegradedEnvelope: a deadline mid-race comes back as the
// degraded outcome with the best validated width, exactly like a single
// solver would.
func TestPortfolioDegradedEnvelope(t *testing.T) {
	s := New(Config{CheckEvery: 16})
	ts := httptest.NewServer(s)
	defer ts.Close()

	hr, resp := postDecompose(t, ts, "algo=portfolio&timeout=100ms", grid12HG(t))
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", hr.StatusCode)
	}
	if resp.Outcome != OutcomeDegraded || resp.Stop != "deadline" {
		t.Fatalf("outcome %q stop %q, want degraded deadline", resp.Outcome, resp.Stop)
	}
	if resp.Width <= 0 {
		t.Fatalf("degraded race returned no width: %+v", resp)
	}
	if resp.Exact {
		t.Fatal("degraded race must not claim exactness")
	}
}

// TestPortfolioSSEStream: the streamed race interleaves member-labeled
// frames with the portfolio's merged improve frames, and terminates in one
// typed result frame.
func TestPortfolioSSEStream(t *testing.T) {
	s := New(Config{CheckEvery: 16})
	ts := httptest.NewServer(s)
	defer ts.Close()

	hr, err := http.Post(ts.URL+"/decompose?algo=portfolio&stream=sse&timeout=150ms", "text/plain",
		bytes.NewReader(grid12HG(t)))
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	if ct := hr.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	var b bytes.Buffer
	if _, err := b.ReadFrom(hr.Body); err != nil {
		t.Fatal(err)
	}
	body := b.String()
	if !strings.Contains(body, "event: improve") {
		t.Error("stream missing improve frames")
	}
	if !strings.Contains(body, `"algo":"portfolio"`) {
		t.Error("stream missing portfolio-labeled frames")
	}
	resp := lastResultFrame(t, body)
	if resp.Outcome != OutcomeDegraded || resp.Width <= 0 {
		t.Fatalf("streamed terminal result: %+v", resp)
	}
}
