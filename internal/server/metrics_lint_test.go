package server

import (
	"bufio"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// TestMetricsOpenMetricsLint is the strict exposition-format gate: it
// fetches the full /metrics output from a live server after a mixed burst
// and parses every line, asserting
//
//   - every sample belongs to a family announced by a # TYPE line, and
//     every family has exactly one # HELP and one # TYPE (HELP before TYPE,
//     both before samples);
//   - sample suffixes match the family type (_bucket/_sum/_count only on
//     histograms, _sum/_count and {quantile} samples only on summaries);
//   - no duplicate series (metric name + full label set);
//   - histogram buckets are cumulative per series (non-decreasing in le
//     order), end in le="+Inf", and the +Inf bucket equals _count.
//
// It runs under -race via the Makefile race target, so it also doubles as a
// concurrency check on the histogram snapshot path.
func TestMetricsOpenMetricsLint(t *testing.T) {
	s := New(Config{Workers: 2})
	ts := httptest.NewServer(s)
	defer ts.Close()

	// A mixed burst so every family has data: exact solves (concurrent, to
	// exercise queueing), a cache hit, a param rejection, a degraded run.
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			postDecompose(t, ts, "algo=bb-ghw", []byte(cycle6HG))
		}()
	}
	wg.Wait()
	postDecompose(t, ts, "algo=bb-ghw", []byte(acyclic4HG))
	http.Post(ts.URL+"/decompose?algo=nope", "text/plain", strings.NewReader(cycle6HG))
	postDecompose(t, ts, "algo=bb-ghw&timeout=50ms", grid12HG(t))

	hr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()

	type family struct {
		help, typ int // line counts
		kind      string
	}
	families := map[string]*family{}
	seenSeries := map[string]bool{}
	// histogram bucket tracking: series key (name + labels sans le) ->
	// ordered bucket values; counts for the +Inf == _count check.
	buckets := map[string][]float64{}
	lastLE := map[string]float64{}
	infBucket := map[string]float64{}
	histCount := map[string]float64{}

	sc := bufio.NewScanner(hr.Body)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			fields := strings.SplitN(text, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				t.Fatalf("line %d: malformed comment %q", line, text)
			}
			name := fields[2]
			f := families[name]
			if f == nil {
				f = &family{}
				families[name] = f
			}
			switch fields[1] {
			case "HELP":
				f.help++
				if len(fields) < 4 || fields[3] == "" {
					t.Errorf("line %d: HELP without text for %s", line, name)
				}
			case "TYPE":
				f.typ++
				if f.help == 0 {
					t.Errorf("line %d: TYPE before HELP for %s", line, name)
				}
				f.kind = fields[3]
			}
			continue
		}

		name, labels, value := parseSample(t, line, text)
		base, suffix := splitSuffix(name)
		f := families[base]
		if f == nil || f.kind == "" {
			// The sample may belong to an unsuffixed family (gauge/counter
			// name that happens to end like a suffix).
			f = families[name]
			base, suffix = name, ""
		}
		if f == nil || f.kind == "" {
			t.Errorf("line %d: sample %q precedes or lacks its # TYPE", line, name)
			continue
		}
		switch f.kind {
		case "histogram":
			if suffix != "_bucket" && suffix != "_sum" && suffix != "_count" {
				t.Errorf("line %d: histogram %s has non-histogram sample %q", line, base, name)
			}
		case "summary":
			_, hasQ := labels["quantile"]
			if suffix != "_sum" && suffix != "_count" && !(suffix == "" && hasQ) {
				t.Errorf("line %d: summary %s has non-summary sample %q", line, base, name)
			}
		default: // counter, gauge
			if suffix != "" {
				base, suffix = name, ""
			}
		}

		series := name + "{" + labelKey(labels) + "}"
		if seenSeries[series] {
			t.Errorf("line %d: duplicate series %s", line, series)
		}
		seenSeries[series] = true

		if f.kind == "histogram" {
			key := base + "{" + labelKeyExcept(labels, "le") + "}"
			switch suffix {
			case "_bucket":
				le, ok := labels["le"]
				if !ok {
					t.Errorf("line %d: bucket without le label: %s", line, text)
					continue
				}
				bound := parseLE(t, line, le)
				if prev, ok := lastLE[key]; ok && bound <= prev {
					t.Errorf("line %d: bucket bounds not increasing for %s (%g after %g)", line, key, bound, prev)
				}
				lastLE[key] = bound
				if n := len(buckets[key]); n > 0 && value < buckets[key][n-1] {
					t.Errorf("line %d: bucket counts not cumulative for %s", line, key)
				}
				buckets[key] = append(buckets[key], value)
				if le == "+Inf" {
					infBucket[key] = value
				}
			case "_count":
				histCount[key] = value
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	for name, f := range families {
		if f.help != 1 || f.typ != 1 {
			t.Errorf("family %s: %d HELP, %d TYPE lines (want exactly 1 each)", name, f.help, f.typ)
		}
	}
	if len(histCount) == 0 {
		t.Fatal("no histogram series found — the burst did not populate the latency families")
	}
	for key, count := range histCount {
		inf, ok := infBucket[key]
		if !ok {
			t.Errorf("histogram series %s has no +Inf bucket", key)
			continue
		}
		if inf != count {
			t.Errorf("histogram series %s: +Inf bucket %g != _count %g", key, inf, count)
		}
	}
	// The exact-outcome histogram must have real observations after the
	// burst (5 exact responses including the cache hit).
	exactKey := `hypertree_daemon_request_seconds{outcome="exact"}`
	if histCount[exactKey] < 5 {
		t.Errorf("exact request histogram count = %g, want >= 5", histCount[exactKey])
	}
}

// parseSample splits one exposition sample line into name, labels, value.
func parseSample(t *testing.T, line int, text string) (string, map[string]string, float64) {
	t.Helper()
	sp := strings.LastIndex(text, " ")
	if sp < 0 {
		t.Fatalf("line %d: no value in sample %q", line, text)
	}
	value, err := strconv.ParseFloat(text[sp+1:], 64)
	if err != nil {
		t.Fatalf("line %d: bad value in %q: %v", line, text, err)
	}
	metric := text[:sp]
	labels := map[string]string{}
	name := metric
	if i := strings.IndexByte(metric, '{'); i >= 0 {
		if !strings.HasSuffix(metric, "}") {
			t.Fatalf("line %d: unterminated label set %q", line, metric)
		}
		name = metric[:i]
		for _, pair := range strings.Split(metric[i+1:len(metric)-1], ",") {
			if pair == "" {
				continue
			}
			eq := strings.IndexByte(pair, '=')
			if eq < 0 {
				t.Fatalf("line %d: bad label %q", line, pair)
			}
			v := pair[eq+1:]
			if len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
				t.Fatalf("line %d: unquoted label value %q", line, pair)
			}
			labels[pair[:eq]] = v[1 : len(v)-1]
		}
	}
	return name, labels, value
}

func splitSuffix(name string) (base, suffix string) {
	for _, s := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, s) {
			return strings.TrimSuffix(name, s), s
		}
	}
	return name, ""
}

func parseLE(t *testing.T, line int, le string) float64 {
	t.Helper()
	if le == "+Inf" {
		return float64(1 << 62)
	}
	v, err := strconv.ParseFloat(le, 64)
	if err != nil {
		t.Fatalf("line %d: bad le %q: %v", line, le, err)
	}
	return v
}

func labelKey(labels map[string]string) string {
	return labelKeyExcept(labels, "")
}

func labelKeyExcept(labels map[string]string, skip string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k != skip {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	return b.String()
}
