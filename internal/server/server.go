// Package server is the decomposition-as-a-service core: a long-lived HTTP
// handler that accepts hypergraph payloads, runs them through core.Decompose
// on a bounded worker pool under per-request budgets, and degrades
// gracefully instead of failing — anytime widths at the deadline, typed
// rejections under overload, contained panics, and a drain protocol that
// finishes (or budget-cancels) every in-flight request before shutdown.
//
// The serving discipline, in one paragraph: admission is bounded by
// Workers + QueueDepth (beyond it, 429 with Retry-After — load sheds at the
// door, not in the heap); request bodies are size-capped with a typed 413;
// every admitted run gets a budget built from the request's deadline clamped
// to the server's ceiling, so a stuck instance costs one worker slot for a
// bounded time; exact results are cached by content hash (sharded FIFO, the
// same discipline as the setcover engine's cover cache) so client retries
// are idempotent and cheap; and every response — success, degraded, rejected
// or error — is the same typed JSON envelope, so clients never parse
// free-text failures.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"hypertree/internal/budget"
	"hypertree/internal/budget/faultinject"
	"hypertree/internal/core"
	"hypertree/internal/hypergraph"
	"hypertree/internal/obs"
	"hypertree/internal/obs/attr"
	"hypertree/internal/obs/hist"
)

// Defaults for the zero-valued Config fields.
const (
	DefaultQueueDepth      = 64
	DefaultMaxRequestBytes = 32 << 20
	DefaultTimeout         = 10 * time.Second
	DefaultMaxTimeout      = 2 * time.Minute
	// DefaultMaxCompileSteps caps the work of compiling one /query plan.
	// Steps are cheap (an enumeration step, a joined or probed row), so 50M
	// is roughly a second of compile CPU — generous for legitimate bounded-
	// width instances, fatal for a 24-ary bag over a 50-value domain.
	DefaultMaxCompileSteps = 50_000_000
	// DefaultMaxResultCells caps the assignment cells (one int each) a
	// single /query request may materialize into its response across the
	// whole batch — 4M cells ≈ 32 MB of solutions. Without it, a batch of
	// 10k enumerate queries with limit 10k could demand 10^8 rows however
	// small MaxRequestBytes is.
	DefaultMaxResultCells = 4 << 20
)

// Config configures a Server. The zero value serves with sane production
// defaults.
type Config struct {
	// Workers bounds concurrent decompositions (the worker pool size);
	// 0 selects GOMAXPROCS. Each admitted request occupies one slot for the
	// whole parse+decompose, so total decomposition CPU is bounded.
	Workers int
	// QueueDepth bounds requests waiting for a worker slot beyond the pool;
	// past Workers+QueueDepth, requests are rejected with 429. 0 selects
	// DefaultQueueDepth, negative disables queueing (admit only up to
	// Workers).
	QueueDepth int
	// MaxRequestBytes caps request bodies; oversize payloads get a typed
	// 413. 0 selects DefaultMaxRequestBytes.
	MaxRequestBytes int64
	// DefaultTimeout is the per-request budget when the client does not ask
	// for one; MaxTimeout is the ceiling a client can ask for (requests
	// asking for more are clamped, not rejected — the degraded-at-deadline
	// contract still returns their best width). Zeros select DefaultTimeout
	// and DefaultMaxTimeout.
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// MaxNodes, when positive, caps the per-request search-node budget a
	// client can ask for (and is the default when it asks for none).
	MaxNodes int64
	// CheckEvery overrides the budget checkpoint cadence of served runs
	// (default 256 ticks). Chaos tests lower it so deadline storms and
	// drain cancellations land promptly even in short runs.
	CheckEvery int64
	// CacheCapacity bounds the exact-result cache: 0 selects
	// DefaultCacheCapacity, negative disables caching.
	CacheCapacity int
	// PlanCacheCapacity bounds the compiled-plan cache behind /query: 0
	// selects DefaultPlanCacheCapacity, negative disables plan caching
	// (every /query request then decomposes and compiles afresh).
	PlanCacheCapacity int
	// MaxCompileSteps bounds the work of compiling one /query plan (bag
	// enumeration steps, join/projection rows, count-DP candidate checks).
	// Past it the request is rejected with 422 instead of wedging a worker
	// slot on a doubly-exponential materialization core.Decompose's budgets
	// never see. 0 selects DefaultMaxCompileSteps, negative disables the
	// step cap (the request timeout still bounds compile wall-clock).
	MaxCompileSteps int64
	// MaxResultCells bounds the total assignment cells (solution rows ×
	// variables) one /query request may materialize across its batch;
	// queries past the cap get per-query error markers instead of rows. 0
	// selects DefaultMaxResultCells, negative disables the cap.
	MaxResultCells int
	// Algorithm is the default algorithm when the request names none; empty
	// selects the algorithm portfolio (the racing solver set: exact when a
	// member proves optimality in time, anytime-degradable otherwise).
	// Requests that want one specific solver name it explicitly.
	Algorithm core.Algorithm
	// Trace, when non-nil, receives every served run's instrumentation
	// events, each stamped with its request id (obs.Event.Req) so the
	// interleaved streams of concurrent requests stay attributable. Must be
	// safe for concurrent use (obs.JSONLWriter is).
	Trace obs.Recorder
	// SlowN sizes the slowest-requests ring (/debug/slow): the N slowest
	// finished requests retain their full event traces for post-hoc
	// diagnosis. 0 selects DefaultSlowN, negative disables retention (and
	// with it the per-request event capture cost).
	SlowN int
	// AccessLog, when non-nil, receives one JSON line per finished request
	// (see accessRecord). Writes are serialized by the server; the writer
	// itself need not be concurrency-safe.
	AccessLog io.Writer
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	switch {
	case c.QueueDepth == 0:
		c.QueueDepth = DefaultQueueDepth
	case c.QueueDepth < 0:
		c.QueueDepth = 0
	}
	if c.MaxRequestBytes <= 0 {
		c.MaxRequestBytes = DefaultMaxRequestBytes
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = DefaultTimeout
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = DefaultMaxTimeout
	}
	if c.DefaultTimeout > c.MaxTimeout {
		c.DefaultTimeout = c.MaxTimeout
	}
	if c.Algorithm == "" {
		c.Algorithm = core.AlgPortfolio
	}
	switch {
	case c.MaxCompileSteps == 0:
		c.MaxCompileSteps = DefaultMaxCompileSteps
	case c.MaxCompileSteps < 0:
		c.MaxCompileSteps = 0 // 0 = unlimited for budget.Limits.MaxNodes
	}
	switch {
	case c.MaxResultCells == 0:
		c.MaxResultCells = DefaultMaxResultCells
	case c.MaxResultCells < 0:
		c.MaxResultCells = math.MaxInt
	}
	switch {
	case c.SlowN == 0:
		c.SlowN = DefaultSlowN
	case c.SlowN < 0:
		c.SlowN = 0
	}
	return c
}

// Outcome is the typed disposition every response carries. Clients switch on
// it instead of parsing error strings.
type Outcome string

const (
	// OutcomeExact: the run completed and the width is proven optimal.
	OutcomeExact Outcome = "exact"
	// OutcomeUpperBound: a heuristic run completed; the width is a valid
	// upper bound, not proven optimal.
	OutcomeUpperBound Outcome = "upper-bound"
	// OutcomeDegraded: a budget tripped (deadline, node cap, cancellation,
	// drain); the width is the best validated decomposition found in time,
	// with Stop naming the limit.
	OutcomeDegraded Outcome = "degraded"
	// OutcomeRejected: the request never ran — admission control, oversize
	// payload, malformed input, unservable instance, or draining.
	OutcomeRejected Outcome = "rejected"
	// OutcomeError: the run was admitted but failed; a contained panic is
	// the canonical case. The daemon survives it.
	OutcomeError Outcome = "error"
)

// outcomes lists every Outcome, for metrics iteration (an array so
// len(outcomes) sizes the counter bank at compile time).
var outcomes = [...]Outcome{OutcomeExact, OutcomeUpperBound, OutcomeDegraded, OutcomeRejected, OutcomeError}

// Response is the one JSON envelope every request gets back, whatever
// happened. Width-bearing fields are present on exact/upper-bound/degraded;
// Error explains rejected/error outcomes.
type Response struct {
	Outcome Outcome `json:"outcome"`
	Req     string  `json:"req,omitempty"`
	Algo    string  `json:"algo,omitempty"`
	// N and M are the parsed instance size (vertices, hyperedges).
	N int `json:"n,omitempty"`
	M int `json:"m,omitempty"`
	// Width is the achieved width; LowerBound the best proven lower bound.
	Width      int  `json:"width,omitempty"`
	LowerBound int  `json:"lower_bound,omitempty"`
	Exact      bool `json:"exact,omitempty"`
	// Stop names the budget limit that ended a degraded run.
	Stop        string `json:"stop,omitempty"`
	Nodes       int64  `json:"nodes,omitempty"`
	Evaluations int64  `json:"evaluations,omitempty"`
	ElapsedMS   int64  `json:"elapsed_ms"`
	// Cached reports the response was served from the exact-result cache.
	Cached bool `json:"cached,omitempty"`
	// WaitedMS is how long the request waited for a worker slot before its
	// run started (0 for cache hits and pre-admission rejections). Always
	// present: queue wait is the first thing to check when latency spikes.
	WaitedMS int64 `json:"waited_ms"`
	// Timings is the per-phase latency breakdown of the request's serving
	// lifecycle. ElapsedMS remains the solve wall-clock alone; Timings.Total
	// is the whole request.
	Timings *Timings `json:"timings,omitempty"`
	// Timeline is the anytime best-width trajectory of the run.
	Timeline []obs.WidthPoint `json:"timeline,omitempty"`
	// Attribution is the run's per-member resource ledger: what each solver
	// cost (attributed nodes, CPU estimate, cover-cache traffic) and what it
	// contributed (incumbent claims, lower bounds, terminal role). Portfolio
	// runs carry one member per racer; serial runs the degenerate one-member
	// ledger — one shape either way. Absent on cache hits (a hit spends no
	// solver work, so there is nothing to account).
	Attribution *attr.Ledger `json:"attribution,omitempty"`
	// Tree is the decomposition itself, when the request asked for it
	// (include=tree).
	Tree *TreeJSON `json:"tree,omitempty"`
	// Error explains rejected/error outcomes; RetrySeconds mirrors the
	// Retry-After header on backpressure rejections.
	Error        string `json:"error,omitempty"`
	RetrySeconds int    `json:"retry_after_s,omitempty"`
}

// TreeJSON is the wire form of a decomposition: per-node bags of vertex
// names, per-node λ edge-name covers (GHDs only), and the parent array
// (-1 marks the root).
type TreeJSON struct {
	Bags    [][]string `json:"bags"`
	Lambdas [][]string `json:"lambdas,omitempty"`
	Parent  []int      `json:"parent"`
	Root    int        `json:"root"`
	Width   int        `json:"width"`
}

// Server is the decomposition service. Create with New, serve with any
// http.Server (it implements http.Handler), stop with Drain.
type Server struct {
	cfg     Config
	mux     *http.ServeMux
	started time.Time

	sem      chan struct{} // worker-slot semaphore, cap = cfg.Workers
	pending  atomic.Int64  // admitted requests (queued + running)
	inflight atomic.Int64  // requests holding a worker slot
	draining atomic.Bool
	wg       sync.WaitGroup // every request between admission and response

	// baseCtx cancels every in-flight budget when a drain's grace period
	// expires: runs stop at their next checkpoint and still answer with
	// their anytime best.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	reqSeq       atomic.Int64
	outcomeCount [len(outcomes)]atomic.Int64
	streamTotal  atomic.Int64
	counters     *obs.EventCounters
	cache        *resultCache

	// The query-serving layer (/query): compiled plans cached by content
	// hash, per-outcome request counters, per-op served-query counters, and
	// latency summaries for whole query requests and plan compiles.
	// plansSkipped counts degraded decompositions served once but never
	// cached.
	plans        *fifoCache[*cachedPlan]
	queryOutcome [len(outcomes)]atomic.Int64
	queryOpCount [len(queryOps)]atomic.Int64
	plansSkipped atomic.Int64
	queryHist    *hist.Histogram
	compileHist  *hist.Histogram

	// The latency layer: end-to-end request histograms per typed outcome,
	// per-phase histograms (queue wait, parse, cache, solve, encode), the
	// live in-flight registry behind /debug/runs, and the slowest-N ring
	// behind /debug/slow.
	reqHist   [len(outcomes)]*hist.Histogram
	phaseHist [numPhases]*hist.Histogram
	registry  inflightRegistry
	slow      *slowRing
	accessMu  sync.Mutex // serializes Config.AccessLog writes

	// The attribution layer: cumulative per-member cost accounting across
	// every solved request, folded out of each response's ledger and served
	// as the hypertree_portfolio_member_* metric families.
	attrMu    sync.Mutex
	attrStats map[string]*memberTotals
}

// memberTotals is one algorithm's cumulative cost-accounting row: wins,
// incumbent improvements and attributed search nodes across all requests
// this process served (serial runs count as their one member's totals).
type memberTotals struct {
	wins         int64
	improvements int64
	nodes        int64
}

// recordAttribution folds one finished run's ledger into the cumulative
// per-member totals behind /metrics. Cache hits carry no ledger and pass a
// nil, which is a no-op — cached answers cost no solver work.
func (s *Server) recordAttribution(led *attr.Ledger) {
	if led == nil {
		return
	}
	s.attrMu.Lock()
	defer s.attrMu.Unlock()
	if s.attrStats == nil {
		s.attrStats = make(map[string]*memberTotals)
	}
	for i := range led.Members {
		m := &led.Members[i]
		t := s.attrStats[m.Algo]
		if t == nil {
			t = &memberTotals{}
			s.attrStats[m.Algo] = t
		}
		if m.Role == attr.RoleWinner {
			t.wins++
		}
		t.improvements += int64(len(m.Claims))
		t.nodes += m.Nodes
	}
}

// New builds a Server from cfg.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		started:    time.Now(),
		sem:        make(chan struct{}, cfg.Workers),
		baseCtx:    ctx,
		baseCancel: cancel,
		counters:   obs.NewEventCounters(),
		slow:       newSlowRing(cfg.SlowN),
	}
	for i := range s.reqHist {
		s.reqHist[i] = hist.New()
	}
	for i := range s.phaseHist {
		s.phaseHist[i] = hist.New()
	}
	// Config speaks "0 = default, negative = disabled"; newResultCache
	// speaks entry counts with 0 = disabled.
	switch {
	case cfg.CacheCapacity == 0:
		s.cache = newResultCache(DefaultCacheCapacity)
	case cfg.CacheCapacity > 0:
		s.cache = newResultCache(cfg.CacheCapacity)
	}
	switch {
	case cfg.PlanCacheCapacity == 0:
		s.plans = newFIFOCache[*cachedPlan](DefaultPlanCacheCapacity)
	case cfg.PlanCacheCapacity > 0:
		s.plans = newFIFOCache[*cachedPlan](cfg.PlanCacheCapacity)
	}
	s.queryHist = hist.New()
	s.compileHist = hist.New()
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /decompose", s.handleDecompose)
	s.mux.HandleFunc("POST /query", s.handleQuery)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /algorithms", s.handleAlgorithms)
	s.mux.HandleFunc("GET /debug/runs", s.handleDebugRuns)
	s.mux.HandleFunc("GET /debug/slow", s.handleDebugSlow)
	return s
}

// ServeHTTP implements http.Handler with an outermost panic barrier: a bug
// in the handler itself (not the algorithms — those are contained by
// budget.Guard inside core.Decompose) answers 500 with a typed envelope
// instead of killing the connection without a response.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	defer func() {
		if rec := recover(); rec != nil {
			pe := budget.AsPanicError(rec)
			s.respond(w, http.StatusInternalServerError, &Response{
				Outcome: OutcomeError,
				Error:   fmt.Sprintf("contained handler panic: %v", pe.Value),
			})
		}
	}()
	s.mux.ServeHTTP(w, r)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ready")
}

func (s *Server) handleAlgorithms(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		Algorithms []core.Algorithm `json:"algorithms"`
		Default    core.Algorithm   `json:"default"`
	}{core.Algorithms, s.cfg.Algorithm})
}

// reqParams are the per-request knobs parsed from the query string.
type reqParams struct {
	algo    core.Algorithm
	format  string
	timeout time.Duration
	nodes   int64
	seed    int64
	workers int
	stream  bool
	tree    bool
}

func (s *Server) parseParams(r *http.Request) (reqParams, error) {
	q := r.URL.Query()
	p := reqParams{
		algo:    s.cfg.Algorithm,
		format:  "hg",
		timeout: s.cfg.DefaultTimeout,
		nodes:   s.cfg.MaxNodes,
		seed:    1,
	}
	if v := q.Get("algo"); v != "" {
		a, err := core.ParseAlgorithm(v)
		if err != nil {
			return p, err
		}
		p.algo = a
	}
	if v := q.Get("format"); v != "" {
		switch v {
		case "hg", "dimacs", "gr", "edgelist":
			p.format = v
		default:
			return p, fmt.Errorf("unknown format %q (have hg, dimacs, gr, edgelist)", v)
		}
	}
	if v := q.Get("timeout"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			return p, fmt.Errorf("bad timeout %q (want a positive Go duration, e.g. 500ms)", v)
		}
		p.timeout = d
	}
	if p.timeout > s.cfg.MaxTimeout {
		p.timeout = s.cfg.MaxTimeout
	}
	if v := q.Get("nodes"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n < 0 {
			return p, fmt.Errorf("bad nodes %q (want a non-negative integer)", v)
		}
		if s.cfg.MaxNodes > 0 && (n == 0 || n > s.cfg.MaxNodes) {
			n = s.cfg.MaxNodes
		}
		p.nodes = n
	}
	if v := q.Get("seed"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return p, fmt.Errorf("bad seed %q", v)
		}
		p.seed = n
	}
	if v := q.Get("workers"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return p, fmt.Errorf("bad workers %q (want a non-negative integer)", v)
		}
		p.workers = core.ClampWorkers(n)
	}
	switch v := q.Get("stream"); v {
	case "":
	case "sse":
		p.stream = true
	default:
		return p, fmt.Errorf("unknown stream mode %q (have sse)", v)
	}
	switch v := q.Get("include"); v {
	case "":
	case "tree":
		p.tree = true
	default:
		return p, fmt.Errorf("unknown include %q (have tree)", v)
	}
	return p, nil
}

// handleDecompose is the serving path; see the package comment for the
// discipline it implements. Every exit goes through the request's lifecycle
// (lc): phase timings, span events, the timings block, histograms.
func (s *Server) handleDecompose(w http.ResponseWriter, r *http.Request) {
	id := fmt.Sprintf("r%06d", s.reqSeq.Add(1))
	w.Header().Set("X-Request-ID", id)
	lc := s.newLifecycle(id, r.RemoteAddr)

	// Count the request for drain before checking the flag: a request is
	// either rejected-by-draining or fully waited for — never silently
	// abandoned between the two.
	s.wg.Add(1)
	defer s.wg.Done()
	if s.draining.Load() {
		s.reject(w, lc, http.StatusServiceUnavailable, "draining: not admitting new requests", drainingRetrySeconds)
		return
	}

	p, err := s.parseParams(r)
	if err != nil {
		s.reject(w, lc, http.StatusBadRequest, err.Error(), 0)
		return
	}
	lc.algo = string(p.algo)

	// The body is read (capped) before admission: cheap, and the content
	// hash can answer retries from the cache without spending a worker slot.
	body, err := io.ReadAll(hypergraph.LimitReader(r.Body, s.cfg.MaxRequestBytes))
	if err != nil {
		var tooBig *hypergraph.PayloadTooLargeError
		if errors.As(err, &tooBig) {
			s.reject(w, lc, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("payload exceeds %d-byte limit", tooBig.Limit), 0)
			return
		}
		s.reject(w, lc, http.StatusBadRequest, fmt.Sprintf("reading body: %v", err), 0)
		return
	}
	key := resultKey(body, p.format, p.algo, p.seed)
	cstart := time.Now()
	cached, hit := s.cache.lookup(key)
	lc.phase(phaseCache, time.Since(cstart))
	if hit && !p.stream {
		cp := *cached
		cp.Req = id
		cp.Cached = true
		if !p.tree {
			cp.Tree = nil
		}
		// The hit gets its own fresh timings (the stored entry carries none):
		// a cached 2ms answer must not report the original 2s solve. The
		// stored ledger is stripped for the same reason — this request spent
		// no solver work, so it has no costs to attribute.
		cp.Attribution = nil
		cp.Timings = lc.finish(cp.Outcome)
		cp.WaitedMS = 0
		s.count(cp.Outcome)
		s.logAccess(lc, http.StatusOK, &cp, false)
		s.writeJSON(w, http.StatusOK, &cp)
		return
	}

	// Admission: pending counts everything between here and response;
	// beyond Workers+QueueDepth the request is shed with backpressure.
	if s.pending.Add(1) > int64(s.cfg.Workers+s.cfg.QueueDepth) {
		s.pending.Add(-1)
		s.reject(w, lc, http.StatusTooManyRequests, "saturated: worker pool and queue full", saturatedRetrySeconds)
		return
	}
	defer s.pending.Add(-1)

	// Admitted: visible in /debug/runs from here (state "queued") until the
	// response is built.
	ri := &runInfo{id: id, algo: string(p.algo), start: time.Now()}
	s.registry.add(ri)
	defer s.registry.remove(id)

	qstart := time.Now()
	select {
	case s.sem <- struct{}{}:
	case <-r.Context().Done():
		lc.phase(phaseQueueWait, time.Since(qstart))
		s.reject(w, lc, statusClientClosedRequest, "client canceled while queued", 0)
		return
	case <-s.baseCtx.Done():
		lc.phase(phaseQueueWait, time.Since(qstart))
		s.reject(w, lc, http.StatusServiceUnavailable, "draining: canceled while queued", drainingRetrySeconds)
		return
	}
	defer func() { <-s.sem }()
	wait := time.Since(qstart)
	lc.phase(phaseQueueWait, wait)
	ri.waitNS.Store(int64(wait))
	ri.running.Store(true)
	s.inflight.Add(1)
	defer s.inflight.Add(-1)

	faultinject.Hit(faultinject.SiteServerHandle)

	// Parse inside the worker slot: parser CPU is bounded by the pool, so a
	// storm of slow parses degrades into queueing + 429, never into
	// unbounded goroutines.
	faultinject.Hit(faultinject.SiteServerParse)
	pstart := time.Now()
	h, err := parsePayload(body, p.format)
	lc.phase(phaseParse, time.Since(pstart))
	if err != nil {
		s.reject(w, lc, http.StatusBadRequest, fmt.Sprintf("parsing %s payload: %v", p.format, err), 0)
		return
	}

	// The run's budget: the client's clamped deadline, cut short by client
	// disconnect or by a drain whose grace period expired.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	unhook := context.AfterFunc(s.baseCtx, cancel)
	defer unhook()

	// The run's recorder fans out to: obs counters + request-stamped trace +
	// slow-ring capture (all via lc.spans), the in-flight registry gauges,
	// and — when streaming — the SSE writer.
	var sse *sseWriter
	rec := obs.Tee(lc.spans, ri)
	if p.stream {
		sse = newSSEWriter(w, id)
		if sse == nil {
			s.reject(w, lc, http.StatusNotAcceptable, "response writer cannot stream (no http.Flusher)", 0)
			return
		}
		s.streamTotal.Add(1)
		rec = obs.Tee(rec, sse)
	}

	start := time.Now()
	d, derr := core.Decompose(h, core.Options{
		Algorithm:  p.algo,
		Ctx:        ctx,
		Timeout:    p.timeout,
		MaxNodes:   p.nodes,
		CheckEvery: s.cfg.CheckEvery,
		Seed:       p.seed,
		Workers:    p.workers,
		Recorder:   rec,
	})
	solveDur := time.Since(start)
	lc.phase(phaseSolve, solveDur)

	estart := time.Now()
	resp := s.buildResponse(id, p, h, d, derr, solveDur)

	if resp.Outcome == OutcomeExact && derr == nil {
		// Cache a request-agnostic copy (with the tree: a later include=tree
		// hit wants it; misses strip it). Exact widths are deterministic for
		// the keyed (payload, format, algo, seed), so retries are idempotent.
		// Taken before the timings stamp below, so stored entries carry no
		// stale per-request timings.
		cp := *resp
		cp.Req = ""
		cp.Cached = false
		// The ledger accounts one run's work; replaying it on later hits
		// would double-count costs, so stored entries carry none.
		cp.Attribution = nil
		if cp.Tree == nil {
			cp.Tree = treeJSON(h, d)
		}
		s.cache.store(key, &cp)
	}
	lc.phase(phaseEncode, time.Since(estart))

	resp.Timings = lc.finish(resp.Outcome)
	resp.WaitedMS = lc.waitedMS()
	s.recordAttribution(resp.Attribution)
	s.offerSlow(lc, resp)

	s.count(resp.Outcome)
	status := http.StatusOK
	switch resp.Outcome {
	case OutcomeError:
		status = http.StatusInternalServerError
	case OutcomeRejected:
		status = http.StatusUnprocessableEntity
	}
	s.logAccess(lc, status, resp, sse != nil)
	if sse != nil {
		sse.finish(resp)
		return
	}
	s.writeJSON(w, status, resp)
}

// Retry-After hints on backpressure rejections. A saturated pool usually
// clears in about one service time, so 1s is an honest backoff; a draining
// server will not come back, so 1s there means "fail over promptly, don't
// linger".
const (
	saturatedRetrySeconds = 1
	drainingRetrySeconds  = 1
)

// offerSlow hands a finished request (with its captured event trace) to the
// slowest-N ring.
func (s *Server) offerSlow(lc *lifecycle, resp *Response) {
	if s.slow == nil {
		return
	}
	run := &SlowRun{
		Req:       resp.Req,
		Algo:      resp.Algo,
		Outcome:   resp.Outcome,
		Width:     resp.Width,
		Stop:      resp.Stop,
		Start:     lc.start,
		QueueWait: lc.phases[phaseQueueWait],
		Timings:   resp.Timings,
	}
	if resp.Timings != nil {
		run.Elapsed = resp.Timings.Total
	}
	run.Events, run.DroppedEvents = lc.capture.take()
	s.slow.offer(run)
}

// statusClientClosedRequest is nginx's conventional code for "the client went
// away before we answered"; no stdlib constant exists.
const statusClientClosedRequest = 499

// buildResponse folds a Decompose result (or error) into the typed envelope.
func (s *Server) buildResponse(id string, p reqParams, h *hypergraph.Hypergraph, d *core.Decomposition, derr error, elapsed time.Duration) *Response {
	resp := &Response{
		Req:       id,
		Algo:      string(p.algo),
		ElapsedMS: elapsed.Milliseconds(),
	}
	if h != nil {
		resp.N, resp.M = h.N(), h.M()
	}
	if derr != nil {
		var pe *budget.PanicError
		if errors.As(derr, &pe) {
			resp.Outcome = OutcomeError
			resp.Error = fmt.Sprintf("algorithm panicked (contained): %v", pe.Value)
			return resp
		}
		// Unservable instance (empty hypergraph, uncovered vertices, no
		// decomposition within the tried widths): the request is at fault,
		// not the server.
		resp.Outcome = OutcomeRejected
		resp.Error = derr.Error()
		return resp
	}
	resp.Width = d.Width
	resp.LowerBound = d.LowerBound
	resp.Exact = d.Exact
	resp.Stop = string(d.Stop)
	resp.Nodes = d.Nodes
	resp.Evaluations = d.Evaluations
	if d.Stats != nil {
		resp.Timeline = d.Stats.Snapshot().Timeline
	}
	resp.Attribution = d.Ledger
	switch {
	case d.Interrupted:
		resp.Outcome = OutcomeDegraded
	case d.Exact:
		resp.Outcome = OutcomeExact
	default:
		resp.Outcome = OutcomeUpperBound
	}
	if p.tree {
		resp.Tree = treeJSON(h, d)
	}
	return resp
}

// treeJSON renders the decomposition for the wire: the GHD when the run
// produced one, the tree decomposition otherwise.
func treeJSON(h *hypergraph.Hypergraph, d *core.Decomposition) *TreeJSON {
	name := func(vs []int) []string {
		out := make([]string, len(vs))
		for i, v := range vs {
			out[i] = h.VertexName(v)
		}
		return out
	}
	if d.GHD != nil {
		g := d.GHD
		t := &TreeJSON{
			Bags:    make([][]string, len(g.Bags)),
			Lambdas: make([][]string, len(g.Lambdas)),
			Parent:  g.Parent,
			Root:    g.Root,
			Width:   g.Width(),
		}
		for i, bag := range g.Bags {
			t.Bags[i] = name(bag)
		}
		for i, lam := range g.Lambdas {
			es := make([]string, len(lam))
			for j, e := range lam {
				es[j] = h.EdgeName(e)
			}
			t.Lambdas[i] = es
		}
		return t
	}
	if d.TD == nil {
		return nil
	}
	td := d.TD
	t := &TreeJSON{
		Bags:   make([][]string, len(td.Bags)),
		Parent: td.Parent,
		Root:   td.Root,
		Width:  td.Width(),
	}
	for i, bag := range td.Bags {
		t.Bags[i] = name(bag)
	}
	return t
}

// parsePayload decodes body in the named format. Graph formats lift to
// hypergraphs via the primal-graph embedding, same as the CLI.
func parsePayload(body []byte, format string) (*hypergraph.Hypergraph, error) {
	r := bytes.NewReader(body)
	switch format {
	case "hg":
		return hypergraph.ParseHG(r)
	case "dimacs":
		g, err := hypergraph.ParseDIMACS(r)
		if err != nil {
			return nil, err
		}
		return hypergraph.FromGraph(g), nil
	case "gr":
		g, err := hypergraph.ParseGr(r)
		if err != nil {
			return nil, err
		}
		return hypergraph.FromGraph(g), nil
	case "edgelist":
		return hypergraph.ParseEdgeList(r)
	default:
		return nil, fmt.Errorf("unknown format %q", format)
	}
}

// reject answers a request that will not run, with backpressure hints when
// retrySeconds is positive. It closes the request's lifecycle, so even
// rejections land in the latency histograms and carry a timings block.
func (s *Server) reject(w http.ResponseWriter, lc *lifecycle, status int, msg string, retrySeconds int) {
	s.count(OutcomeRejected)
	resp := &Response{Outcome: OutcomeRejected, Req: lc.id, Error: msg, RetrySeconds: retrySeconds}
	resp.Timings = lc.finish(OutcomeRejected)
	resp.WaitedMS = lc.waitedMS()
	s.offerSlow(lc, resp)
	if retrySeconds > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(retrySeconds))
	}
	s.logAccess(lc, status, resp, false)
	s.writeJSON(w, status, resp)
}

// respond is the panic-barrier response writer: unlike writeJSON it tolerates
// a handler that already wrote headers (the write simply fails downstream).
func (s *Server) respond(w http.ResponseWriter, status int, resp *Response) {
	s.count(resp.Outcome)
	s.writeJSON(w, status, resp)
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encode errors mean the client went away; there is nobody to tell.
	_ = json.NewEncoder(w).Encode(v)
}

// outcomeIndex maps an Outcome to its slot in the counter/histogram banks
// (-1 for unknown values).
func outcomeIndex(o Outcome) int {
	for i, known := range outcomes {
		if o == known {
			return i
		}
	}
	return -1
}

func (s *Server) count(o Outcome) {
	if i := outcomeIndex(o); i >= 0 {
		s.outcomeCount[i].Add(1)
	}
}

// OutcomeCount returns how many responses carried outcome o.
func (s *Server) OutcomeCount(o Outcome) int64 {
	if i := outcomeIndex(o); i >= 0 {
		return s.outcomeCount[i].Load()
	}
	return 0
}

// Draining reports whether the server has stopped admitting requests.
func (s *Server) Draining() bool { return s.draining.Load() }

// InFlight returns the number of requests currently holding a worker slot.
func (s *Server) InFlight() int64 { return s.inflight.Load() }

// DrainReport says how a drain went.
type DrainReport struct {
	// Forced reports the grace period expired and in-flight budgets were
	// canceled (their requests still answered, with degraded outcomes).
	Forced bool
	// Waited is how long the drain took end to end.
	Waited time.Duration
}

// Drain gracefully stops the server: new requests are rejected with a typed
// 503 (readyz flips to draining), queued requests keep their place, and
// in-flight runs get up to grace to finish on their own budgets. When grace
// expires, every in-flight budget is canceled — runs stop at their next
// checkpoint and their requests are still answered with anytime results.
// Drain returns only when every admitted request has been responded to:
// zero in-flight requests are dropped, by construction. A non-positive
// grace cancels immediately.
func (s *Server) Drain(grace time.Duration) DrainReport {
	start := time.Now()
	s.draining.Store(true)
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	rep := DrainReport{}
	if grace > 0 {
		timer := time.NewTimer(grace)
		defer timer.Stop()
		select {
		case <-done:
			rep.Waited = time.Since(start)
			return rep
		case <-timer.C:
			rep.Forced = true
		}
	} else {
		rep.Forced = s.inflight.Load() > 0 || s.pending.Load() > 0
	}
	s.baseCancel()
	<-done
	rep.Waited = time.Since(start)
	return rep
}

// handleMetrics serves the daemon's serving-level counters followed by the
// obs event counters, in the OpenMetrics text exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var b bytes.Buffer
	fmt.Fprintf(&b, "# HELP hypertree_daemon_uptime_seconds Seconds since the server was built.\n# TYPE hypertree_daemon_uptime_seconds gauge\nhypertree_daemon_uptime_seconds %g\n",
		time.Since(s.started).Seconds())
	fmt.Fprintf(&b, "# HELP hypertree_daemon_requests_total Responses sent, by typed outcome.\n# TYPE hypertree_daemon_requests_total counter\n")
	for i, o := range outcomes {
		fmt.Fprintf(&b, "hypertree_daemon_requests_total{outcome=%q} %d\n", o, s.outcomeCount[i].Load())
	}
	fmt.Fprintf(&b, "# HELP hypertree_daemon_inflight Requests currently holding a worker slot.\n# TYPE hypertree_daemon_inflight gauge\nhypertree_daemon_inflight %d\n", s.inflight.Load())
	queued := s.pending.Load() - s.inflight.Load()
	if queued < 0 {
		queued = 0
	}
	fmt.Fprintf(&b, "# HELP hypertree_daemon_queued Admitted requests waiting for a worker slot.\n# TYPE hypertree_daemon_queued gauge\nhypertree_daemon_queued %d\n", queued)
	fmt.Fprintf(&b, "# HELP hypertree_daemon_workers Worker pool size.\n# TYPE hypertree_daemon_workers gauge\nhypertree_daemon_workers %d\n", s.cfg.Workers)
	fmt.Fprintf(&b, "# HELP hypertree_daemon_queue_depth Admission queue bound beyond the pool.\n# TYPE hypertree_daemon_queue_depth gauge\nhypertree_daemon_queue_depth %d\n", s.cfg.QueueDepth)
	draining := 0
	if s.draining.Load() {
		draining = 1
	}
	fmt.Fprintf(&b, "# HELP hypertree_daemon_draining 1 while the server refuses new work.\n# TYPE hypertree_daemon_draining gauge\nhypertree_daemon_draining %d\n", draining)
	fmt.Fprintf(&b, "# HELP hypertree_daemon_streams_total SSE-streamed decompositions started.\n# TYPE hypertree_daemon_streams_total counter\nhypertree_daemon_streams_total %d\n", s.streamTotal.Load())
	cs := s.cache.stats()
	fmt.Fprintf(&b, "# HELP hypertree_daemon_result_cache_hits Exact-result cache hits.\n# TYPE hypertree_daemon_result_cache_hits counter\nhypertree_daemon_result_cache_hits %d\n", cs.Hits)
	fmt.Fprintf(&b, "# HELP hypertree_daemon_result_cache_misses Exact-result cache misses.\n# TYPE hypertree_daemon_result_cache_misses counter\nhypertree_daemon_result_cache_misses %d\n", cs.Misses)
	fmt.Fprintf(&b, "# HELP hypertree_daemon_result_cache_evictions Exact-result cache FIFO evictions.\n# TYPE hypertree_daemon_result_cache_evictions counter\nhypertree_daemon_result_cache_evictions %d\n", cs.Evictions)
	fmt.Fprintf(&b, "# HELP hypertree_daemon_result_cache_size Exact-result cache resident entries.\n# TYPE hypertree_daemon_result_cache_size gauge\nhypertree_daemon_result_cache_size %d\n", cs.Size)
	s.writePortfolioMetrics(&b)
	s.writeLatencyMetrics(&b)
	s.writeQueryMetrics(&b)
	w.Write(b.Bytes())
	if err := s.counters.WriteOpenMetrics(w); err != nil {
		// The scrape connection broke mid-write; nothing to clean up.
		return
	}
}

// writePortfolioMetrics renders the cumulative per-member attribution
// families: wins, incumbent improvements and attributed search nodes as
// counters, plus each member's fraction of all attributed nodes as a gauge.
// Labels come out sorted so consecutive scrapes are byte-identical when
// nothing changed; the HELP/TYPE headers are emitted even before the first
// solved run, so the families are announced from the first scrape.
func (s *Server) writePortfolioMetrics(b *bytes.Buffer) {
	type row struct {
		algo string
		t    memberTotals
	}
	s.attrMu.Lock()
	rows := make([]row, 0, len(s.attrStats))
	var totalNodes int64
	for algo, t := range s.attrStats {
		rows = append(rows, row{algo, *t})
		totalNodes += t.nodes
	}
	s.attrMu.Unlock()
	sort.Slice(rows, func(i, j int) bool { return rows[i].algo < rows[j].algo })

	fmt.Fprintf(b, "# HELP hypertree_portfolio_member_wins_total Runs whose returned decomposition this member produced (serial runs count for their one member).\n# TYPE hypertree_portfolio_member_wins_total counter\n")
	for _, r := range rows {
		fmt.Fprintf(b, "hypertree_portfolio_member_wins_total{algo=%q} %d\n", r.algo, r.t.wins)
	}
	fmt.Fprintf(b, "# HELP hypertree_portfolio_member_improvements_total Incumbent improvements claimed by this member across all runs.\n# TYPE hypertree_portfolio_member_improvements_total counter\n")
	for _, r := range rows {
		fmt.Fprintf(b, "hypertree_portfolio_member_improvements_total{algo=%q} %d\n", r.algo, r.t.improvements)
	}
	fmt.Fprintf(b, "# HELP hypertree_portfolio_member_nodes_total Search nodes attributed to this member across all runs.\n# TYPE hypertree_portfolio_member_nodes_total counter\n")
	for _, r := range rows {
		fmt.Fprintf(b, "hypertree_portfolio_member_nodes_total{algo=%q} %d\n", r.algo, r.t.nodes)
	}
	fmt.Fprintf(b, "# HELP hypertree_portfolio_member_node_share This member's fraction of all attributed search nodes.\n# TYPE hypertree_portfolio_member_node_share gauge\n")
	for _, r := range rows {
		share := 0.0
		if totalNodes > 0 {
			share = float64(r.t.nodes) / float64(totalNodes)
		}
		fmt.Fprintf(b, "hypertree_portfolio_member_node_share{algo=%q} %g\n", r.algo, share)
	}
}

// latencyQuantiles are the percentiles the /metrics summaries expose — the
// P50/P95/P99 triple the serving-benchmark ROADMAP item asks for.
var latencyQuantiles = []float64{0.5, 0.95, 0.99}

// writeLatencyMetrics renders the request/phase latency families: the
// per-outcome end-to-end histogram, the queue-wait histogram, and quantile
// summaries per phase and overall (the overall one merges the per-outcome
// snapshots — the hist.Snapshot.Merge path in production use). Writes to a
// bytes.Buffer never fail, so errors are discarded.
func (s *Server) writeLatencyMetrics(b *bytes.Buffer) {
	reqSeries := make([]hist.Series, len(outcomes))
	overall := &hist.Snapshot{}
	for i, o := range outcomes {
		snap := s.reqHist[i].Snapshot()
		reqSeries[i] = hist.Series{Labels: []hist.Label{{Name: "outcome", Value: string(o)}}, Snap: snap}
		// Same bucket layout by construction; Merge cannot fail.
		_ = overall.Merge(snap)
	}
	_ = hist.WriteHistogramFamily(b, "hypertree_daemon_request_seconds",
		"End-to-end request latency by typed outcome.", reqSeries...)
	_ = hist.WriteHistogramFamily(b, "hypertree_daemon_queue_wait_seconds",
		"Time admitted requests spent waiting for a worker slot.",
		hist.Series{Snap: s.phaseHist[phaseQueueWait].Snapshot()})
	_ = hist.WriteSummaryFamily(b, "hypertree_daemon_request_latency_seconds",
		"End-to-end request latency quantiles across all outcomes.", latencyQuantiles,
		hist.Series{Snap: overall})
	phaseSeries := make([]hist.Series, numPhases)
	for p := reqPhase(0); p < numPhases; p++ {
		phaseSeries[p] = hist.Series{
			Labels: []hist.Label{{Name: "phase", Value: phaseNames[p]}},
			Snap:   s.phaseHist[p].Snapshot(),
		}
	}
	_ = hist.WriteSummaryFamily(b, "hypertree_daemon_phase_seconds",
		"Per-phase latency quantiles of the request serving lifecycle.", latencyQuantiles,
		phaseSeries...)
}
