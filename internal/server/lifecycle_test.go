package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"hypertree/internal/obs"
)

func TestTimingsStampedOnEnvelope(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()

	hr, resp := postDecompose(t, ts, "algo=bb-ghw", []byte(cycle6HG))
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", hr.StatusCode)
	}
	tm := resp.Timings
	if tm == nil {
		t.Fatal("no timings block on a served response")
	}
	if tm.Total <= 0 {
		t.Fatalf("timings.total_ns = %v, want > 0", tm.Total)
	}
	if tm.Solve <= 0 {
		t.Fatalf("timings.solve_ns = %v, want > 0 for a solved request", tm.Solve)
	}
	if tm.Solve > tm.Total {
		t.Fatalf("solve %v exceeds total %v", tm.Solve, tm.Total)
	}

	// The cached retry reports its own (fast) serving, not the original
	// solve: the solve phase must be absent.
	_, again := postDecompose(t, ts, "algo=bb-ghw", []byte(cycle6HG))
	if !again.Cached {
		t.Fatal("retry not served from cache")
	}
	if again.Timings == nil {
		t.Fatal("cached response lost its timings block")
	}
	if again.Timings.Solve != 0 {
		t.Fatalf("cached response claims a %v solve phase", again.Timings.Solve)
	}
	if again.Timings.Total <= 0 {
		t.Fatal("cached response has no total")
	}
}

// TestWaitedMSAlwaysPresent pins the envelope contract: waited_ms appears on
// every response (no omitempty), including rejections.
func TestWaitedMSAlwaysPresent(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()

	for _, tc := range []struct {
		query string
		body  string
	}{
		{"algo=bb-ghw", cycle6HG}, // served
		{"algo=nope", cycle6HG},   // rejected at parse-params
	} {
		hr, err := http.Post(ts.URL+"/decompose?"+tc.query, "text/plain", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		var raw map[string]any
		if err := json.NewDecoder(hr.Body).Decode(&raw); err != nil {
			t.Fatal(err)
		}
		hr.Body.Close()
		if _, ok := raw["waited_ms"]; !ok {
			t.Errorf("%s: waited_ms missing from envelope: %v", tc.query, raw)
		}
		if _, ok := raw["timings"]; !ok {
			t.Errorf("%s: timings missing from envelope: %v", tc.query, raw)
		}
	}
}

// TestSpanEventsValidatedTrace drives a request with tracing enabled and
// checks the span events land in the trace — one per reached phase plus
// "total" carrying the outcome — and that the trace still passes
// obs.ValidateTrace.
func TestSpanEventsValidatedTrace(t *testing.T) {
	var buf syncBuffer
	trace := obs.NewJSONLWriter(&buf)
	s := New(Config{Trace: trace})
	ts := httptest.NewServer(s)
	defer ts.Close()

	if hr, _ := postDecompose(t, ts, "algo=bb-ghw", []byte(cycle6HG)); hr.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", hr.StatusCode)
	}
	if err := trace.Close(); err != nil {
		t.Fatal(err)
	}

	if _, err := obs.ValidateTrace(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("trace with spans fails validation: %v", err)
	}

	phases := map[string]obs.Event{}
	for _, line := range bytes.Split(buf.Bytes(), []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var e obs.Event
		if err := json.Unmarshal(line, &e); err != nil {
			t.Fatalf("bad trace line %s: %v", line, err)
		}
		if e.Kind != obs.KindSpan {
			continue
		}
		if e.Req == "" {
			t.Fatalf("span without request id: %+v", e)
		}
		phases[e.Phase] = e
	}
	for _, want := range []string{"cache", "queue_wait", "parse", "solve", "encode", "total"} {
		if _, ok := phases[want]; !ok {
			t.Errorf("no span for phase %q (got %v)", want, phaseSet(phases))
		}
	}
	if total := phases["total"]; total.Outcome != string(OutcomeExact) {
		t.Errorf("total span outcome = %q, want %q", total.Outcome, OutcomeExact)
	}
	if solve := phases["solve"]; solve.Dur <= 0 {
		t.Errorf("solve span dur = %v, want > 0", solve.Dur)
	}
}

func phaseSet(m map[string]obs.Event) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// syncBuffer is a goroutine-safe bytes.Buffer for trace/access-log sinks.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) Bytes() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]byte(nil), b.buf.Bytes()...)
}

// TestDebugRunsMidSolve is the live-introspection acceptance test: while a
// long request is solving, /debug/runs must list it as running with a
// current anytime width.
func TestDebugRunsMidSolve(t *testing.T) {
	s := New(Config{Workers: 1, CheckEvery: 16})
	ts := httptest.NewServer(s)
	defer ts.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		http.Post(ts.URL+"/decompose?algo=bb-ghw&timeout=3s", "text/plain", bytes.NewReader(grid12HG(t)))
	}()

	type runsPage struct {
		Inflight int         `json:"inflight"`
		Runs     []RunStatus `json:"runs"`
	}
	var seen RunStatus
	waitFor(t, 3*time.Second, func() bool {
		hr, err := http.Get(ts.URL + "/debug/runs")
		if err != nil {
			return false
		}
		defer hr.Body.Close()
		var page runsPage
		if err := json.NewDecoder(hr.Body).Decode(&page); err != nil {
			return false
		}
		// The first improve (the greedy initial incumbent) can precede the
		// first budget checkpoint, so poll until both gauges are live rather
		// than asserting nodes off a sample that raced that window.
		for _, r := range page.Runs {
			if r.State == "running" && r.Width > 0 && r.Nodes > 0 {
				seen = r
				return true
			}
		}
		return false
	})
	if seen.Algo != "bb-ghw" {
		t.Errorf("in-flight run algo = %q, want bb-ghw", seen.Algo)
	}
	<-done

	// Once the request finishes the registry must be empty again.
	waitFor(t, 2*time.Second, func() bool {
		hr, err := http.Get(ts.URL + "/debug/runs")
		if err != nil {
			return false
		}
		defer hr.Body.Close()
		var page runsPage
		if err := json.NewDecoder(hr.Body).Decode(&page); err != nil {
			return false
		}
		return page.Inflight == 0
	})
}

// TestDebugSlowRetainsOutliers checks the slowest-N ring keeps the slow
// request — with its event trace — and /debug/slow orders slowest first.
func TestDebugSlowRetainsOutliers(t *testing.T) {
	s := New(Config{Workers: 2, CheckEvery: 16})
	ts := httptest.NewServer(s)
	defer ts.Close()

	// One fast exact request, one slow degraded one.
	postDecompose(t, ts, "algo=bb-ghw", []byte(cycle6HG))
	hr, slow := postDecompose(t, ts, "algo=bb-ghw&timeout=300ms", grid12HG(t))
	if hr.StatusCode != http.StatusOK || slow.Outcome != OutcomeDegraded {
		t.Fatalf("slow request: status %d outcome %s", hr.StatusCode, slow.Outcome)
	}

	resp, err := http.Get(ts.URL + "/debug/slow")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var page struct {
		Retained int        `json:"retained"`
		Runs     []*SlowRun `json:"runs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		t.Fatal(err)
	}
	if page.Retained < 2 {
		t.Fatalf("retained = %d, want >= 2", page.Retained)
	}
	if page.Runs[0].Req != slow.Req {
		t.Errorf("slowest retained = %s, want the degraded grid run %s", page.Runs[0].Req, slow.Req)
	}
	if len(page.Runs[0].Events) == 0 {
		t.Error("slowest run retained no events — the whole point of the ring")
	}
	if page.Runs[0].Timings == nil || page.Runs[0].Timings.Total <= 0 {
		t.Errorf("slowest run has no timings: %+v", page.Runs[0].Timings)
	}
	for i := 1; i < len(page.Runs); i++ {
		if page.Runs[i].Elapsed > page.Runs[i-1].Elapsed {
			t.Errorf("slow runs not sorted slowest-first at %d", i)
		}
	}
}

// TestSlowRingDisabled pins the negative-SlowN contract: no retention, no
// capture cost, /debug/slow still answers.
func TestSlowRingDisabled(t *testing.T) {
	s := New(Config{SlowN: -1})
	ts := httptest.NewServer(s)
	defer ts.Close()

	postDecompose(t, ts, "algo=bb-ghw", []byte(cycle6HG))
	if runs := s.SlowRuns(); runs != nil {
		t.Fatalf("disabled ring retained %d runs", len(runs))
	}
	hr, err := http.Get(ts.URL + "/debug/slow")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var page struct {
		Retained int `json:"retained"`
	}
	if err := json.NewDecoder(hr.Body).Decode(&page); err != nil {
		t.Fatal(err)
	}
	if page.Retained != 0 {
		t.Fatalf("disabled ring reports %d retained", page.Retained)
	}
}

// TestDrainingRejectCarriesRetryAfter covers the 503 parity satellite: both
// draining reject sites must hint a retry, like the 429 path always has.
func TestDrainingRejectCarriesRetryAfter(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()

	drained := make(chan struct{})
	go func() {
		s.Drain(time.Second)
		close(drained)
	}()
	waitFor(t, 2*time.Second, func() bool { return s.Draining() })

	hr, resp := postDecompose(t, ts, "", []byte(cycle6HG))
	if hr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", hr.StatusCode)
	}
	if got := hr.Header.Get("Retry-After"); got != "1" {
		t.Fatalf("Retry-After = %q, want \"1\"", got)
	}
	if resp.RetrySeconds != 1 {
		t.Fatalf("retry_after_s = %d, want 1", resp.RetrySeconds)
	}
	<-drained
}

// TestAccessLog checks the structured one-line-JSON access log: one line
// per finished request, parseable, carrying outcome/status/timings.
func TestAccessLog(t *testing.T) {
	var logBuf syncBuffer
	s := New(Config{AccessLog: &logBuf})
	ts := httptest.NewServer(s)
	defer ts.Close()

	postDecompose(t, ts, "algo=bb-ghw", []byte(cycle6HG))
	http.Post(ts.URL+"/decompose?algo=nope", "text/plain", strings.NewReader(cycle6HG))

	lines := bytes.Split(bytes.TrimSpace(logBuf.Bytes()), []byte("\n"))
	if len(lines) != 2 {
		t.Fatalf("access log has %d lines, want 2:\n%s", len(lines), logBuf.Bytes())
	}
	var first, second map[string]any
	if err := json.Unmarshal(lines[0], &first); err != nil {
		t.Fatalf("line 1 not JSON: %v", err)
	}
	if err := json.Unmarshal(lines[1], &second); err != nil {
		t.Fatalf("line 2 not JSON: %v", err)
	}
	if first["outcome"] != "exact" || first["status"] != float64(200) {
		t.Errorf("first line outcome/status = %v/%v", first["outcome"], first["status"])
	}
	if first["width"] != float64(2) {
		t.Errorf("first line width = %v, want 2", first["width"])
	}
	if _, ok := first["timings"].(map[string]any); !ok {
		t.Errorf("first line has no timings object: %v", first)
	}
	if second["outcome"] != "rejected" || second["status"] != float64(400) {
		t.Errorf("second line outcome/status = %v/%v", second["outcome"], second["status"])
	}
}

// TestRequestHistogramsPopulated checks /metrics grows the latency families
// after a burst: per-outcome request histograms with cumulative buckets, the
// queue-wait histogram, and P50/P95/P99 summaries.
func TestRequestHistogramsPopulated(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()

	for i := 0; i < 3; i++ {
		postDecompose(t, ts, "algo=bb-ghw", []byte(cycle6HG))
	}
	http.Post(ts.URL+"/decompose?algo=nope", "text/plain", strings.NewReader(cycle6HG))

	hr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var out bytes.Buffer
	out.ReadFrom(hr.Body)
	body := out.String()

	for _, want := range []string{
		`hypertree_daemon_request_seconds_bucket{outcome="exact",le="+Inf"}`,
		`hypertree_daemon_request_seconds_count{outcome="exact"}`,
		"# TYPE hypertree_daemon_request_seconds histogram",
		"# TYPE hypertree_daemon_queue_wait_seconds histogram",
		`hypertree_daemon_request_latency_seconds{quantile="0.5"}`,
		`hypertree_daemon_request_latency_seconds{quantile="0.95"}`,
		`hypertree_daemon_request_latency_seconds{quantile="0.99"}`,
		`hypertree_daemon_phase_seconds{phase="solve",quantile="0.95"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// The exact-outcome count matches what was served (3 solves; a 4th
	// would be a cache hit — still exact).
	if !strings.Contains(body, `hypertree_daemon_request_seconds_count{outcome="exact"} 3`) {
		t.Errorf("exact request count not 3:\n%s", grepLines(body, "request_seconds_count"))
	}
}

func grepLines(s, substr string) string {
	var b strings.Builder
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, substr) {
			fmt.Fprintln(&b, line)
		}
	}
	return b.String()
}
