package elimgraph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hypertree/internal/hypergraph"
)

// fig52Graph builds the 6-vertex graph of thesis Figure 5.2(a):
// vertices 1..6 (ids 0..5) with edges 1-2, 1-3, 2-3, 2-6, 3-4, 4-5, 5-6.
func fig52Graph() *hypergraph.Graph {
	g := hypergraph.NewGraph(6)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 2)
	g.AddEdge(1, 5)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	g.AddEdge(4, 5)
	return g
}

// Thesis Figure 5.2: eliminating vertex 6 connects its neighbors {2,5};
// eliminating vertex 2 then connects {1,3,5} pairwise.
func TestFigure52Elimination(t *testing.T) {
	e := New(fig52Graph())
	// Eliminate vertex 6 (id 5): neighbors are 2 (id 1) and 5 (id 4).
	d := e.Eliminate(5)
	if d != 2 {
		t.Fatalf("degree of vertex 6 at elimination = %d, want 2", d)
	}
	if !e.HasEdge(1, 4) {
		t.Fatal("fill edge 2-5 missing after eliminating 6")
	}
	// Eliminate vertex 2 (id 1): neighbors now 1 (id 0), 3 (id 2), 5 (id 4).
	d = e.Eliminate(1)
	if d != 3 {
		t.Fatalf("degree of vertex 2 at elimination = %d, want 3", d)
	}
	for _, pair := range [][2]int{{0, 2}, {0, 4}, {2, 4}} {
		if !e.HasEdge(pair[0], pair[1]) {
			t.Errorf("missing fill/induced edge %v after eliminating 2", pair)
		}
	}
	if e.Live() != 4 {
		t.Fatalf("live = %d, want 4", e.Live())
	}
	// Restoring both returns to the original graph.
	if got := e.Restore(); got != 1 {
		t.Fatalf("restore returned %d, want 1", got)
	}
	if got := e.Restore(); got != 5 {
		t.Fatalf("restore returned %d, want 5", got)
	}
	assertEqualsGraph(t, e, fig52Graph())
}

func assertEqualsGraph(t *testing.T, e *ElimGraph, g *hypergraph.Graph) {
	t.Helper()
	if e.Live() != g.N() {
		t.Fatalf("live = %d, want %d", e.Live(), g.N())
	}
	for u := 0; u < g.N(); u++ {
		for v := 0; v < g.N(); v++ {
			if u == v {
				continue
			}
			if e.HasEdge(u, v) != g.HasEdge(u, v) {
				t.Fatalf("edge (%d,%d): elim=%v graph=%v", u, v, e.HasEdge(u, v), g.HasEdge(u, v))
			}
		}
		if e.Degree(u) != g.Degree(u) {
			t.Fatalf("degree(%d): elim=%d graph=%d", u, e.Degree(u), g.Degree(u))
		}
	}
}

func TestNeighborsFiltersEliminated(t *testing.T) {
	e := New(fig52Graph())
	e.Eliminate(5)
	ns := e.Neighbors(1, nil)
	for _, u := range ns {
		if u == 5 {
			t.Fatal("eliminated vertex returned as neighbor")
		}
	}
	// Vertex 2 (id 1) gained fill-neighbor 5 (id 4).
	found := false
	for _, u := range ns {
		if u == 4 {
			found = true
		}
	}
	if !found {
		t.Fatal("fill neighbor missing from Neighbors")
	}
}

func TestFillCountAndSimplicial(t *testing.T) {
	g := hypergraph.NewGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(0, 3)
	g.AddEdge(1, 2)
	e := New(g)
	// N(0) = {1,2,3}; 1-2 present, 1-3 and 2-3 missing: fill = 2.
	if got := e.FillCount(0); got != 2 {
		t.Fatalf("FillCount(0) = %d, want 2", got)
	}
	// Vertex 3 has a single neighbor: simplicial.
	if !e.IsSimplicial(3) {
		t.Fatal("leaf should be simplicial")
	}
	if e.IsSimplicial(0) {
		t.Fatal("vertex 0 should not be simplicial")
	}
	// Vertex 0 is almost simplicial: removing 3 from N(0) leaves clique {1,2}.
	if !e.IsAlmostSimplicial(0) {
		t.Fatal("vertex 0 should be almost simplicial")
	}
	// A simplicial vertex is not almost simplicial.
	if e.IsAlmostSimplicial(3) {
		t.Fatal("simplicial vertex reported almost simplicial")
	}
}

func TestIsAlmostSimplicialNeedsSingleBlocker(t *testing.T) {
	// C5: every vertex has two non-adjacent neighbors; removing either one
	// leaves a single vertex (a clique), so C5 vertices ARE almost simplicial.
	c5 := hypergraph.NewGraph(5)
	for i := 0; i < 5; i++ {
		c5.AddEdge(i, (i+1)%5)
	}
	e := New(c5)
	if !e.IsAlmostSimplicial(0) {
		t.Fatal("C5 vertex should be almost simplicial")
	}
	// C6 with chords making N(0)'s missing pairs share no endpoint:
	// N(0)={1,2,3,4}, edges 1-2, 3-4 only; missing 1-3,1-4,2-3,2-4: no single
	// endpoint covers all misses.
	g := hypergraph.NewGraph(5)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(0, 3)
	g.AddEdge(0, 4)
	g.AddEdge(1, 2)
	g.AddEdge(3, 4)
	e2 := New(g)
	if e2.IsAlmostSimplicial(0) {
		t.Fatal("vertex 0 should not be almost simplicial")
	}
}

func TestSetPrefix(t *testing.T) {
	g := hypergraph.Queen(4)
	e := New(g)
	e.SetPrefix([]int{3, 7, 1})
	if e.Depth() != 3 || e.Live() != g.N()-3 {
		t.Fatalf("depth=%d live=%d", e.Depth(), e.Live())
	}
	// Switch to a sibling prefix sharing the first two entries.
	e.SetPrefix([]int{3, 7, 2, 9})
	st := e.Stack()
	want := []int{3, 7, 2, 9}
	if len(st) != len(want) {
		t.Fatalf("stack = %v, want %v", st, want)
	}
	for i := range st {
		if st[i] != want[i] {
			t.Fatalf("stack = %v, want %v", st, want)
		}
	}
	// Full reset matches a fresh graph.
	e.SetPrefix(nil)
	assertEqualsGraph(t, e, g)
}

func TestResetAfterDeepElimination(t *testing.T) {
	g := hypergraph.Queen(5)
	e := New(g)
	order := rand.New(rand.NewSource(1)).Perm(g.N())
	for _, v := range order[:20] {
		e.Eliminate(v)
	}
	e.Reset()
	assertEqualsGraph(t, e, g)
}

func TestEliminateTwicePanics(t *testing.T) {
	e := New(fig52Graph())
	e.Eliminate(0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.Eliminate(0)
}

func TestRestoreEmptyPanics(t *testing.T) {
	e := New(fig52Graph())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.Restore()
}

// Property: eliminate a random sequence then restore everything; the result
// must equal the original graph (adjacency and degrees).
func TestEliminateRestoreRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(12)
		m := rng.Intn(n*(n-1)/2 + 1)
		g := hypergraph.RandomGraph(n, m, seed)
		e := New(g)
		k := rng.Intn(n + 1)
		perm := rng.Perm(n)
		for _, v := range perm[:k] {
			e.Eliminate(v)
		}
		e.Reset()
		for u := 0; u < n; u++ {
			if e.Degree(u) != g.Degree(u) {
				return false
			}
			for v := 0; v < n; v++ {
				if u != v && e.HasEdge(u, v) != g.HasEdge(u, v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: after eliminating v, its former live neighbors form a clique.
func TestEliminationCreatesCliqueProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(10)
		g := hypergraph.RandomGraph(n, n, seed)
		e := New(g)
		v := rng.Intn(n)
		ns := append([]int(nil), e.Neighbors(v, nil)...)
		e.Eliminate(v)
		for i := 0; i < len(ns); i++ {
			for j := i + 1; j < len(ns); j++ {
				if !e.HasEdge(ns[i], ns[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: Snapshot agrees with HasEdge on every pair.
func TestSnapshotProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(8)
		g := hypergraph.RandomGraph(n, n+2, seed)
		e := New(g)
		for _, v := range rng.Perm(n)[:n/2] {
			e.Eliminate(v)
		}
		snap := e.Snapshot()
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				live := !e.Eliminated(u) && !e.Eliminated(v)
				if snap.HasEdge(u, v) != (live && e.HasEdge(u, v)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
