// Package elimgraph implements the dynamic elimination-graph data structure
// of thesis §5.2.1 (Figure 5.2): a graph that supports eliminating a vertex
// (connect all its live neighbors pairwise, then remove it) and restoring the
// most recently eliminated vertex, in LIFO order.
//
// The thesis stores three structures: growing adjacency lists A, a table E of
// list lengths after each elimination step, and an adjacency matrix T. This
// implementation keeps A and T and replaces E by explicit per-step undo
// records (the eliminated vertex, its neighbors, and the fill edges added),
// which encode exactly the same information and restore in O(size of step).
//
// A single ElimGraph is shared across an entire branch-and-bound or A*
// search: moving between search states is done by restoring to the common
// prefix and eliminating forward (thesis §5.2.1, "common postfix" remark).
package elimgraph

import (
	"fmt"

	"hypertree/internal/hypergraph"
)

// ElimGraph is a mutable elimination graph over vertices 0..n-1.
type ElimGraph struct {
	n          int
	adj        [][]int // A: append-only within a step; popped on restore
	matrix     []bool  // T: n*n adjacency among live vertices
	eliminated []bool
	deg        []int // live degree, maintained incrementally
	live       int
	undo       []step
}

type step struct {
	v         int
	neighbors []int    // live neighbors of v at elimination time
	fills     [][2]int // edges added (in order) when v was eliminated
}

// New builds an elimination graph from a simple graph.
func New(g *hypergraph.Graph) *ElimGraph {
	n := g.N()
	e := &ElimGraph{
		n:          n,
		adj:        make([][]int, n),
		matrix:     make([]bool, n*n),
		eliminated: make([]bool, n),
		deg:        make([]int, n),
		live:       n,
	}
	for v := 0; v < n; v++ {
		ns := g.Neighbors(v)
		e.adj[v] = append(e.adj[v], ns...)
		e.deg[v] = len(ns)
		for _, u := range ns {
			e.matrix[v*n+u] = true
		}
	}
	return e
}

// FromHypergraph builds the elimination graph of a hypergraph's primal graph.
func FromHypergraph(h *hypergraph.Hypergraph) *ElimGraph {
	return New(h.PrimalGraph())
}

// N returns the total number of vertices (live + eliminated).
func (e *ElimGraph) N() int { return e.n }

// Live returns the number of vertices not yet eliminated.
func (e *ElimGraph) Live() int { return e.live }

// Eliminated reports whether v has been eliminated.
func (e *ElimGraph) Eliminated(v int) bool { return e.eliminated[v] }

// Depth returns the number of eliminations currently applied.
func (e *ElimGraph) Depth() int { return len(e.undo) }

// Stack returns the eliminated vertices in elimination order. The slice is
// freshly allocated.
func (e *ElimGraph) Stack() []int {
	out := make([]int, len(e.undo))
	for i, s := range e.undo {
		out[i] = s.v
	}
	return out
}

// HasEdge reports whether {u,v} is an edge of the current (filled) graph.
// Both endpoints must be live for a true result.
func (e *ElimGraph) HasEdge(u, v int) bool {
	return e.matrix[u*e.n+v]
}

// Degree returns the live degree of v. Undefined for eliminated vertices.
func (e *ElimGraph) Degree(v int) int { return e.deg[v] }

// Neighbors appends the live neighbors of v to buf and returns it. Pass a
// reusable buffer to avoid allocation in hot loops.
func (e *ElimGraph) Neighbors(v int, buf []int) []int {
	buf = buf[:0]
	row := v * e.n
	for _, u := range e.adj[v] {
		if !e.eliminated[u] && e.matrix[row+u] {
			buf = append(buf, u)
		}
	}
	return buf
}

// LiveVertices appends all live vertices to buf (ascending) and returns it.
func (e *ElimGraph) LiveVertices(buf []int) []int {
	buf = buf[:0]
	for v := 0; v < e.n; v++ {
		if !e.eliminated[v] {
			buf = append(buf, v)
		}
	}
	return buf
}

// FillCount returns the number of edges that eliminating v would add: the
// missing adjacencies among v's live neighbors. Used by the min-fill
// heuristic.
func (e *ElimGraph) FillCount(v int) int {
	ns := e.Neighbors(v, nil)
	fill := 0
	for i := 0; i < len(ns); i++ {
		row := ns[i] * e.n
		for j := i + 1; j < len(ns); j++ {
			if !e.matrix[row+ns[j]] {
				fill++
			}
		}
	}
	return fill
}

// IsSimplicial reports whether v's live neighborhood is a clique.
func (e *ElimGraph) IsSimplicial(v int) bool {
	return e.FillCount(v) == 0
}

// IsAlmostSimplicial reports whether all but one of v's live neighbors form a
// clique, i.e. there is a neighbor u whose removal makes N(v) a clique.
// A simplicial vertex is not reported as almost simplicial.
func (e *ElimGraph) IsAlmostSimplicial(v int) bool {
	ns := e.Neighbors(v, nil)
	if len(ns) < 2 {
		return false
	}
	// Count missing pairs per neighbor. v is almost simplicial via u iff u is
	// an endpoint of every missing pair.
	missTotal := 0
	missCount := make(map[int]int)
	for i := 0; i < len(ns); i++ {
		row := ns[i] * e.n
		for j := i + 1; j < len(ns); j++ {
			if !e.matrix[row+ns[j]] {
				missTotal++
				missCount[ns[i]]++
				missCount[ns[j]]++
			}
		}
	}
	if missTotal == 0 {
		return false // simplicial, not almost simplicial
	}
	for _, c := range missCount {
		if c == missTotal {
			return true
		}
	}
	return false
}

// Eliminate removes v from the live graph after pairwise-connecting its live
// neighbors, and returns the degree v had at elimination time. It panics if
// v is already eliminated.
func (e *ElimGraph) Eliminate(v int) int {
	if e.eliminated[v] {
		panic(fmt.Sprintf("elimgraph: vertex %d already eliminated", v))
	}
	ns := e.Neighbors(v, nil)
	st := step{v: v, neighbors: ns}
	// Add fill edges.
	for i := 0; i < len(ns); i++ {
		a := ns[i]
		row := a * e.n
		for j := i + 1; j < len(ns); j++ {
			b := ns[j]
			if !e.matrix[row+b] {
				e.matrix[row+b] = true
				e.matrix[b*e.n+a] = true
				e.adj[a] = append(e.adj[a], b)
				e.adj[b] = append(e.adj[b], a)
				e.deg[a]++
				e.deg[b]++
				st.fills = append(st.fills, [2]int{a, b})
			}
		}
	}
	// Detach v.
	for _, u := range ns {
		e.matrix[v*e.n+u] = false
		e.matrix[u*e.n+v] = false
		e.deg[u]--
	}
	e.eliminated[v] = true
	e.live--
	e.undo = append(e.undo, st)
	return len(ns)
}

// Restore undoes the most recent elimination and returns the restored
// vertex. It panics if nothing has been eliminated.
func (e *ElimGraph) Restore() int {
	if len(e.undo) == 0 {
		panic("elimgraph: nothing to restore")
	}
	st := e.undo[len(e.undo)-1]
	e.undo = e.undo[:len(e.undo)-1]
	// Remove fill edges in reverse order so adjacency-list tails pop cleanly.
	for i := len(st.fills) - 1; i >= 0; i-- {
		a, b := st.fills[i][0], st.fills[i][1]
		e.matrix[a*e.n+b] = false
		e.matrix[b*e.n+a] = false
		e.adj[a] = e.adj[a][:len(e.adj[a])-1]
		e.adj[b] = e.adj[b][:len(e.adj[b])-1]
		e.deg[a]--
		e.deg[b]--
	}
	// Reattach v.
	v := st.v
	for _, u := range st.neighbors {
		e.matrix[v*e.n+u] = true
		e.matrix[u*e.n+v] = true
		e.deg[u]++
	}
	e.eliminated[v] = false
	e.live++
	return v
}

// LastStep returns the most recent elimination: the eliminated vertex, its
// live neighbors at elimination time, and the fill edges it added. The
// slices are owned by the graph and valid until the next Eliminate/Restore.
// It panics if nothing has been eliminated.
func (e *ElimGraph) LastStep() (v int, clique []int, fills [][2]int) {
	if len(e.undo) == 0 {
		panic("elimgraph: no eliminations")
	}
	st := e.undo[len(e.undo)-1]
	return st.v, st.neighbors, st.fills
}

// Reset restores the graph to its initial state.
func (e *ElimGraph) Reset() {
	for len(e.undo) > 0 {
		e.Restore()
	}
}

// SetPrefix transforms the graph so that exactly the vertices of prefix are
// eliminated, in order. It restores to the longest common prefix with the
// current elimination stack and then eliminates forward — the thesis's
// "common postfix" optimization for moving between A* search states.
func (e *ElimGraph) SetPrefix(prefix []int) {
	common := 0
	for common < len(e.undo) && common < len(prefix) && e.undo[common].v == prefix[common] {
		common++
	}
	for len(e.undo) > common {
		e.Restore()
	}
	for i := common; i < len(prefix); i++ {
		e.Eliminate(prefix[i])
	}
}

// Snapshot returns an independent simple graph equal to the current live
// filled graph. Vertex ids are preserved; eliminated vertices are isolated.
func (e *ElimGraph) Snapshot() *hypergraph.Graph {
	g := hypergraph.NewGraph(e.n)
	for v := 0; v < e.n; v++ {
		if e.eliminated[v] {
			continue
		}
		row := v * e.n
		for u := v + 1; u < e.n; u++ {
			if !e.eliminated[u] && e.matrix[row+u] {
				g.AddEdge(v, u)
			}
		}
	}
	return g
}
