package bitset

import (
	"math/rand"
	"testing"
)

// TestNextSetBit checks the cursor iterator against ForEach on random sets,
// including word-boundary members and out-of-range cursors.
func TestNextSetBit(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(200)
		s := New(n)
		var want []int
		for v := 0; v < n; v++ {
			if rng.Intn(3) == 0 {
				s.Add(v)
				want = append(want, v)
			}
		}
		var got []int
		for v := s.NextSetBit(0); v >= 0; v = s.NextSetBit(v + 1) {
			got = append(got, v)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d members, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: member %d = %d, want %d", trial, i, got[i], want[i])
			}
		}
		if v := s.NextSetBit(n + 64); v != -1 {
			t.Fatalf("trial %d: cursor past the set returned %d", trial, v)
		}
		if v := s.NextSetBit(-5); len(want) > 0 && v != want[0] {
			t.Fatalf("trial %d: negative cursor returned %d, want %d", trial, v, want[0])
		}
	}
}

func TestNextSetBitWordEdges(t *testing.T) {
	s := New(130)
	for _, v := range []int{0, 63, 64, 127, 128, 129} {
		s.Add(v)
	}
	want := []int{0, 63, 64, 127, 128, 129}
	for i, from := range []int{0, 1, 64, 65, 128, 129} {
		if got := s.NextSetBit(from); got != want[i] {
			t.Errorf("NextSetBit(%d) = %d, want %d", from, got, want[i])
		}
	}
	if got := s.NextSetBit(130); got != -1 {
		t.Errorf("NextSetBit(130) = %d, want -1", got)
	}
}

// BenchmarkIterate pins the iteration paths at zero allocations per pass
// (they sit inside the cover engine's restriction loop, the hottest loop of
// the exact searches).
func BenchmarkIterate(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	s := New(512)
	for v := 0; v < 512; v++ {
		if rng.Intn(4) == 0 {
			s.Add(v)
		}
	}
	b.Run("NextSetBit", func(b *testing.B) {
		b.ReportAllocs()
		sum := 0
		for i := 0; i < b.N; i++ {
			for v := s.NextSetBit(0); v >= 0; v = s.NextSetBit(v + 1) {
				sum += v
			}
		}
		sinkInt = sum
	})
	b.Run("ForEach", func(b *testing.B) {
		b.ReportAllocs()
		sum := 0
		for i := 0; i < b.N; i++ {
			s.ForEach(func(v int) { sum += v })
		}
		sinkInt = sum
	})
}

var sinkInt int
