package bitset

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestBasicOps(t *testing.T) {
	s := New(130)
	for _, v := range []int{0, 63, 64, 65, 129} {
		s.Add(v)
	}
	if s.Count() != 5 {
		t.Fatalf("count = %d, want 5", s.Count())
	}
	if !s.Contains(64) || s.Contains(1) {
		t.Fatal("membership wrong")
	}
	s.Remove(64)
	if s.Contains(64) || s.Count() != 4 {
		t.Fatal("remove failed")
	}
	got := s.AppendTo(nil)
	want := []int{0, 63, 65, 129}
	if len(got) != len(want) {
		t.Fatalf("AppendTo = %v", got)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("AppendTo = %v, want %v", got, want)
		}
	}
	sum := 0
	s.ForEach(func(v int) { sum += v })
	if sum != 0+63+65+129 {
		t.Fatalf("ForEach sum = %d", sum)
	}
}

func TestEmptyAndClear(t *testing.T) {
	s := New(0)
	if s.Any() || s.Count() != 0 {
		t.Fatal("empty-capacity set should be empty")
	}
	s = FromInts(100, []int{3, 99})
	s.Clear()
	if s.Any() {
		t.Fatal("Clear left elements")
	}
}

// Mirror set semantics against Go maps on random operation sequences.
func TestAgainstMapModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		a, b := New(n), New(n)
		ma, mb := map[int]bool{}, map[int]bool{}
		for i := 0; i < 300; i++ {
			v := rng.Intn(n)
			switch rng.Intn(4) {
			case 0:
				a.Add(v)
				ma[v] = true
			case 1:
				a.Remove(v)
				delete(ma, v)
			case 2:
				b.Add(v)
				mb[v] = true
			case 3:
				b.Remove(v)
				delete(mb, v)
			}
		}
		inter, uni, diff := 0, map[int]bool{}, 0
		subset, intersects := true, false
		for v := range ma {
			uni[v] = true
			if mb[v] {
				inter++
				intersects = true
			} else {
				diff++
				subset = false
			}
		}
		for v := range mb {
			uni[v] = true
		}
		if a.AndCount(b) != inter || a.SubsetOf(b) != subset || a.Intersects(b) != intersects {
			return false
		}
		c := a.Clone()
		c.And(b)
		if c.Count() != inter {
			return false
		}
		c.CopyFrom(a)
		c.AndNot(b)
		if c.Count() != diff {
			return false
		}
		c.CopyFrom(a)
		c.Or(b)
		if c.Count() != len(uni) {
			return false
		}
		want := make([]int, 0, len(ma))
		for v := range ma {
			want = append(want, v)
		}
		sort.Ints(want)
		got := a.AppendTo(nil)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestKeyUniqueness(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	seen := map[string]string{} // key -> canonical element string
	var buf []byte
	for i := 0; i < 2000; i++ {
		s := New(300)
		for j := 0; j < rng.Intn(12); j++ {
			s.Add(rng.Intn(300))
		}
		buf = s.AppendKey(buf[:0])
		elems := ""
		s.ForEach(func(v int) { elems += "," + string(rune(v)) })
		if prev, ok := seen[string(buf)]; ok && prev != elems {
			t.Fatalf("key collision: %q vs %q", prev, elems)
		}
		seen[string(buf)] = elems
	}
	// Equal sets must produce equal keys even across capacities' zero tails.
	a := FromInts(64, []int{1, 2})
	b := FromInts(640, []int{1, 2})
	if string(a.AppendKey(nil)) != string(b.AppendKey(nil)) {
		t.Fatal("trailing-zero trim should make equal sets key-equal")
	}
}

func TestEqual(t *testing.T) {
	a := FromInts(70, []int{0, 69})
	b := FromInts(70, []int{0, 69})
	if !a.Equal(b) {
		t.Fatal("equal sets not Equal")
	}
	b.Add(5)
	if a.Equal(b) {
		t.Fatal("unequal sets Equal")
	}
	if a.Equal(New(10)) {
		t.Fatal("different capacities should not be Equal")
	}
}

func TestPool(t *testing.T) {
	p := NewPool(100)
	s := p.Get()
	s.Add(42)
	p.Put(s)
	s2 := p.Get()
	if s2.Any() {
		t.Fatal("pooled set not cleared on Get")
	}
	if len(s2) != Words(100) {
		t.Fatalf("pooled set has %d words", len(s2))
	}
	p.Put(s2)
	if len(p.free) != 1 {
		t.Fatalf("pool free list = %d, want 1", len(p.free))
	}
}
