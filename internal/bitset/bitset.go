// Package bitset implements the word-packed vertex/edge sets underlying the
// set-cover engine: fixed-capacity bitsets with the boolean algebra the
// cover algorithms need (And/AndNot/Or, popcount, subset test, intersection
// counting), plus a pooled scratch allocator so the search hot paths reuse
// word slices instead of allocating per bag.
//
// A Set is a plain []uint64; the zero-length Set is a valid empty set. All
// operations treat bits beyond the constructed capacity as absent, and
// binary operations require both operands to come from the same capacity
// (same word count) — the callers in this repository always size sets to a
// fixed universe (the hypergraph's vertices, a bag's element positions).
package bitset

import "math/bits"

const wordBits = 64

// Set is a fixed-capacity bitset over elements 0..cap-1, packed 64 per word.
type Set []uint64

// Words returns the number of words needed for capacity n.
func Words(n int) int { return (n + wordBits - 1) / wordBits }

// New returns an empty set with capacity for elements 0..n-1.
func New(n int) Set { return make(Set, Words(n)) }

// FromInts returns a new set of capacity n holding the given elements.
func FromInts(n int, elems []int) Set {
	s := New(n)
	for _, v := range elems {
		s.Add(v)
	}
	return s
}

// Add inserts v. The caller must keep v within the constructed capacity.
func (s Set) Add(v int) { s[v/wordBits] |= 1 << (uint(v) % wordBits) }

// Remove deletes v.
func (s Set) Remove(v int) { s[v/wordBits] &^= 1 << (uint(v) % wordBits) }

// Contains reports whether v is in the set.
func (s Set) Contains(v int) bool { return s[v/wordBits]&(1<<(uint(v)%wordBits)) != 0 }

// Clear empties the set in place.
func (s Set) Clear() {
	for i := range s {
		s[i] = 0
	}
}

// CopyFrom overwrites s with o (same capacity).
func (s Set) CopyFrom(o Set) { copy(s, o) }

// Clone returns an independent copy of s.
func (s Set) Clone() Set { return append(Set(nil), s...) }

// Any reports whether the set is non-empty.
func (s Set) Any() bool {
	for _, w := range s {
		if w != 0 {
			return true
		}
	}
	return false
}

// Count returns the number of elements (population count).
func (s Set) Count() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

// And intersects s with o in place.
func (s Set) And(o Set) {
	for i := range s {
		s[i] &= o[i]
	}
}

// AndNot removes every element of o from s in place.
func (s Set) AndNot(o Set) {
	for i := range s {
		s[i] &^= o[i]
	}
}

// Or adds every element of o to s in place.
func (s Set) Or(o Set) {
	for i := range s {
		s[i] |= o[i]
	}
}

// AndCount returns |s ∩ o| without materializing the intersection — the
// greedy cover's gain computation.
func (s Set) AndCount(o Set) int {
	n := 0
	for i, w := range s {
		n += bits.OnesCount64(w & o[i])
	}
	return n
}

// SubsetOf reports whether every element of s is in o.
func (s Set) SubsetOf(o Set) bool {
	for i, w := range s {
		if w&^o[i] != 0 {
			return false
		}
	}
	return true
}

// Intersects reports whether s and o share an element.
func (s Set) Intersects(o Set) bool {
	for i, w := range s {
		if w&o[i] != 0 {
			return true
		}
	}
	return false
}

// Equal reports whether s and o hold exactly the same elements.
func (s Set) Equal(o Set) bool {
	if len(s) != len(o) {
		return false
	}
	for i, w := range s {
		if w != o[i] {
			return false
		}
	}
	return true
}

// NextSetBit returns the smallest element >= from, or -1 when no such
// element exists. It is the allocation-free iteration primitive of the cover
// engine's hot paths:
//
//	for v := s.NextSetBit(0); v >= 0; v = s.NextSetBit(v + 1) { ... }
//
// Unlike ForEach it needs no closure, so loop bodies that write to captured
// locals stay off the heap.
func (s Set) NextSetBit(from int) int {
	if from < 0 {
		from = 0
	}
	i := from / wordBits
	if i >= len(s) {
		return -1
	}
	if w := s[i] >> (uint(from) % wordBits); w != 0 {
		return from + bits.TrailingZeros64(w)
	}
	for i++; i < len(s); i++ {
		if w := s[i]; w != 0 {
			return i*wordBits + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// ForEach calls fn for every element in ascending order.
func (s Set) ForEach(fn func(v int)) {
	for i, w := range s {
		base := i * wordBits
		for w != 0 {
			fn(base + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// AppendTo appends the elements in ascending order to buf and returns it.
func (s Set) AppendTo(buf []int) []int {
	for i, w := range s {
		base := i * wordBits
		for w != 0 {
			buf = append(buf, base+bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
	return buf
}

// AppendKey appends a compact byte encoding of the set to dst and returns
// it. Two sets of the same capacity encode equally iff they are equal;
// trailing zero words are trimmed so sparse sets over large universes stay
// short. Use string(s.AppendKey(buf[:0])) as a map key.
func (s Set) AppendKey(dst []byte) []byte {
	last := len(s) - 1
	for last >= 0 && s[last] == 0 {
		last--
	}
	for i := 0; i <= last; i++ {
		w := s[i]
		dst = append(dst,
			byte(w), byte(w>>8), byte(w>>16), byte(w>>24),
			byte(w>>32), byte(w>>40), byte(w>>48), byte(w>>56))
	}
	return dst
}

// Pool is a free list of equal-capacity scratch sets. The cover engine's
// branch-and-bound allocates and releases one set per restriction pass;
// pooling keeps that allocation-free after warm-up. A Pool is not safe for
// concurrent use — each worker owns its own (they are scratch state, like
// the evaluators).
type Pool struct {
	n    int
	free []Set
}

// NewPool returns a pool of sets with capacity for elements 0..n-1.
func NewPool(n int) *Pool { return &Pool{n: n} }

// Get returns an empty set from the pool (or a fresh one).
func (p *Pool) Get() Set {
	if k := len(p.free); k > 0 {
		s := p.free[k-1]
		p.free = p.free[:k-1]
		s.Clear()
		return s
	}
	return New(p.n)
}

// Put returns a set obtained from Get to the pool.
func (p *Pool) Put(s Set) { p.free = append(p.free, s) }
