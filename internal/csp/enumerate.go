package csp

import (
	"fmt"

	"hypertree/internal/decomp"
)

// EnumerateFromTD enumerates complete consistent assignments of c from a
// tree decomposition, backtrack-free after one bottom-up semijoin pass
// (the "all complete consistent assignments" use of decompositions, thesis
// §2.2.1/§2.4). At most limit assignments are produced (limit <= 0 means
// all); the total work is polynomial in the output size for fixed width.
// Variables in no bag are fixed to their first domain value rather than
// expanded, keeping the output focused on the constrained part.
func EnumerateFromTD(c *CSP, td *decomp.TreeDecomposition, limit int) [][]Value {
	if err := td.Validate(c.Hypergraph()); err != nil {
		panic(fmt.Sprintf("csp: invalid tree decomposition: %v", err))
	}
	placed := PlaceConstraints(c, td.Bags)
	tables := make([]*Table, len(td.Bags))
	for i, bag := range td.Bags {
		tables[i] = enumerateBag(c, bag, placed[i])
		if len(bag) > 0 && len(tables[i].Rows) == 0 {
			return nil
		}
	}
	order := topDownOrder(td.Parent, td.Root)
	// Bottom-up semijoins establish directional consistency.
	for i := len(order) - 1; i >= 1; i-- {
		node := order[i]
		p := td.Parent[node]
		tables[p] = Semijoin(tables[p], tables[node])
		if len(tables[p].Vars) > 0 && len(tables[p].Rows) == 0 {
			return nil
		}
	}

	var out [][]Value
	assignment := make([]Value, c.NumVars)
	assigned := make([]bool, c.NumVars)
	for v := 0; v < c.NumVars; v++ {
		if len(c.Domains[v]) == 0 {
			return nil
		}
		assignment[v] = c.Domains[v][0]
	}

	var rec func(oi int) bool // returns false once the limit is hit
	rec = func(oi int) bool {
		if oi == len(order) {
			out = append(out, append([]Value(nil), assignment...))
			return limit <= 0 || len(out) < limit
		}
		node := order[oi]
		t := tables[node]
		rows := selectConsistent(t, assignment, assigned)
		for _, row := range rows {
			var touched []int
			for i, v := range t.Vars {
				if !assigned[v] {
					assigned[v] = true
					touched = append(touched, v)
				}
				assignment[v] = row[i]
			}
			ok := rec(oi + 1)
			for _, v := range touched {
				assigned[v] = false
			}
			if !ok {
				return false
			}
		}
		return true
	}
	rec(0)
	return out
}
