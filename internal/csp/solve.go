package csp

import (
	"fmt"

	"hypertree/internal/decomp"
	"hypertree/internal/hypergraph"
)

// SolveAcyclic solves an acyclic CSP from a join tree of its constraint
// hypergraph (thesis Figure 2.4, Algorithm Acyclic Solving). It returns a
// complete consistent assignment or nil. Variables constrained by no
// constraint receive their first domain value.
//
// jt must be a join tree of c.Hypergraph() (one node per constraint).
func SolveAcyclic(c *CSP, jt *hypergraph.JoinTree) []Value {
	m := len(c.Constraints)
	if m == 0 {
		return freeAssignment(c, nil, nil)
	}
	tables := make([]*Table, m)
	for i := range tables {
		tables[i] = domainTable(c, &c.Constraints[i])
	}
	order := topDownOrder(jt.Parent, jt.Root)
	// Bottom-up phase: semijoin each parent with its child.
	for i := len(order) - 1; i >= 1; i-- {
		node := order[i]
		parent := jt.Parent[node]
		tables[parent] = Semijoin(tables[parent], tables[node])
		if len(tables[parent].Rows) == 0 {
			return nil
		}
	}
	if len(tables[jt.Root].Rows) == 0 {
		return nil
	}
	// Top-down phase: select consistent tuples.
	assignment := make([]Value, c.NumVars)
	assigned := make([]bool, c.NumVars)
	for _, node := range order {
		rows := selectConsistent(tables[node], assignment, assigned)
		if len(rows) == 0 {
			// Cannot happen on a valid join tree after the bottom-up phase.
			panic(fmt.Sprintf("csp: top-down selection failed at node %d", node))
		}
		row := rows[0]
		for i, v := range tables[node].Vars {
			assignment[v] = row[i]
			assigned[v] = true
		}
	}
	return freeAssignment(c, assignment, assigned)
}

// PlaceConstraints assigns each constraint to the first node (in node order)
// whose bag contains its scope, returning node -> constraint indices. Every
// TD/GHD-based solver and the compiled query engine (internal/csp/engine)
// share this placement so their bag tables — and therefore their answers —
// agree exactly. Bags must cover every scope (guaranteed by Validate).
func PlaceConstraints(c *CSP, bags [][]int) [][]int {
	placed := make([][]int, len(bags))
	for ci := range c.Constraints {
		node := -1
		for i, bag := range bags {
			if containsAll(bag, c.Constraints[ci].Scope) {
				node = i
				break
			}
		}
		placed[node] = append(placed[node], ci)
	}
	return placed
}

// BagTable enumerates all assignments of the bag consistent with the given
// constraints (whose scopes lie inside the bag) — the node subproblem of
// join-tree clustering, exposed for the compiled query engine.
func (c *CSP) BagTable(bag []int, constraints []int) *Table {
	return enumerateBag(c, bag, constraints)
}

// TopDownOrder returns the tree nodes so that every node precedes its
// children (root first, then children in BFS layers). All solvers and the
// compiled engine traverse nodes in exactly this order, which is what makes
// their greedy picks and enumeration sequences comparable.
func TopDownOrder(parent []int, root int) []int {
	return topDownOrder(parent, root)
}

// SolveFromTD solves an arbitrary CSP from a tree decomposition of its
// constraint hypergraph using join-tree clustering (thesis §2.4): each
// decomposition node becomes the subproblem of enumerating all consistent
// assignments of its bag under the constraints placed there, and the
// resulting join tree is processed by Acyclic Solving. The work per node is
// O(d^(width+1)).
func SolveFromTD(c *CSP, td *decomp.TreeDecomposition) []Value {
	if err := td.Validate(c.Hypergraph()); err != nil {
		panic(fmt.Sprintf("csp: invalid tree decomposition: %v", err))
	}
	placed := PlaceConstraints(c, td.Bags)
	// Solve each node subproblem: all bag assignments consistent with the
	// constraints placed there.
	tables := make([]*Table, len(td.Bags))
	for i, bag := range td.Bags {
		tables[i] = enumerateBag(c, bag, placed[i])
		if len(bag) > 0 && len(tables[i].Rows) == 0 {
			return nil
		}
	}
	return acyclicOnTables(c, tables, td.Parent, td.Root)
}

// SolveFromGHD solves an arbitrary CSP from a complete generalized
// hypertree decomposition of its constraint hypergraph (thesis Figure 2.9):
// each node's relation is the projection onto its bag of the join of the
// relations in its λ-set, and the resulting join tree is processed by
// Acyclic Solving. The work per node is O(|I|^width · log|I|)-style — no
// enumeration over domains.
func SolveFromGHD(c *CSP, g *decomp.GHD) []Value {
	h := c.Hypergraph()
	if err := g.Validate(h); err != nil {
		panic(fmt.Sprintf("csp: invalid GHD: %v", err))
	}
	if !g.IsComplete(h) {
		panic("csp: SolveFromGHD requires a complete GHD (call Complete first)")
	}
	tables := make([]*Table, len(g.Bags))
	for i, bag := range g.Bags {
		if len(bag) == 0 {
			// The empty bag's relation is the nullary identity (one empty
			// tuple), not the empty relation.
			tables[i] = &Table{Rows: [][]Value{{}}}
			continue
		}
		var t *Table
		for _, e := range g.Lambdas[i] {
			et := domainTable(c, &c.Constraints[e])
			if t == nil {
				t = et
			} else {
				t = Join(t, et)
			}
		}
		if t == nil {
			t = &Table{}
		}
		tables[i] = Project(t, bag)
		if len(bag) > 0 && len(tables[i].Rows) == 0 {
			return nil
		}
	}
	return acyclicOnTables(c, tables, g.Parent, g.Root)
}

// acyclicOnTables runs the two phases of Acyclic Solving over per-node
// tables arranged in the given rooted tree.
func acyclicOnTables(c *CSP, tables []*Table, parent []int, root int) []Value {
	order := topDownOrder(parent, root)
	for i := len(order) - 1; i >= 1; i-- {
		node := order[i]
		p := parent[node]
		tables[p] = Semijoin(tables[p], tables[node])
		if len(tables[p].Vars) > 0 && len(tables[p].Rows) == 0 {
			return nil
		}
	}
	assignment := make([]Value, c.NumVars)
	assigned := make([]bool, c.NumVars)
	for _, node := range order {
		if len(tables[node].Vars) == 0 {
			continue
		}
		rows := selectConsistent(tables[node], assignment, assigned)
		if len(rows) == 0 {
			panic(fmt.Sprintf("csp: top-down selection failed at node %d", node))
		}
		row := rows[0]
		for i, v := range tables[node].Vars {
			assignment[v] = row[i]
			assigned[v] = true
		}
	}
	return freeAssignment(c, assignment, assigned)
}

// enumerateBag returns all assignments of the bag variables consistent with
// the given constraints (whose scopes lie inside the bag).
func enumerateBag(c *CSP, bag []int, constraints []int) *Table {
	t := &Table{Vars: append([]int(nil), bag...)}
	row := make([]Value, len(bag))
	pos := make(map[int]int, len(bag))
	for i, v := range bag {
		pos[v] = i
	}
	var rec func(i int)
	rec = func(i int) {
		if i == len(bag) {
			for _, ci := range constraints {
				con := &c.Constraints[ci]
				vals := make([]Value, len(con.Scope))
				for k, v := range con.Scope {
					vals[k] = row[pos[v]]
				}
				if !con.Allows(vals) {
					return
				}
			}
			t.Rows = append(t.Rows, append([]Value(nil), row...))
			return
		}
		for _, v := range c.Domains[bag[i]] {
			row[i] = v
			rec(i + 1)
		}
	}
	rec(0)
	return t
}

// topDownOrder returns the nodes so that every node precedes its children.
func topDownOrder(parent []int, root int) []int {
	children := make([][]int, len(parent))
	for i, p := range parent {
		if p >= 0 {
			children[p] = append(children[p], i)
		}
	}
	order := []int{root}
	for qi := 0; qi < len(order); qi++ {
		order = append(order, children[order[qi]]...)
	}
	return order
}

// freeAssignment extends a partial assignment with first-domain values for
// unassigned variables and verifies it only when complete.
func freeAssignment(c *CSP, assignment []Value, assigned []bool) []Value {
	if assignment == nil {
		assignment = make([]Value, c.NumVars)
		assigned = make([]bool, c.NumVars)
	}
	for v := 0; v < c.NumVars; v++ {
		if !assigned[v] {
			if len(c.Domains[v]) == 0 {
				return nil
			}
			assignment[v] = c.Domains[v][0]
		}
	}
	return assignment
}

// domainTable materializes a constraint as a table, dropping tuples with
// values outside the variables' domains (domains act as implicit unary
// constraints; brute force and bag enumeration respect them, so the
// relational solvers must too).
func domainTable(c *CSP, con *Constraint) *Table {
	t := &Table{Vars: append([]int(nil), con.Scope...)}
	for _, row := range con.Tuples {
		ok := true
		for i, v := range con.Scope {
			if !inDomain(c.Domains[v], row[i]) {
				ok = false
				break
			}
		}
		if ok {
			t.Rows = append(t.Rows, append([]Value(nil), row...))
		}
	}
	return t
}

func inDomain(domain []Value, x Value) bool {
	for _, d := range domain {
		if d == x {
			return true
		}
	}
	return false
}

func containsAll(sortedBag, subset []int) bool {
	for _, v := range subset {
		lo, hi := 0, len(sortedBag)
		found := false
		for lo < hi {
			mid := (lo + hi) / 2
			switch {
			case sortedBag[mid] == v:
				found = true
				lo = hi
			case sortedBag[mid] < v:
				lo = mid + 1
			default:
				hi = mid
			}
		}
		if !found {
			return false
		}
	}
	return true
}
