package csp

import (
	"sort"
	"strconv"
	"strings"
)

// Table is a relation with named columns: Vars lists the variable index of
// each column, Rows the tuples. The relational operators below are the ones
// Acyclic Solving needs (thesis §2.2.3): natural join, semijoin, projection.
type Table struct {
	Vars []int
	Rows [][]Value
}

// sharedColumns returns, for tables a and b, the column positions of their
// common variables (parallel slices).
func sharedColumns(a, b *Table) (ai, bi []int) {
	posB := make(map[int]int, len(b.Vars))
	for j, v := range b.Vars {
		posB[v] = j
	}
	for i, v := range a.Vars {
		if j, ok := posB[v]; ok {
			ai = append(ai, i)
			bi = append(bi, j)
		}
	}
	return
}

// key encodes the values of row at the given columns for hashing.
func key(row []Value, cols []int) string {
	var sb strings.Builder
	for _, c := range cols {
		sb.WriteString(strconv.Itoa(row[c]))
		sb.WriteByte('|')
	}
	return sb.String()
}

// Join computes the natural join a ⋈ b.
func Join(a, b *Table) *Table {
	ai, bi := sharedColumns(a, b)
	// Output columns: all of a, then b's non-shared.
	sharedB := make(map[int]bool, len(bi))
	for _, j := range bi {
		sharedB[j] = true
	}
	outVars := append([]int(nil), a.Vars...)
	var extraB []int
	for j, v := range b.Vars {
		if !sharedB[j] {
			outVars = append(outVars, v)
			extraB = append(extraB, j)
		}
	}
	// Hash rows of b by shared key.
	index := make(map[string][][]Value)
	for _, rb := range b.Rows {
		k := key(rb, bi)
		index[k] = append(index[k], rb)
	}
	out := &Table{Vars: outVars}
	for _, ra := range a.Rows {
		for _, rb := range index[key(ra, ai)] {
			row := make([]Value, 0, len(outVars))
			row = append(row, ra...)
			for _, j := range extraB {
				row = append(row, rb[j])
			}
			out.Rows = append(out.Rows, row)
		}
	}
	return out
}

// Semijoin computes a ⋉ b: the rows of a that join with at least one row of
// b. If a and b share no variables, a is returned unchanged when b is
// nonempty and emptied when b is empty (the join would be a cross product).
func Semijoin(a, b *Table) *Table {
	ai, bi := sharedColumns(a, b)
	if len(ai) == 0 {
		if len(b.Rows) == 0 {
			return &Table{Vars: a.Vars}
		}
		return a
	}
	keys := make(map[string]struct{}, len(b.Rows))
	for _, rb := range b.Rows {
		keys[key(rb, bi)] = struct{}{}
	}
	out := &Table{Vars: a.Vars}
	for _, ra := range a.Rows {
		if _, ok := keys[key(ra, ai)]; ok {
			out.Rows = append(out.Rows, ra)
		}
	}
	return out
}

// Project computes π_vars(a), deduplicating rows. Variables not present in
// a are ignored.
func Project(a *Table, vars []int) *Table {
	var cols []int
	var outVars []int
	pos := make(map[int]int, len(a.Vars))
	for i, v := range a.Vars {
		pos[v] = i
	}
	sorted := append([]int(nil), vars...)
	sort.Ints(sorted)
	for _, v := range sorted {
		if i, ok := pos[v]; ok {
			cols = append(cols, i)
			outVars = append(outVars, v)
		}
	}
	out := &Table{Vars: outVars}
	seen := make(map[string]struct{})
	for _, r := range a.Rows {
		row := make([]Value, len(cols))
		for i, c := range cols {
			row[i] = r[c]
		}
		k := key(row, allCols(len(row)))
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		out.Rows = append(out.Rows, row)
	}
	return out
}

func allCols(n int) []int {
	cols := make([]int, n)
	for i := range cols {
		cols[i] = i
	}
	return cols
}

// TableOf materializes a constraint as a table.
func TableOf(c *Constraint) *Table {
	t := &Table{Vars: append([]int(nil), c.Scope...)}
	for _, row := range c.Tuples {
		t.Rows = append(t.Rows, append([]Value(nil), row...))
	}
	return t
}

// selectConsistent returns the rows of t agreeing with the partial
// assignment (assigned[v] true means variable v is pinned to assignment[v]).
func selectConsistent(t *Table, assignment []Value, assigned []bool) [][]Value {
	var out [][]Value
	for _, r := range t.Rows {
		ok := true
		for i, v := range t.Vars {
			if assigned[v] && assignment[v] != r[i] {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, r)
		}
	}
	return out
}
