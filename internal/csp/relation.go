package csp

import "sort"

// Table is a relation with named columns: Vars lists the variable index of
// each column, Rows the tuples. The relational operators below are the ones
// Acyclic Solving needs (thesis §2.2.3): natural join, semijoin, projection.
//
// The operators hash rows by uint64 tuple hashes (see rowIndex) instead of
// the original string keys; the string-keyed implementations are kept in
// relation_ref.go as differential-test references. All operators preserve
// input row order, so the two implementations produce identical tables.
type Table struct {
	Vars []int
	Rows [][]Value
}

// sharedColumns returns, for tables a and b, the column positions of their
// common variables (parallel slices).
func sharedColumns(a, b *Table) (ai, bi []int) {
	posB := make(map[int]int, len(b.Vars))
	for j, v := range b.Vars {
		posB[v] = j
	}
	for i, v := range a.Vars {
		if j, ok := posB[v]; ok {
			ai = append(ai, i)
			bi = append(bi, j)
		}
	}
	return
}

// hashRow mixes the values of row at the given columns into a uint64. The
// hash is only a bucket discriminator: every probe re-verifies candidate
// rows value-by-value, so a collision costs a comparison, never a wrong
// answer (see rowIndex.matches).
func hashRow(row []Value, cols []int) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range cols {
		h ^= uint64(row[c])
		h *= 1099511628211
	}
	// Final avalanche so low-entropy value sets still spread over buckets.
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

// rowIndex buckets the rows of one table by the uint64 hash of their values
// at a fixed column set. Buckets keep insertion (row) order, and every probe
// verifies candidates exactly, so hash collisions degrade to linear scans of
// one bucket instead of producing phantom matches.
type rowIndex struct {
	rows [][]Value
	cols []int
	hash func(row []Value, cols []int) uint64
	m    map[uint64][]int32
}

// hashRowHook is the hash the relational operators use. Tests swap in
// adversarial hashes (e.g. a constant) to prove correctness never depends on
// hash quality; production code must not reassign it.
var hashRowHook = hashRow

// newRowIndex indexes rows on cols with the production hash. Tests inject
// adversarial hash functions (e.g. a constant) through newRowIndexFunc or by
// swapping hashRowHook.
func newRowIndex(rows [][]Value, cols []int) *rowIndex {
	return newRowIndexFunc(rows, cols, hashRowHook)
}

func newRowIndexFunc(rows [][]Value, cols []int, hash func([]Value, []int) uint64) *rowIndex {
	ix := &rowIndex{rows: rows, cols: cols, hash: hash, m: make(map[uint64][]int32, len(rows))}
	for i, r := range rows {
		h := hash(r, cols)
		ix.m[h] = append(ix.m[h], int32(i))
	}
	return ix
}

// matches reports whether indexed row ri agrees with probe at probeCols
// (parallel to the index's cols) — the exact comparison behind every hash
// bucket hit.
func (ix *rowIndex) matches(ri int32, probe []Value, probeCols []int) bool {
	row := ix.rows[ri]
	for k, c := range ix.cols {
		if row[c] != probe[probeCols[k]] {
			return false
		}
	}
	return true
}

// probe calls fn for each indexed row matching probe at probeCols, in row
// order. fn returning false stops the scan early.
func (ix *rowIndex) probe(probe []Value, probeCols []int, fn func(ri int32) bool) {
	for _, ri := range ix.m[ix.hash(probe, probeCols)] {
		if ix.matches(ri, probe, probeCols) {
			if !fn(ri) {
				return
			}
		}
	}
}

// contains reports whether any indexed row matches probe at probeCols.
func (ix *rowIndex) contains(probe []Value, probeCols []int) bool {
	found := false
	ix.probe(probe, probeCols, func(int32) bool { found = true; return false })
	return found
}

// Join computes the natural join a ⋈ b.
func Join(a, b *Table) *Table {
	ai, bi := sharedColumns(a, b)
	// Output columns: all of a, then b's non-shared.
	sharedB := make(map[int]bool, len(bi))
	for _, j := range bi {
		sharedB[j] = true
	}
	outVars := append([]int(nil), a.Vars...)
	var extraB []int
	for j, v := range b.Vars {
		if !sharedB[j] {
			outVars = append(outVars, v)
			extraB = append(extraB, j)
		}
	}
	ix := newRowIndex(b.Rows, bi)
	out := &Table{Vars: outVars}
	for _, ra := range a.Rows {
		ix.probe(ra, ai, func(ri int32) bool {
			rb := b.Rows[ri]
			row := make([]Value, 0, len(outVars))
			row = append(row, ra...)
			for _, j := range extraB {
				row = append(row, rb[j])
			}
			out.Rows = append(out.Rows, row)
			return true
		})
	}
	return out
}

// Semijoin computes a ⋉ b: the rows of a that join with at least one row of
// b. If a and b share no variables, the join would be a cross product, so
// the result is all of a's rows when b is nonempty and no rows when b is
// empty. The returned table is always a fresh *Table that shares no slice
// headers with a — callers may append to or filter the result's Rows without
// corrupting a (the row slices themselves stay shared, as in every branch).
func Semijoin(a, b *Table) *Table {
	ai, bi := sharedColumns(a, b)
	if len(ai) == 0 {
		if len(b.Rows) == 0 {
			return &Table{Vars: a.Vars}
		}
		return &Table{Vars: a.Vars, Rows: append([][]Value(nil), a.Rows...)}
	}
	ix := newRowIndex(b.Rows, bi)
	out := &Table{Vars: a.Vars}
	for _, ra := range a.Rows {
		if ix.contains(ra, ai) {
			out.Rows = append(out.Rows, ra)
		}
	}
	return out
}

// Project computes π_vars(a), deduplicating rows. Variables not present in
// a are ignored.
func Project(a *Table, vars []int) *Table {
	var cols []int
	var outVars []int
	pos := make(map[int]int, len(a.Vars))
	for i, v := range a.Vars {
		pos[v] = i
	}
	sorted := append([]int(nil), vars...)
	sort.Ints(sorted)
	for _, v := range sorted {
		if i, ok := pos[v]; ok {
			cols = append(cols, i)
			outVars = append(outVars, v)
		}
	}
	out := &Table{Vars: outVars}
	// Dedup by hashing the projected columns of the source rows directly;
	// candidates with equal hashes are verified against the already-emitted
	// row, so collisions cannot drop a distinct row.
	seen := make(map[uint64][]int32)
	for _, r := range a.Rows {
		h := hashRowHook(r, cols)
		dup := false
		for _, oi := range seen[h] {
			prev := out.Rows[oi]
			same := true
			for k := range cols {
				if prev[k] != r[cols[k]] {
					same = false
					break
				}
			}
			if same {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		row := make([]Value, len(cols))
		for i, c := range cols {
			row[i] = r[c]
		}
		seen[h] = append(seen[h], int32(len(out.Rows)))
		out.Rows = append(out.Rows, row)
	}
	return out
}

// TableOf materializes a constraint as a table.
func TableOf(c *Constraint) *Table {
	t := &Table{Vars: append([]int(nil), c.Scope...)}
	for _, row := range c.Tuples {
		t.Rows = append(t.Rows, append([]Value(nil), row...))
	}
	return t
}

// selectConsistent returns the rows of t agreeing with the partial
// assignment (assigned[v] true means variable v is pinned to assignment[v]).
func selectConsistent(t *Table, assignment []Value, assigned []bool) [][]Value {
	var out [][]Value
	for _, r := range t.Rows {
		ok := true
		for i, v := range t.Vars {
			if assigned[v] && assignment[v] != r[i] {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, r)
		}
	}
	return out
}
