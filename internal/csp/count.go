package csp

import (
	"fmt"

	"hypertree/internal/decomp"
)

// CountFromTD counts all complete consistent assignments of c by dynamic
// programming over a tree decomposition — the "computing all solutions"
// capability the thesis attributes to decomposition methods (§2.2.2, §2.4),
// in counting form. The work is O(nodes · d^(width+1)); by the
// connectedness condition every complete assignment decomposes uniquely
// into compatible bag tuples, so each is counted exactly once.
// Variables in no bag contribute a factor |domain|.
func CountFromTD(c *CSP, td *decomp.TreeDecomposition) int {
	if err := td.Validate(c.Hypergraph()); err != nil {
		panic(fmt.Sprintf("csp: invalid tree decomposition: %v", err))
	}
	// Place constraints and enumerate bag tables exactly as SolveFromTD.
	placed := PlaceConstraints(c, td.Bags)
	tables := make([]*Table, len(td.Bags))
	for i, bag := range td.Bags {
		tables[i] = enumerateBag(c, bag, placed[i])
	}

	children := td.Children()
	order := topDownOrder(td.Parent, td.Root)

	// counts[node][rowIdx] = number of assignments of the subtree's
	// variables (minus the bag's own, which are pinned by the row).
	counts := make([][]int, len(td.Bags))
	// Process bottom-up.
	for i := len(order) - 1; i >= 0; i-- {
		node := order[i]
		t := tables[node]
		counts[node] = make([]int, len(t.Rows))
		for ri, row := range t.Rows {
			total := 1
			for _, ch := range children[node] {
				sub := 0
				ct := tables[ch]
				ai, bi := sharedColumns(t, ct)
				for cri, crow := range ct.Rows {
					if compatible(row, crow, ai, bi) {
						sub += counts[ch][cri]
					}
				}
				total *= sub
				if total == 0 {
					break
				}
			}
			counts[node][ri] = total
		}
	}
	total := 0
	for _, cnt := range counts[td.Root] {
		total += cnt
	}
	// Variables appearing in no bag are unconstrained (a valid TD covers
	// every constraint scope, so such variables are in no constraint).
	inBag := make([]bool, c.NumVars)
	for _, bag := range td.Bags {
		for _, v := range bag {
			inBag[v] = true
		}
	}
	for v := 0; v < c.NumVars; v++ {
		if !inBag[v] {
			total *= len(c.Domains[v])
		}
	}
	return total
}

func compatible(rowA, rowB []Value, ai, bi []int) bool {
	for k := range ai {
		if rowA[ai[k]] != rowB[bi[k]] {
			return false
		}
	}
	return true
}
