package csp

// Budget-aware variants of the table materializers the compiled query
// engine (internal/csp/engine) builds plans from. Materializing a bag table
// walks |domain|^|bag| candidate assignments (pruning only at the leaves)
// and joining λ-set relations can multiply its inputs, so an adversarial
// instance makes compile cost doubly exponential in the request size. The
// variants here tick a budget.B once per unit of work — an enumeration
// step, a probed or emitted row — and abandon the table with a typed
// *InterruptedError as soon as any limit trips. A nil budget never trips
// and each variant is then the exact equivalent of its historical
// unbudgeted counterpart (BagTable, Join, Project), pinned by differential
// tests in budgeted_test.go.

import (
	"fmt"
	"sort"

	"hypertree/internal/budget"
)

// InterruptedError is the typed error the budgeted materializers return
// when their budget trips mid-table: the work is abandoned (no partial
// table escapes) and Reason says which limit ended it — deadline, node
// budget, or context cancellation.
type InterruptedError struct {
	Reason budget.StopReason
}

func (e *InterruptedError) Error() string {
	return fmt.Sprintf("csp: table materialization interrupted (%s)", e.Reason)
}

// Interrupted wraps bu's latched stop reason. Call it only after a Tick or
// Check returned false, so the reason is already set.
func Interrupted(bu *budget.B) error {
	return &InterruptedError{Reason: bu.Reason()}
}

// BagTableBudget is BagTable under a budget: one tick per candidate value
// placed while walking the assignment tree, so even a bag whose
// |domain|^|bag| space dwarfs its output is abandoned promptly when the
// budget trips.
func (c *CSP) BagTableBudget(bag []int, constraints []int, bu *budget.B) (*Table, error) {
	t := &Table{Vars: append([]int(nil), bag...)}
	row := make([]Value, len(bag))
	pos := make(map[int]int, len(bag))
	for i, v := range bag {
		pos[v] = i
	}
	stop := false
	var rec func(i int)
	rec = func(i int) {
		if i == len(bag) {
			for _, ci := range constraints {
				con := &c.Constraints[ci]
				vals := make([]Value, len(con.Scope))
				for k, v := range con.Scope {
					vals[k] = row[pos[v]]
				}
				if !con.Allows(vals) {
					return
				}
			}
			t.Rows = append(t.Rows, append([]Value(nil), row...))
			return
		}
		for _, v := range c.Domains[bag[i]] {
			if !bu.Tick() {
				stop = true
				return
			}
			row[i] = v
			rec(i + 1)
			if stop {
				return
			}
		}
	}
	rec(0)
	if stop {
		return nil, Interrupted(bu)
	}
	return t, nil
}

// JoinBudget is Join under a budget: one tick per probing row of a and one
// per emitted output row, bounding both the scan and the (possibly
// multiplicative) output.
func JoinBudget(a, b *Table, bu *budget.B) (*Table, error) {
	ai, bi := sharedColumns(a, b)
	sharedB := make(map[int]bool, len(bi))
	for _, j := range bi {
		sharedB[j] = true
	}
	outVars := append([]int(nil), a.Vars...)
	var extraB []int
	for j, v := range b.Vars {
		if !sharedB[j] {
			outVars = append(outVars, v)
			extraB = append(extraB, j)
		}
	}
	ix := newRowIndex(b.Rows, bi)
	out := &Table{Vars: outVars}
	stop := false
	for _, ra := range a.Rows {
		if !bu.Tick() {
			stop = true
			break
		}
		ix.probe(ra, ai, func(ri int32) bool {
			if !bu.Tick() {
				stop = true
				return false
			}
			rb := b.Rows[ri]
			row := make([]Value, 0, len(outVars))
			row = append(row, ra...)
			for _, j := range extraB {
				row = append(row, rb[j])
			}
			out.Rows = append(out.Rows, row)
			return true
		})
		if stop {
			break
		}
	}
	if stop {
		return nil, Interrupted(bu)
	}
	return out, nil
}

// ProjectBudget is Project under a budget: one tick per input row (the
// output is at most input-sized).
func ProjectBudget(a *Table, vars []int, bu *budget.B) (*Table, error) {
	var cols []int
	var outVars []int
	pos := make(map[int]int, len(a.Vars))
	for i, v := range a.Vars {
		pos[v] = i
	}
	sorted := append([]int(nil), vars...)
	sort.Ints(sorted)
	for _, v := range sorted {
		if i, ok := pos[v]; ok {
			cols = append(cols, i)
			outVars = append(outVars, v)
		}
	}
	out := &Table{Vars: outVars}
	seen := make(map[uint64][]int32)
	for _, r := range a.Rows {
		if !bu.Tick() {
			return nil, Interrupted(bu)
		}
		h := hashRowHook(r, cols)
		dup := false
		for _, oi := range seen[h] {
			prev := out.Rows[oi]
			same := true
			for k := range cols {
				if prev[k] != r[cols[k]] {
					same = false
					break
				}
			}
			if same {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		row := make([]Value, len(cols))
		for i, c := range cols {
			row[i] = r[c]
		}
		seen[h] = append(seen[h], int32(len(out.Rows)))
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}
