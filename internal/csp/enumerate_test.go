package csp

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"hypertree/internal/elim"
)

// allSolutionsBrute returns every complete consistent assignment.
func allSolutionsBrute(c *CSP) [][]Value {
	var out [][]Value
	assignment := make([]Value, c.NumVars)
	var rec func(i int)
	rec = func(i int) {
		if i == c.NumVars {
			if c.Consistent(assignment) {
				out = append(out, append([]Value(nil), assignment...))
			}
			return
		}
		for _, v := range c.Domains[i] {
			assignment[i] = v
			rec(i + 1)
		}
	}
	rec(0)
	return out
}

func canonical(sols [][]Value) []string {
	keys := make([]string, len(sols))
	for i, s := range sols {
		keys[i] = fmt.Sprint(s)
	}
	sort.Strings(keys)
	return keys
}

func TestEnumerateFromTDExample5(t *testing.T) {
	c := example5CSP()
	h := c.Hypergraph()
	td := elim.TDFromOrdering(h, []int{5, 4, 3, 2, 1, 0})
	got := EnumerateFromTD(c, td, 0)
	want := allSolutionsBrute(c)
	if len(got) != len(want) {
		t.Fatalf("enumerated %d solutions, brute force %d", len(got), len(want))
	}
	g, w := canonical(got), canonical(want)
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("solution sets differ:\n%v\n%v", g, w)
		}
	}
}

func TestEnumerateFromTDLimit(t *testing.T) {
	c := australia()
	h := c.Hypergraph()
	td := elim.TDFromOrdering(h, elim.MinFillOrdering(h.PrimalGraph(), nil))
	got := EnumerateFromTD(c, td, 5)
	if len(got) != 5 {
		t.Fatalf("limit 5 returned %d", len(got))
	}
	for _, s := range got {
		if !c.Consistent(s) {
			t.Fatalf("inconsistent solution %v", s)
		}
	}
}

func TestEnumerateFromTDUnsat(t *testing.T) {
	c := &CSP{NumVars: 2, Domains: [][]Value{{0}, {0}}}
	c.AddConstraint([]int{0, 1}, [][]Value{{0, 1}, {1, 0}})
	h := c.Hypergraph()
	td := elim.TDFromOrdering(h, []int{0, 1})
	if got := EnumerateFromTD(c, td, 0); got != nil {
		t.Fatalf("unsat enumeration returned %v", got)
	}
}

// Property: enumeration matches brute force exactly (as sets) on random
// CSPs whose free variables are pinned (the enumerator fixes free variables
// to their first domain value, so compare on CSPs without free variables —
// randomCSP normalizes with unary constraints, making every variable bound).
func TestEnumerateMatchesBruteProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomCSP(rng)
		h := c.Hypergraph()
		td := elim.TDFromOrdering(h, rng.Perm(c.NumVars))
		got := canonical(EnumerateFromTD(c, td, 0))
		want := canonical(allSolutionsBrute(c))
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
