package csp

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// randomTable builds a table over up to 4 variables drawn from a small pool,
// with values that include negatives (the old string keys and the new hashes
// must both keep -1|2 distinct from 1|-2 and friends).
func randomTable(rng *rand.Rand) *Table {
	nv := 1 + rng.Intn(3)
	pool := rng.Perm(5)[:nv]
	t := &Table{Vars: pool}
	rows := rng.Intn(8)
	for i := 0; i < rows; i++ {
		row := make([]Value, nv)
		for j := range row {
			row[j] = rng.Intn(5) - 2
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Property: the uint64-hash operators produce byte-identical tables to the
// string-keyed references, including row order (the engine's exact-equality
// differential tests depend on order preservation).
func TestHashOpsMatchReferenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randomTable(rng), randomTable(rng)
		if !reflect.DeepEqual(Join(a, b), joinRef(a, b)) {
			return false
		}
		if !reflect.DeepEqual(Semijoin(a, b), semijoinRef(a, b)) {
			return false
		}
		vars := rng.Perm(5)[:1+rng.Intn(3)]
		return reflect.DeepEqual(Project(a, vars), projectRef(a, vars))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Regression for the Semijoin ownership hazard: the no-shared-vars nonempty
// branch used to return the input *Table aliased, so a caller mutating the
// result (appending rows, filtering in place) corrupted the original table.
func TestSemijoinDisjointReturnsDefensiveCopy(t *testing.T) {
	a := &Table{Vars: []int{0, 1}, Rows: [][]Value{{1, 2}, {3, 4}}}
	b := &Table{Vars: []int{7}, Rows: [][]Value{{1}}}
	got := Semijoin(a, b)
	if got == a {
		t.Fatal("Semijoin returned the input table aliased")
	}
	if len(got.Rows) != 2 {
		t.Fatalf("semijoin kept %d rows, want 2", len(got.Rows))
	}
	// Mutating the result's Rows slice must not corrupt a.
	got.Rows = got.Rows[:1]
	got.Rows = append(got.Rows, []Value{9, 9}, []Value{8, 8})
	if len(a.Rows) != 2 || a.Rows[1][0] != 3 || a.Rows[1][1] != 4 {
		t.Fatalf("mutating the semijoin result corrupted the input: %+v", a.Rows)
	}
	// Same contract for the reference implementation.
	if ref := semijoinRef(a, b); ref == a {
		t.Fatal("semijoinRef returned the input table aliased")
	}
}

// The string key must stay collision-free for negative values, and the
// nullary (no columns) key must map every row to the same bucket.
func TestStringKeyNegativeAndEmptyCols(t *testing.T) {
	cols := []int{0, 1}
	pairs := [][2][]Value{
		{{-1, 2}, {1, -2}},
		{{-1, 2}, {-12, 2}},
		{{1, 23}, {12, 3}},
		{{-1, -2}, {-12, 0}},
	}
	for _, p := range pairs {
		if key(p[0][:], cols) == key(p[1][:], cols) {
			t.Fatalf("key collision: %v vs %v", p[0], p[1])
		}
	}
	if key([]Value{5, 6}, nil) != "" || key([]Value{-7}, nil) != "" {
		t.Fatal("nullary key should be empty for every row")
	}
	if key([]Value{5, 6}, nil) != key([]Value{7, 8}, nil) {
		t.Fatal("all rows must share the nullary key")
	}
}

// Adversarial forced-collision test: index rows with a constant hash so
// every row lands in one bucket, and check probes still return exactly the
// value-equal rows — the exact-comparison fallback, not the hash, decides
// membership.
func TestRowIndexForcedCollisions(t *testing.T) {
	rows := [][]Value{{1, 2}, {3, 4}, {1, 2}, {-1, 2}, {1, -2}}
	constant := func([]Value, []int) uint64 { return 42 }
	ix := newRowIndexFunc(rows, []int{0, 1}, constant)
	var got []int32
	ix.probe([]Value{1, 2}, []int{0, 1}, func(ri int32) bool {
		got = append(got, ri)
		return true
	})
	if !reflect.DeepEqual(got, []int32{0, 2}) {
		t.Fatalf("probe under forced collisions returned %v, want [0 2]", got)
	}
	if ix.contains([]Value{3, 4}, []int{0, 1}) != true {
		t.Fatal("contains missed a genuine match under forced collisions")
	}
	if ix.contains([]Value{2, 1}, []int{0, 1}) {
		t.Fatal("contains reported a phantom match under forced collisions")
	}
	if ix.contains([]Value{-1, -2}, []int{0, 1}) {
		t.Fatal("contains conflated negative-value rows under forced collisions")
	}
}

// Join and Semijoin must agree with the references even when every hash
// collides (all-bucket scans): correctness never depends on hash quality.
func TestHashOpsUnderForcedCollisions(t *testing.T) {
	old := hashRowHook
	hashRowHook = func([]Value, []int) uint64 { return 0 }
	defer func() { hashRowHook = old }()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		a, b := randomTable(rng), randomTable(rng)
		if !reflect.DeepEqual(Join(a, b), joinRef(a, b)) {
			t.Fatalf("Join diverged under forced collisions (iter %d)", i)
		}
		if !reflect.DeepEqual(Semijoin(a, b), semijoinRef(a, b)) {
			t.Fatalf("Semijoin diverged under forced collisions (iter %d)", i)
		}
		vars := rng.Perm(5)[:2]
		if !reflect.DeepEqual(Project(a, vars), projectRef(a, vars)) {
			t.Fatalf("Project diverged under forced collisions (iter %d)", i)
		}
	}
}
