package csp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hypertree/internal/elim"
)

func TestCountFromTDAustralia(t *testing.T) {
	c := australia()
	h := c.Hypergraph()
	td := elim.TDFromOrdering(h, elim.MinFillOrdering(h.PrimalGraph(), nil))
	want := c.CountSolutionsBrute()
	if want == 0 {
		t.Fatal("Australia has 3-colorings")
	}
	if got := CountFromTD(c, td); got != want {
		t.Fatalf("CountFromTD = %d, brute = %d", got, want)
	}
}

func TestCountFromTDExample5(t *testing.T) {
	c := example5CSP()
	h := c.Hypergraph()
	td := elim.TDFromOrdering(h, []int{5, 4, 3, 2, 1, 0})
	want := c.CountSolutionsBrute()
	if got := CountFromTD(c, td); got != want {
		t.Fatalf("CountFromTD = %d, brute = %d", got, want)
	}
}

func TestCountFromTDUnsat(t *testing.T) {
	c := &CSP{NumVars: 2, Domains: [][]Value{{0}, {0}}}
	c.AddConstraint([]int{0, 1}, [][]Value{{0, 1}, {1, 0}})
	h := c.Hypergraph()
	td := elim.TDFromOrdering(h, []int{0, 1})
	if got := CountFromTD(c, td); got != 0 {
		t.Fatalf("unsat count = %d, want 0", got)
	}
}

func TestCountFromTDFreeVariables(t *testing.T) {
	// One binary constraint plus an unconstrained variable with |D| = 3:
	// counts multiply by 3.
	c := New(3, []Value{0, 1, 2})
	c.AddNotEqual(0, 1)
	h := c.Hypergraph()
	td := elim.TDFromOrdering(h, []int{2, 0, 1})
	want := c.CountSolutionsBrute() // 6 * 3 = 18
	if got := CountFromTD(c, td); got != want || got != 18 {
		t.Fatalf("count = %d, want %d (=18)", got, want)
	}
}

// Property: CountFromTD equals brute-force counting on random CSPs over
// random ordering-induced decompositions.
func TestCountFromTDMatchesBruteProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomCSP(rng)
		h := c.Hypergraph()
		td := elim.TDFromOrdering(h, rng.Perm(c.NumVars))
		return CountFromTD(c, td) == c.CountSolutionsBrute()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
