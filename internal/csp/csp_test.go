package csp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hypertree/internal/decomp"
	"hypertree/internal/elim"
	"hypertree/internal/hypergraph"
)

// australia models thesis Example 1: 3-coloring the states of Australia.
// Variables: WA NT Q SA NSW V TAS (0..6); colors r g b (0 1 2).
func australia() *CSP {
	c := New(7, []Value{0, 1, 2})
	c.VarNames = []string{"WA", "NT", "Q", "SA", "NSW", "V", "TAS"}
	for _, e := range [][2]int{
		{1, 0}, // NT-WA
		{3, 0}, // SA-WA
		{1, 2}, // NT-Q
		{1, 3}, // NT-SA
		{2, 3}, // Q-SA
		{4, 2}, // NSW-Q
		{4, 5}, // NSW-V
		{4, 3}, // NSW-SA
		{3, 5}, // SA-V
	} {
		c.AddNotEqual(e[0], e[1])
	}
	return c
}

// example5CSP is thesis Example 5: six variables, three ternary constraints.
func example5CSP() *CSP {
	// Domains: x1 ∈ {a,b} -> {0,1}; x2..x6 ∈ {b,c} -> {1,2}.
	c := &CSP{NumVars: 6, Domains: [][]Value{
		{0, 1}, {1, 2}, {1, 2}, {1, 2}, {1, 2}, {1, 2},
	}}
	// R1 over (x1,x2,x3): {(a,b,c),(a,c,b),(b,b,c)}.
	c.AddConstraint([]int{0, 1, 2}, [][]Value{{0, 1, 2}, {0, 2, 1}, {1, 1, 2}})
	// R2 over (x1,x5,x6): {(a,b,c),(a,c,b)}.
	c.AddConstraint([]int{0, 4, 5}, [][]Value{{0, 1, 2}, {0, 2, 1}})
	// R3 over (x3,x4,x5): {(c,b,c),(c,c,b)}.
	c.AddConstraint([]int{2, 3, 4}, [][]Value{{2, 1, 2}, {2, 2, 1}})
	return c
}

func TestAustraliaBruteForce(t *testing.T) {
	c := australia()
	sol := c.BruteForce()
	if sol == nil {
		t.Fatal("Australia should be 3-colorable")
	}
	if !c.Consistent(sol) {
		t.Fatal("brute-force solution inconsistent")
	}
	// TAS is unconstrained; the constraint hypergraph is the map graph.
	h := c.Hypergraph()
	if h.N() != 7 || h.M() != 9 {
		t.Fatalf("constraint hypergraph n=%d m=%d", h.N(), h.M())
	}
}

func TestAustraliaFromTD(t *testing.T) {
	c := australia()
	h := c.Hypergraph()
	order := elim.MinFillOrdering(h.PrimalGraph(), nil)
	td := elim.TDFromOrdering(h, order)
	sol := SolveFromTD(c, td)
	if sol == nil {
		t.Fatal("SolveFromTD found no solution")
	}
	if !c.Consistent(sol) {
		t.Fatalf("SolveFromTD solution inconsistent: %v", sol)
	}
}

func TestExample5AllSolvers(t *testing.T) {
	c := example5CSP()
	want := c.BruteForce()
	if want == nil {
		t.Fatal("Example 5 should be satisfiable")
	}
	h := c.Hypergraph()
	order := []int{5, 4, 3, 2, 1, 0}
	td := elim.TDFromOrdering(h, order)
	if sol := SolveFromTD(c, td); sol == nil || !c.Consistent(sol) {
		t.Fatalf("SolveFromTD failed: %v", sol)
	}
	g, err := elim.GHDFromOrdering(h, order, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	g.Complete(h)
	if sol := SolveFromGHD(c, g); sol == nil || !c.Consistent(sol) {
		t.Fatalf("SolveFromGHD failed: %v", sol)
	}
}

// Thesis Figure 2.8/2.9 use the Figure 2.6 decomposition; solving from it
// must give a consistent assignment.
func TestExample5FromFigure26TD(t *testing.T) {
	c := example5CSP()
	td := &decomp.TreeDecomposition{
		Tree: decomp.Tree{Parent: []int{-1, 0, 0, 0}, Root: 0},
		Bags: [][]int{{0, 2, 4}, {0, 1, 2}, {2, 3, 4}, {0, 4, 5}},
	}
	sol := SolveFromTD(c, td)
	if sol == nil || !c.Consistent(sol) {
		t.Fatalf("solving from Figure 2.6 TD failed: %v", sol)
	}
}

func TestUnsatisfiableDetected(t *testing.T) {
	// x ≠ y with single-value domains.
	c := &CSP{NumVars: 2, Domains: [][]Value{{0}, {0}}}
	c.AddConstraint([]int{0, 1}, [][]Value{{0, 1}, {1, 0}})
	if c.BruteForce() != nil {
		t.Fatal("should be unsatisfiable")
	}
	h := c.Hypergraph()
	td := elim.TDFromOrdering(h, []int{0, 1})
	if SolveFromTD(c, td) != nil {
		t.Fatal("SolveFromTD should report unsatisfiable")
	}
	g, err := elim.GHDFromOrdering(h, []int{0, 1}, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	g.Complete(h)
	if SolveFromGHD(c, g) != nil {
		t.Fatal("SolveFromGHD should report unsatisfiable")
	}
}

func TestSolveAcyclic(t *testing.T) {
	// An acyclic CSP: chain of binary constraints x0=x1, x1=x2, x2!=x3.
	c := New(4, []Value{0, 1})
	c.AddConstraint([]int{0, 1}, [][]Value{{0, 0}, {1, 1}})
	c.AddConstraint([]int{1, 2}, [][]Value{{0, 0}, {1, 1}})
	c.AddNotEqual(2, 3)
	h := c.Hypergraph()
	jt, ok := hypergraph.BuildJoinTree(h)
	if !ok {
		t.Fatal("chain should be acyclic")
	}
	sol := SolveAcyclic(c, jt)
	if sol == nil || !c.Consistent(sol) {
		t.Fatalf("SolveAcyclic failed: %v", sol)
	}
	// Make it unsatisfiable: x0 pinned 0, x2 pinned 1 via unary constraints.
	c.AddConstraint([]int{0}, [][]Value{{0}})
	c.AddConstraint([]int{2}, [][]Value{{1}})
	h2 := c.Hypergraph()
	jt2, ok := hypergraph.BuildJoinTree(h2)
	if !ok {
		t.Fatal("still acyclic with unary constraints")
	}
	if got := SolveAcyclic(c, jt2); got != nil {
		t.Fatalf("expected unsatisfiable, got %v", got)
	}
}

func TestRelationOps(t *testing.T) {
	a := &Table{Vars: []int{0, 1}, Rows: [][]Value{{1, 2}, {1, 3}, {2, 2}}}
	b := &Table{Vars: []int{1, 2}, Rows: [][]Value{{2, 9}, {3, 8}}}
	j := Join(a, b)
	if len(j.Rows) != 3 || len(j.Vars) != 3 {
		t.Fatalf("join = %+v", j)
	}
	s := Semijoin(a, b)
	if len(s.Rows) != 3 {
		t.Fatalf("semijoin kept %d rows, want 3", len(s.Rows))
	}
	b2 := &Table{Vars: []int{1, 2}, Rows: [][]Value{{3, 8}}}
	s2 := Semijoin(a, b2)
	if len(s2.Rows) != 1 || s2.Rows[0][1] != 3 {
		t.Fatalf("semijoin = %+v", s2)
	}
	p := Project(a, []int{0})
	if len(p.Rows) != 2 {
		t.Fatalf("projection should dedupe: %+v", p)
	}
	// Disjoint semijoin: keeps a when b nonempty, empties when b empty.
	d := &Table{Vars: []int{5}, Rows: [][]Value{{1}}}
	if got := Semijoin(a, d); len(got.Rows) != 3 {
		t.Fatal("disjoint semijoin with nonempty b should keep a")
	}
	dEmpty := &Table{Vars: []int{5}}
	if got := Semijoin(a, dEmpty); len(got.Rows) != 0 {
		t.Fatal("disjoint semijoin with empty b should empty a")
	}
}

// randomCSP builds a small random CSP with binary/ternary constraints.
func randomCSP(rng *rand.Rand) *CSP {
	n := 3 + rng.Intn(4)
	d := 2 + rng.Intn(2)
	domain := make([]Value, d)
	for i := range domain {
		domain[i] = i
	}
	c := New(n, domain)
	m := 2 + rng.Intn(4)
	for k := 0; k < m; k++ {
		arity := 2 + rng.Intn(2)
		if arity > n {
			arity = n
		}
		scope := rng.Perm(n)[:arity]
		total := 1
		for i := 0; i < arity; i++ {
			total *= d
		}
		var tuples [][]Value
		for t := 0; t < total; t++ {
			if rng.Intn(3) == 0 {
				continue // drop ~1/3 of tuples
			}
			row := make([]Value, arity)
			x := t
			for i := 0; i < arity; i++ {
				row[i] = x % d
				x /= d
			}
			tuples = append(tuples, row)
		}
		c.AddConstraint(scope, tuples)
	}
	// Normalize: a full-domain unary constraint on every otherwise
	// unconstrained variable, so decomposition bags are always coverable.
	constrained := make([]bool, n)
	for _, con := range c.Constraints {
		for _, v := range con.Scope {
			constrained[v] = true
		}
	}
	for v := 0; v < n; v++ {
		if !constrained[v] {
			var tuples [][]Value
			for _, val := range domain {
				tuples = append(tuples, []Value{val})
			}
			c.AddConstraint([]int{v}, tuples)
		}
	}
	return c
}

// Property: SolveFromTD and SolveFromGHD agree with brute force on
// satisfiability, and their solutions are consistent.
func TestDecompositionSolversMatchBruteForceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomCSP(rng)
		h := c.Hypergraph()
		order := rng.Perm(c.NumVars)
		td := elim.TDFromOrdering(h, order)
		want := c.BruteForce() != nil

		solTD := SolveFromTD(c, td)
		if (solTD != nil) != want {
			return false
		}
		if solTD != nil && !c.Consistent(solTD) {
			return false
		}
		g, err := elim.GHDFromOrdering(h, order, false, rng)
		if err != nil {
			return false
		}
		g.Complete(h)
		solGHD := SolveFromGHD(c, g)
		if (solGHD != nil) != want {
			return false
		}
		return solGHD == nil || c.Consistent(solGHD)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: on acyclic random CSPs, SolveAcyclic agrees with brute force.
func TestSolveAcyclicMatchesBruteForceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomCSP(rng)
		jt, ok := hypergraph.BuildJoinTree(c.Hypergraph())
		if !ok {
			return true // cyclic: not this solver's job
		}
		want := c.BruteForce() != nil
		sol := SolveAcyclic(c, jt)
		if (sol != nil) != want {
			return false
		}
		return sol == nil || c.Consistent(sol)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestConstraintAllows(t *testing.T) {
	c := Constraint{Scope: []int{0, 1}, Tuples: [][]Value{{0, 1}, {1, 0}}}
	if !c.Allows([]Value{0, 1}) || c.Allows([]Value{0, 0}) {
		t.Fatal("Allows wrong")
	}
}

func TestCountSolutionsBrute(t *testing.T) {
	c := New(2, []Value{0, 1})
	c.AddNotEqual(0, 1)
	if got := c.CountSolutionsBrute(); got != 2 {
		t.Fatalf("count = %d, want 2", got)
	}
}
