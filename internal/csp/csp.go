// Package csp implements the constraint-satisfaction substrate of the
// thesis (Chapter 2): CSP instances, constraint hypergraphs, relational
// algebra (natural join, semijoin, projection), the Acyclic Solving
// algorithm (Figure 2.4), and solving arbitrary CSPs from tree
// decompositions (§2.4, join-tree clustering) and from complete generalized
// hypertree decompositions (Figure 2.9).
package csp

import (
	"fmt"

	"hypertree/internal/hypergraph"
)

// Value is a domain value. Domains are small integer sets; callers map
// symbolic values (colors, booleans) to ints.
type Value = int

// Constraint restricts the variables in Scope to the value combinations
// listed in Tuples (each tuple parallel to Scope).
type Constraint struct {
	Scope  []int
	Tuples [][]Value
}

// Allows reports whether the given values (parallel to Scope) satisfy the
// constraint.
func (c *Constraint) Allows(vals []Value) bool {
	for _, t := range c.Tuples {
		match := true
		for i := range t {
			if t[i] != vals[i] {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

// CSP is a constraint satisfaction problem ⟨X, D, C⟩.
type CSP struct {
	NumVars     int
	Domains     [][]Value
	Constraints []Constraint
	VarNames    []string // optional, for diagnostics
}

// New returns a CSP with n variables, each with the given shared domain.
func New(n int, domain []Value) *CSP {
	c := &CSP{NumVars: n, Domains: make([][]Value, n)}
	for i := range c.Domains {
		c.Domains[i] = append([]Value(nil), domain...)
	}
	return c
}

// AddConstraint appends a constraint over scope with the allowed tuples.
func (c *CSP) AddConstraint(scope []int, tuples [][]Value) {
	for _, v := range scope {
		if v < 0 || v >= c.NumVars {
			panic(fmt.Sprintf("csp: variable %d out of range", v))
		}
	}
	cp := Constraint{Scope: append([]int(nil), scope...)}
	for _, t := range tuples {
		if len(t) != len(scope) {
			panic("csp: tuple arity mismatch")
		}
		cp.Tuples = append(cp.Tuples, append([]Value(nil), t...))
	}
	c.Constraints = append(c.Constraints, cp)
}

// AddNotEqual adds the binary ≠ constraint between variables x and y over
// their domains (the map-coloring constraint of thesis Example 1).
func (c *CSP) AddNotEqual(x, y int) {
	var tuples [][]Value
	for _, a := range c.Domains[x] {
		for _, b := range c.Domains[y] {
			if a != b {
				tuples = append(tuples, []Value{a, b})
			}
		}
	}
	c.AddConstraint([]int{x, y}, tuples)
}

// Hypergraph returns the constraint hypergraph (thesis Definition 7): one
// vertex per variable, one hyperedge per constraint scope.
func (c *CSP) Hypergraph() *hypergraph.Hypergraph {
	h := hypergraph.NewHypergraph(c.NumVars)
	for i, con := range c.Constraints {
		e := h.AddEdge(con.Scope...)
		h.SetEdgeName(e, fmt.Sprintf("c%d", i+1))
	}
	for v := 0; v < c.NumVars; v++ {
		if c.VarNames != nil && c.VarNames[v] != "" {
			h.SetVertexName(v, c.VarNames[v])
		}
	}
	return h
}

// ConstraintTable materializes constraint ci as a table, dropping tuples
// with values outside the variables' domains (domains act as implicit unary
// constraints). This is the relation the decomposition solvers and the
// compiled query engine (internal/csp/engine) start from.
func (c *CSP) ConstraintTable(ci int) *Table {
	return domainTable(c, &c.Constraints[ci])
}

// Consistent reports whether the complete assignment satisfies every
// constraint.
func (c *CSP) Consistent(assignment []Value) bool {
	if len(assignment) != c.NumVars {
		return false
	}
	vals := make([]Value, 8)
	for _, con := range c.Constraints {
		vals = vals[:0]
		for _, v := range con.Scope {
			vals = append(vals, assignment[v])
		}
		if !con.Allows(vals) {
			return false
		}
	}
	return true
}

// BruteForce enumerates all complete assignments and returns the first
// consistent one, or nil. Exponential; for tests and tiny instances only.
func (c *CSP) BruteForce() []Value {
	assignment := make([]Value, c.NumVars)
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == c.NumVars {
			return c.Consistent(assignment)
		}
		for _, v := range c.Domains[i] {
			assignment[i] = v
			if rec(i + 1) {
				return true
			}
		}
		return false
	}
	if rec(0) {
		return assignment
	}
	return nil
}

// CountSolutionsBrute counts all complete consistent assignments by
// enumeration (ground truth for tests).
func (c *CSP) CountSolutionsBrute() int {
	assignment := make([]Value, c.NumVars)
	count := 0
	var rec func(i int)
	rec = func(i int) {
		if i == c.NumVars {
			if c.Consistent(assignment) {
				count++
			}
			return
		}
		for _, v := range c.Domains[i] {
			assignment[i] = v
			rec(i + 1)
		}
	}
	rec(0)
	return count
}
