package csp

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"hypertree/internal/budget"
)

// Property: under a nil budget every budgeted materializer is byte-identical
// to its unbudgeted counterpart, including row order — the engine's
// exact-equality contract with the reference solvers rides on this.
func TestBudgetedOpsNilBudgetMatchReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randomTable(rng), randomTable(rng)
		gotJ, err := JoinBudget(a, b, nil)
		if err != nil || !reflect.DeepEqual(gotJ, Join(a, b)) {
			return false
		}
		vars := rng.Perm(5)[:1+rng.Intn(3)]
		gotP, err := ProjectBudget(a, vars, nil)
		if err != nil || !reflect.DeepEqual(gotP, Project(a, vars)) {
			return false
		}
		c := randomBinaryCSP(rng)
		bag := rng.Perm(c.NumVars)[:1+rng.Intn(c.NumVars)]
		var cover []int
		for ci := range c.Constraints {
			cover = append(cover, ci)
		}
		gotB, err := c.BagTableBudget(bag, cover, nil)
		return err == nil && reflect.DeepEqual(gotB, c.BagTable(bag, cover))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// randomBinaryCSP builds a small random CSP for bag-table differentials:
// 3-5 variables over a 3-value domain with a couple of sparse binary
// constraints (constraints evaluated inside the bag walk, so their scopes
// must fall inside any bag — keep them unary/binary over low vars).
func randomBinaryCSP(rng *rand.Rand) *CSP {
	n := 3 + rng.Intn(3)
	domain := []Value{0, 1, 2}
	c := New(n, domain)
	for k := 0; k < 2; k++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			v = (v + 1) % n
		}
		var tuples [][]Value
		for _, x := range domain {
			for _, y := range domain {
				if rng.Intn(3) != 0 {
					tuples = append(tuples, []Value{x, y})
				}
			}
		}
		c.AddConstraint([]int{u, v}, tuples)
	}
	return c
}

// coveringConstraints returns the constraint indices whose scopes fall
// entirely inside bag — the only ones BagTable may evaluate.
func coveringConstraints(c *CSP, bag []int) []int {
	in := make(map[int]bool, len(bag))
	for _, v := range bag {
		in[v] = true
	}
	var out []int
	for ci, con := range c.Constraints {
		ok := true
		for _, v := range con.Scope {
			if !in[v] {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, ci)
		}
	}
	return out
}

// A tiny node budget must trip BagTableBudget with a typed *InterruptedError
// carrying the node-budget reason, and no partial table may escape.
func TestBagTableBudgetTripsOnNodeBudget(t *testing.T) {
	domain := make([]Value, 10)
	for i := range domain {
		domain[i] = Value(i)
	}
	c := New(8, domain) // 10^8 candidate walk, budget allows 50 ticks
	bag := []int{0, 1, 2, 3, 4, 5, 6, 7}
	bu := budget.New(context.Background(), budget.Limits{MaxNodes: 50, CheckEvery: 1})
	tbl, err := c.BagTableBudget(bag, coveringConstraints(c, bag), bu)
	if tbl != nil {
		t.Fatalf("BagTableBudget returned a partial table: %d rows", len(tbl.Rows))
	}
	var ie *InterruptedError
	if !errors.As(err, &ie) {
		t.Fatalf("BagTableBudget error = %v, want *InterruptedError", err)
	}
	if ie.Reason != budget.StopNodes {
		t.Fatalf("Reason = %q, want %q", ie.Reason, budget.StopNodes)
	}
}

// A pre-canceled context must trip the budgeted operators with the
// cancellation reason — this is the path the server leans on for client
// disconnects and drain.
func TestBudgetedOpsHonorContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	bu := budget.New(ctx, budget.Limits{CheckEvery: 1})

	big := &Table{Vars: []int{0}}
	for i := 0; i < 64; i++ {
		big.Rows = append(big.Rows, []Value{Value(i)})
	}
	if _, err := JoinBudget(big, big, bu); err == nil {
		t.Fatal("JoinBudget ran to completion under a canceled context")
	}
	_, err := ProjectBudget(big, []int{0}, bu)
	var ie *InterruptedError
	if !errors.As(err, &ie) || ie.Reason != budget.StopCanceled {
		t.Fatalf("ProjectBudget error = %v, want *InterruptedError(canceled)", err)
	}
}

// JoinBudget's output ticks must bound multiplicative blowups: two 64-row
// tables sharing no variables produce 4096 output rows, far above the
// 200-tick budget, so the join must abandon rather than materialize.
func TestJoinBudgetBoundsOutput(t *testing.T) {
	a := &Table{Vars: []int{0}}
	b := &Table{Vars: []int{1}}
	for i := 0; i < 64; i++ {
		a.Rows = append(a.Rows, []Value{Value(i)})
		b.Rows = append(b.Rows, []Value{Value(i)})
	}
	bu := budget.New(context.Background(), budget.Limits{MaxNodes: 200, CheckEvery: 1})
	if _, err := JoinBudget(a, b, bu); err == nil {
		t.Fatal("JoinBudget materialized a cross product past its node budget")
	}
}
