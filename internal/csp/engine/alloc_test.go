//go:build !race

package engine

import (
	"math/rand"
	"testing"
)

// The compiled probe path must allocate nothing per query: all scratch is
// preallocated in the cursor, probes are uint64 map lookups, and Solve
// returns a cursor-owned buffer. (Excluded under -race: the race runtime
// instruments map access with allocations of its own.)
func TestSolveAndCountZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	c := randomCSP(rng)
	td := randomTD(c, rng)
	plan, err := Compile(c, td)
	if err != nil {
		t.Fatal(err)
	}
	cu := plan.NewCursor()
	pins := []Pin{{Var: 0, Val: 0}}
	if got := testing.AllocsPerRun(200, func() {
		cu.Solve(pins)
	}); got != 0 {
		t.Fatalf("Solve allocates %v per query, want 0", got)
	}
	if got := testing.AllocsPerRun(200, func() {
		cu.Count(pins)
	}); got != 0 {
		t.Fatalf("Count allocates %v per query, want 0", got)
	}
	if got := testing.AllocsPerRun(200, func() {
		cu.Solve(nil)
	}); got != 0 {
		t.Fatalf("pin-free Solve allocates %v per query, want 0", got)
	}
}
