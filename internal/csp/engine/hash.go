package engine

import "hypertree/internal/csp"

// hashFunc hashes the values of row at the given columns. Both sides of a
// join probe hash parallel column lists in the same order, so equal value
// sequences always collide into the same bucket regardless of which table
// they come from.
type hashFunc func(row []csp.Value, cols []int32) uint64

// tupleHash is FNV-1a over the selected values followed by a murmur-style
// avalanche (low-entropy domains like {0,1} would otherwise pile into a few
// buckets). The hash is only a bucket discriminator: every probe re-verifies
// candidates value-by-value (node.matchRow), so a collision costs one extra
// comparison, never a wrong answer.
func tupleHash(row []csp.Value, cols []int32) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range cols {
		h ^= uint64(row[c])
		h *= 1099511628211
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

// tupleHashHook is captured by Compile into each Plan (indexes and probes
// must use the same function for the lifetime of a plan). Engine tests swap
// in adversarial hashes — a constant — before compiling to prove that
// correctness never depends on hash quality.
var tupleHashHook hashFunc = tupleHash
