package engine

import (
	"fmt"

	"hypertree/internal/csp"
)

// Pin is a per-query unary assignment: variable Var must take value Val.
// Pins are residual filters pushed into the index probes — the plan itself
// is never touched. A query with pins answers exactly what the reference
// solvers answer on a CSP copy whose pinned domains are restricted to the
// pinned value ({Val} if Val is in the domain, {} otherwise).
type Pin struct {
	Var int
	Val csp.Value
}

// Cursor holds all mutable per-query state for one goroutine. Any number of
// cursors can query the same Plan concurrently with zero synchronization; a
// single cursor must not be shared. All scratch is allocated once in
// NewCursor, so the Solve and Count probe paths allocate nothing per query.
type Cursor struct {
	p *Plan

	// epoch stamps replace O(n) clearing between queries: a slot is live in
	// this query iff its stamp equals the current epoch.
	epoch    uint32
	pinEpoch []uint32 // per variable: pinned this query?
	pinVal   []csp.Value
	liveEp   []uint32 // per (node,row): subtree support proven
	deadEp   []uint32 // per (node,row): subtree support refuted
	choice   []int32  // per node: currently chosen row
	counts   []int    // per (node,row): Count DP scratch
	countOv  []bool   // per (node,row): Count DP saturated below this row
	result   []csp.Value
}

// NewCursor allocates a query cursor for the plan.
func (p *Plan) NewCursor() *Cursor {
	return &Cursor{
		p:        p,
		pinEpoch: make([]uint32, p.numVars),
		pinVal:   make([]csp.Value, p.numVars),
		liveEp:   make([]uint32, p.rowsTot),
		deadEp:   make([]uint32, p.rowsTot),
		choice:   make([]int32, len(p.nodes)),
		counts:   make([]int, p.rowsTot),
		countOv:  make([]bool, p.rowsTot),
		result:   make([]csp.Value, p.numVars),
	}
}

// begin starts a query: bumps the epoch and stamps the pins. It returns
// false if some pin is invalid — value outside the variable's domain, or two
// pins on one variable disagreeing — which makes every query unsatisfiable.
func (cu *Cursor) begin(pins []Pin) bool {
	cu.epoch++
	if cu.epoch == 0 { // wrapped: old stamps would alias the new epoch
		clearU32(cu.pinEpoch)
		clearU32(cu.liveEp)
		clearU32(cu.deadEp)
		cu.epoch = 1
	}
	ok := true
	for _, pin := range pins {
		if pin.Var < 0 || pin.Var >= cu.p.numVars {
			panic(fmt.Sprintf("engine: pin on variable %d out of range", pin.Var))
		}
		if cu.pinEpoch[pin.Var] == cu.epoch && cu.pinVal[pin.Var] != pin.Val {
			ok = false // conflicting duplicate pins: empty restricted domain
		}
		cu.pinEpoch[pin.Var] = cu.epoch
		cu.pinVal[pin.Var] = pin.Val
		if !valueIn(cu.p.domains[pin.Var], pin.Val) {
			ok = false
		}
	}
	return ok
}

func (cu *Cursor) pinned(v int) bool { return cu.pinEpoch[v] == cu.epoch }

// rowOK reports whether row r of nd satisfies every pin on the node's
// variables — the residual filter applied at every probe.
func (cu *Cursor) rowOK(nd *node, r int32) bool {
	row := nd.row(r)
	for i, v := range nd.vars {
		if cu.pinEpoch[v] == cu.epoch && row[i] != cu.pinVal[v] {
			return false
		}
	}
	return true
}

// support reports whether row r of node k extends to a pin-respecting
// assignment of k's whole subtree. The answer depends only on (k, r) and
// the query's pins — a subtree sees the outside world only through its own
// row — so it is memoized per query via epoch stamps: each (node,row) is
// decided at most once, keeping parameterized Solve polynomial.
func (cu *Cursor) support(k, r int32) bool {
	off := cu.p.rowOff[k] + r
	if cu.liveEp[off] == cu.epoch {
		return true
	}
	if cu.deadEp[off] == cu.epoch {
		return false
	}
	nd := &cu.p.nodes[k]
	row := nd.row(r)
	ok := true
	for _, ch := range nd.children {
		cn := &cu.p.nodes[ch]
		found := false
		for _, rr := range cn.index[cu.p.hash(row, cn.pcols)] {
			if cn.matchRow(rr, row) && cu.rowOK(cn, rr) && cu.support(ch, rr) {
				found = true
				break
			}
		}
		if !found {
			ok = false
			break
		}
	}
	if ok {
		cu.liveEp[off] = cu.epoch
	} else {
		cu.deadEp[off] = cu.epoch
	}
	return ok
}

// Solve returns a complete consistent assignment respecting the pins, or
// (nil, false). The returned slice is owned by the cursor and overwritten by
// the next call — copy it to retain it. Semantics match csp.SolveFromTD on
// the pin-restricted CSP exactly, including which assignment is returned:
// at every node (in top-down order) the first supported candidate
// compatible with the parent's chosen row is taken, which is precisely the
// reference's rows[0] pick on its pin-aware reduced tables.
func (cu *Cursor) Solve(pins []Pin) ([]csp.Value, bool) {
	p := cu.p
	if len(pins) == 0 {
		if p.solution == nil {
			return nil, false
		}
		copy(cu.result, p.solution)
		return cu.result, true
	}
	ok := cu.begin(pins)
	if !ok || p.tablesEmpty || p.emptyFreeDom {
		return nil, false
	}
	for k := range p.nodes {
		nd := &p.nodes[k]
		chosen := int32(-1)
		if nd.parent < 0 {
			for r := int32(0); r < nd.nrows; r++ {
				if cu.rowOK(nd, r) && cu.support(int32(k), r) {
					chosen = r
					break
				}
			}
		} else {
			prow := p.nodes[nd.parent].row(cu.choice[nd.parent])
			for _, r := range nd.index[p.hash(prow, nd.pcols)] {
				if nd.matchRow(r, prow) && cu.rowOK(nd, r) && cu.support(int32(k), r) {
					chosen = r
					break
				}
			}
		}
		if chosen < 0 {
			// Only reachable at the root: a supported parent row guarantees
			// a supported compatible row in every child.
			return nil, false
		}
		cu.choice[k] = chosen
		row := nd.row(chosen)
		for i, v := range nd.vars {
			cu.result[v] = row[i]
		}
	}
	for _, v := range p.free {
		if cu.pinned(v) {
			cu.result[v] = cu.pinVal[v]
		} else {
			cu.result[v] = p.domains[v][0]
		}
	}
	return cu.result, true
}

// Count returns the number of complete consistent assignments respecting
// the pins (csp.CountFromTD semantics on the pin-restricted CSP: free
// variables contribute a |restricted domain| factor). Counts too large for
// an int saturate at math.MaxInt instead of wrapping; use CountExact to
// detect saturation.
func (cu *Cursor) Count(pins []Pin) int {
	n, _ := cu.CountExact(pins)
	return n
}

// CountExact is Count plus an exactness bit: exact is false when the DP
// saturated at math.MaxInt on the way to the answer, making count a
// saturated lower bound rather than the true (int-overflowing) value. The
// reference csp.CountFromTD wraps on overflow; the engine refuses to serve
// wrapped values as authoritative, so this is the one place its answers
// deliberately diverge from the reference.
func (cu *Cursor) CountExact(pins []Pin) (count int, exact bool) {
	p := cu.p
	if len(pins) == 0 {
		return p.total, !p.totalOv
	}
	ok := cu.begin(pins)
	if !ok || p.tablesEmpty {
		return 0, true
	}
	counts, ovRows := cu.counts, cu.countOv
	for k := len(p.nodes) - 1; k >= 0; k-- {
		nd := &p.nodes[k]
		off := p.rowOff[k]
		for r := int32(0); r < nd.nrows; r++ {
			if !cu.rowOK(nd, r) {
				counts[off+r] = 0
				ovRows[off+r] = false
				continue
			}
			row := nd.row(r)
			total, tOv := 1, false
			for _, ch := range nd.children {
				cn := &p.nodes[ch]
				coff := p.rowOff[ch]
				sub, sOv := 0, false
				for _, rr := range cn.index[p.hash(row, cn.pcols)] {
					if cn.matchRow(rr, row) {
						var o bool
						sub, o = satAdd(sub, counts[coff+rr])
						sOv = sOv || o || ovRows[coff+rr]
					}
				}
				var o bool
				total, o = satMul(total, sub)
				tOv = tOv || o
				if total == 0 {
					// Exactly zero extensions, whatever saturated elsewhere.
					tOv = false
					break
				}
				tOv = tOv || sOv
			}
			counts[off+r] = total
			ovRows[off+r] = tOv
		}
	}
	sum, sumOv := 0, false
	for r := int32(0); r < p.nodes[0].nrows; r++ {
		var o bool
		sum, o = satAdd(sum, counts[r])
		sumOv = sumOv || o || ovRows[r]
	}
	for _, v := range p.free {
		if sum == 0 {
			break
		}
		if !cu.pinned(v) {
			var o bool
			sum, o = satMul(sum, len(p.domains[v]))
			sumOv = sumOv || o
		}
	}
	if sum == 0 {
		sumOv = false
	}
	return sum, !sumOv
}

// EnumerateFunc streams up to limit (limit <= 0: all) complete consistent
// assignments respecting the pins, in exactly the order csp.EnumerateFromTD
// produces them on the pin-restricted CSP. The slice passed to fn is owned
// by the cursor and reused — copy it to retain it. fn returning false stops
// the enumeration early.
func (cu *Cursor) EnumerateFunc(limit int, pins []Pin, fn func(sol []csp.Value) bool) {
	p := cu.p
	if !cu.begin(pins) || p.tablesEmpty || len(p.nodes) == 0 {
		return
	}
	for v := 0; v < p.numVars; v++ {
		// Unconstrained defaults: the first value of the restricted domain.
		if cu.pinned(v) {
			cu.result[v] = cu.pinVal[v]
		} else {
			if len(p.domains[v]) == 0 {
				return // reference bails out when any domain is empty
			}
			cu.result[v] = p.domains[v][0]
		}
	}
	emitted := 0
	var rec func(k int) bool
	rec = func(k int) bool {
		if k == len(p.nodes) {
			if !fn(cu.result) {
				return false
			}
			emitted++
			return limit <= 0 || emitted < limit
		}
		nd := &p.nodes[k]
		if nd.parent < 0 {
			for r := int32(0); r < nd.nrows; r++ {
				if !cu.rowOK(nd, r) || !cu.support(int32(k), r) {
					continue
				}
				cu.choice[k] = r
				row := nd.row(r)
				for i, v := range nd.vars {
					cu.result[v] = row[i]
				}
				if !rec(k + 1) {
					return false
				}
			}
			return true
		}
		prow := p.nodes[nd.parent].row(cu.choice[nd.parent])
		for _, r := range nd.index[p.hash(prow, nd.pcols)] {
			if !nd.matchRow(r, prow) || !cu.rowOK(nd, r) || !cu.support(int32(k), r) {
				continue
			}
			cu.choice[k] = r
			row := nd.row(r)
			for i, v := range nd.vars {
				cu.result[v] = row[i]
			}
			if !rec(k + 1) {
				return false
			}
		}
		return true
	}
	rec(0)
}

// Enumerate collects EnumerateFunc's stream into fresh slices. A nil result
// means no assignments (matching the reference's nil returns).
func (cu *Cursor) Enumerate(limit int, pins []Pin) [][]csp.Value {
	var out [][]csp.Value
	cu.EnumerateFunc(limit, pins, func(sol []csp.Value) bool {
		out = append(out, append([]csp.Value(nil), sol...))
		return true
	})
	return out
}

func valueIn(domain []csp.Value, x csp.Value) bool {
	for _, d := range domain {
		if d == x {
			return true
		}
	}
	return false
}

func clearU32(s []uint32) {
	for i := range s {
		s[i] = 0
	}
}
