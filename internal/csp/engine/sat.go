package engine

import "math"

// Saturating arithmetic for the solution-count DPs. Counts are products of
// subtree counts and |domain| factors, so realistic instances overflow int
// long before they exhaust memory; wrapping would serve negative or
// nonsense counts as authoritative answers. Both helpers assume non-negative
// operands (counts never go negative) and report whether they clamped.

// satAdd returns a+b clamped to math.MaxInt, and whether it clamped.
func satAdd(a, b int) (int, bool) {
	if a > math.MaxInt-b {
		return math.MaxInt, true
	}
	return a + b, false
}

// satMul returns a*b clamped to math.MaxInt, and whether it clamped.
func satMul(a, b int) (int, bool) {
	if a == 0 || b == 0 {
		return 0, false
	}
	if a > math.MaxInt/b {
		return math.MaxInt, true
	}
	return a * b, false
}
