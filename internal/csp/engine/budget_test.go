package engine

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"hypertree/internal/budget"
	"hypertree/internal/csp"
	"hypertree/internal/decomp"
)

// hugeBagInstance builds the adversarial shape the compile budget exists
// for: a single 16-variable bag over an 8-value domain whose enumeration
// walks 8^16 ≈ 3·10^14 candidates (BagTable prunes only at the leaves),
// from a request a few hundred bytes long. One sparse 16-ary constraint
// keeps the decomposition valid while the walk stays astronomical.
func hugeBagInstance() (*csp.CSP, *decomp.TreeDecomposition) {
	const n, d = 16, 8
	domain := make([]csp.Value, d)
	for i := range domain {
		domain[i] = csp.Value(i)
	}
	c := csp.New(n, domain)
	scope := make([]int, n)
	for i := range scope {
		scope[i] = i
	}
	c.AddConstraint(scope, [][]csp.Value{make([]csp.Value, n)}) // all-zeros only
	td := &decomp.TreeDecomposition{
		Tree: decomp.Tree{Parent: []int{-1}, Root: 0},
		Bags: [][]int{scope},
	}
	return c, td
}

// A node budget must stop CompileBudget on the huge bag long before the
// 8^16 walk finishes, with the typed error and the node-budget reason.
func TestCompileBudgetTripsOnHugeBag(t *testing.T) {
	c, td := hugeBagInstance()
	bu := budget.New(context.Background(), budget.Limits{MaxNodes: 10_000, CheckEvery: 16})
	start := time.Now()
	plan, err := CompileBudget(c, td, bu)
	if plan != nil {
		t.Fatal("CompileBudget returned a plan past its budget")
	}
	var ie *csp.InterruptedError
	if !errors.As(err, &ie) {
		t.Fatalf("CompileBudget error = %v, want *csp.InterruptedError", err)
	}
	if ie.Reason != budget.StopNodes {
		t.Fatalf("Reason = %q, want %q", ie.Reason, budget.StopNodes)
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("budget trip took %v — ticks are not reaching the bag walk", el)
	}
}

// A canceled context must abort the same compile with the cancellation
// reason — the server relies on this for client disconnects and drain.
func TestCompileBudgetHonorsContextCancel(t *testing.T) {
	c, td := hugeBagInstance()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	bu := budget.New(ctx, budget.Limits{CheckEvery: 1})
	_, err := CompileBudget(c, td, bu)
	var ie *csp.InterruptedError
	if !errors.As(err, &ie) || ie.Reason != budget.StopCanceled {
		t.Fatalf("CompileBudget error = %v, want *csp.InterruptedError(canceled)", err)
	}
}

// satInstance: 70 boolean variables, one trivial constraint on variable 0,
// a single-bag decomposition covering only that variable. The remaining 69
// variables are free, so the true solution count is 2^70 — past int range.
func satInstance() (*csp.CSP, *decomp.TreeDecomposition) {
	c := csp.New(70, []csp.Value{0, 1})
	c.AddConstraint([]int{0}, [][]csp.Value{{0}, {1}})
	td := &decomp.TreeDecomposition{
		Tree: decomp.Tree{Parent: []int{-1}, Root: 0},
		Bags: [][]int{{0}},
	}
	return c, td
}

// The count DP must saturate at math.MaxInt with the overflow flag raised,
// where the reference CountFromTD silently wraps (2^70 ≡ 0 mod 2^64) —
// this is the engine's one documented divergence from the reference.
func TestCountSaturatesInsteadOfWrapping(t *testing.T) {
	c, td := satInstance()
	plan, err := Compile(c, td)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	st := plan.Stats()
	if st.Solutions != math.MaxInt || !st.SolutionsOverflow {
		t.Fatalf("Stats = (%d, overflow=%v), want (MaxInt, true)", st.Solutions, st.SolutionsOverflow)
	}
	if ref := csp.CountFromTD(c, td); ref == math.MaxInt {
		t.Fatalf("reference unexpectedly saturates too (%d) — divergence test is vacuous", ref)
	}

	cu := plan.NewCursor()
	if n, exact := cu.CountExact(nil); n != math.MaxInt || exact {
		t.Fatalf("CountExact(nil) = (%d, %v), want (MaxInt, false)", n, exact)
	}
	// Pinning one free variable halves the count to 2^69 — still saturated.
	if n, exact := cu.CountExact([]Pin{{Var: 5, Val: 1}}); n != math.MaxInt || exact {
		t.Fatalf("CountExact(pin) = (%d, %v), want (MaxInt, false)", n, exact)
	}
	// Pinning a value outside the domain empties it: exactly zero, exact,
	// and the overflow flag must not leak through a ×0.
	if n, exact := cu.CountExact([]Pin{{Var: 5, Val: 9}}); n != 0 || !exact {
		t.Fatalf("CountExact(bad pin) = (%d, %v), want (0, true)", n, exact)
	}
}

// Counts that fit in an int must stay exact — the saturation path must not
// taint ordinary instances.
func TestCountExactOnSmallInstance(t *testing.T) {
	c := csp.New(3, []csp.Value{0, 1})
	c.AddConstraint([]int{0, 1}, [][]csp.Value{{0, 0}, {1, 1}})
	c.AddConstraint([]int{1, 2}, [][]csp.Value{{0, 0}, {1, 1}})
	td := &decomp.TreeDecomposition{
		Tree: decomp.Tree{Parent: []int{-1, 0}, Root: 0},
		Bags: [][]int{{0, 1}, {1, 2}},
	}
	plan, err := Compile(c, td)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	st := plan.Stats()
	if st.Solutions != 2 || st.SolutionsOverflow {
		t.Fatalf("Stats = (%d, overflow=%v), want (2, false)", st.Solutions, st.SolutionsOverflow)
	}
	cu := plan.NewCursor()
	if n, exact := cu.CountExact([]Pin{{Var: 0, Val: 1}}); n != 1 || !exact {
		t.Fatalf("CountExact(pin 0=1) = (%d, %v), want (1, true)", n, exact)
	}
}
