// Package engine compiles a (CSP, decomposition) pair once into an
// immutable query Plan and then answers CSP queries against it at serving
// speed. Compilation does all the per-instance work up front: the bag tables
// of join-tree clustering (thesis §2.4) are materialized and fully
// Yannakakis-reduced (one bottom-up and one top-down semijoin pass), rows
// are packed into flat []Value arenas, and every child table carries a
// uint64 tuple-hash index on its columns shared with the parent. A compiled
// Plan serves Solve, Count, and Enumerate(limit) — optionally parameterized
// by per-query unary pins pushed into the index probes as residual filters —
// from any number of goroutines with zero synchronization: all mutable
// per-query state lives in a Cursor owned by a single goroutine.
//
// The engine's answers are pinned by differential tests to be *exactly*
// equal (values and enumeration order) to the reference paths
// csp.SolveFromTD, csp.CountFromTD, csp.EnumerateFromTD and csp.SolveFromGHD.
// One deliberate divergence: solution counts saturate at math.MaxInt with an
// explicit overflow flag (Stats.SolutionsOverflow, Cursor.CountExact) where
// csp.CountFromTD silently wraps — a serving endpoint must not hand clients
// wrapped garbage as an authoritative answer.
// A query with pins behaves exactly like the reference run on a copy of the
// CSP whose pinned domains are restricted to the pinned value. This works
// because both sides traverse nodes in csp.TopDownOrder, all relational
// operators preserve row order, and by the connectedness condition a row's
// consistency with the global partial assignment is equivalent to its
// compatibility with the parent's chosen row.
package engine

import (
	"fmt"

	"hypertree/internal/budget"
	"hypertree/internal/csp"
	"hypertree/internal/decomp"
)

// node is one decomposition node in BFS (top-down) order. All fields are
// immutable after Compile.
type node struct {
	vars  []int       // column -> variable id
	width int         // len(vars)
	arena []csp.Value // row r is arena[r*width : (r+1)*width]
	nrows int32

	parent   int32   // BFS index of the parent node, -1 for the root
	pcols    []int32 // columns of the shared variables in the PARENT's table
	mcols    []int32 // columns of the shared variables in THIS table (parallel)
	children []int32 // BFS indexes of children, in BFS order

	// index buckets this node's rows by the hash of their mcols values; a
	// probe hashes the parent row at pcols. Buckets keep row order. nil for
	// the root (root candidates are a plain scan).
	index map[uint64][]int32
}

// row returns row r of the node's arena (a view, never a copy).
func (n *node) row(r int32) []csp.Value {
	return n.arena[int(r)*n.width : (int(r)+1)*n.width]
}

// matchRow reports whether row r agrees with the parent row prow on the
// shared columns — the exact comparison behind every hash bucket hit.
func (n *node) matchRow(r int32, prow []csp.Value) bool {
	row := n.row(r)
	for i, mc := range n.mcols {
		if row[mc] != prow[n.pcols[i]] {
			return false
		}
	}
	return true
}

// Plan is a compiled, immutable query plan. It is safe for concurrent use:
// all methods are read-only, and per-query scratch lives in Cursors.
type Plan struct {
	numVars int
	domains [][]csp.Value
	nodes   []node  // BFS order; nodes[0] is the root (empty when unsat)
	rowOff  []int32 // node -> offset into flat per-row cursor state
	rowsTot int
	free    []int // variables in no bag ("free"); get Domains[v][0]

	tablesEmpty  bool        // a required table reduced to empty: no solutions, ever
	emptyFreeDom bool        // some free variable has an empty domain (Solve unsat)
	anyEmptyDom  bool        // some variable has an empty domain (Enumerate -> nil)
	solution     []csp.Value // canonical pin-free solution, nil if unsat
	total        int         // pin-free solution count, saturated at MaxInt
	totalOv      bool        // total saturated: it is a lower bound, not exact
	width        int         // decomposition width, for Stats
	hash         hashFunc
}

// Stats summarizes a compiled plan for observability surfaces.
type Stats struct {
	Nodes       int  `json:"nodes"`
	Rows        int  `json:"rows"` // total materialized (reduced) rows
	MaxBagRows  int  `json:"max_bag_rows"`
	Width       int  `json:"width"`
	NumVars     int  `json:"num_vars"`
	Satisfiable bool `json:"satisfiable"`
	Solutions   int  `json:"solutions"`
	// SolutionsOverflow reports the count DP saturated at math.MaxInt:
	// Solutions is then a saturated lower bound, not the true value (which
	// does not fit an int). The reference csp.CountFromTD wraps instead.
	SolutionsOverflow bool `json:"solutions_overflow,omitempty"`
}

// Stats returns compile-time facts about the plan.
func (p *Plan) Stats() Stats {
	s := Stats{
		Nodes:             len(p.nodes),
		Rows:              p.rowsTot,
		Width:             p.width,
		NumVars:           p.numVars,
		Satisfiable:       p.solution != nil,
		Solutions:         p.total,
		SolutionsOverflow: p.totalOv,
	}
	for i := range p.nodes {
		if int(p.nodes[i].nrows) > s.MaxBagRows {
			s.MaxBagRows = int(p.nodes[i].nrows)
		}
	}
	return s
}

// NumVars returns the number of variables of the compiled CSP.
func (p *Plan) NumVars() int { return p.numVars }

// Compile builds a Plan from a tree decomposition of c's constraint
// hypergraph, mirroring csp.SolveFromTD's clustering: each constraint is
// placed at the first bag containing its scope and each node's table is the
// enumeration of its bag under the constraints placed there.
func Compile(c *csp.CSP, td *decomp.TreeDecomposition) (*Plan, error) {
	return CompileBudget(c, td, nil)
}

// CompileBudget is Compile under a budget: table materialization and the
// count DP tick bu once per unit of work (an enumeration step, an emitted
// or probed row) and compilation aborts with a *csp.InterruptedError as
// soon as any limit trips — a bag whose |domain|^|bag| space is
// astronomically larger than the request that declared it cannot wedge the
// caller. A nil budget never trips.
func CompileBudget(c *csp.CSP, td *decomp.TreeDecomposition, bu *budget.B) (*Plan, error) {
	if err := td.Validate(c.Hypergraph()); err != nil {
		return nil, fmt.Errorf("engine: invalid tree decomposition: %w", err)
	}
	placed := csp.PlaceConstraints(c, td.Bags)
	tables := make([]*csp.Table, len(td.Bags))
	for i, bag := range td.Bags {
		t, err := c.BagTableBudget(bag, placed[i], bu)
		if err != nil {
			return nil, err
		}
		tables[i] = t
	}
	return build(c, tables, td.Parent, td.Root, td.Width(), bu)
}

// CompileGHD builds a Plan from a complete generalized hypertree
// decomposition, mirroring csp.SolveFromGHD: each node's table is the
// projection onto its bag of the join of its λ-set relations — no
// enumeration over domains, so compile cost is output-sensitive.
func CompileGHD(c *csp.CSP, g *decomp.GHD) (*Plan, error) {
	return CompileGHDBudget(c, g, nil)
}

// CompileGHDBudget is CompileGHD under a budget, ticking bu per joined,
// projected or probed row; see CompileBudget.
func CompileGHDBudget(c *csp.CSP, g *decomp.GHD, bu *budget.B) (*Plan, error) {
	h := c.Hypergraph()
	if err := g.Validate(h); err != nil {
		return nil, fmt.Errorf("engine: invalid GHD: %w", err)
	}
	if !g.IsComplete(h) {
		return nil, fmt.Errorf("engine: GHD must be complete (call Complete first)")
	}
	tables := make([]*csp.Table, len(g.Bags))
	for i, bag := range g.Bags {
		if len(bag) == 0 {
			// The empty bag's relation is the nullary identity (one empty
			// tuple), not the empty relation.
			tables[i] = &csp.Table{Rows: [][]csp.Value{{}}}
			continue
		}
		var t *csp.Table
		for _, e := range g.Lambdas[i] {
			et := c.ConstraintTable(e)
			if t == nil {
				t = et
			} else {
				joined, err := csp.JoinBudget(t, et, bu)
				if err != nil {
					return nil, err
				}
				t = joined
			}
		}
		if t == nil {
			t = &csp.Table{}
		}
		proj, err := csp.ProjectBudget(t, bag, bu)
		if err != nil {
			return nil, err
		}
		tables[i] = proj
	}
	return build(c, tables, g.Parent, g.Root, g.Width(), bu)
}

// build runs the shared compile pipeline: Yannakakis reduction, arena
// packing, index construction, the pin-free count DP, and the canonical
// pin-free solution. The count DP ticks bu per candidate-row check (its
// only superlinear-in-rows phase); the semijoin passes and index build are
// linear in rows already paid for during materialization.
func build(c *csp.CSP, tables []*csp.Table, parentOf []int, root, width int, bu *budget.B) (*Plan, error) {
	p := &Plan{numVars: c.NumVars, width: width, hash: tupleHashHook}
	p.domains = make([][]csp.Value, c.NumVars)
	for v := range p.domains {
		p.domains[v] = append([]csp.Value(nil), c.Domains[v]...)
		if len(p.domains[v]) == 0 {
			p.anyEmptyDom = true
		}
	}
	inBag := make([]bool, c.NumVars)
	for _, t := range tables {
		for _, v := range t.Vars {
			inBag[v] = true
		}
	}
	for v := 0; v < c.NumVars; v++ {
		if !inBag[v] {
			p.free = append(p.free, v)
			if len(p.domains[v]) == 0 {
				p.emptyFreeDom = true
			}
		}
	}

	order := csp.TopDownOrder(parentOf, root)

	// Full Yannakakis reduction. After the bottom-up pass every row has an
	// extension into its whole subtree; after the top-down pass every row is
	// also reachable from some root row, so each surviving row participates
	// in at least one solution (over the bag variables).
	for _, t := range tables {
		if len(t.Vars) > 0 && len(t.Rows) == 0 {
			p.tablesEmpty = true
		}
	}
	if !p.tablesEmpty {
		for i := len(order) - 1; i >= 1; i-- {
			nd := order[i]
			pa := parentOf[nd]
			tables[pa] = csp.Semijoin(tables[pa], tables[nd])
			if len(tables[pa].Vars) > 0 && len(tables[pa].Rows) == 0 {
				p.tablesEmpty = true
				break
			}
		}
	}
	if p.tablesEmpty {
		// Unsatisfiable for every query (pins only shrink the solution
		// space): compile the O(1) empty plan. total stays 0.
		return p, nil
	}
	for _, nd := range order[1:] {
		// Top-down pass; cannot empty a table (every remaining parent row
		// has support in each child after the bottom-up pass).
		tables[nd] = csp.Semijoin(tables[nd], tables[parentOf[nd]])
	}

	// Pack nodes in BFS order.
	pos := make([]int32, len(tables))
	for k, orig := range order {
		pos[orig] = int32(k)
	}
	p.nodes = make([]node, len(order))
	p.rowOff = make([]int32, len(order)+1)
	for k, orig := range order {
		t := tables[orig]
		n := &p.nodes[k]
		n.vars = append([]int(nil), t.Vars...)
		n.width = len(t.Vars)
		n.nrows = int32(len(t.Rows))
		n.arena = make([]csp.Value, 0, len(t.Rows)*n.width)
		for _, r := range t.Rows {
			n.arena = append(n.arena, r...)
		}
		if orig == root {
			n.parent = -1
		} else {
			pk := pos[parentOf[orig]]
			n.parent = pk
			pt := tables[parentOf[orig]]
			pcol := make(map[int]int32, len(pt.Vars))
			for j, v := range pt.Vars {
				pcol[v] = int32(j)
			}
			for j, v := range t.Vars {
				if pc, ok := pcol[v]; ok {
					n.mcols = append(n.mcols, int32(j))
					n.pcols = append(n.pcols, pc)
				}
			}
			p.nodes[pk].children = append(p.nodes[pk].children, int32(k))
		}
		p.rowOff[k+1] = p.rowOff[k] + n.nrows
	}
	p.rowsTot = int(p.rowOff[len(order)])

	// Hash indexes for every non-root node, on its shared-with-parent
	// columns. An empty shared set degenerates to one bucket holding every
	// row — exactly the "all rows compatible" semantics of the reference.
	for k := 1; k < len(p.nodes); k++ {
		n := &p.nodes[k]
		n.index = make(map[uint64][]int32, n.nrows)
		for r := int32(0); r < n.nrows; r++ {
			h := p.hash(n.row(r), n.mcols)
			n.index[h] = append(n.index[h], r)
		}
	}

	// Pin-free count DP (csp.CountFromTD semantics, except that overflow
	// saturates at MaxInt instead of wrapping): counts[row] = number of
	// extensions of the row into its subtree; total = root sum times a
	// |domain| factor per free variable. ovRows marks rows whose count
	// saturated somewhere below, so the final total carries an honest
	// "lower bound only" flag.
	counts := make([]int, p.rowsTot)
	ovRows := make([]bool, p.rowsTot)
	for k := len(p.nodes) - 1; k >= 0; k-- {
		n := &p.nodes[k]
		off := p.rowOff[k]
		for r := int32(0); r < n.nrows; r++ {
			row := n.row(r)
			total, tOv := 1, false
			for _, ch := range n.children {
				cn := &p.nodes[ch]
				coff := p.rowOff[ch]
				sub, sOv := 0, false
				for _, rr := range cn.index[p.hash(row, cn.pcols)] {
					if !bu.Tick() {
						return nil, csp.Interrupted(bu)
					}
					if cn.matchRow(rr, row) {
						var o bool
						sub, o = satAdd(sub, counts[coff+rr])
						sOv = sOv || o || ovRows[coff+rr]
					}
				}
				var o bool
				total, o = satMul(total, sub)
				tOv = tOv || o
				if total == 0 {
					// Exactly zero extensions, whatever saturated elsewhere.
					tOv = false
					break
				}
				tOv = tOv || sOv
			}
			counts[off+r] = total
			ovRows[off+r] = tOv
		}
	}
	for r := int32(0); r < p.nodes[0].nrows; r++ {
		var o bool
		p.total, o = satAdd(p.total, counts[r])
		p.totalOv = p.totalOv || o || ovRows[r]
	}
	for _, v := range p.free {
		var o bool
		p.total, o = satMul(p.total, len(p.domains[v]))
		p.totalOv = p.totalOv || o
	}
	if p.total == 0 {
		p.totalOv = false
	}

	// Canonical pin-free solution: the greedy top-down walk. On fully
	// reduced tables every compatible candidate extends, so the walk never
	// backtracks, and it picks exactly the rows the reference's
	// selectConsistent/rows[0] pick does.
	if !p.emptyFreeDom {
		sol := make([]csp.Value, p.numVars)
		choice := make([]int32, len(p.nodes))
		for k := range p.nodes {
			n := &p.nodes[k]
			r := int32(0)
			if n.parent >= 0 {
				prow := p.nodes[n.parent].row(choice[n.parent])
				r = -1
				for _, rr := range n.index[p.hash(prow, n.pcols)] {
					if n.matchRow(rr, prow) {
						r = rr
						break
					}
				}
				if r < 0 {
					// Unreachable after a full reduction; guard for misuse.
					panic(fmt.Sprintf("engine: reduced node %d has no support", k))
				}
			}
			choice[k] = r
			row := n.row(r)
			for i, v := range n.vars {
				sol[v] = row[i]
			}
		}
		for _, v := range p.free {
			sol[v] = p.domains[v][0]
		}
		p.solution = sol
	}
	return p, nil
}
