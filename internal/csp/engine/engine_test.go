package engine

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"testing/quick"

	"hypertree/internal/csp"
	"hypertree/internal/decomp"
	"hypertree/internal/elim"
)

// randomCSP mirrors the generator of the csp package tests: small random
// CSPs with binary/ternary constraints and a full-domain unary constraint on
// every otherwise unconstrained variable (so decomposition bags stay
// coverable for GHDs).
func randomCSP(rng *rand.Rand) *csp.CSP {
	n := 3 + rng.Intn(4)
	d := 2 + rng.Intn(2)
	domain := make([]csp.Value, d)
	for i := range domain {
		domain[i] = i
	}
	c := csp.New(n, domain)
	m := 2 + rng.Intn(4)
	for k := 0; k < m; k++ {
		arity := 2 + rng.Intn(2)
		if arity > n {
			arity = n
		}
		scope := rng.Perm(n)[:arity]
		total := 1
		for i := 0; i < arity; i++ {
			total *= d
		}
		var tuples [][]csp.Value
		for t := 0; t < total; t++ {
			if rng.Intn(3) == 0 {
				continue
			}
			row := make([]csp.Value, arity)
			x := t
			for i := 0; i < arity; i++ {
				row[i] = x % d
				x /= d
			}
			tuples = append(tuples, row)
		}
		c.AddConstraint(scope, tuples)
	}
	constrained := make([]bool, n)
	for _, con := range c.Constraints {
		for _, v := range con.Scope {
			constrained[v] = true
		}
	}
	for v := 0; v < n; v++ {
		if !constrained[v] {
			var tuples [][]csp.Value
			for _, val := range domain {
				tuples = append(tuples, []csp.Value{val})
			}
			c.AddConstraint([]int{v}, tuples)
		}
	}
	return c
}

func randomTD(c *csp.CSP, rng *rand.Rand) *decomp.TreeDecomposition {
	return elim.TDFromOrdering(c.Hypergraph(), rng.Perm(c.NumVars))
}

// restrict returns the pin-restricted copy of c that defines the semantics
// of parameterized queries: Domains[v] = {val} if val is in the domain, {}
// otherwise.
func restrict(c *csp.CSP, pins []Pin) *csp.CSP {
	r := &csp.CSP{NumVars: c.NumVars, Constraints: c.Constraints, VarNames: c.VarNames}
	r.Domains = make([][]csp.Value, c.NumVars)
	for v := range r.Domains {
		r.Domains[v] = append([]csp.Value(nil), c.Domains[v]...)
	}
	for _, pin := range pins {
		// Pins restrict successively: conflicting duplicates intersect to
		// the empty domain, exactly as the engine treats them.
		in := false
		for _, d := range r.Domains[pin.Var] {
			if d == pin.Val {
				in = true
				break
			}
		}
		if in {
			r.Domains[pin.Var] = []csp.Value{pin.Val}
		} else {
			r.Domains[pin.Var] = nil
		}
	}
	return r
}

// checkAgainstReference asserts the full engine/reference contract on one
// (CSP, TD, pins) triple: Solve, Count, and Enumerate at several limits are
// exactly equal to the reference paths run on the pin-restricted CSP.
func checkAgainstReference(t *testing.T, c *csp.CSP, td *decomp.TreeDecomposition, pins []Pin) {
	t.Helper()
	plan, err := Compile(c, td)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	cu := plan.NewCursor()
	rc := restrict(c, pins)

	wantSol := csp.SolveFromTD(rc, td)
	gotSol, ok := cu.Solve(pins)
	if ok != (wantSol != nil) || (ok && !reflect.DeepEqual(gotSol, wantSol)) {
		t.Fatalf("Solve(%v) = %v,%v; reference %v", pins, gotSol, ok, wantSol)
	}

	wantCount := csp.CountFromTD(rc, td)
	if got := cu.Count(pins); got != wantCount {
		t.Fatalf("Count(%v) = %d; reference %d", pins, got, wantCount)
	}

	for _, limit := range []int{0, 1, 2, 7} {
		want := csp.EnumerateFromTD(rc, td, limit)
		got := cu.Enumerate(limit, pins)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("Enumerate(limit=%d, pins=%v) =\n%v\nreference\n%v", limit, pins, got, want)
		}
	}
}

// Property: on random CSPs and random tree decompositions, the compiled
// plan's pin-free answers are exactly the reference answers.
func TestPlanMatchesReferenceTD(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomCSP(rng)
		checkAgainstReference(t, c, randomTD(c, rng), nil)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: parameterized queries behave exactly like the reference on the
// pin-restricted CSP — including pins outside the domain (unsatisfiable) and
// pins on multiple variables.
func TestParameterizedQueriesMatchRestrictedReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomCSP(rng)
		td := randomTD(c, rng)
		npins := 1 + rng.Intn(3)
		pins := make([]Pin, 0, npins)
		for len(pins) < npins {
			v := rng.Intn(c.NumVars)
			// d+1 occasionally lands outside the domain on purpose.
			pins = append(pins, Pin{Var: v, Val: rng.Intn(len(c.Domains[v]) + 1)})
		}
		checkAgainstReference(t, c, td, pins)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: a plan compiled from a complete GHD solves exactly like
// csp.SolveFromGHD, and counts like brute force.
func TestPlanMatchesReferenceGHD(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomCSP(rng)
		h := c.Hypergraph()
		order := rng.Perm(c.NumVars)
		g, err := elim.GHDFromOrdering(h, order, false, rng)
		if err != nil {
			return false
		}
		g.Complete(h)
		plan, err := CompileGHD(c, g)
		if err != nil {
			t.Fatalf("CompileGHD: %v", err)
		}
		cu := plan.NewCursor()
		want := csp.SolveFromGHD(c, g)
		got, ok := cu.Solve(nil)
		if ok != (want != nil) || (ok && !reflect.DeepEqual(got, want)) {
			t.Fatalf("GHD Solve = %v,%v; reference %v", got, ok, want)
		}
		if gotN := cu.Count(nil); gotN != c.CountSolutionsBrute() {
			t.Fatalf("GHD Count = %d; brute %d", gotN, c.CountSolutionsBrute())
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Degenerate CSPs (empty relation, empty domain, constraint-free variables)
// must flow identically through the engine and all four reference paths.
func TestDegenerateCSPs(t *testing.T) {
	t.Run("empty relation", func(t *testing.T) {
		c := csp.New(3, []csp.Value{0, 1})
		c.AddConstraint([]int{0, 1}, nil) // no allowed tuples: unsatisfiable
		c.AddConstraint([]int{1, 2}, [][]csp.Value{{0, 0}, {1, 1}})
		td := elim.TDFromOrdering(c.Hypergraph(), []int{0, 1, 2})
		checkAgainstReference(t, c, td, nil)
		if sol, ok := mustPlan(t, c, td).NewCursor().Solve(nil); ok {
			t.Fatalf("empty relation should be unsatisfiable, got %v", sol)
		}
		h := c.Hypergraph()
		g, err := elim.GHDFromOrdering(h, []int{0, 1, 2}, true, nil)
		if err != nil {
			t.Fatal(err)
		}
		g.Complete(h)
		plan, err := CompileGHD(c, g)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := plan.NewCursor().Solve(nil); ok != (csp.SolveFromGHD(c, g) != nil) {
			t.Fatal("GHD engine/reference disagree on empty relation")
		}
	})
	t.Run("empty domain on constrained variable", func(t *testing.T) {
		c := csp.New(3, []csp.Value{0, 1})
		c.Domains[1] = nil
		c.AddConstraint([]int{0, 1}, [][]csp.Value{{0, 0}, {1, 1}})
		c.AddConstraint([]int{1, 2}, [][]csp.Value{{0, 1}})
		td := elim.TDFromOrdering(c.Hypergraph(), []int{2, 1, 0})
		checkAgainstReference(t, c, td, nil)
	})
	t.Run("constraint-free variable outside all bags", func(t *testing.T) {
		c := csp.New(3, []csp.Value{0, 1})
		c.AddNotEqual(0, 1)
		td := &decomp.TreeDecomposition{
			Tree: decomp.Tree{Parent: []int{-1}, Root: 0},
			Bags: [][]int{{0, 1}}, // variable 2 is in no bag
		}
		checkAgainstReference(t, c, td, nil)
		// Pinning the free variable must behave like restricting its domain.
		checkAgainstReference(t, c, td, []Pin{{Var: 2, Val: 1}})
		checkAgainstReference(t, c, td, []Pin{{Var: 2, Val: 9}})
	})
	t.Run("constraint-free variable with empty domain", func(t *testing.T) {
		c := csp.New(3, []csp.Value{0, 1})
		c.Domains[2] = nil
		c.AddNotEqual(0, 1)
		td := &decomp.TreeDecomposition{
			Tree: decomp.Tree{Parent: []int{-1}, Root: 0},
			Bags: [][]int{{0, 1}},
		}
		checkAgainstReference(t, c, td, nil)
	})
	t.Run("no constraints at all", func(t *testing.T) {
		c := csp.New(2, []csp.Value{0, 1})
		td := &decomp.TreeDecomposition{
			Tree: decomp.Tree{Parent: []int{-1}, Root: 0},
			Bags: [][]int{{}},
		}
		checkAgainstReference(t, c, td, nil)
		checkAgainstReference(t, c, td, []Pin{{Var: 0, Val: 1}})
	})
}

// Forced collisions: compile and query under a constant hash; every bucket
// probe degenerates to a scan, and answers must not change.
func TestPlanUnderForcedCollisions(t *testing.T) {
	old := tupleHashHook
	tupleHashHook = func([]csp.Value, []int32) uint64 { return 0 }
	defer func() { tupleHashHook = old }()
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 40; i++ {
		c := randomCSP(rng)
		td := randomTD(c, rng)
		pins := []Pin{{Var: rng.Intn(c.NumVars), Val: rng.Intn(3)}}
		checkAgainstReference(t, c, td, nil)
		checkAgainstReference(t, c, td, pins)
	}
}

// One plan, many goroutines, zero synchronization: every cursor must see
// exactly the reference answers. Run under -race this doubles as the
// data-race proof for concurrent serving.
func TestConcurrentCursors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := randomCSP(rng)
	td := randomTD(c, rng)
	plan := mustPlan(t, c, td)
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cu := plan.NewCursor()
			lrng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 200; i++ {
				pins := []Pin{{Var: lrng.Intn(c.NumVars), Val: lrng.Intn(3)}}
				rc := restrict(c, pins)
				want := csp.SolveFromTD(rc, td)
				got, ok := cu.Solve(pins)
				if ok != (want != nil) || (ok && !reflect.DeepEqual(got, want)) {
					errs <- "solve mismatch under concurrency"
					return
				}
				if cu.Count(pins) != csp.CountFromTD(rc, td) {
					errs <- "count mismatch under concurrency"
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

func TestCompileErrors(t *testing.T) {
	c := csp.New(2, []csp.Value{0, 1})
	c.AddNotEqual(0, 1)
	badTD := &decomp.TreeDecomposition{
		Tree: decomp.Tree{Parent: []int{-1}, Root: 0},
		Bags: [][]int{{0}}, // does not cover the constraint scope
	}
	if _, err := Compile(c, badTD); err == nil {
		t.Fatal("Compile should reject an invalid tree decomposition")
	}
	// A valid but incomplete GHD: two constraints share the scope {0,1}, one
	// node covers the bag with only the first, so the second edge has no
	// witnessing node.
	c2 := csp.New(2, []csp.Value{0, 1})
	c2.AddNotEqual(0, 1)
	c2.AddConstraint([]int{0, 1}, [][]csp.Value{{0, 1}})
	h := c2.Hypergraph()
	g := &decomp.GHD{
		TreeDecomposition: decomp.TreeDecomposition{
			Tree: decomp.Tree{Parent: []int{-1}, Root: 0},
			Bags: [][]int{{0, 1}},
		},
		Lambdas: [][]int{{0}},
	}
	if err := g.Validate(h); err != nil {
		t.Fatalf("test GHD should be valid: %v", err)
	}
	if g.IsComplete(h) {
		t.Fatal("test GHD should be incomplete")
	}
	if _, err := CompileGHD(c2, g); err == nil {
		t.Fatal("CompileGHD should reject an incomplete GHD")
	}
}

// Plan.Stats must reflect compile-time facts the daemon exposes.
func TestPlanStats(t *testing.T) {
	c := csp.New(2, []csp.Value{0, 1})
	c.AddNotEqual(0, 1)
	td := elim.TDFromOrdering(c.Hypergraph(), []int{0, 1})
	plan := mustPlan(t, c, td)
	st := plan.Stats()
	if !st.Satisfiable || st.Solutions != 2 || st.Nodes == 0 || st.Rows == 0 || st.NumVars != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func mustPlan(t *testing.T, c *csp.CSP, td *decomp.TreeDecomposition) *Plan {
	t.Helper()
	plan, err := Compile(c, td)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}
