package csp

import (
	"sort"
	"strconv"
	"strings"
)

// This file keeps the original string-keyed relational operators as
// differential-test references for the uint64-hash implementations in
// relation.go. They are correct but slow: every hashed row pays a
// strconv.Itoa + strings.Builder round trip, which is exactly the per-row
// cost the compiled query engine (internal/csp/engine) and the rewritten
// operators exist to avoid. Nothing outside the tests should call these.

// key encodes the values of row at the given columns for hashing. The '|'
// delimiter keeps the encoding prefix-free (so {1, 23} and {12, 3} differ)
// including for negative values; key(row, nil) is "" for every row, which is
// the correct nullary key (all rows agree on zero columns).
func key(row []Value, cols []int) string {
	var sb strings.Builder
	for _, c := range cols {
		sb.WriteString(strconv.Itoa(row[c]))
		sb.WriteByte('|')
	}
	return sb.String()
}

// joinRef is the reference natural join a ⋈ b.
func joinRef(a, b *Table) *Table {
	ai, bi := sharedColumns(a, b)
	sharedB := make(map[int]bool, len(bi))
	for _, j := range bi {
		sharedB[j] = true
	}
	outVars := append([]int(nil), a.Vars...)
	var extraB []int
	for j, v := range b.Vars {
		if !sharedB[j] {
			outVars = append(outVars, v)
			extraB = append(extraB, j)
		}
	}
	index := make(map[string][][]Value)
	for _, rb := range b.Rows {
		k := key(rb, bi)
		index[k] = append(index[k], rb)
	}
	out := &Table{Vars: outVars}
	for _, ra := range a.Rows {
		for _, rb := range index[key(ra, ai)] {
			row := make([]Value, 0, len(outVars))
			row = append(row, ra...)
			for _, j := range extraB {
				row = append(row, rb[j])
			}
			out.Rows = append(out.Rows, row)
		}
	}
	return out
}

// semijoinRef is the reference semijoin a ⋉ b, including the Semijoin
// ownership fix (the no-shared-vars nonempty branch returns a defensive
// copy, never the input table aliased).
func semijoinRef(a, b *Table) *Table {
	ai, bi := sharedColumns(a, b)
	if len(ai) == 0 {
		if len(b.Rows) == 0 {
			return &Table{Vars: a.Vars}
		}
		return &Table{Vars: a.Vars, Rows: append([][]Value(nil), a.Rows...)}
	}
	keys := make(map[string]struct{}, len(b.Rows))
	for _, rb := range b.Rows {
		keys[key(rb, bi)] = struct{}{}
	}
	out := &Table{Vars: a.Vars}
	for _, ra := range a.Rows {
		if _, ok := keys[key(ra, ai)]; ok {
			out.Rows = append(out.Rows, ra)
		}
	}
	return out
}

// projectRef is the reference projection π_vars(a) with dedup.
func projectRef(a *Table, vars []int) *Table {
	var cols []int
	var outVars []int
	pos := make(map[int]int, len(a.Vars))
	for i, v := range a.Vars {
		pos[v] = i
	}
	sorted := append([]int(nil), vars...)
	sort.Ints(sorted)
	for _, v := range sorted {
		if i, ok := pos[v]; ok {
			cols = append(cols, i)
			outVars = append(outVars, v)
		}
	}
	out := &Table{Vars: outVars}
	seen := make(map[string]struct{})
	for _, r := range a.Rows {
		row := make([]Value, len(cols))
		for i, c := range cols {
			row[i] = r[c]
		}
		k := key(row, allCols(len(row)))
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		out.Rows = append(out.Rows, row)
	}
	return out
}

func allCols(n int) []int {
	cols := make([]int, n)
	for i := range cols {
		cols[i] = i
	}
	return cols
}
