// Package ga implements the genetic algorithms of the thesis: GA-tw
// (Chapter 6) and GA-ghw (Chapter 7.1) for treewidth / generalized-
// hypertree-width upper bounds, and the self-adaptive island GA SAIGA-ghw
// (Chapter 7.2). Individuals are elimination orderings (permutations); the
// operators are the six permutation crossovers of thesis §4.3.2 (Figure 4.5)
// and the six permutation mutations of §4.3.3 (Figure 4.6), all taken from
// Larrañaga et al.
package ga

import (
	"fmt"
	"math/rand"
)

// CrossoverOp selects a crossover operator for permutations.
type CrossoverOp int

// The six crossover operators of thesis §4.3.2.
const (
	PMX CrossoverOp = iota // partially-mapped crossover
	CX                     // cycle crossover
	OX1                    // order crossover
	OX2                    // order-based crossover
	POS                    // position-based crossover
	AP                     // alternating-position crossover
)

// CrossoverOps lists every operator, in thesis order.
var CrossoverOps = []CrossoverOp{PMX, CX, OX1, OX2, POS, AP}

// String returns the thesis's abbreviation.
func (c CrossoverOp) String() string {
	switch c {
	case PMX:
		return "PMX"
	case CX:
		return "CX"
	case OX1:
		return "OX1"
	case OX2:
		return "OX2"
	case POS:
		return "POS"
	case AP:
		return "AP"
	}
	return fmt.Sprintf("CrossoverOp(%d)", int(c))
}

// MutationOp selects a mutation operator for permutations.
type MutationOp int

// The six mutation operators of thesis §4.3.3.
const (
	DM  MutationOp = iota // displacement
	EM                    // exchange
	ISM                   // insertion
	SIM                   // simple inversion
	IVM                   // inversion
	SM                    // scramble
)

// MutationOps lists every operator, in thesis order.
var MutationOps = []MutationOp{DM, EM, ISM, SIM, IVM, SM}

// String returns the thesis's abbreviation.
func (m MutationOp) String() string {
	switch m {
	case DM:
		return "DM"
	case EM:
		return "EM"
	case ISM:
		return "ISM"
	case SIM:
		return "SIM"
	case IVM:
		return "IVM"
	case SM:
		return "SM"
	}
	return fmt.Sprintf("MutationOp(%d)", int(m))
}

// Crossover applies the operator to parents p1, p2 (equal-length
// permutations) and returns two offspring. The parents are not modified.
func Crossover(op CrossoverOp, p1, p2 []int, rng *rand.Rand) ([]int, []int) {
	if len(p1) != len(p2) {
		panic("ga: parents of different length")
	}
	switch op {
	case PMX:
		return pmx(p1, p2, rng), pmx(p2, p1, rng)
	case CX:
		return cx(p1, p2), cx(p2, p1)
	case OX1:
		return ox1(p1, p2, rng), ox1(p2, p1, rng)
	case OX2:
		return ox2(p1, p2, rng), ox2(p2, p1, rng)
	case POS:
		return pos(p1, p2, rng), pos(p2, p1, rng)
	case AP:
		return ap(p1, p2), ap(p2, p1)
	}
	panic(fmt.Sprintf("ga: unknown crossover %d", int(op)))
}

// Mutate applies the operator to perm in place.
func Mutate(op MutationOp, perm []int, rng *rand.Rand) {
	n := len(perm)
	if n < 2 {
		return
	}
	switch op {
	case DM:
		displace(perm, rng, false)
	case EM:
		i, j := rng.Intn(n), rng.Intn(n)
		perm[i], perm[j] = perm[j], perm[i]
	case ISM:
		i := rng.Intn(n)
		v := perm[i]
		rest := make([]int, 0, n-1)
		rest = append(rest, perm[:i]...)
		rest = append(rest, perm[i+1:]...)
		j := rng.Intn(n)
		copy(perm, rest[:j])
		perm[j] = v
		copy(perm[j+1:], rest[j:])
	case SIM:
		a, b := twoCuts(n, rng)
		reverse(perm[a:b])
	case IVM:
		displace(perm, rng, true)
	case SM:
		a, b := twoCuts(n, rng)
		sub := perm[a:b]
		rng.Shuffle(len(sub), func(i, j int) { sub[i], sub[j] = sub[j], sub[i] })
	}
}

// twoCuts returns 0 <= a < b <= n with b-a >= 1.
func twoCuts(n int, rng *rand.Rand) (int, int) {
	a := rng.Intn(n)
	b := rng.Intn(n + 1)
	if a > b {
		a, b = b, a
	}
	if a == b {
		if b < n {
			b++
		} else {
			a--
		}
	}
	return a, b
}

func reverse(s []int) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}

// displace removes a random substring and reinserts it at a random position,
// reversed when rev is set (DM and IVM).
func displace(perm []int, rng *rand.Rand, rev bool) {
	n := len(perm)
	a, b := twoCuts(n, rng)
	sub := append([]int(nil), perm[a:b]...)
	if rev {
		reverse(sub)
	}
	rest := append(perm[:a:a], perm[b:]...)
	j := rng.Intn(len(rest) + 1)
	out := make([]int, 0, n)
	out = append(out, rest[:j]...)
	out = append(out, sub...)
	out = append(out, rest[j:]...)
	copy(perm, out)
}

// pmx is the partially-mapped crossover: the child keeps p1's crossover
// segment and fills the rest from p2, resolving conflicts through the
// segment mapping.
func pmx(p1, p2 []int, rng *rand.Rand) []int {
	n := len(p1)
	a, b := twoCuts(n, rng)
	child := make([]int, n)
	inSeg := make(map[int]int, b-a) // value in p1 segment -> segment index
	for k := a; k < b; k++ {
		child[k] = p1[k]
		inSeg[p1[k]] = k
	}
	for i := 0; i < n; i++ {
		if i >= a && i < b {
			continue
		}
		v := p2[i]
		for {
			k, conflict := inSeg[v]
			if !conflict {
				break
			}
			v = p2[k]
		}
		child[i] = v
	}
	return child
}

// cx is the cycle crossover: the first cycle of the permutation induced by
// aligning p1 above p2 keeps p1's positions; all other positions come from
// p2.
func cx(p1, p2 []int) []int {
	n := len(p1)
	posIn1 := make(map[int]int, n)
	for i, v := range p1 {
		posIn1[v] = i
	}
	inCycle := make([]bool, n)
	for i := 0; ; {
		inCycle[i] = true
		i = posIn1[p2[i]]
		if i == 0 || inCycle[i] {
			break
		}
	}
	child := make([]int, n)
	for i := 0; i < n; i++ {
		if inCycle[i] {
			child[i] = p1[i]
		} else {
			child[i] = p2[i]
		}
	}
	return child
}

// ox1 is the order crossover: keep p1's segment; fill the remaining
// positions, starting after the segment and wrapping, with p2's values in
// the order they appear in p2 starting after the segment.
func ox1(p1, p2 []int, rng *rand.Rand) []int {
	n := len(p1)
	a, b := twoCuts(n, rng)
	child := make([]int, n)
	used := make(map[int]bool, n)
	for k := a; k < b; k++ {
		child[k] = p1[k]
		used[p1[k]] = true
	}
	j := b % n
	for i := 0; i < n; i++ {
		v := p2[(b+i)%n]
		if used[v] {
			continue
		}
		for j >= a && j < b {
			j = (j + 1) % n
		}
		child[j] = v
		j = (j + 1) % n
	}
	return child
}

// ox2 is the order-based crossover: a random set of positions is chosen; the
// values p2 holds there are re-ordered inside p1 to match their p2 order.
func ox2(p1, p2 []int, rng *rand.Rand) []int {
	n := len(p1)
	child := append([]int(nil), p1...)
	selected := make(map[int]bool) // values selected from p2
	var values []int               // in p2 order
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 0 {
			selected[p2[i]] = true
			values = append(values, p2[i])
		}
	}
	vi := 0
	for i := 0; i < n; i++ {
		if selected[child[i]] {
			child[i] = values[vi]
			vi++
		}
	}
	return child
}

// pos is the position-based crossover: a random set of positions takes p2's
// values directly; the remaining positions are filled with the leftover
// values in p1 order.
func pos(p1, p2 []int, rng *rand.Rand) []int {
	n := len(p1)
	child := make([]int, n)
	fixed := make([]bool, n)
	used := make(map[int]bool, n)
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 0 {
			child[i] = p2[i]
			fixed[i] = true
			used[p2[i]] = true
		}
	}
	j := 0
	for i := 0; i < n; i++ {
		if fixed[i] {
			continue
		}
		for used[p1[j]] {
			j++
		}
		child[i] = p1[j]
		used[p1[j]] = true
	}
	return child
}

// ap is the alternating-position crossover: take the next unused element
// alternately from p1 and p2.
func ap(p1, p2 []int) []int {
	n := len(p1)
	child := make([]int, 0, n)
	used := make(map[int]bool, n)
	i1, i2 := 0, 0
	for turn := 0; len(child) < n; turn++ {
		var src []int
		var idx *int
		if turn%2 == 0 {
			src, idx = p1, &i1
		} else {
			src, idx = p2, &i2
		}
		for *idx < n && used[src[*idx]] {
			*idx++
		}
		if *idx < n {
			child = append(child, src[*idx])
			used[src[*idx]] = true
		}
	}
	return child
}
