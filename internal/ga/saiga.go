package ga

import (
	"context"
	"math/rand"
	"sync"
	"time"

	"hypertree/internal/budget"
	"hypertree/internal/hypergraph"
	"hypertree/internal/obs"
	"hypertree/internal/setcover"
)

// SAIGAConfig controls SAIGA-ghw (thesis §7.2), the self-adaptive island
// genetic algorithm: several islands evolve independently, each carrying its
// own control-parameter vector; parameter vectors are mutated over time and
// oriented toward the parameters of better-performing neighbor islands, so
// no hand tuning of rates is required (thesis §7.2.2–7.2.5).
type SAIGAConfig struct {
	Islands        int // number of islands (ring topology)
	IslandPop      int // population size per island
	TournamentSize int
	Epochs         int // number of epochs
	EpochLength    int // generations per epoch between adaptation steps
	Seed           int64
	Timeout        time.Duration
	Target         int
	// Ctx optionally cancels the run at the evaluation checkpoints; on
	// cancellation SAIGA returns its best-so-far anytime result.
	Ctx context.Context
	// Budget, when non-nil, supersedes Ctx/Timeout: every fitness
	// evaluation (on any island) draws one work unit from it.
	Budget *budget.B
	// Recorder, when non-nil, receives the run's instrumentation events.
	// Budget checkpoints fire from island goroutines, so it must be safe
	// for concurrent use; improvement and epoch summaries are emitted
	// serially between epochs.
	Recorder obs.Recorder
	// Label overrides the algorithm label on emitted events; the wrappers
	// set "saiga-ghw"/"saiga-tw", plain "saiga" otherwise.
	Label string
	// Workers sets how many goroutines score each island's population
	// (fitness evaluation); 0 or 1 keeps the serial per-island loop. The
	// islands themselves always evolve concurrently, so the run's total
	// goroutine count is Islands×Workers (the scheduler bounds actual
	// parallelism at GOMAXPROCS). Like ga.Config.Workers, parallel scoring
	// with randomized greedy covers can vary tie-breaking; deterministic
	// evaluators (treewidth) produce identical results at any worker count.
	Workers int
	// Engine, when non-nil, is the cover engine SAIGAGHW builds its island
	// evaluators on instead of creating its own, sharing its memo cache with
	// every other solver on the same engine (a portfolio race). SAIGAGHW does
	// not attach cfg.Recorder to an injected engine — its recorder fields are
	// unsynchronized, so the sharing caller attaches one before fan-out.
	// Ignored by SAIGATreewidth.
	Engine *setcover.Engine
}

func (c SAIGAConfig) budgetFor() *budget.B {
	if c.Budget != nil {
		return c.Budget
	}
	return budget.New(c.Ctx, budget.Limits{Timeout: c.Timeout})
}

// SAIGADefaults returns a small but representative configuration.
func SAIGADefaults() SAIGAConfig {
	return SAIGAConfig{
		Islands:        8,
		IslandPop:      250,
		TournamentSize: 3,
		Epochs:         20,
		EpochLength:    25,
	}
}

// paramVector is an island's self-adapted parameter set (thesis §7.2.2):
// mutation rate, crossover rate, and the operator choices.
type paramVector struct {
	pm, pc    float64
	crossover CrossoverOp
	mutation  MutationOp
}

// randomParams initializes a parameter vector uniformly within the thesis's
// admissible ranges (§7.2.3).
func randomParams(rng *rand.Rand) paramVector {
	return paramVector{
		pm:        rng.Float64(),           // [0,1)
		pc:        0.5 + 0.5*rng.Float64(), // [0.5,1)
		crossover: CrossoverOps[rng.Intn(len(CrossoverOps))],
		mutation:  MutationOps[rng.Intn(len(MutationOps))],
	}
}

// mutateParams perturbs the vector (thesis §7.2.4, Figure 7.4): rates get
// Gaussian noise clamped to their ranges; with small probability the
// operator genes resample.
func mutateParams(p paramVector, rng *rand.Rand) paramVector {
	p.pm = clamp(p.pm+rng.NormFloat64()*0.1, 0, 1)
	p.pc = clamp(p.pc+rng.NormFloat64()*0.1, 0, 1)
	if rng.Float64() < 0.15 {
		p.crossover = CrossoverOps[rng.Intn(len(CrossoverOps))]
	}
	if rng.Float64() < 0.15 {
		p.mutation = MutationOps[rng.Intn(len(MutationOps))]
	}
	return p
}

// orientTowards moves p's rates halfway toward a better neighbor's and
// copies the neighbor's operators with probability ½ (thesis §7.2.5,
// "neighbor orientation").
func orientTowards(p, better paramVector, rng *rand.Rand) paramVector {
	p.pm += (better.pm - p.pm) * 0.5
	p.pc += (better.pc - p.pc) * 0.5
	if rng.Intn(2) == 0 {
		p.crossover = better.crossover
	}
	if rng.Intn(2) == 0 {
		p.mutation = better.mutation
	}
	return p
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// SAIGAResult reports a SAIGA-ghw run.
type SAIGAResult struct {
	BestWidth    int
	BestOrdering []int
	Evaluations  int64
	Elapsed      time.Duration
	// Stop says why the run ended early; StopNone when all epochs ran or
	// Target was reached.
	Stop budget.StopReason
	// CoverCacheHits and CoverCacheMisses report the islands' shared cover
	// engine's memo-cache counters (ghw runs only).
	CoverCacheHits   int64
	CoverCacheMisses int64
	// Stats aggregates the run's event stream (anytime-width timeline,
	// per-epoch island summaries, effort counters). Always populated.
	Stats *obs.RunStats
	// FinalParams holds each island's adapted parameters at termination,
	// for inspection of what the self-adaptation converged to.
	FinalParams []struct {
		Pm, Pc    float64
		Crossover CrossoverOp
		Mutation  MutationOp
	}
}

// island is one population with its parameter vector. Every island owns its
// rng and evaluator so the islands of an epoch can evolve on separate
// goroutines without sharing mutable state; cross-island steps (migration,
// parameter orientation) run sequentially between epochs.
type island struct {
	pop    [][]int
	fit    []int
	ok     []bool // per-individual scored flags, reset each generation
	params paramVector
	best   []int
	bestF  int
	rng    *rand.Rand
	// evs holds one evaluator per fitness worker (evaluators own scratch
	// state, so each scoring goroutine needs its own); len(evs) == 1 keeps
	// the serial per-island loop.
	evs   []Evaluator
	evals int64
}

// resetOK clears the scored flags before a generation's evaluation pass.
func (isl *island) resetOK() {
	for i := range isl.ok {
		isl.ok[i] = false
	}
}

// SAIGAGHW runs SAIGA-ghw on a hypergraph and returns an upper bound on its
// generalized hypertree width (the thesis's configuration, §7.2). The
// islands evolve on separate goroutines but share one cover engine: a bag
// scored on any island is memoized for all of them.
func SAIGAGHW(h *hypergraph.Hypergraph, cfg SAIGAConfig) SAIGAResult {
	if cfg.Label == "" {
		cfg.Label = "saiga-ghw"
	}
	eng := cfg.Engine
	if eng == nil {
		eng = setcover.NewEngine(h, setcover.DefaultCacheCapacity)
		// Sampled live snapshots go to the external recorder only; the final
		// snapshot below lands in both it and the run's RunStats. An injected
		// engine keeps whatever recorder its owner attached (the fields are
		// unsynchronized, so only the sharing caller may set them).
		eng.SetRecorder(cfg.Recorder, 0)
	}
	res := SAIGA(h.N(), func(i, worker int) Evaluator {
		seed := cfg.Seed ^ 0x51a + int64(i)*1000003 + int64(worker)*7919
		return NewGHWEvaluatorWithEngine(eng, rand.New(rand.NewSource(seed)))
	}, cfg)
	st := eng.CacheStats()
	res.CoverCacheHits, res.CoverCacheMisses = st.Hits, st.Misses
	ev := obs.Event{Kind: obs.KindCoverCache, T: res.Elapsed,
		CacheHits: st.Hits, CacheMisses: st.Misses,
		CacheEvictions: st.Evictions, CacheSize: st.Size}
	res.Stats.Record(ev)
	if cfg.Recorder != nil {
		cfg.Recorder.Record(ev)
	}
	return res
}

// SAIGATreewidth runs the self-adaptive island GA under the treewidth cost
// function — an extension beyond the thesis, which only pairs SAIGA with
// ghw; the island machinery is evaluator-agnostic.
func SAIGATreewidth(g *hypergraph.Graph, cfg SAIGAConfig) SAIGAResult {
	if cfg.Label == "" {
		cfg.Label = "saiga-tw"
	}
	return SAIGA(g.N(), func(int, int) Evaluator { return NewTreewidthEvaluator(g) }, cfg)
}

// SAIGA runs the self-adaptive island GA over orderings of n vertices.
// newEval builds one evaluator per (island, fitness worker) pair (evaluators
// own scratch state and are not safe for concurrent use, so no two
// goroutines may share one; cfg.Workers <= 1 asks for one worker per
// island).
func SAIGA(n int, newEval func(island, worker int) Evaluator, cfg SAIGAConfig) SAIGAResult {
	if cfg.Islands < 2 {
		panic("ga: SAIGA needs at least 2 islands")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	start := time.Now()
	b := cfg.budgetFor()
	label := cfg.Label
	if label == "" {
		label = "saiga"
	}
	stats := obs.NewRunStats()
	rec := obs.Tee(stats, cfg.Recorder)
	b.OnCheckpoint(obs.Checkpointer(rec))
	rec.Record(obs.Event{Kind: obs.KindStart, T: b.Elapsed(), Algo: label, N: n})

	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > cfg.IslandPop {
		workers = cfg.IslandPop
	}
	isles := make([]*island, cfg.Islands)
	for i := range isles {
		evs := make([]Evaluator, workers)
		for w := range evs {
			evs[w] = newEval(i, w)
		}
		isles[i] = &island{
			pop:    make([][]int, cfg.IslandPop),
			fit:    make([]int, cfg.IslandPop),
			ok:     make([]bool, cfg.IslandPop),
			params: randomParams(rng),
			rng:    rand.New(rand.NewSource(cfg.Seed + 0x5eed*int64(i+1))),
			evs:    evs,
			bestF:  int(^uint(0) >> 1), // until the first evaluation lands
		}
	}

	// Initial populations, evaluated island-parallel (and, with Workers > 1,
	// worker-parallel within each island).
	runIslands(isles, func(isl *island) {
		for j := range isl.pop {
			isl.pop[j] = isl.rng.Perm(n)
		}
		isl.resetOK()
		isl.evals += evalPop(isl.pop, isl.fit, isl.ok, 0, isl.evs, b)
		for j := range isl.pop {
			if isl.ok[j] && isl.fit[j] < isl.bestF {
				// Fresh copy: globalBest snapshots isl.best by reference.
				isl.best = append([]int(nil), isl.pop[j]...)
				isl.bestF = isl.fit[j]
			}
		}
	})

	// totalEvals and improve run only between epochs, after the island
	// goroutines have joined, so the per-island counters are stable.
	totalEvals := func() int64 {
		var t int64
		for _, isl := range isles {
			t += isl.evals
		}
		return t
	}
	improve := func(w, epoch int) {
		rec.Record(obs.Event{Kind: obs.KindImprove, T: b.Elapsed(),
			Width: w, Evaluations: totalEvals(), Generation: epoch})
	}

	globalBest, globalF := isles[0].best, isles[0].bestF
	for _, isl := range isles {
		if isl.bestF < globalF {
			globalBest, globalF = isl.best, isl.bestF
		}
	}
	if globalBest == nil {
		// Budget exhausted before any evaluation: score one ordering anyway
		// so the anytime contract (a valid result with a true width) holds.
		globalBest = isles[0].pop[0]
		globalF = isles[0].evs[0].Evaluate(globalBest)
		isles[0].evals++
		isles[0].best = append([]int(nil), globalBest...)
		isles[0].bestF = globalF
	}
	improve(globalF, 0)

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		if cfg.Target > 0 && globalF <= cfg.Target {
			break
		}
		if b.Stopped() || !b.Check() {
			break
		}
		runIslands(isles, func(isl *island) {
			evolveIsland(isl, cfg, b)
		})
		prevF := globalF
		for _, isl := range isles {
			if isl.bestF < globalF {
				globalBest, globalF = isl.best, isl.bestF
			}
		}
		if globalF < prevF {
			improve(globalF, epoch+1)
		}
		for i, isl := range isles {
			mean, std, distinct, _ := diversity(isl.fit, isl.ok)
			rec.Record(obs.Event{Kind: obs.KindGeneration, T: b.Elapsed(),
				Generation: epoch + 1, Island: i + 1, Width: isl.bestF,
				MeanWidth: mean, WidthStd: std, DistinctWidths: distinct,
				Evaluations: isl.evals})
		}
		if b.Stopped() {
			// An island cut mid-generation leaves fit scoring the previous
			// generation; skip migration/adaptation over that stale state.
			break
		}
		// Migration: each island sends its best individual to the next in
		// the ring, replacing the worst.
		for i, isl := range isles {
			next := isles[(i+1)%len(isles)]
			worst := sortByFitness(next.fit)[len(next.fit)-1]
			next.pop[worst] = append([]int(nil), isl.best...)
			next.fit[worst] = isl.bestF
		}
		// Self-adaptation: mutate parameters, then orient toward better
		// ring neighbors.
		for i, isl := range isles {
			isl.params = mutateParams(isl.params, rng)
			left := isles[(i+len(isles)-1)%len(isles)]
			right := isles[(i+1)%len(isles)]
			better := isl
			if left.bestF < better.bestF {
				better = left
			}
			if right.bestF < better.bestF {
				better = right
			}
			if better != isl {
				isl.params = orientTowards(isl.params, better.params, rng)
			}
		}
	}

	res := SAIGAResult{
		BestWidth:    globalF,
		BestOrdering: append([]int(nil), globalBest...),
		Elapsed:      time.Since(start),
		Stop:         b.Reason(),
		Stats:        stats,
	}
	rec.Record(obs.Event{Kind: obs.KindStop, T: b.Elapsed(), Algo: label,
		Width: globalF, Evaluations: totalEvals(), Stop: string(b.Reason())})
	for _, isl := range isles {
		res.Evaluations += isl.evals
		res.FinalParams = append(res.FinalParams, struct {
			Pm, Pc    float64
			Crossover CrossoverOp
			Mutation  MutationOp
		}{isl.params.pm, isl.params.pc, isl.params.crossover, isl.params.mutation})
	}
	return res
}

// runIslands runs fn for every island concurrently and joins. A panic on an
// island goroutine is captured (with its stack) and re-raised on the caller
// after all goroutines have exited, so the process-level containment barrier
// in core.Decompose sees it and no goroutine leaks behind it.
func runIslands(isles []*island, fn func(*island)) {
	var wg sync.WaitGroup
	var mu sync.Mutex
	var pan *budget.PanicError
	for _, isl := range isles {
		isl := isl
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					mu.Lock()
					if pan == nil {
						pan = budget.AsPanicError(r)
					}
					mu.Unlock()
				}
			}()
			fn(isl)
		}()
	}
	wg.Wait()
	if pan != nil {
		panic(pan)
	}
}

// evolveIsland runs EpochLength generations of the basic GA on one island
// with its current parameters, drawing one budget work unit per evaluation.
func evolveIsland(isl *island, cfg SAIGAConfig, b *budget.B) {
	popSize := len(isl.pop)
	for gen := 0; gen < cfg.EpochLength; gen++ {
		if b.Stopped() {
			return
		}
		if cfg.Target > 0 && isl.bestF <= cfg.Target {
			return
		}
		next := make([][]int, popSize)
		for i := range next {
			next[i] = append([]int(nil), tournament(isl.pop, isl.fit, cfg.TournamentSize, isl.rng)...)
		}
		pairs := int(isl.params.pc * float64(popSize) / 2)
		isl.rng.Shuffle(len(next), func(i, j int) { next[i], next[j] = next[j], next[i] })
		for p := 0; p < pairs; p++ {
			a, b2 := 2*p, 2*p+1
			if b2 >= len(next) {
				break
			}
			c1, c2 := Crossover(isl.params.crossover, next[a], next[b2], isl.rng)
			next[a], next[b2] = c1, c2
		}
		for i := range next {
			if isl.rng.Float64() < isl.params.pm {
				Mutate(isl.params.mutation, next[i], isl.rng)
			}
		}
		isl.pop = next
		isl.resetOK()
		isl.evals += evalPop(isl.pop, isl.fit, isl.ok, 0, isl.evs, b)
		// Trust only the scored individuals: on a mid-generation stop the
		// unscored fit entries still hold the previous generation's values.
		complete := true
		for i := range isl.pop {
			if !isl.ok[i] {
				complete = false
				continue
			}
			if isl.fit[i] < isl.bestF {
				// Fresh copy: globalBest snapshots isl.best by reference.
				isl.best = append([]int(nil), isl.pop[i]...)
				isl.bestF = isl.fit[i]
			}
		}
		if !complete {
			return
		}
	}
}
