package ga

import (
	"math/rand"
	"time"

	"hypertree/internal/hypergraph"
)

// SAIGAConfig controls SAIGA-ghw (thesis §7.2), the self-adaptive island
// genetic algorithm: several islands evolve independently, each carrying its
// own control-parameter vector; parameter vectors are mutated over time and
// oriented toward the parameters of better-performing neighbor islands, so
// no hand tuning of rates is required (thesis §7.2.2–7.2.5).
type SAIGAConfig struct {
	Islands        int // number of islands (ring topology)
	IslandPop      int // population size per island
	TournamentSize int
	Epochs         int // number of epochs
	EpochLength    int // generations per epoch between adaptation steps
	Seed           int64
	Timeout        time.Duration
	Target         int
}

// SAIGADefaults returns a small but representative configuration.
func SAIGADefaults() SAIGAConfig {
	return SAIGAConfig{
		Islands:        8,
		IslandPop:      250,
		TournamentSize: 3,
		Epochs:         20,
		EpochLength:    25,
	}
}

// paramVector is an island's self-adapted parameter set (thesis §7.2.2):
// mutation rate, crossover rate, and the operator choices.
type paramVector struct {
	pm, pc    float64
	crossover CrossoverOp
	mutation  MutationOp
}

// randomParams initializes a parameter vector uniformly within the thesis's
// admissible ranges (§7.2.3).
func randomParams(rng *rand.Rand) paramVector {
	return paramVector{
		pm:        rng.Float64(),           // [0,1)
		pc:        0.5 + 0.5*rng.Float64(), // [0.5,1)
		crossover: CrossoverOps[rng.Intn(len(CrossoverOps))],
		mutation:  MutationOps[rng.Intn(len(MutationOps))],
	}
}

// mutateParams perturbs the vector (thesis §7.2.4, Figure 7.4): rates get
// Gaussian noise clamped to their ranges; with small probability the
// operator genes resample.
func mutateParams(p paramVector, rng *rand.Rand) paramVector {
	p.pm = clamp(p.pm+rng.NormFloat64()*0.1, 0, 1)
	p.pc = clamp(p.pc+rng.NormFloat64()*0.1, 0, 1)
	if rng.Float64() < 0.15 {
		p.crossover = CrossoverOps[rng.Intn(len(CrossoverOps))]
	}
	if rng.Float64() < 0.15 {
		p.mutation = MutationOps[rng.Intn(len(MutationOps))]
	}
	return p
}

// orientTowards moves p's rates halfway toward a better neighbor's and
// copies the neighbor's operators with probability ½ (thesis §7.2.5,
// "neighbor orientation").
func orientTowards(p, better paramVector, rng *rand.Rand) paramVector {
	p.pm += (better.pm - p.pm) * 0.5
	p.pc += (better.pc - p.pc) * 0.5
	if rng.Intn(2) == 0 {
		p.crossover = better.crossover
	}
	if rng.Intn(2) == 0 {
		p.mutation = better.mutation
	}
	return p
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// SAIGAResult reports a SAIGA-ghw run.
type SAIGAResult struct {
	BestWidth    int
	BestOrdering []int
	Evaluations  int64
	Elapsed      time.Duration
	// FinalParams holds each island's adapted parameters at termination,
	// for inspection of what the self-adaptation converged to.
	FinalParams []struct {
		Pm, Pc    float64
		Crossover CrossoverOp
		Mutation  MutationOp
	}
}

// island is one population with its parameter vector.
type island struct {
	pop    [][]int
	fit    []int
	params paramVector
	best   []int
	bestF  int
}

// SAIGAGHW runs SAIGA-ghw on a hypergraph and returns an upper bound on its
// generalized hypertree width (the thesis's configuration, §7.2).
func SAIGAGHW(h *hypergraph.Hypergraph, cfg SAIGAConfig) SAIGAResult {
	eval := NewGHWEvaluator(h, rand.New(rand.NewSource(cfg.Seed^0x51a)))
	return SAIGA(h.N(), eval, cfg)
}

// SAIGATreewidth runs the self-adaptive island GA under the treewidth cost
// function — an extension beyond the thesis, which only pairs SAIGA with
// ghw; the island machinery is evaluator-agnostic.
func SAIGATreewidth(g *hypergraph.Graph, cfg SAIGAConfig) SAIGAResult {
	return SAIGA(g.N(), NewTreewidthEvaluator(g), cfg)
}

// SAIGA runs the self-adaptive island GA over orderings of n vertices,
// scored by eval.
func SAIGA(n int, eval Evaluator, cfg SAIGAConfig) SAIGAResult {
	if cfg.Islands < 2 {
		panic("ga: SAIGA needs at least 2 islands")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	start := time.Now()
	var deadline time.Time
	if cfg.Timeout > 0 {
		deadline = start.Add(cfg.Timeout)
	}
	evals := int64(0)

	isles := make([]*island, cfg.Islands)
	for i := range isles {
		isl := &island{
			pop:    make([][]int, cfg.IslandPop),
			fit:    make([]int, cfg.IslandPop),
			params: randomParams(rng),
		}
		for j := range isl.pop {
			isl.pop[j] = rng.Perm(n)
			isl.fit[j] = eval.Evaluate(isl.pop[j])
			evals++
		}
		isl.best, isl.bestF = bestOf(isl.pop, isl.fit)
		isl.best = append([]int(nil), isl.best...)
		isles[i] = isl
	}

	globalBest, globalF := isles[0].best, isles[0].bestF
	for _, isl := range isles {
		if isl.bestF < globalF {
			globalBest, globalF = isl.best, isl.bestF
		}
	}

epochs:
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for _, isl := range isles {
			if cfg.Target > 0 && globalF <= cfg.Target {
				break epochs
			}
			if !deadline.IsZero() && time.Now().After(deadline) {
				break epochs
			}
			evals += evolveIsland(isl, eval, cfg, rng)
			if isl.bestF < globalF {
				globalBest, globalF = isl.best, isl.bestF
			}
		}
		// Migration: each island sends its best individual to the next in
		// the ring, replacing the worst.
		for i, isl := range isles {
			next := isles[(i+1)%len(isles)]
			worst := sortByFitness(next.fit)[len(next.fit)-1]
			next.pop[worst] = append([]int(nil), isl.best...)
			next.fit[worst] = isl.bestF
		}
		// Self-adaptation: mutate parameters, then orient toward better
		// ring neighbors.
		for i, isl := range isles {
			isl.params = mutateParams(isl.params, rng)
			left := isles[(i+len(isles)-1)%len(isles)]
			right := isles[(i+1)%len(isles)]
			better := isl
			if left.bestF < better.bestF {
				better = left
			}
			if right.bestF < better.bestF {
				better = right
			}
			if better != isl {
				isl.params = orientTowards(isl.params, better.params, rng)
			}
		}
	}

	res := SAIGAResult{
		BestWidth:    globalF,
		BestOrdering: append([]int(nil), globalBest...),
		Evaluations:  evals,
		Elapsed:      time.Since(start),
	}
	for _, isl := range isles {
		res.FinalParams = append(res.FinalParams, struct {
			Pm, Pc    float64
			Crossover CrossoverOp
			Mutation  MutationOp
		}{isl.params.pm, isl.params.pc, isl.params.crossover, isl.params.mutation})
	}
	return res
}

// evolveIsland runs EpochLength generations of the basic GA on one island
// with its current parameters and returns the number of evaluations.
func evolveIsland(isl *island, eval Evaluator, cfg SAIGAConfig, rng *rand.Rand) int64 {
	evals := int64(0)
	popSize := len(isl.pop)
	for gen := 0; gen < cfg.EpochLength; gen++ {
		next := make([][]int, popSize)
		for i := range next {
			next[i] = append([]int(nil), tournament(isl.pop, isl.fit, cfg.TournamentSize, rng)...)
		}
		pairs := int(isl.params.pc * float64(popSize) / 2)
		rng.Shuffle(len(next), func(i, j int) { next[i], next[j] = next[j], next[i] })
		for p := 0; p < pairs; p++ {
			a, b := 2*p, 2*p+1
			if b >= len(next) {
				break
			}
			c1, c2 := Crossover(isl.params.crossover, next[a], next[b], rng)
			next[a], next[b] = c1, c2
		}
		for i := range next {
			if rng.Float64() < isl.params.pm {
				Mutate(isl.params.mutation, next[i], rng)
			}
		}
		isl.pop = next
		for i := range isl.pop {
			isl.fit[i] = eval.Evaluate(isl.pop[i])
			evals++
		}
		if o, f := bestOf(isl.pop, isl.fit); f < isl.bestF {
			isl.best = append([]int(nil), o...)
			isl.bestF = f
		}
	}
	return evals
}
