package ga

import (
	"context"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hypertree/internal/budget"
	"hypertree/internal/budget/faultinject"
	"hypertree/internal/elim"
	"hypertree/internal/elimgraph"
	"hypertree/internal/hypergraph"
	"hypertree/internal/obs"
	"hypertree/internal/setcover"
)

// Evaluator scores an elimination ordering; lower is better. The two
// instances used by the thesis are the treewidth evaluator (Figure 6.2) and
// the ghw evaluator with greedy set covers (Figure 7.1).
type Evaluator interface {
	Evaluate(order []int) int
}

// TreewidthEvaluator evaluates orderings by the induced tree-decomposition
// width. Not safe for concurrent use (it owns one elimination graph).
type TreewidthEvaluator struct {
	e *elimgraph.ElimGraph
}

// NewTreewidthEvaluator builds a treewidth evaluator for g.
func NewTreewidthEvaluator(g *hypergraph.Graph) *TreewidthEvaluator {
	return &TreewidthEvaluator{e: elimgraph.New(g)}
}

// Evaluate implements Evaluator.
func (t *TreewidthEvaluator) Evaluate(order []int) int { return elim.Width(t.e, order) }

// GHWEvaluator adapts elim.GHWEvaluator to the GA Evaluator interface.
type GHWEvaluator struct {
	ev *elim.GHWEvaluator
}

// NewGHWEvaluator builds a greedy-cover ghw evaluator for h (thesis §7.1.2)
// with its own cover engine.
func NewGHWEvaluator(h *hypergraph.Hypergraph, rng *rand.Rand) *GHWEvaluator {
	return &GHWEvaluator{ev: elim.NewGHWEvaluator(h, false, rng)}
}

// NewGHWEvaluatorWithEngine builds a greedy-cover ghw evaluator on a shared
// cover engine, so parallel workers and SAIGA islands pool one bag-cover
// memo cache.
func NewGHWEvaluatorWithEngine(eng *setcover.Engine, rng *rand.Rand) *GHWEvaluator {
	return &GHWEvaluator{ev: elim.NewGHWEvaluatorWithEngine(eng, false, rng)}
}

// Evaluate implements Evaluator.
func (g *GHWEvaluator) Evaluate(order []int) int { return g.ev.Width(order) }

// Engine returns the evaluator's cover engine.
func (g *GHWEvaluator) Engine() *setcover.Engine { return g.ev.Engine() }

// Config holds the control parameters of algorithm GA-tw / GA-ghw
// (thesis Figure 6.1): population size n, crossover rate p_c, mutation rate
// p_m, tournament group size s, and iteration count.
type Config struct {
	PopulationSize int
	CrossoverRate  float64
	MutationRate   float64
	TournamentSize int
	MaxIterations  int
	Crossover      CrossoverOp
	Mutation       MutationOp
	Seed           int64
	// Timeout optionally bounds the run; zero means none.
	Timeout time.Duration
	// Target, when positive, stops the run early once the best width
	// reaches it (useful when a matching lower bound is known).
	Target int
	// Ctx optionally cancels the run at the evaluation checkpoints; on
	// cancellation Run returns its best-so-far anytime result.
	Ctx context.Context
	// Budget, when non-nil, supersedes Ctx/Timeout: every fitness
	// evaluation draws one work unit from it. core.Decompose shares one
	// budget across the whole run.
	Budget *budget.B
	// Workers sets how many goroutines score a generation in parallel
	// (RunParallel); 0 or 1 evaluates serially, exactly like Run. Parallel
	// workers draw from the same Budget, so limits still hold globally,
	// but each worker owns an evaluator: with randomized greedy covers,
	// the assignment of individuals to workers (and hence tie-breaking)
	// varies run to run.
	Workers int
	// Recorder, when non-nil, receives the run's instrumentation events
	// (budget checkpoints fire from worker goroutines, so it must be safe
	// for concurrent use). nil disables external tracing; the run still
	// aggregates its own RunStats.
	Recorder obs.Recorder
	// Label overrides the algorithm label on emitted events; the wrappers
	// set "ga-tw"/"ga-ghw", plain "ga" otherwise.
	Label string
	// Engine, when non-nil, is the cover engine GHW builds its evaluators on
	// instead of creating its own, sharing its memo cache with every other
	// solver on the same engine (a portfolio race). GHW does not attach
	// cfg.Recorder to an injected engine — its recorder fields are
	// unsynchronized, so the sharing caller attaches one before fan-out.
	// Ignored by the treewidth entry points.
	Engine *setcover.Engine
}

// budgetFor returns the run budget: the caller-supplied one, or a fresh
// budget built from the legacy Ctx/Timeout fields.
func (c Config) budgetFor() *budget.B {
	if c.Budget != nil {
		return c.Budget
	}
	return budget.New(c.Ctx, budget.Limits{Timeout: c.Timeout})
}

// ThesisDefaults returns the control parameters selected by the thesis's
// tuning experiments (§6.3): n=2000, p_c=1.0, p_m=0.3, s=3, POS + ISM.
func ThesisDefaults() Config {
	return Config{
		PopulationSize: 2000,
		CrossoverRate:  1.0,
		MutationRate:   0.3,
		TournamentSize: 3,
		MaxIterations:  2000,
		Crossover:      POS,
		Mutation:       ISM,
	}
}

// Result reports a GA run.
type Result struct {
	BestWidth    int
	BestOrdering []int
	Generations  int
	Evaluations  int64
	Elapsed      time.Duration
	// History records the best width after each generation (index 0 is the
	// initial population), for the convergence experiments.
	History []int
	// Stop says why the run ended early (deadline, node budget, canceled);
	// StopNone when all generations ran or Target was reached.
	Stop budget.StopReason
	// CoverCacheHits and CoverCacheMisses report the shared cover engine's
	// memo-cache counters for ghw runs (zero for treewidth runs, which do
	// not cover bags).
	CoverCacheHits   int64
	CoverCacheMisses int64
	// Stats aggregates the run's event stream (anytime-width timeline,
	// per-generation summaries, effort counters). Always populated.
	Stats *obs.RunStats
}

// Run executes the genetic algorithm of thesis Figure 6.1 over orderings of
// n vertices, scored by eval.
func Run(n int, eval Evaluator, cfg Config) Result {
	return runGA(n, []Evaluator{eval}, cfg)
}

// RunParallel is Run with cfg.Workers fitness workers scoring each
// generation concurrently; newEval builds one evaluator per worker
// (evaluators own scratch state and must not be shared across goroutines —
// share a setcover.Engine between them instead). With Workers <= 1 it is
// exactly Run(n, newEval(0), cfg).
func RunParallel(n int, newEval func(worker int) Evaluator, cfg Config) Result {
	w := cfg.Workers
	if w < 1 {
		w = 1
	}
	if w > cfg.PopulationSize {
		w = cfg.PopulationSize
	}
	evs := make([]Evaluator, w)
	for i := range evs {
		evs[i] = newEval(i)
	}
	return runGA(n, evs, cfg)
}

// evalPop scores pop[start:] into fit, marking ok[i] for every index it
// managed to evaluate before the budget ran out, and returns the number of
// evaluations performed. One evaluator runs serially on the caller's
// goroutine; several run as a worker pool drawing indices (and budget work
// units) from shared atomics. A worker panic is captured and re-raised on
// the caller after the pool drains, preserving the containment barrier in
// core.Decompose.
func evalPop(pop [][]int, fit []int, ok []bool, start int, evs []Evaluator, b *budget.B) int64 {
	if len(evs) == 1 {
		evals := int64(0)
		for i := start; i < len(pop); i++ {
			if !b.Tick() {
				break
			}
			faultinject.Hit(faultinject.SiteGAEval)
			fit[i] = evs[0].Evaluate(pop[i])
			ok[i] = true
			evals++
		}
		return evals
	}
	var next, evals atomic.Int64
	next.Store(int64(start))
	var wg sync.WaitGroup
	var mu sync.Mutex
	var pan *budget.PanicError
	for _, ev := range evs {
		ev := ev
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					mu.Lock()
					if pan == nil {
						pan = budget.AsPanicError(r)
					}
					mu.Unlock()
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(pop) {
					return
				}
				if !b.Tick() {
					return
				}
				faultinject.Hit(faultinject.SiteGAEval)
				fit[i] = ev.Evaluate(pop[i])
				ok[i] = true
				evals.Add(1)
			}
		}()
	}
	wg.Wait()
	if pan != nil {
		panic(pan)
	}
	return evals.Load()
}

func runGA(n int, evs []Evaluator, cfg Config) Result {
	if cfg.PopulationSize < 2 {
		panic("ga: population size must be at least 2")
	}
	if cfg.TournamentSize < 1 {
		panic("ga: tournament size must be at least 1")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	start := time.Now()
	b := cfg.budgetFor()
	label := cfg.Label
	if label == "" {
		label = "ga"
	}
	stats := obs.NewRunStats()
	rec := obs.Tee(stats, cfg.Recorder)
	b.OnCheckpoint(obs.Checkpointer(rec))
	rec.Record(obs.Event{Kind: obs.KindStart, T: b.Elapsed(), Algo: label, N: n})

	pop := make([][]int, cfg.PopulationSize)
	fit := make([]int, cfg.PopulationSize)
	ok := make([]bool, cfg.PopulationSize)
	evals := int64(0)
	for i := range pop {
		pop[i] = rng.Perm(n)
	}
	// The first individual is always evaluated — even on an exhausted
	// budget the caller gets one valid scored ordering back.
	faultinject.Hit(faultinject.SiteGAEval)
	fit[0] = evs[0].Evaluate(pop[0])
	ok[0] = true
	evals++
	evals += evalPop(pop, fit, ok, 1, evs, b)
	best, bestFit := pop[0], fit[0]
	for i := 1; i < len(pop); i++ {
		if ok[i] && fit[i] < bestFit {
			best, bestFit = pop[i], fit[i]
		}
	}
	history := []int{bestFit}
	rec.Record(obs.Event{Kind: obs.KindImprove, T: b.Elapsed(), Width: bestFit, Evaluations: evals})

	gen := 0
	for ; gen < cfg.MaxIterations; gen++ {
		if bestFit <= cfg.Target && cfg.Target > 0 {
			break
		}
		if b.Stopped() || !b.Check() {
			break
		}
		// Selection (tournament, thesis §6.1).
		next := make([][]int, cfg.PopulationSize)
		for i := range next {
			next[i] = append([]int(nil), tournament(pop, fit, cfg.TournamentSize, rng)...)
		}
		// Recombination: the first p_c fraction of the population is
		// recombined pairwise; the rest passes through unchanged.
		pairs := int(cfg.CrossoverRate * float64(cfg.PopulationSize) / 2)
		rng.Shuffle(len(next), func(i, j int) { next[i], next[j] = next[j], next[i] })
		for p := 0; p < pairs; p++ {
			a, b := 2*p, 2*p+1
			if b >= len(next) {
				break
			}
			c1, c2 := Crossover(cfg.Crossover, next[a], next[b], rng)
			next[a], next[b] = c1, c2
		}
		// Mutation.
		for i := range next {
			if rng.Float64() < cfg.MutationRate {
				Mutate(cfg.Mutation, next[i], rng)
			}
		}
		// Evaluation. On budget exhaustion mid-generation only the scored
		// individuals (ok) are trusted: elsewhere fit still scores the
		// previous generation's individuals.
		pop = next
		for i := range ok {
			ok[i] = false
		}
		evals += evalPop(pop, fit, ok, 0, evs, b)
		complete := true
		prevBest := bestFit
		for i := range pop {
			if !ok[i] {
				complete = false
				continue
			}
			if fit[i] < bestFit {
				best, bestFit = pop[i], fit[i]
			}
		}
		if bestFit < prevBest {
			rec.Record(obs.Event{Kind: obs.KindImprove, T: b.Elapsed(),
				Width: bestFit, Evaluations: evals, Generation: gen + 1})
		}
		mean, std, distinct, _ := diversity(fit, ok)
		rec.Record(obs.Event{Kind: obs.KindGeneration, T: b.Elapsed(), Generation: gen + 1,
			Width: bestFit, MeanWidth: mean, WidthStd: std, DistinctWidths: distinct,
			Evaluations: evals})
		history = append(history, bestFit)
		if !complete {
			break
		}
	}

	rec.Record(obs.Event{Kind: obs.KindStop, T: b.Elapsed(), Algo: label,
		Width: bestFit, Generation: gen, Evaluations: evals, Stop: string(b.Reason())})
	return Result{
		BestWidth:    bestFit,
		BestOrdering: append([]int(nil), best...),
		Generations:  gen,
		Evaluations:  evals,
		Elapsed:      time.Since(start),
		History:      history,
		Stop:         b.Reason(),
		Stats:        stats,
	}
}

// Treewidth runs GA-tw (thesis Chapter 6) on a graph and returns an upper
// bound on its treewidth.
func Treewidth(g *hypergraph.Graph, cfg Config) Result {
	if cfg.Label == "" {
		cfg.Label = "ga-tw"
	}
	return Run(g.N(), NewTreewidthEvaluator(g), cfg)
}

// TreewidthOfHypergraph runs GA-tw on a hypergraph's primal graph
// (Lemma 1: their tree decompositions coincide).
func TreewidthOfHypergraph(h *hypergraph.Hypergraph, cfg Config) Result {
	if cfg.Label == "" {
		cfg.Label = "ga-tw"
	}
	return Run(h.N(), NewTreewidthEvaluator(h.PrimalGraph()), cfg)
}

// GHW runs GA-ghw (thesis §7.1) on a hypergraph and returns an upper bound
// on its generalized hypertree width. With cfg.Workers > 1 the generations
// are scored in parallel; all workers share one cover engine, whose cache
// counters are reported in the result.
func GHW(h *hypergraph.Hypergraph, cfg Config) Result {
	if cfg.Label == "" {
		cfg.Label = "ga-ghw"
	}
	eng := cfg.Engine
	if eng == nil {
		eng = setcover.NewEngine(h, setcover.DefaultCacheCapacity)
		// Sampled live snapshots go to the external recorder only; the final
		// snapshot below lands in both it and the run's RunStats. An injected
		// engine keeps whatever recorder its owner attached (the fields are
		// unsynchronized, so only the sharing caller may set them).
		eng.SetRecorder(cfg.Recorder, 0)
	}
	res := RunParallel(h.N(), func(worker int) Evaluator {
		rng := rand.New(rand.NewSource(cfg.Seed ^ 0x9e3779b9 + int64(worker)*1000003))
		return NewGHWEvaluatorWithEngine(eng, rng)
	}, cfg)
	st := eng.CacheStats()
	res.CoverCacheHits, res.CoverCacheMisses = st.Hits, st.Misses
	ev := obs.Event{Kind: obs.KindCoverCache, T: res.Elapsed,
		CacheHits: st.Hits, CacheMisses: st.Misses,
		CacheEvictions: st.Evictions, CacheSize: st.Size}
	res.Stats.Record(ev)
	if cfg.Recorder != nil {
		cfg.Recorder.Record(ev)
	}
	return res
}

// diversity summarizes the scored widths of one generation — mean, standard
// deviation and the number of distinct values — the population-diversity
// fields of generation events. A collapsed population (every individual the
// same ordering cost) has std near 0 and distinct 1; that is the GA plateau
// signature the trace analytics look for. A nil ok treats every index as
// scored.
func diversity(fit []int, ok []bool) (mean, std float64, distinct, scored int) {
	var sum, sumSq float64
	seen := make(map[int]struct{}, 8)
	for i, f := range fit {
		if ok != nil && !ok[i] {
			continue
		}
		scored++
		x := float64(f)
		sum += x
		sumSq += x * x
		seen[f] = struct{}{}
	}
	if scored == 0 {
		return 0, 0, 0, 0
	}
	mean = sum / float64(scored)
	if v := sumSq/float64(scored) - mean*mean; v > 0 {
		std = math.Sqrt(v)
	}
	return mean, std, len(seen), scored
}

// tournament picks s random individuals and returns the fittest.
func tournament(pop [][]int, fit []int, s int, rng *rand.Rand) []int {
	best := rng.Intn(len(pop))
	for k := 1; k < s; k++ {
		i := rng.Intn(len(pop))
		if fit[i] < fit[best] {
			best = i
		}
	}
	return pop[best]
}

func bestOf(pop [][]int, fit []int) ([]int, int) {
	bi := 0
	for i := range fit {
		if fit[i] < fit[bi] {
			bi = i
		}
	}
	return pop[bi], fit[bi]
}

// sortByFitness orders indices of fit ascending (used by SAIGA migration).
func sortByFitness(fit []int) []int {
	idx := make([]int, len(fit))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return fit[idx[a]] < fit[idx[b]] })
	return idx
}
