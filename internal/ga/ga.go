package ga

import (
	"context"
	"math/rand"
	"sort"
	"time"

	"hypertree/internal/budget"
	"hypertree/internal/budget/faultinject"
	"hypertree/internal/elim"
	"hypertree/internal/elimgraph"
	"hypertree/internal/hypergraph"
)

// Evaluator scores an elimination ordering; lower is better. The two
// instances used by the thesis are the treewidth evaluator (Figure 6.2) and
// the ghw evaluator with greedy set covers (Figure 7.1).
type Evaluator interface {
	Evaluate(order []int) int
}

// TreewidthEvaluator evaluates orderings by the induced tree-decomposition
// width. Not safe for concurrent use (it owns one elimination graph).
type TreewidthEvaluator struct {
	e *elimgraph.ElimGraph
}

// NewTreewidthEvaluator builds a treewidth evaluator for g.
func NewTreewidthEvaluator(g *hypergraph.Graph) *TreewidthEvaluator {
	return &TreewidthEvaluator{e: elimgraph.New(g)}
}

// Evaluate implements Evaluator.
func (t *TreewidthEvaluator) Evaluate(order []int) int { return elim.Width(t.e, order) }

// GHWEvaluator adapts elim.GHWEvaluator to the GA Evaluator interface.
type GHWEvaluator struct {
	ev *elim.GHWEvaluator
}

// NewGHWEvaluator builds a greedy-cover ghw evaluator for h (thesis §7.1.2).
func NewGHWEvaluator(h *hypergraph.Hypergraph, rng *rand.Rand) *GHWEvaluator {
	return &GHWEvaluator{ev: elim.NewGHWEvaluator(h, false, rng)}
}

// Evaluate implements Evaluator.
func (g *GHWEvaluator) Evaluate(order []int) int { return g.ev.Width(order) }

// Config holds the control parameters of algorithm GA-tw / GA-ghw
// (thesis Figure 6.1): population size n, crossover rate p_c, mutation rate
// p_m, tournament group size s, and iteration count.
type Config struct {
	PopulationSize int
	CrossoverRate  float64
	MutationRate   float64
	TournamentSize int
	MaxIterations  int
	Crossover      CrossoverOp
	Mutation       MutationOp
	Seed           int64
	// Timeout optionally bounds the run; zero means none.
	Timeout time.Duration
	// Target, when positive, stops the run early once the best width
	// reaches it (useful when a matching lower bound is known).
	Target int
	// Ctx optionally cancels the run at the evaluation checkpoints; on
	// cancellation Run returns its best-so-far anytime result.
	Ctx context.Context
	// Budget, when non-nil, supersedes Ctx/Timeout: every fitness
	// evaluation draws one work unit from it. core.Decompose shares one
	// budget across the whole run.
	Budget *budget.B
}

// budgetFor returns the run budget: the caller-supplied one, or a fresh
// budget built from the legacy Ctx/Timeout fields.
func (c Config) budgetFor() *budget.B {
	if c.Budget != nil {
		return c.Budget
	}
	return budget.New(c.Ctx, budget.Limits{Timeout: c.Timeout})
}

// ThesisDefaults returns the control parameters selected by the thesis's
// tuning experiments (§6.3): n=2000, p_c=1.0, p_m=0.3, s=3, POS + ISM.
func ThesisDefaults() Config {
	return Config{
		PopulationSize: 2000,
		CrossoverRate:  1.0,
		MutationRate:   0.3,
		TournamentSize: 3,
		MaxIterations:  2000,
		Crossover:      POS,
		Mutation:       ISM,
	}
}

// Result reports a GA run.
type Result struct {
	BestWidth    int
	BestOrdering []int
	Generations  int
	Evaluations  int64
	Elapsed      time.Duration
	// History records the best width after each generation (index 0 is the
	// initial population), for the convergence experiments.
	History []int
	// Stop says why the run ended early (deadline, node budget, canceled);
	// StopNone when all generations ran or Target was reached.
	Stop budget.StopReason
}

// Run executes the genetic algorithm of thesis Figure 6.1 over orderings of
// n vertices, scored by eval.
func Run(n int, eval Evaluator, cfg Config) Result {
	if cfg.PopulationSize < 2 {
		panic("ga: population size must be at least 2")
	}
	if cfg.TournamentSize < 1 {
		panic("ga: tournament size must be at least 1")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	start := time.Now()
	b := cfg.budgetFor()

	pop := make([][]int, cfg.PopulationSize)
	fit := make([]int, cfg.PopulationSize)
	evals := int64(0)
	for i := range pop {
		pop[i] = rng.Perm(n)
	}
	// The first individual is always evaluated — even on an exhausted
	// budget the caller gets one valid scored ordering back.
	faultinject.Hit(faultinject.SiteGAEval)
	fit[0] = eval.Evaluate(pop[0])
	evals++
	best, bestFit := pop[0], fit[0]
	for i := 1; i < len(pop); i++ {
		if !b.Tick() {
			break
		}
		faultinject.Hit(faultinject.SiteGAEval)
		fit[i] = eval.Evaluate(pop[i])
		evals++
		if fit[i] < bestFit {
			best, bestFit = pop[i], fit[i]
		}
	}
	history := []int{bestFit}

	gen := 0
	for ; gen < cfg.MaxIterations; gen++ {
		if bestFit <= cfg.Target && cfg.Target > 0 {
			break
		}
		if b.Stopped() || !b.Check() {
			break
		}
		// Selection (tournament, thesis §6.1).
		next := make([][]int, cfg.PopulationSize)
		for i := range next {
			next[i] = append([]int(nil), tournament(pop, fit, cfg.TournamentSize, rng)...)
		}
		// Recombination: the first p_c fraction of the population is
		// recombined pairwise; the rest passes through unchanged.
		pairs := int(cfg.CrossoverRate * float64(cfg.PopulationSize) / 2)
		rng.Shuffle(len(next), func(i, j int) { next[i], next[j] = next[j], next[i] })
		for p := 0; p < pairs; p++ {
			a, b := 2*p, 2*p+1
			if b >= len(next) {
				break
			}
			c1, c2 := Crossover(cfg.Crossover, next[a], next[b], rng)
			next[a], next[b] = c1, c2
		}
		// Mutation.
		for i := range next {
			if rng.Float64() < cfg.MutationRate {
				Mutate(cfg.Mutation, next[i], rng)
			}
		}
		// Evaluation. On budget exhaustion mid-generation only the already-
		// evaluated prefix is trusted: the tail of fit still scores the
		// previous generation's individuals.
		pop = next
		evaluated := len(pop)
		for i := range pop {
			if !b.Tick() {
				evaluated = i
				break
			}
			faultinject.Hit(faultinject.SiteGAEval)
			fit[i] = eval.Evaluate(pop[i])
			evals++
		}
		for i := 0; i < evaluated; i++ {
			if fit[i] < bestFit {
				best, bestFit = pop[i], fit[i]
			}
		}
		history = append(history, bestFit)
		if evaluated < len(pop) {
			break
		}
	}

	return Result{
		BestWidth:    bestFit,
		BestOrdering: append([]int(nil), best...),
		Generations:  gen,
		Evaluations:  evals,
		Elapsed:      time.Since(start),
		History:      history,
		Stop:         b.Reason(),
	}
}

// Treewidth runs GA-tw (thesis Chapter 6) on a graph and returns an upper
// bound on its treewidth.
func Treewidth(g *hypergraph.Graph, cfg Config) Result {
	return Run(g.N(), NewTreewidthEvaluator(g), cfg)
}

// TreewidthOfHypergraph runs GA-tw on a hypergraph's primal graph
// (Lemma 1: their tree decompositions coincide).
func TreewidthOfHypergraph(h *hypergraph.Hypergraph, cfg Config) Result {
	return Run(h.N(), NewTreewidthEvaluator(h.PrimalGraph()), cfg)
}

// GHW runs GA-ghw (thesis §7.1) on a hypergraph and returns an upper bound
// on its generalized hypertree width.
func GHW(h *hypergraph.Hypergraph, cfg Config) Result {
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x9e3779b9))
	return Run(h.N(), NewGHWEvaluator(h, rng), cfg)
}

// tournament picks s random individuals and returns the fittest.
func tournament(pop [][]int, fit []int, s int, rng *rand.Rand) []int {
	best := rng.Intn(len(pop))
	for k := 1; k < s; k++ {
		i := rng.Intn(len(pop))
		if fit[i] < fit[best] {
			best = i
		}
	}
	return pop[best]
}

func bestOf(pop [][]int, fit []int) ([]int, int) {
	bi := 0
	for i := range fit {
		if fit[i] < fit[bi] {
			bi = i
		}
	}
	return pop[bi], fit[bi]
}

// sortByFitness orders indices of fit ascending (used by SAIGA migration).
func sortByFitness(fit []int) []int {
	idx := make([]int, len(fit))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return fit[idx[a]] < fit[idx[b]] })
	return idx
}
