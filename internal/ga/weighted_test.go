package ga

import (
	"math"
	"testing"

	"hypertree/internal/hypergraph"
)

func TestWeightedEvaluatorUniformStates(t *testing.T) {
	// A path 0-1-2 eliminated end-first gives bags {0,1},{1,2},{2}:
	// with binary states the weight is log2(4 + 4 + 2) = log2 10.
	g := hypergraph.NewGraph(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	ev := NewWeightedEvaluator(g, []int{2, 2, 2})
	got := ev.Weight([]int{0, 1, 2})
	want := math.Log2(10)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("weight = %v, want %v", got, want)
	}
	// Evaluate is the milli-bit fixed point of the same value.
	if e := ev.Evaluate([]int{0, 1, 2}); e != int(1024*want) {
		t.Fatalf("Evaluate = %d, want %d", e, int(1024*want))
	}
}

// With skewed state counts the best ordering can differ from the best
// treewidth ordering: a star center with tiny domain should join big-domain
// leaves late.
func TestWeightedPrefersSmallDomains(t *testing.T) {
	// Triangle 0-1-2 plus pendant 3 on 0. States: vertex 3 has 100 states.
	g := hypergraph.NewGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	g.AddEdge(0, 3)
	ev := NewWeightedEvaluator(g, []int{2, 2, 2, 100})
	// Eliminating 3 first: bags {3,0} (200) then triangle: 8+4+2 = 214.
	early := ev.Weight([]int{3, 0, 1, 2})
	// Eliminating 3 last: bag {0,3} still appears but after 0 is gone the
	// bag is {3} alone: 1 first? order {1,2,0,3}: bags {1,0,2}=8, {2,0}=4,
	// {0,3}=200, {3}=100 -> 312.
	late := ev.Weight([]int{1, 2, 0, 3})
	if early >= late {
		t.Fatalf("expected early elimination of the big-domain leaf to be cheaper: early=%v late=%v", early, late)
	}
}

func TestWeightedTreewidthGA(t *testing.T) {
	g := hypergraph.Grid(3)
	states := make([]int, g.N())
	for i := range states {
		states[i] = 2 + i%3
	}
	cfg := smallConfig(9)
	r, bits := WeightedTreewidth(g, states, cfg)
	if len(r.BestOrdering) != g.N() {
		t.Fatal("no ordering returned")
	}
	if math.IsInf(bits, 0) || math.IsNaN(bits) || bits <= 0 {
		t.Fatalf("weight = %v", bits)
	}
	// The GA must do at least as well as a random ordering.
	ev := NewWeightedEvaluator(g, states)
	if random := ev.Weight([]int{0, 1, 2, 3, 4, 5, 6, 7, 8}); bits > random+1e-9 {
		t.Fatalf("GA weight %v worse than identity ordering %v", bits, random)
	}
}

func TestWeightedEvaluatorPanics(t *testing.T) {
	g := hypergraph.Grid(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad states length")
		}
	}()
	NewWeightedEvaluator(g, []int{2})
}
