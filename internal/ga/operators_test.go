package ga

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func isPerm(p []int, n int) bool {
	if len(p) != n {
		return false
	}
	seen := make([]bool, n)
	for _, v := range p {
		if v < 0 || v >= n || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

// Property: every crossover operator emits valid permutations for random
// parents of random length.
func TestCrossoverEmitsPermutationsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		p1 := rng.Perm(n)
		p2 := rng.Perm(n)
		for _, op := range CrossoverOps {
			c1, c2 := Crossover(op, p1, p2, rng)
			if !isPerm(c1, n) || !isPerm(c2, n) {
				return false
			}
		}
		return isPerm(p1, n) && isPerm(p2, n) // parents untouched
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: every mutation operator keeps permutations valid.
func TestMutationKeepsPermutationsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		for _, op := range MutationOps {
			p := rng.Perm(n)
			Mutate(op, p, rng)
			if !isPerm(p, n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Identical parents must reproduce themselves under every crossover: all six
// operators only rearrange genes according to the other parent.
func TestCrossoverIdenticalParents(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := rng.Perm(12)
	for _, op := range CrossoverOps {
		c1, c2 := Crossover(op, p, p, rng)
		for i := range p {
			if c1[i] != p[i] || c2[i] != p[i] {
				t.Errorf("%v: identical parents produced different child", op)
				break
			}
		}
	}
}

func TestCXDeterministicExample(t *testing.T) {
	// p1 = 1 2 3 4 5 (0-indexed: 0 1 2 3 4), p2 = 2 4 5 1 3 (1 3 4 0 2).
	// First cycle from position 0: 0 -> value p2[0]=1 at p1 pos 1 ->
	// p2[1]=3 at p1 pos 3 -> p2[3]=0 at p1 pos 0: cycle {0,1,3}.
	p1 := []int{0, 1, 2, 3, 4}
	p2 := []int{1, 3, 4, 0, 2}
	c := cx(p1, p2)
	want := []int{0, 1, 4, 3, 2}
	for i := range want {
		if c[i] != want[i] {
			t.Fatalf("cx = %v, want %v", c, want)
		}
	}
}

func TestAPDeterministicExample(t *testing.T) {
	// AP alternates p1 and p2, skipping used values:
	// p1 = 0 1 2 3, p2 = 3 2 1 0 -> 0, 3, 1, 2.
	c := ap([]int{0, 1, 2, 3}, []int{3, 2, 1, 0})
	want := []int{0, 3, 1, 2}
	for i := range want {
		if c[i] != want[i] {
			t.Fatalf("ap = %v, want %v", c, want)
		}
	}
}

func TestEMSwapsExactlyTwoOrZero(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		p := rng.Perm(10)
		orig := append([]int(nil), p...)
		Mutate(EM, p, rng)
		diff := 0
		for i := range p {
			if p[i] != orig[i] {
				diff++
			}
		}
		if diff != 0 && diff != 2 {
			t.Fatalf("EM changed %d positions", diff)
		}
	}
}

func TestSIMReversesSegment(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		p := rng.Perm(8)
		orig := append([]int(nil), p...)
		Mutate(SIM, p, rng)
		// Outside some window, order preserved; inside, reversed. Verify by
		// finding the changed window and checking reversal.
		a, b := 0, len(p)
		for a < len(p) && p[a] == orig[a] {
			a++
		}
		for b > a && p[b-1] == orig[b-1] {
			b--
		}
		for i := a; i < b; i++ {
			if p[i] != orig[a+b-1-i] {
				t.Fatalf("SIM did not reverse: %v -> %v", orig, p)
			}
		}
	}
}

func TestOperatorStrings(t *testing.T) {
	if PMX.String() != "PMX" || AP.String() != "AP" || POS.String() != "POS" {
		t.Fatal("crossover names wrong")
	}
	if DM.String() != "DM" || SM.String() != "SM" || ISM.String() != "ISM" {
		t.Fatal("mutation names wrong")
	}
	if CrossoverOp(99).String() == "" || MutationOp(99).String() == "" {
		t.Fatal("unknown ops should stringify")
	}
}

func TestMutateSingleElementNoop(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, op := range MutationOps {
		p := []int{0}
		Mutate(op, p, rng)
		if p[0] != 0 {
			t.Fatalf("%v mutated singleton", op)
		}
	}
}
