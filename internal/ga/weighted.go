package ga

import (
	"math"

	"hypertree/internal/elimgraph"
	"hypertree/internal/hypergraph"
)

// WeightedEvaluator scores orderings by the Bayesian-network triangulation
// objective of Larrañaga et al. that the thesis reviews in §4.5:
//
//	w(TD) = log2 Σ_{u ∈ T} Π_{v ∈ χ(u)} n_v
//
// where n_v is the number of states of variable v. Minimizing it minimizes
// the total potential-table size of the junction tree, which is what
// matters for probabilistic inference — a width-k bag of low-cardinality
// variables can be cheaper than a width-(k-1) bag of high-cardinality ones.
//
// Scores are returned as fixed-point milli-bits (⌊1024·w⌋) to satisfy the
// integer Evaluator interface; comparisons between orderings are unchanged
// by the scaling.
type WeightedEvaluator struct {
	e     *elimgraph.ElimGraph
	log2n []float64 // log2 of each variable's state count
	buf   []int
}

// NewWeightedEvaluator builds the evaluator for a graph whose vertex v has
// states[v] possible values (all must be >= 1).
func NewWeightedEvaluator(g *hypergraph.Graph, states []int) *WeightedEvaluator {
	if len(states) != g.N() {
		panic("ga: states length mismatch")
	}
	log2n := make([]float64, len(states))
	for v, n := range states {
		if n < 1 {
			panic("ga: state counts must be positive")
		}
		log2n[v] = math.Log2(float64(n))
	}
	return &WeightedEvaluator{e: elimgraph.New(g), log2n: log2n}
}

// Evaluate implements Evaluator: the weight of the triangulation induced by
// the ordering, in milli-bits.
func (w *WeightedEvaluator) Evaluate(order []int) int {
	return int(1024 * w.Weight(order))
}

// Weight returns log2 Σ_u Π_{v ∈ χ(u)} n_v for the ordering's decomposition.
func (w *WeightedEvaluator) Weight(order []int) float64 {
	defer w.e.Reset()
	// Accumulate Σ 2^(Σ log2 n_v) in log space for numeric stability:
	// log2(a + 2^x) with a tracked as (maxExp, mantissaSum).
	maxExp := math.Inf(-1)
	mantissa := 0.0
	for _, v := range order {
		w.buf = w.e.Neighbors(v, w.buf)
		exp := w.log2n[v]
		for _, u := range w.buf {
			exp += w.log2n[u]
		}
		if exp > maxExp {
			mantissa = mantissa*math.Exp2(maxExp-exp) + 1
			maxExp = exp
		} else {
			mantissa += math.Exp2(exp - maxExp)
		}
		w.e.Eliminate(v)
	}
	return maxExp + math.Log2(mantissa)
}

// WeightedTreewidth runs the GA under the §4.5 weighted objective and
// returns the best ordering together with its weight in bits.
func WeightedTreewidth(g *hypergraph.Graph, states []int, cfg Config) (Result, float64) {
	ev := NewWeightedEvaluator(g, states)
	r := Run(g.N(), ev, cfg)
	return r, ev.Weight(r.BestOrdering)
}
