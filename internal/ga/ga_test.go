package ga

import (
	"math/rand"
	"testing"

	"hypertree/internal/elim"
	"hypertree/internal/hypergraph"
)

func smallConfig(seed int64) Config {
	return Config{
		PopulationSize: 40,
		CrossoverRate:  1.0,
		MutationRate:   0.3,
		TournamentSize: 2,
		MaxIterations:  60,
		Crossover:      POS,
		Mutation:       ISM,
		Seed:           seed,
	}
}

func TestGATreewidthFindsOptimumOnEasyGraphs(t *testing.T) {
	// grid3 has treewidth 3; a tiny GA finds it reliably.
	g := hypergraph.Grid(3)
	r := Treewidth(g, smallConfig(1))
	if r.BestWidth != 3 {
		t.Fatalf("GA width on grid3 = %d, want 3", r.BestWidth)
	}
	if w := elim.WidthOfGraph(g, r.BestOrdering); w != r.BestWidth {
		t.Fatalf("reported %d but ordering evaluates to %d", r.BestWidth, w)
	}
	// K6: every ordering gives 5.
	k6 := hypergraph.CliqueGraph(6)
	if r := Treewidth(k6, smallConfig(2)); r.BestWidth != 5 {
		t.Fatalf("GA width on K6 = %d, want 5", r.BestWidth)
	}
}

func TestGAGHWFindsOptimumOnEasyHypergraphs(t *testing.T) {
	tri := hypergraph.NewHypergraph(3)
	tri.AddEdge(0, 1)
	tri.AddEdge(1, 2)
	tri.AddEdge(0, 2)
	if r := GHW(tri, smallConfig(3)); r.BestWidth != 2 {
		t.Fatalf("GA ghw on triangle = %d, want 2", r.BestWidth)
	}
	// Acyclic hypergraph: ghw 1; greedy covers still reach it.
	acyc := hypergraph.NewHypergraph(5)
	acyc.AddEdge(0, 1, 2)
	acyc.AddEdge(2, 3)
	acyc.AddEdge(3, 4)
	if r := GHW(acyc, smallConfig(4)); r.BestWidth != 1 {
		t.Fatalf("GA ghw on acyclic = %d, want 1", r.BestWidth)
	}
}

func TestGADeterministicBySeed(t *testing.T) {
	g := hypergraph.Queen(4)
	a := Treewidth(g, smallConfig(11))
	b := Treewidth(g, smallConfig(11))
	if a.BestWidth != b.BestWidth || a.Evaluations != b.Evaluations {
		t.Fatalf("same seed gave different runs: %v vs %v", a.BestWidth, b.BestWidth)
	}
	for i := range a.History {
		if a.History[i] != b.History[i] {
			t.Fatal("histories differ for identical seeds")
		}
	}
}

func TestGAHistoryMonotone(t *testing.T) {
	g := hypergraph.Queen(4)
	r := Treewidth(g, smallConfig(5))
	for i := 1; i < len(r.History); i++ {
		if r.History[i] > r.History[i-1] {
			t.Fatalf("best-so-far history increased at generation %d: %v", i, r.History)
		}
	}
	if r.Evaluations <= 0 || r.Generations <= 0 {
		t.Fatal("counters not populated")
	}
}

func TestGATargetStopsEarly(t *testing.T) {
	g := hypergraph.CliqueGraph(5) // every ordering gives 4 immediately
	cfg := smallConfig(6)
	cfg.Target = 4
	r := Treewidth(g, cfg)
	if r.Generations != 0 {
		t.Fatalf("target hit in initial population but ran %d generations", r.Generations)
	}
}

func TestGAUpperBoundSoundProperty(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(3)
		g := hypergraph.RandomGraph(n, n+rng.Intn(n), seed)
		cfg := smallConfig(seed)
		cfg.MaxIterations = 20
		r := Treewidth(g, cfg)
		if want := elim.ExhaustiveTreewidth(g); r.BestWidth < want {
			t.Fatalf("GA reported width %d below true treewidth %d", r.BestWidth, want)
		}
	}
}

func TestSAIGAGHWRuns(t *testing.T) {
	h := hypergraph.Grid2D(6)
	cfg := SAIGAConfig{
		Islands:        3,
		IslandPop:      20,
		TournamentSize: 2,
		Epochs:         4,
		EpochLength:    5,
		Seed:           1,
	}
	r := SAIGAGHW(h, cfg)
	if r.BestWidth < 3 {
		t.Fatalf("SAIGA ghw on grid2d6 = %d, below the true ghw 3", r.BestWidth)
	}
	if len(r.FinalParams) != 3 {
		t.Fatalf("expected 3 final parameter vectors, got %d", len(r.FinalParams))
	}
	for _, p := range r.FinalParams {
		if p.Pm < 0 || p.Pm > 1 || p.Pc < 0 || p.Pc > 1 {
			t.Fatalf("parameter out of range: %+v", p)
		}
	}
	// Check the returned ordering really achieves the width. Greedy covers
	// are tie-broken randomly, so re-evaluate with exact covers, which can
	// only be at most the width any greedy evaluation reported.
	ev := elim.NewGHWEvaluator(h, true, nil)
	if w := ev.Width(r.BestOrdering); w > r.BestWidth {
		t.Fatalf("ordering evaluates to %d > reported %d", w, r.BestWidth)
	}
}

func TestSAIGATreewidth(t *testing.T) {
	g := hypergraph.Grid(3)
	cfg := SAIGAConfig{Islands: 2, IslandPop: 20, TournamentSize: 2, Epochs: 4, EpochLength: 5, Seed: 2}
	r := SAIGATreewidth(g, cfg)
	if r.BestWidth != 3 {
		t.Fatalf("SAIGA treewidth on grid3 = %d, want 3", r.BestWidth)
	}
	if w := elim.WidthOfGraph(g, r.BestOrdering); w != r.BestWidth {
		t.Fatalf("ordering width %d != reported %d", w, r.BestWidth)
	}
}

func TestSAIGADeterministicBySeed(t *testing.T) {
	h := hypergraph.CliqueHypergraph(8)
	cfg := SAIGAConfig{Islands: 2, IslandPop: 10, TournamentSize: 2, Epochs: 2, EpochLength: 3, Seed: 5}
	a := SAIGAGHW(h, cfg)
	b := SAIGAGHW(h, cfg)
	if a.BestWidth != b.BestWidth || a.Evaluations != b.Evaluations {
		t.Fatal("SAIGA not deterministic for fixed seed")
	}
}

func TestRunPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for population < 2")
		}
	}()
	Run(5, NewTreewidthEvaluator(hypergraph.Grid(2)), Config{PopulationSize: 1, TournamentSize: 1, MaxIterations: 1})
}
