package ga

import (
	"testing"

	"hypertree/internal/budget"
	"hypertree/internal/hypergraph"
)

// With a deterministic evaluator the GA's trajectory depends only on fit
// values, so any worker count must reproduce the serial run exactly.
func TestRunParallelMatchesSerial(t *testing.T) {
	g := hypergraph.Queen(5)
	serial := Run(g.N(), NewTreewidthEvaluator(g), smallConfig(7))
	for _, workers := range []int{1, 3, 8} {
		cfg := smallConfig(7)
		cfg.Workers = workers
		par := RunParallel(g.N(), func(int) Evaluator { return NewTreewidthEvaluator(g) }, cfg)
		if par.BestWidth != serial.BestWidth {
			t.Fatalf("workers=%d: width %d, want %d", workers, par.BestWidth, serial.BestWidth)
		}
		if par.Generations != serial.Generations || par.Evaluations != serial.Evaluations {
			t.Fatalf("workers=%d: gen/evals %d/%d, want %d/%d",
				workers, par.Generations, par.Evaluations, serial.Generations, serial.Evaluations)
		}
		if len(par.History) != len(serial.History) {
			t.Fatalf("workers=%d: history length %d, want %d", workers, len(par.History), len(serial.History))
		}
		for i := range par.History {
			if par.History[i] != serial.History[i] {
				t.Fatalf("workers=%d: history[%d] = %d, want %d", workers, i, par.History[i], serial.History[i])
			}
		}
	}
}

// A parallel run under a tight evaluation budget must stop with the budget
// reason and still return a validly scored ordering (anytime contract).
func TestRunParallelAnytimeUnderBudget(t *testing.T) {
	g := hypergraph.Queen(5)
	cfg := smallConfig(8)
	cfg.Workers = 4
	cfg.Budget = budget.New(nil, budget.Limits{MaxNodes: 95}) // mid-generation cut
	r := RunParallel(g.N(), func(int) Evaluator { return NewTreewidthEvaluator(g) }, cfg)
	if r.Stop == budget.StopNone {
		t.Fatal("expected a budget stop reason")
	}
	if len(r.BestOrdering) != g.N() {
		t.Fatalf("ordering has %d entries", len(r.BestOrdering))
	}
	if w := NewTreewidthEvaluator(g).Evaluate(r.BestOrdering); w != r.BestWidth {
		t.Fatalf("reported %d but ordering evaluates to %d", r.BestWidth, w)
	}
	if r.Evaluations > 95+4 {
		// Each worker may finish the evaluation in flight when the budget
		// trips, but nothing beyond that.
		t.Fatalf("evaluations %d exceed the budget by more than the worker count", r.Evaluations)
	}
}

// GHW with workers shares one cover engine: the run must produce a sound
// width and report cache traffic.
func TestGHWParallelSharesCoverCache(t *testing.T) {
	tri := hypergraph.NewHypergraph(3)
	tri.AddEdge(0, 1)
	tri.AddEdge(1, 2)
	tri.AddEdge(0, 2)
	cfg := smallConfig(9)
	cfg.Workers = 4
	r := GHW(tri, cfg)
	if r.BestWidth != 2 {
		t.Fatalf("parallel GA ghw on triangle = %d, want 2", r.BestWidth)
	}
	if r.CoverCacheHits == 0 || r.CoverCacheMisses == 0 {
		t.Fatalf("no cover cache traffic: %+v hits, %+v misses", r.CoverCacheHits, r.CoverCacheMisses)
	}
}

// SAIGA's islands share one engine; the counters must land in the result.
func TestSAIGAGHWReportsCoverCache(t *testing.T) {
	tri := hypergraph.NewHypergraph(3)
	tri.AddEdge(0, 1)
	tri.AddEdge(1, 2)
	tri.AddEdge(0, 2)
	cfg := SAIGADefaults()
	cfg.Islands = 3
	cfg.IslandPop = 20
	cfg.Epochs = 3
	cfg.EpochLength = 4
	cfg.Seed = 10
	r := SAIGAGHW(tri, cfg)
	if r.BestWidth != 2 {
		t.Fatalf("SAIGA ghw on triangle = %d, want 2", r.BestWidth)
	}
	if r.CoverCacheHits == 0 {
		t.Fatal("islands produced no cover cache hits")
	}
}

// SAIGA's fitness evaluation splits each island's population across
// cfg.Workers goroutines with tick-first budget semantics, so with a
// deterministic evaluator every worker count must reproduce the serial
// trajectory exactly. This is the regression for the plumbing bug where
// core's saigaDefaults dropped Options.Workers on the floor: SAIGAConfig had
// no Workers field to receive it.
func TestSAIGAWorkersMatchSerial(t *testing.T) {
	g := hypergraph.Queen(5)
	base := SAIGADefaults()
	base.Islands = 2
	base.IslandPop = 12
	base.Epochs = 3
	base.EpochLength = 4
	base.Seed = 11
	serial := SAIGATreewidth(g, base)
	for _, workers := range []int{2, 4} {
		cfg := base
		cfg.Workers = workers
		par := SAIGATreewidth(g, cfg)
		if par.BestWidth != serial.BestWidth {
			t.Fatalf("workers=%d: width %d, want %d", workers, par.BestWidth, serial.BestWidth)
		}
		if par.Evaluations != serial.Evaluations {
			t.Fatalf("workers=%d: evaluations %d, want %d", workers, par.Evaluations, serial.Evaluations)
		}
		if w := NewTreewidthEvaluator(g).Evaluate(par.BestOrdering); w != par.BestWidth {
			t.Fatalf("workers=%d: reported %d but ordering evaluates to %d", workers, par.BestWidth, w)
		}
	}
}

// SAIGAGHW with per-island worker pools stays sound: the returned width
// matches a replay of the winning ordering.
func TestSAIGAGHWWorkersSound(t *testing.T) {
	h := hypergraph.Grid2D(4)
	cfg := SAIGADefaults()
	cfg.Islands = 2
	cfg.IslandPop = 10
	cfg.Epochs = 2
	cfg.EpochLength = 3
	cfg.Workers = 4
	cfg.Seed = 12
	r := SAIGAGHW(h, cfg)
	if len(r.BestOrdering) != h.N() {
		t.Fatalf("ordering has %d entries, want %d", len(r.BestOrdering), h.N())
	}
	if r.BestWidth < 2 {
		t.Fatalf("implausible ghw %d for Grid2D(4)", r.BestWidth)
	}
}
