package bounds

import (
	"math/bits"
	"math/rand"

	"hypertree/internal/elimgraph"
	"hypertree/internal/hypergraph"
)

// contractGraph is a throwaway graph supporting edge contraction and vertex
// deletion, used by the minor-based lower bounds. Adjacency is a bitset
// matrix: the bounds run at every node of the exact searches, so this is
// one of the hottest structures in the repository.
type contractGraph struct {
	n     int // original vertex count
	words int // words per adjacency row
	adj   []uint64
	alive []bool
	deg   []int
	live  int
}

func newContractGraphSized(n int) *contractGraph {
	words := (n + 63) / 64
	return &contractGraph{
		n:     n,
		words: words,
		adj:   make([]uint64, n*words),
		alive: make([]bool, n),
		deg:   make([]int, n),
	}
}

func newContractGraph(g *hypergraph.Graph) *contractGraph {
	c := newContractGraphSized(g.N())
	for v := 0; v < g.N(); v++ {
		c.alive[v] = true
	}
	c.live = g.N()
	for _, e := range g.Edges() {
		c.setEdge(e[0], e[1])
	}
	return c
}

// newContractGraphFromElim builds a contractGraph over the live subgraph of
// an elimination graph, so lower bounds can be evaluated at interior search
// states without materializing a snapshot graph.
func newContractGraphFromElim(e *elimgraph.ElimGraph) *contractGraph {
	n := e.N()
	c := newContractGraphSized(n)
	var buf []int
	for v := 0; v < n; v++ {
		if e.Eliminated(v) {
			continue
		}
		c.alive[v] = true
		c.live++
		buf = e.Neighbors(v, buf)
		row := c.row(v)
		for _, u := range buf {
			row[u>>6] |= 1 << (uint(u) & 63)
		}
		c.deg[v] = len(buf)
	}
	return c
}

func (c *contractGraph) row(v int) []uint64 {
	return c.adj[v*c.words : (v+1)*c.words]
}

func (c *contractGraph) setEdge(u, v int) {
	ru, rv := c.row(u), c.row(v)
	mu, mv := uint64(1)<<(uint(v)&63), uint64(1)<<(uint(u)&63)
	if ru[v>>6]&mu == 0 {
		ru[v>>6] |= mu
		rv[u>>6] |= mv
		c.deg[u]++
		c.deg[v]++
	}
}

func (c *contractGraph) hasEdge(u, v int) bool {
	return c.row(u)[v>>6]&(1<<(uint(v)&63)) != 0
}

func (c *contractGraph) degree(v int) int { return c.deg[v] }

// eachNeighbor calls fn for every live neighbor of v, in ascending order.
func (c *contractGraph) eachNeighbor(v int, fn func(w int)) {
	row := c.row(v)
	for wi, word := range row {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &= word - 1
			fn(wi*64 + b)
		}
	}
}

// contract merges v into u (u survives). Both must be live and adjacent or
// not — self-loops are discarded either way.
func (c *contractGraph) contract(u, v int) {
	ru := c.row(u)
	c.eachNeighbor(v, func(w int) {
		rw := c.row(w)
		rw[v>>6] &^= 1 << (uint(v) & 63)
		if w == u {
			return
		}
		mw := uint64(1) << (uint(w) & 63)
		if ru[w>>6]&mw != 0 {
			c.deg[w]-- // was adjacent to both: edges merge
		} else {
			ru[w>>6] |= mw
			rw[u>>6] |= 1 << (uint(u) & 63)
		}
	})
	// Recompute u's row/degree: union minus self-loops.
	rv := c.row(v)
	for i := range ru {
		ru[i] |= rv[i]
	}
	ru[u>>6] &^= 1 << (uint(u) & 63)
	ru[v>>6] &^= 1 << (uint(v) & 63)
	d := 0
	for _, w := range ru {
		d += bits.OnesCount64(w)
	}
	c.deg[u] = d
	// Kill v.
	for i := range rv {
		rv[i] = 0
	}
	c.deg[v] = 0
	c.alive[v] = false
	c.live--
}

// remove deletes vertex v and its incident edges.
func (c *contractGraph) remove(v int) {
	c.eachNeighbor(v, func(w int) {
		c.row(w)[v>>6] &^= 1 << (uint(v) & 63)
		c.deg[w]--
	})
	rv := c.row(v)
	for i := range rv {
		rv[i] = 0
	}
	c.deg[v] = 0
	c.alive[v] = false
	c.live--
}

// minDegreeVertex returns a live vertex of minimum degree, tie-broken by
// rng (or lowest index when rng is nil).
func (c *contractGraph) minDegreeVertex(rng *rand.Rand) (int, int) {
	v, vd, ties := -1, 0, 0
	for u := 0; u < c.n; u++ {
		if !c.alive[u] {
			continue
		}
		d := c.deg[u]
		switch {
		case v < 0 || d < vd:
			v, vd, ties = u, d, 1
		case d == vd:
			ties++
			if rng != nil && rng.Intn(ties) == 0 {
				v = u
			}
		}
	}
	return v, vd
}

// minNeighbor returns the live neighbor of v with minimum degree, breaking
// ties via rng. Returns -1 if v is isolated.
func (c *contractGraph) minNeighbor(v int, rng *rand.Rand) int {
	best, bestDeg, ties := -1, 0, 0
	c.eachNeighbor(v, func(u int) {
		d := c.deg[u]
		switch {
		case best < 0 || d < bestDeg:
			best, bestDeg, ties = u, d, 1
		case d == bestDeg:
			ties++
			if rng != nil && rng.Intn(ties) == 0 {
				best = u
			}
		}
	})
	return best
}
