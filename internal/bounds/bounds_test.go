package bounds

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hypertree/internal/elim"
	"hypertree/internal/hypergraph"
)

func TestMinorMinWidthKnown(t *testing.T) {
	// Clique K5: lower bound must be 4 (treewidth 4, MMW is exact here).
	if got := MinorMinWidth(hypergraph.CliqueGraph(5), nil); got != 4 {
		t.Errorf("K5 MMW = %d, want 4", got)
	}
	// A tree has treewidth 1; MMW on a tree gives 1.
	tree := hypergraph.NewGraph(6)
	for _, e := range [][2]int{{0, 1}, {0, 2}, {1, 3}, {1, 4}, {2, 5}} {
		tree.AddEdge(e[0], e[1])
	}
	if got := MinorMinWidth(tree, nil); got != 1 {
		t.Errorf("tree MMW = %d, want 1", got)
	}
	// C5 (treewidth 2): MMW gives 2.
	c5 := hypergraph.NewGraph(5)
	for i := 0; i < 5; i++ {
		c5.AddEdge(i, (i+1)%5)
	}
	if got := MinorMinWidth(c5, nil); got != 2 {
		t.Errorf("C5 MMW = %d, want 2", got)
	}
	// Empty graph: 0.
	if got := MinorMinWidth(hypergraph.NewGraph(4), nil); got != 0 {
		t.Errorf("empty MMW = %d, want 0", got)
	}
}

func TestMinorGammaRKnown(t *testing.T) {
	if got := MinorGammaR(hypergraph.CliqueGraph(6), nil); got != 5 {
		t.Errorf("K6 γR = %d, want 5", got)
	}
	if got := MinorGammaR(hypergraph.NewGraph(3), nil); got > 2 {
		t.Errorf("empty graph γR = %d, want <= 2", got)
	}
}

func TestDegeneracyKnown(t *testing.T) {
	// Grid graphs have degeneracy 2.
	if got := Degeneracy(hypergraph.Grid(4)); got != 2 {
		t.Errorf("grid4 degeneracy = %d, want 2", got)
	}
	if got := Degeneracy(hypergraph.CliqueGraph(7)); got != 6 {
		t.Errorf("K7 degeneracy = %d, want 6", got)
	}
}

func TestMinFillUpperBoundGrid(t *testing.T) {
	// min-fill on the n×n grid achieves the exact treewidth n for small n.
	for n := 2; n <= 5; n++ {
		ub := MinFillUpperBound(hypergraph.Grid(n), nil)
		if ub < n {
			t.Errorf("grid%d min-fill ub = %d < treewidth %d (impossible)", n, ub, n)
		}
		if ub > n+1 {
			t.Errorf("grid%d min-fill ub = %d, expected near %d", n, ub, n)
		}
	}
}

func TestTwKscWidthKnown(t *testing.T) {
	// Triangle as binary hypergraph: tw lb = 2, arity 2: lb = ceil(3/2) = 2.
	tri := hypergraph.NewHypergraph(3)
	tri.AddEdge(0, 1)
	tri.AddEdge(1, 2)
	tri.AddEdge(0, 2)
	if got := TwKscWidth(tri, nil); got != 2 {
		t.Errorf("triangle tw-ksc = %d, want 2", got)
	}
	// Empty hypergraph: 0.
	if got := TwKscWidth(hypergraph.NewHypergraph(3), nil); got != 0 {
		t.Errorf("edgeless tw-ksc = %d, want 0", got)
	}
}

func TestTwKscWidthFrom(t *testing.T) {
	if got := TwKscWidthFrom(5, 3); got != 2 {
		t.Errorf("TwKscWidthFrom(5,3) = %d, want 2", got)
	}
	if got := TwKscWidthFrom(5, 0); got != 0 {
		t.Errorf("TwKscWidthFrom(5,0) = %d, want 0", got)
	}
}

// Property: every lower bound is at most the exhaustive treewidth, and the
// min-fill upper bound is at least it (soundness on small random graphs).
func TestBoundsSoundProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(6)
		m := rng.Intn(n*(n-1)/2 + 1)
		g := hypergraph.RandomGraph(n, m, seed)
		tw := elim.ExhaustiveTreewidth(g)
		if MinorMinWidth(g, rng) > tw {
			return false
		}
		if MinorGammaR(g, rng) > tw {
			return false
		}
		if Degeneracy(g) > tw {
			return false
		}
		if TreewidthLowerBound(g, rng) > tw {
			return false
		}
		return MinFillUpperBound(g, rng) >= tw
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: tw-ksc-width never exceeds the exhaustive ghw (soundness of the
// thesis §8.1 combination).
func TestTwKscWidthSoundProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(4)
		m := 2 + rng.Intn(6)
		h := hypergraph.RandomHypergraph(n, m, 1, minInt(3, n), seed)
		covered := make([]bool, n)
		for _, e := range h.Edges() {
			for _, v := range e {
				covered[v] = true
			}
		}
		for v, c := range covered {
			if !c {
				h.AddEdge(v)
			}
		}
		ghw := elim.ExhaustiveGHW(h)
		return TwKscWidth(h, rng) <= ghw
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: GreedyGHWUpperBound is an upper bound on exhaustive ghw.
func TestGreedyGHWUpperBoundSoundProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(4)
		m := 2 + rng.Intn(5)
		h := hypergraph.RandomHypergraph(n, m, 1, minInt(3, n), seed)
		covered := make([]bool, n)
		for _, e := range h.Edges() {
			for _, v := range e {
				covered[v] = true
			}
		}
		for v, c := range covered {
			if !c {
				h.AddEdge(v)
			}
		}
		return GreedyGHWUpperBound(h, rng) >= elim.ExhaustiveGHW(h)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
