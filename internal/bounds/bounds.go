// Package bounds implements the lower- and upper-bound heuristics of the
// thesis: the treewidth lower bounds minor-min-width (Figure 4.7, Gogate &
// Dechter's QuickBB bound, a.k.a. MMD+(least-c)) and minor-γR (Figure 4.8),
// the degeneracy bound MMD, the min-fill upper bound (§4.4.2), and the
// generalized-hypertree-width lower bound tw-ksc-width (Figure 8.1), which
// combines a treewidth lower bound with a k-set-cover lower bound.
package bounds

import (
	"math/rand"
	"sort"

	"hypertree/internal/elim"
	"hypertree/internal/elimgraph"
	"hypertree/internal/hypergraph"
	"hypertree/internal/setcover"
)

// MinorMinWidth computes the minor-min-width treewidth lower bound
// (thesis Figure 4.7): repeatedly contract a minimum-degree vertex with its
// least-degree neighbor, tracking the maximum minimum degree encountered.
func MinorMinWidth(g *hypergraph.Graph, rng *rand.Rand) int {
	return minorMinWidthOn(newContractGraph(g), rng)
}

// MinorMinWidthElim evaluates the minor-min-width bound on the live subgraph
// of an elimination graph (the per-node lower bound of A*-tw and BB-ghw).
func MinorMinWidthElim(e *elimgraph.ElimGraph, rng *rand.Rand) int {
	return minorMinWidthOn(newContractGraphFromElim(e), rng)
}

func minorMinWidthOn(c *contractGraph, rng *rand.Rand) int {
	lb := 0
	for c.live > 0 {
		v, vd := c.minDegreeVertex(rng)
		if vd > lb {
			lb = vd
		}
		if vd == 0 {
			c.remove(v)
			continue
		}
		u := c.minNeighbor(v, rng)
		c.contract(u, v)
	}
	return lb
}

// MinorGammaR computes the minor-γR treewidth lower bound (thesis Figure
// 4.8), based on the Ramachandramurthi γ parameter: in each round, sort the
// live vertices by degree and find the first one not adjacent to all its
// predecessors; its degree is a lower bound. If every vertex is adjacent to
// all predecessors the graph is complete and n-1 is returned for that round.
func MinorGammaR(g *hypergraph.Graph, rng *rand.Rand) int {
	c := newContractGraph(g)
	lb := 0
	live := make([]int, 0, c.n)
	for c.live > 0 {
		live = live[:0]
		for u := 0; u < c.n; u++ {
			if c.alive[u] {
				live = append(live, u)
			}
		}
		sort.SliceStable(live, func(i, j int) bool {
			return c.degree(live[i]) < c.degree(live[j])
		})
		v := -1
		for i, u := range live {
			adjacentToAll := true
			for j := 0; j < i; j++ {
				if !c.hasEdge(u, live[j]) {
					adjacentToAll = false
					break
				}
			}
			if !adjacentToAll {
				v = u
				break
			}
		}
		if v < 0 {
			// Clique (or single vertex): γR degenerates to n-1.
			if c.live-1 > lb {
				lb = c.live - 1
			}
			break
		}
		if d := c.degree(v); d > lb {
			lb = d
		}
		if c.degree(v) == 0 {
			c.remove(v)
			continue
		}
		u := c.minNeighbor(v, rng)
		c.contract(u, v)
	}
	return lb
}

// Degeneracy computes the MMD (maximum minimum degree) lower bound: the
// graph's degeneracy, obtained by repeatedly deleting a minimum-degree
// vertex.
func Degeneracy(g *hypergraph.Graph) int {
	c := newContractGraph(g)
	lb := 0
	for c.live > 0 {
		v, vd := c.minDegreeVertex(nil)
		if vd > lb {
			lb = vd
		}
		c.remove(v)
	}
	return lb
}

// TreewidthLowerBound returns the strongest of the implemented treewidth
// lower bounds, as used by A*-tw (thesis §5.1: maximum of minor-min-width
// and minor-γR).
func TreewidthLowerBound(g *hypergraph.Graph, rng *rand.Rand) int {
	lb := MinorMinWidth(g, rng)
	if v := MinorGammaR(g, rng); v > lb {
		lb = v
	}
	return lb
}

// MinFillUpperBound returns the width of the min-fill greedy ordering, the
// upper-bound heuristic of QuickBB and A*-tw.
func MinFillUpperBound(g *hypergraph.Graph, rng *rand.Rand) int {
	return elim.WidthOfGraph(g, elim.MinFillOrdering(g, rng))
}

// TwKscWidth computes the generalized-hypertree-width lower bound of thesis
// Figure 8.1 (tw-ksc-width): any GHD of H induces a tree decomposition, so
// some bag has at least lbtw+1 vertices, where lbtw is any treewidth lower
// bound for the primal graph; covering that bag with hyperedges of size at
// most k = max arity needs at least ceil((lbtw+1)/k) of them.
func TwKscWidth(h *hypergraph.Hypergraph, rng *rand.Rand) int {
	if h.M() == 0 {
		return 0
	}
	lbtw := TreewidthLowerBound(h.PrimalGraph(), rng)
	return setcover.KSetCoverLowerBound(lbtw+1, h.MaxArity())
}

// TwKscWidthFrom computes the tw-ksc-width bound from an already-known
// treewidth lower bound (used inside BB-ghw/A*-ghw on partially eliminated
// graphs where the caller supplies the bound).
func TwKscWidthFrom(lbtw, maxArity int) int {
	if maxArity < 1 {
		return 0
	}
	return setcover.KSetCoverLowerBound(lbtw+1, maxArity)
}

// GreedyGHWUpperBound returns the greedy-cover ghw of a min-fill ordering —
// the cheap upper bound used to prime BB-ghw and A*-ghw (McMahan's Bucket
// Elimination approach, thesis §2.5.2).
func GreedyGHWUpperBound(h *hypergraph.Hypergraph, rng *rand.Rand) int {
	order := elim.MinFillOrdering(h.PrimalGraph(), rng)
	return elim.NewGHWEvaluator(h, false, rng).Width(order)
}
