// The -bench-json harness: Go testing.B microbenchmarks of the ghw width
// evaluator over named registry instances, run from cmd/experiments and
// serialized to a JSON report (BENCH_ghw.json in the repository records the
// reference run). Three modes per instance measure the layers of the cover
// engine: the memoizing engine, the engine with its cache disabled (pure
// bitset speed), and the pre-engine slice path that hands each bag's
// incident hyperedges to the public set-cover API.
package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"testing"

	"hypertree/internal/budget"
	"hypertree/internal/core"
	"hypertree/internal/elim"
	"hypertree/internal/elimgraph"
	"hypertree/internal/htd"
	"hypertree/internal/hypergraph"
	"hypertree/internal/obs"
	"hypertree/internal/search"
	"hypertree/internal/setcover"
)

// DefaultBenchInstances are the registry hypergraphs the -bench-json mode
// measures: the grid family the thesis evaluates throughout, plus two
// circuit-shaped instances with different edge statistics.
var DefaultBenchInstances = []string{"grid2d_10", "grid2d_20", "adder_25", "bridge_15"}

// benchOrderings is how many fixed random orderings each measurement cycles
// through (so the cached mode sees repeated bags, as searches do).
const benchOrderings = 8

// SearchBenchInstances are the instances the whole-search modes (bb-serial /
// bb-par / detk-serial / detk-par) run on: the mid-size grids where the
// parallel engines have enough subtree to distribute.
var SearchBenchInstances = []string{"grid2d_10", "grid2d_14"}

const (
	// bbBenchNodes / detkBenchNodes bound every whole-search op by search
	// nodes, so the serial and parallel modes of one instance do the same
	// amount of algorithmic work per op and their ns/op ratio is the
	// engine's parallel speedup (≈1 on a single-core machine).
	bbBenchNodes   = 25000
	detkBenchNodes = 5000
	// detkBenchK is the fixed width the det-k modes decide.
	detkBenchK = 3
	// parBenchWorkers is the worker count of the -par modes.
	parBenchWorkers = 4
)

// BenchEntry is one (instance, mode) measurement.
type BenchEntry struct {
	Instance string `json:"instance"`
	// Mode is "engine" (memo cache on), "engine-nooprec" (memo cache on,
	// a discarding obs recorder attached — the instrumentation-enabled
	// dispatch cost), "engine-nocache" (bitsets only), or "sliceapi" (the
	// pre-engine evaluation path). The whole-search modes "bb-serial" /
	// "bb-par" and "detk-serial" / "detk-par" measure one node-budgeted
	// BB-ghw run or det-k decision, serial vs. Workers-parallel.
	Mode        string  `json:"mode"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// Workers is the parallel worker count of the "-par" modes (0 = serial).
	Workers int `json:"workers,omitempty"`
	// Width sanity-checks that every mode computed the same values.
	Width int `json:"width"`
	// Cache counters, for the cached engine modes only.
	CacheHits      int64 `json:"cache_hits,omitempty"`
	CacheMisses    int64 `json:"cache_misses,omitempty"`
	CacheEvictions int64 `json:"cache_evictions,omitempty"`
	// Served-latency percentiles and throughput, for the query-lat-* modes
	// only (each of their Iterations queries is timed individually).
	P50NS float64 `json:"p50_ns,omitempty"`
	P95NS float64 `json:"p95_ns,omitempty"`
	P99NS float64 `json:"p99_ns,omitempty"`
	QPS   float64 `json:"qps,omitempty"`
}

// BenchReport is the schema of BENCH_ghw.json.
type BenchReport struct {
	// Unit documents what one op is: a full GHWEvaluator.Width evaluation
	// of one elimination ordering with greedy covers.
	Unit string `json:"unit"`
	// SearchUnit documents the whole-search modes' op: one node-budgeted
	// BB-ghw run (bb-*) or det-k width-k decision (detk-*).
	SearchUnit string `json:"search_unit,omitempty"`
	// QueryUnit documents the query-serving modes' op (see queryserve.go).
	QueryUnit string       `json:"query_unit,omitempty"`
	Entries   []BenchEntry `json:"entries"`
}

// RunBenchJSON benchmarks the given registry instances (nil selects
// DefaultBenchInstances) and returns the report. Progress lines in
// benchstat format go to w via fmt.Fprintf when logf is non-nil.
func RunBenchJSON(instances []string, logf func(format string, args ...interface{})) (*BenchReport, error) {
	if instances == nil {
		instances = DefaultBenchInstances
	}
	if logf == nil {
		logf = func(string, ...interface{}) {}
	}
	report := &BenchReport{Unit: "GHWEvaluator.Width (greedy covers) of one ordering"}
	for _, name := range instances {
		inst, err := Hyper(name)
		if err != nil {
			return nil, err
		}
		h := inst.Build()
		rng := rand.New(rand.NewSource(42))
		orders := make([][]int, benchOrderings)
		for i := range orders {
			orders[i] = rng.Perm(h.N())
		}
		engEval := elim.NewGHWEvaluator(h, false, nil)
		noopEng := setcover.NewEngine(h, setcover.DefaultCacheCapacity)
		noopEng.SetRecorder(obs.Noop, 1)
		noopEval := elim.NewGHWEvaluatorWithEngine(noopEng, false, nil)
		coldEval := elim.NewGHWEvaluatorWithEngine(setcover.NewEngine(h, 0), false, nil)
		modes := []benchMode{
			{"engine", engEval.Width, engEval.CoverCacheStats},
			{"engine-nooprec", noopEval.Width, noopEng.CacheStats},
			{"engine-nocache", coldEval.Width, nil},
			{"sliceapi", func(order []int) int { return sliceAPIWidth(h, order) }, nil},
		}

		for _, mode := range modes {
			width := mode.width(orders[0])
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					mode.width(orders[i%len(orders)])
				}
			})
			entry := BenchEntry{
				Instance:    name,
				Mode:        mode.name,
				Iterations:  r.N,
				NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
				AllocsPerOp: r.AllocsPerOp(),
				BytesPerOp:  r.AllocedBytesPerOp(),
				Width:       width,
			}
			if mode.stats != nil {
				s := mode.stats()
				entry.CacheHits, entry.CacheMisses, entry.CacheEvictions = s.Hits, s.Misses, s.Evictions
			}
			report.Entries = append(report.Entries, entry)
			logf("BenchmarkGHWWidth/%s/%s\t%s\n", name, mode.name, r.String()+"\t"+r.MemString())
		}
	}
	report.SearchUnit = fmt.Sprintf("bb-*: one BB-ghw run (%d nodes); detk-*: one det-k k=%d decision (%d nodes); portfolio: one solver race (%d shared nodes)",
		bbBenchNodes, detkBenchK, detkBenchNodes, bbBenchNodes)
	for _, name := range SearchBenchInstances {
		inst, err := Hyper(name)
		if err != nil {
			return nil, err
		}
		h := inst.Build()
		modes := []searchBenchMode{
			{"bb-serial", 0, benchBBWidth},
			{"bb-par", parBenchWorkers, benchBBWidth},
			{"detk-serial", 0, benchDetKWidth},
			{"detk-par", parBenchWorkers, benchDetKWidth},
			{"portfolio", 0, benchPortfolioWidth},
		}
		for _, mode := range modes {
			width := mode.width(h, mode.workers)
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					mode.width(h, mode.workers)
				}
			})
			report.Entries = append(report.Entries, BenchEntry{
				Instance:    name,
				Mode:        mode.name,
				Iterations:  r.N,
				NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
				AllocsPerOp: r.AllocsPerOp(),
				BytesPerOp:  r.AllocedBytesPerOp(),
				Width:       width,
				Workers:     mode.workers,
			})
			logf("BenchmarkSearch/%s/%s\t%s\n", name, mode.name, r.String()+"\t"+r.MemString())
		}
	}
	report.QueryUnit = "query-compile: one engine.Compile; query-ref: one pinned SolveFromTD; query-serial/par/lat-*: one pinned Plan.Solve"
	if err := runQueryBench(report, logf); err != nil {
		return nil, err
	}
	return report, nil
}

// searchBenchMode is one whole-search measurement: a full (budgeted) run of
// an exact engine, serial (workers = 0) or parallel.
type searchBenchMode struct {
	name    string
	workers int
	width   func(h *hypergraph.Hypergraph, workers int) int
}

// benchBBWidth runs one node-budgeted BB-ghw search and returns its anytime
// width. Serial and parallel ops tick the same node budget, so their ns/op
// compare like-for-like.
func benchBBWidth(h *hypergraph.Hypergraph, workers int) int {
	r := search.BBGHW(h, search.Options{MaxNodes: bbBenchNodes, Seed: 1, Workers: workers})
	return r.Width
}

// benchPortfolioWidth runs one portfolio race on the same shared node budget
// the bb modes use and returns its anytime width. Which member reaches the
// budget first is a scheduling race, so the mode carries the parallel noise
// floor in diffs and its width is exempt from the evaluator cross-check.
func benchPortfolioWidth(h *hypergraph.Hypergraph, workers int) int {
	d, err := core.DecomposePortfolio(h, core.Options{MaxNodes: bbBenchNodes, Seed: 1})
	if err != nil {
		return -1
	}
	return d.Width
}

// benchDetKWidth runs one node-budgeted det-k width-detkBenchK decision and
// returns k when a decomposition was found, else -1.
func benchDetKWidth(h *hypergraph.Hypergraph, workers int) int {
	b := budget.New(context.Background(), budget.Limits{MaxNodes: detkBenchNodes})
	_, ok, _ := htd.DecideHWParallel(h, detkBenchK, workers, b)
	if ok {
		return detkBenchK
	}
	return -1
}

// benchMode is one measured evaluation path for an instance.
type benchMode struct {
	name  string
	width func(order []int) int
	stats func() setcover.CacheStats
}

// sliceAPIWidth replicates the pre-engine evaluation path: walk the
// elimination cliques with the usual early exit and cover each bag by
// handing its incident hyperedges as plain slices to the public set-cover
// API (no precomputed edge bitsets, no memoization).
func sliceAPIWidth(h *hypergraph.Hypergraph, order []int) int {
	e := elimgraph.FromHypergraph(h)
	defer e.Reset()
	width := 0
	var bag, cand []int
	seen := make([]bool, h.M())
	for _, v := range order {
		if width >= e.Live() {
			break
		}
		bag = append(e.Neighbors(v, bag[:0]), v)
		cand = cand[:0]
		for _, u := range bag {
			for _, ei := range h.IncidentEdges(u) {
				if !seen[ei] {
					seen[ei] = true
					cand = append(cand, ei)
				}
			}
		}
		sort.Ints(cand)
		sets := make([][]int, len(cand))
		for i, ei := range cand {
			sets[i] = h.Edge(ei)
			seen[ei] = false
		}
		k := setcover.GreedySize(bag, sets, nil)
		if k < 0 {
			return -1
		}
		if k > width {
			width = k
		}
		e.Eliminate(v)
	}
	return width
}

// WriteBenchJSON writes the report to path with a trailing newline. Encoding
// and file-close errors both surface, so a report truncated by a full disk is
// an error rather than a silently short file.
func WriteBenchJSON(report *BenchReport, path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}

// CheckBenchJSON validates that path holds a well-formed, non-empty bench
// report with plausible measurements; it is what `make bench-smoke` runs
// against the committed BENCH_ghw.json.
func CheckBenchJSON(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var report BenchReport
	if err := json.Unmarshal(data, &report); err != nil {
		return fmt.Errorf("bench: %s is not valid JSON: %w", path, err)
	}
	if report.Unit == "" {
		return fmt.Errorf("bench: %s is missing the unit field", path)
	}
	if len(report.Entries) == 0 {
		return fmt.Errorf("bench: %s has no entries", path)
	}
	byInstance := map[string]map[string]BenchEntry{}
	for i, e := range report.Entries {
		if e.Instance == "" || e.Mode == "" {
			return fmt.Errorf("bench: entry %d is missing instance/mode", i)
		}
		if e.Iterations <= 0 || e.NsPerOp <= 0 {
			return fmt.Errorf("bench: entry %d (%s/%s) has non-positive measurements", i, e.Instance, e.Mode)
		}
		if byInstance[e.Instance] == nil {
			byInstance[e.Instance] = map[string]BenchEntry{}
		}
		byInstance[e.Instance][e.Mode] = e
	}
	for inst, ms := range byInstance {
		if eng, okE := ms["engine"]; okE {
			// Every evaluator mode computes the same orderings
			// deterministically, so their widths must agree with the
			// reference engine mode. The whole-search modes measure
			// different ops (anytime runs, where the parallel schedule
			// legitimately shifts the truncation point), so they are
			// exempt from this cross-check.
			for mode, e := range ms {
				if !evaluatorBenchModes[mode] {
					continue
				}
				if e.Width != eng.Width {
					return fmt.Errorf("bench: %s: engine width %d != %s width %d", inst, eng.Width, mode, e.Width)
				}
			}
		}
		// The compiled-plan serving claim: answering a pinned query from the
		// plan must beat the per-query SolveFromTD baseline by at least 10x,
		// or the engine is not earning its compile step. The real margin is
		// orders of magnitude, so the gate has ample noise headroom.
		if ref, okR := ms["query-ref"]; okR {
			serial, okS := ms["query-serial"]
			if !okS {
				return fmt.Errorf("bench: %s: query-ref has no query-serial entry", inst)
			}
			if serial.NsPerOp*10 > ref.NsPerOp {
				return fmt.Errorf("bench: %s: compiled plan is only %.1fx faster than per-query SolveFromTD (want >= 10x)",
					inst, ref.NsPerOp/serial.NsPerOp)
			}
		}
		// Every parallel search mode must come with its serial baseline, or
		// the report cannot say what the parallel engine is compared against.
		for mode, e := range ms {
			if !strings.HasSuffix(mode, "-par") {
				continue
			}
			serial := strings.TrimSuffix(mode, "-par") + "-serial"
			if _, ok := ms[serial]; !ok {
				return fmt.Errorf("bench: %s: mode %s has no %s baseline entry", inst, mode, serial)
			}
			if e.Workers < 2 {
				return fmt.Errorf("bench: %s: mode %s has workers %d (want >= 2)", inst, mode, e.Workers)
			}
		}
	}
	return nil
}

// evaluatorBenchModes are the modes that evaluate the same fixed orderings
// and therefore must all report the engine mode's width.
var evaluatorBenchModes = map[string]bool{
	"engine": true, "engine-nooprec": true, "engine-nocache": true, "sliceapi": true,
}
