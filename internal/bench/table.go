package bench

import (
	"fmt"
	"strings"
)

// Table is a formatted experiment result, mirroring one thesis table.
type Table struct {
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// Add appends a row; cells are stringified with %v.
func (t *Table) Add(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.1f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Format renders the table as aligned plain text.
func (t *Table) Format() string {
	var sb strings.Builder
	sb.WriteString(t.Title)
	sb.WriteByte('\n')
	if t.Note != "" {
		sb.WriteString(t.Note)
		sb.WriteByte('\n')
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			if i < len(widths) {
				for p := len(c); p < widths[i]; p++ {
					sb.WriteByte(' ')
				}
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteByte('\n')
	for _, r := range t.Rows {
		writeRow(r)
	}
	return sb.String()
}

// orNA renders −1 (unknown thesis value) as "-".
func orNA(v int) string {
	if v < 0 {
		return "-"
	}
	return fmt.Sprintf("%d", v)
}

// exactMark renders an exactness flag the way the thesis does: the width
// when closed, "lb*" (a lower bound) when the budget ran out.
func exactMark(width int, exact bool, lb int) string {
	if exact {
		return fmt.Sprintf("%d", width)
	}
	return fmt.Sprintf("%d..%d*", lb, width)
}
