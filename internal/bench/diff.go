package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// DefaultDiffThreshold is the relative ns/op slowdown tolerated before an
// entry counts as regressed when DiffReports is called with threshold <= 0.
// Microbenchmark timings move with machine load, so gates that run on shared
// CI should pass a larger value (make bench-diff does).
const DefaultDiffThreshold = 0.5

// ParNoiseFactor widens the slowdown gate for the "-par" benchmark modes and
// the "portfolio" mode. Parallel scheduling (work-stealing order, goroutine
// placement, core count of the measuring machine — and for the portfolio,
// which racing member reaches the shared node budget first) moves their
// ns/op far more between runs than the single-threaded evaluator modes, so
// their noise floor is the serial threshold times this factor.
const ParNoiseFactor = 2.0

// noisyBenchMode reports whether mode's measurements carry scheduling noise:
// the "-par" search modes and the portfolio race.
func noisyBenchMode(mode string) bool {
	return strings.HasSuffix(mode, "-par") || mode == "portfolio"
}

// ReadBenchJSON loads and validates a -bench-json report.
func ReadBenchJSON(path string) (*BenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var report BenchReport
	if err := json.Unmarshal(data, &report); err != nil {
		return nil, fmt.Errorf("bench: %s is not valid JSON: %w", path, err)
	}
	if len(report.Entries) == 0 {
		return nil, fmt.Errorf("bench: %s has no entries", path)
	}
	return &report, nil
}

// DiffEntry is the comparison of one (instance, mode) measurement across two
// reports.
type DiffEntry struct {
	Instance string `json:"instance"`
	Mode     string `json:"mode"`
	// Verdict is "ok", "regressed", "improved", "added" (only in new) or
	// "removed" (only in old).
	Verdict string `json:"verdict"`
	// OldNsPerOp/NewNsPerOp are zero for added/removed entries.
	OldNsPerOp float64 `json:"old_ns_per_op,omitempty"`
	NewNsPerOp float64 `json:"new_ns_per_op,omitempty"`
	// Ratio is new/old ns_per_op (0 for added/removed).
	Ratio float64 `json:"ratio,omitempty"`
	// Notes carry observations that inform but never gate: width changes
	// (a correctness signal for the instance registry, not a perf one) and
	// allocation shifts.
	Notes []string `json:"notes,omitempty"`
}

// BenchDiff is the full report comparison.
type BenchDiff struct {
	// Threshold is the relative slowdown gate the verdicts used.
	Threshold float64     `json:"threshold"`
	Entries   []DiffEntry `json:"entries"`
}

// Regressed reports whether any entry's verdict is "regressed". Added and
// removed entries do not gate: a new benchmark mode must not fail the first
// run that introduces it.
func (d *BenchDiff) Regressed() bool {
	for _, e := range d.Entries {
		if e.Verdict == "regressed" {
			return true
		}
	}
	return false
}

// DiffReports compares two bench reports entry by entry, keyed on
// (instance, mode). An entry regresses when its ns/op grew by more than the
// relative threshold (new > old*(1+threshold)); it improves when it shrank by
// the mirrored factor (new < old/(1+threshold)). threshold <= 0 selects
// DefaultDiffThreshold.
func DiffReports(oldR, newR *BenchReport, threshold float64) *BenchDiff {
	if threshold <= 0 {
		threshold = DefaultDiffThreshold
	}
	d := &BenchDiff{Threshold: threshold}
	type key struct{ instance, mode string }
	oldBy := map[key]BenchEntry{}
	for _, e := range oldR.Entries {
		oldBy[key{e.Instance, e.Mode}] = e
	}
	newBy := map[key]BenchEntry{}
	for _, e := range newR.Entries {
		newBy[key{e.Instance, e.Mode}] = e
	}

	// Old-report order first (matched + removed), then new-only entries.
	for _, oe := range oldR.Entries {
		k := key{oe.Instance, oe.Mode}
		ne, ok := newBy[k]
		if !ok {
			d.Entries = append(d.Entries, DiffEntry{
				Instance: oe.Instance, Mode: oe.Mode, Verdict: "removed",
				OldNsPerOp: oe.NsPerOp,
			})
			continue
		}
		e := DiffEntry{
			Instance: oe.Instance, Mode: oe.Mode,
			OldNsPerOp: oe.NsPerOp, NewNsPerOp: ne.NsPerOp,
		}
		if oe.NsPerOp > 0 {
			e.Ratio = ne.NsPerOp / oe.NsPerOp
		}
		th := threshold
		if noisyBenchMode(oe.Mode) {
			th *= ParNoiseFactor
		}
		switch {
		case ne.NsPerOp > oe.NsPerOp*(1+th):
			e.Verdict = "regressed"
		case ne.NsPerOp < oe.NsPerOp/(1+th):
			e.Verdict = "improved"
		default:
			e.Verdict = "ok"
		}
		if ne.Width != oe.Width && oe.Mode != "portfolio" {
			// The portfolio's anytime width at a shared-budget truncation
			// depends on which member got there first; width drift there is
			// scheduling noise, not an instance-registry change.
			e.Notes = append(e.Notes, fmt.Sprintf("width changed %d -> %d (check the instance registry)", oe.Width, ne.Width))
		}
		if oe.AllocsPerOp > 0 && ne.AllocsPerOp > 2*oe.AllocsPerOp {
			e.Notes = append(e.Notes, fmt.Sprintf("allocs/op %d -> %d", oe.AllocsPerOp, ne.AllocsPerOp))
		}
		d.Entries = append(d.Entries, e)
	}
	var added []DiffEntry
	for _, ne := range newR.Entries {
		if _, ok := oldBy[key{ne.Instance, ne.Mode}]; !ok {
			added = append(added, DiffEntry{
				Instance: ne.Instance, Mode: ne.Mode, Verdict: "added",
				NewNsPerOp: ne.NsPerOp,
			})
		}
	}
	sort.SliceStable(added, func(i, j int) bool {
		if added[i].Instance != added[j].Instance {
			return added[i].Instance < added[j].Instance
		}
		return added[i].Mode < added[j].Mode
	})
	d.Entries = append(d.Entries, added...)
	return d
}

// Format renders the diff as an aligned text table.
func (d *BenchDiff) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "bench diff (threshold: %.0f%% slowdown)\n", 100*d.Threshold)
	for _, e := range d.Entries {
		verdict := e.Verdict
		if verdict == "regressed" {
			verdict = "REGRESSED"
		}
		switch e.Verdict {
		case "added":
			fmt.Fprintf(&b, "  %-12s %-16s %10s -> %10.0f ns/op  %s\n", e.Instance, e.Mode, "-", e.NewNsPerOp, verdict)
		case "removed":
			fmt.Fprintf(&b, "  %-12s %-16s %10.0f -> %10s ns/op  %s\n", e.Instance, e.Mode, e.OldNsPerOp, "-", verdict)
		default:
			fmt.Fprintf(&b, "  %-12s %-16s %10.0f -> %10.0f ns/op (%.2fx)  %s\n",
				e.Instance, e.Mode, e.OldNsPerOp, e.NewNsPerOp, e.Ratio, verdict)
		}
		for _, n := range e.Notes {
			fmt.Fprintf(&b, "    note: %s\n", n)
		}
	}
	return b.String()
}

// CompareBenchJSON is the end-to-end gate behind `experiments -bench-diff`:
// load both reports, diff at threshold, and return the rendered table plus
// whether the gate failed.
func CompareBenchJSON(oldPath, newPath string, threshold float64) (string, bool, error) {
	oldR, err := ReadBenchJSON(oldPath)
	if err != nil {
		return "", false, err
	}
	newR, err := ReadBenchJSON(newPath)
	if err != nil {
		return "", false, err
	}
	d := DiffReports(oldR, newR, threshold)
	return d.Format(), d.Regressed(), nil
}
