// Package bench is the experiment harness: the named benchmark-instance
// registry standing in for the DIMACS graph-coloring suite and the CSP
// hypergraph library used in the thesis's evaluation chapters, and the
// runners that regenerate each of the thesis's result tables.
//
// Exact families (queen, mycielski, grid, clique, adder, bridge, grid2d/3d)
// reproduce the published instances precisely; the remaining families are
// seeded structural substitutes matching the published vertex/edge counts
// (see DESIGN.md "Substitutions"). Published thesis numbers are attached
// where the supplied thesis text contains them, so the runners can print
// paper-vs-measured columns.
package bench

import (
	"fmt"
	"sort"

	"hypertree/internal/hypergraph"
)

// GraphInstance is a named benchmark graph.
type GraphInstance struct {
	Name  string
	Build func() *hypergraph.Graph
	// V, E are the published sizes (E counts undirected edges; the thesis
	// tables print DIMACS file line counts, which double-count).
	V, E int
	// Thesis columns of Table 5.1 (−1 when unavailable or not reported):
	// LB/UB are the root bounds, AStar the value returned by A*-tw, and
	// AStarExact whether A*-tw closed the instance within one hour.
	ThesisLB, ThesisUB, ThesisAStar int
	ThesisExact                     bool
	// ThesisGAUB is the best GA-tw width of Table 6.6 (−1 if absent).
	ThesisGAUB int
	// Substituted marks seeded stand-ins for unavailable data files.
	Substituted bool
}

// HyperInstance is a named benchmark hypergraph.
type HyperInstance struct {
	Name  string
	Build func() *hypergraph.Hypergraph
	V, E  int
	// ThesisUB is the best previously published ghw upper bound quoted in
	// Table 7.1's "ub" column; ThesisGA the best GA-ghw width (−1 absent).
	ThesisUB, ThesisGA int
	Substituted        bool
}

const na = -1

var graphRegistry = map[string]GraphInstance{}
var hyperRegistry = map[string]HyperInstance{}

func regG(g GraphInstance) { graphRegistry[g.Name] = g }
func regH(h HyperInstance) { hyperRegistry[h.Name] = h }

// Graph returns the named graph instance.
func Graph(name string) (GraphInstance, error) {
	g, ok := graphRegistry[name]
	if !ok {
		return GraphInstance{}, fmt.Errorf("bench: unknown graph instance %q", name)
	}
	return g, nil
}

// Hyper returns the named hypergraph instance.
func Hyper(name string) (HyperInstance, error) {
	h, ok := hyperRegistry[name]
	if !ok {
		return HyperInstance{}, fmt.Errorf("bench: unknown hypergraph instance %q", name)
	}
	return h, nil
}

// GraphNames returns all registered graph-instance names, sorted.
func GraphNames() []string {
	names := make([]string, 0, len(graphRegistry))
	for n := range graphRegistry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// HyperNames returns all registered hypergraph-instance names, sorted.
func HyperNames() []string {
	names := make([]string, 0, len(hyperRegistry))
	for n := range hyperRegistry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func init() {
	// ---- Exact DIMACS families -------------------------------------------
	for _, n := range []int{4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16} {
		n := n
		name := fmt.Sprintf("queen%d_%d", n, n)
		thesis := map[int][4]int{ // lb, ub, A*, exact(1/0) from Table 5.1
			5: {12, 18, 18, 1},
			6: {16, 26, 25, 1},
			7: {20, 37, 31, 0},
		}
		ga := map[int]int{5: 18, 6: 26, 7: 35, 8: 45, 9: 58, 10: 72, 11: 87,
			12: 104, 13: 121, 14: 141, 15: 162, 16: 186} // Table 6.6 min
		lb, ub, as, ex := na, na, na, false
		if t, ok := thesis[n]; ok {
			lb, ub, as, ex = t[0], t[1], t[2], t[3] == 1
		}
		gaub := na
		if v, ok := ga[n]; ok {
			gaub = v
		}
		regG(GraphInstance{Name: name, Build: func() *hypergraph.Graph { return hypergraph.Queen(n) },
			V: n * n, E: 0, ThesisLB: lb, ThesisUB: ub, ThesisAStar: as, ThesisExact: ex, ThesisGAUB: gaub})
	}
	for _, k := range []int{3, 4, 5, 6, 7} {
		k := k
		name := fmt.Sprintf("myciel%d", k)
		thesis := map[int][4]int{
			3: {4, 5, 5, 1},
			4: {8, 11, 10, 1},
			5: {14, 21, 16, 0},
		}
		ga := map[int]int{3: 5, 4: 10, 5: 19, 6: 35, 7: 66}
		lb, ub, as, ex := na, na, na, false
		if t, ok := thesis[k]; ok {
			lb, ub, as, ex = t[0], t[1], t[2], t[3] == 1
		}
		gaub := na
		if v, ok := ga[k]; ok {
			gaub = v
		}
		regG(GraphInstance{Name: name, Build: func() *hypergraph.Graph { return hypergraph.Mycielski(k) },
			ThesisLB: lb, ThesisUB: ub, ThesisAStar: as, ThesisExact: ex, ThesisGAUB: gaub})
	}
	for _, n := range []int{2, 3, 4, 5, 6, 7, 8} {
		n := n
		// Table 5.2: grid_n has treewidth n; A*-tw closed up to grid6.
		regG(GraphInstance{
			Name:  fmt.Sprintf("grid%d", n),
			Build: func() *hypergraph.Graph { return hypergraph.Grid(n) },
			V:     n * n, E: 2 * n * (n - 1),
			ThesisLB: na, ThesisUB: na, ThesisAStar: n, ThesisExact: n <= 6, ThesisGAUB: na,
		})
	}

	// ---- Substituted DIMACS families -------------------------------------
	// Book (character co-occurrence) and miscellaneous graphs: seeded random
	// graphs with the published sizes.
	// The thesis's E column quotes DIMACS file line counts; the book,
	// games and miles files list each edge in both directions, so the
	// undirected sizes below are half the printed values (e.g. anna's
	// published "986" is 493 undirected edges; miles1500's "10396" exceeds
	// C(128,2) and is unambiguously doubled).
	randomSub := []struct {
		name       string
		v, e       int
		lb, ub, as int
		ex         bool
		gaub       int
	}{
		{"anna", 138, 493, 11, 12, 12, true, 12},
		{"david", 87, 406, 12, 13, 13, true, 13},
		{"huck", 74, 301, 10, 10, 10, true, 10},
		{"jean", 80, 254, 9, 9, 9, true, 9},
		{"homer", 561, 1629, na, na, na, false, 31},
		{"games120", 120, 638, na, na, na, false, 32},
		{"school1", 385, 19095, na, na, na, false, 185},
		{"school1_nsh", 352, 14612, na, na, na, false, 157},
		{"DSJC125.1", 125, 736, 23, 66, 24, false, 61},
		{"DSJC125.5", 125, 3891, 58, 111, 82, false, 109},
		{"DSJC125.9", 125, 6961, 105, 119, 119, true, 119},
		{"DSJC250.1", 250, 3218, na, na, na, false, 169},
		{"DSJC250.5", 250, 15668, na, na, na, false, 230},
		{"DSJC250.9", 250, 27897, na, na, na, false, 243},
		{"le450_5a", 450, 5714, 62, 315, 63, false, 243},
		{"le450_15a", 450, 8168, 75, 290, 75, false, 265},
		{"le450_25a", 450, 8260, 75, 258, 77, false, 225},
	}
	for i, s := range randomSub {
		s := s
		seed := int64(1000 + i)
		regG(GraphInstance{Name: s.name,
			Build: func() *hypergraph.Graph { return hypergraph.RandomGraph(s.v, s.e, seed) },
			V:     s.v, E: s.e,
			ThesisLB: s.lb, ThesisUB: s.ub, ThesisAStar: s.as, ThesisExact: s.ex,
			ThesisGAUB: s.gaub, Substituted: true})
	}
	// Register-allocation graphs: near-chordal; seeded interval graphs.
	intervalSub := []struct {
		name string
		v, e int
		as   int
		ex   bool
		gaub int
	}{
		{"fpsol2.i.1", 496, 11654, 66, true, 66},
		{"fpsol2.i.2", 451, 8691, 31, true, 32},
		{"fpsol2.i.3", 425, 8688, 31, true, 32},
		{"inithx.i.1", 864, 18707, 56, true, 56},
		{"inithx.i.2", 645, 13979, 31, true, 35},
		{"inithx.i.3", 621, 13969, 31, true, 35},
		{"mulsol.i.1", 197, 3925, 50, true, 50},
		{"mulsol.i.2", 188, 3885, 32, true, 32},
		{"mulsol.i.5", 186, 3973, 31, true, 31},
		{"zeroin.i.1", 211, 4100, 50, true, 50},
		{"zeroin.i.2", 211, 3541, 32, true, 32},
		{"zeroin.i.3", 206, 3540, 32, true, 32},
	}
	for i, s := range intervalSub {
		s := s
		seed := int64(2000 + i)
		regG(GraphInstance{Name: s.name,
			Build: func() *hypergraph.Graph { return hypergraph.RandomIntervalGraph(s.v, s.e, seed) },
			V:     s.v, E: s.e,
			ThesisLB: na, ThesisUB: na, ThesisAStar: s.as, ThesisExact: s.ex,
			ThesisGAUB: s.gaub, Substituted: true})
	}
	// Geometric (miles*) graphs.
	milesSub := []struct {
		name string
		e    int
		as   int
		ex   bool
		gaub int
	}{
		{"miles250", 387, 9, true, 10},
		{"miles500", 1170, 22, true, 24},
		{"miles750", 2113, 34, false, 37},
		{"miles1000", 3216, 49, true, 50},
		{"miles1500", 5198, 77, true, 77},
	}
	for i, s := range milesSub {
		s := s
		seed := int64(3000 + i)
		regG(GraphInstance{Name: s.name,
			Build: func() *hypergraph.Graph { return hypergraph.RandomGeometricGraphM(128, s.e, seed) },
			V:     128, E: s.e,
			ThesisLB: na, ThesisUB: na, ThesisAStar: s.as, ThesisExact: s.ex,
			ThesisGAUB: s.gaub, Substituted: true})
	}

	// ---- Hypergraph library (Table 7.1 and Chapters 8–9) ------------------
	regH(HyperInstance{Name: "adder_15", Build: func() *hypergraph.Hypergraph { return hypergraph.Adder(15) },
		V: 76, E: 106, ThesisUB: na, ThesisGA: na})
	regH(HyperInstance{Name: "adder_25", Build: func() *hypergraph.Hypergraph { return hypergraph.Adder(25) },
		V: 126, E: 176, ThesisUB: na, ThesisGA: na})
	regH(HyperInstance{Name: "adder_75", Build: func() *hypergraph.Hypergraph { return hypergraph.Adder(75) },
		V: 376, E: 526, ThesisUB: 2, ThesisGA: 3})
	regH(HyperInstance{Name: "adder_99", Build: func() *hypergraph.Hypergraph { return hypergraph.Adder(99) },
		V: 496, E: 694, ThesisUB: 2, ThesisGA: 3})
	regH(HyperInstance{Name: "bridge_15", Build: func() *hypergraph.Hypergraph { return hypergraph.Bridge(15) },
		V: 137, E: 137, ThesisUB: na, ThesisGA: na})
	regH(HyperInstance{Name: "bridge_50", Build: func() *hypergraph.Hypergraph { return hypergraph.Bridge(50) },
		V: 452, E: 452, ThesisUB: 2, ThesisGA: 6})
	regH(HyperInstance{Name: "clique_10", Build: func() *hypergraph.Hypergraph { return hypergraph.CliqueHypergraph(10) },
		V: 10, E: 45, ThesisUB: na, ThesisGA: na})
	regH(HyperInstance{Name: "clique_20", Build: func() *hypergraph.Hypergraph { return hypergraph.CliqueHypergraph(20) },
		V: 20, E: 190, ThesisUB: 10, ThesisGA: 11})
	regH(HyperInstance{Name: "grid2d_10", Build: func() *hypergraph.Hypergraph { return hypergraph.Grid2D(10) },
		V: 50, E: 50, ThesisUB: na, ThesisGA: na})
	regH(HyperInstance{Name: "grid2d_14", Build: func() *hypergraph.Hypergraph { return hypergraph.Grid2D(14) },
		V: 98, E: 98, ThesisUB: na, ThesisGA: na})
	regH(HyperInstance{Name: "grid2d_20", Build: func() *hypergraph.Hypergraph { return hypergraph.Grid2D(20) },
		V: 200, E: 200, ThesisUB: 11, ThesisGA: 10})
	regH(HyperInstance{Name: "grid3d_4", Build: func() *hypergraph.Hypergraph { return hypergraph.Grid3D(4) },
		V: 32, E: 32, ThesisUB: na, ThesisGA: na})
	regH(HyperInstance{Name: "grid3d_8", Build: func() *hypergraph.Hypergraph { return hypergraph.Grid3D(8) },
		V: 256, E: 256, ThesisUB: 20, ThesisGA: 21})
	regH(HyperInstance{Name: "grid4d_4", Build: func() *hypergraph.Hypergraph { return hypergraph.Grid4D(4) },
		V: 128, E: 128, ThesisUB: na, ThesisGA: na})
	// ISCAS circuit benchmarks: seeded structural substitutes.
	circuits := []struct {
		name   string
		v, e   int
		ub, ga int
	}{
		{"b06", 48, 50, 5, 4},
		{"b08", 170, 179, 10, 9},
		{"b09", 168, 169, 10, 7},
		{"b10", 189, 200, 14, 11},
		{"c499", 202, 243, 13, 11},
		{"c880", 383, 443, 19, 17},
	}
	for i, s := range circuits {
		s := s
		seed := int64(4000 + i)
		regH(HyperInstance{Name: s.name,
			Build: func() *hypergraph.Hypergraph { return hypergraph.RandomCircuit(s.v, s.e, seed) },
			V:     s.v, E: s.e, ThesisUB: s.ub, ThesisGA: s.ga, Substituted: true})
	}
}
