package bench

import (
	"path/filepath"
	"strings"
	"testing"
)

func sampleReport() *BenchReport {
	return &BenchReport{
		Unit: "test op",
		Entries: []BenchEntry{
			{Instance: "grid2d_10", Mode: "engine", Iterations: 1000, NsPerOp: 1000, Width: 4, AllocsPerOp: 10},
			{Instance: "grid2d_10", Mode: "sliceapi", Iterations: 1000, NsPerOp: 5000, Width: 4, AllocsPerOp: 50},
			{Instance: "adder_25", Mode: "engine", Iterations: 1000, NsPerOp: 2000, Width: 2, AllocsPerOp: 20},
		},
	}
}

// degrade returns a copy of r with the named entry's ns/op multiplied.
func degrade(r *BenchReport, instance, mode string, factor float64) *BenchReport {
	out := &BenchReport{Unit: r.Unit, Entries: append([]BenchEntry(nil), r.Entries...)}
	for i, e := range out.Entries {
		if e.Instance == instance && e.Mode == mode {
			out.Entries[i].NsPerOp = e.NsPerOp * factor
		}
	}
	return out
}

func TestDiffReportsCleanRun(t *testing.T) {
	old := sampleReport()
	d := DiffReports(old, degrade(old, "grid2d_10", "engine", 1.2), 0.5)
	if d.Regressed() {
		t.Fatalf("20%% drift flagged at 50%% threshold:\n%s", d.Format())
	}
	for _, e := range d.Entries {
		if e.Verdict != "ok" {
			t.Fatalf("entry %s/%s verdict %q, want ok", e.Instance, e.Mode, e.Verdict)
		}
	}
}

func TestDiffReportsSyntheticRegression(t *testing.T) {
	old := sampleReport()
	bad := degrade(old, "grid2d_10", "engine", 3.0)
	d := DiffReports(old, bad, 0.5)
	if !d.Regressed() {
		t.Fatalf("3x slowdown not flagged:\n%s", d.Format())
	}
	var hit *DiffEntry
	for i := range d.Entries {
		if d.Entries[i].Instance == "grid2d_10" && d.Entries[i].Mode == "engine" {
			hit = &d.Entries[i]
		} else if d.Entries[i].Verdict == "regressed" {
			t.Fatalf("untouched entry flagged: %+v", d.Entries[i])
		}
	}
	if hit == nil || hit.Verdict != "regressed" || hit.Ratio < 2.9 || hit.Ratio > 3.1 {
		t.Fatalf("regressed entry wrong: %+v", hit)
	}
	if !strings.Contains(d.Format(), "REGRESSED") {
		t.Fatalf("format missing REGRESSED:\n%s", d.Format())
	}
}

func TestDiffReportsImprovementAndChurn(t *testing.T) {
	old := sampleReport()
	improved := degrade(old, "grid2d_10", "sliceapi", 0.2)
	// Drop one entry and add a new mode.
	improved.Entries = improved.Entries[:len(improved.Entries)-1]
	improved.Entries = append(improved.Entries, BenchEntry{
		Instance: "grid2d_10", Mode: "engine-nooprec", Iterations: 1000, NsPerOp: 1100, Width: 4,
	})
	d := DiffReports(old, improved, 0.5)
	if d.Regressed() {
		t.Fatalf("improvement/churn flagged as regression:\n%s", d.Format())
	}
	verdicts := map[string]string{}
	for _, e := range d.Entries {
		verdicts[e.Instance+"/"+e.Mode] = e.Verdict
	}
	if verdicts["grid2d_10/sliceapi"] != "improved" {
		t.Fatalf("5x speedup verdict %q", verdicts["grid2d_10/sliceapi"])
	}
	if verdicts["adder_25/engine"] != "removed" || verdicts["grid2d_10/engine-nooprec"] != "added" {
		t.Fatalf("churn verdicts wrong: %v", verdicts)
	}
}

func TestDiffReportsWidthChangeIsNoteNotRegression(t *testing.T) {
	old := sampleReport()
	widthChanged := sampleReport()
	widthChanged.Entries[0].Width = 5
	d := DiffReports(old, widthChanged, 0.5)
	if d.Regressed() {
		t.Fatal("width change alone treated as perf regression")
	}
	if len(d.Entries[0].Notes) == 0 || !strings.Contains(d.Entries[0].Notes[0], "width changed") {
		t.Fatalf("width change not noted: %+v", d.Entries[0])
	}
}

func TestCompareBenchJSONEndToEnd(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	old := sampleReport()
	if err := WriteBenchJSON(old, oldPath); err != nil {
		t.Fatal(err)
	}
	if err := WriteBenchJSON(degrade(old, "adder_25", "engine", 4.0), newPath); err != nil {
		t.Fatal(err)
	}
	out, regressed, err := CompareBenchJSON(oldPath, newPath, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !regressed || !strings.Contains(out, "REGRESSED") {
		t.Fatalf("gate did not trip:\n%s", out)
	}
	// Same file on both sides: never regressed.
	out, regressed, err = CompareBenchJSON(oldPath, oldPath, 0.5)
	if err != nil || regressed {
		t.Fatalf("self-compare regressed (%v):\n%s", err, out)
	}
	if _, _, err := CompareBenchJSON(oldPath, filepath.Join(dir, "missing.json"), 0.5); err == nil {
		t.Fatal("missing report not an error")
	}
}

// TestDiffReportsParNoiseFloor: the "-par" modes gate at threshold ×
// ParNoiseFactor, so scheduler-induced drift that would flag a serial mode
// passes, while a real parallel regression still trips.
func TestDiffReportsParNoiseFloor(t *testing.T) {
	old := &BenchReport{Unit: "test op", Entries: []BenchEntry{
		{Instance: "grid2d_14", Mode: "bb-serial", Iterations: 10, NsPerOp: 1000, Width: 4},
		{Instance: "grid2d_14", Mode: "bb-par", Iterations: 10, NsPerOp: 800, Width: 4, Workers: 4},
	}}
	// 1.8x: beyond the 50% serial gate, inside the widened 100% parallel gate.
	drifted := degrade(old, "grid2d_14", "bb-par", 1.8)
	d := DiffReports(old, drifted, 0.5)
	if d.Regressed() {
		t.Fatalf("1.8x parallel drift flagged despite ParNoiseFactor:\n%s", d.Format())
	}
	// The same drift on the serial mode must still trip.
	if d := DiffReports(old, degrade(old, "grid2d_14", "bb-serial", 1.8), 0.5); !d.Regressed() {
		t.Fatalf("1.8x serial slowdown not flagged:\n%s", d.Format())
	}
	// A real parallel regression beyond the widened gate trips too.
	if d := DiffReports(old, degrade(old, "grid2d_14", "bb-par", 2.5), 0.5); !d.Regressed() {
		t.Fatalf("2.5x parallel slowdown not flagged:\n%s", d.Format())
	}
}

// TestCheckBenchJSONParPairing: a report with a "-par" entry and no serial
// baseline (or with a bogus worker count) must fail validation; the width
// cross-check must not apply to the whole-search modes.
func TestCheckBenchJSONParPairing(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, r *BenchReport) string {
		p := filepath.Join(dir, name)
		if err := WriteBenchJSON(r, p); err != nil {
			t.Fatal(err)
		}
		return p
	}
	good := &BenchReport{Unit: "test op", Entries: []BenchEntry{
		{Instance: "grid2d_10", Mode: "engine", Iterations: 10, NsPerOp: 1000, Width: 4},
		// Search modes legitimately report widths differing from the
		// evaluator mode (different op), and from each other when a budget
		// truncates the anytime run at a schedule-dependent point.
		{Instance: "grid2d_10", Mode: "bb-serial", Iterations: 10, NsPerOp: 5000, Width: 3},
		{Instance: "grid2d_10", Mode: "bb-par", Iterations: 10, NsPerOp: 2000, Width: 3, Workers: 4},
	}}
	if err := CheckBenchJSON(write("good.json", good)); err != nil {
		t.Fatalf("valid paired report rejected: %v", err)
	}
	unpaired := &BenchReport{Unit: "test op", Entries: []BenchEntry{
		{Instance: "grid2d_10", Mode: "bb-par", Iterations: 10, NsPerOp: 2000, Width: 3, Workers: 4},
	}}
	if err := CheckBenchJSON(write("unpaired.json", unpaired)); err == nil {
		t.Fatal("bb-par without bb-serial accepted")
	}
	serialPar := &BenchReport{Unit: "test op", Entries: []BenchEntry{
		{Instance: "grid2d_10", Mode: "bb-serial", Iterations: 10, NsPerOp: 5000, Width: 3},
		{Instance: "grid2d_10", Mode: "bb-par", Iterations: 10, NsPerOp: 2000, Width: 3, Workers: 1},
	}}
	if err := CheckBenchJSON(write("workers1.json", serialPar)); err == nil {
		t.Fatal("bb-par with workers=1 accepted")
	}
	badWidth := &BenchReport{Unit: "test op", Entries: []BenchEntry{
		{Instance: "grid2d_10", Mode: "engine", Iterations: 10, NsPerOp: 1000, Width: 4},
		{Instance: "grid2d_10", Mode: "sliceapi", Iterations: 10, NsPerOp: 1000, Width: 5},
	}}
	if err := CheckBenchJSON(write("badwidth.json", badWidth)); err == nil {
		t.Fatal("evaluator width mismatch accepted")
	}
}
