package bench

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"hypertree/internal/bounds"
	"hypertree/internal/ga"
	"hypertree/internal/hypergraph"
	"hypertree/internal/obs"
	"hypertree/internal/search"
)

// Scale selects how much work the runners spend. The thesis ran one-hour
// wall-clock budgets per instance on 2006 hardware; the scaled-down presets
// use machine-independent node/evaluation budgets so CI runs are
// reproducible, and the shapes (who wins, what closes) are preserved.
type Scale struct {
	Name string
	// SearchNodes bounds BB/A* expansions per instance.
	SearchNodes int64
	// SearchTimeout optionally bounds wall clock per instance.
	SearchTimeout time.Duration
	// GAPop / GAIters / GARuns size the genetic algorithms.
	GAPop, GAIters, GARuns int
	// Heavy includes the large instances.
	Heavy bool
	// Ctx optionally cancels in-flight runs (SIGINT in cmd/experiments):
	// each per-instance run then returns its anytime result, and the table
	// drivers stop between instances.
	Ctx context.Context
	// Recorder, when non-nil, receives every table run's instrumentation
	// events (cmd/experiments points it at the /metrics event counters). It
	// must be safe for concurrent use.
	Recorder obs.Recorder
	// Workers > 1 runs the per-instance rows of the instance-outer tables
	// (5.1, 5.2, 6.6, 7.x, 8.x, 9.x) on that many goroutines. Each instance
	// keeps its own seed and its own budget, and rows are emitted in the
	// serial order, so the table values are identical to a serial run — only
	// the per-row wall-clock "time" column can shift under CPU contention.
	// The GA tuning sweeps (6.1–6.5) stay serial: their inner config loops
	// share one instance and their row counts dominate, not their row costs.
	Workers int
}

// runIndexed runs fn(0), …, fn(n-1), on min(s.Workers, n) goroutines when
// the scale asks for parallelism. Callers precompute row cells into an
// index-addressed slice inside fn and append them to the table afterwards,
// keeping output deterministic. A panic in any fn (a runner panics on
// unknown instance names, and contained algorithm panics rethrow through
// budget.Guard) is rethrown on the caller once the other workers drain.
func (s Scale) runIndexed(n int, fn func(i int)) {
	w := s.Workers
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		next       atomic.Int64
		mu         sync.Mutex
		firstPanic any
		wg         sync.WaitGroup
	)
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					mu.Lock()
					if firstPanic == nil {
						firstPanic = r
					}
					mu.Unlock()
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	if firstPanic != nil {
		panic(firstPanic)
	}
}

// Smoke is the tiny preset used by the go test benchmarks.
func Smoke() Scale {
	return Scale{Name: "smoke", SearchNodes: 2000, GAPop: 30, GAIters: 25, GARuns: 2}
}

// Small finishes a full table in roughly a minute.
func Small() Scale {
	return Scale{Name: "small", SearchNodes: 50000, GAPop: 100, GAIters: 150, GARuns: 3}
}

// Full approximates the thesis protocol (hours).
func Full() Scale {
	return Scale{Name: "full", SearchNodes: 0, SearchTimeout: time.Hour,
		GAPop: 2000, GAIters: 2000, GARuns: 10, Heavy: true}
}

// ParseScale resolves a preset by name.
func ParseScale(s string) (Scale, error) {
	switch s {
	case "smoke":
		return Smoke(), nil
	case "small":
		return Small(), nil
	case "full":
		return Full(), nil
	}
	return Scale{}, fmt.Errorf("bench: unknown scale %q (smoke|small|full)", s)
}

func (s Scale) searchOpts(seed int64) search.Options {
	return search.Options{MaxNodes: s.SearchNodes, Timeout: s.SearchTimeout, Seed: seed, Ctx: s.Ctx,
		Recorder: s.Recorder}
}

func (s Scale) gaConfig(seed int64) ga.Config {
	return ga.Config{
		PopulationSize: s.GAPop,
		CrossoverRate:  1.0,
		MutationRate:   0.3,
		TournamentSize: 3,
		MaxIterations:  s.GAIters,
		Crossover:      ga.POS,
		Mutation:       ga.ISM,
		Seed:           seed,
		Ctx:            s.Ctx,
		Recorder:       s.Recorder,
	}
}

// table51Graphs lists the Table 5.1 instance subset per scale.
func table51Graphs(s Scale) []string {
	small := []string{"anna", "david", "huck", "jean", "queen5_5", "queen6_6",
		"myciel3", "myciel4", "miles250", "miles500", "zeroin.i.2", "zeroin.i.3"}
	if !s.Heavy {
		return small
	}
	return append(small, "queen7_7", "myciel5", "fpsol2.i.1", "inithx.i.2",
		"mulsol.i.1", "miles750", "miles1000", "miles1500", "DSJC125.1",
		"DSJC125.5", "DSJC125.9", "le450_5a", "le450_15a", "le450_25a",
		"zeroin.i.1")
}

// RunTable51 reproduces Table 5.1: A*-tw on the DIMACS coloring graphs,
// reporting the root bounds, the A* outcome and the thesis's values.
func RunTable51(s Scale) *Table {
	t := &Table{
		Title:  "Table 5.1 — A*-tw on DIMACS graph coloring instances (scale: " + s.Name + ")",
		Note:   "thesis columns from the 1h/2006-hardware runs; '*' marks substituted instances",
		Header: []string{"graph", "V", "E", "lb", "ub", "A*-tw", "nodes", "time", "thesisA*"},
	}
	names := table51Graphs(s)
	rows := make([][]interface{}, len(names))
	s.runIndexed(len(names), func(i int) {
		name := names[i]
		inst, err := Graph(name)
		if err != nil {
			panic(err)
		}
		g := inst.Build()
		rng := rand.New(rand.NewSource(1))
		lb := bounds.TreewidthLowerBound(g, rng)
		ub := bounds.MinFillUpperBound(g, rng)
		r := search.AStarTreewidth(g, s.searchOpts(1))
		label := name
		if inst.Substituted {
			label += "*"
		}
		rows[i] = []interface{}{label, g.N(), g.M(), lb, ub,
			exactMark(r.Width, r.Exact, r.LowerBound), r.Nodes,
			r.Elapsed.Round(time.Millisecond), orNA(inst.ThesisAStar)}
	})
	for _, row := range rows {
		t.Add(row...)
	}
	return t
}

// RunTable52 reproduces Table 5.2: A*-tw on grid graphs (tw(n×n) = n).
func RunTable52(s Scale) *Table {
	t := &Table{
		Title:  "Table 5.2 — A*-tw on grid graphs (scale: " + s.Name + ")",
		Header: []string{"graph", "V", "E", "lb", "ub", "A*-tw", "nodes", "time", "true tw"},
	}
	max := 6
	if s.Heavy {
		max = 8
	}
	rows := make([][]interface{}, max-1)
	s.runIndexed(max-1, func(i int) {
		n := i + 2
		g := hypergraph.Grid(n)
		rng := rand.New(rand.NewSource(1))
		lb := bounds.TreewidthLowerBound(g, rng)
		ub := bounds.MinFillUpperBound(g, rng)
		r := search.AStarTreewidth(g, s.searchOpts(1))
		rows[i] = []interface{}{fmt.Sprintf("grid%d", n), g.N(), g.M(), lb, ub,
			exactMark(r.Width, r.Exact, r.LowerBound), r.Nodes,
			r.Elapsed.Round(time.Millisecond), n}
	})
	for _, row := range rows {
		t.Add(row...)
	}
	return t
}

// gaTuningGraphs is the instance subset of the GA tuning tables (6.1–6.5).
func gaTuningGraphs(s Scale) []string {
	if s.Heavy {
		return []string{"games120", "homer", "inithx.i.3", "le450_25a", "myciel7", "queen16_16", "zeroin.i.3"}
	}
	return []string{"queen6_6", "myciel4", "zeroin.i.3"}
}

// gaStats runs GA-tw `runs` times with the given config template and
// returns (avg, min, max) best widths.
func gaStats(g *hypergraph.Graph, cfg ga.Config, runs int) (float64, int, int) {
	sum, min, max := 0, 1<<30, -1
	for r := 0; r < runs; r++ {
		c := cfg
		c.Seed = cfg.Seed + int64(r)
		res := ga.Treewidth(g, c)
		sum += res.BestWidth
		if res.BestWidth < min {
			min = res.BestWidth
		}
		if res.BestWidth > max {
			max = res.BestWidth
		}
	}
	return float64(sum) / float64(runs), min, max
}

// RunTable61 reproduces Table 6.1: crossover-operator comparison for GA-tw
// (pc = 100%, pm = 0%).
func RunTable61(s Scale) *Table {
	t := &Table{
		Title:  "Table 6.1 — GA-tw crossover operators (pc=1.0, pm=0; scale: " + s.Name + ")",
		Header: []string{"instance", "crossover", "avg", "min", "max"},
	}
	for _, name := range gaTuningGraphs(s) {
		inst, _ := Graph(name)
		g := inst.Build()
		for _, op := range ga.CrossoverOps {
			cfg := s.gaConfig(1)
			cfg.CrossoverRate = 1.0
			cfg.MutationRate = 0
			cfg.TournamentSize = 2
			cfg.Crossover = op
			avg, min, max := gaStats(g, cfg, s.GARuns)
			t.Add(name, op.String(), avg, min, max)
		}
	}
	return t
}

// RunTable62 reproduces Table 6.2: mutation-operator comparison for GA-tw
// (pc = 0%, pm = 100%).
func RunTable62(s Scale) *Table {
	t := &Table{
		Title:  "Table 6.2 — GA-tw mutation operators (pc=0, pm=1.0; scale: " + s.Name + ")",
		Header: []string{"instance", "mutation", "avg", "min", "max"},
	}
	for _, name := range gaTuningGraphs(s) {
		inst, _ := Graph(name)
		g := inst.Build()
		for _, op := range ga.MutationOps {
			cfg := s.gaConfig(1)
			cfg.CrossoverRate = 0
			cfg.MutationRate = 1.0
			cfg.TournamentSize = 2
			cfg.Mutation = op
			avg, min, max := gaStats(g, cfg, s.GARuns)
			t.Add(name, op.String(), avg, min, max)
		}
	}
	return t
}

// RunTable63 reproduces Table 6.3: the pm × pc rate sweep (POS + ISM).
func RunTable63(s Scale) *Table {
	t := &Table{
		Title:  "Table 6.3 — GA-tw mutation/crossover rates (POS+ISM; scale: " + s.Name + ")",
		Header: []string{"instance", "pc", "pm", "avg", "min", "max"},
	}
	for _, name := range gaTuningGraphs(s) {
		inst, _ := Graph(name)
		g := inst.Build()
		for _, pc := range []float64{0.8, 0.9, 1.0} {
			for _, pm := range []float64{0.01, 0.1, 0.3} {
				cfg := s.gaConfig(1)
				cfg.CrossoverRate = pc
				cfg.MutationRate = pm
				cfg.TournamentSize = 2
				avg, min, max := gaStats(g, cfg, s.GARuns)
				t.Add(name, pc, pm, avg, min, max)
			}
		}
	}
	return t
}

// RunTable64 reproduces Table 6.4: population sizes.
func RunTable64(s Scale) *Table {
	t := &Table{
		Title:  "Table 6.4 — GA-tw population sizes (scale: " + s.Name + ")",
		Header: []string{"instance", "n", "avg", "min", "max"},
	}
	sizes := []int{s.GAPop / 2, s.GAPop, s.GAPop * 2}
	if s.Heavy {
		sizes = []int{100, 200, 1000, 2000}
	}
	for _, name := range gaTuningGraphs(s) {
		inst, _ := Graph(name)
		g := inst.Build()
		for _, n := range sizes {
			if n < 2 {
				continue
			}
			cfg := s.gaConfig(1)
			cfg.PopulationSize = n
			cfg.TournamentSize = 2
			avg, min, max := gaStats(g, cfg, s.GARuns)
			t.Add(name, n, avg, min, max)
		}
	}
	return t
}

// RunTable65 reproduces Table 6.5: tournament group sizes.
func RunTable65(s Scale) *Table {
	t := &Table{
		Title:  "Table 6.5 — GA-tw tournament group sizes (scale: " + s.Name + ")",
		Header: []string{"instance", "s", "avg", "min", "max"},
	}
	for _, name := range gaTuningGraphs(s) {
		inst, _ := Graph(name)
		g := inst.Build()
		for _, size := range []int{2, 3, 4} {
			cfg := s.gaConfig(1)
			cfg.TournamentSize = size
			avg, min, max := gaStats(g, cfg, s.GARuns)
			t.Add(name, size, avg, min, max)
		}
	}
	return t
}

// table66Graphs lists the Table 6.6 subset per scale.
func table66Graphs(s Scale) []string {
	small := []string{"anna", "david", "huck", "jean", "queen5_5", "queen6_6",
		"queen7_7", "myciel3", "myciel4", "myciel5", "miles250", "zeroin.i.3"}
	if !s.Heavy {
		return small
	}
	return append(small, "homer", "games120", "queen8_8", "queen10_10",
		"queen12_12", "queen16_16", "fpsol2.i.1", "inithx.i.3", "mulsol.i.1",
		"miles500", "miles750", "miles1000", "miles1500", "myciel6", "myciel7",
		"school1", "zeroin.i.1", "zeroin.i.2", "le450_5a", "le450_15a",
		"le450_25a", "DSJC125.1", "DSJC125.5", "DSJC125.9", "DSJC250.1",
		"DSJC250.5", "DSJC250.9")
}

// RunTable66 reproduces Table 6.6: final GA-tw results with the tuned
// parameters, against the best previously known upper bounds.
func RunTable66(s Scale) *Table {
	t := &Table{
		Title:  "Table 6.6 — GA-tw final results (POS+ISM, pc=1.0, pm=0.3, s=3; scale: " + s.Name + ")",
		Note:   "thesisGA = best width of the thesis's 10×2000-iteration runs",
		Header: []string{"graph", "V", "E", "min", "max", "avg", "thesisGA"},
	}
	names := table66Graphs(s)
	rows := make([][]interface{}, len(names))
	s.runIndexed(len(names), func(i int) {
		name := names[i]
		inst, err := Graph(name)
		if err != nil {
			panic(err)
		}
		g := inst.Build()
		cfg := s.gaConfig(7)
		avg, min, max := gaStats(g, cfg, s.GARuns)
		label := name
		if inst.Substituted {
			label += "*"
		}
		rows[i] = []interface{}{label, g.N(), g.M(), min, max, avg, orNA(inst.ThesisGAUB)}
	})
	for _, row := range rows {
		t.Add(row...)
	}
	return t
}

// tableHyperInstances lists the hypergraph subset per scale (Tables 7.x-9.x).
func tableHyperInstances(s Scale) []string {
	small := []string{"adder_15", "bridge_15", "clique_10", "grid2d_10", "grid3d_4", "b06"}
	if !s.Heavy {
		return small
	}
	return append(small, "adder_75", "adder_99", "bridge_50", "clique_20",
		"grid2d_20", "grid3d_8", "grid4d_4", "b08", "b09", "b10", "c499", "c880")
}

// RunTable71 reproduces Table 7.1: GA-ghw on the CSP hypergraph library.
func RunTable71(s Scale) *Table {
	t := &Table{
		Title:  "Table 7.1 — GA-ghw results (scale: " + s.Name + ")",
		Note:   "thesisUB = best previously published ghw upper bound; thesisGA = thesis GA-ghw best",
		Header: []string{"hypergraph", "V", "H", "min", "max", "avg", "thesisUB", "thesisGA"},
	}
	names := tableHyperInstances(s)
	rows := make([][]interface{}, len(names))
	s.runIndexed(len(names), func(i int) {
		name := names[i]
		inst, err := Hyper(name)
		if err != nil {
			panic(err)
		}
		h := inst.Build()
		sum, min, max := 0, 1<<30, -1
		for r := 0; r < s.GARuns; r++ {
			cfg := s.gaConfig(int64(10 + r))
			res := ga.GHW(h, cfg)
			sum += res.BestWidth
			if res.BestWidth < min {
				min = res.BestWidth
			}
			if res.BestWidth > max {
				max = res.BestWidth
			}
		}
		label := name
		if inst.Substituted {
			label += "*"
		}
		rows[i] = []interface{}{label, h.N(), h.M(), min, max,
			float64(sum) / float64(s.GARuns), orNA(inst.ThesisUB), orNA(inst.ThesisGA)}
	})
	for _, row := range rows {
		t.Add(row...)
	}
	return t
}

// RunTable72 reproduces Table 7.2: SAIGA-ghw on the same instances.
func RunTable72(s Scale) *Table {
	t := &Table{
		Title:  "Table 7.2 — SAIGA-ghw results (scale: " + s.Name + ")",
		Note:   "the thesis's per-instance values for this table are not in the supplied text; see EXPERIMENTS.md",
		Header: []string{"hypergraph", "V", "H", "min", "max", "avg", "thesisUB"},
	}
	names := tableHyperInstances(s)
	rows := make([][]interface{}, len(names))
	s.runIndexed(len(names), func(i int) {
		name := names[i]
		inst, err := Hyper(name)
		if err != nil {
			panic(err)
		}
		h := inst.Build()
		sum, min, max := 0, 1<<30, -1
		for r := 0; r < s.GARuns; r++ {
			cfg := ga.SAIGAConfig{
				Islands:        4,
				IslandPop:      maxInt(10, s.GAPop/4),
				TournamentSize: 3,
				Epochs:         maxInt(2, s.GAIters/10),
				EpochLength:    10,
				Seed:           int64(20 + r),
				Ctx:            s.Ctx,
				Recorder:       s.Recorder,
			}
			res := ga.SAIGAGHW(h, cfg)
			sum += res.BestWidth
			if res.BestWidth < min {
				min = res.BestWidth
			}
			if res.BestWidth > max {
				max = res.BestWidth
			}
		}
		label := name
		if inst.Substituted {
			label += "*"
		}
		rows[i] = []interface{}{label, h.N(), h.M(), min, max,
			float64(sum) / float64(s.GARuns), orNA(inst.ThesisUB)}
	})
	for _, row := range rows {
		t.Add(row...)
	}
	return t
}

// RunTable81 reproduces Tables 8.1/8.2: BB-ghw with the tw-ksc-width lower
// bound, reductions and pruning rules.
func RunTable81(s Scale) *Table {
	t := &Table{
		Title:  "Table 8.1/8.2 — BB-ghw results (scale: " + s.Name + ")",
		Note:   "result prints the exact ghw when closed, else 'lb..ub*'",
		Header: []string{"hypergraph", "V", "H", "lb", "ub", "BB-ghw", "nodes", "time", "thesisUB"},
	}
	names := tableHyperInstances(s)
	rows := make([][]interface{}, len(names))
	s.runIndexed(len(names), func(i int) {
		name := names[i]
		inst, err := Hyper(name)
		if err != nil {
			panic(err)
		}
		h := inst.Build()
		rng := rand.New(rand.NewSource(1))
		lb := bounds.TwKscWidth(h, rng)
		ub := bounds.GreedyGHWUpperBound(h, rng)
		r := search.BBGHW(h, s.searchOpts(1))
		label := name
		if inst.Substituted {
			label += "*"
		}
		rows[i] = []interface{}{label, h.N(), h.M(), lb, ub,
			exactMark(r.Width, r.Exact, r.LowerBound), r.Nodes,
			r.Elapsed.Round(time.Millisecond), orNA(inst.ThesisUB)}
	})
	for _, row := range rows {
		t.Add(row...)
	}
	return t
}

// RunTable91 reproduces Tables 9.1/9.2: A*-ghw, which additionally proves
// anytime lower bounds when the budget runs out.
func RunTable91(s Scale) *Table {
	t := &Table{
		Title:  "Table 9.1/9.2 — A*-ghw results (scale: " + s.Name + ")",
		Note:   "result prints the exact ghw when closed, else 'lb..ub*' with the proved lower bound",
		Header: []string{"hypergraph", "V", "H", "lb", "ub", "A*-ghw", "nodes", "time", "thesisUB"},
	}
	names := tableHyperInstances(s)
	rows := make([][]interface{}, len(names))
	s.runIndexed(len(names), func(i int) {
		name := names[i]
		inst, err := Hyper(name)
		if err != nil {
			panic(err)
		}
		h := inst.Build()
		rng := rand.New(rand.NewSource(1))
		lb := bounds.TwKscWidth(h, rng)
		ub := bounds.GreedyGHWUpperBound(h, rng)
		r := search.AStarGHW(h, s.searchOpts(1))
		label := name
		if inst.Substituted {
			label += "*"
		}
		rows[i] = []interface{}{label, h.N(), h.M(), lb, ub,
			exactMark(r.Width, r.Exact, r.LowerBound), r.Nodes,
			r.Elapsed.Round(time.Millisecond), orNA(inst.ThesisUB)}
	})
	for _, row := range rows {
		t.Add(row...)
	}
	return t
}

// Tables maps table ids to runners, for cmd/experiments and the root
// benchmarks.
var Tables = map[string]func(Scale) *Table{
	"ablation": RunAblation,
	"5.1":      RunTable51,
	"5.2":      RunTable52,
	"6.1":      RunTable61,
	"6.2":      RunTable62,
	"6.3":      RunTable63,
	"6.4":      RunTable64,
	"6.5":      RunTable65,
	"6.6":      RunTable66,
	"7.1":      RunTable71,
	"7.2":      RunTable72,
	"8.1":      RunTable81,
	"8.2":      RunTable81, // 8.2 continues 8.1 over the same protocol
	"9.1":      RunTable91,
	"9.2":      RunTable91, // 9.2 continues 9.1 over the same protocol
}

// TableIDs returns the runnable table ids in order. "ablation" is this
// repository's own study of the pruning machinery (not a thesis table).
func TableIDs() []string {
	return []string{"5.1", "5.2", "6.1", "6.2", "6.3", "6.4", "6.5", "6.6",
		"7.1", "7.2", "8.1", "8.2", "9.1", "9.2", "ablation"}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
