package bench

import (
	"fmt"
	"testing"
	"time"
)

func TestTimingTables(t *testing.T) {
	for _, id := range []string{"8.1", "9.1"} {
		start := time.Now()
		Tables[id](Smoke())
		fmt.Printf("table %s: %v\n", id, time.Since(start).Round(time.Millisecond))
	}
}
