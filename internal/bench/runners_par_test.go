package bench

import (
	"errors"
	"testing"
)

// TestRunIndexedCoversAllAndRethrows: every index runs exactly once at any
// worker count, and a panic inside fn resurfaces on the caller.
func TestRunIndexedCoversAllAndRethrows(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 8, 100} {
		s := Scale{Workers: workers}
		hits := make([]int, 37)
		s.runIndexed(len(hits), func(i int) { hits[i]++ })
		for i, n := range hits {
			if n != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, n)
			}
		}
	}
	boom := errors.New("boom")
	defer func() {
		if r := recover(); r != boom {
			t.Fatalf("recovered %v, want the injected panic", r)
		}
	}()
	Scale{Workers: 4}.runIndexed(8, func(i int) {
		if i == 3 {
			panic(boom)
		}
	})
	t.Fatal("unreachable: panic must propagate")
}

// TestParallelTableRowsMatchSerial: a table run with Scale.Workers > 1 must
// produce the same rows in the same order as the serial run — per-instance
// seeds and budgets are independent, only wall clock may differ. The
// duration columns are excluded from the comparison.
func TestParallelTableRowsMatchSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two smoke tables")
	}
	for name, runner := range map[string]func(Scale) *Table{
		"8.1": RunTable81, "7.1": RunTable71,
	} {
		serial := Smoke()
		par := Smoke()
		par.Workers = 4
		ts, tp := runner(serial), runner(par)
		if len(ts.Rows) != len(tp.Rows) {
			t.Fatalf("table %s: %d serial rows, %d parallel rows", name, len(ts.Rows), len(tp.Rows))
		}
		timeCol := -1
		for i, h := range ts.Header {
			if h == "time" {
				timeCol = i
			}
		}
		for r := range ts.Rows {
			for c := range ts.Rows[r] {
				if c == timeCol {
					continue
				}
				if ts.Rows[r][c] != tp.Rows[r][c] {
					t.Errorf("table %s row %d col %s: serial %q != parallel %q",
						name, r, ts.Header[c], ts.Rows[r][c], tp.Rows[r][c])
				}
			}
		}
	}
}
