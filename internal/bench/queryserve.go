// The query-serving benchmark: the compiled join-tree engine's
// decompose-once-serve-many contract, measured. Each instance's constraint
// hypergraph becomes a binary-domain CSP (one sparse constraint per
// hyperedge), decomposed once with the greedy solver; then the modes compare
// answering parameterized queries from a compiled engine.Plan against the
// per-query reference path that re-runs the full Yannakakis pass, and record
// served-latency percentiles at 1k/10k/100k-query scale.
package bench

import (
	"fmt"
	"runtime"
	"sort"
	"testing"
	"time"

	"hypertree/internal/core"
	"hypertree/internal/csp"
	"hypertree/internal/csp/engine"
	"hypertree/internal/decomp"
	"hypertree/internal/hypergraph"
)

// QueryBenchInstances are the instances the query-serving modes run on: the
// thesis's 10x10 grid (moderate width, many bags) and an adder circuit
// (small width, long join path).
var QueryBenchInstances = []string{"grid2d_10", "adder_25"}

// queryLatScales are the batch sizes of the latency-percentile modes.
var queryLatScales = []struct {
	name string
	n    int
}{
	{"query-lat-1k", 1_000},
	{"query-lat-10k", 10_000},
	{"query-lat-100k", 100_000},
}

// queryBenchSetup is one instance's prepared serving state: the CSP, the
// decomposition (paid once, outside every measured op except query-compile)
// and the compiled plan.
type queryBenchSetup struct {
	c    *csp.CSP
	td   *decomp.TreeDecomposition
	plan *engine.Plan
}

// newQueryBenchSetup builds the CSP for a registry instance and decomposes
// it once with the greedy solver (deterministic for the fixed seed).
func newQueryBenchSetup(name string) (*queryBenchSetup, error) {
	inst, err := Hyper(name)
	if err != nil {
		return nil, err
	}
	h := inst.Build()
	c := cspFromHypergraph(h)
	d, err := core.Decompose(h, core.Options{Algorithm: core.AlgGreedy, Seed: 1})
	if err != nil {
		return nil, fmt.Errorf("bench: decomposing %s: %w", name, err)
	}
	plan, err := engine.Compile(c, d.TD)
	if err != nil {
		return nil, fmt.Errorf("bench: compiling %s: %w", name, err)
	}
	return &queryBenchSetup{c: c, td: d.TD, plan: plan}, nil
}

// cspFromHypergraph turns a hypergraph into a binary-domain CSP: one
// constraint per hyperedge allowing the assignments with at most one 1 in
// the scope (sparse relations with non-trivial joins; always satisfiable by
// all-zeros).
func cspFromHypergraph(h *hypergraph.Hypergraph) *csp.CSP {
	c := &csp.CSP{NumVars: h.N(), Domains: make([][]csp.Value, h.N())}
	for v := range c.Domains {
		c.Domains[v] = []csp.Value{0, 1}
	}
	for ei := 0; ei < h.M(); ei++ {
		scope := h.Edge(ei)
		tuples := make([][]csp.Value, 0, len(scope)+1)
		tuples = append(tuples, make([]csp.Value, len(scope))) // all zero
		for hot := range scope {
			t := make([]csp.Value, len(scope))
			t[hot] = 1
			tuples = append(tuples, t)
		}
		c.AddConstraint(scope, tuples)
	}
	return c
}

// queryPin is the i-th query of the canonical workload: pin one variable,
// cycling through variables and values so probes hit varied index buckets.
func (s *queryBenchSetup) queryPin(i int) []engine.Pin {
	return []engine.Pin{{Var: i % s.c.NumVars, Val: csp.Value(i % 2)}}
}

// refSolve answers one pinned query the pre-engine way: restrict the pinned
// variable's domain on a shallow CSP copy and run the full SolveFromTD pass
// (bag materialization + Yannakakis) from scratch.
func (s *queryBenchSetup) refSolve(pins []engine.Pin) []csp.Value {
	r := &csp.CSP{
		NumVars:     s.c.NumVars,
		Domains:     append([][]csp.Value(nil), s.c.Domains...),
		Constraints: s.c.Constraints,
		VarNames:    s.c.VarNames,
	}
	for _, p := range pins {
		r.Domains[p.Var] = []csp.Value{p.Val}
	}
	return csp.SolveFromTD(r, s.td)
}

// runQueryBench appends the query-serving modes for all QueryBenchInstances
// to the report.
func runQueryBench(report *BenchReport, logf func(format string, args ...interface{})) error {
	for _, name := range QueryBenchInstances {
		s, err := newQueryBenchSetup(name)
		if err != nil {
			return err
		}
		width := s.plan.Stats().Width

		// query-compile: the one-time cost the plan cache amortizes — bag
		// materialization, full reduction, index build (decomposition held
		// fixed).
		rc := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := engine.Compile(s.c, s.td); err != nil {
					b.Fatal(err)
				}
			}
		})
		addQueryEntry(report, logf, name, "query-compile", rc, width, 0)

		// query-ref: one pinned query via per-query SolveFromTD — the
		// baseline the compiled plan must beat by >= 10x.
		rr := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s.refSolve(s.queryPin(i))
			}
		})
		addQueryEntry(report, logf, name, "query-ref", rr, width, 0)

		// query-serial: one pinned query on the compiled plan, one cursor.
		cu := s.plan.NewCursor()
		rs := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cu.Solve(s.queryPin(i))
			}
		})
		addQueryEntry(report, logf, name, "query-serial", rs, width, 0)

		// query-par: the same workload under b.RunParallel, one cursor per
		// goroutine on the shared immutable plan — the zero-synchronization
		// serving claim, measured.
		gomaxprocs := runtime.GOMAXPROCS(0)
		par := 1
		if gomaxprocs < parBenchWorkers {
			// SetParallelism multiplies GOMAXPROCS; keep at least the
			// fixed worker count of the other -par modes on small machines.
			par = (parBenchWorkers + gomaxprocs - 1) / gomaxprocs
		}
		rp := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			b.SetParallelism(par)
			b.RunParallel(func(pb *testing.PB) {
				cu := s.plan.NewCursor()
				i := 0
				for pb.Next() {
					cu.Solve(s.queryPin(i))
					i++
				}
			})
		})
		addQueryEntry(report, logf, name, "query-par", rp, width, par*gomaxprocs)

		// Latency percentiles at increasing query scale: every query timed
		// individually on one cursor, the percentile rows the serving
		// benchmark reports.
		for _, scale := range queryLatScales {
			entry := measureQueryLatency(s, scale.n)
			entry.Instance, entry.Mode, entry.Width = name, scale.name, width
			report.Entries = append(report.Entries, entry)
			logf("BenchmarkQueryServe/%s/%s\t%d queries\t%.0f ns/op\tP50 %.0f\tP95 %.0f\tP99 %.0f\t%.0f qps\n",
				name, scale.name, entry.Iterations, entry.NsPerOp, entry.P50NS, entry.P95NS, entry.P99NS, entry.QPS)
		}
	}
	return nil
}

// addQueryEntry folds one testing.Benchmark result into the report.
func addQueryEntry(report *BenchReport, logf func(string, ...interface{}), instance, mode string, r testing.BenchmarkResult, width, workers int) {
	report.Entries = append(report.Entries, BenchEntry{
		Instance:    instance,
		Mode:        mode,
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		Width:       width,
		Workers:     workers,
	})
	logf("BenchmarkQueryServe/%s/%s\t%s\n", instance, mode, r.String()+"\t"+r.MemString())
}

// RunQueryDemo is the `experiments -query-demo` walkthrough: decompose one
// registry instance, compile the plan, and serve a short query workload,
// printing the compile-once/serve-many economics in human-readable form.
func RunQueryDemo(instance string, logf func(format string, args ...interface{})) error {
	t0 := time.Now()
	s, err := newQueryBenchSetup(instance)
	if err != nil {
		return err
	}
	setup := time.Since(t0)
	st := s.plan.Stats()
	logf("query demo: %s -> CSP with %d vars, %d constraints\n", instance, s.c.NumVars, len(s.c.Constraints))
	logf("decompose (greedy) + compile: %v; plan: %d nodes, %d rows (max bag %d), width %d, satisfiable=%v\n",
		setup.Round(time.Microsecond), st.Nodes, st.Rows, st.MaxBagRows, st.Width, st.Satisfiable)

	const n = 10_000
	e := measureQueryLatency(s, n)
	logf("served %d pinned solve queries from one cursor: %.0f ns/query mean, P50 %.0f ns, P95 %.0f ns, P99 %.0f ns, %.0f queries/s\n",
		n, e.NsPerOp, e.P50NS, e.P95NS, e.P99NS, e.QPS)

	t1 := time.Now()
	const refN = 5
	for i := 0; i < refN; i++ {
		s.refSolve(s.queryPin(i))
	}
	refPer := time.Since(t1) / refN
	logf("per-query SolveFromTD reference: %v/query -> compiled plan is %.0fx faster\n",
		refPer.Round(time.Microsecond), float64(refPer.Nanoseconds())/e.NsPerOp)
	return nil
}

// measureQueryLatency serves n pinned queries sequentially from one cursor,
// timing each, and reports mean ns/op plus P50/P95/P99 and queries/second.
func measureQueryLatency(s *queryBenchSetup, n int) BenchEntry {
	cu := s.plan.NewCursor()
	lat := make([]time.Duration, n)
	start := time.Now()
	for i := 0; i < n; i++ {
		t0 := time.Now()
		cu.Solve(s.queryPin(i))
		lat[i] = time.Since(t0)
	}
	wall := time.Since(start)
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	pct := func(p float64) float64 {
		idx := int(p * float64(n-1))
		return float64(lat[idx].Nanoseconds())
	}
	return BenchEntry{
		Iterations: n,
		NsPerOp:    float64(wall.Nanoseconds()) / float64(n),
		P50NS:      pct(0.50),
		P95NS:      pct(0.95),
		P99NS:      pct(0.99),
		QPS:        float64(n) / wall.Seconds(),
	}
}
