package bench

import (
	"strings"
	"testing"
	"time"
)

func TestRegistrySizesMatchPublished(t *testing.T) {
	for _, name := range GraphNames() {
		inst, err := Graph(name)
		if err != nil {
			t.Fatal(err)
		}
		g := inst.Build()
		if inst.V > 0 && g.N() != inst.V {
			t.Errorf("%s: built %d vertices, registry says %d", name, g.N(), inst.V)
		}
		if inst.E > 0 && !inst.Substituted && g.M() != inst.E {
			t.Errorf("%s: built %d edges, registry says %d", name, g.M(), inst.E)
		}
		// Substituted instances must match exactly, except the statistical
		// geometric (miles) and interval (register-allocation) families,
		// which are bisected to the closest achievable count: allow 5%.
		if inst.Substituted && inst.E > 0 {
			statistical := strings.HasPrefix(name, "miles") ||
				strings.Contains(name, ".i.") // fpsol2/inithx/mulsol/zeroin
			if statistical {
				if diff := g.M() - inst.E; diff < -inst.E/20 || diff > inst.E/20 {
					t.Errorf("%s: edge count %d too far from %d", name, g.M(), inst.E)
				}
			} else if g.M() != inst.E {
				t.Errorf("%s (substituted): built %d edges, want %d", name, g.M(), inst.E)
			}
		}
	}
	for _, name := range HyperNames() {
		inst, err := Hyper(name)
		if err != nil {
			t.Fatal(err)
		}
		h := inst.Build()
		if h.N() != inst.V || h.M() != inst.E {
			t.Errorf("%s: built (%d,%d), registry says (%d,%d)", name, h.N(), h.M(), inst.V, inst.E)
		}
		if !h.CoversAllVertices() {
			t.Errorf("%s: leaves vertices uncovered (ghw undefined)", name)
		}
	}
}

func TestUnknownInstances(t *testing.T) {
	if _, err := Graph("nope"); err == nil {
		t.Fatal("expected error")
	}
	if _, err := Hyper("nope"); err == nil {
		t.Fatal("expected error")
	}
}

func TestParseScale(t *testing.T) {
	for _, s := range []string{"smoke", "small", "full"} {
		if _, err := ParseScale(s); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ParseScale("x"); err == nil {
		t.Fatal("expected error")
	}
}

func TestTableFormat(t *testing.T) {
	tb := &Table{Title: "T", Header: []string{"a", "bb"}}
	tb.Add("x", 1)
	tb.Add("yyy", 2.5)
	out := tb.Format()
	if !strings.Contains(out, "T\n") || !strings.Contains(out, "yyy") || !strings.Contains(out, "2.5") {
		t.Fatalf("format output:\n%s", out)
	}
}

func TestExactMark(t *testing.T) {
	if exactMark(5, true, 5) != "5" {
		t.Fatal("exact mark wrong")
	}
	if exactMark(7, false, 4) != "4..7*" {
		t.Fatal("anytime mark wrong")
	}
	if orNA(-1) != "-" || orNA(3) != "3" {
		t.Fatal("orNA wrong")
	}
}

// Smoke-run every table at the smallest scale; this is the integration test
// that every experiment in EXPERIMENTS.md is runnable end to end.
func TestAllTablesSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("table smoke runs skipped in -short")
	}
	ids := TableIDs()
	if raceDetectorEnabled {
		// The full sweep is an order of magnitude slower under the race
		// detector and blows go test's default 10m package timeout. Only
		// SAIGA (7.2) runs concurrent code, so keep it plus one
		// representative per sequential algorithm family; the plain build
		// still sweeps every table.
		ids = []string{"5.2", "6.1", "7.2", "8.1", "9.1"}
	}
	seen := map[string]bool{}
	for _, id := range ids {
		runner, ok := Tables[id]
		if !ok {
			t.Fatalf("table %s has no runner", id)
		}
		if seen[id] {
			continue
		}
		seen[id] = true
		start := time.Now()
		tb := runner(Smoke())
		t.Logf("table %s: %v", id, time.Since(start).Round(time.Millisecond))
		if len(tb.Rows) == 0 {
			t.Errorf("table %s produced no rows", id)
		}
		if len(tb.Header) == 0 {
			t.Errorf("table %s has no header", id)
		}
		for _, row := range tb.Rows {
			if len(row) != len(tb.Header) {
				t.Errorf("table %s: row width %d != header %d", id, len(row), len(tb.Header))
			}
		}
	}
}
