package bench

import (
	"reflect"
	"testing"
)

// TestQueryBenchSetupAgreesWithReference pins the query benchmark's two
// measured paths to each other on a real registry instance: the compiled
// plan and the per-query SolveFromTD reference must return identical
// assignments for the canonical workload (both sides are deterministic, so
// exact equality — the same guarantee the engine's own differential tests
// establish on random CSPs, here on the benchmark's instances).
func TestQueryBenchSetupAgreesWithReference(t *testing.T) {
	s, err := newQueryBenchSetup("adder_25")
	if err != nil {
		t.Fatal(err)
	}
	cu := s.plan.NewCursor()
	for i := 0; i < 64; i++ {
		pins := s.queryPin(i)
		want := s.refSolve(pins)
		got, ok := cu.Solve(pins)
		if ok != (want != nil) {
			t.Fatalf("query %d: sat = %v, reference %v", i, ok, want != nil)
		}
		if ok && !reflect.DeepEqual(append([]int(nil), got...), want) {
			t.Fatalf("query %d: plan %v != reference %v", i, got, want)
		}
	}
}

// TestMeasureQueryLatency sanity-checks the percentile math on a tiny batch.
func TestMeasureQueryLatency(t *testing.T) {
	s, err := newQueryBenchSetup("adder_25")
	if err != nil {
		t.Fatal(err)
	}
	e := measureQueryLatency(s, 100)
	if e.Iterations != 100 || e.NsPerOp <= 0 || e.QPS <= 0 {
		t.Fatalf("entry = %+v, want positive measurements over 100 queries", e)
	}
	if !(e.P50NS <= e.P95NS && e.P95NS <= e.P99NS) {
		t.Fatalf("percentiles not monotone: P50 %v P95 %v P99 %v", e.P50NS, e.P95NS, e.P99NS)
	}
}
