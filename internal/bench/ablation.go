package bench

import (
	"hypertree/internal/hypergraph"
	"hypertree/internal/search"
)

// RunAblation quantifies each pruning mechanism's contribution to the exact
// searches (the design choices DESIGN.md calls out): the same instances are
// solved with the full machinery and with one mechanism disabled at a time,
// reporting evaluated search states. Node counts are deterministic for a
// fixed seed, unlike wall-clock times.
func RunAblation(s Scale) *Table {
	t := &Table{
		Title:  "Ablation — evaluated search states per pruning configuration (scale: " + s.Name + ")",
		Note:   "bb/a* = full machinery; -pr2/-red/-lb disable pruning rule 2, reductions, node lower bounds",
		Header: []string{"instance", "algo", "full", "-pr2", "-red", "-lb", "plain", "width"},
	}
	type variant struct {
		name string
		opts search.Options
	}
	variants := []variant{
		{"full", search.Options{Seed: 1}},
		{"-pr2", search.Options{Seed: 1, DisablePR2: true}},
		{"-red", search.Options{Seed: 1, DisableReductions: true}},
		{"-lb", search.Options{Seed: 1, DisableNodeLB: true}},
		{"plain", search.Options{Seed: 1, DisablePR2: true, DisableReductions: true, DisableNodeLB: true}},
	}
	budget := s.SearchNodes * 10 // generous so most variants still close

	twInstances := []struct {
		name string
		g    *hypergraph.Graph
	}{
		{"queen5_5", hypergraph.Queen(5)},
		{"grid5", hypergraph.Grid(5)},
		{"myciel4", hypergraph.Mycielski(4)},
	}
	for _, inst := range twInstances {
		for _, algo := range []string{"bb-tw", "astar-tw"} {
			cells := []interface{}{inst.name, algo}
			width := -1
			for _, v := range variants {
				opts := v.opts
				opts.MaxNodes = budget
				opts.Timeout = s.SearchTimeout
				var r search.Result
				if algo == "bb-tw" {
					r = search.BBTreewidth(inst.g, opts)
				} else {
					r = search.AStarTreewidth(inst.g, opts)
				}
				cells = append(cells, nodeMark(r))
				if v.name == "full" {
					width = r.Width
				}
			}
			cells = append(cells, width)
			t.Add(cells...)
		}
	}

	ghwInstances := []struct {
		name string
		h    *hypergraph.Hypergraph
	}{
		{"grid2d_8", hypergraph.Grid2D(8)},
		{"clique_10", hypergraph.CliqueHypergraph(10)},
		{"adder_15", hypergraph.Adder(15)},
	}
	for _, inst := range ghwInstances {
		for _, algo := range []string{"bb-ghw", "astar-ghw"} {
			cells := []interface{}{inst.name, algo}
			width := -1
			for _, v := range variants {
				opts := v.opts
				opts.MaxNodes = budget
				opts.Timeout = s.SearchTimeout
				var r search.Result
				if algo == "bb-ghw" {
					r = search.BBGHW(inst.h, opts)
				} else {
					r = search.AStarGHW(inst.h, opts)
				}
				cells = append(cells, nodeMark(r))
				if v.name == "full" {
					width = r.Width
				}
			}
			cells = append(cells, width)
			t.Add(cells...)
		}
	}
	return t
}

// nodeMark formats a node count, marking budget-limited runs.
func nodeMark(r search.Result) string {
	s := orNA(int(r.Nodes))
	if !r.Exact {
		s += "*"
	}
	return s
}
