//go:build !race

package bench

// raceDetectorEnabled reports whether the test binary was built with -race.
const raceDetectorEnabled = false
