// Portfolio mode: no single decomposition algorithm dominates across
// instance families, so instead of picking one blind, AlgPortfolio races a
// complementary set of ghw solvers concurrently — the production form of the
// thesis's tractable-variants program, with det-k-decomp racing the anytime
// heuristics.
//
// All members share one budget (a deadline or cancellation stops the whole
// race), one cover engine (a bag solved by any member is a memo hit for all
// of them) and one cross-solver incumbent: every member improvement is
// published through a CAS-lowered atomic width, so the branch-and-bound
// member prunes against the genetic algorithms' best-so-far and the
// det-k-decomp member stops raising k once k can no longer beat it. The
// portfolio also tracks the best proven ghw lower bound (the upfront
// tw-ksc-width bound plus every lb-sound member's lower_bound events); the
// moment the incumbent meets it, the result is proven optimal and the losing
// members are aborted via budget.StopPortfolioWin.
//
// Observability: each member runs under its own `algo` label (stamped on
// every event, so a request's trace interleaves cleanly — ValidateTrace
// scopes the anytime-width contract per (req, algo) pair), while the
// portfolio itself emits a merged timeline under the "portfolio" label into
// the run's RunStats.
package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"hypertree/internal/bounds"
	"hypertree/internal/budget"
	"hypertree/internal/decomp"
	"hypertree/internal/htd"
	"hypertree/internal/hypergraph"
	"hypertree/internal/obs"
	"hypertree/internal/obs/attr"
	"hypertree/internal/search"
	"hypertree/internal/setcover"
)

// DefaultPortfolio is the member set AlgPortfolio races when
// Options.Portfolio is empty: the greedy baseline for an instant upper
// bound, exact branch and bound, det-k-decomp over rising k, and the two
// genetic heuristics.
var DefaultPortfolio = []Algorithm{AlgGreedy, AlgBBGHW, AlgHW, AlgGAGHW, AlgSAIGAGHW}

// unsetW mirrors search.Incumbent's "no claim yet" sentinel.
const unsetW = math.MaxInt32

// DecomposePortfolio runs the algorithm portfolio on h; it is Decompose with
// Options.Algorithm forced to AlgPortfolio.
func DecomposePortfolio(h *hypergraph.Hypergraph, opts Options) (*Decomposition, error) {
	opts.Algorithm = AlgPortfolio
	return Decompose(h, opts)
}

// portfolio is the race's shared coordination state.
type portfolio struct {
	b   *budget.B
	inc *search.Incumbent
	// rec is the portfolio-level recorder: the merged RunStats teed with the
	// caller's recorder. Member events do NOT flow through it (a member's
	// algo_stop would overwrite the merged FinalWidth); they reach the
	// caller's recorder directly, label-stamped, via memberRecorder.
	rec   obs.Recorder
	stats *obs.RunStats
	// col accumulates the contribution side of the attribution ledger:
	// per-member claims, lower bounds, checkpoints and stop reasons, fed by
	// the memberRecorders while members run.
	col *attr.Collector

	mu       sync.Mutex
	bestW    int // lowest width any member has realized (unsetW before the first claim)
	bestAlgo Algorithm
	lb       int  // best proven ghw lower bound
	won      bool // the win latch: bestW <= lb, losers aborted
}

// claimWidth publishes a member-realized width: it lowers the cross-solver
// incumbent (tightening every member's pruning), extends the merged anytime
// timeline when the width is a global improvement, and latches the win when
// the incumbent meets the proven lower bound.
func (pf *portfolio) claimWidth(alg Algorithm, w int) {
	if w < 0 {
		return
	}
	pf.inc.Claim(w)
	pf.mu.Lock()
	defer pf.mu.Unlock()
	if w < pf.bestW {
		pf.bestW, pf.bestAlgo = w, alg
		t := pf.b.Elapsed()
		// Under the same lock that decided the claim, so the ledger's claim
		// order is the true incumbent order and every improvement of the
		// merged timeline names exactly one member.
		pf.col.Claim(string(alg), w, t)
		pf.rec.Record(obs.Event{Kind: obs.KindImprove, T: t,
			Algo: string(AlgPortfolio), Width: w, Nodes: pf.b.Nodes()})
	}
	pf.checkWinLocked()
}

// raiseLB publishes a proven ghw lower bound (only lb-sound members feed it:
// det-k-decomp refutations bound hw, not ghw, and are filtered out upstream).
func (pf *portfolio) raiseLB(lb int) {
	if lb <= 0 {
		return
	}
	pf.mu.Lock()
	defer pf.mu.Unlock()
	if lb > pf.lb {
		pf.lb = lb
		pf.rec.Record(obs.Event{Kind: obs.KindLowerBound, T: pf.b.Elapsed(),
			Algo: string(AlgPortfolio), LowerBound: lb, Nodes: pf.b.Nodes()})
	}
	pf.checkWinLocked()
}

func (pf *portfolio) checkWinLocked() {
	if !pf.won && pf.bestW <= pf.lb {
		pf.won = true
		pf.b.Stop(budget.StopPortfolioWin)
	}
}

func (pf *portfolio) lowerBound() int {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	return pf.lb
}

// memberRecorder is the recorder handed to each member: it stamps every
// event with the member's algo label (concurrent members must not rely on
// the validator's algo_start fallback), forwards to the caller's recorder,
// and intercepts the events that feed the shared race state — improvements
// claim the incumbent, and lower bounds / proven-exact completions of
// lb-sound members raise the global ghw lower bound.
type memberRecorder struct {
	algo Algorithm
	// lbSound reports whether the member's bounds are ghw bounds. det-k-decomp
	// is the exception: its refutations (and its exactness) certify hypertree
	// width, which only upper-bounds ghw — its found widths are still valid
	// incumbent claims, but its lower bounds must not end the race.
	lbSound bool
	pf      *portfolio
	next    obs.Recorder // the caller's recorder; may be nil
}

func (m memberRecorder) Record(e obs.Event) {
	if e.Algo == "" {
		e.Algo = string(m.algo)
	}
	m.pf.col.Observe(string(m.algo), e)
	switch e.Kind {
	case obs.KindImprove:
		m.pf.claimWidth(m.algo, e.Width)
	case obs.KindLowerBound:
		if m.lbSound {
			m.pf.raiseLB(e.LowerBound)
		}
	case obs.KindStop:
		if e.Exact {
			// A completed exact member proves its width optimal (for ghw only
			// when lb-sound; det-k-decomp's exact hw is just an upper bound).
			m.pf.claimWidth(m.algo, e.Width)
			if m.lbSound {
				m.pf.raiseLB(e.Width)
			}
		}
	}
	if m.next != nil {
		m.next.Record(e)
	}
}

type memberResult struct {
	alg Algorithm
	d   *Decomposition
	err error
	// wall is the member goroutine's wall-clock: the ledger's CPU-time
	// estimate (members solve on one goroutine each — inner Workers are 0).
	wall time.Duration
}

// decomposePortfolio is the AlgPortfolio entry point, dispatched from
// Decompose before the generic budget tail (a portfolio win stops the shared
// budget on purpose; the tail would misread that as an interruption).
func decomposePortfolio(h *hypergraph.Hypergraph, opts Options) (*Decomposition, error) {
	members := opts.Portfolio
	if len(members) == 0 {
		members = DefaultPortfolio
	}
	seen := make(map[Algorithm]bool, len(members))
	for _, a := range members {
		if _, err := ParseAlgorithm(string(a)); err != nil {
			return nil, fmt.Errorf("core: portfolio member: %w", err)
		}
		if a == AlgPortfolio {
			return nil, fmt.Errorf("core: portfolio cannot nest itself as a member")
		}
		if a.IsTreewidth() {
			return nil, fmt.Errorf("core: portfolio member %s optimizes treewidth, not ghw", a)
		}
		if seen[a] {
			// Two members under one label would interleave their improve
			// events within one (req, algo) trace scope, breaking the
			// anytime-monotonicity contract ValidateTrace checks.
			return nil, fmt.Errorf("core: duplicate portfolio member %s", a)
		}
		seen[a] = true
	}

	b := budget.New(opts.Ctx, budget.Limits{
		Timeout:    opts.Timeout,
		MaxNodes:   opts.MaxNodes,
		CheckEvery: opts.CheckEvery,
	})
	eng := setcover.NewEngine(h, setcover.DefaultCacheCapacity)
	inc := search.NewIncumbent()
	stats := obs.NewRunStats()
	pf := &portfolio{b: b, inc: inc, stats: stats,
		rec: obs.Tee(stats, opts.Recorder), col: attr.NewCollector(),
		bestW: unsetW, bestAlgo: AlgPortfolio}
	// One recorder attach before fan-out: the engine's fields are
	// unsynchronized, so the members must not touch them (they don't — an
	// injected engine suppresses their SetRecorder calls).
	eng.SetRecorderAt(obs.WithAlgo(pf.rec, string(AlgPortfolio)), 0, b.StartTime())

	pf.rec.Record(obs.Event{Kind: obs.KindStart, T: b.Elapsed(),
		Algo: string(AlgPortfolio), N: h.N(), M: h.M()})
	b.OnCheckpoint(obs.Checkpointer(obs.WithAlgo(pf.rec, string(AlgPortfolio))))
	// The cheap ghw lower bound up front: a heuristic member that hits it
	// ends the race without waiting for an exact member's proof.
	pf.raiseLB(bounds.TwKscWidth(h, rand.New(rand.NewSource(opts.Seed))))

	// Per-member attribution instruments: a budget member view (its Ticks
	// count against the shared budget AND the member's own ledger row — the
	// conservation invariant: the views' node counts sum exactly to
	// b.Nodes()) and a cover-engine member view (shared memo cache, hits and
	// misses attributed to the member that queried).
	children := make([]*budget.B, len(members))
	engines := make([]*setcover.Engine, len(members))
	results := make([]memberResult, len(members))
	var wg sync.WaitGroup
	for i, alg := range members {
		i, alg := i, alg
		children[i] = b.Member(string(alg))
		engines[i] = eng.Member()
		mrec := memberRecorder{algo: alg, lbSound: alg != AlgHW, pf: pf, next: opts.Recorder}
		wg.Add(1)
		go func() {
			defer wg.Done()
			start := time.Now()
			var d *Decomposition
			err := budget.Guard(b, func() error {
				var e error
				if alg == AlgHW {
					d, e = pf.runDetk(h, opts, mrec, children[i])
				} else {
					mopts := opts
					mopts.Algorithm = alg
					mopts.Recorder = mrec
					// The portfolio's parallelism is the race itself; members
					// stay on their serial engines so the shared budget's work
					// units split across solvers, not within one.
					mopts.Workers = 0
					mopts.Portfolio = nil
					mopts.engine = engines[i]
					mopts.shared = inc
					d, e = decompose(h, mopts, children[i])
				}
				return e
			})
			results[i] = memberResult{alg: alg, d: d, err: err, wall: time.Since(start)}
		}()
	}
	wg.Wait()

	var firstErr error
	for _, r := range results {
		if r.err == nil {
			continue
		}
		var pe *budget.PanicError
		if errors.As(r.err, &pe) {
			// A member panic fails the whole run, results or not: the
			// containment contract turns one exploding solver into a
			// diagnosable error, never a silently degraded answer.
			return nil, pe
		}
		if firstErr == nil {
			firstErr = fmt.Errorf("core: portfolio member %s: %w", r.alg, r.err)
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}

	// Winner: the narrowest validated decomposition, in member order on ties.
	var winner *Decomposition
	var winnerAlg Algorithm
	for _, r := range results {
		d := r.d
		if d == nil || d.TD == nil || d.GHD == nil {
			continue // det-k-decomp found nothing below the incumbent
		}
		if d.TD.Validate(h) != nil || d.GHD.Validate(h) != nil {
			continue
		}
		if winner == nil || d.Width < winner.Width {
			winner, winnerAlg = d, r.alg
		}
	}
	if winner == nil {
		return nil, fmt.Errorf("core: portfolio produced no valid decomposition")
	}

	lbFinal := pf.lowerBound()
	reason := b.Reason()
	if reason == budget.StopPortfolioWin {
		reason = budget.StopNone
	}
	exact := winner.Width <= lbFinal
	if exact {
		// The proof stands whichever limit latched first: the winner realizes
		// the proven lower bound, so the race completed in every sense that
		// matters to the caller.
		reason = budget.StopNone
	}
	var evals int64
	for _, r := range results {
		if r.d != nil {
			evals += r.d.Evaluations
		}
	}
	// All members have joined, so the global counter is final: read it once
	// and use it for both the result and the ledger, keeping the
	// conservation check (member views sum to TotalNodes) exact.
	total := b.Nodes()
	led := &attr.Ledger{Portfolio: true, Winner: string(winnerAlg), TotalNodes: total}
	for i, alg := range members {
		m := pf.col.Member(string(alg))
		m.Nodes = children[i].Nodes()
		m.CPU = results[i].wall
		st := engines[i].CacheStats()
		m.CacheHits, m.CacheMisses = st.Hits, st.Misses
		m.Role = attr.Role(alg == winnerAlg, m.Stop)
		led.Members = append(led.Members, m)
	}
	d := &Decomposition{
		TD:          winner.TD,
		GHD:         winner.GHD,
		Width:       winner.Width,
		LowerBound:  lbFinal,
		Exact:       exact,
		Ordering:    winner.Ordering,
		Nodes:       total,
		Evaluations: evals,
		Elapsed:     b.Elapsed(),
		Stop:        reason,
		Interrupted: reason != budget.StopNone,
		Stats:       pf.stats,
		Ledger:      led,
	}
	if st := eng.CacheStats(); st.Hits+st.Misses > 0 {
		pf.rec.Record(obs.Event{Kind: obs.KindCoverCache, T: b.Elapsed(),
			Algo: string(AlgPortfolio), CacheHits: st.Hits, CacheMisses: st.Misses,
			CacheEvictions: st.Evictions, CacheSize: st.Size})
	}
	pf.rec.Record(obs.Event{Kind: obs.KindStop, T: b.Elapsed(),
		Algo: string(AlgPortfolio), Width: d.Width, LowerBound: d.LowerBound,
		Exact: d.Exact, Nodes: d.Nodes, Evaluations: evals, Stop: string(reason)})
	// The terminal attr events: one per member, after the portfolio's
	// algo_stop, each carrying that member's ledger row into the trace.
	for _, ev := range led.Events(b.Elapsed()) {
		pf.rec.Record(ev)
	}
	return d, nil
}

// runDetk is the portfolio's det-k-decomp member: the solo hw-detk loop with
// one extra stopping rule — the shared incumbent caps k, since a width-k
// hypertree decomposition with k at or above the best known ghw width cannot
// improve the race. It returns a nil Decomposition (no error) when nothing
// was found below the caps.
func (pf *portfolio) runDetk(h *hypergraph.Hypergraph, opts Options, rec obs.Recorder, b *budget.B) (*Decomposition, error) {
	stats := obs.NewRunStats()
	mrec := obs.Tee(stats, rec)
	b.OnCheckpoint(obs.Checkpointer(mrec))
	mrec.Record(obs.Event{Kind: obs.KindStart, T: b.Elapsed(),
		Algo: string(AlgHW), N: h.N(), M: h.M()})
	rng := rand.New(rand.NewSource(opts.Seed))
	// hw <= tw+1 always; the incumbent usually cuts in far earlier.
	maxK := bounds.MinFillUpperBound(h.PrimalGraph(), rng) + 1
	for k := 1; k <= maxK && !b.Stopped(); k++ {
		if k >= pf.inc.Best() {
			break
		}
		mrec.Record(obs.Event{Kind: obs.KindAttempt, T: b.Elapsed(), K: k, Nodes: b.Nodes()})
		g, ok, interrupted := htd.DecideHWParallel(h, k, 1, b)
		if ok {
			d := &Decomposition{
				Width:   k,
				Exact:   true, // exact hypertree width; ghw exactness is the race's call
				Nodes:   b.Nodes(),
				Elapsed: b.Elapsed(),
				Stats:   stats,
			}
			d.GHD = g
			d.TD = &g.TreeDecomposition
			d.Ordering = decomp.OrderingFromDecomposition(h, d.TD)
			mrec.Record(obs.Event{Kind: obs.KindImprove, T: b.Elapsed(),
				Width: k, K: k, Found: true, Nodes: b.Nodes()})
			mrec.Record(obs.Event{Kind: obs.KindStop, T: b.Elapsed(), Algo: string(AlgHW),
				Width: k, Exact: true, Nodes: b.Nodes()})
			return d, nil
		}
		if interrupted {
			break
		}
		// Width k refuted: hw >= k+1. That bounds hw, not ghw — the
		// memberRecorder filters it out of the global race (lbSound=false),
		// but the trace still shows the member's own progress.
		mrec.Record(obs.Event{Kind: obs.KindLowerBound, T: b.Elapsed(),
			LowerBound: k + 1, Nodes: b.Nodes()})
	}
	mrec.Record(obs.Event{Kind: obs.KindStop, T: b.Elapsed(), Algo: string(AlgHW),
		Width: -1, Nodes: b.Nodes(), Stop: string(b.Reason())})
	return nil, nil
}
