package core

import (
	"bytes"
	"testing"
	"time"

	"hypertree/internal/ga"
	"hypertree/internal/hypergraph"
	"hypertree/internal/obs"
)

func obsGAConfig() ga.Config {
	return ga.Config{
		PopulationSize: 30, CrossoverRate: 1, MutationRate: 0.3,
		TournamentSize: 2, MaxIterations: 25, Crossover: ga.POS, Mutation: ga.ISM, Seed: 1,
	}
}

func obsSAIGAConfig() ga.SAIGAConfig {
	return ga.SAIGAConfig{
		Islands: 2, IslandPop: 15, TournamentSize: 2, Epochs: 3, EpochLength: 4, Seed: 1,
	}
}

// Every Decomposition carries populated RunStats whose anytime-width timeline
// honors the contract: non-empty, non-increasing in width, non-decreasing in
// time. No external Recorder is attached — Stats must aggregate regardless.
func TestDecompositionStatsTimelines(t *testing.T) {
	h := hypergraph.Grid2D(8)
	for _, alg := range []Algorithm{
		AlgAStarTW, AlgBBTW, AlgAStarGHW, AlgBBGHW, AlgGATW, AlgGAGHW, AlgSAIGAGHW, AlgGreedy,
	} {
		t.Run(string(alg), func(t *testing.T) {
			opts := Options{
				Algorithm: alg, Seed: 1, Timeout: 10 * time.Second, MaxNodes: 50000,
				GA: obsGAConfig(), SAIGA: obsSAIGAConfig(),
			}
			d, err := Decompose(h, opts)
			if err != nil {
				t.Fatalf("Decompose: %v", err)
			}
			if d.Stats == nil {
				t.Fatal("nil Stats")
			}
			if err := d.Stats.CheckTimeline(); err != nil {
				t.Fatal(err)
			}
			snap := d.Stats.Snapshot()
			if snap.Algo == "" {
				t.Fatal("Stats missing the algo label")
			}
			// M is model-specific (primal-graph edges for the tw searches,
			// hyperedges for ghw, unknown to the GA core) — only N is universal.
			if snap.N != h.N() {
				t.Fatalf("Stats has N=%d, want %d", snap.N, h.N())
			}
			// On a completed run the timeline's last point is the width the
			// returned decomposition achieves (post-processing re-records the
			// final width when exact covers lower it). An interrupted run may
			// legitimately return above its in-run best: the greedy re-cover
			// of the best partial state is what validates, and the stop event
			// describes the search, not the artifact.
			if last := snap.Timeline[len(snap.Timeline)-1].Width; !d.Interrupted && last < d.Width {
				t.Fatalf("timeline ends at width %d below the returned width %d", last, d.Width)
			}
		})
	}
}

// The search and GA families must report their effort counters through Stats.
func TestStatsEffortCounters(t *testing.T) {
	h := hypergraph.Grid2D(8)
	d, err := Decompose(h, Options{Algorithm: AlgBBGHW, Seed: 1, MaxNodes: 20000})
	if err != nil {
		t.Fatal(err)
	}
	snap := d.Stats.Snapshot()
	if snap.Expansions == 0 {
		t.Fatalf("bb-ghw reported no expansions: %+v", snap)
	}
	if snap.CacheHits+snap.CacheMisses == 0 {
		t.Fatalf("bb-ghw reported no cover-cache traffic: %+v", snap)
	}
	d, err = Decompose(h, Options{Algorithm: AlgGAGHW, Seed: 1, GA: obsGAConfig()})
	if err != nil {
		t.Fatal(err)
	}
	snap = d.Stats.Snapshot()
	if snap.Evaluations == 0 || snap.Generations == 0 {
		t.Fatalf("ga-ghw reported no evaluations/generations: %+v", snap)
	}
}

// One JSONL trace across several runs validates against the schema and shows
// at least one improvement for every anytime algorithm.
func TestTraceAcrossAlgorithms(t *testing.T) {
	h := hypergraph.Grid2D(6)
	var buf bytes.Buffer
	w := obs.NewJSONLWriter(&buf)
	algs := []Algorithm{AlgAStarGHW, AlgBBGHW, AlgGAGHW, AlgSAIGAGHW, AlgGreedy, AlgHW}
	improvements := map[Algorithm]int{}
	for _, alg := range algs {
		opts := Options{
			Algorithm: alg, Seed: 1, Timeout: 20 * time.Second,
			GA: obsGAConfig(), SAIGA: obsSAIGAConfig(), Recorder: w,
		}
		d, err := Decompose(h, opts)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		improvements[alg] = len(d.Stats.Snapshot().Timeline)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	sum, err := obs.ValidateTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Starts != len(algs) || sum.Stops != len(algs) {
		t.Fatalf("trace has %d starts / %d stops, want %d each", sum.Starts, sum.Stops, len(algs))
	}
	want := map[string]bool{
		"astar-ghw": true, "bb-ghw": true, "ga-ghw": true,
		"saiga-ghw": true, "greedy": true, "hw-detk": true,
	}
	for _, a := range sum.Algos {
		delete(want, a)
	}
	if len(want) != 0 {
		t.Fatalf("trace is missing run labels %v (saw %v)", want, sum.Algos)
	}
	for alg, n := range improvements {
		if n == 0 {
			t.Fatalf("%s recorded no width improvements", alg)
		}
	}
	if sum.Improvements == 0 {
		t.Fatal("trace has no improve events")
	}
}

// An external Recorder is optional: the same runs with Recorder nil must
// still populate Stats (the tee always includes the run's own aggregator).
func TestStatsWithoutRecorder(t *testing.T) {
	h := hypergraph.Grid2D(6)
	d, err := Decompose(h, Options{Algorithm: AlgAStarGHW, Seed: 1, Timeout: 20 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if d.Stats == nil || len(d.Stats.Snapshot().Timeline) == 0 {
		t.Fatal("Stats not populated without an external recorder")
	}
}
