// Package core is the library façade: a single entry point that runs any of
// the thesis's algorithms on a hypergraph (or graph) and returns a
// validated decomposition together with the bounds the run proved.
//
// The algorithms are:
//
//	astar-tw   A* for exact treewidth (thesis ch. 5)
//	bb-tw      branch and bound for exact treewidth (thesis §4.4)
//	ga-tw      genetic algorithm for treewidth upper bounds (ch. 6)
//	astar-ghw  A* for exact generalized hypertree width (ch. 9)
//	bb-ghw     branch and bound for exact ghw (ch. 8)
//	ga-ghw     genetic algorithm for ghw upper bounds (§7.1)
//	saiga-ghw  self-adaptive island GA for ghw upper bounds (§7.2)
//	greedy     min-fill ordering + greedy covers (McMahan's bucket
//	           elimination baseline, §2.5.2)
//	hw-detk    exact hypertree width via det-k-decomp — the tractable
//	           variant (polynomial for fixed k, §2.3.2)
package core

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"hypertree/internal/bounds"
	"hypertree/internal/budget"
	"hypertree/internal/decomp"
	"hypertree/internal/elim"
	"hypertree/internal/ga"
	"hypertree/internal/htd"
	"hypertree/internal/hypergraph"
	"hypertree/internal/obs"
	"hypertree/internal/obs/attr"
	"hypertree/internal/search"
	"hypertree/internal/setcover"
)

// Algorithm names an implemented decomposition algorithm.
type Algorithm string

// The implemented algorithms.
const (
	AlgAStarTW  Algorithm = "astar-tw"
	AlgBBTW     Algorithm = "bb-tw"
	AlgGATW     Algorithm = "ga-tw"
	AlgAStarGHW Algorithm = "astar-ghw"
	AlgBBGHW    Algorithm = "bb-ghw"
	AlgGAGHW    Algorithm = "ga-ghw"
	AlgSAIGAGHW Algorithm = "saiga-ghw"
	AlgGreedy   Algorithm = "greedy"
	// AlgHW computes the hypertree width via det-k-decomp — the tractable
	// variant: polynomial for each fixed width (thesis §2.3.2). The result
	// is a valid GHD of width hw(H) >= ghw(H).
	AlgHW Algorithm = "hw-detk"
	// AlgPortfolio races a set of ghw solvers (greedy, bb-ghw, hw-detk over
	// rising k, ga-ghw, saiga-ghw by default; see Options.Portfolio)
	// concurrently on one shared budget and one shared cover engine,
	// publishing each improvement through a cross-solver incumbent so every
	// member prunes against the best width any of them has found. It returns
	// as soon as some member's width is proven optimal, or the best validated
	// anytime width at the deadline.
	AlgPortfolio Algorithm = "portfolio"
)

// Algorithms lists every algorithm name accepted by Decompose.
var Algorithms = []Algorithm{
	AlgAStarTW, AlgBBTW, AlgGATW,
	AlgAStarGHW, AlgBBGHW, AlgGAGHW, AlgSAIGAGHW, AlgGreedy, AlgHW,
	AlgPortfolio,
}

// ParseAlgorithm validates an algorithm name from the CLI.
func ParseAlgorithm(s string) (Algorithm, error) {
	for _, a := range Algorithms {
		if string(a) == s {
			return a, nil
		}
	}
	return "", fmt.Errorf("core: unknown algorithm %q (have %v)", s, Algorithms)
}

// IsTreewidth reports whether the algorithm optimizes treewidth (as opposed
// to generalized hypertree width).
func (a Algorithm) IsTreewidth() bool {
	return a == AlgAStarTW || a == AlgBBTW || a == AlgGATW
}

// Options configures Decompose.
type Options struct {
	Algorithm Algorithm
	// Ctx optionally cancels the run (e.g. on SIGINT); on cancellation
	// Decompose still returns a validated best-so-far decomposition with
	// Stop set to budget.StopCanceled.
	Ctx context.Context
	// Timeout bounds the run (exact algorithms degrade to anytime bounds).
	Timeout time.Duration
	// MaxNodes bounds work units: search-tree expansions for the exact
	// algorithms, fitness evaluations for the genetic ones.
	MaxNodes int64
	// CheckEvery overrides how many work units pass between context/deadline
	// checkpoints (default 256). Tests lower it so cancellation lands even
	// in very short runs.
	CheckEvery int64
	Seed       int64
	// GA configures ga-tw/ga-ghw; zero-valued fields fall back to scaled-
	// down thesis defaults.
	GA ga.Config
	// SAIGA configures saiga-ghw; zero-valued fields fall back to defaults.
	SAIGA ga.SAIGAConfig
	// Workers is the shared parallelism knob: it sets the worker count of
	// the branch-and-bound searches (work-stealing parallel BB), det-k-decomp
	// (parallel separator fan-out) and — unless GA.Workers was set explicitly
	// — GA/SAIGA fitness evaluation. Values <= 1 keep every algorithm on its
	// bit-identical serial path. A* ignores the knob.
	Workers int
	// Recorder, when non-nil, receives the run's instrumentation events
	// (obs package): run start/stop, budget checkpoints, anytime width
	// improvements, cover-cache snapshots. Several algorithms record from
	// worker goroutines, so it must be safe for concurrent use. nil
	// disables tracing; the run still aggregates Decomposition.Stats.
	Recorder obs.Recorder
	// Portfolio selects the member solvers raced by AlgPortfolio; empty
	// means the default set (greedy, bb-ghw, hw-detk, ga-ghw, saiga-ghw).
	// Members must be distinct ghw algorithms — treewidth algorithms
	// optimize a different width and a nested portfolio is rejected.
	Portfolio []Algorithm

	// engine, when non-nil, injects a shared cover engine into the ghw
	// solvers (the portfolio driver shares one across its members). Internal:
	// the engine's recorder fields are unsynchronized, so only the fan-out
	// site may attach one.
	engine *setcover.Engine
	// shared, when non-nil, is the cross-solver incumbent of a portfolio
	// race, handed down to the search engines for pruning.
	shared *search.Incumbent
}

// ClampWorkers normalizes a caller-supplied worker count for Options.Workers:
// negative values (meaningless) clamp to 0 — the bit-identical serial path —
// and values above GOMAXPROCS clamp down to it, since the parallel engines
// only contend with themselves beyond that. Both the CLI and the daemon
// funnel user-supplied counts through here.
func ClampWorkers(n int) int {
	if n < 0 {
		return 0
	}
	if max := runtime.GOMAXPROCS(0); n > max {
		return max
	}
	return n
}

// Decomposition is the unified result: a validated decomposition plus the
// bounds and effort statistics of the run.
type Decomposition struct {
	// TD is the tree decomposition induced by Ordering.
	TD *decomp.TreeDecomposition
	// GHD is the covered decomposition; nil for the treewidth algorithms.
	GHD *decomp.GHD
	// Width is the achieved width (treewidth-style for tw algorithms,
	// λ-width for ghw algorithms).
	Width int
	// LowerBound is the best bound proved during the run (equals Width when
	// Exact; heuristic algorithms report the cheap tw-ksc / minor bound).
	LowerBound int
	// Exact reports whether Width was proved optimal.
	Exact bool
	// Ordering is the elimination ordering realizing Width.
	Ordering []int
	// Nodes / Evaluations / Elapsed describe the effort spent.
	Nodes       int64
	Evaluations int64
	Elapsed     time.Duration
	// Interrupted reports that the run ended on a budget (deadline, node
	// budget, or cancellation) rather than by completing; the decomposition
	// is the validated best found so far. Stop says which limit tripped.
	Interrupted bool
	Stop        budget.StopReason
	// Stats aggregates the run's instrumentation events: the anytime-width
	// timeline, effort counters, cover-cache traffic. Always populated.
	Stats *obs.RunStats
	// Ledger is the run's per-member attribution record: one row per
	// portfolio member saying what it cost (attributed nodes, CPU estimate,
	// cache traffic) and what it contributed (incumbent claims, lower
	// bounds) plus its final role. Serial runs carry the degenerate
	// one-member ledger, so consumers handle one shape. Always populated.
	Ledger *attr.Ledger
}

// Decompose runs the selected algorithm on h. For the treewidth algorithms
// the hypergraph's primal graph is decomposed (Lemma 1) and GHD is nil; for
// the ghw algorithms a validated GHD with exact bag covers is returned.
//
// The run is governed by one shared budget built from Ctx, Timeout and
// MaxNodes. When any limit trips, the algorithm stops cooperatively and
// Decompose still returns a validated best-so-far decomposition, with
// Interrupted set and Stop naming the limit. A panic inside the algorithm
// is contained and returned as a *budget.PanicError — one exploding
// instance in a batch run stays a diagnosable error.
func Decompose(h *hypergraph.Hypergraph, opts Options) (*Decomposition, error) {
	if h.N() == 0 {
		return nil, fmt.Errorf("core: empty hypergraph")
	}
	if !h.CoversAllVertices() && !opts.Algorithm.IsTreewidth() {
		return nil, fmt.Errorf("core: hypergraph leaves vertices uncovered; ghw is undefined (add unary edges)")
	}
	if opts.Algorithm == AlgPortfolio {
		// The portfolio has its own completion semantics (a proven win stops
		// the shared budget on purpose), so it bypasses the tail below that
		// would misread that stop as an interruption.
		return decomposePortfolio(h, opts)
	}
	b := budget.New(opts.Ctx, budget.Limits{
		Timeout:    opts.Timeout,
		MaxNodes:   opts.MaxNodes,
		CheckEvery: opts.CheckEvery,
	})
	var d *Decomposition
	err := budget.Guard(b, func() error {
		var err error
		d, err = decompose(h, opts, b)
		return err
	})
	if err != nil {
		return nil, err
	}
	d.Stop = b.Reason()
	d.Interrupted = d.Stop != budget.StopNone
	d.Exact = d.Exact && !d.Interrupted
	// The degenerate one-member ledger of a serial run: same shape as a
	// portfolio ledger so every consumer (envelope, metrics, tracestat) has
	// one code path, with the sole member as the trivial winner.
	d.Ledger = serialLedger(string(opts.Algorithm), d, b)
	for _, ev := range d.Ledger.Events(b.Elapsed()) {
		recordPost(d, opts, ev)
	}
	return d, nil
}

// serialLedger builds the one-member attribution ledger of a non-portfolio
// run. The costs are the run's own totals (one member did everything, so
// conservation is trivial); the claims are the run's anytime timeline,
// deduplicated to strict improvements.
func serialLedger(algo string, d *Decomposition, b *budget.B) *attr.Ledger {
	m := attr.Member{
		Algo:       algo,
		Role:       attr.RoleWinner,
		Nodes:      b.Nodes(),
		CPU:        d.Elapsed,
		BestWidth:  d.Width,
		LowerBound: d.LowerBound,
		Stop:       string(d.Stop),
	}
	if d.Stats != nil {
		snap := d.Stats.Snapshot()
		m.CacheHits, m.CacheMisses = snap.CacheHits, snap.CacheMisses
		m.Checkpoints = snap.Checkpoints
		for _, p := range snap.Timeline {
			if len(m.Claims) == 0 || p.Width < m.Claims[len(m.Claims)-1].Width {
				m.Claims = append(m.Claims, attr.Claim{Width: p.Width, T: p.T})
			}
		}
	}
	return &attr.Ledger{
		Winner:     algo,
		TotalNodes: b.Nodes(),
		Members:    []attr.Member{m},
	}
}

// decompose dispatches to the selected algorithm under the shared budget b
// and post-processes the result into a validated decomposition.
func decompose(h *hypergraph.Hypergraph, opts Options, b *budget.B) (*Decomposition, error) {
	sopt := search.Options{Seed: opts.Seed, Budget: b, Recorder: opts.Recorder, Workers: opts.Workers,
		Engine: opts.engine, Shared: opts.shared}
	var d *Decomposition
	// pendingStop defers the algo_stop event of the core-level algorithms
	// (greedy, interrupted hw-detk) to after post-processing, so the event
	// reports the width the returned decomposition actually achieves.
	pendingStop := ""
	switch opts.Algorithm {
	case AlgAStarTW:
		d = fromSearch(search.AStarTreewidth(h.PrimalGraph(), sopt))
	case AlgBBTW:
		d = fromSearch(search.BBTreewidth(h.PrimalGraph(), sopt))
	case AlgGATW:
		cfg := gaDefaults(opts.GA, opts)
		cfg.Budget = b
		if cfg.Recorder == nil {
			cfg.Recorder = opts.Recorder
		}
		r := ga.TreewidthOfHypergraph(h, cfg)
		d = &Decomposition{
			Width:       r.BestWidth,
			LowerBound:  bounds.TreewidthLowerBound(h.PrimalGraph(), rand.New(rand.NewSource(opts.Seed))),
			Ordering:    r.BestOrdering,
			Evaluations: r.Evaluations,
			Elapsed:     r.Elapsed,
			Stats:       r.Stats,
		}
	case AlgAStarGHW:
		d = fromSearch(search.AStarGHW(h, sopt))
	case AlgBBGHW:
		d = fromSearch(search.BBGHW(h, sopt))
	case AlgGAGHW:
		cfg := gaDefaults(opts.GA, opts)
		cfg.Budget = b
		if cfg.Recorder == nil {
			cfg.Recorder = opts.Recorder
		}
		r := ga.GHW(h, cfg)
		d = &Decomposition{
			Width:       r.BestWidth,
			LowerBound:  bounds.TwKscWidth(h, rand.New(rand.NewSource(opts.Seed))),
			Ordering:    r.BestOrdering,
			Evaluations: r.Evaluations,
			Elapsed:     r.Elapsed,
			Stats:       r.Stats,
		}
	case AlgSAIGAGHW:
		cfg := saigaDefaults(opts.SAIGA, opts)
		cfg.Budget = b
		if cfg.Recorder == nil {
			cfg.Recorder = opts.Recorder
		}
		r := ga.SAIGAGHW(h, cfg)
		d = &Decomposition{
			Width:       r.BestWidth,
			LowerBound:  bounds.TwKscWidth(h, rand.New(rand.NewSource(opts.Seed))),
			Ordering:    r.BestOrdering,
			Evaluations: r.Evaluations,
			Elapsed:     r.Elapsed,
			Stats:       r.Stats,
		}
	case AlgGreedy:
		start := time.Now()
		stats, rec := coreInstrument(opts, b, "greedy", h)
		rng := rand.New(rand.NewSource(opts.Seed))
		order := elim.MinFillOrderingBudget(h.PrimalGraph(), rng, b)
		var ev *elim.GHWEvaluator
		if opts.engine != nil {
			ev = elim.NewGHWEvaluatorWithEngine(opts.engine, false, rng)
		} else {
			ev = elim.NewGHWEvaluator(h, false, rng)
		}
		w := ev.Width(order)
		rec.Record(obs.Event{Kind: obs.KindImprove, T: b.Elapsed(), Width: w, Nodes: b.Nodes()})
		lb := bounds.TwKscWidth(h, rng)
		rec.Record(obs.Event{Kind: obs.KindLowerBound, T: b.Elapsed(), LowerBound: lb, Nodes: b.Nodes()})
		d = &Decomposition{
			Width:      w,
			LowerBound: lb,
			Ordering:   order,
			Elapsed:    time.Since(start),
			Stats:      stats,
		}
		pendingStop = "greedy"
	case AlgHW:
		start := time.Now()
		stats, rec := coreInstrument(opts, b, "hw-detk", h)
		rng := rand.New(rand.NewSource(opts.Seed))
		// hw ≤ tw+1 always, and the greedy ghw bound caps the search too.
		maxK := bounds.MinFillUpperBound(h.PrimalGraph(), rng) + 1
		w, g, provenLB := htd.HypertreeWidthParallel(h, maxK, opts.Workers, b, rec)
		lb := bounds.TwKscWidth(h, rng)
		if provenLB > lb {
			lb = provenLB
		}
		if w >= 0 {
			d = &Decomposition{
				Width:      w,
				LowerBound: lb,
				Exact:      true, // exact hypertree width
				Nodes:      b.Nodes(),
				Elapsed:    time.Since(start),
				Stats:      stats,
			}
			// det-k-decomp builds the decomposition directly, not from an
			// ordering; attach it, derive the TD view from its bags, and
			// derive the elimination ordering the struct contract promises
			// from the rooted tree (Theorem 2 pipeline: the induced
			// decomposition of the derived ordering is no wider).
			d.GHD = g
			d.TD = &g.TreeDecomposition
			d.Ordering = decomp.OrderingFromDecomposition(h, d.TD)
			rec.Record(obs.Event{Kind: obs.KindStop, T: b.Elapsed(), Algo: "hw-detk",
				Width: w, LowerBound: lb, Exact: true, Nodes: b.Nodes()})
			return d, nil
		}
		if !b.Stopped() {
			return nil, fmt.Errorf("core: det-k-decomp found no decomposition up to width %d", maxK)
		}
		// Interrupted: widths below provenLB were refuted (hw ≥ provenLB),
		// but no decomposition was completed. Degrade to a greedy GHD via
		// the nil-Ordering fallback below so the anytime contract holds.
		// Note LowerBound bounds hw while the fallback width bounds ghw, so
		// on an interrupted run LowerBound may exceed Width.
		d = &Decomposition{
			LowerBound: lb,
			Nodes:      b.Nodes(),
			Elapsed:    time.Since(start),
			Stats:      stats,
		}
		pendingStop = "hw-detk"
	default:
		return nil, fmt.Errorf("core: unknown algorithm %q", opts.Algorithm)
	}

	fellBack := d.Ordering == nil
	if fellBack {
		// Budgeted run that never materialized an ordering: fall back to
		// min-fill so the caller always gets a decomposition. The budget is
		// already stopped here, so the greedy scorer inside degrades to a
		// cheap index ordering rather than spending more time.
		d.Ordering = elim.MinFillOrderingBudget(h.PrimalGraph(), rand.New(rand.NewSource(opts.Seed)), b)
	}
	d.TD = elim.TDFromOrdering(h, d.Ordering)
	if !opts.Algorithm.IsTreewidth() {
		// Exact covers are exponential in the worst case; on an interrupted
		// run stay polynomial with greedy covers so post-processing cannot
		// blow past the budget the caller just hit. A portfolio win is not a
		// real interruption — the member realized its ordering before the
		// race was called — so it keeps exact covers (on its own ordering
		// only: fallback orderings were never scored and may cover badly).
		exact := !b.Stopped() ||
			(b.Reason() == budget.StopPortfolioWin && !fellBack)
		g, err := elim.GHDFromOrdering(h, d.Ordering, exact, rand.New(rand.NewSource(opts.Seed)))
		if err != nil {
			return nil, fmt.Errorf("core: covering decomposition: %w", err)
		}
		d.GHD = g
		if g.Width() < d.Width {
			// Exact covers can beat the greedy width the heuristic reported.
			d.Width = g.Width()
			recordPost(d, opts, obs.Event{Kind: obs.KindImprove, T: b.Elapsed(),
				Width: d.Width, Nodes: b.Nodes()})
		} else if g.Width() > d.Width {
			// Possible only on the fallback-ordering and greedy-cover paths:
			// report what the returned decomposition actually achieves.
			d.Width = g.Width()
			d.Exact = false
		}
	}
	if pendingStop != "" {
		recordPost(d, opts, obs.Event{Kind: obs.KindStop, T: b.Elapsed(), Algo: pendingStop,
			Width: d.Width, LowerBound: d.LowerBound, Exact: d.Exact,
			Nodes: b.Nodes(), Stop: string(b.Reason())})
	}
	return d, nil
}

// coreInstrument sets up instrumentation for the algorithms that run at the
// core level (greedy, hw-detk): a fresh RunStats teed with the caller's
// recorder, checkpoint piggybacking, and the algo_start event.
func coreInstrument(opts Options, b *budget.B, label string, h *hypergraph.Hypergraph) (*obs.RunStats, obs.Recorder) {
	stats := obs.NewRunStats()
	rec := obs.Tee(stats, opts.Recorder)
	b.OnCheckpoint(obs.Checkpointer(rec))
	rec.Record(obs.Event{Kind: obs.KindStart, T: b.Elapsed(), Algo: label, N: h.N(), M: h.M()})
	return stats, rec
}

// recordPost emits a post-processing event into the run's aggregator and the
// caller's recorder (the leaf algorithm's internal tee is out of reach here).
func recordPost(d *Decomposition, opts Options, ev obs.Event) {
	if d.Stats != nil {
		d.Stats.Record(ev)
	}
	if opts.Recorder != nil {
		opts.Recorder.Record(ev)
	}
}

// Treewidth runs a treewidth algorithm directly on a graph.
func Treewidth(g *hypergraph.Graph, opts Options) (*Decomposition, error) {
	if !opts.Algorithm.IsTreewidth() {
		return nil, fmt.Errorf("core: %s is not a treewidth algorithm", opts.Algorithm)
	}
	return Decompose(hypergraph.FromGraph(g), opts)
}

func fromSearch(r search.Result) *Decomposition {
	return &Decomposition{
		Width:      r.Width,
		LowerBound: r.LowerBound,
		Exact:      r.Exact,
		Ordering:   r.Ordering,
		Nodes:      r.Nodes,
		Elapsed:    r.Elapsed,
		Stats:      r.Stats,
	}
}

// gaDefaults fills unset GA fields with scaled-down thesis defaults,
// field by field: a caller who sets only PopulationSize still gets working
// rates, tournament size and iteration count instead of a zero-valued
// config that panics inside ga.Run.
func gaDefaults(cfg ga.Config, opts Options) ga.Config {
	def := ga.ThesisDefaults()
	def.PopulationSize = 200
	def.MaxIterations = 200
	if cfg.PopulationSize == 0 {
		cfg.PopulationSize = def.PopulationSize
		// The zero-valued operators (PMX, DM) are legitimate choices a
		// caller may have made deliberately, so they only default when the
		// whole config looks untouched (no population size set).
		cfg.Crossover = def.Crossover
		cfg.Mutation = def.Mutation
	}
	if cfg.CrossoverRate == 0 {
		cfg.CrossoverRate = def.CrossoverRate
	}
	if cfg.MutationRate == 0 {
		cfg.MutationRate = def.MutationRate
	}
	if cfg.TournamentSize == 0 {
		cfg.TournamentSize = def.TournamentSize
	}
	if cfg.MaxIterations == 0 {
		cfg.MaxIterations = def.MaxIterations
	}
	if cfg.Seed == 0 {
		cfg.Seed = opts.Seed
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = opts.Timeout
	}
	if cfg.Workers == 0 {
		cfg.Workers = opts.Workers
	}
	if cfg.Engine == nil {
		cfg.Engine = opts.engine
	}
	return cfg
}

// saigaDefaults fills unset SAIGA fields with defaults, field by field.
func saigaDefaults(cfg ga.SAIGAConfig, opts Options) ga.SAIGAConfig {
	def := ga.SAIGADefaults()
	if cfg.Islands == 0 {
		cfg.Islands = def.Islands
	}
	if cfg.IslandPop == 0 {
		cfg.IslandPop = def.IslandPop
	}
	if cfg.TournamentSize == 0 {
		cfg.TournamentSize = def.TournamentSize
	}
	if cfg.Epochs == 0 {
		cfg.Epochs = def.Epochs
	}
	if cfg.EpochLength == 0 {
		cfg.EpochLength = def.EpochLength
	}
	if cfg.Seed == 0 {
		cfg.Seed = opts.Seed
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = opts.Timeout
	}
	if cfg.Workers == 0 {
		cfg.Workers = opts.Workers
	}
	if cfg.Engine == nil {
		cfg.Engine = opts.engine
	}
	return cfg
}
