// Package core is the library façade: a single entry point that runs any of
// the thesis's algorithms on a hypergraph (or graph) and returns a
// validated decomposition together with the bounds the run proved.
//
// The algorithms are:
//
//	astar-tw   A* for exact treewidth (thesis ch. 5)
//	bb-tw      branch and bound for exact treewidth (thesis §4.4)
//	ga-tw      genetic algorithm for treewidth upper bounds (ch. 6)
//	astar-ghw  A* for exact generalized hypertree width (ch. 9)
//	bb-ghw     branch and bound for exact ghw (ch. 8)
//	ga-ghw     genetic algorithm for ghw upper bounds (§7.1)
//	saiga-ghw  self-adaptive island GA for ghw upper bounds (§7.2)
//	greedy     min-fill ordering + greedy covers (McMahan's bucket
//	           elimination baseline, §2.5.2)
//	hw-detk    exact hypertree width via det-k-decomp — the tractable
//	           variant (polynomial for fixed k, §2.3.2)
package core

import (
	"fmt"
	"math/rand"
	"time"

	"hypertree/internal/bounds"
	"hypertree/internal/decomp"
	"hypertree/internal/elim"
	"hypertree/internal/ga"
	"hypertree/internal/htd"
	"hypertree/internal/hypergraph"
	"hypertree/internal/search"
)

// Algorithm names an implemented decomposition algorithm.
type Algorithm string

// The implemented algorithms.
const (
	AlgAStarTW  Algorithm = "astar-tw"
	AlgBBTW     Algorithm = "bb-tw"
	AlgGATW     Algorithm = "ga-tw"
	AlgAStarGHW Algorithm = "astar-ghw"
	AlgBBGHW    Algorithm = "bb-ghw"
	AlgGAGHW    Algorithm = "ga-ghw"
	AlgSAIGAGHW Algorithm = "saiga-ghw"
	AlgGreedy   Algorithm = "greedy"
	// AlgHW computes the hypertree width via det-k-decomp — the tractable
	// variant: polynomial for each fixed width (thesis §2.3.2). The result
	// is a valid GHD of width hw(H) >= ghw(H).
	AlgHW Algorithm = "hw-detk"
)

// Algorithms lists every algorithm name accepted by Decompose.
var Algorithms = []Algorithm{
	AlgAStarTW, AlgBBTW, AlgGATW,
	AlgAStarGHW, AlgBBGHW, AlgGAGHW, AlgSAIGAGHW, AlgGreedy, AlgHW,
}

// ParseAlgorithm validates an algorithm name from the CLI.
func ParseAlgorithm(s string) (Algorithm, error) {
	for _, a := range Algorithms {
		if string(a) == s {
			return a, nil
		}
	}
	return "", fmt.Errorf("core: unknown algorithm %q (have %v)", s, Algorithms)
}

// IsTreewidth reports whether the algorithm optimizes treewidth (as opposed
// to generalized hypertree width).
func (a Algorithm) IsTreewidth() bool {
	return a == AlgAStarTW || a == AlgBBTW || a == AlgGATW
}

// Options configures Decompose.
type Options struct {
	Algorithm Algorithm
	// Timeout bounds the run (exact algorithms degrade to anytime bounds).
	Timeout time.Duration
	// MaxNodes bounds search-tree expansions for the exact algorithms.
	MaxNodes int64
	Seed     int64
	// GA configures ga-tw/ga-ghw; zero-valued fields fall back to scaled-
	// down thesis defaults.
	GA ga.Config
	// SAIGA configures saiga-ghw; zero value falls back to defaults.
	SAIGA ga.SAIGAConfig
}

// Decomposition is the unified result: a validated decomposition plus the
// bounds and effort statistics of the run.
type Decomposition struct {
	// TD is the tree decomposition induced by Ordering.
	TD *decomp.TreeDecomposition
	// GHD is the covered decomposition; nil for the treewidth algorithms.
	GHD *decomp.GHD
	// Width is the achieved width (treewidth-style for tw algorithms,
	// λ-width for ghw algorithms).
	Width int
	// LowerBound is the best bound proved during the run (equals Width when
	// Exact; heuristic algorithms report the cheap tw-ksc / minor bound).
	LowerBound int
	// Exact reports whether Width was proved optimal.
	Exact bool
	// Ordering is the elimination ordering realizing Width.
	Ordering []int
	// Nodes / Evaluations / Elapsed describe the effort spent.
	Nodes       int64
	Evaluations int64
	Elapsed     time.Duration
}

// Decompose runs the selected algorithm on h. For the treewidth algorithms
// the hypergraph's primal graph is decomposed (Lemma 1) and GHD is nil; for
// the ghw algorithms a validated GHD with exact bag covers is returned.
func Decompose(h *hypergraph.Hypergraph, opts Options) (*Decomposition, error) {
	if h.N() == 0 {
		return nil, fmt.Errorf("core: empty hypergraph")
	}
	if !h.CoversAllVertices() && !opts.Algorithm.IsTreewidth() {
		return nil, fmt.Errorf("core: hypergraph leaves vertices uncovered; ghw is undefined (add unary edges)")
	}
	sopt := search.Options{Timeout: opts.Timeout, MaxNodes: opts.MaxNodes, Seed: opts.Seed}
	var d *Decomposition
	switch opts.Algorithm {
	case AlgAStarTW:
		d = fromSearch(search.AStarTreewidth(h.PrimalGraph(), sopt))
	case AlgBBTW:
		d = fromSearch(search.BBTreewidth(h.PrimalGraph(), sopt))
	case AlgGATW:
		cfg := gaDefaults(opts.GA, opts)
		r := ga.TreewidthOfHypergraph(h, cfg)
		d = &Decomposition{
			Width:       r.BestWidth,
			LowerBound:  bounds.TreewidthLowerBound(h.PrimalGraph(), rand.New(rand.NewSource(opts.Seed))),
			Ordering:    r.BestOrdering,
			Evaluations: r.Evaluations,
			Elapsed:     r.Elapsed,
		}
	case AlgAStarGHW:
		d = fromSearch(search.AStarGHW(h, sopt))
	case AlgBBGHW:
		d = fromSearch(search.BBGHW(h, sopt))
	case AlgGAGHW:
		cfg := gaDefaults(opts.GA, opts)
		r := ga.GHW(h, cfg)
		d = &Decomposition{
			Width:       r.BestWidth,
			LowerBound:  bounds.TwKscWidth(h, rand.New(rand.NewSource(opts.Seed))),
			Ordering:    r.BestOrdering,
			Evaluations: r.Evaluations,
			Elapsed:     r.Elapsed,
		}
	case AlgSAIGAGHW:
		cfg := opts.SAIGA
		if cfg.Islands == 0 {
			cfg = ga.SAIGADefaults()
			cfg.Seed = opts.Seed
			cfg.Timeout = opts.Timeout
		}
		r := ga.SAIGAGHW(h, cfg)
		d = &Decomposition{
			Width:       r.BestWidth,
			LowerBound:  bounds.TwKscWidth(h, rand.New(rand.NewSource(opts.Seed))),
			Ordering:    r.BestOrdering,
			Evaluations: r.Evaluations,
			Elapsed:     r.Elapsed,
		}
	case AlgGreedy:
		start := time.Now()
		rng := rand.New(rand.NewSource(opts.Seed))
		order := elim.MinFillOrdering(h.PrimalGraph(), rng)
		w := elim.NewGHWEvaluator(h, false, rng).Width(order)
		d = &Decomposition{
			Width:      w,
			LowerBound: bounds.TwKscWidth(h, rng),
			Ordering:   order,
			Elapsed:    time.Since(start),
		}
	case AlgHW:
		start := time.Now()
		rng := rand.New(rand.NewSource(opts.Seed))
		// hw ≤ tw+1 always, and the greedy ghw bound caps the search too.
		maxK := bounds.MinFillUpperBound(h.PrimalGraph(), rng) + 1
		w, g := htd.HypertreeWidth(h, maxK)
		if w < 0 {
			return nil, fmt.Errorf("core: det-k-decomp found no decomposition up to width %d", maxK)
		}
		d = &Decomposition{
			Width:      w,
			LowerBound: bounds.TwKscWidth(h, rng),
			Exact:      true, // exact hypertree width
			Elapsed:    time.Since(start),
		}
		// det-k-decomp builds the decomposition directly, not from an
		// ordering; attach it and derive the TD view from its bags.
		d.GHD = g
		d.TD = &g.TreeDecomposition
		return d, nil
	default:
		return nil, fmt.Errorf("core: unknown algorithm %q", opts.Algorithm)
	}

	if d.Ordering == nil {
		// Budgeted run that never materialized an ordering: fall back to
		// min-fill so the caller always gets a decomposition.
		d.Ordering = elim.MinFillOrdering(h.PrimalGraph(), rand.New(rand.NewSource(opts.Seed)))
	}
	d.TD = elim.TDFromOrdering(h, d.Ordering)
	if !opts.Algorithm.IsTreewidth() {
		g, err := elim.GHDFromOrdering(h, d.Ordering, true, nil)
		if err != nil {
			return nil, fmt.Errorf("core: covering decomposition: %w", err)
		}
		d.GHD = g
		if g.Width() < d.Width {
			// Exact covers can beat the greedy width the heuristic reported.
			d.Width = g.Width()
		} else if g.Width() > d.Width {
			// Possible only on the fallback-ordering path: report what the
			// returned decomposition actually achieves.
			d.Width = g.Width()
			d.Exact = false
		}
	}
	return d, nil
}

// Treewidth runs a treewidth algorithm directly on a graph.
func Treewidth(g *hypergraph.Graph, opts Options) (*Decomposition, error) {
	if !opts.Algorithm.IsTreewidth() {
		return nil, fmt.Errorf("core: %s is not a treewidth algorithm", opts.Algorithm)
	}
	return Decompose(hypergraph.FromGraph(g), opts)
}

func fromSearch(r search.Result) *Decomposition {
	return &Decomposition{
		Width:      r.Width,
		LowerBound: r.LowerBound,
		Exact:      r.Exact,
		Ordering:   r.Ordering,
		Nodes:      r.Nodes,
		Elapsed:    r.Elapsed,
	}
}

// gaDefaults fills unset GA fields with scaled-down thesis defaults.
func gaDefaults(cfg ga.Config, opts Options) ga.Config {
	if cfg.PopulationSize == 0 {
		def := ga.ThesisDefaults()
		def.PopulationSize = 200
		def.MaxIterations = 200
		cfg = def
	}
	if cfg.Seed == 0 {
		cfg.Seed = opts.Seed
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = opts.Timeout
	}
	return cfg
}
