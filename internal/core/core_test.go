package core

import (
	"testing"
	"time"

	"hypertree/internal/ga"
	"hypertree/internal/hypergraph"
)

func TestDecomposeAllAlgorithmsOnSmallInstance(t *testing.T) {
	h := hypergraph.Grid2D(6) // 18 vertices, 18 edges, ghw 3, tw 4-ish
	gaCfg := ga.Config{
		PopulationSize: 30, CrossoverRate: 1, MutationRate: 0.3,
		TournamentSize: 2, MaxIterations: 30, Crossover: ga.POS, Mutation: ga.ISM, Seed: 1,
	}
	saigaCfg := ga.SAIGAConfig{
		Islands: 2, IslandPop: 15, TournamentSize: 2, Epochs: 3, EpochLength: 4, Seed: 1,
	}
	for _, alg := range Algorithms {
		opts := Options{Algorithm: alg, Seed: 1, Timeout: 20 * time.Second, GA: gaCfg, SAIGA: saigaCfg}
		d, err := Decompose(h, opts)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if d.TD == nil {
			t.Fatalf("%s: no tree decomposition", alg)
		}
		if err := d.TD.Validate(h); err != nil {
			t.Fatalf("%s: invalid TD: %v", alg, err)
		}
		if alg.IsTreewidth() {
			if d.GHD != nil {
				t.Fatalf("%s: unexpected GHD", alg)
			}
			if d.TD.Width() != d.Width {
				t.Fatalf("%s: TD width %d != reported %d", alg, d.TD.Width(), d.Width)
			}
		} else {
			if d.GHD == nil {
				t.Fatalf("%s: missing GHD", alg)
			}
			if err := d.GHD.Validate(h); err != nil {
				t.Fatalf("%s: invalid GHD: %v", alg, err)
			}
			if d.GHD.Width() != d.Width {
				t.Fatalf("%s: GHD width %d != reported %d", alg, d.GHD.Width(), d.Width)
			}
		}
		if d.LowerBound > d.Width {
			t.Fatalf("%s: lb %d > width %d", alg, d.LowerBound, d.Width)
		}
	}
}

func TestExactAlgorithmsAgree(t *testing.T) {
	h := hypergraph.CliqueHypergraph(7)
	a, err := Decompose(h, Options{Algorithm: AlgAStarGHW, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Decompose(h, Options{Algorithm: AlgBBGHW, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Exact || !b.Exact || a.Width != b.Width {
		t.Fatalf("exact ghw disagreement: A*=%d(%v) BB=%d(%v)", a.Width, a.Exact, b.Width, b.Exact)
	}
	// K7 needs ceil(7/2)=4 binary edges to cover a 7-clique bag.
	if a.Width != 4 {
		t.Fatalf("ghw(K7 hypergraph) = %d, want 4", a.Width)
	}

	ta, err := Decompose(h, Options{Algorithm: AlgAStarTW, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	tb, err := Decompose(h, Options{Algorithm: AlgBBTW, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if ta.Width != 6 || tb.Width != 6 {
		t.Fatalf("tw(K7) = %d / %d, want 6", ta.Width, tb.Width)
	}
}

func TestParseAlgorithm(t *testing.T) {
	if _, err := ParseAlgorithm("bb-ghw"); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseAlgorithm("nope"); err == nil {
		t.Fatal("expected error")
	}
}

func TestDecomposeErrors(t *testing.T) {
	empty := hypergraph.NewHypergraph(0)
	if _, err := Decompose(empty, Options{Algorithm: AlgGreedy}); err == nil {
		t.Fatal("expected error on empty hypergraph")
	}
	uncovered := hypergraph.NewHypergraph(3)
	uncovered.AddEdge(0, 1)
	if _, err := Decompose(uncovered, Options{Algorithm: AlgBBGHW}); err == nil {
		t.Fatal("expected error on uncovered vertices for ghw")
	}
	// Treewidth algorithms accept uncovered vertices.
	if _, err := Decompose(uncovered, Options{Algorithm: AlgBBTW}); err != nil {
		t.Fatalf("tw on uncovered vertices: %v", err)
	}
	g := hypergraph.Grid(3)
	if _, err := Treewidth(g, Options{Algorithm: AlgBBGHW}); err == nil {
		t.Fatal("Treewidth should reject ghw algorithms")
	}
	if d, err := Treewidth(g, Options{Algorithm: AlgAStarTW, Seed: 1}); err != nil || d.Width != 3 {
		t.Fatalf("Treewidth(grid3) = %v, %v", d, err)
	}
}
