package core

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"hypertree/internal/budget"
	"hypertree/internal/budget/faultinject"
	"hypertree/internal/ga"
	"hypertree/internal/hypergraph"
)

// anytimeInstance is large enough that no algorithm closes it at the root
// (tw bounds 6..13, ghw bounds 2..7) yet small enough that validation and
// greedy fallbacks are instant.
func anytimeInstance() *hypergraph.Hypergraph {
	return hypergraph.Grid2D(10) // 50 vertices, 50 edges, covered
}

// validateAnytime checks the anytime contract: a non-nil decomposition whose
// TD (and GHD, for the ghw algorithms) validates against h.
func validateAnytime(t *testing.T, h *hypergraph.Hypergraph, alg Algorithm, d *Decomposition) {
	t.Helper()
	if d == nil {
		t.Fatal("nil decomposition")
	}
	if d.TD == nil {
		t.Fatal("nil tree decomposition")
	}
	if err := d.TD.Validate(h); err != nil {
		t.Fatalf("invalid tree decomposition: %v", err)
	}
	if !alg.IsTreewidth() {
		if d.GHD == nil {
			t.Fatal("nil GHD for a ghw algorithm")
		}
		if err := d.GHD.Validate(h); err != nil {
			t.Fatalf("invalid GHD: %v", err)
		}
	}
	if d.Width < 0 {
		t.Fatalf("negative width %d", d.Width)
	}
}

// checkNoGoroutineLeak waits (briefly) for the goroutine count to return to
// its pre-run level, catching island workers left behind a panic or stop.
func checkNoGoroutineLeak(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+2 {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestTimeoutHonored is the anytime contract under a wall-clock budget: every
// algorithm returns within a small multiple of the timeout with a validated
// best-so-far decomposition.
func TestTimeoutHonored(t *testing.T) {
	h := anytimeInstance()
	const timeout = 150 * time.Millisecond
	for _, alg := range Algorithms {
		t.Run(string(alg), func(t *testing.T) {
			start := time.Now()
			d, err := Decompose(h, Options{Algorithm: alg, Timeout: timeout, Seed: 1})
			elapsed := time.Since(start)
			if err != nil {
				t.Fatalf("Decompose: %v", err)
			}
			if elapsed > 10*timeout {
				t.Fatalf("took %v, over 10x the %v budget", elapsed, timeout)
			}
			validateAnytime(t, h, alg, d)
			if d.Interrupted {
				if d.Stop != budget.StopDeadline {
					t.Fatalf("Stop = %q, want %q", d.Stop, budget.StopDeadline)
				}
				if d.Exact {
					t.Fatal("an interrupted run must not claim exactness")
				}
			}
		})
	}
}

// TestNodeBudgetHonored is the same contract under a work-unit budget.
func TestNodeBudgetHonored(t *testing.T) {
	h := anytimeInstance()
	for _, alg := range Algorithms {
		t.Run(string(alg), func(t *testing.T) {
			d, err := Decompose(h, Options{Algorithm: alg, MaxNodes: 40, Seed: 1})
			if err != nil {
				t.Fatalf("Decompose: %v", err)
			}
			validateAnytime(t, h, alg, d)
			// 40 work units cannot finish this instance for any algorithm
			// (even greedy needs one per vertex elimination).
			if !d.Interrupted {
				t.Fatal("run with a 40-node budget was not interrupted")
			}
			if d.Stop != budget.StopNodes {
				t.Fatalf("Stop = %q, want %q", d.Stop, budget.StopNodes)
			}
		})
	}
}

// TestCancellation proves cooperative context cancellation for every
// algorithm: the cancel lands at the 20th budget checkpoint (forced to every
// tick via CheckEvery=1) and the run still returns a validated result.
func TestCancellation(t *testing.T) {
	h := anytimeInstance()
	for _, alg := range Algorithms {
		t.Run(string(alg), func(t *testing.T) {
			defer faultinject.Reset()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			faultinject.Arm(faultinject.SiteCheckpoint, 20, cancel)
			before := runtime.NumGoroutine()
			d, err := Decompose(h, Options{Algorithm: alg, CheckEvery: 1, Ctx: ctx, Seed: 1})
			if err != nil {
				t.Fatalf("Decompose: %v", err)
			}
			validateAnytime(t, h, alg, d)
			if !d.Interrupted {
				t.Fatal("canceled run not reported as interrupted")
			}
			if d.Stop != budget.StopCanceled {
				t.Fatalf("Stop = %q, want %q", d.Stop, budget.StopCanceled)
			}
			checkNoGoroutineLeak(t, before)
		})
	}
}

// TestPanicContainment injects a panic into each algorithm's hot path and
// checks it surfaces as a typed *budget.PanicError — no crash, no hang, no
// leaked island goroutines. Together the pairs cover all three production
// injection sites.
func TestPanicContainment(t *testing.T) {
	h := anytimeInstance()
	sites := map[Algorithm]string{
		AlgAStarTW:  faultinject.SiteSearchExpand,
		AlgBBTW:     faultinject.SiteSearchExpand,
		AlgGATW:     faultinject.SiteGAEval,
		AlgAStarGHW: faultinject.SiteCover,
		AlgBBGHW:    faultinject.SiteSearchExpand,
		AlgGAGHW:    faultinject.SiteGAEval,
		AlgSAIGAGHW: faultinject.SiteGAEval,
		AlgGreedy:   faultinject.SiteCover,
		AlgHW:       faultinject.SiteSearchExpand,
		// The panic lands in whichever racing member hits the site third; the
		// containment contract is the portfolio's, not the member's.
		AlgPortfolio: faultinject.SiteSearchExpand,
	}
	for _, alg := range Algorithms {
		site, ok := sites[alg]
		if !ok {
			t.Fatalf("no injection site chosen for %s", alg)
		}
		t.Run(string(alg)+"/"+site, func(t *testing.T) {
			defer faultinject.Reset()
			faultinject.Arm(site, 3, func() { panic("injected fault") })
			before := runtime.NumGoroutine()
			d, err := Decompose(h, Options{Algorithm: alg, Seed: 1})
			if err == nil {
				t.Fatalf("Decompose survived the injected panic (got width %d)", d.Width)
			}
			var pe *budget.PanicError
			if !errors.As(err, &pe) {
				t.Fatalf("error is %T (%v), want *budget.PanicError", err, err)
			}
			if pe.Value != "injected fault" {
				t.Fatalf("panic value = %v", pe.Value)
			}
			if len(pe.Stack) == 0 {
				t.Fatal("panic error lost its stack")
			}
			checkNoGoroutineLeak(t, before)
		})
	}
}

// TestHWDetkAnytime pins the hw-detk degradation contract: under a budget it
// returns a valid greedy GHD and reports the widths it managed to refute as
// a lower bound on hw.
func TestHWDetkAnytime(t *testing.T) {
	h := anytimeInstance()
	d, err := Decompose(h, Options{Algorithm: AlgHW, MaxNodes: 40, Seed: 1})
	if err != nil {
		t.Fatalf("Decompose: %v", err)
	}
	validateAnytime(t, h, AlgHW, d)
	if !d.Interrupted || d.Exact {
		t.Fatalf("Interrupted=%v Exact=%v, want interrupted inexact result", d.Interrupted, d.Exact)
	}
	if d.LowerBound < 1 {
		t.Fatalf("LowerBound = %d, want >= 1", d.LowerBound)
	}
}

// TestGADefaultsPerField pins the satellite fix: setting only PopulationSize
// must still produce a runnable config (previously the zero TournamentSize
// made ga.Run panic).
func TestGADefaultsPerField(t *testing.T) {
	h := hypergraph.Grid2D(4)
	d, err := Decompose(h, Options{
		Algorithm: AlgGAGHW,
		Seed:      1,
		GA:        ga.Config{PopulationSize: 40, MaxIterations: 20},
	})
	if err != nil {
		t.Fatalf("Decompose with population-only GA config: %v", err)
	}
	validateAnytime(t, h, AlgGAGHW, d)
}

// TestInterruptedExactSearchStaysSound checks that an exact search cut off
// by a node budget reports consistent bounds: LowerBound <= Width.
func TestInterruptedExactSearchStaysSound(t *testing.T) {
	h := anytimeInstance()
	for _, alg := range []Algorithm{AlgAStarTW, AlgBBTW, AlgAStarGHW, AlgBBGHW} {
		d, err := Decompose(h, Options{Algorithm: alg, MaxNodes: 500, Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if d.LowerBound > d.Width {
			t.Fatalf("%s: LowerBound %d > Width %d", alg, d.LowerBound, d.Width)
		}
	}
}
