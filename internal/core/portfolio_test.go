package core

import (
	"bytes"
	"context"
	"math/rand"
	"testing"
	"time"

	"hypertree/internal/budget"
	"hypertree/internal/elim"
	"hypertree/internal/ga"
	"hypertree/internal/hypergraph"
	"hypertree/internal/obs"
)

// TestPortfolioSmoke is the portfolio's headline contract (and the
// `make portfolio-smoke` race gate): on seed instances, racing the solver
// set under one budget returns a validated decomposition no wider than the
// best single member given the same budget.
func TestPortfolioSmoke(t *testing.T) {
	instances := []struct {
		name string
		h    *hypergraph.Hypergraph
	}{
		{"grid2d_6", hypergraph.Grid2D(6)},
		{"clique_9", hypergraph.CliqueHypergraph(9)},
	}
	for _, tc := range instances {
		t.Run(tc.name, func(t *testing.T) {
			opts := Options{Seed: 1, Timeout: 30 * time.Second, MaxNodes: 80000}
			pd, err := DecomposePortfolio(tc.h, opts)
			if err != nil {
				t.Fatalf("portfolio: %v", err)
			}
			validateAnytime(t, tc.h, AlgPortfolio, pd)
			for _, alg := range DefaultPortfolio {
				sopts := opts
				sopts.Algorithm = alg
				sd, err := Decompose(tc.h, sopts)
				if err != nil {
					t.Fatalf("%s: %v", alg, err)
				}
				if pd.Width > sd.Width {
					t.Errorf("portfolio width %d exceeds solo %s width %d", pd.Width, alg, sd.Width)
				}
			}
			if pd.Stats == nil {
				t.Fatal("portfolio result lost its merged RunStats")
			}
			if err := pd.Stats.CheckTimeline(); err != nil {
				t.Fatalf("merged timeline: %v", err)
			}
		})
	}
}

// TestPortfolioExactWinAbortsLosers pins the win latch: once the incumbent
// meets the proven lower bound the race is over, and members that would run
// far longer on their own (here a GA armed with an absurd iteration budget)
// are drained via StopPortfolioWin. The caller sees a completed exact run,
// not an interruption.
func TestPortfolioExactWinAbortsLosers(t *testing.T) {
	h := hypergraph.CliqueHypergraph(10) // ghw = ceil(10/2) = 5, proven fast by BB
	start := time.Now()
	d, err := DecomposePortfolio(h, Options{
		Seed:    1,
		Timeout: 60 * time.Second,
		GA:      ga.Config{MaxIterations: 1 << 30}, // would run ~forever un-aborted
	})
	if err != nil {
		t.Fatalf("portfolio: %v", err)
	}
	elapsed := time.Since(start)
	validateAnytime(t, h, AlgPortfolio, d)
	if d.Width != 5 {
		t.Fatalf("width = %d, want 5", d.Width)
	}
	if !d.Exact {
		t.Fatal("proven-optimal race not reported Exact")
	}
	if d.Interrupted || d.Stop != budget.StopNone {
		t.Fatalf("win reported as interruption: Interrupted=%v Stop=%q", d.Interrupted, d.Stop)
	}
	if d.LowerBound != d.Width {
		t.Fatalf("exact result with lb %d != width %d", d.LowerBound, d.Width)
	}
	if elapsed > 20*time.Second {
		t.Fatalf("race took %v: the win latch did not abort the losers", elapsed)
	}
}

// TestPortfolioMidRaceCancel cancels the shared context mid-race and checks
// the anytime contract: the best validated width found so far comes back,
// flagged as a cancellation, never as exact.
func TestPortfolioMidRaceCancel(t *testing.T) {
	h := anytimeInstance() // Grid2D(10): no member closes it in 100ms
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	d, err := DecomposePortfolio(h, Options{Seed: 1, Ctx: ctx, CheckEvery: 64})
	if err != nil {
		t.Fatalf("portfolio: %v", err)
	}
	validateAnytime(t, h, AlgPortfolio, d)
	if !d.Interrupted || d.Stop != budget.StopCanceled {
		t.Fatalf("Interrupted=%v Stop=%q, want canceled interruption", d.Interrupted, d.Stop)
	}
	if d.Exact {
		t.Fatal("canceled race must not claim exactness")
	}
}

// TestPortfolioMemberValidation rejects member sets the race cannot run:
// unknown names, nesting, treewidth objectives, duplicates (which would
// interleave improve events within one (req, algo) trace scope).
func TestPortfolioMemberValidation(t *testing.T) {
	h := hypergraph.Grid2D(4)
	bad := [][]Algorithm{
		{AlgBBGHW, Algorithm("no-such-algo")},
		{AlgGreedy, AlgPortfolio},
		{AlgBBTW, AlgGreedy},
		{AlgGreedy, AlgBBGHW, AlgGreedy},
	}
	for _, members := range bad {
		if _, err := DecomposePortfolio(h, Options{Seed: 1, Portfolio: members}); err == nil {
			t.Errorf("portfolio %v: expected a validation error", members)
		}
	}
	// A legal subset runs fine.
	d, err := DecomposePortfolio(h, Options{Seed: 1, Portfolio: []Algorithm{AlgGreedy, AlgBBGHW}})
	if err != nil {
		t.Fatalf("two-member portfolio: %v", err)
	}
	validateAnytime(t, h, AlgPortfolio, d)
}

// TestPortfolioTraceValidates streams a full portfolio race through the
// JSONL recorder and runs the trace validator over it: five interleaved
// member event streams plus the merged portfolio stream must satisfy the
// per-(req, algo) anytime contract.
func TestPortfolioTraceValidates(t *testing.T) {
	h := hypergraph.Grid2D(6)
	var buf bytes.Buffer
	rec := obs.NewJSONLWriter(&buf)
	d, err := DecomposePortfolio(h, Options{Seed: 1, MaxNodes: 50000, Recorder: rec})
	if err != nil {
		t.Fatalf("portfolio: %v", err)
	}
	validateAnytime(t, h, AlgPortfolio, d)
	if err := rec.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	sum, err := obs.ValidateTrace(&buf)
	if err != nil {
		t.Fatalf("portfolio trace rejected: %v", err)
	}
	if sum.Events == 0 {
		t.Fatal("empty trace")
	}
}

// TestHWDetkExactOrdering is the regression for the ordering-contract bug:
// the exact det-k-decomp path returned Ordering == nil, breaking every
// consumer that replays decompositions through elimination orderings. The
// ordering must be a permutation whose induced GHD is no wider than the
// reported width.
func TestHWDetkExactOrdering(t *testing.T) {
	h := hypergraph.Grid2D(4)
	d, err := Decompose(h, Options{Algorithm: AlgHW, Seed: 1, Timeout: 30 * time.Second})
	if err != nil {
		t.Fatalf("hw-detk: %v", err)
	}
	if !d.Exact {
		t.Fatalf("hw-detk did not close Grid2D(4) (width %d, stop %q)", d.Width, d.Stop)
	}
	if d.Ordering == nil {
		t.Fatal("exact hw-detk returned a nil Ordering")
	}
	seen := make([]bool, h.N())
	for _, v := range d.Ordering {
		if v < 0 || v >= h.N() || seen[v] {
			t.Fatalf("Ordering is not a permutation: %v", d.Ordering)
		}
		seen[v] = true
	}
	if len(d.Ordering) != h.N() {
		t.Fatalf("Ordering has %d entries, want %d", len(d.Ordering), h.N())
	}
	g, err := elim.GHDFromOrdering(h, d.Ordering, true, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatalf("replaying the ordering: %v", err)
	}
	if g.Width() > d.Width {
		t.Fatalf("ordering replays to width %d, above the reported %d", g.Width(), d.Width)
	}
}
