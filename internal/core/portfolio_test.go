package core

import (
	"bytes"
	"context"
	"math/rand"
	"testing"
	"time"

	"hypertree/internal/budget"
	"hypertree/internal/elim"
	"hypertree/internal/ga"
	"hypertree/internal/hypergraph"
	"hypertree/internal/obs"
)

// TestPortfolioSmoke is the portfolio's headline contract (and the
// `make portfolio-smoke` race gate): on seed instances, racing the solver
// set under one budget returns a validated decomposition no wider than the
// best single member given the same budget.
func TestPortfolioSmoke(t *testing.T) {
	instances := []struct {
		name string
		h    *hypergraph.Hypergraph
	}{
		{"grid2d_6", hypergraph.Grid2D(6)},
		{"clique_9", hypergraph.CliqueHypergraph(9)},
	}
	for _, tc := range instances {
		t.Run(tc.name, func(t *testing.T) {
			opts := Options{Seed: 1, Timeout: 30 * time.Second, MaxNodes: 80000}
			pd, err := DecomposePortfolio(tc.h, opts)
			if err != nil {
				t.Fatalf("portfolio: %v", err)
			}
			validateAnytime(t, tc.h, AlgPortfolio, pd)
			for _, alg := range DefaultPortfolio {
				sopts := opts
				sopts.Algorithm = alg
				sd, err := Decompose(tc.h, sopts)
				if err != nil {
					t.Fatalf("%s: %v", alg, err)
				}
				if pd.Width > sd.Width {
					t.Errorf("portfolio width %d exceeds solo %s width %d", pd.Width, alg, sd.Width)
				}
			}
			if pd.Stats == nil {
				t.Fatal("portfolio result lost its merged RunStats")
			}
			if err := pd.Stats.CheckTimeline(); err != nil {
				t.Fatalf("merged timeline: %v", err)
			}
		})
	}
}

// TestPortfolioExactWinAbortsLosers pins the win latch: once the incumbent
// meets the proven lower bound the race is over, and members that would run
// far longer on their own (here a GA armed with an absurd iteration budget)
// are drained via StopPortfolioWin. The caller sees a completed exact run,
// not an interruption.
func TestPortfolioExactWinAbortsLosers(t *testing.T) {
	h := hypergraph.CliqueHypergraph(10) // ghw = ceil(10/2) = 5, proven fast by BB
	start := time.Now()
	d, err := DecomposePortfolio(h, Options{
		Seed:    1,
		Timeout: 60 * time.Second,
		GA:      ga.Config{MaxIterations: 1 << 30}, // would run ~forever un-aborted
	})
	if err != nil {
		t.Fatalf("portfolio: %v", err)
	}
	elapsed := time.Since(start)
	validateAnytime(t, h, AlgPortfolio, d)
	if d.Width != 5 {
		t.Fatalf("width = %d, want 5", d.Width)
	}
	if !d.Exact {
		t.Fatal("proven-optimal race not reported Exact")
	}
	if d.Interrupted || d.Stop != budget.StopNone {
		t.Fatalf("win reported as interruption: Interrupted=%v Stop=%q", d.Interrupted, d.Stop)
	}
	if d.LowerBound != d.Width {
		t.Fatalf("exact result with lb %d != width %d", d.LowerBound, d.Width)
	}
	if elapsed > 20*time.Second {
		t.Fatalf("race took %v: the win latch did not abort the losers", elapsed)
	}
}

// TestPortfolioMidRaceCancel cancels the shared context mid-race and checks
// the anytime contract: the best validated width found so far comes back,
// flagged as a cancellation, never as exact.
func TestPortfolioMidRaceCancel(t *testing.T) {
	h := anytimeInstance() // Grid2D(10): no member closes it in 100ms
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	d, err := DecomposePortfolio(h, Options{Seed: 1, Ctx: ctx, CheckEvery: 64})
	if err != nil {
		t.Fatalf("portfolio: %v", err)
	}
	validateAnytime(t, h, AlgPortfolio, d)
	if !d.Interrupted || d.Stop != budget.StopCanceled {
		t.Fatalf("Interrupted=%v Stop=%q, want canceled interruption", d.Interrupted, d.Stop)
	}
	if d.Exact {
		t.Fatal("canceled race must not claim exactness")
	}
}

// TestPortfolioMemberValidation rejects member sets the race cannot run:
// unknown names, nesting, treewidth objectives, duplicates (which would
// interleave improve events within one (req, algo) trace scope).
func TestPortfolioMemberValidation(t *testing.T) {
	h := hypergraph.Grid2D(4)
	bad := [][]Algorithm{
		{AlgBBGHW, Algorithm("no-such-algo")},
		{AlgGreedy, AlgPortfolio},
		{AlgBBTW, AlgGreedy},
		{AlgGreedy, AlgBBGHW, AlgGreedy},
	}
	for _, members := range bad {
		if _, err := DecomposePortfolio(h, Options{Seed: 1, Portfolio: members}); err == nil {
			t.Errorf("portfolio %v: expected a validation error", members)
		}
	}
	// A legal subset runs fine.
	d, err := DecomposePortfolio(h, Options{Seed: 1, Portfolio: []Algorithm{AlgGreedy, AlgBBGHW}})
	if err != nil {
		t.Fatalf("two-member portfolio: %v", err)
	}
	validateAnytime(t, h, AlgPortfolio, d)
}

// TestPortfolioTraceValidates streams a full portfolio race through the
// JSONL recorder and runs the trace validator over it: five interleaved
// member event streams plus the merged portfolio stream must satisfy the
// per-(req, algo) anytime contract.
func TestPortfolioTraceValidates(t *testing.T) {
	h := hypergraph.Grid2D(6)
	var buf bytes.Buffer
	rec := obs.NewJSONLWriter(&buf)
	d, err := DecomposePortfolio(h, Options{Seed: 1, MaxNodes: 50000, Recorder: rec})
	if err != nil {
		t.Fatalf("portfolio: %v", err)
	}
	validateAnytime(t, h, AlgPortfolio, d)
	if err := rec.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	sum, err := obs.ValidateTrace(&buf)
	if err != nil {
		t.Fatalf("portfolio trace rejected: %v", err)
	}
	if sum.Events == 0 {
		t.Fatal("empty trace")
	}
}

// TestHWDetkExactOrdering is the regression for the ordering-contract bug:
// the exact det-k-decomp path returned Ordering == nil, breaking every
// consumer that replays decompositions through elimination orderings. The
// ordering must be a permutation whose induced GHD is no wider than the
// reported width.
func TestHWDetkExactOrdering(t *testing.T) {
	h := hypergraph.Grid2D(4)
	d, err := Decompose(h, Options{Algorithm: AlgHW, Seed: 1, Timeout: 30 * time.Second})
	if err != nil {
		t.Fatalf("hw-detk: %v", err)
	}
	if !d.Exact {
		t.Fatalf("hw-detk did not close Grid2D(4) (width %d, stop %q)", d.Width, d.Stop)
	}
	if d.Ordering == nil {
		t.Fatal("exact hw-detk returned a nil Ordering")
	}
	seen := make([]bool, h.N())
	for _, v := range d.Ordering {
		if v < 0 || v >= h.N() || seen[v] {
			t.Fatalf("Ordering is not a permutation: %v", d.Ordering)
		}
		seen[v] = true
	}
	if len(d.Ordering) != h.N() {
		t.Fatalf("Ordering has %d entries, want %d", len(d.Ordering), h.N())
	}
	g, err := elim.GHDFromOrdering(h, d.Ordering, true, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatalf("replaying the ordering: %v", err)
	}
	if g.Width() > d.Width {
		t.Fatalf("ordering replays to width %d, above the reported %d", g.Width(), d.Width)
	}
}

// TestPortfolioLedgerConservation is the attribution contract under -race:
// on a real multi-member race the ledger's per-member attributed node
// counts must sum exactly to the run's global budget.Nodes(), every
// incumbent improvement of the merged timeline must name the member that
// claimed it, and the winner's row must carry the winner role.
func TestPortfolioLedgerConservation(t *testing.T) {
	h := hypergraph.Grid2D(6)
	d, err := DecomposePortfolio(h, Options{Seed: 1, Timeout: 30 * time.Second, MaxNodes: 60000})
	if err != nil {
		t.Fatalf("portfolio: %v", err)
	}
	led := d.Ledger
	if led == nil {
		t.Fatal("portfolio result carries no ledger")
	}
	if !led.Portfolio {
		t.Fatal("ledger not marked as a portfolio ledger")
	}
	if len(led.Members) != len(DefaultPortfolio) {
		t.Fatalf("ledger has %d members, portfolio raced %d", len(led.Members), len(DefaultPortfolio))
	}
	if led.TotalNodes != d.Nodes {
		t.Fatalf("ledger TotalNodes %d != result Nodes %d", led.TotalNodes, d.Nodes)
	}
	if err := led.Conserved(); err != nil {
		t.Fatalf("conservation invariant: %v", err)
	}
	if led.Winner == "" || led.Find(led.Winner) == nil {
		t.Fatalf("ledger names no valid winner: %q", led.Winner)
	}
	// Every improvement of the merged timeline appears as exactly one
	// member claim — claims are attributed, not merely counted.
	var claims int
	for i := range led.Members {
		m := &led.Members[i]
		claims += len(m.Claims)
		if m.Role == "" {
			t.Fatalf("member %s has no role", m.Algo)
		}
		for _, c := range m.Claims {
			if c.Width <= 0 {
				t.Fatalf("member %s claimed a non-width: %+v", m.Algo, c)
			}
		}
	}
	merged := d.Stats.Snapshot().Timeline
	if claims != len(merged) {
		t.Fatalf("ledger attributes %d claims, merged timeline has %d improvements", claims, len(merged))
	}
	// The narrowest claim across members is the result's width, and the
	// winner claimed a width at least as narrow as everyone else's best.
	win := led.Find(led.Winner)
	if win.Role != "winner" {
		t.Fatalf("winner row role = %q", win.Role)
	}
	if win.BestWidth != d.Width {
		t.Fatalf("winner best width %d != result width %d", win.BestWidth, d.Width)
	}
	// CPU estimates exist for every member (they all at least started).
	for i := range led.Members {
		if led.Members[i].CPU <= 0 {
			t.Fatalf("member %s has no CPU estimate", led.Members[i].Algo)
		}
	}
}

// TestSerialLedgerShape pins the degenerate one-member ledger of a
// non-portfolio run: same shape, trivial conservation, sole member wins.
func TestSerialLedgerShape(t *testing.T) {
	h := hypergraph.Grid2D(5)
	d, err := Decompose(h, Options{Algorithm: AlgBBGHW, Seed: 1, Timeout: 20 * time.Second, MaxNodes: 30000})
	if err != nil {
		t.Fatalf("bb-ghw: %v", err)
	}
	led := d.Ledger
	if led == nil {
		t.Fatal("serial result carries no ledger")
	}
	if led.Portfolio {
		t.Fatal("serial ledger marked as portfolio")
	}
	if len(led.Members) != 1 {
		t.Fatalf("serial ledger has %d members, want 1", len(led.Members))
	}
	if err := led.Conserved(); err != nil {
		t.Fatalf("serial conservation: %v", err)
	}
	m := &led.Members[0]
	if m.Algo != string(AlgBBGHW) || m.Role != "winner" || led.Winner != m.Algo {
		t.Fatalf("serial member row = %+v, winner %q", m, led.Winner)
	}
	if m.Nodes != d.Nodes {
		t.Fatalf("serial member nodes %d != run nodes %d", m.Nodes, d.Nodes)
	}
	if m.BestWidth != d.Width {
		t.Fatalf("serial member best width %d != run width %d", m.BestWidth, d.Width)
	}
	for i := 1; i < len(m.Claims); i++ {
		if m.Claims[i].Width >= m.Claims[i-1].Width {
			t.Fatalf("serial claims not strictly decreasing: %+v", m.Claims)
		}
	}
}
