// Package setcover implements the set-cover routines used when turning tree
// decompositions into generalized hypertree decompositions: the greedy
// heuristic of thesis Figure 7.2, an exact branch-and-bound solver standing
// in for the thesis's IP solver (see DESIGN.md "Substitutions"), and the
// k-set-cover lower bound used by the tw-ksc-width heuristic (thesis §8.1.1).
//
// In every use in this repository the universe is a decomposition bag (a
// χ-set) and the candidate sets are the hypergraph's hyperedges; only the
// intersections of the hyperedges with the bag matter.
package setcover

import (
	"fmt"
	"math/rand"
	"sort"
)

// Greedy computes a cover of universe using the given sets, repeatedly
// picking a set covering the maximum number of still-uncovered elements
// (thesis Figure 7.2). Ties are broken by rng if non-nil, else by lowest
// index. It returns the indices of the chosen sets, or nil if the universe
// is not coverable.
func Greedy(universe []int, sets [][]int, rng *rand.Rand) []int {
	if len(universe) == 0 {
		return []int{}
	}
	uncovered := make(map[int]struct{}, len(universe))
	for _, v := range universe {
		uncovered[v] = struct{}{}
	}
	var chosen []int
	used := make([]bool, len(sets))
	for len(uncovered) > 0 {
		best, bestGain, ties := -1, 0, 0
		for i, s := range sets {
			if used[i] {
				continue
			}
			gain := 0
			for _, v := range s {
				if _, ok := uncovered[v]; ok {
					gain++
				}
			}
			switch {
			case gain > bestGain:
				best, bestGain, ties = i, gain, 1
			case gain == bestGain && gain > 0:
				ties++
				// Reservoir-sample among ties for the thesis's random
				// tie-breaking.
				if rng != nil && rng.Intn(ties) == 0 {
					best = i
				}
			}
		}
		if best < 0 {
			return nil // uncoverable
		}
		used[best] = true
		chosen = append(chosen, best)
		for _, v := range sets[best] {
			delete(uncovered, v)
		}
	}
	sort.Ints(chosen)
	return chosen
}

// GreedySize returns len(Greedy(...)), or -1 if the universe is uncoverable.
func GreedySize(universe []int, sets [][]int, rng *rand.Rand) int {
	c := Greedy(universe, sets, rng)
	if c == nil {
		return -1
	}
	return len(c)
}

// Exact computes a minimum set cover by branch and bound and returns the
// chosen set indices, or nil if the universe is uncoverable. It substitutes
// for the IP solver used in the thesis (§2.5.2): the optimum is identical.
//
// The search restricts sets to the universe, removes dominated candidates,
// branches on an uncovered element with the fewest candidate sets, bounds
// with current + ceil(remaining / maxGain), and is primed with the greedy
// solution.
func Exact(universe []int, sets [][]int) []int {
	if len(universe) == 0 {
		return []int{}
	}
	chosen, _ := exactBB(universe, sets, 0)
	return chosen
}

// ExactSizeCapped returns the minimum cover size when it is smaller than
// cap, or cap when the minimum is cap or larger (the caller has already
// decided that covers of size >= cap are useless, so the search can prune
// aggressively). It returns -1 if the universe is uncoverable. cap must be
// positive.
func ExactSizeCapped(universe []int, sets [][]int, cap int) int {
	if cap <= 0 {
		panic("setcover: cap must be positive")
	}
	if len(universe) == 0 {
		return 0
	}
	chosen, capped := exactBB(universe, sets, cap)
	if capped {
		return cap
	}
	if chosen == nil {
		return -1
	}
	return len(chosen)
}

// exactBB is the shared branch-and-bound core. cap <= 0 means uncapped.
// It reports (nil, true) when the optimum is >= cap under a positive cap.
func exactBB(universe []int, sets [][]int, cap int) (result []int, capped bool) {
	// Deduplicate universe.
	uniq := make(map[int]struct{}, len(universe))
	for _, v := range universe {
		uniq[v] = struct{}{}
	}
	elems := make([]int, 0, len(uniq))
	for v := range uniq {
		elems = append(elems, v)
	}
	sort.Ints(elems)
	pos := make(map[int]int, len(elems))
	for i, v := range elems {
		pos[v] = i
	}
	ne := len(elems)

	// Restrict each set to the universe, as element positions, dropping
	// duplicates and dominated (subset-of-another) candidates: they can
	// always be replaced by their dominator without growing the cover.
	type cand struct {
		elems []int
		orig  int
	}
	var cands []cand
	seenKey := make(map[string]struct{})
	for i, s := range sets {
		var r []int
		for _, v := range s {
			if p, ok := pos[v]; ok {
				r = append(r, p)
			}
		}
		if len(r) == 0 {
			continue
		}
		sort.Ints(r)
		key := fmt.Sprint(r)
		if _, dup := seenKey[key]; dup {
			continue
		}
		seenKey[key] = struct{}{}
		cands = append(cands, cand{r, i})
	}
	// Remove dominated candidates (quadratic; candidate lists are small
	// after restriction/dedup).
	kept := cands[:0]
	for i := range cands {
		dominated := false
		for j := range cands {
			if i == j || len(cands[i].elems) > len(cands[j].elems) {
				continue
			}
			if len(cands[i].elems) == len(cands[j].elems) && i < j {
				continue // equal sets were deduped; guard for safety
			}
			if subsetInts(cands[i].elems, cands[j].elems) {
				dominated = true
				break
			}
		}
		if !dominated {
			kept = append(kept, cands[i])
		}
	}
	cands = kept

	restricted := make([][]int, len(cands))
	memberOf := make([][]int, ne)
	for i, c := range cands {
		restricted[i] = c.elems
		for _, e := range c.elems {
			memberOf[e] = append(memberOf[e], i)
		}
	}
	for e := 0; e < ne; e++ {
		if len(memberOf[e]) == 0 {
			return nil, false // element not coverable
		}
	}

	greedyCover := Greedy(universe, sets, nil)
	if greedyCover == nil {
		return nil, false
	}
	bestLen := len(greedyCover)
	best := append([]int(nil), greedyCover...)
	if cap > 0 && bestLen > cap {
		bestLen = cap
		best = nil
	}
	// covered counts per element; coveredCount = elements with count > 0.
	counts := make([]int, ne)
	coveredCount := 0
	var chosen []int

	maxSetSize := 0
	for _, r := range restricted {
		if len(r) > maxSetSize {
			maxSetSize = len(r)
		}
	}

	add := func(i int) {
		for _, e := range restricted[i] {
			if counts[e] == 0 {
				coveredCount++
			}
			counts[e]++
		}
		chosen = append(chosen, i)
	}
	undo := func(i int) {
		for _, e := range restricted[i] {
			counts[e]--
			if counts[e] == 0 {
				coveredCount--
			}
		}
		chosen = chosen[:len(chosen)-1]
	}

	var dfs func()
	dfs = func() {
		if coveredCount == ne {
			if len(chosen) < bestLen {
				bestLen = len(chosen)
				best = best[:0]
				for _, ci := range chosen {
					best = append(best, cands[ci].orig)
				}
			}
			return
		}
		remaining := ne - coveredCount
		lb := len(chosen) + (remaining+maxSetSize-1)/maxSetSize
		if lb >= bestLen {
			return
		}
		// Branch on the uncovered element with fewest candidates.
		branch, branchDeg := -1, 1<<30
		for e := 0; e < ne; e++ {
			if counts[e] > 0 {
				continue
			}
			if d := len(memberOf[e]); d < branchDeg {
				branch, branchDeg = e, d
			}
		}
		for _, si := range memberOf[branch] {
			add(si)
			dfs()
			undo(si)
		}
	}
	dfs()
	if best == nil || (cap > 0 && bestLen >= cap) {
		// Coverable (the memberOf check passed) but only at cap or above.
		return nil, true
	}
	out := append([]int(nil), best...)
	sort.Ints(out)
	return out, false
}

// subsetInts reports whether sorted slice a is a subset of sorted slice b.
func subsetInts(a, b []int) bool {
	i := 0
	for _, x := range a {
		for i < len(b) && b[i] < x {
			i++
		}
		if i >= len(b) || b[i] != x {
			return false
		}
		i++
	}
	return true
}

// ExactSize returns len(Exact(...)), or -1 if the universe is uncoverable.
func ExactSize(universe []int, sets [][]int) int {
	c := Exact(universe, sets)
	if c == nil {
		return -1
	}
	return len(c)
}

// KSetCoverLowerBound returns the trivial k-set-cover lower bound: covering
// q elements with sets of size at most k needs at least ceil(q/k) sets
// (thesis §8.1.1). It returns 0 for q <= 0 and panics for k < 1.
func KSetCoverLowerBound(q, k int) int {
	if k < 1 {
		panic("setcover: k must be positive")
	}
	if q <= 0 {
		return 0
	}
	return (q + k - 1) / k
}

// Covers reports whether the union of sets[i] for i in chosen contains every
// element of universe.
func Covers(universe []int, sets [][]int, chosen []int) bool {
	have := make(map[int]struct{})
	for _, i := range chosen {
		if i < 0 || i >= len(sets) {
			return false
		}
		for _, v := range sets[i] {
			have[v] = struct{}{}
		}
	}
	for _, v := range universe {
		if _, ok := have[v]; !ok {
			return false
		}
	}
	return true
}
