// Package setcover implements the set-cover routines used when turning tree
// decompositions into generalized hypertree decompositions: the greedy
// heuristic of thesis Figure 7.2, an exact branch-and-bound solver standing
// in for the thesis's IP solver (see DESIGN.md "Substitutions"), and the
// k-set-cover lower bound used by the tw-ksc-width heuristic (thesis §8.1.1).
//
// In every use in this repository the universe is a decomposition bag (a
// χ-set) and the candidate sets are the hypergraph's hyperedges; only the
// intersections of the hyperedges with the bag matter. Since the evaluators
// re-solve the same bags thousands of times across search states and GA
// generations, the hot paths are word-packed: elements live in
// bitset.Set values, gains are popcounts, and domination is a subset test.
// The original map/slice implementations are kept in reference.go as the
// ground truth for the equivalence tests. The memoizing Engine (engine.go)
// adds the per-hypergraph bag-cover cache on top.
package setcover

import (
	"math/rand"
	"sort"

	"hypertree/internal/bitset"
)

// candSet is one candidate set restricted to the universe: its elements as a
// bitset (for dedup, domination and greedy gains) and as a position list
// (for the branch-and-bound's covered counts), plus the index the caller
// knows it by.
type candSet struct {
	bits  bitset.Set
	elems []int // universe positions, ascending
	orig  int
}

// Greedy computes a cover of universe using the given sets, repeatedly
// picking a set covering the maximum number of still-uncovered elements
// (thesis Figure 7.2). Ties are broken by rng if non-nil, else by lowest
// index. It returns the indices of the chosen sets, or nil if the universe
// is not coverable.
//
// Duplicate elements inside a set count once toward its gain (sets are
// treated as sets); the hyperedges this package covers with are always
// duplicate-free.
func Greedy(universe []int, sets [][]int, rng *rand.Rand) []int {
	if len(universe) == 0 {
		return []int{}
	}
	pos, ne := positionsOf(universe)
	uncovered := bitset.New(ne)
	for p := 0; p < ne; p++ {
		uncovered.Add(p)
	}
	// All sets stay candidates (even useless ones) so the tie-breaking and
	// rng stream match the reference implementation exactly.
	words := bitset.Words(ne)
	backing := make([]uint64, words*len(sets))
	cands := make([]candSet, len(sets))
	for i, s := range sets {
		b := bitset.Set(backing[i*words : (i+1)*words])
		for _, v := range s {
			if p, ok := pos[v]; ok {
				b.Add(p)
			}
		}
		cands[i] = candSet{bits: b, orig: i}
	}
	chosen := greedyBits(uncovered, cands, rng)
	if chosen == nil {
		return nil
	}
	out := make([]int, len(chosen))
	for i, ci := range chosen {
		out[i] = cands[ci].orig
	}
	sort.Ints(out)
	return out
}

// greedyBits runs the greedy cover over candidate bitsets, consuming
// uncovered in place. It returns indices into cands (in pick order), or nil
// if some element is uncoverable. The candidate iteration order and the
// reservoir tie-breaking replicate the reference implementation, so a
// shared rng advances identically on both paths.
func greedyBits(uncovered bitset.Set, cands []candSet, rng *rand.Rand) []int {
	var chosen []int
	used := make([]bool, len(cands))
	for uncovered.Any() {
		best, bestGain, ties := -1, 0, 0
		for i := range cands {
			if used[i] {
				continue
			}
			gain := cands[i].bits.AndCount(uncovered)
			switch {
			case gain > bestGain:
				best, bestGain, ties = i, gain, 1
			case gain == bestGain && gain > 0:
				ties++
				// Reservoir-sample among ties for the thesis's random
				// tie-breaking.
				if rng != nil && rng.Intn(ties) == 0 {
					best = i
				}
			}
		}
		if best < 0 {
			return nil // uncoverable
		}
		used[best] = true
		chosen = append(chosen, best)
		uncovered.AndNot(cands[best].bits)
	}
	return chosen
}

// GreedySize returns len(Greedy(...)), or -1 if the universe is uncoverable.
func GreedySize(universe []int, sets [][]int, rng *rand.Rand) int {
	c := Greedy(universe, sets, rng)
	if c == nil {
		return -1
	}
	return len(c)
}

// Exact computes a minimum set cover by branch and bound and returns the
// chosen set indices, or nil if the universe is uncoverable. It substitutes
// for the IP solver used in the thesis (§2.5.2): the optimum is identical.
//
// The search restricts sets to the universe, removes duplicate and dominated
// candidates, branches on an uncovered element with the fewest candidate
// sets, bounds with current + ceil(remaining / maxGain), and is primed with
// a greedy cover of the restricted candidates.
func Exact(universe []int, sets [][]int) []int {
	if len(universe) == 0 {
		return []int{}
	}
	chosen, _ := exactBB(universe, sets, 0)
	return chosen
}

// ExactSizeCapped returns the minimum cover size when it is smaller than
// cap, or cap when the minimum is cap or larger (the caller has already
// decided that covers of size >= cap are useless, so the search can prune
// aggressively). It returns -1 if the universe is uncoverable. cap must be
// positive.
func ExactSizeCapped(universe []int, sets [][]int, cap int) int {
	if cap <= 0 {
		panic("setcover: cap must be positive")
	}
	if len(universe) == 0 {
		return 0
	}
	chosen, capped := exactBB(universe, sets, cap)
	if capped {
		return cap
	}
	if chosen == nil {
		return -1
	}
	return len(chosen)
}

// exactBB restricts the sets to the universe and runs the shared
// branch-and-bound core. cap <= 0 means uncapped; (nil, true) reports that
// the optimum is >= cap under a positive cap.
func exactBB(universe []int, sets [][]int, cap int) (result []int, capped bool) {
	pos, ne := positionsOf(universe)
	words := bitset.Words(ne)
	backing := make([]uint64, 0, words*len(sets))
	cands := make([]candSet, 0, len(sets))
	for i, s := range sets {
		start := len(backing)
		backing = backing[:start+words]
		b := bitset.Set(backing[start : start+words])
		for _, v := range s {
			if p, ok := pos[v]; ok {
				b.Add(p)
			}
		}
		if !b.Any() {
			backing = backing[:start]
			continue
		}
		cands = append(cands, candSet{bits: b, elems: b.AppendTo(nil), orig: i})
	}
	uni := bitset.New(ne)
	for p := 0; p < ne; p++ {
		uni.Add(p)
	}
	chosen, capped := exactCore(uni, ne, cands, cap)
	if chosen != nil {
		sort.Ints(chosen)
	}
	return chosen, capped
}

// exactCore is the branch-and-bound over restricted candidates shared by
// the slice API and the Engine. universe holds the ne uncovered elements;
// cands must be non-empty restrictions with elems listing each candidate's
// element positions in 0..ne-1. It dedups equal candidates by bitset key,
// drops dominated (strict-subset) candidates, primes the bound with a
// greedy cover of the surviving candidates, and returns the chosen
// candidates' orig fields (unsorted), or (nil, false) if some element is
// uncoverable, or (nil, true) when cap > 0 and the optimum is >= cap.
func exactCore(universe bitset.Set, ne int, cands []candSet, cap int) (result []int, capped bool) {
	// Deduplicate by bitset key: equal restrictions are interchangeable.
	seen := make(map[string]struct{}, len(cands))
	var keyBuf []byte
	kept := cands[:0]
	for _, c := range cands {
		keyBuf = c.bits.AppendKey(keyBuf[:0])
		if _, dup := seen[string(keyBuf)]; dup {
			continue
		}
		seen[string(keyBuf)] = struct{}{}
		kept = append(kept, c)
	}
	cands = kept
	// Remove dominated candidates: a strict subset can always be replaced by
	// its superset without growing the cover. Equal sets were just deduped,
	// so only strictly smaller candidates need the subset test.
	kept = cands[:0]
	for i := range cands {
		dominated := false
		for j := range cands {
			if i == j || len(cands[i].elems) >= len(cands[j].elems) {
				continue
			}
			if cands[i].bits.SubsetOf(cands[j].bits) {
				dominated = true
				break
			}
		}
		if !dominated {
			kept = append(kept, cands[i])
		}
	}
	cands = kept

	memberOf := make([][]int, ne)
	maxSetSize := 0
	for i := range cands {
		for _, e := range cands[i].elems {
			memberOf[e] = append(memberOf[e], i)
		}
		if len(cands[i].elems) > maxSetSize {
			maxSetSize = len(cands[i].elems)
		}
	}
	for e := 0; e < ne; e++ {
		if len(memberOf[e]) == 0 {
			return nil, false // element not coverable
		}
	}

	// Prime with a greedy cover of the restricted, deduplicated candidates
	// (every element is coverable here, so greedy cannot fail).
	prime := greedyBits(universe.Clone(), cands, nil)
	bestLen := len(prime)
	best := make([]int, 0, bestLen)
	for _, ci := range prime {
		best = append(best, cands[ci].orig)
	}
	if cap > 0 && bestLen > cap {
		bestLen = cap
		best = nil
	}

	// covered counts per element; coveredCount = elements with count > 0.
	counts := make([]int, ne)
	coveredCount := 0
	var chosen []int
	add := func(i int) {
		for _, e := range cands[i].elems {
			if counts[e] == 0 {
				coveredCount++
			}
			counts[e]++
		}
		chosen = append(chosen, i)
	}
	undo := func(i int) {
		for _, e := range cands[i].elems {
			counts[e]--
			if counts[e] == 0 {
				coveredCount--
			}
		}
		chosen = chosen[:len(chosen)-1]
	}

	var dfs func()
	dfs = func() {
		if coveredCount == ne {
			if len(chosen) < bestLen {
				bestLen = len(chosen)
				best = best[:0]
				for _, ci := range chosen {
					best = append(best, cands[ci].orig)
				}
			}
			return
		}
		remaining := ne - coveredCount
		lb := len(chosen) + (remaining+maxSetSize-1)/maxSetSize
		if lb >= bestLen {
			return
		}
		// Branch on the uncovered element with fewest candidates.
		branch, branchDeg := -1, 1<<30
		for e := 0; e < ne; e++ {
			if counts[e] > 0 {
				continue
			}
			if d := len(memberOf[e]); d < branchDeg {
				branch, branchDeg = e, d
			}
		}
		for _, si := range memberOf[branch] {
			add(si)
			dfs()
			undo(si)
		}
	}
	dfs()
	if best == nil || (cap > 0 && bestLen >= cap) {
		// Coverable (the memberOf check passed) but only at cap or above.
		return nil, true
	}
	return best, false
}

// positionsOf maps the distinct universe elements, in ascending order, to
// positions 0..ne-1.
func positionsOf(universe []int) (pos map[int]int, ne int) {
	sorted := append([]int(nil), universe...)
	sort.Ints(sorted)
	pos = make(map[int]int, len(sorted))
	for _, v := range sorted {
		if _, dup := pos[v]; !dup {
			pos[v] = ne
			ne++
		}
	}
	return pos, ne
}

// ExactSize returns len(Exact(...)), or -1 if the universe is uncoverable.
func ExactSize(universe []int, sets [][]int) int {
	c := Exact(universe, sets)
	if c == nil {
		return -1
	}
	return len(c)
}

// KSetCoverLowerBound returns the trivial k-set-cover lower bound: covering
// q elements with sets of size at most k needs at least ceil(q/k) sets
// (thesis §8.1.1). It returns 0 for q <= 0 and panics for k < 1.
func KSetCoverLowerBound(q, k int) int {
	if k < 1 {
		panic("setcover: k must be positive")
	}
	if q <= 0 {
		return 0
	}
	return (q + k - 1) / k
}

// Covers reports whether the union of sets[i] for i in chosen contains every
// element of universe.
func Covers(universe []int, sets [][]int, chosen []int) bool {
	have := make(map[int]struct{})
	for _, i := range chosen {
		if i < 0 || i >= len(sets) {
			return false
		}
		for _, v := range sets[i] {
			have[v] = struct{}{}
		}
	}
	for _, v := range universe {
		if _, ok := have[v]; !ok {
			return false
		}
	}
	return true
}
